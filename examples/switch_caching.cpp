// The paper's motivating scenario (§1-§2): a multi-rack in-memory key-value store
// under a highly skewed (Zipf-0.99) workload. Shows per-layer load distribution and
// the saturation throughput for each caching mechanism, demonstrating why cache
// partition and cache replication are not enough and how DistCache's "one big cache"
// abstraction restores linear scale-out.
//
//   $ ./examples/switch_caching
#include <algorithm>
#include <cstdio>

#include "cluster/cluster_sim.h"
#include "common/stats.h"

using namespace distcache;

int main() {
  std::printf("Scenario: 16 racks x 16 in-memory servers, zipf-0.99 over 10M keys\n\n");
  for (Mechanism m : {Mechanism::kNoCache, Mechanism::kCachePartition,
                      Mechanism::kCacheReplication, Mechanism::kDistCache}) {
    ClusterConfig cfg;
    cfg.mechanism = m;
    cfg.num_spine = 16;
    cfg.num_racks = 16;
    cfg.servers_per_rack = 16;
    cfg.per_switch_objects = 50;
    cfg.num_keys = 10'000'000;
    cfg.zipf_theta = 0.99;
    ClusterSim sim(cfg);
    const double throughput = sim.SaturationThroughput();

    // Load shape at 90% of that rate.
    const LoadSnapshot snap = sim.RunTicks(0.9 * throughput, 4);
    const double server_imbalance = ImbalanceFactor(snap.server);
    std::vector<double> caches = snap.spine();
    caches.insert(caches.end(), snap.leaf().begin(), snap.leaf().end());
    const double cache_imbalance = ImbalanceFactor(caches);

    std::printf("%-18s throughput %7.0f (x server)   server imbalance %5.2f   "
                "cache imbalance %5.2f\n",
                MechanismName(m).c_str(), throughput, server_imbalance,
                m == Mechanism::kNoCache ? 0.0 : cache_imbalance);
  }
  std::printf("\nReading the numbers: NoCache is bottlenecked by the server holding\n"
              "the hottest object; CachePartition moves that object into one switch\n"
              "but the *switch* layer inherits the imbalance; CacheReplication fixes\n"
              "reads at the cost of m-copy writes; DistCache reaches the same\n"
              "read throughput with only two copies per object.\n");
  return 0;
}
