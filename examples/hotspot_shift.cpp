// Hot-spot shift under a full cluster engine (§6.4): the workload's entire hot
// set rotates onto previously-cold keys mid-run, the cache hit ratio collapses,
// and the controller restores it by re-allocating the cache from observed
// heavy-hitter counts and pushing the new routes — the engine-level version of
// the paper's cache-update experiment, driven through the phased workload
// timeline (SimBackendConfig::events, sim/engine_core.h).
//
//   $ ./examples/hotspot_shift
//
// For the switch-local view of the same loop (heavy-hitter reports → agent
// eviction/insertion on one switch), see examples/switch_caching.cpp; for the
// three-engine parity version of this experiment, bench/bench_hotspot_shift.cc.
#include <cstdio>

#include "sim/sim_backend.h"

using namespace distcache;

int main() {
  SimBackendConfig cfg;
  cfg.cluster.num_spine = 8;
  cfg.cluster.num_racks = 8;
  cfg.cluster.servers_per_rack = 4;
  cfg.cluster.per_switch_objects = 50;
  cfg.cluster.num_keys = 1'000'000;
  cfg.cluster.zipf_theta = 0.99;
  cfg.cluster.seed = 42;

  constexpr uint64_t kRequests = 600'000;
  cfg.sample_interval = kRequests / 12;  // one row per "epoch"
  // The hot set moves at one third of the run; the controller reacts at two
  // thirds: every popularity rank r queries key (r + keys/2) % keys afterwards.
  const uint64_t shift_at = kRequests / 3;
  const uint64_t realloc_at = 2 * kRequests / 3;
  cfg.events = {ClusterEvent::ShiftHotspot(shift_at, cfg.cluster.num_keys / 2),
                ClusterEvent::ReallocateCache(realloc_at)};

  auto backend = MakeSimBackend(BackendKind::kSequential, cfg);
  const BackendStats stats = backend->Run(kRequests);

  std::printf("%-7s %-10s %-12s\n", "epoch", "hit ratio", "event");
  for (size_t i = 0; i < stats.series.size(); ++i) {
    const uint64_t start = i * cfg.sample_interval;
    const char* event = "";
    if (start <= shift_at && shift_at < start + cfg.sample_interval) {
      event = "hot set shifted";
    } else if (start <= realloc_at && realloc_at < start + cfg.sample_interval) {
      event = "cache re-allocated";
    }
    std::printf("%-7zu %-10.3f %s\n", i, stats.series[i].hit_ratio(), event);
  }
  std::printf("overall hit ratio %.3f, cache imbalance %.3f\n", stats.hit_ratio(),
              stats.CacheImbalance());
  return 0;
}
