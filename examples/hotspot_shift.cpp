// Cache update under a dynamic workload (§4.3): the switch heavy-hitter detector and
// local agent adapt the cached set when the popular keys change, without any
// controller involvement. At epoch 12 the workload's hot set shifts entirely; the
// hit ratio collapses and then recovers within a few epochs as the agent evicts the
// cold incumbents and inserts the new heavy hitters via the unified
// insert-invalid + populate path.
//
//   $ ./examples/hotspot_shift
#include <cstdio>

#include "cache/cache_switch.h"
#include "cache/switch_agent.h"
#include "common/random.h"
#include "common/zipf.h"
#include "kv/storage_server.h"

using namespace distcache;

int main() {
  StorageServer server(StorageServer::Config{0, 1.0});
  for (uint64_t key = 0; key < 100000; ++key) {
    server.Seed(key, "v" + std::to_string(key)).ok();
  }

  CacheSwitch::Config sw_cfg;
  sw_cfg.hh.report_threshold = 32;
  CacheSwitch sw(sw_cfg);
  SwitchAgent::Config agent_cfg;
  agent_cfg.max_cached_objects = 64;
  SwitchAgent agent(&sw, agent_cfg, [&](uint64_t key) {
    // Insert-invalid happened; the server pushes the value via coherence phase 2.
    auto value = server.Get(key);
    if (value.ok()) {
      sw.UpdateValue(key, std::move(value).value()).ok();
    }
  });
  std::unordered_set<uint64_t> everything;
  for (uint64_t k = 0; k < 100000; ++k) {
    everything.insert(k);
  }
  agent.SetPartition(std::move(everything));

  ZipfDistribution dist(100000, 0.99);
  Rng rng(42);
  uint64_t shift = 0;  // popularity rank r maps to key (r + shift) % 100000

  std::printf("%-7s %-10s %-12s\n", "epoch", "hit ratio", "event");
  for (int epoch = 0; epoch < 24; ++epoch) {
    const char* event = "";
    if (epoch == 12) {
      shift = 50000;  // the entire hot set moves
      event = "hot set shifted";
    }
    uint64_t hits = 0;
    constexpr int kQueries = 50000;
    std::string value;
    for (int q = 0; q < kQueries; ++q) {
      const uint64_t key = (dist.Sample(rng) + shift) % 100000;
      if (sw.Lookup(key, &value) == LookupResult::kHit) {
        ++hits;
      } else {
        sw.RecordMiss(key);
      }
    }
    std::printf("%-7d %-10.3f %s\n", epoch, static_cast<double>(hits) / kQueries,
                event);
    agent.RunEpoch();  // consume HH reports, evict cold, insert+populate new hot
  }
  return 0;
}
