// The paper's other use case (§3.4, "Distributed in-memory caching"): scale out a
// SwitchKV-style deployment — SSD-backed storage clusters balanced by in-memory
// cache nodes — by adding a second cache layer with an independent hash and
// power-of-two-choices routing, instead of introducing switch hardware.
//
// Profile differences from the switch-based use case: a cache node is a DRAM server
// ~10x an SSD node (not a switch at rack aggregate), and queries to lower-layer
// cache nodes bypass the upper layer entirely (clients route directly), so there is
// no transit coupling between the layers.
//
//   $ ./examples/switchkv_scaleout
#include <cstdio>

#include "cluster/cluster_sim.h"

using namespace distcache;

int main() {
  std::printf("SwitchKV scale-out: 16 SSD clusters x 8 nodes; in-memory cache nodes "
              "at 10x an SSD node\n\n");
  std::printf("%-20s %12s %12s\n", "mechanism", "read-only", "5% writes");
  for (Mechanism m : {Mechanism::kNoCache, Mechanism::kCachePartition,
                      Mechanism::kCacheReplication, Mechanism::kDistCache}) {
    double results[2];
    int i = 0;
    for (double write_ratio : {0.0, 0.05}) {
      ClusterConfig cfg;
      cfg.mechanism = m;
      cfg.num_spine = 16;        // upper-layer in-memory cache nodes
      cfg.num_racks = 16;        // one lower-layer cache node per SSD cluster
      cfg.servers_per_rack = 8;  // SSD storage nodes per cluster
      cfg.spine_capacity = 10.0;  // DRAM node ~ 10x an SSD node
      cfg.leaf_capacity = 10.0;
      cfg.per_switch_objects = 64;
      cfg.num_keys = 10'000'000;
      cfg.zipf_theta = 0.99;
      cfg.write_ratio = write_ratio;
      ClusterSim sim(cfg);
      results[i++] = sim.SaturationThroughput();
    }
    std::printf("%-20s %12.0f %12.0f\n", MechanismName(m).c_str(), results[0],
                results[1]);
  }
  std::printf("\nThe same mechanism balances the in-memory tier without any switch\n"
              "hardware: DistCache matches CacheReplication on reads while keeping\n"
              "write amplification at two copies.\n");
  return 0;
}
