// Quickstart: bring up a complete DistCache deployment on one machine — spine and
// leaf cache switches, storage servers and a client — then read and write through
// the client library.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "runtime/runtime.h"

using distcache::DistCacheRuntime;
using distcache::RuntimeConfig;

int main() {
  // A miniature cluster: 4 spine switches, 4 storage racks x 4 servers, 16 hot
  // objects cached per switch, 10k objects stored.
  RuntimeConfig config;
  config.num_spine = 4;
  config.num_racks = 4;
  config.servers_per_rack = 4;
  config.per_switch_objects = 16;
  config.num_keys = 10000;

  DistCacheRuntime runtime(config);
  runtime.Start();
  auto client = runtime.NewClient(/*seed=*/1);

  // Reads: hot keys (low ranks) are served by cache switches, cold keys by servers.
  for (uint64_t key : {0ull, 1ull, 5000ull, 9999ull}) {
    const auto value = client->Get(key);
    std::printf("GET %-5llu -> %s\n", static_cast<unsigned long long>(key),
                value.ok() ? value.value().c_str() : value.status().ToString().c_str());
  }

  // A write runs the two-phase coherence protocol over every cached copy; the next
  // read returns the new value no matter which copy serves it.
  client->Put(0, "updated-value").ok();
  std::printf("PUT 0     -> ok\nGET 0     -> %s\n", client->Get(0).value().c_str());

  runtime.Stop();
  const auto& counters = runtime.counters();
  std::printf("\ncache hits=%llu misses=%llu server gets=%llu writes=%llu "
              "invalidations=%llu cache updates=%llu\n",
              static_cast<unsigned long long>(counters.cache_hits.load()),
              static_cast<unsigned long long>(counters.cache_misses.load()),
              static_cast<unsigned long long>(counters.server_gets.load()),
              static_cast<unsigned long long>(counters.writes.load()),
              static_cast<unsigned long long>(counters.invalidations.load()),
              static_cast<unsigned long long>(counters.cache_updates.load()));
  return 0;
}
