// Cache-coherence walkthrough (§4.3): runs a write-heavy workload against a hot,
// twice-cached object and traces the two-phase update protocol — phase 1 invalidates
// every copy, the primary is updated and acknowledged, phase 2 re-validates with the
// new value. Readers racing with the writer never see a stale or mixed value.
//
//   $ ./examples/coherence_demo
#include <atomic>
#include <cstdio>
#include <thread>

#include "runtime/runtime.h"

using namespace distcache;

int main() {
  RuntimeConfig config;
  config.num_spine = 2;
  config.num_racks = 2;
  config.servers_per_rack = 2;
  config.per_switch_objects = 8;
  config.num_keys = 1000;
  DistCacheRuntime runtime(config);
  runtime.Start();

  // Key 0 is the hottest object: cached in one spine switch and one leaf switch.
  std::atomic<bool> done{false};
  std::atomic<int> reads{0};
  std::atomic<int> anomalies{0};
  std::thread reader([&] {
    auto client = runtime.NewClient(2);
    while (!done) {
      const auto v = client->Get(0);
      ++reads;
      if (!v.ok() || v.value().empty()) {
        ++anomalies;  // two-phase coherence must never expose a torn value
      }
    }
  });

  auto writer = runtime.NewClient(1);
  for (int version = 0; version < 500; ++version) {
    writer->Put(0, "version-" + std::to_string(version)).ok();
  }
  done = true;
  reader.join();

  const auto final_value = runtime.NewClient(3)->Get(0);
  runtime.Stop();

  const auto& counters = runtime.counters();
  std::printf("writes                : %llu\n",
              static_cast<unsigned long long>(counters.writes.load()));
  std::printf("phase-1 invalidations : %llu (2 copies per write)\n",
              static_cast<unsigned long long>(counters.invalidations.load()));
  std::printf("phase-2 updates       : %llu\n",
              static_cast<unsigned long long>(counters.cache_updates.load()));
  std::printf("concurrent reads      : %d, torn/stale anomalies: %d\n", reads.load(),
              anomalies.load());
  std::printf("final value           : %s\n", final_value.value().c_str());
  return anomalies.load() == 0 ? 0 : 1;
}
