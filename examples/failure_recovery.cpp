// Failure handling (§4.4): fail spine cache switches at runtime and watch the
// controller remap their partitions onto the survivors with consistent hashing, then
// bring the switches back. Compact version of Figure 11.
//
//   $ ./examples/failure_recovery
#include <cstdio>

#include "cluster/cluster_sim.h"

using namespace distcache;

int main() {
  ClusterConfig cfg;
  cfg.mechanism = Mechanism::kDistCache;
  cfg.num_spine = 16;
  cfg.num_racks = 16;
  cfg.servers_per_rack = 16;
  cfg.per_switch_objects = 50;
  cfg.zipf_theta = 0.99;
  ClusterSim sim(cfg);

  const double max_rate = sim.SaturationThroughput();
  const double offered = 0.5 * max_rate;
  std::printf("max throughput %.0f, sending at %.0f\n\n", max_rate, offered);

  const auto report = [&](const char* phase) {
    std::printf("%-34s achieved %6.0f / %.0f\n", phase, sim.AchievedThroughput(offered),
                offered);
  };
  report("healthy");
  sim.FailSpine(0);
  sim.FailSpine(1);
  report("2 spine switches failed");
  sim.RunFailureRecovery();
  report("controller remapped partitions");
  sim.RecoverSpine(0);
  sim.RecoverSpine(1);
  report("switches restored");
  return 0;
}
