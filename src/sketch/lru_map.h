// Bounded LRU map. Used by cache nodes for victim selection when a partition's slot
// budget is exceeded, and generally useful as a substrate container.
#ifndef DISTCACHE_SKETCH_LRU_MAP_H_
#define DISTCACHE_SKETCH_LRU_MAP_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

namespace distcache {

template <typename K, typename V>
class LruMap {
 public:
  explicit LruMap(size_t capacity) : capacity_(capacity) {}

  // Inserts or updates; returns the evicted entry, if any.
  std::optional<std::pair<K, V>> Put(const K& key, V value) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      Touch(it->second);
      return std::nullopt;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    if (index_.size() <= capacity_) {
      return std::nullopt;
    }
    auto victim = std::move(order_.back());
    index_.erase(victim.first);
    order_.pop_back();
    return victim;
  }

  // Looks up and promotes to most-recently-used.
  V* Get(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      return nullptr;
    }
    Touch(it->second);
    return &it->second->second;
  }

  // Lookup without promoting.
  const V* Peek(const K& key) const {
    auto it = index_.find(key);
    return it == index_.end() ? nullptr : &it->second->second;
  }

  // Mutable lookup without promoting (update a line in place — e.g. a dirty
  // bit — without counting as a use).
  V* PeekMutable(const K& key) {
    auto it = index_.find(key);
    return it == index_.end() ? nullptr : &it->second->second;
  }

  bool Erase(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      return false;
    }
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  bool Contains(const K& key) const { return index_.contains(key); }
  size_t size() const { return index_.size(); }
  size_t capacity() const { return capacity_; }
  bool empty() const { return index_.empty(); }

  // Least-recently-used entry, if any (the next eviction victim).
  const std::pair<K, V>* Oldest() const { return order_.empty() ? nullptr : &order_.back(); }

  // Recency-ordered view, most-recently-used first (iteration / invariant checks).
  const std::list<std::pair<K, V>>& entries() const { return order_; }

 private:
  using Entry = std::pair<K, V>;
  using Iter = typename std::list<Entry>::iterator;

  void Touch(Iter it) { order_.splice(order_.begin(), order_, it); }

  size_t capacity_;
  std::list<Entry> order_;
  std::unordered_map<K, Iter> index_;
};

}  // namespace distcache

#endif  // DISTCACHE_SKETCH_LRU_MAP_H_
