// NetCache-style heavy-hitter (HH) detector: Count-Min sketch for frequency estimates
// of uncached keys + Bloom filter to dedupe reports + a small top-k table. The switch
// local agent uses the reports to decide cache insertions/evictions (§4.3, §5).
//
// Counters are reset every epoch (1 second in the paper). A key is reported as a heavy
// hitter when its estimated count within the epoch crosses `report_threshold`.
#ifndef DISTCACHE_SKETCH_HEAVY_HITTER_H_
#define DISTCACHE_SKETCH_HEAVY_HITTER_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sketch/bloom_filter.h"
#include "sketch/count_min.h"

namespace distcache {

// Merges per-detector heavy-hitter report lists (key, estimated count) into one
// hottest-first list: counts for the same key sum (each detector saw a disjoint
// slice of the traffic), ties break on the smaller key for determinism. This is the
// controller-side aggregation step of online cache re-allocation — every switch
// (or simulation shard) reports its local top keys and the controller re-allocates
// from the merged ranking (§4.1, §6.4).
std::vector<std::pair<uint64_t, uint64_t>> MergeHeavyHitterReports(
    const std::vector<std::vector<std::pair<uint64_t, uint32_t>>>& reports);

class HeavyHitterDetector {
 public:
  struct Config {
    CountMinSketch::Config sketch;
    BloomFilter::Config bloom;
    uint32_t report_threshold = 64;  // epoch-relative heaviness cutoff
    size_t max_reports_per_epoch = 1024;
  };

  explicit HeavyHitterDetector(const Config& config);

  // Records one access to an *uncached* key (cached keys are counted by the per-object
  // hit counters instead, as in NetCache). Returns true if this access pushed the key
  // over the report threshold for the first time this epoch.
  bool Record(uint64_t key);

  // Keys reported this epoch, hottest-first by sketch estimate.
  std::vector<std::pair<uint64_t, uint32_t>> TopReports() const;

  // Clears sketch, bloom filter and report list. Called by the agent every second.
  void NewEpoch();

  uint32_t Estimate(uint64_t key) const { return sketch_.Estimate(key); }
  size_t MemoryBits() const { return sketch_.MemoryBits() + bloom_.MemoryBits(); }

 private:
  Config config_;
  CountMinSketch sketch_;
  BloomFilter bloom_;
  std::unordered_map<uint64_t, uint32_t> reports_;
};

}  // namespace distcache

#endif  // DISTCACHE_SKETCH_HEAVY_HITTER_H_
