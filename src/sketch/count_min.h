// Count-Min sketch (Cormode & Muthukrishnan) — the frequency estimator inside the
// switch heavy-hitter detector. The paper's prototype uses 4 register arrays × 64K
// 16-bit slots per array (§5); those are the defaults here, including saturating
// 16-bit counters to mirror the data-plane register width.
#ifndef DISTCACHE_SKETCH_COUNT_MIN_H_
#define DISTCACHE_SKETCH_COUNT_MIN_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/hash.h"

namespace distcache {

class CountMinSketch {
 public:
  struct Config {
    size_t rows = 4;        // paper: 4 register arrays
    size_t width = 65536;   // paper: 64K slots per array
    uint32_t counter_max = std::numeric_limits<uint16_t>::max();  // 16-bit registers
    uint64_t seed = 0x5eedc0de;
  };

  explicit CountMinSketch(const Config& config);

  // Increments the counters for `key` and returns the post-update estimate.
  uint32_t Update(uint64_t key);

  // Point-query estimate of the count of `key` (an overestimate in expectation).
  uint32_t Estimate(uint64_t key) const;

  // Zeroes all counters. The switch agent does this every second (§5).
  void Reset();

  size_t rows() const { return config_.rows; }
  size_t width() const { return config_.width; }

  // Total bits of state — used by the switch resource model (Table 1).
  size_t MemoryBits() const { return config_.rows * config_.width * 16; }

 private:
  size_t Slot(size_t row, uint64_t key) const {
    return static_cast<size_t>(hashes_.Hash(row, key) % config_.width);
  }

  Config config_;
  HashFamily hashes_;
  std::vector<std::vector<uint32_t>> counters_;
};

}  // namespace distcache

#endif  // DISTCACHE_SKETCH_COUNT_MIN_H_
