#include "sketch/heavy_hitter.h"

#include <algorithm>
#include <unordered_map>

namespace distcache {

std::vector<std::pair<uint64_t, uint64_t>> MergeHeavyHitterReports(
    const std::vector<std::vector<std::pair<uint64_t, uint32_t>>>& reports) {
  std::unordered_map<uint64_t, uint64_t> merged;
  for (const auto& list : reports) {
    for (const auto& [key, count] : list) {
      merged[key] += count;
    }
  }
  std::vector<std::pair<uint64_t, uint64_t>> out(merged.begin(), merged.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) {
      return a.second > b.second;
    }
    return a.first < b.first;
  });
  return out;
}

HeavyHitterDetector::HeavyHitterDetector(const Config& config)
    : config_(config), sketch_(config.sketch), bloom_(config.bloom) {}

bool HeavyHitterDetector::Record(uint64_t key) {
  const uint32_t estimate = sketch_.Update(key);
  if (estimate < config_.report_threshold) {
    return false;
  }
  if (reports_.size() >= config_.max_reports_per_epoch && !reports_.contains(key)) {
    return false;
  }
  // The bloom filter suppresses duplicate reports for the same key within an epoch;
  // we still refresh the stored estimate so TopReports ranks by the latest count.
  const bool already_reported = bloom_.InsertAndTest(key);
  reports_[key] = estimate;
  return !already_reported;
}

std::vector<std::pair<uint64_t, uint32_t>> HeavyHitterDetector::TopReports() const {
  std::vector<std::pair<uint64_t, uint32_t>> out(reports_.begin(), reports_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) {
      return a.second > b.second;
    }
    return a.first < b.first;
  });
  return out;
}

void HeavyHitterDetector::NewEpoch() {
  sketch_.Reset();
  bloom_.Reset();
  reports_.clear();
}

}  // namespace distcache
