#include "sketch/bloom_filter.h"

namespace distcache {

BloomFilter::BloomFilter(const Config& config)
    : config_(config),
      hashes_(config.hashes, config.seed),
      bits_(config.hashes, std::vector<bool>(config.bits, false)) {}

bool BloomFilter::InsertAndTest(uint64_t key) {
  bool present = true;
  for (size_t r = 0; r < config_.hashes; ++r) {
    std::vector<bool>::reference bit = bits_[r][Slot(r, key)];
    if (!bit) {
      present = false;
      bit = true;
    }
  }
  return present;
}

bool BloomFilter::MayContain(uint64_t key) const {
  for (size_t r = 0; r < config_.hashes; ++r) {
    if (!bits_[r][Slot(r, key)]) {
      return false;
    }
  }
  return true;
}

void BloomFilter::Reset() {
  for (auto& row : bits_) {
    row.assign(row.size(), false);
  }
}

}  // namespace distcache
