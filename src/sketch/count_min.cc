#include "sketch/count_min.h"

#include <algorithm>

namespace distcache {

CountMinSketch::CountMinSketch(const Config& config)
    : config_(config),
      hashes_(config.rows, config.seed),
      counters_(config.rows, std::vector<uint32_t>(config.width, 0)) {}

uint32_t CountMinSketch::Update(uint64_t key) {
  uint32_t estimate = std::numeric_limits<uint32_t>::max();
  for (size_t r = 0; r < config_.rows; ++r) {
    uint32_t& cell = counters_[r][Slot(r, key)];
    if (cell < config_.counter_max) {
      ++cell;  // saturating, like a fixed-width data-plane register
    }
    estimate = std::min(estimate, cell);
  }
  return estimate;
}

uint32_t CountMinSketch::Estimate(uint64_t key) const {
  uint32_t estimate = std::numeric_limits<uint32_t>::max();
  for (size_t r = 0; r < config_.rows; ++r) {
    estimate = std::min(estimate, counters_[r][Slot(r, key)]);
  }
  return estimate;
}

void CountMinSketch::Reset() {
  for (auto& row : counters_) {
    std::fill(row.begin(), row.end(), 0);
  }
}

}  // namespace distcache
