// Bloom filter — paired with the Count-Min sketch in the heavy-hitter detector to
// avoid reporting the same heavy key to the switch agent repeatedly. The paper's
// prototype uses 3 register arrays × 256K 1-bit slots (§5); those are the defaults.
#ifndef DISTCACHE_SKETCH_BLOOM_FILTER_H_
#define DISTCACHE_SKETCH_BLOOM_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/hash.h"

namespace distcache {

class BloomFilter {
 public:
  struct Config {
    size_t hashes = 3;       // paper: 3 register arrays
    size_t bits = 262144;    // paper: 256K 1-bit slots per array
    uint64_t seed = 0xb100f11e;
  };

  explicit BloomFilter(const Config& config);

  // Inserts `key`; returns true if the key was possibly already present (i.e., all its
  // bits were already set before this insert).
  bool InsertAndTest(uint64_t key);

  void Insert(uint64_t key) { InsertAndTest(key); }

  // True if `key` may be present (false positives possible, negatives exact).
  bool MayContain(uint64_t key) const;

  void Reset();

  size_t MemoryBits() const { return config_.hashes * config_.bits; }

 private:
  size_t Slot(size_t row, uint64_t key) const {
    return static_cast<size_t>(hashes_.Hash(row, key) % config_.bits);
  }

  Config config_;
  HashFamily hashes_;
  // One bit-array per hash, as in the P4 implementation (one register array per stage).
  std::vector<std::vector<bool>> bits_;
};

}  // namespace distcache

#endif  // DISTCACHE_SKETCH_BLOOM_FILTER_H_
