#include "cluster/fluid_backend.h"

#include <chrono>
#include <cmath>

namespace distcache {

FluidBackend::FluidBackend(const SimBackendConfig& config)
    : config_(config), sim_(config.cluster) {}

BackendStats FluidBackend::Run(uint64_t num_requests) {
  const auto t0 = std::chrono::steady_clock::now();
  const double offered = 0.5 * sim_.TotalServerCapacity();
  const LoadSnapshot snap =
      sim_.RunTicks(offered, config_.cluster.ticks_per_measurement);
  const auto t1 = std::chrono::steady_clock::now();

  BackendStats st;
  st.spine_load = snap.spine;
  st.leaf_load = snap.leaf;
  st.server_load = snap.server;

  // Analytic hit probability: the pmf mass of every cached head key.
  const PopularityVector& pv = sim_.popularity();
  double cached_mass = 0.0;
  for (uint64_t key = 0; key < pv.head.size(); ++key) {
    if (sim_.allocation().CopiesOf(key).cached()) {
      cached_mass += pv.head[key];
    }
  }
  st.requests = num_requests;
  const double reads =
      static_cast<double>(num_requests) * (1.0 - config_.cluster.write_ratio);
  st.reads = static_cast<uint64_t>(std::llround(reads));
  st.writes = num_requests - st.reads;
  st.cache_hits = static_cast<uint64_t>(std::llround(reads * cached_mass));
  st.server_reads = st.reads - st.cache_hits;
  // Per-layer split from the fluid arrival rates (exact for read-only workloads;
  // under writes the layer loads include coherence touches, so it is approximate).
  double spine_arrivals = 0.0;
  double leaf_arrivals = 0.0;
  for (double x : snap.spine) spine_arrivals += x;
  for (double x : snap.leaf) leaf_arrivals += x;
  const double cache_arrivals = spine_arrivals + leaf_arrivals;
  if (cache_arrivals > 0.0) {
    st.spine_hits = static_cast<uint64_t>(
        std::llround(static_cast<double>(st.cache_hits) * spine_arrivals / cache_arrivals));
    st.leaf_hits = st.cache_hits - st.spine_hits;
  }
  st.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return st;
}

}  // namespace distcache
