#include "cluster/fluid_backend.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "cluster/latency.h"

namespace distcache {

FluidBackend::FluidBackend(const SimBackendConfig& config)
    : config_(config),
      sim_(config.cluster),
      events_(config.events),
      phases_(config.phases),
      spine_alive_(config.cluster.num_spine, 1) {
  SortEventsByRequest(events_);
  SortPhasesByStart(phases_);
}

double FluidBackend::CachedMass() {
  // Static policies: the allocation-defined cached mass that is reachable given
  // the alive set. Dynamic policies: the per-policy steady-state hit model
  // (Che/FIFO/LFU fixed point composed across layers, cluster_sim.cc).
  return sim_.UsesDynamicPolicy() ? sim_.PolicyHitMass() : ReachableCachedMass();
}

double FluidBackend::ReachableCachedMass() const {
  const PopularityVector& pv = sim_.popularity();
  double mass = 0.0;
  for (uint64_t rank = 0; rank < pv.head.size(); ++rank) {
    const CacheCopies copies = sim_.allocation().CopiesOf(sim_.KeyOfRank(rank));
    // Reachable iff some copy is on an alive node; only top-layer nodes die.
    bool reachable = false;
    for (uint8_t i = 0; i < copies.num && !reachable; ++i) {
      reachable = copies.nodes[i].layer != 0 || spine_alive_[copies.nodes[i].index] != 0;
    }
    if (!reachable && copies.replicated_all_spines) {
      for (uint32_t s = 0; s < spine_alive_.size() && !reachable; ++s) {
        reachable = spine_alive_[s] != 0;
      }
    }
    if (reachable) {
      mass += pv.head[rank];
    }
  }
  return mass;
}

BackendStats FluidBackend::Run(uint64_t num_requests) {
  const auto t0 = std::chrono::steady_clock::now();
  // Open-loop mode pins the fluid arrival rate to the configured mean offered
  // load (bursts average out in the fluid limit); the historical closed-loop
  // default is half the aggregate server capacity.
  const QueueModelConfig& queue = config_.queue;
  const double offered = queue.enabled() ? queue.arrival.MeanRate()
                                         : 0.5 * sim_.TotalServerCapacity();

  BackendStats st;
  LoadSnapshot snap;
  if (events_.empty() && phases_.empty() && config_.sample_interval == 0) {
    // Historical single-measurement path.
    snap = sim_.RunTicks(offered, config_.cluster.ticks_per_measurement);
    const double write_ratio = config_.cluster.write_ratio;
    const double reads =
        static_cast<double>(num_requests) * (1.0 - write_ratio);
    st.reads = static_cast<uint64_t>(std::llround(reads));
    st.cache_hits =
        static_cast<uint64_t>(std::llround(reads * CachedMass()));
  } else {
    // Timeline mode: one fluid measurement per segment, where segments are
    // delimited by the sampling grid *and* every event/phase timestamp — so each
    // step applies exactly "before the at_request-th request" like the
    // request-level engines, even with no sampling or with steps inside the final
    // interval. Off-grid steps simply contribute extra series points
    // (IntervalPoint carries its own request count, so non-uniform widths are
    // self-describing).
    std::vector<uint64_t> boundaries{0};
    if (config_.sample_interval > 0) {
      for (uint64_t t = config_.sample_interval; t < num_requests;
           t += config_.sample_interval) {
        boundaries.push_back(t);
      }
    }
    for (const ClusterEvent& event : events_) {
      if (event.at_request > 0 && event.at_request < num_requests) {
        boundaries.push_back(event.at_request);
      }
    }
    for (const WorkloadPhase& phase : phases_) {
      if (phase.start_request > 0 && phase.start_request < num_requests) {
        boundaries.push_back(phase.start_request);
      }
    }
    std::sort(boundaries.begin(), boundaries.end());
    boundaries.erase(std::unique(boundaries.begin(), boundaries.end()),
                     boundaries.end());
    boundaries.push_back(num_requests);
    size_t next_event = 0;
    size_t next_phase = 0;
    for (size_t seg = 0; seg + 1 < boundaries.size(); ++seg) {
      const uint64_t start = boundaries[seg];
      const uint64_t end = boundaries[seg + 1];
      // Phases before events on timestamp ties, like the request-level engines.
      while (next_phase < phases_.size() &&
             phases_[next_phase].start_request <= start) {
        const WorkloadPhase& phase = phases_[next_phase++];
        sim_.SetWorkload(phase.zipf_theta, phase.write_ratio);
        sim_.SetHotShift(phase.hot_shift);
      }
      while (next_event < events_.size() &&
             events_[next_event].at_request <= start) {
        const ClusterEvent& event = events_[next_event++];
        switch (event.kind) {
          case ClusterEvent::Kind::kFailSpine:
            if (event.spine < spine_alive_.size()) {
              spine_alive_[event.spine] = 0;
              sim_.FailSpine(event.spine);
            }
            break;
          case ClusterEvent::Kind::kRecoverSpine:
            if (event.spine < spine_alive_.size()) {
              spine_alive_[event.spine] = 1;
              sim_.RecoverSpine(event.spine);
            }
            break;
          case ClusterEvent::Kind::kRunRecovery:
            sim_.RunFailureRecovery();
            break;
          case ClusterEvent::Kind::kShiftHotspot:
            sim_.SetHotShift(event.value);
            break;
          case ClusterEvent::Kind::kReallocateCache:
            sim_.ReallocateCacheToHotSet();
            break;
        }
      }
      snap = sim_.RunTicks(offered, 2);
      const double write_ratio = sim_.config().write_ratio;
      const double fraction =
          offered <= 0.0 ? 1.0 : std::clamp(snap.achieved / offered, 0.0, 1.0);
      BackendStats::IntervalPoint pt;
      pt.requests = end - start;
      pt.delivered = static_cast<uint64_t>(
          std::llround(fraction * static_cast<double>(pt.requests)));
      pt.dropped = pt.requests - pt.delivered;
      pt.reads = static_cast<uint64_t>(std::llround(
          static_cast<double>(pt.requests) * (1.0 - write_ratio)));
      pt.cache_hits = static_cast<uint64_t>(std::llround(
          static_cast<double>(pt.reads) * fraction * CachedMass()));
      st.series.push_back(pt);
      st.reads += pt.reads;
      st.cache_hits += pt.cache_hits;
      st.dropped += pt.dropped;
    }
  }
  if (queue.enabled()) {
    // Analytic latency distribution for the read mix: per-key shifted
    // exponentials (M/M/1 closed form, per-layer μ) against the end-of-run
    // loads, scaled to the read count so the histogram is sample-comparable
    // with the request-level engines'.
    const double server_rate =
        queue.server_service_rate > 0.0 ? queue.server_service_rate : 1.0;
    FillAnalyticLatency(sim_, offered,
                        ResolveServiceRates(queue, config_.cluster), server_rate,
                        queue.hop_cost, st.reads, &st.latency);
  }
  const auto t1 = std::chrono::steady_clock::now();

  st.cache_load = snap.cache;
  st.server_load = snap.server;
  st.requests = num_requests;
  st.writes = num_requests - st.reads;
  st.server_reads = st.reads - st.cache_hits;
  // Per-layer split from the fluid arrival rates (exact for read-only workloads;
  // under writes the layer loads include coherence touches, so it is approximate).
  // spine_hits is the top layer's share; leaf_hits covers every lower layer.
  double spine_arrivals = 0.0;
  double leaf_arrivals = 0.0;
  for (size_t l = 0; l < snap.cache.size(); ++l) {
    for (double x : snap.cache[l]) {
      (l == 0 ? spine_arrivals : leaf_arrivals) += x;
    }
  }
  const double cache_arrivals = spine_arrivals + leaf_arrivals;
  if (cache_arrivals > 0.0) {
    st.spine_hits = static_cast<uint64_t>(
        std::llround(static_cast<double>(st.cache_hits) * spine_arrivals / cache_arrivals));
    st.leaf_hits = st.cache_hits - st.spine_hits;
  }
  st.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return st;
}

}  // namespace distcache
