// Slotted (fluid) simulator of the full distributed switch-based caching architecture
// of Fig. 5, faithful to the paper's testbed methodology (§6.1):
//
//  * every storage server has normalized capacity 1.0 queries/s;
//  * every cache switch is rate-limited to the aggregate capacity of one storage rack
//    ("we use rate limiting to match the throughput of each emulated switch to the
//    aggregated throughput of the emulated storage servers in a rack");
//  * clients draw keys from uniform/Zipf distributions over 100M objects, with a
//    configurable write ratio;
//  * client ToRs route each read with the power-of-two-choices over the loads learned
//    from piggybacked telemetry; writes go to the primary server and run the
//    two-phase coherence protocol over all cached copies (§4.3, §6.3);
//  * reported throughput is normalized to one storage server.
//
// One tick models one telemetry epoch (1 second in the prototype). Within a tick the
// simulator processes hot keys hottest-first and routes each key's query rate to the
// candidate cache node with the smallest *accumulated* load — the fluid limit of
// queries interleaving across the epoch while telemetry keeps refreshing. Setting
// `stale_telemetry` instead freezes routing decisions on the previous epoch's loads
// (the herding ablation).
//
// Saturation throughput is the largest offered rate R such that no node's arrival
// rate exceeds its capacity — exactly the stationarity criterion the paper proves for
// the PoT process (Lemma 2) — found by binary search; optionally capped at the
// aggregate server capacity like the testbed's rate limits cap the measured value.
#ifndef DISTCACHE_CLUSTER_CLUSTER_SIM_H_
#define DISTCACHE_CLUSTER_CLUSTER_SIM_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/workload.h"
#include "common/zipf.h"
#include "core/allocation.h"
#include "core/cache_policy.h"
#include "core/controller.h"
#include "core/mechanism.h"
#include "core/pot_router.h"
#include "kv/placement.h"

namespace distcache {

struct ClusterConfig {
  Mechanism mechanism = Mechanism::kDistCache;
  uint32_t num_spine = 32;
  uint32_t num_racks = 32;
  uint32_t servers_per_rack = 32;

  // Cache hierarchy, top first (§3.1 multi-layer extension). Empty = the
  // historical two-layer shape {num_spine, num_racks} with per_switch_objects
  // per node. When set: size in [2, kMaxCacheLayers], the last entry is the
  // rack-bound leaf layer and must have nodes == num_racks, and the first
  // entry's node count must equal num_spine (the top layer keeps the "spine"
  // role: ECMP transit, failure injection). Use ResolvedCacheLayers() to read.
  std::vector<LayerSpec> cache_layers;

  uint64_t num_keys = 100'000'000;
  double zipf_theta = 0.99;  // 0 = uniform
  double write_ratio = 0.0;

  uint32_t per_switch_objects = 100;

  // Candidate-pool override: how many of the hottest ranks are individually
  // tracked (the allocation's candidate set, the dense samplers' head, and the
  // span of a dense route table). 0 = auto, 8× the total cache budget — the
  // historical shape, bit-identical to every pinned golden. bench_memwall
  // raises it toward the key space to reproduce the dense O(keys) memory wall
  // the compact tables / two-level sampler exist to break. Clamped to
  // num_keys.
  uint64_t candidate_pool = 0;

  // Per-node cache semantics (core/cache_policy.h). The default, kDistCache,
  // reproduces the historical engines bit-for-bit. kStaticTopK keeps the static
  // contents but routes serially (first alive candidate). The dynamic policies
  // (lru/lfu/fifo/segmented) switch the request engines to the per-node policy
  // runtime and this fluid engine to per-policy closed forms (Che's
  // approximation for LRU/SLRU, λT/(1+λT) for FIFO, top-C for LFU, composed
  // across layers by miss-stream thinning). Non-default policies require
  // mechanism == kDistCache; hierarchy/write knobs require a dynamic policy.
  CachePolicyKind cache_policy = CachePolicyKind::kDistCache;
  HierarchyMode cache_hierarchy = HierarchyMode::kInclusive;
  WritePolicy write_policy = WritePolicy::kWriteThrough;

  RoutingPolicy routing = RoutingPolicy::kPowerOfTwo;
  // false (default): routing sees loads accumulate within the epoch (continuous
  // telemetry). true: routing uses only the previous epoch's snapshot (herding
  // ablation).
  bool stale_telemetry = false;

  double server_capacity = 1.0;
  // 0 = auto: servers_per_rack × server_capacity (the paper's rate-limit discipline).
  double spine_capacity = 0.0;
  double leaf_capacity = 0.0;
  // Non-uniform layers (§3.3 remark): scale the spine layer as num_spine_override
  // switches of spine_capacity each (set both; leave 0 to mirror the leaf layer).

  // Two-phase coherence costs (§6.3): per write to a cached object, each copy costs
  // the primary server `coherence_server_cost` extra units (sending/awaiting one
  // invalidation and one update packet — a fraction of a full query's work), and each
  // caching switch `coherence_switch_cost` units (invalidate + update data-plane
  // touches).
  double coherence_server_cost = 0.25;
  double coherence_switch_cost = 2.0;

  // Cap the reported saturation throughput at aggregate server capacity, mirroring
  // the testbed whose clients/servers cannot offer more (paper figures saturate at
  // n × T). Disable to study the uncapped capacity of the cache layers.
  bool cap_at_server_aggregate = true;

  int ticks_per_measurement = 8;
  uint64_t seed = 42;
};

// The cluster's cache hierarchy: cache_layers when set, else the historical
// two-layer {num_spine, num_racks} shape with per_switch_objects per node.
std::vector<LayerSpec> ResolvedCacheLayers(const ClusterConfig& config);

// Validates cache_layers against the rest of the config; returns an empty string
// when consistent, else a human-readable error (used by the CLI and the engines).
std::string ValidateCacheLayers(const ClusterConfig& config);

// Engine-boundary enforcement: prints the ValidateCacheLayers error and aborts
// on an inconsistent hierarchy (in every build mode — release builds must not
// proceed into out-of-bounds allocation writes).
void CheckCacheLayersOrDie(const ClusterConfig& config);

// Same enforcement for the cache-policy knobs (ValidateCachePolicy over the
// config's policy/hierarchy/write/mechanism combination).
void CheckCachePolicyOrDie(const ClusterConfig& config);

// Per-tick load snapshot (arrival units, not utilization).
struct LoadSnapshot {
  // One vector per cache layer, top first; cache.front() is the spine layer and
  // cache.back() the rack-bound leaves.
  std::vector<std::vector<double>> cache;
  std::vector<double> server;
  double max_utilization = 0.0;
  // Offered minus dropped (each node completes at most its capacity).
  double achieved = 0.0;

  std::vector<double>& spine() { return cache.front(); }
  const std::vector<double>& spine() const { return cache.front(); }
  std::vector<double>& leaf() { return cache.back(); }
  const std::vector<double>& leaf() const { return cache.back(); }
};

class ClusterSim {
 public:
  explicit ClusterSim(const ClusterConfig& config);

  // Runs `ticks` epochs at the given offered rate; returns the last epoch's loads.
  LoadSnapshot RunTicks(double offered_rate, int ticks);

  // Max offered rate with every node stable (binary search, relative tolerance).
  double SaturationThroughput(double tolerance = 0.005);

  // Achieved (completed) throughput at a fixed offered rate — used by the failure
  // time series, where the offered rate is deliberately below saturation.
  double AchievedThroughput(double offered_rate, int ticks = 4);

  // Failure handling (§4.4 / Fig. 11).
  void FailSpine(uint32_t spine);
  void RecoverSpine(uint32_t spine);
  // Controller recovery: remap failed partitions onto alive spines. Without this,
  // objects whose spine copy died are served only by their leaf copy.
  void RunFailureRecovery() { recovery_ran_ = true; ApplyRemap(); }

  // Dynamic-workload handling (§6.4) — the fluid counterparts of the request-level
  // engines' phased timeline (see sim/engine_core.h):
  //
  // Rotates the rank→key mapping: popularity rank r now queries key
  // (r + shift) % num_keys, so the hot mass moves onto (typically uncached) new
  // keys while the cached set stays put. (Dynamic cache policies re-derive
  // their steady-state hit model — they adapt to the new hot set on their own,
  // which is exactly the comparison the policy benches make.)
  void SetHotShift(uint64_t shift) {
    hot_shift_ = shift;
    policy_dirty_ = true;
  }
  // Switches the workload's skew/write ratio (a phase boundary): the popularity
  // vector is re-derived when theta changes.
  void SetWorkload(double zipf_theta, double write_ratio);
  // Online cache re-allocation onto the current hot set. The fluid model is
  // analytic, so "observed counts" are exact: the controller refills with the
  // true hottest-first key list under the current rotation — the upper bound the
  // request-level engines' sketch-observed re-allocation converges to.
  void ReallocateCacheToHotSet();
  // The key id at popularity rank `rank` under the current rotation.
  uint64_t KeyOfRank(uint64_t rank) const;

  // True when the configured cache policy runs the per-node dynamic runtime in
  // the request engines (this fluid engine then uses the per-policy hit model).
  bool UsesDynamicPolicy() const { return PolicyIsDynamic(config_.cache_policy); }
  // Fraction of the total request mass the per-policy steady-state hit model
  // absorbs in the cache layers (dynamic policies only; the static policies'
  // equivalent is the allocation-based reachable cached mass the fluid backend
  // computes). Lazily recomputed after workload/failure state changes.
  double PolicyHitMass();

  double TotalServerCapacity() const {
    return config_.server_capacity * static_cast<double>(num_servers());
  }
  uint32_t num_servers() const { return config_.num_racks * config_.servers_per_rack; }
  const ClusterConfig& config() const { return config_; }
  const CacheAllocation& allocation() const { return *allocation_; }
  const Placement& placement() const { return placement_; }
  const PopularityVector& popularity() const { return popularity_; }
  const std::vector<LayerSpec>& layers() const { return layers_; }
  double layer_capacity(size_t layer) const { return layer_capacity_[layer]; }
  double spine_capacity() const { return layer_capacity_.front(); }
  double leaf_capacity() const { return layer_capacity_.back(); }

 private:
  void ApplyRemap();
  // Candidate loads for routing: accumulated-this-tick or previous snapshot,
  // normalized by the candidate's layer capacity.
  double RoutingLoad(CacheNodeId node, const LoadSnapshot& acc) const;
  void RouteKeyReads(uint64_t key, double read_rate, const CacheCopies& copies,
                     LoadSnapshot& acc);
  void ChargeWrite(uint64_t key, double write_rate, const CacheCopies& copies,
                   LoadSnapshot& acc);
  // Per-policy fluid analytics (dynamic cache policies): steady-state per-node
  // hit probabilities via a characteristic-time fixed point (Che's
  // approximation for LRU/segmented, λT/(1+λT) for FIFO, greedy top-C for
  // LFU), composed across layers by miss-stream thinning, then one tick's
  // loads charged from the closed form. The model is scale-free in the offered
  // rate (T scales inversely with rate), so it is computed once per
  // workload/alive state and reused across the saturation search.
  void ComputePolicyModel();
  void ChargePolicyTick(double offered_rate, LoadSnapshot& acc);
  // The candidate cache node of `key` at `layer` under the dynamic-policy
  // geometry (pure hash partition / rack binding; no failure remap).
  CacheNodeId PolicyCandidate(size_t layer, uint64_t key) const;

  ClusterConfig config_;
  std::vector<LayerSpec> layers_;  // resolved cache hierarchy, top first
  Placement placement_;
  std::unique_ptr<KeyDistribution> dist_;
  PopularityVector popularity_;
  std::unique_ptr<CacheAllocation> allocation_;
  std::unique_ptr<CacheController> controller_;
  std::vector<bool> spine_alive_;  // top-layer nodes (failure injection target)
  bool recovery_ran_ = true;  // partitions start mapped to their home switches
  uint64_t hot_shift_ = 0;    // current rank→key rotation (§6.4)
  std::vector<double> layer_capacity_;  // per layer, top first
  LoadSnapshot prev_;  // previous epoch's loads (telemetry snapshot)
  Rng rng_;

  // Dynamic-policy hit model state (see ComputePolicyModel).
  bool policy_dirty_ = true;
  std::vector<std::vector<double>> policy_hit_;       // [layer][head rank]
  std::vector<std::vector<double>> policy_tail_hit_;  // [layer][node]
  double policy_hit_mass_ = 0.0;
};

}  // namespace distcache

#endif  // DISTCACHE_CLUSTER_CLUSTER_SIM_H_
