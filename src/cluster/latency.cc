#include "cluster/latency.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace distcache {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// M/M/1 sojourn rate (the exponential parameter of service + queueing time) for
// arrival rate `load` at capacity `cap`. Non-positive means saturated: the
// queue is unbounded and the sojourn distribution has no finite mass — callers
// account that mass explicitly instead of assigning a finite pseudo-latency.
double SojournRate(double load, double cap) {
  if (load >= cap * 0.999) {
    return 0.0;
  }
  return cap - load;
}

// Walks the read mix (popularity head + uniform tail) and emits one mixture
// component per key: `weight` of the read mass, a deterministic network shift
// of hops·`rtt`, and the sojourn rate at the serving node (0 = saturated).
// Cache hits go to the candidate with the least mean latency, matching the
// power-of-k router's steady state. Hops follow the request-level engines'
// convention — cache hit at layer l costs l+1 hops, a server read costs
// num_layers+1 — which reduces to the historical 1/2/3 split on the two-layer
// default topology.
template <typename Emit>
void ForEachReadComponent(ClusterSim& sim, const LoadSnapshot& snap,
                          const std::vector<double>& cache_rates,
                          double server_rate, double rtt, Emit&& emit) {
  const CacheAllocation& alloc = sim.allocation();
  const PopularityVector& pop = sim.popularity();
  const double server_hops = static_cast<double>(snap.cache.size()) + 1.0;
  for (uint64_t key = 0; key < pop.head.size(); ++key) {
    const double weight = pop.head[key];
    if (weight <= 0.0) {
      continue;
    }
    const CacheCopies copies = alloc.CopiesOf(key);
    if (!copies.cached()) {
      emit(weight, server_hops * rtt,
           SojournRate(snap.server[sim.placement().ServerOf(key)], server_rate),
           /*hit=*/false);
      continue;
    }
    bool have = false;
    double best_mean = kInf;
    double best_shift = 0.0;
    double best_rate = 0.0;
    const auto consider = [&](double shift, double load, double cap) {
      const double rate = SojournRate(load, cap);
      const double mean = rate > 0.0 ? shift + 1.0 / rate : kInf;
      if (!have || mean < best_mean) {
        have = true;
        best_mean = mean;
        best_shift = shift;
        best_rate = rate;
      }
    };
    if (copies.replicated_all_spines) {
      consider(rtt, snap.spine()[0], cache_rates[0]);
    }
    for (uint8_t i = 0; i < copies.num; ++i) {
      const CacheNodeId node = copies.nodes[i];
      consider((static_cast<double>(node.layer) + 1.0) * rtt,
               snap.cache[node.layer][node.index], cache_rates[node.layer]);
    }
    emit(weight, best_shift, best_rate, /*hit=*/true);
  }
  // Tail keys: uniformly spread across servers; use the mean server load.
  if (pop.tail_mass > 0.0) {
    double mean_server = 0.0;
    for (double l : snap.server) {
      mean_server += l;
    }
    mean_server /= static_cast<double>(snap.server.size());
    emit(pop.tail_mass, server_hops * rtt,
         SojournRate(mean_server, server_rate), /*hit=*/false);
  }
}

struct WeightedLatency {
  double latency;
  double weight;
};

}  // namespace

LatencyReport ComputeLatencyReport(ClusterSim& sim, double offered_rate,
                                   const LatencyModelOptions& options) {
  const LoadSnapshot snap = sim.RunTicks(offered_rate, options.warmup_ticks);

  std::vector<double> cache_rates(snap.cache.size());
  for (size_t l = 0; l < cache_rates.size(); ++l) {
    cache_rates[l] = sim.layer_capacity(static_cast<uint32_t>(l));
  }

  std::vector<WeightedLatency> samples;
  double hit_weight = 0.0;
  double total_weight = 0.0;
  double overloaded_weight = 0.0;
  ForEachReadComponent(
      sim, snap, cache_rates, sim.config().server_capacity, options.network_rtt,
      [&](double weight, double shift, double rate, bool hit) {
        const double latency = rate > 0.0 ? shift + 1.0 / rate : kInf;
        samples.push_back({latency, weight});
        total_weight += weight;
        if (hit) {
          hit_weight += weight;
        }
        if (std::isinf(latency)) {
          overloaded_weight += weight;
        }
      });

  LatencyReport report;
  if (samples.empty() || total_weight <= 0.0) {
    return report;
  }
  // Infinities sort last, so a percentile rank inside the saturated mass reads
  // +infinity straight out of the walk.
  std::sort(samples.begin(), samples.end(),
            [](const WeightedLatency& a, const WeightedLatency& b) {
              return a.latency < b.latency;
            });
  double acc = 0.0;
  double mean = 0.0;
  double finite_weight = 0.0;
  const double p50_target = 0.50 * total_weight;
  const double p95_target = 0.95 * total_weight;
  const double p99_target = 0.99 * total_weight;
  for (const WeightedLatency& s : samples) {
    const double prev = acc;
    acc += s.weight;
    if (std::isfinite(s.latency)) {
      mean += s.latency * s.weight;
      finite_weight += s.weight;
    }
    if (prev < p50_target && acc >= p50_target) {
      report.p50 = s.latency;
    }
    if (prev < p95_target && acc >= p95_target) {
      report.p95 = s.latency;
    }
    if (prev < p99_target && acc >= p99_target) {
      report.p99 = s.latency;
    }
  }
  report.mean = finite_weight > 0.0 ? mean / finite_weight : kInf;
  report.hit_fraction = hit_weight / total_weight;
  report.overloaded_fraction = overloaded_weight / total_weight;
  return report;
}

void FillAnalyticLatency(ClusterSim& sim, double offered_rate,
                         const std::vector<double>& cache_rates,
                         double server_rate, double hop_cost,
                         uint64_t read_samples, LatencyHistogram* out,
                         int warmup_ticks) {
  if (read_samples == 0 || out == nullptr) {
    return;
  }
  const LoadSnapshot snap = sim.RunTicks(offered_rate, warmup_ticks);
  std::vector<double> density(LatencyHistogram::kNumBuckets, 0.0);
  double infinite_mass = 0.0;
  double total = 0.0;
  ForEachReadComponent(
      sim, snap, cache_rates, server_rate, hop_cost,
      [&](double weight, double shift, double rate, bool /*hit*/) {
        total += weight;
        if (rate <= 0.0) {
          infinite_mass += weight;
          return;
        }
        // Shifted-exponential CDF evaluated at the bucket edges; underflow
        // folds into bucket 0 and overflow into the top bucket, mirroring
        // LatencyHistogram::BucketOf's clamping of measured samples.
        double prev_cdf = 0.0;
        for (int b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
          double cdf = 1.0;
          if (b + 1 < LatencyHistogram::kNumBuckets) {
            const double hi = LatencyHistogram::BucketLowerEdge(b + 1);
            cdf = hi <= shift ? 0.0 : 1.0 - std::exp(-rate * (hi - shift));
          }
          density[b] += weight * (cdf - prev_cdf);
          prev_cdf = cdf;
          if (1.0 - cdf <= 1e-12) {
            break;  // remaining mass < 1e-12 of the component
          }
        }
      });
  if (total <= 0.0) {
    return;
  }
  const double scale = static_cast<double>(read_samples) / total;
  for (int b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
    const auto n = static_cast<uint64_t>(std::llround(density[b] * scale));
    if (n > 0) {
      out->Add(LatencyHistogram::BucketMidpoint(b), n);
    }
  }
  const auto n_inf = static_cast<uint64_t>(std::llround(infinite_mass * scale));
  if (n_inf > 0) {
    out->AddInfinite(n_inf);
  }
}

}  // namespace distcache
