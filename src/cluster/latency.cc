#include "cluster/latency.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace distcache {
namespace {

// M/M/1 sojourn time (service + queueing) for arrival rate `load` at capacity `cap`,
// in units of one storage server's service time.
double Sojourn(double load, double cap, const LatencyModelOptions& options) {
  if (load >= cap * 0.999) {
    return options.saturated_latency;
  }
  return 1.0 / (cap - load);
}

struct WeightedLatency {
  double latency;
  double weight;
};

}  // namespace

LatencyReport ComputeLatencyReport(ClusterSim& sim, double offered_rate,
                                   const LatencyModelOptions& options) {
  const LoadSnapshot snap = sim.RunTicks(offered_rate, options.warmup_ticks);
  const CacheAllocation& alloc = sim.allocation();
  const PopularityVector& pop = sim.popularity();
  const ClusterConfig& cfg = sim.config();

  std::vector<WeightedLatency> samples;
  samples.reserve(pop.head.size() + 1);
  double hit_weight = 0.0;
  double total_weight = 0.0;
  double overloaded_weight = 0.0;

  const auto add = [&](double latency, double weight, bool hit) {
    samples.push_back({latency, weight});
    total_weight += weight;
    if (hit) {
      hit_weight += weight;
    }
    if (latency >= options.saturated_latency) {
      overloaded_weight += weight;
    }
  };

  for (uint64_t key = 0; key < pop.head.size(); ++key) {
    const double weight = pop.head[key];
    if (weight <= 0.0) {
      continue;
    }
    const CacheCopies copies = alloc.CopiesOf(key);
    if (!copies.cached()) {
      // Uncached: client ToR -> spine -> leaf -> server and back.
      const double w =
          Sojourn(snap.server[sim.placement().ServerOf(key)], cfg.server_capacity,
                  options);
      add(3 * options.network_rtt + w, weight, /*hit=*/false);
      continue;
    }
    // Cached: the power-of-k router serves from the least-loaded candidate; a
    // top-layer (spine) hit is one hop closer than any lower-layer hit (which
    // transits a spine on the way down).
    double best = options.saturated_latency + 3 * options.network_rtt;
    if (copies.replicated_all_spines) {
      best = std::min(best,
                      options.network_rtt +
                          Sojourn(snap.spine()[0], sim.spine_capacity(), options));
    }
    for (uint8_t i = 0; i < copies.num; ++i) {
      const CacheNodeId node = copies.nodes[i];
      const double hops = node.layer == 0 ? 1.0 : 2.0;
      best = std::min(best, hops * options.network_rtt +
                                Sojourn(snap.cache[node.layer][node.index],
                                        sim.layer_capacity(node.layer), options));
    }
    add(best, weight, /*hit=*/true);
  }
  // Tail keys: uniformly spread across servers; use the mean server load.
  if (pop.tail_mass > 0.0) {
    double mean_server = 0.0;
    for (double l : snap.server) {
      mean_server += l;
    }
    mean_server /= static_cast<double>(snap.server.size());
    add(3 * options.network_rtt + Sojourn(mean_server, cfg.server_capacity, options),
        pop.tail_mass, /*hit=*/false);
  }

  LatencyReport report;
  if (samples.empty() || total_weight <= 0.0) {
    return report;
  }
  std::sort(samples.begin(), samples.end(),
            [](const WeightedLatency& a, const WeightedLatency& b) {
              return a.latency < b.latency;
            });
  double acc = 0.0;
  double mean = 0.0;
  const double p50_target = 0.50 * total_weight;
  const double p95_target = 0.95 * total_weight;
  const double p99_target = 0.99 * total_weight;
  for (const WeightedLatency& s : samples) {
    const double prev = acc;
    acc += s.weight;
    mean += s.latency * s.weight;
    if (prev < p50_target && acc >= p50_target) {
      report.p50 = s.latency;
    }
    if (prev < p95_target && acc >= p95_target) {
      report.p95 = s.latency;
    }
    if (prev < p99_target && acc >= p99_target) {
      report.p99 = s.latency;
    }
  }
  report.mean = mean / total_weight;
  report.hit_fraction = hit_weight / total_weight;
  report.overloaded_fraction = overloaded_weight / total_weight;
  return report;
}

}  // namespace distcache
