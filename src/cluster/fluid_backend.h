// SimBackend adapter over ClusterSim, the analytic fluid model.
//
// ClusterSim reasons about offered *rates*, not individual requests, so this backend
// is the licensed exception to the Run(n)-executes-n-requests contract (see
// sim/sim_backend.h): it runs the fluid simulator at 50% of aggregate server
// capacity for the configured number of telemetry epochs and reports analytic
// equivalents — per-node loads from the final epoch's LoadSnapshot, and the exact
// cache-hit probability (total pmf mass of cached keys) scaled to the nominal
// request count so BackendStats::hit_ratio() is comparable across backends.
//
// Use it to cross-validate the request-level backends: their measured hit ratios
// converge to this backend's analytic value as the request count grows.
//
// The backend honours the ClusterEvent timeline *and* the workload phase timeline
// by measuring one fluid segment per stretch of requests between consecutive
// boundaries, where boundaries come from the sampling grid, every event timestamp
// and every phase start — each step thus applies to the underlying ClusterSim
// (FailSpine / RecoverSpine / RunFailureRecovery / SetHotShift / SetWorkload /
// ReallocateCacheToHotSet) exactly before its at_request-th request, even without
// sampling. Phases apply before events on timestamp ties, matching the
// request-level engines. Each segment records its achieved-throughput fraction and
// reachable-copy hit mass into BackendStats::series — the fluid column of the
// Fig. 11 engine-parity bench and of bench_hotspot_shift (off-grid steps add
// extra, self-describing series points). Re-allocation is analytic: the fluid
// controller refills with the exact hottest-first key list (the bound the
// request-level engines' sketch-observed re-allocation approaches).
#ifndef DISTCACHE_CLUSTER_FLUID_BACKEND_H_
#define DISTCACHE_CLUSTER_FLUID_BACKEND_H_

#include <string>
#include <vector>

#include "cluster/cluster_sim.h"
#include "sim/sim_backend.h"

namespace distcache {

class FluidBackend : public SimBackend {
 public:
  explicit FluidBackend(const SimBackendConfig& config);

  std::string name() const override { return "fluid"; }
  BackendStats Run(uint64_t num_requests) override;

 private:
  // The analytic cache-hit probability under the configured policy: the static
  // reachable-copy mass below, or ClusterSim::PolicyHitMass() for dynamic
  // per-node policies (non-const: the policy model is lazily recomputed).
  double CachedMass();
  // Pmf mass of head keys with at least one reachable cached copy (leaf, or a
  // spine that is currently alive) — the analytic hit probability the
  // request-level engines' degraded routing converges to.
  double ReachableCachedMass() const;

  SimBackendConfig config_;
  ClusterSim sim_;
  std::vector<ClusterEvent> events_;   // sorted by at_request
  std::vector<WorkloadPhase> phases_;  // sorted by start_request
  std::vector<uint8_t> spine_alive_;
};

}  // namespace distcache

#endif  // DISTCACHE_CLUSTER_FLUID_BACKEND_H_
