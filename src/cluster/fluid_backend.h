// SimBackend adapter over ClusterSim, the analytic fluid model.
//
// ClusterSim reasons about offered *rates*, not individual requests, so this backend
// is the licensed exception to the Run(n)-executes-n-requests contract (see
// sim/sim_backend.h): it runs the fluid simulator at 50% of aggregate server
// capacity for the configured number of telemetry epochs and reports analytic
// equivalents — per-node loads from the final epoch's LoadSnapshot, and the exact
// cache-hit probability (total pmf mass of cached keys) scaled to the nominal
// request count so BackendStats::hit_ratio() is comparable across backends.
//
// Use it to cross-validate the request-level backends: their measured hit ratios
// converge to this backend's analytic value as the request count grows.
#ifndef DISTCACHE_CLUSTER_FLUID_BACKEND_H_
#define DISTCACHE_CLUSTER_FLUID_BACKEND_H_

#include <string>

#include "cluster/cluster_sim.h"
#include "sim/sim_backend.h"

namespace distcache {

class FluidBackend : public SimBackend {
 public:
  explicit FluidBackend(const SimBackendConfig& config);

  std::string name() const override { return "fluid"; }
  BackendStats Run(uint64_t num_requests) override;

 private:
  SimBackendConfig config_;
  ClusterSim sim_;
};

}  // namespace distcache

#endif  // DISTCACHE_CLUSTER_FLUID_BACKEND_H_
