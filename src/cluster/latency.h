// Query-latency model on top of the fluid cluster simulator (extension).
//
// The paper's introduction motivates load balancing with tail latency ("the system
// is bottlenecked by the overloaded nodes, resulting in low throughput and long tail
// latencies") but evaluates throughput only. This module closes the loop with a
// standard open-network approximation: each node is an M/M/1 station whose sojourn
// time at arrival rate λ and capacity μ is 1/(μ - λ); a query's latency is the
// network round-trip plus the sojourn at the node that serves it (cache hits are
// served by the less-loaded candidate, misses and uncached reads by the primary
// server). Percentiles are computed over the query mix, weighted by key popularity.
#ifndef DISTCACHE_CLUSTER_LATENCY_H_
#define DISTCACHE_CLUSTER_LATENCY_H_

#include "cluster/cluster_sim.h"

namespace distcache {

struct LatencyReport {
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  // Fraction of queries answered by a cache switch.
  double hit_fraction = 0.0;
  // Fraction of queries whose serving node is saturated (unbounded queueing delay);
  // their latency is reported as `saturated_latency`.
  double overloaded_fraction = 0.0;
};

struct LatencyModelOptions {
  // One-way network hop cost in service-time units of a storage server.
  double network_rtt = 0.2;
  // Latency assigned to queries landing on a saturated node.
  double saturated_latency = 100.0;
  int warmup_ticks = 4;
};

// Runs the simulator at `offered_rate` and derives the latency distribution of the
// read mix from the resulting per-node loads.
LatencyReport ComputeLatencyReport(ClusterSim& sim, double offered_rate,
                                   const LatencyModelOptions& options = {});

}  // namespace distcache

#endif  // DISTCACHE_CLUSTER_LATENCY_H_
