// Query-latency model on top of the fluid cluster simulator (extension).
//
// The paper's introduction motivates load balancing with tail latency ("the system
// is bottlenecked by the overloaded nodes, resulting in low throughput and long tail
// latencies") but evaluates throughput only. This module closes the loop with a
// standard open-network approximation: each node is an M/M/1 station whose sojourn
// time at arrival rate λ and capacity μ is 1/(μ - λ); a query's latency is the
// network round-trip plus the sojourn at the node that serves it (cache hits are
// served by the less-loaded candidate, misses and uncached reads by the primary
// server). Percentiles are computed over the query mix, weighted by key popularity.
#ifndef DISTCACHE_CLUSTER_LATENCY_H_
#define DISTCACHE_CLUSTER_LATENCY_H_

#include <vector>

#include "cluster/cluster_sim.h"
#include "common/stats.h"

namespace distcache {

struct LatencyReport {
  // Mean over the *finite* (non-saturated) query mass; +infinity when every
  // query lands on a saturated node.
  double mean = 0.0;
  // Percentiles over the full mix. A percentile whose rank falls inside the
  // saturated mass is +infinity — saturated nodes have unbounded queues, so no
  // finite number is honest there; `overloaded_fraction` carries the mass.
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  // Fraction of queries answered by a cache switch.
  double hit_fraction = 0.0;
  // Fraction of queries whose serving node is saturated (unbounded queueing
  // delay). This is the explicit overload account: saturated queries contribute
  // here and to the infinite percentile tail, never a finite pseudo-latency.
  double overloaded_fraction = 0.0;
};

struct LatencyModelOptions {
  // One-way network hop cost in service-time units of a storage server.
  double network_rtt = 0.2;
  int warmup_ticks = 4;
};

// Runs the simulator at `offered_rate` and derives the latency distribution of the
// read mix from the resulting per-node loads.
LatencyReport ComputeLatencyReport(ClusterSim& sim, double offered_rate,
                                   const LatencyModelOptions& options = {});

// Open-loop analytic latency fill: runs the fluid simulator at `offered_rate`
// and emits the read mix's full sojourn distribution — per key, a shifted
// exponential hops·hop_cost + Exp(μ − λ) at the serving node, the M/M/1 closed
// form generalized to per-layer service rates — into `out`, scaled to
// `read_samples` total counts. Saturated mass lands in the histogram's infinite
// bin. Hops follow the request-level engines' convention (cache hit at layer l:
// l+1; server read: num_layers+1), so the histogram is directly comparable with
// the sequential/sharded engines' measured ones at light load.
void FillAnalyticLatency(ClusterSim& sim, double offered_rate,
                         const std::vector<double>& cache_rates,
                         double server_rate, double hop_cost,
                         uint64_t read_samples, LatencyHistogram* out,
                         int warmup_ticks = 4);

}  // namespace distcache

#endif  // DISTCACHE_CLUSTER_LATENCY_H_
