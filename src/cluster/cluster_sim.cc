#include "cluster/cluster_sim.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace distcache {

ClusterSim::ClusterSim(const ClusterConfig& config)
    : config_(config),
      placement_(config.num_racks, config.servers_per_rack,
                 HashCombine(config.seed, 0x91ace3e22ULL)),
      dist_(MakeDistribution(config.num_keys, config.zipf_theta)),
      rng_(HashCombine(config.seed, 0xc1057e4ULL)) {
  AllocationConfig alloc;
  alloc.mechanism = config_.mechanism;
  alloc.num_spine = config_.num_spine;
  alloc.num_racks = config_.num_racks;
  alloc.per_switch_objects = config_.per_switch_objects;
  alloc.hash_seed = HashCombine(config_.seed, 0xd15ca4eULL);
  allocation_ = std::make_unique<CacheAllocation>(alloc, placement_);
  controller_ = std::make_unique<CacheController>(allocation_.get(), config_.num_spine);
  spine_alive_.assign(config_.num_spine, true);

  popularity_ = BuildPopularityVector(*dist_, allocation_->candidate_pool());

  const double rack_aggregate =
      config_.server_capacity * static_cast<double>(config_.servers_per_rack);
  spine_capacity_ = config_.spine_capacity > 0 ? config_.spine_capacity : rack_aggregate;
  leaf_capacity_ = config_.leaf_capacity > 0 ? config_.leaf_capacity : rack_aggregate;

  prev_.spine.assign(config_.num_spine, 0.0);
  prev_.leaf.assign(config_.num_racks, 0.0);
  prev_.server.assign(num_servers(), 0.0);
}

void ClusterSim::FailSpine(uint32_t spine) {
  if (spine < config_.num_spine) {
    spine_alive_[spine] = false;
    recovery_ran_ = false;  // hot objects of the dead switch lose their spine copy
  }
}

void ClusterSim::RecoverSpine(uint32_t spine) {
  if (spine < config_.num_spine) {
    spine_alive_[spine] = true;
    ApplyRemap();  // restoration returns remapped partitions to their home switch
  }
}

uint64_t ClusterSim::KeyOfRank(uint64_t rank) const {
  return distcache::KeyOfRank(rank, hot_shift_, config_.num_keys);
}

void ClusterSim::SetWorkload(double zipf_theta, double write_ratio) {
  if (zipf_theta != config_.zipf_theta) {
    config_.zipf_theta = zipf_theta;
    dist_ = MakeDistribution(config_.num_keys, zipf_theta);
    popularity_ = BuildPopularityVector(*dist_, allocation_->candidate_pool());
  }
  config_.write_ratio = write_ratio;
}

void ClusterSim::ReallocateCacheToHotSet() {
  std::vector<uint64_t> hottest(allocation_->candidate_pool());
  for (uint64_t rank = 0; rank < hottest.size(); ++rank) {
    hottest[rank] = KeyOfRank(rank);
  }
  controller_->ReallocateCache(hottest, placement_);
}

void ClusterSim::ApplyRemap() {
  for (uint32_t s = 0; s < config_.num_spine; ++s) {
    if (!spine_alive_[s] && controller_->IsAlive(s)) {
      controller_->OnSpineFailure(s);
    } else if (spine_alive_[s] && !controller_->IsAlive(s)) {
      controller_->OnSpineRecovery(s);
    }
  }
}

double ClusterSim::RoutingLoad(bool spine_layer, uint32_t index,
                               const LoadSnapshot& acc) const {
  const double load = config_.stale_telemetry
                          ? (spine_layer ? prev_.spine[index] : prev_.leaf[index])
                          : (spine_layer ? acc.spine[index] : acc.leaf[index]);
  return load / (spine_layer ? spine_capacity_ : leaf_capacity_);
}

void ClusterSim::RouteKeyReads(uint64_t key, double read_rate, const CacheCopies& copies,
                               LoadSnapshot& acc) {
  if (read_rate <= 0.0) {
    return;
  }
  if (!copies.cached()) {
    acc.server[placement_.ServerOf(key)] += read_rate;
    return;
  }

  if (copies.replicated_all_spines) {
    // CacheReplication: uniform spread over the spine replicas (plus the leaf copy,
    // which is just one more replica). Until the controller reacts to failures, the
    // client ToRs keep spraying dead replicas too; that traffic is lost (accounted at
    // tick end).
    std::vector<uint32_t> spines;
    for (uint32_t s = 0; s < config_.num_spine; ++s) {
      if (spine_alive_[s] || !recovery_ran_) {
        spines.push_back(s);
      }
    }
    const double n = static_cast<double>(spines.size() + (copies.leaf ? 1 : 0));
    if (n == 0) {
      acc.server[placement_.ServerOf(key)] += read_rate;
      return;
    }
    for (uint32_t s : spines) {
      acc.spine[s] += read_rate / n;
    }
    if (copies.leaf) {
      acc.leaf[*copies.leaf] += read_rate / n;
    }
    return;
  }

  // A dead spine switch keeps receiving its routed share until the controller remaps
  // the partition: the client ToRs have no failure signal beyond telemetry going
  // stale, so queries sent to the dead switch are simply lost (§4.4 / Fig. 11 shows
  // the resulting throughput dip). After RunFailureRecovery() the allocation maps the
  // partition to an alive switch and CopiesOf() no longer points here.
  const bool has_spine =
      copies.spine && (spine_alive_[*copies.spine] || !recovery_ran_);
  const bool has_leaf = copies.leaf.has_value();
  if (!has_spine && !has_leaf) {
    acc.server[placement_.ServerOf(key)] += read_rate;
    return;
  }
  if (!has_spine || !has_leaf) {
    if (has_spine) {
      acc.spine[*copies.spine] += read_rate;
    } else {
      acc.leaf[*copies.leaf] += read_rate;
    }
    return;
  }

  const uint32_t s = *copies.spine;
  const uint32_t l = *copies.leaf;
  switch (config_.routing) {
    case RoutingPolicy::kFirstChoice:
      acc.spine[s] += read_rate;
      return;
    case RoutingPolicy::kRandom:
      // Per-query coin flip: in the fluid limit, an even split.
      acc.spine[s] += read_rate / 2.0;
      acc.leaf[l] += read_rate / 2.0;
      return;
    case RoutingPolicy::kPowerOfTwo:
      break;
  }
  if (config_.stale_telemetry) {
    // Herding ablation: every query of the epoch chases the previous epoch's
    // less-loaded switch.
    if (RoutingLoad(true, s, acc) <= RoutingLoad(false, l, acc)) {
      acc.spine[s] += read_rate;
    } else {
      acc.leaf[l] += read_rate;
    }
    return;
  }
  // Continuous telemetry: per-query choices equalize the two candidates' utilization
  // — the fluid limit of the PoT process is a water-filling split.
  const double load_s = acc.spine[s];
  const double load_l = acc.leaf[l];
  const double util =
      (load_s + load_l + read_rate) / (spine_capacity_ + leaf_capacity_);
  double to_spine = util * spine_capacity_ - load_s;
  to_spine = std::clamp(to_spine, 0.0, read_rate);
  acc.spine[s] += to_spine;
  acc.leaf[l] += read_rate - to_spine;
}

void ClusterSim::ChargeWrite(uint64_t key, double write_rate, const CacheCopies& copies,
                             LoadSnapshot& acc) {
  if (write_rate <= 0.0) {
    return;
  }
  uint32_t alive_spines = 0;
  for (uint32_t s = 0; s < config_.num_spine; ++s) {
    alive_spines += spine_alive_[s] ? 1 : 0;
  }
  size_t num_copies = 0;
  if (copies.leaf) {
    num_copies += 1;
    acc.leaf[*copies.leaf] += config_.coherence_switch_cost * write_rate;
  }
  if (copies.replicated_all_spines) {
    num_copies += alive_spines;
    for (uint32_t s = 0; s < config_.num_spine; ++s) {
      if (spine_alive_[s]) {
        acc.spine[s] += config_.coherence_switch_cost * write_rate;
      }
    }
  } else if (copies.spine && spine_alive_[*copies.spine]) {
    num_copies += 1;
    acc.spine[*copies.spine] += config_.coherence_switch_cost * write_rate;
  }
  // The primary server performs the write plus one invalidation+update round per copy
  // (§4.3); uncached objects cost exactly one unit.
  acc.server[placement_.ServerOf(key)] +=
      write_rate * (1.0 + config_.coherence_server_cost * static_cast<double>(num_copies));
}

LoadSnapshot ClusterSim::RunTicks(double offered_rate, int ticks) {
  LoadSnapshot acc;
  for (int t = 0; t < ticks; ++t) {
    acc = LoadSnapshot{};
    acc.spine.assign(config_.num_spine, 0.0);
    acc.leaf.assign(config_.num_racks, 0.0);
    acc.server.assign(num_servers(), 0.0);

    const double write_ratio = config_.write_ratio;
    // Head ranks, hottest first (greedy order matters for water-filling quality).
    // The queried key id follows the current rank→key rotation, so a hot-spot
    // shift moves the head mass onto whatever is (un)cached at the new keys.
    for (uint64_t rank = 0; rank < popularity_.head.size(); ++rank) {
      const double rate = offered_rate * popularity_.head[rank];
      if (rate <= 0.0) {
        continue;
      }
      const uint64_t key = KeyOfRank(rank);
      const CacheCopies copies = allocation_->CopiesOf(key);
      RouteKeyReads(key, rate * (1.0 - write_ratio), copies, acc);
      ChargeWrite(key, rate * write_ratio, copies, acc);
    }
    // Tail: individually negligible keys, spread uniformly by the placement hash;
    // none are cached.
    const double tail_rate = offered_rate * popularity_.tail_mass;
    const double per_server = tail_rate / static_cast<double>(num_servers());
    for (double& load : acc.server) {
      load += per_server;
    }

    // Utilization & achieved throughput accounting. Traffic routed to a dead spine
    // switch is lost entirely; dead switches do not constrain stability (they serve
    // nothing), they only shed the queries sent to them.
    double max_util = 0.0;
    double dropped = 0.0;
    for (uint32_t s = 0; s < config_.num_spine; ++s) {
      if (!spine_alive_[s]) {
        dropped += acc.spine[s];
        continue;
      }
      const double util = acc.spine[s] / spine_capacity_;
      max_util = std::max(max_util, util);
      dropped += std::max(0.0, acc.spine[s] - spine_capacity_);
    }
    for (uint32_t l = 0; l < config_.num_racks; ++l) {
      const double util = acc.leaf[l] / leaf_capacity_;
      max_util = std::max(max_util, util);
      dropped += std::max(0.0, acc.leaf[l] - leaf_capacity_);
    }
    for (double load : acc.server) {
      const double util = load / config_.server_capacity;
      max_util = std::max(max_util, util);
      dropped += std::max(0.0, load - config_.server_capacity);
    }
    // Queries that are not spine cache hits still transit the spine layer (leaf hits
    // and server misses go through an ECMP-chosen spine, §3.4). Until recovery, a
    // dead spine blackholes its 1/num_spine share of that transit traffic as well —
    // this is why the paper sees the throughput drop by the failed switches' share of
    // the *total* throughput ("each spine switch provides 1/32 of the total
    // throughput", §6.4). Transit consumes no cache capacity (forwarding runs at line
    // rate; only the caching path is rate-limited).
    if (!recovery_ran_) {
      uint32_t dead = 0;
      double spine_arrivals = 0.0;
      for (uint32_t s = 0; s < config_.num_spine; ++s) {
        dead += spine_alive_[s] ? 0 : 1;
        spine_arrivals += acc.spine[s];
      }
      const double transit = std::max(0.0, offered_rate - spine_arrivals);
      dropped += transit * static_cast<double>(dead) / static_cast<double>(config_.num_spine);
    }
    acc.max_utilization = max_util;
    acc.achieved = std::max(0.0, offered_rate - dropped);
    prev_ = acc;
  }
  return acc;
}

double ClusterSim::SaturationThroughput(double tolerance) {
  const double total_capacity =
      TotalServerCapacity() +
      spine_capacity_ * static_cast<double>(config_.num_spine) +
      leaf_capacity_ * static_cast<double>(config_.num_racks);
  const auto stable = [&](double rate) {
    return RunTicks(rate, config_.ticks_per_measurement).max_utilization <= 1.0 + 1e-9;
  };
  double hi_limit =
      config_.cap_at_server_aggregate ? TotalServerCapacity() : total_capacity;
  if (stable(hi_limit)) {
    return hi_limit;
  }
  double lo = 0.0;
  double hi = hi_limit;
  // Converge relative to the answer itself (not the search range), so small
  // saturation rates — e.g. NoCache at large scale — keep full resolution.
  int iterations = 0;
  while (hi - lo > tolerance * std::max(lo, 1.0) && iterations++ < 64) {
    const double mid = 0.5 * (lo + hi);
    if (stable(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ClusterSim::AchievedThroughput(double offered_rate, int ticks) {
  return RunTicks(offered_rate, ticks).achieved;
}

}  // namespace distcache
