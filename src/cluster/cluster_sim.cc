#include "cluster/cluster_sim.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace distcache {

std::vector<LayerSpec> ResolvedCacheLayers(const ClusterConfig& config) {
  if (!config.cache_layers.empty()) {
    return config.cache_layers;
  }
  return {{config.num_spine, config.per_switch_objects},
          {config.num_racks, config.per_switch_objects}};
}

void CheckCacheLayersOrDie(const ClusterConfig& config) {
  const std::string error = ValidateCacheLayers(config);
  if (!error.empty()) {
    // An inconsistent hierarchy would index per-rack arrays out of bounds deep
    // in the allocation; fail loudly in every build mode instead.
    std::fprintf(stderr, "invalid cache hierarchy: %s\n", error.c_str());
    std::abort();
  }
}

void CheckCachePolicyOrDie(const ClusterConfig& config) {
  const std::string error =
      ValidateCachePolicy(config.cache_policy, config.cache_hierarchy,
                          config.write_policy, config.mechanism);
  if (!error.empty()) {
    std::fprintf(stderr, "invalid cache policy: %s\n", error.c_str());
    std::abort();
  }
}

std::string ValidateCacheLayers(const ClusterConfig& config) {
  // Validate the *resolved* hierarchy so the legacy two-layer shape is held to
  // the same structural limits (notably the packed-candidate index range) as an
  // explicit layer vector.
  const std::vector<LayerSpec> layers = ResolvedCacheLayers(config);
  if (layers.size() < 2 || layers.size() > kMaxCacheLayers) {
    return "cache hierarchy must have between 2 and " +
           std::to_string(kMaxCacheLayers) + " layers, got " +
           std::to_string(layers.size());
  }
  for (size_t l = 0; l < layers.size(); ++l) {
    if (layers[l].nodes == 0) {
      return "cache layer " + std::to_string(l) + " has zero nodes";
    }
    if (layers[l].nodes > kCandIndexMask) {
      // A larger index would bleed into the packed candidate's layer bits
      // (sim/route_table.h) and route to garbage nodes.
      return "cache layer " + std::to_string(l) + " has " +
             std::to_string(layers[l].nodes) + " nodes; the route-table " +
             "candidate packing supports at most " +
             std::to_string(kCandIndexMask) + " per layer";
    }
  }
  if (config.cache_layers.empty()) {
    return "";
  }
  if (layers.back().nodes != config.num_racks) {
    return "the last (leaf) cache layer is rack-bound: its node count " +
           std::to_string(layers.back().nodes) + " must equal the rack count " +
           std::to_string(config.num_racks);
  }
  if (layers.front().nodes != config.num_spine) {
    return "the first (spine) cache layer's node count " +
           std::to_string(layers.front().nodes) +
           " must equal num_spine (" + std::to_string(config.num_spine) + ")";
  }
  return "";
}

ClusterSim::ClusterSim(const ClusterConfig& config)
    : config_(config),
      layers_(ResolvedCacheLayers(config)),
      placement_(config.num_racks, config.servers_per_rack,
                 HashCombine(config.seed, 0x91ace3e22ULL)),
      dist_(MakeDistribution(config.num_keys, config.zipf_theta)),
      rng_(HashCombine(config.seed, 0xc1057e4ULL)) {
  CheckCacheLayersOrDie(config_);
  CheckCachePolicyOrDie(config_);
  AllocationConfig alloc;
  alloc.mechanism = config_.mechanism;
  alloc.layers = layers_;
  alloc.candidate_pool = std::min(config_.candidate_pool, config_.num_keys);
  alloc.hash_seed = HashCombine(config_.seed, 0xd15ca4eULL);
  allocation_ = std::make_unique<CacheAllocation>(alloc, placement_);
  controller_ = std::make_unique<CacheController>(allocation_.get(), config_.num_spine);
  spine_alive_.assign(config_.num_spine, true);

  popularity_ = BuildPopularityVector(*dist_, allocation_->candidate_pool());

  // Every layer is rate-limited to one rack's aggregate by default (the paper's
  // testbed discipline); the spine/leaf overrides apply to the first/last layer.
  const double rack_aggregate =
      config_.server_capacity * static_cast<double>(config_.servers_per_rack);
  layer_capacity_.assign(layers_.size(), rack_aggregate);
  if (config_.spine_capacity > 0) {
    layer_capacity_.front() = config_.spine_capacity;
  }
  if (config_.leaf_capacity > 0) {
    layer_capacity_.back() = config_.leaf_capacity;
  }

  prev_.cache.resize(layers_.size());
  for (size_t l = 0; l < layers_.size(); ++l) {
    prev_.cache[l].assign(layers_[l].nodes, 0.0);
  }
  prev_.server.assign(num_servers(), 0.0);
}

void ClusterSim::FailSpine(uint32_t spine) {
  if (spine < config_.num_spine) {
    spine_alive_[spine] = false;
    recovery_ran_ = false;  // hot objects of the dead switch lose their spine copy
    policy_dirty_ = true;   // dynamic policies: the dead node's layer goes cold
  }
}

void ClusterSim::RecoverSpine(uint32_t spine) {
  if (spine < config_.num_spine) {
    spine_alive_[spine] = true;
    ApplyRemap();  // restoration returns remapped partitions to their home switch
    policy_dirty_ = true;
  }
}

uint64_t ClusterSim::KeyOfRank(uint64_t rank) const {
  return distcache::KeyOfRank(rank, hot_shift_, config_.num_keys);
}

void ClusterSim::SetWorkload(double zipf_theta, double write_ratio) {
  if (zipf_theta != config_.zipf_theta) {
    config_.zipf_theta = zipf_theta;
    dist_ = MakeDistribution(config_.num_keys, zipf_theta);
    popularity_ = BuildPopularityVector(*dist_, allocation_->candidate_pool());
  }
  config_.write_ratio = write_ratio;
  policy_dirty_ = true;
}

void ClusterSim::ReallocateCacheToHotSet() {
  if (UsesDynamicPolicy()) {
    // The dynamic policies own their contents; the controller has nothing to
    // re-allocate (the request engines likewise ignore the rebuilt routes on
    // the policy path). The steady-state model already follows the hot set.
    return;
  }
  std::vector<uint64_t> hottest(allocation_->candidate_pool());
  for (uint64_t rank = 0; rank < hottest.size(); ++rank) {
    hottest[rank] = KeyOfRank(rank);
  }
  controller_->ReallocateCache(hottest, placement_);
}

void ClusterSim::ApplyRemap() {
  for (uint32_t s = 0; s < config_.num_spine; ++s) {
    if (!spine_alive_[s] && controller_->IsAlive(s)) {
      controller_->OnSpineFailure(s);
    } else if (spine_alive_[s] && !controller_->IsAlive(s)) {
      controller_->OnSpineRecovery(s);
    }
  }
}

double ClusterSim::RoutingLoad(CacheNodeId node, const LoadSnapshot& acc) const {
  const double load = config_.stale_telemetry ? prev_.cache[node.layer][node.index]
                                              : acc.cache[node.layer][node.index];
  return load / layer_capacity_[node.layer];
}

void ClusterSim::RouteKeyReads(uint64_t key, double read_rate, const CacheCopies& copies,
                               LoadSnapshot& acc) {
  if (read_rate <= 0.0) {
    return;
  }
  if (!copies.cached()) {
    acc.server[placement_.ServerOf(key)] += read_rate;
    return;
  }

  if (copies.replicated_all_spines) {
    // CacheReplication: uniform spread over the spine replicas (plus the leaf copy,
    // which is just one more replica). Until the controller reacts to failures, the
    // client ToRs keep spraying dead replicas too; that traffic is lost (accounted at
    // tick end).
    std::vector<uint32_t> spines;
    for (uint32_t s = 0; s < config_.num_spine; ++s) {
      if (spine_alive_[s] || !recovery_ran_) {
        spines.push_back(s);
      }
    }
    const auto leaf = copies.leaf();
    const double n = static_cast<double>(spines.size() + (leaf ? 1 : 0));
    if (n == 0) {
      acc.server[placement_.ServerOf(key)] += read_rate;
      return;
    }
    for (uint32_t s : spines) {
      acc.cache[0][s] += read_rate / n;
    }
    if (leaf) {
      acc.cache.back()[*leaf] += read_rate / n;
    }
    return;
  }

  // A dead top-layer switch keeps receiving its routed share until the controller
  // remaps the partition: the client ToRs have no failure signal beyond telemetry
  // going stale, so queries sent to the dead switch are simply lost (§4.4 / Fig. 11
  // shows the resulting throughput dip). After RunFailureRecovery() the allocation
  // maps the partition to an alive switch and CopiesOf() no longer points here.
  CacheNodeId cand[kMaxCacheLayers];
  size_t k = 0;
  for (uint8_t i = 0; i < copies.num; ++i) {
    const CacheNodeId node = copies.nodes[i];
    if (node.layer == 0 && !spine_alive_[node.index] && recovery_ran_) {
      continue;  // known-dead copy, no longer routed to
    }
    cand[k++] = node;
  }
  if (k == 0) {
    acc.server[placement_.ServerOf(key)] += read_rate;
    return;
  }
  if (k == 1) {
    acc.cache[cand[0].layer][cand[0].index] += read_rate;
    return;
  }

  if (config_.cache_policy == CachePolicyKind::kStaticTopK) {
    // The naive strawman: same static contents, but every query goes to the
    // first alive candidate (top layer first) — no balanced choice. The gap to
    // kDistCache under skew is the balanced-routing contribution in isolation.
    acc.cache[cand[0].layer][cand[0].index] += read_rate;
    return;
  }

  switch (config_.routing) {
    case RoutingPolicy::kFirstChoice:
      acc.cache[cand[0].layer][cand[0].index] += read_rate;
      return;
    case RoutingPolicy::kRandom:
      // Per-query coin flip: in the fluid limit, an even split.
      for (size_t i = 0; i < k; ++i) {
        acc.cache[cand[i].layer][cand[i].index] += read_rate / static_cast<double>(k);
      }
      return;
    case RoutingPolicy::kPowerOfTwo:
      break;
  }
  if (config_.stale_telemetry) {
    // Herding ablation: every query of the epoch chases the previous epoch's
    // least-loaded candidate (earlier layer wins ties).
    size_t best = 0;
    for (size_t i = 1; i < k; ++i) {
      if (RoutingLoad(cand[i], acc) < RoutingLoad(cand[best], acc)) {
        best = i;
      }
    }
    acc.cache[cand[best].layer][cand[best].index] += read_rate;
    return;
  }
  // Continuous telemetry: per-query choices equalize the candidates' utilization —
  // the fluid limit of the power-of-k process is a water-filling split.
  if (k == 2) {
    // Closed form for the two-candidate case (the historical spine/leaf path).
    const double cap0 = layer_capacity_[cand[0].layer];
    const double cap1 = layer_capacity_[cand[1].layer];
    double& load0 = acc.cache[cand[0].layer][cand[0].index];
    double& load1 = acc.cache[cand[1].layer][cand[1].index];
    const double util = (load0 + load1 + read_rate) / (cap0 + cap1);
    double to_first = util * cap0 - load0;
    to_first = std::clamp(to_first, 0.0, read_rate);
    load0 += to_first;
    load1 += read_rate - to_first;
    return;
  }
  // k > 2: iterative water filling. Find the common utilization level over the
  // candidates that receive traffic; candidates already above the level get none
  // and are dropped from the active set until the level is consistent.
  bool active[kMaxCacheLayers];
  std::fill(active, active + k, true);
  for (size_t round = 0; round < k; ++round) {
    double caps = 0.0;
    double loads = 0.0;
    for (size_t i = 0; i < k; ++i) {
      if (active[i]) {
        caps += layer_capacity_[cand[i].layer];
        loads += acc.cache[cand[i].layer][cand[i].index];
      }
    }
    const double level = (loads + read_rate) / caps;
    bool removed = false;
    for (size_t i = 0; i < k; ++i) {
      if (active[i] &&
          acc.cache[cand[i].layer][cand[i].index] >
              level * layer_capacity_[cand[i].layer]) {
        active[i] = false;
        removed = true;
      }
    }
    if (!removed) {
      size_t last = 0;
      for (size_t i = 0; i < k; ++i) {
        if (active[i]) {
          last = i;
        }
      }
      // The active shares sum to read_rate by construction of `level`; hand the
      // last active candidate the exact remainder so no mass is lost to rounding.
      double assigned = 0.0;
      for (size_t i = 0; i < k; ++i) {
        if (!active[i]) {
          continue;
        }
        double& load = acc.cache[cand[i].layer][cand[i].index];
        if (i == last) {
          load += read_rate - assigned;
        } else {
          const double share =
              std::max(0.0, level * layer_capacity_[cand[i].layer] - load);
          load += share;
          assigned += share;
        }
      }
      return;
    }
  }
}

void ClusterSim::ChargeWrite(uint64_t key, double write_rate, const CacheCopies& copies,
                             LoadSnapshot& acc) {
  if (write_rate <= 0.0) {
    return;
  }
  size_t num_copies = 0;
  for (uint8_t i = 0; i < copies.num; ++i) {
    const CacheNodeId node = copies.nodes[i];
    if (node.layer == 0 && !spine_alive_[node.index]) {
      continue;  // coherence touches only alive copies
    }
    num_copies += 1;
    acc.cache[node.layer][node.index] += config_.coherence_switch_cost * write_rate;
  }
  if (copies.replicated_all_spines) {
    for (uint32_t s = 0; s < config_.num_spine; ++s) {
      if (spine_alive_[s]) {
        num_copies += 1;
        acc.cache[0][s] += config_.coherence_switch_cost * write_rate;
      }
    }
  }
  // The primary server performs the write plus one invalidation+update round per copy
  // (§4.3); uncached objects cost exactly one unit.
  acc.server[placement_.ServerOf(key)] +=
      write_rate * (1.0 + config_.coherence_server_cost * static_cast<double>(num_copies));
}

LoadSnapshot ClusterSim::RunTicks(double offered_rate, int ticks) {
  LoadSnapshot acc;
  for (int t = 0; t < ticks; ++t) {
    acc = LoadSnapshot{};
    acc.cache.resize(layers_.size());
    for (size_t l = 0; l < layers_.size(); ++l) {
      acc.cache[l].assign(layers_[l].nodes, 0.0);
    }
    acc.server.assign(num_servers(), 0.0);

    if (UsesDynamicPolicy()) {
      // Dynamic per-node policies: loads come from the steady-state hit model,
      // not the static allocation (see ComputePolicyModel).
      ChargePolicyTick(offered_rate, acc);
    } else {
      const double write_ratio = config_.write_ratio;
      // Head ranks, hottest first (greedy order matters for water-filling
      // quality). The queried key id follows the current rank→key rotation, so a
      // hot-spot shift moves the head mass onto whatever is (un)cached at the
      // new keys.
      for (uint64_t rank = 0; rank < popularity_.head.size(); ++rank) {
        const double rate = offered_rate * popularity_.head[rank];
        if (rate <= 0.0) {
          continue;
        }
        const uint64_t key = KeyOfRank(rank);
        const CacheCopies copies = allocation_->CopiesOf(key);
        RouteKeyReads(key, rate * (1.0 - write_ratio), copies, acc);
        ChargeWrite(key, rate * write_ratio, copies, acc);
      }
      // Tail: individually negligible keys, spread uniformly by the placement
      // hash; none are cached.
      const double tail_rate = offered_rate * popularity_.tail_mass;
      const double per_server = tail_rate / static_cast<double>(num_servers());
      for (double& load : acc.server) {
        load += per_server;
      }
    }

    // Utilization & achieved throughput accounting. Traffic routed to a dead spine
    // switch is lost entirely; dead switches do not constrain stability (they serve
    // nothing), they only shed the queries sent to them.
    double max_util = 0.0;
    double dropped = 0.0;
    for (uint32_t s = 0; s < config_.num_spine; ++s) {
      if (!spine_alive_[s]) {
        dropped += acc.cache[0][s];
        continue;
      }
      const double util = acc.cache[0][s] / layer_capacity_[0];
      max_util = std::max(max_util, util);
      dropped += std::max(0.0, acc.cache[0][s] - layer_capacity_[0]);
    }
    for (size_t l = 1; l < layers_.size(); ++l) {
      for (uint32_t i = 0; i < layers_[l].nodes; ++i) {
        const double util = acc.cache[l][i] / layer_capacity_[l];
        max_util = std::max(max_util, util);
        dropped += std::max(0.0, acc.cache[l][i] - layer_capacity_[l]);
      }
    }
    for (double load : acc.server) {
      const double util = load / config_.server_capacity;
      max_util = std::max(max_util, util);
      dropped += std::max(0.0, load - config_.server_capacity);
    }
    // Queries that are not top-layer cache hits still transit the top layer (lower
    // hits and server misses go through an ECMP-chosen spine, §3.4). Until
    // recovery, a dead spine blackholes its 1/num_spine share of that transit
    // traffic as well — this is why the paper sees the throughput drop by the
    // failed switches' share of the *total* throughput ("each spine switch
    // provides 1/32 of the total throughput", §6.4). Transit consumes no cache
    // capacity (forwarding runs at line rate; only the caching path is
    // rate-limited).
    if (!recovery_ran_) {
      uint32_t dead = 0;
      double spine_arrivals = 0.0;
      for (uint32_t s = 0; s < config_.num_spine; ++s) {
        dead += spine_alive_[s] ? 0 : 1;
        spine_arrivals += acc.cache[0][s];
      }
      const double transit = std::max(0.0, offered_rate - spine_arrivals);
      dropped += transit * static_cast<double>(dead) / static_cast<double>(config_.num_spine);
    }
    acc.max_utilization = max_util;
    acc.achieved = std::max(0.0, offered_rate - dropped);
    prev_ = acc;
  }
  return acc;
}

double ClusterSim::SaturationThroughput(double tolerance) {
  double cache_capacity = 0.0;
  for (size_t l = 0; l < layers_.size(); ++l) {
    cache_capacity += layer_capacity_[l] * static_cast<double>(layers_[l].nodes);
  }
  const double total_capacity = TotalServerCapacity() + cache_capacity;
  const auto stable = [&](double rate) {
    return RunTicks(rate, config_.ticks_per_measurement).max_utilization <= 1.0 + 1e-9;
  };
  double hi_limit =
      config_.cap_at_server_aggregate ? TotalServerCapacity() : total_capacity;
  if (stable(hi_limit)) {
    return hi_limit;
  }
  double lo = 0.0;
  double hi = hi_limit;
  // Converge relative to the answer itself (not the search range), so small
  // saturation rates — e.g. NoCache at large scale — keep full resolution.
  int iterations = 0;
  while (hi - lo > tolerance * std::max(lo, 1.0) && iterations++ < 64) {
    const double mid = 0.5 * (lo + hi);
    if (stable(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ClusterSim::AchievedThroughput(double offered_rate, int ticks) {
  return RunTicks(offered_rate, ticks).achieved;
}

// ---- Dynamic-policy fluid analytics ----------------------------------------

CacheNodeId ClusterSim::PolicyCandidate(size_t layer, uint64_t key) const {
  if (layer + 1 == layers_.size()) {
    return {static_cast<uint8_t>(layer), placement_.RackOf(key)};
  }
  return {static_cast<uint8_t>(layer), allocation_->PartitionOf(layer, key)};
}

namespace {

// Steady-state residency probability of one key with arrival share `a` at
// characteristic time T.
double PolicyResidency(CachePolicyKind kind, double a, double t) {
  switch (kind) {
    case CachePolicyKind::kLru:
    case CachePolicyKind::kSegmented:
      // Che's approximation: a line survives iff re-referenced within T.
      // (SLRU's scan resistance shifts which keys win, not the aggregate
      // occupancy constraint — the fluid model treats it as LRU.)
      return 1.0 - std::exp(-a * t);
    case CachePolicyKind::kFifo:
      // FIFO/RANDOM fluid form: resident a fraction aT/(1+aT) of the time.
      return (a * t) / (1.0 + a * t);
    default:
      return 0.0;  // LFU and the static policies never reach the fixed point
  }
}

}  // namespace

void ClusterSim::ComputePolicyModel() {
  policy_dirty_ = false;
  const CachePolicyKind kind = config_.cache_policy;
  const size_t num_layers = layers_.size();
  const size_t head = popularity_.head.size();
  const double tail_keys =
      static_cast<double>(config_.num_keys - static_cast<uint64_t>(head));
  policy_hit_.assign(num_layers, std::vector<double>(head, 0.0));
  policy_tail_hit_.assign(num_layers, {});

  // Miss-through probability of each head rank (and the average tail key)
  // accumulated over the layers above the one being solved.
  std::vector<double> carry(head, 1.0);
  double tail_carry = 1.0;

  for (size_t l = 0; l < num_layers; ++l) {
    const uint32_t nodes = layers_[l].nodes;
    const double capacity = static_cast<double>(layers_[l].cache_objects);
    policy_tail_hit_[l].assign(nodes, 0.0);

    // Group the thinned head arrivals by candidate node.
    std::vector<std::vector<std::pair<uint64_t, double>>> node_keys(nodes);
    for (uint64_t rank = 0; rank < head; ++rank) {
      const double a = popularity_.head[rank] * carry[rank];
      if (a <= 0.0) {
        continue;
      }
      const uint64_t key = KeyOfRank(rank);
      const CacheNodeId node = PolicyCandidate(l, key);
      if (l == 0 && !spine_alive_[node.index]) {
        continue;  // dead top-layer node: its keys miss this layer entirely
      }
      node_keys[node.index].emplace_back(rank, a);
    }
    // Tail keys hash-spread uniformly across the layer's nodes; each carries a
    // vanishing arrival share thinned by the layers above.
    const double tail_per_node =
        nodes > 0 ? tail_keys / static_cast<double>(nodes) : 0.0;
    const double tail_arrival =
        tail_keys > 0.0 ? popularity_.tail_mass / tail_keys * tail_carry : 0.0;

    for (uint32_t n = 0; n < nodes; ++n) {
      if (l == 0 && !spine_alive_[n]) {
        continue;  // hit probability stays 0
      }
      auto& keys = node_keys[n];
      if (capacity <= 0.0) {
        continue;
      }
      if (kind == CachePolicyKind::kLfu) {
        // Perfect-LFU steady state: the node retains its top-`capacity` keys by
        // arrival rate; leftover slots fill with (interchangeable) tail keys.
        std::sort(keys.begin(), keys.end(),
                  [](const auto& x, const auto& y) {
                    return x.second != y.second ? x.second > y.second
                                                : x.first < y.first;
                  });
        const size_t resident = std::min(keys.size(), static_cast<size_t>(capacity));
        for (size_t i = 0; i < resident; ++i) {
          policy_hit_[l][keys[i].first] = 1.0;
        }
        const double leftover = capacity - static_cast<double>(resident);
        if (leftover > 0.0 && tail_per_node > 0.0) {
          policy_tail_hit_[l][n] = std::min(1.0, leftover / tail_per_node);
        }
        continue;
      }
      // Characteristic-time fixed point: find T with total expected occupancy
      // equal to the capacity. Monotone in T → bisection; if every distinct key
      // fits, residency saturates at 1.
      const double distinct = static_cast<double>(keys.size()) + tail_per_node;
      const auto occupancy = [&](double t) {
        double occ = 0.0;
        for (const auto& [rank, a] : keys) {
          occ += PolicyResidency(kind, a, t);
        }
        if (tail_per_node > 0.0 && tail_arrival > 0.0) {
          occ += tail_per_node * PolicyResidency(kind, tail_arrival, t);
        }
        return occ;
      };
      if (distinct <= capacity) {
        for (const auto& [rank, a] : keys) {
          policy_hit_[l][rank] = 1.0;
        }
        policy_tail_hit_[l][n] = tail_arrival > 0.0 ? 1.0 : 0.0;
        continue;
      }
      double hi = 1.0;
      for (int i = 0; i < 400 && occupancy(hi) < capacity; ++i) {
        hi *= 2.0;
      }
      double lo = 0.0;
      for (int i = 0; i < 80; ++i) {
        const double mid = 0.5 * (lo + hi);
        (occupancy(mid) < capacity ? lo : hi) = mid;
      }
      const double t = 0.5 * (lo + hi);
      for (const auto& [rank, a] : keys) {
        policy_hit_[l][rank] = PolicyResidency(kind, a, t);
      }
      policy_tail_hit_[l][n] =
          tail_arrival > 0.0 ? PolicyResidency(kind, tail_arrival, t) : 0.0;
    }

    // Thin the streams for the next layer down.
    for (uint64_t rank = 0; rank < head; ++rank) {
      carry[rank] *= 1.0 - policy_hit_[l][rank];
    }
    if (nodes > 0) {
      double avg_tail = 0.0;
      for (uint32_t n = 0; n < nodes; ++n) {
        avg_tail += policy_tail_hit_[l][n];
      }
      tail_carry *= 1.0 - avg_tail / static_cast<double>(nodes);
    }
  }

  policy_hit_mass_ = popularity_.tail_mass * (1.0 - tail_carry);
  for (uint64_t rank = 0; rank < head; ++rank) {
    policy_hit_mass_ += popularity_.head[rank] * (1.0 - carry[rank]);
  }
}

double ClusterSim::PolicyHitMass() {
  if (policy_dirty_) {
    ComputePolicyModel();
  }
  return policy_hit_mass_;
}

void ClusterSim::ChargePolicyTick(double offered_rate, LoadSnapshot& acc) {
  if (policy_dirty_) {
    ComputePolicyModel();
  }
  const size_t num_layers = layers_.size();
  const size_t head = popularity_.head.size();
  const double write_ratio = config_.write_ratio;
  const bool write_back = config_.write_policy == WritePolicy::kWriteBack;
  const bool inclusive = config_.cache_hierarchy == HierarchyMode::kInclusive;

  for (uint64_t rank = 0; rank < head; ++rank) {
    const double rate = offered_rate * popularity_.head[rank];
    if (rate <= 0.0) {
      continue;
    }
    const uint64_t key = KeyOfRank(rank);
    const double read = rate * (1.0 - write_ratio);
    const double write = rate * write_ratio;
    double carry = 1.0;
    double resident_above = 0.0;  // Σ of unconditional hit probs so far
    double expected_copies = 0.0;
    for (size_t l = 0; l < num_layers; ++l) {
      const CacheNodeId node = PolicyCandidate(l, key);
      const double h = policy_hit_[l][rank];
      const double q = carry * h;  // unconditional hit probability at layer l
      double& load = acc.cache[l][node.index];
      load += read * q;
      if (write > 0.0) {
        if (write_back) {
          // The topmost resident copy absorbs the write (probability ≈ the
          // layer's unconditional hit share), one unit per absorbed write.
          load += write * q;
        } else {
          // Write-through coherence touches every resident copy: inclusive
          // copies stack downward, exclusive lines live at exactly one layer.
          const double resident = inclusive ? resident_above + q : q;
          load += write * resident * config_.coherence_switch_cost;
          expected_copies += resident;
        }
      }
      resident_above += q;
      carry *= 1.0 - h;
    }
    double server = read * carry;  // read misses
    if (write > 0.0) {
      if (write_back) {
        // Unabsorbed writes go straight to the server; absorbed ones return as
        // eventual write-backs (no-coalescing upper bound) — one unit either
        // way, minus the coherence rounds write-through would have paid.
        server += write;
      } else {
        server += write * (1.0 + config_.coherence_server_cost * expected_copies);
      }
    }
    acc.server[placement_.ServerOf(key)] += server;
  }

  // Tail: uniform spread; per-node hit shares from the model, the rest (misses
  // plus all tail writes — tail residency is vanishing, so coherence on tail
  // copies is ignored) lands uniformly on the servers.
  const double tail_rate = offered_rate * popularity_.tail_mass;
  if (tail_rate > 0.0) {
    const double tail_read = tail_rate * (1.0 - write_ratio);
    double tail_carry = 1.0;
    for (size_t l = 0; l < num_layers; ++l) {
      const uint32_t nodes = layers_[l].nodes;
      const double arrival_per_node =
          tail_read * tail_carry / static_cast<double>(nodes);
      double avg = 0.0;
      for (uint32_t n = 0; n < nodes; ++n) {
        const double h = policy_tail_hit_[l][n];
        acc.cache[l][n] += arrival_per_node * h;
        avg += h;
      }
      tail_carry *= 1.0 - avg / static_cast<double>(nodes);
    }
    const double to_servers = tail_read * tail_carry + tail_rate * write_ratio;
    const double per_server = to_servers / static_cast<double>(num_servers());
    for (double& load : acc.server) {
      load += per_server;
    }
  }
}

}  // namespace distcache
