// Wire format for DistCache packets (§4.1/§5: the prototype reserves an L4 port and
// defines custom headers carrying op, key, value and the telemetry piggyback).
//
// Layout (little-endian, after the reserved-port transport header):
//   u8  magic (0xDC)     u8 type      u16 piggyback_count
//   u32 client_id        u64 request_id
//   u64 key              u8 flags (bit0 = cache_hit, bit1 = has_target)
//   u8 target_layer      u32 target_index
//   u16 value_len        value bytes
//   piggyback entries: { u8 layer, u32 index, u64 load } x piggyback_count
//
// Values are capped at 128 bytes like the switch value store; piggyback entries at
// 16 (a reply traverses at most a handful of switches).
#ifndef DISTCACHE_NET_WIRE_H_
#define DISTCACHE_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/message.h"

namespace distcache {

inline constexpr uint8_t kWireMagic = 0xDC;
inline constexpr size_t kMaxWireValue = 128;
inline constexpr size_t kMaxPiggyback = 16;

// Serializes `msg` into `out` (appended). Fails if the value or piggyback exceed the
// wire limits.
Status EncodeMessage(const Message& msg, std::vector<uint8_t>* out);

// Parses one message from `data`. On success, sets `consumed` to the number of bytes
// read. Rejects truncated/corrupt input without reading out of bounds.
StatusOr<Message> DecodeMessage(const uint8_t* data, size_t size, size_t* consumed);

inline StatusOr<Message> DecodeMessage(const std::vector<uint8_t>& data) {
  size_t consumed = 0;
  return DecodeMessage(data.data(), data.size(), &consumed);
}

}  // namespace distcache

#endif  // DISTCACHE_NET_WIRE_H_
