#include "net/wire.h"

#include <cstring>

namespace distcache {
namespace {

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool U8(uint8_t* v) { return Copy(v, 1); }
  bool U16(uint16_t* v) { return Copy(v, 2); }
  bool U32(uint32_t* v) { return Copy(v, 4); }
  bool U64(uint64_t* v) { return Copy(v, 8); }

  bool Bytes(std::string* out, size_t n) {
    if (pos_ + n > size_) {
      return false;
    }
    out->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

  size_t pos() const { return pos_; }

 private:
  bool Copy(void* v, size_t n) {
    if (pos_ + n > size_) {
      return false;
    }
    std::memcpy(v, data_ + pos_, n);  // little-endian host assumed (x86/arm64)
    pos_ += n;
    return true;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

Status EncodeMessage(const Message& msg, std::vector<uint8_t>* out) {
  if (msg.value.size() > kMaxWireValue) {
    return Status::InvalidArgument("value exceeds wire limit");
  }
  if (msg.piggyback.size() > kMaxPiggyback) {
    return Status::InvalidArgument("piggyback exceeds wire limit");
  }
  PutU8(out, kWireMagic);
  PutU8(out, static_cast<uint8_t>(msg.type));
  PutU16(out, static_cast<uint16_t>(msg.piggyback.size()));
  PutU32(out, msg.client_id);
  PutU64(out, msg.request_id);
  PutU64(out, msg.key);
  const uint8_t flags = static_cast<uint8_t>((msg.cache_hit ? 1 : 0) |
                                             (msg.has_target ? 2 : 0));
  PutU8(out, flags);
  PutU8(out, static_cast<uint8_t>(msg.target.layer));
  PutU32(out, msg.target.index);
  PutU16(out, static_cast<uint16_t>(msg.value.size()));
  out->insert(out->end(), msg.value.begin(), msg.value.end());
  for (const LoadSample& sample : msg.piggyback) {
    PutU8(out, static_cast<uint8_t>(sample.node.layer));
    PutU32(out, sample.node.index);
    PutU64(out, sample.load);
  }
  return Status::Ok();
}

StatusOr<Message> DecodeMessage(const uint8_t* data, size_t size, size_t* consumed) {
  Reader reader(data, size);
  uint8_t magic = 0;
  if (!reader.U8(&magic) || magic != kWireMagic) {
    return Status::InvalidArgument("bad magic");
  }
  Message msg;
  uint8_t type = 0;
  uint16_t piggyback_count = 0;
  if (!reader.U8(&type) || !reader.U16(&piggyback_count) ||
      !reader.U32(&msg.client_id) || !reader.U64(&msg.request_id) ||
      !reader.U64(&msg.key)) {
    return Status::InvalidArgument("truncated header");
  }
  if (type > static_cast<uint8_t>(MsgType::kCacheUpdateAck)) {
    return Status::InvalidArgument("unknown message type");
  }
  if (piggyback_count > kMaxPiggyback) {
    return Status::InvalidArgument("piggyback exceeds wire limit");
  }
  msg.type = static_cast<MsgType>(type);
  uint8_t flags = 0;
  uint8_t target_layer = 0;
  uint16_t value_len = 0;
  if (!reader.U8(&flags) || !reader.U8(&target_layer) || !reader.U32(&msg.target.index) ||
      !reader.U16(&value_len)) {
    return Status::InvalidArgument("truncated header");
  }
  msg.cache_hit = (flags & 1) != 0;
  msg.has_target = (flags & 2) != 0;
  msg.target.layer = target_layer;
  if (value_len > kMaxWireValue) {
    return Status::InvalidArgument("value exceeds wire limit");
  }
  if (!reader.Bytes(&msg.value, value_len)) {
    return Status::InvalidArgument("truncated value");
  }
  msg.piggyback.resize(piggyback_count);
  for (LoadSample& sample : msg.piggyback) {
    uint8_t layer = 0;
    if (!reader.U8(&layer) || !reader.U32(&sample.node.index) ||
        !reader.U64(&sample.load)) {
      return Status::InvalidArgument("truncated piggyback");
    }
    sample.node.layer = layer;
  }
  if (consumed != nullptr) {
    *consumed = reader.pos();
  }
  return msg;
}

}  // namespace distcache
