// Two-layer leaf-spine datacenter topology (Fig. 5): spine switches on top; each
// storage rack has a ToR (leaf) cache switch and `servers_per_rack` storage servers;
// client racks have ToRs that perform query routing. Provides the id scheme and the
// switch traversal paths that query handling (§4.2) and cache coherence (§4.3) need.
#ifndef DISTCACHE_NET_TOPOLOGY_H_
#define DISTCACHE_NET_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace distcache {

// Cache-node id: layer 0 = spine (group A in the analysis), layer 1 = storage-rack
// leaf (group B). `index` is the position within the layer.
struct CacheNodeId {
  uint32_t layer = 0;
  uint32_t index = 0;

  bool operator==(const CacheNodeId&) const = default;
};

class LeafSpineTopology {
 public:
  struct Config {
    uint32_t num_spine = 32;          // paper default: 32 spine switches
    uint32_t num_storage_racks = 32;  // paper default: 32 storage racks
    uint32_t servers_per_rack = 32;   // paper default: 32 servers per rack
    uint32_t num_client_racks = 4;
  };

  explicit LeafSpineTopology(const Config& config) : config_(config) {}

  uint32_t num_spine() const { return config_.num_spine; }
  uint32_t num_storage_racks() const { return config_.num_storage_racks; }
  uint32_t servers_per_rack() const { return config_.servers_per_rack; }
  uint32_t num_client_racks() const { return config_.num_client_racks; }
  uint32_t num_servers() const { return config_.num_storage_racks * config_.servers_per_rack; }
  // Total cache nodes across both layers (2m in the analysis when layers are equal).
  uint32_t num_cache_nodes() const { return config_.num_spine + config_.num_storage_racks; }

  uint32_t RackOfServer(uint32_t server_id) const { return server_id / config_.servers_per_rack; }

  // The switches a read query traverses from a client rack to cache node `target` —
  // hitting a spine cache traverses only that spine; hitting a leaf cache traverses an
  // (arbitrary, load-balanced) spine and the leaf (§3.4: such pass-through spines are
  // interchangeable, so we expose the leaf as the single cache touch point).
  std::vector<CacheNodeId> QueryPath(CacheNodeId target) const {
    return {target};
  }

  // The cache switches an invalidation/update packet must traverse for an object whose
  // copies live at the given nodes (§4.3: one packet walks all caching switches, e.g.
  // server → leaf → spine → leaf → server).
  std::vector<CacheNodeId> CoherencePath(const std::vector<CacheNodeId>& copies) const {
    return copies;
  }

  std::string Describe() const;

 private:
  Config config_;
};

}  // namespace distcache

#endif  // DISTCACHE_NET_TOPOLOGY_H_
