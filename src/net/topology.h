// Two-layer leaf-spine datacenter topology (Fig. 5): spine switches on top; each
// storage rack has a ToR (leaf) cache switch and `servers_per_rack` storage servers;
// client racks have ToRs that perform query routing. Provides the id scheme and the
// switch traversal paths that query handling (§4.2) and cache coherence (§4.3) need.
#ifndef DISTCACHE_NET_TOPOLOGY_H_
#define DISTCACHE_NET_TOPOLOGY_H_

#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace distcache {

// Hard cap on cache-hierarchy depth (§3.1 multi-layer extension): route-table
// candidates pack the layer into 3 bits (see sim/route_table.h), and nobody
// provisions deeper cache trees anyway.
inline constexpr size_t kMaxCacheLayers = 6;

// Packed-candidate layout (sim/route_table.h): layer in the top 3 bits, node
// index below — so a layer may have at most 2^29 - 1 nodes, which the config
// validation enforces (an overflowing index would corrupt the layer field).
inline constexpr uint32_t kCandLayerShift = 29;
inline constexpr uint32_t kCandIndexMask = (1u << kCandLayerShift) - 1;

// Cache-node id: layer 0 = the top ("spine") layer (group A in the analysis),
// the last layer = the storage-rack leaves (group B); any layers in between are
// the §3.1 multi-layer extension. `index` is the position within the layer.
struct CacheNodeId {
  uint32_t layer = 0;
  uint32_t index = 0;

  bool operator==(const CacheNodeId&) const = default;
};

// Flat indexing of a layered cache hierarchy: layer l's nodes occupy
// [LayerBegin(l), LayerEnd(l)) of a dense [0, total()) range, top layer first.
// This is the single source of the layer→flat encoding shared by the load
// tracker, the shard map and the telemetry payloads — a second hand-rolled copy
// could silently desynchronize them. Offsets live in fixed inline storage:
// Flat() runs on per-request hot paths and must not chase a heap pointer.
class LayerOffsets {
 public:
  LayerOffsets() { offset_.fill(0); }
  explicit LayerOffsets(const std::vector<uint32_t>& layer_sizes)
      : num_layers_(layer_sizes.size()) {
    if (layer_sizes.size() > kMaxCacheLayers) {
      // Hard check in every build mode: the fill loop below would write past
      // the fixed-size offset array.
      std::fprintf(stderr, "LayerOffsets: %zu layers exceeds the depth cap %zu\n",
                   layer_sizes.size(), kMaxCacheLayers);
      std::abort();
    }
    uint32_t total = 0;
    offset_.fill(0);
    for (size_t l = 0; l < layer_sizes.size(); ++l) {
      offset_[l] = total;
      total += layer_sizes[l];
    }
    // Padded through the max depth so NodeOfFlat's scan needs no size check.
    for (size_t l = layer_sizes.size(); l <= kMaxCacheLayers; ++l) {
      offset_[l] = total;
    }
  }

  uint32_t Flat(CacheNodeId node) const { return offset_[node.layer] + node.index; }
  CacheNodeId NodeOfFlat(uint32_t flat) const {
    uint32_t layer = 0;
    while (flat >= offset_[layer + 1]) {
      ++layer;
    }
    return {layer, flat - offset_[layer]};
  }
  uint32_t LayerBegin(size_t layer) const { return offset_[layer]; }
  uint32_t LayerEnd(size_t layer) const { return offset_[layer + 1]; }
  uint32_t total() const { return offset_[num_layers_]; }
  size_t num_layers() const { return num_layers_; }

 private:
  std::array<uint32_t, kMaxCacheLayers + 1> offset_;
  size_t num_layers_ = 0;
};

class LeafSpineTopology {
 public:
  struct Config {
    uint32_t num_spine = 32;          // paper default: 32 spine switches
    uint32_t num_storage_racks = 32;  // paper default: 32 storage racks
    uint32_t servers_per_rack = 32;   // paper default: 32 servers per rack
    uint32_t num_client_racks = 4;
  };

  explicit LeafSpineTopology(const Config& config) : config_(config) {}

  uint32_t num_spine() const { return config_.num_spine; }
  uint32_t num_storage_racks() const { return config_.num_storage_racks; }
  uint32_t servers_per_rack() const { return config_.servers_per_rack; }
  uint32_t num_client_racks() const { return config_.num_client_racks; }
  uint32_t num_servers() const { return config_.num_storage_racks * config_.servers_per_rack; }
  // Total cache nodes across both layers (2m in the analysis when layers are equal).
  uint32_t num_cache_nodes() const { return config_.num_spine + config_.num_storage_racks; }

  uint32_t RackOfServer(uint32_t server_id) const { return server_id / config_.servers_per_rack; }

  // The switches a read query traverses from a client rack to cache node `target` —
  // hitting a spine cache traverses only that spine; hitting a leaf cache traverses an
  // (arbitrary, load-balanced) spine and the leaf (§3.4: such pass-through spines are
  // interchangeable, so we expose the leaf as the single cache touch point).
  std::vector<CacheNodeId> QueryPath(CacheNodeId target) const {
    return {target};
  }

  // The cache switches an invalidation/update packet must traverse for an object whose
  // copies live at the given nodes (§4.3: one packet walks all caching switches, e.g.
  // server → leaf → spine → leaf → server).
  std::vector<CacheNodeId> CoherencePath(const std::vector<CacheNodeId>& copies) const {
    return copies;
  }

  std::string Describe() const;

 private:
  Config config_;
};

}  // namespace distcache

#endif  // DISTCACHE_NET_TOPOLOGY_H_
