// Message formats exchanged between clients, ToR routers, cache switches and storage
// servers. The paper reserves an L4 port and defines custom headers; our in-process
// equivalent is a tagged struct with the same information content, including the
// in-network-telemetry piggyback field (§4.2).
#ifndef DISTCACHE_NET_MESSAGE_H_
#define DISTCACHE_NET_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/topology.h"

namespace distcache {

enum class MsgType : uint8_t {
  kGetRequest,
  kGetReply,
  kPutRequest,
  kPutReply,
  kInvalidate,      // coherence phase 1
  kInvalidateAck,
  kCacheUpdate,     // coherence phase 2
  kCacheUpdateAck,
};

// Telemetry piggyback: (cache node, its load this epoch). Every cache switch a reply
// traverses appends its own entry; the client ToR strips them and refreshes its
// load table.
struct LoadSample {
  CacheNodeId node;
  uint64_t load = 0;
};

struct Message {
  MsgType type = MsgType::kGetRequest;
  uint64_t key = 0;
  std::string value;
  uint32_t client_id = 0;
  uint64_t request_id = 0;
  bool cache_hit = false;
  // For requests: the cache node chosen by the PoT router (if any).
  CacheNodeId target{};
  bool has_target = false;
  // For replies: set when no node processed the request (shutdown race); the
  // client maps it to Status::Unavailable instead of treating it as a miss.
  bool unavailable = false;
  std::vector<LoadSample> piggyback;
};

}  // namespace distcache

#endif  // DISTCACHE_NET_MESSAGE_H_
