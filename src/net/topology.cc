#include "net/topology.h"

#include <cstdio>

namespace distcache {

std::string LeafSpineTopology::Describe() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "leaf-spine: %u spine switches, %u storage racks x %u servers, %u client racks",
                config_.num_spine, config_.num_storage_racks, config_.servers_per_rack,
                config_.num_client_racks);
  return buf;
}

}  // namespace distcache
