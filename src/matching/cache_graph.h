// The bipartite object→cache-node graph of the paper's analysis (§3.2, appendix A):
// U = k hot objects, V = cache nodes in groups A (upper/spine layer) and B
// (lower/leaf layer); object i has edges to a_{h0(i)} and b_{h1(i)}.
//
// Provides:
//  * fractional perfect-matching feasibility (Definition 1) via max-flow, i.e., can
//    the cache layers absorb query rates {r_i} without overloading any node;
//  * the largest supportable total rate R* (binary search over feasibility);
//  * the expansion property |Γ(S)| ≥ |S| (Definition 3), exhaustively for small k;
//  * the traffic intensity ρ_max of the PoT queueing process (Theorem 3 condition),
//    exhaustively for small node counts.
#ifndef DISTCACHE_MATCHING_CACHE_GRAPH_H_
#define DISTCACHE_MATCHING_CACHE_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/hash.h"

namespace distcache {

class CacheGraph {
 public:
  // Builds the graph for objects {0..num_objects-1} hashed into `upper_nodes` group-A
  // nodes with h0 and `lower_nodes` group-B nodes with h1 (independent functions
  // derived from `seed`). When `single_hash` is true, group A is not used and both
  // "choices" collapse to the one node b_{h1(i)} — the Lemma 3 strawman.
  CacheGraph(size_t num_objects, size_t upper_nodes, size_t lower_nodes, uint64_t seed,
             bool single_hash = false);

  size_t num_objects() const { return num_objects_; }
  size_t upper_nodes() const { return upper_nodes_; }
  size_t lower_nodes() const { return lower_nodes_; }
  size_t num_cache_nodes() const { return upper_nodes_ + lower_nodes_; }

  // Group-A node of object i (undefined when single_hash). Node ids are
  // 0..upper_nodes-1 for A, upper_nodes..upper_nodes+lower_nodes-1 for B.
  size_t UpperNodeOf(uint64_t object) const { return a_of_[object]; }
  size_t LowerNodeOf(uint64_t object) const { return upper_nodes_ + b_of_[object]; }
  bool single_hash() const { return single_hash_; }

  // Definition 1 feasibility: can rates[i] (i < num_objects) be fully served with
  // every cache node's load ≤ node_capacity? Exact via max-flow.
  bool FeasibleMatching(const std::vector<double>& rates, double node_capacity) const;

  // Largest total rate R such that rates proportional to `pmf` are feasible, found by
  // binary search; `tolerance` is relative.
  double MaxSupportedRate(const std::vector<double>& pmf, double node_capacity,
                          double tolerance = 1e-3) const;

  // Definition 3: |Γ(S)| ≥ |S| for every non-empty S ⊆ U. Exhaustive (2^k subsets);
  // requires num_objects ≤ 24.
  bool HasExpansionProperty() const;

  // ρ_max of the PoT arrival process (appendix A.3): max over node subsets Q of
  // (total rate of objects whose both choices lie in Q) / (capacity of Q).
  // Exhaustive (2^(num nodes) subsets); requires num_cache_nodes() ≤ 24.
  double RhoMax(const std::vector<double>& rates, double node_capacity) const;

 private:
  size_t num_objects_;
  size_t upper_nodes_;
  size_t lower_nodes_;
  bool single_hash_;
  std::vector<size_t> a_of_;
  std::vector<size_t> b_of_;
};

}  // namespace distcache

#endif  // DISTCACHE_MATCHING_CACHE_GRAPH_H_
