#include "matching/max_flow.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace distcache {
namespace {

constexpr double kEps = 1e-12;

}  // namespace

MaxFlow::MaxFlow(size_t num_nodes) : graph_(num_nodes) {}

size_t MaxFlow::AddEdge(size_t u, size_t v, double capacity) {
  graph_[u].push_back(Edge{v, graph_[v].size(), capacity, capacity});
  graph_[v].push_back(Edge{u, graph_[u].size() - 1, 0.0, 0.0});
  edge_refs_.emplace_back(u, graph_[u].size() - 1);
  return edge_refs_.size() - 1;
}

bool MaxFlow::Bfs(size_t source, size_t sink) {
  level_.assign(graph_.size(), -1);
  std::queue<size_t> queue;
  level_[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const size_t v = queue.front();
    queue.pop();
    for (const Edge& e : graph_[v]) {
      if (e.capacity > kEps && level_[e.to] < 0) {
        level_[e.to] = level_[v] + 1;
        queue.push(e.to);
      }
    }
  }
  return level_[sink] >= 0;
}

double MaxFlow::Dfs(size_t v, size_t sink, double pushed) {
  if (v == sink) {
    return pushed;
  }
  for (size_t& i = iter_[v]; i < graph_[v].size(); ++i) {
    Edge& e = graph_[v][i];
    if (e.capacity > kEps && level_[v] < level_[e.to]) {
      const double got = Dfs(e.to, sink, std::min(pushed, e.capacity));
      if (got > kEps) {
        e.capacity -= got;
        graph_[e.to][e.rev].capacity += got;
        return got;
      }
    }
  }
  return 0.0;
}

double MaxFlow::Solve(size_t source, size_t sink) {
  double flow = 0.0;
  while (Bfs(source, sink)) {
    iter_.assign(graph_.size(), 0);
    while (true) {
      const double pushed = Dfs(source, sink, std::numeric_limits<double>::infinity());
      if (pushed <= kEps) {
        break;
      }
      flow += pushed;
    }
  }
  return flow;
}

double MaxFlow::FlowOn(size_t edge_index) const {
  const auto& [node, offset] = edge_refs_[edge_index];
  const Edge& e = graph_[node][offset];
  return e.original - e.capacity;
}

}  // namespace distcache
