// Dinic max-flow on a directed graph with real-valued capacities. Used to decide
// whether a fractional perfect matching (Definition 1) exists for a given query
// distribution and cache-node capacities — the feasibility core of Lemma 1.
#ifndef DISTCACHE_MATCHING_MAX_FLOW_H_
#define DISTCACHE_MATCHING_MAX_FLOW_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace distcache {

class MaxFlow {
 public:
  explicit MaxFlow(size_t num_nodes);

  // Adds a directed edge u→v with the given capacity; returns the edge index, which
  // can be used to query the flow pushed through it after Solve().
  size_t AddEdge(size_t u, size_t v, double capacity);

  // Max flow from `source` to `sink`.
  double Solve(size_t source, size_t sink);

  // Flow routed through edge `edge_index` (valid after Solve()).
  double FlowOn(size_t edge_index) const;

  size_t num_nodes() const { return graph_.size(); }

 private:
  struct Edge {
    size_t to;
    size_t rev;       // index of the reverse edge in graph_[to]
    double capacity;  // residual capacity
    double original;
  };

  bool Bfs(size_t source, size_t sink);
  double Dfs(size_t v, size_t sink, double pushed);

  std::vector<std::vector<Edge>> graph_;
  std::vector<std::pair<size_t, size_t>> edge_refs_;  // edge index → (node, offset)
  std::vector<int> level_;
  std::vector<size_t> iter_;
};

}  // namespace distcache

#endif  // DISTCACHE_MATCHING_MAX_FLOW_H_
