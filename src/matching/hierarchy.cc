#include "matching/hierarchy.h"

#include <cassert>
#include <numeric>

#include "matching/max_flow.h"

namespace distcache {

HierarchicalCacheGraph::HierarchicalCacheGraph(size_t num_objects,
                                               std::vector<size_t> layer_sizes,
                                               uint64_t seed)
    : num_objects_(num_objects), layer_sizes_(std::move(layer_sizes)) {
  assert(!layer_sizes_.empty());
  layer_offsets_.resize(layer_sizes_.size());
  size_t offset = 0;
  for (size_t l = 0; l < layer_sizes_.size(); ++l) {
    layer_offsets_[l] = offset;
    offset += layer_sizes_[l];
  }
  total_nodes_ = offset;

  HashFamily family(layer_sizes_.size(), seed);
  choice_.resize(num_objects_ * layer_sizes_.size());
  for (uint64_t i = 0; i < num_objects_; ++i) {
    for (size_t l = 0; l < layer_sizes_.size(); ++l) {
      choice_[i * layer_sizes_.size() + l] =
          static_cast<uint32_t>(family.Bucket(l, i, layer_sizes_[l]));
    }
  }
}

std::vector<size_t> HierarchicalCacheGraph::ChoicesOf(uint64_t object) const {
  std::vector<size_t> choices(num_layers());
  for (size_t l = 0; l < num_layers(); ++l) {
    choices[l] = NodeOf(object, l);
  }
  return choices;
}

bool HierarchicalCacheGraph::FeasibleMatching(
    const std::vector<double>& rates, const std::vector<double>& layer_capacity) const {
  assert(rates.size() == num_objects_);
  assert(layer_capacity.size() == num_layers());
  const size_t source = 0;
  const size_t sink = num_objects_ + total_nodes_ + 1;
  MaxFlow flow(sink + 1);
  double demand = 0.0;
  for (size_t i = 0; i < num_objects_; ++i) {
    flow.AddEdge(source, 1 + i, rates[i]);
    demand += rates[i];
    for (size_t l = 0; l < num_layers(); ++l) {
      flow.AddEdge(1 + i, 1 + num_objects_ + NodeOf(i, l), rates[i]);
    }
  }
  for (size_t l = 0; l < num_layers(); ++l) {
    for (size_t v = 0; v < layer_sizes_[l]; ++v) {
      flow.AddEdge(1 + num_objects_ + layer_offsets_[l] + v, sink, layer_capacity[l]);
    }
  }
  return flow.Solve(source, sink) >= demand * (1.0 - 1e-9) - 1e-9;
}

double HierarchicalCacheGraph::MaxSupportedRate(const std::vector<double>& pmf,
                                                double node_capacity,
                                                double tolerance) const {
  const double mass = std::accumulate(pmf.begin(), pmf.end(), 0.0);
  if (mass <= 0.0) {
    return 0.0;
  }
  const std::vector<double> capacity(num_layers(), node_capacity);
  std::vector<double> rates(num_objects_);
  const auto feasible = [&](double total) {
    for (size_t i = 0; i < num_objects_; ++i) {
      rates[i] = total * pmf[i] / mass;
    }
    return FeasibleMatching(rates, capacity);
  };
  double hi = node_capacity * static_cast<double>(total_nodes_);
  if (feasible(hi)) {
    return hi;
  }
  double lo = 0.0;
  int iterations = 0;
  while (hi - lo > tolerance * std::max(lo, 1.0) && iterations++ < 64) {
    const double mid = 0.5 * (lo + hi);
    if (feasible(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace distcache
