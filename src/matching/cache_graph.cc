#include "matching/cache_graph.h"

#include <cassert>
#include <numeric>
#include <unordered_map>

#include "matching/max_flow.h"

namespace distcache {

CacheGraph::CacheGraph(size_t num_objects, size_t upper_nodes, size_t lower_nodes,
                       uint64_t seed, bool single_hash)
    : num_objects_(num_objects),
      upper_nodes_(single_hash ? 0 : upper_nodes),
      lower_nodes_(lower_nodes),
      single_hash_(single_hash) {
  HashFamily family(2, seed);
  a_of_.resize(num_objects_);
  b_of_.resize(num_objects_);
  for (uint64_t i = 0; i < num_objects_; ++i) {
    if (!single_hash_) {
      a_of_[i] = family.Bucket(0, i, upper_nodes_);
    }
    b_of_[i] = family.Bucket(1, i, lower_nodes_);
  }
}

bool CacheGraph::FeasibleMatching(const std::vector<double>& rates,
                                  double node_capacity) const {
  assert(rates.size() == num_objects_);
  const size_t nodes = num_cache_nodes();
  // Node ids in the flow network: 0 = source, 1..k = objects,
  // k+1 .. k+nodes = cache nodes, k+nodes+1 = sink.
  const size_t source = 0;
  const size_t sink = num_objects_ + nodes + 1;
  MaxFlow flow(sink + 1);
  double demand = 0.0;
  for (size_t i = 0; i < num_objects_; ++i) {
    flow.AddEdge(source, 1 + i, rates[i]);
    demand += rates[i];
    if (!single_hash_) {
      flow.AddEdge(1 + i, 1 + num_objects_ + a_of_[i], rates[i]);
    }
    flow.AddEdge(1 + i, 1 + num_objects_ + LowerNodeOf(i), rates[i]);
  }
  for (size_t v = 0; v < nodes; ++v) {
    flow.AddEdge(1 + num_objects_ + v, sink, node_capacity);
  }
  const double max_flow = flow.Solve(source, sink);
  return max_flow >= demand * (1.0 - 1e-9) - 1e-9;
}

double CacheGraph::MaxSupportedRate(const std::vector<double>& pmf, double node_capacity,
                                    double tolerance) const {
  assert(pmf.size() == num_objects_);
  const double mass = std::accumulate(pmf.begin(), pmf.end(), 0.0);
  if (mass <= 0.0) {
    return 0.0;
  }
  // Upper bound: total cache capacity. Lower bound: zero.
  double lo = 0.0;
  double hi = node_capacity * static_cast<double>(num_cache_nodes());
  std::vector<double> rates(num_objects_);
  const auto feasible = [&](double total_rate) {
    for (size_t i = 0; i < num_objects_; ++i) {
      rates[i] = total_rate * pmf[i] / mass;
    }
    return FeasibleMatching(rates, node_capacity);
  };
  if (feasible(hi)) {
    return hi;
  }
  while (hi - lo > tolerance * hi) {
    const double mid = 0.5 * (lo + hi);
    if (feasible(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

bool CacheGraph::HasExpansionProperty() const {
  assert(num_objects_ <= 20 && "exhaustive expansion check limited to 20 objects");
  assert(num_cache_nodes() <= 64);
  std::vector<uint64_t> mask(num_objects_);
  for (size_t i = 0; i < num_objects_; ++i) {
    uint64_t m = uint64_t{1} << LowerNodeOf(i);
    if (!single_hash_) {
      m |= uint64_t{1} << a_of_[i];
    }
    mask[i] = m;
  }
  const size_t subsets = size_t{1} << num_objects_;
  // neighbors[S] built incrementally: Γ(S) = Γ(S \ lowbit) ∪ Γ(lowbit).
  std::vector<uint64_t> neighbors(subsets, 0);
  for (size_t s = 1; s < subsets; ++s) {
    const size_t low = s & (~s + 1);
    const size_t low_idx = static_cast<size_t>(std::countr_zero(low));
    neighbors[s] = neighbors[s ^ low] | mask[low_idx];
    if (static_cast<size_t>(std::popcount(neighbors[s])) <
        static_cast<size_t>(std::popcount(s))) {
      return false;
    }
  }
  return true;
}

double CacheGraph::RhoMax(const std::vector<double>& rates, double node_capacity) const {
  assert(rates.size() == num_objects_);
  assert(num_cache_nodes() <= 24 && "exhaustive rho_max limited to 24 cache nodes");
  // Aggregate object rates by their choice-set mask D(i) = {a_{h0(i)}, b_{h1(i)}};
  // there are at most upper*lower distinct masks regardless of k.
  std::unordered_map<uint64_t, double> lambda_by_mask;
  for (size_t i = 0; i < num_objects_; ++i) {
    uint64_t m = uint64_t{1} << LowerNodeOf(i);
    if (!single_hash_) {
      m |= uint64_t{1} << a_of_[i];
    }
    lambda_by_mask[m] += rates[i];
  }
  const size_t nodes = num_cache_nodes();
  const uint64_t subsets = uint64_t{1} << nodes;
  double rho_max = 0.0;
  for (uint64_t q = 1; q < subsets; ++q) {
    double arrivals = 0.0;
    for (const auto& [mask, lambda] : lambda_by_mask) {
      if ((mask & ~q) == 0) {
        arrivals += lambda;  // every choice of these objects lies inside Q
      }
    }
    if (arrivals <= 0.0) {
      continue;
    }
    const double mu = node_capacity * static_cast<double>(std::popcount(q));
    rho_max = std::max(rho_max, arrivals / mu);
  }
  return rho_max;
}

}  // namespace distcache
