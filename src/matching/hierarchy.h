// Multi-layer hierarchical caching (§3.1): "Our mechanism can be applied recursively
// for multi-layer hierarchical caching. Applying the mechanism to layer i can balance
// the load for a set of 'big servers' in layer i-1. Query routing uses the
// power-of-k-choices for k layers."
//
// HierarchicalCacheGraph generalizes the two-layer CacheGraph to L layers with
// independent hash functions h_0..h_{L-1}: object i has one candidate cache node per
// layer. Feasibility of serving query rates without overloading any node is again a
// fractional-matching/max-flow question; the benefit of more layers is a smaller
// per-layer cache (the paper's trade-off: more total nodes, less memory per node).
#ifndef DISTCACHE_MATCHING_HIERARCHY_H_
#define DISTCACHE_MATCHING_HIERARCHY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/hash.h"

namespace distcache {

class HierarchicalCacheGraph {
 public:
  // `layer_sizes[l]` = number of cache nodes in layer l; every layer uses an
  // independent hash function derived from `seed`.
  HierarchicalCacheGraph(size_t num_objects, std::vector<size_t> layer_sizes,
                         uint64_t seed);

  size_t num_objects() const { return num_objects_; }
  size_t num_layers() const { return layer_sizes_.size(); }
  size_t layer_size(size_t layer) const { return layer_sizes_[layer]; }
  size_t num_cache_nodes() const { return total_nodes_; }

  // Global node id of object `i`'s candidate in `layer` (layers are laid out
  // consecutively: layer 0 nodes first, then layer 1, ...).
  size_t NodeOf(uint64_t object, size_t layer) const {
    return layer_offsets_[layer] + choice_[object * num_layers() + layer];
  }

  // All L candidates of an object (one per layer).
  std::vector<size_t> ChoicesOf(uint64_t object) const;

  // Can rates[i] be fully served with every cache node's load ≤ per-layer capacity
  // `layer_capacity[l]`? Exact via max-flow.
  bool FeasibleMatching(const std::vector<double>& rates,
                        const std::vector<double>& layer_capacity) const;

  // Largest total rate for pmf-proportional rates (binary search), with uniform node
  // capacity `node_capacity` in every layer.
  double MaxSupportedRate(const std::vector<double>& pmf, double node_capacity,
                          double tolerance = 1e-3) const;

 private:
  size_t num_objects_;
  std::vector<size_t> layer_sizes_;
  std::vector<size_t> layer_offsets_;
  size_t total_nodes_;
  // choice_[i * L + l] = node index (within layer l) of object i.
  std::vector<uint32_t> choice_;
};

}  // namespace distcache

#endif  // DISTCACHE_MATCHING_HIERARCHY_H_
