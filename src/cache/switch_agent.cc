#include "cache/switch_agent.h"

#include <utility>

namespace distcache {

SwitchAgent::SwitchAgent(CacheSwitch* data_plane, const Config& config, PopulateFn populate)
    : data_plane_(data_plane), config_(config), populate_(std::move(populate)) {}

void SwitchAgent::SetPartition(std::unordered_set<uint64_t> partition) {
  partition_ = std::move(partition);
  for (uint64_t key : data_plane_->CachedKeys()) {
    if (!partition_.contains(key)) {
      data_plane_->Evict(key);
    }
  }
}

size_t SwitchAgent::RunEpoch() {
  size_t insertions = 0;
  // Keys admitted within this epoch have no hit history yet; they must not be
  // considered eviction victims, or each (colder) report would displace the hotter
  // one admitted just before it.
  std::unordered_set<uint64_t> admitted_this_epoch;
  for (const auto& [key, estimate] : data_plane_->heavy_hitter().TopReports()) {
    if (!partition_.contains(key) || data_plane_->Contains(key)) {
      continue;
    }
    if (data_plane_->num_entries() >= config_.max_cached_objects) {
      const auto coldest = data_plane_->ColdestKey();
      if (!coldest || admitted_this_epoch.contains(*coldest)) {
        // Reports are ranked hottest-first: everything further down is colder than
        // what we already admitted, so this epoch's churn is done.
        break;
      }
      const double bar =
          config_.replace_margin * static_cast<double>(data_plane_->HitCount(*coldest));
      if (static_cast<double>(estimate) <= bar) {
        continue;  // not hot enough to displace anything
      }
      data_plane_->Evict(*coldest);
    }
    admitted_this_epoch.insert(key);
    // Unified insertion (§4.3): insert marked invalid, then the server pushes the
    // value via coherence phase 2 — reads hitting the invalid entry fall through to
    // the server in the meantime, so no blocking occurs.
    if (data_plane_->InsertInvalid(key, /*value_size=*/16).ok()) {
      ++insertions;
      if (populate_) {
        populate_(key);
      }
    }
  }
  data_plane_->NewEpoch();
  return insertions;
}

}  // namespace distcache
