// Software model of a caching switch (the paper's Tofino data plane, §4.2/§5).
//
// The data-plane functionality we reproduce:
//  * a key-value cache organized as fixed 16-byte slots across pipeline stages
//    (8 stages × 64K slots in the prototype; values up to 128 B span stages),
//  * a per-object validity bit (cleared by phase 1 of the coherence protocol,
//    set by phase 2 — reads of an invalid entry fall through to the server),
//  * per-object hit counters (used by the agent for eviction decisions),
//  * a telemetry register: total packets served in the current epoch, piggybacked on
//    reply packets for the power-of-two-choices router,
//  * a heavy-hitter detector for uncached keys of this switch's partition.
#ifndef DISTCACHE_CACHE_CACHE_SWITCH_H_
#define DISTCACHE_CACHE_CACHE_SWITCH_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sketch/heavy_hitter.h"

namespace distcache {

enum class LookupResult : uint8_t {
  kHit,        // cached and valid: switch replies directly
  kInvalid,    // cached but mid-update: fall through to the server
  kMiss,       // not in this switch's cache
};

class CacheSwitch {
 public:
  struct Config {
    uint32_t switch_id = 0;
    size_t num_stages = 8;          // paper §5
    size_t slots_per_stage = 65536;  // paper §5: 64K 16-byte slots per stage
    size_t slot_bytes = 16;
    double capacity = 1.0;  // service units/sec (rate-limited to rack aggregate, §6.1)
    HeavyHitterDetector::Config hh;
  };

  explicit CacheSwitch(const Config& config);

  // --- data-plane read path -------------------------------------------------------

  // Looks up `key`; on a hit copies the value out and bumps the hit counter and the
  // telemetry load register.
  LookupResult Lookup(uint64_t key, std::string* value_out);

  // Records a miss for heavy-hitter detection (only for keys in this switch's
  // partition). Returns true if the key newly crossed the report threshold.
  bool RecordMiss(uint64_t key) { return hh_.Record(key); }

  // --- cache management (agent + coherence protocol) -------------------------------

  // Inserts `key` marked INVALID — the unified insertion of §4.3: the agent inserts
  // the entry, then asks the server to populate it via coherence phase 2.
  Status InsertInvalid(uint64_t key, size_t value_size);

  // Coherence phase 1: clears the validity bit. kNotFound if the key is not cached.
  Status Invalidate(uint64_t key);

  // Coherence phase 2: writes the value and sets the validity bit.
  Status UpdateValue(uint64_t key, std::string value);

  // Removes the entry and releases its slots.
  Status Evict(uint64_t key);

  bool Contains(uint64_t key) const { return entries_.contains(key); }
  bool IsValid(uint64_t key) const;
  uint64_t HitCount(uint64_t key) const;

  // Cached key with the fewest hits this epoch (eviction candidate), if any.
  std::optional<uint64_t> ColdestKey() const;

  std::vector<uint64_t> CachedKeys() const;

  // --- telemetry (§4.2 in-network telemetry) ---------------------------------------

  // Load this epoch (the value piggybacked into reply headers).
  uint64_t TelemetryLoad() const { return telemetry_load_; }
  // Charges non-hit work against the telemetry register (e.g., coherence traffic).
  void AddTelemetryLoad(uint64_t units) { telemetry_load_ += units; }
  // Epoch roll: resets the telemetry register, hit counters and the HH detector
  // (the prototype resets these every second, §5).
  void NewEpoch();

  // --- capacity accounting ----------------------------------------------------------

  double capacity() const { return config_.capacity; }
  size_t slots_used() const { return slots_used_; }
  size_t slots_total() const { return config_.num_stages * config_.slots_per_stage; }
  size_t num_entries() const { return entries_.size(); }
  uint32_t id() const { return config_.switch_id; }
  HeavyHitterDetector& heavy_hitter() { return hh_; }

 private:
  struct Entry {
    std::string value;
    bool valid = false;
    uint64_t hits = 0;
    size_t slots = 1;  // 16-byte slots spanned by the value
  };

  size_t SlotsFor(size_t value_size) const {
    return value_size == 0 ? 1 : (value_size + config_.slot_bytes - 1) / config_.slot_bytes;
  }

  Config config_;
  std::unordered_map<uint64_t, Entry> entries_;
  size_t slots_used_ = 0;
  uint64_t telemetry_load_ = 0;
  HeavyHitterDetector hh_;
};

}  // namespace distcache

#endif  // DISTCACHE_CACHE_CACHE_SWITCH_H_
