#include "cache/cache_switch.h"

#include <limits>

#include "kv/kv_store.h"

namespace distcache {

CacheSwitch::CacheSwitch(const Config& config) : config_(config), hh_(config.hh) {}

LookupResult CacheSwitch::Lookup(uint64_t key, std::string* value_out) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return LookupResult::kMiss;
  }
  if (!it->second.valid) {
    return LookupResult::kInvalid;
  }
  if (value_out != nullptr) {
    *value_out = it->second.value;
  }
  ++it->second.hits;
  ++telemetry_load_;
  return LookupResult::kHit;
}

Status CacheSwitch::InsertInvalid(uint64_t key, size_t value_size) {
  if (value_size > KvStore::kMaxValueSize) {
    return Status::InvalidArgument("value exceeds 128-byte limit");
  }
  if (entries_.contains(key)) {
    return Status::AlreadyExists();
  }
  const size_t slots = SlotsFor(value_size);
  if (slots_used_ + slots > slots_total()) {
    return Status::ResourceExhausted("switch value slots exhausted");
  }
  Entry entry;
  entry.valid = false;
  entry.slots = slots;
  entries_.emplace(key, std::move(entry));
  slots_used_ += slots;
  return Status::Ok();
}

Status CacheSwitch::Invalidate(uint64_t key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound();
  }
  it->second.valid = false;
  return Status::Ok();
}

Status CacheSwitch::UpdateValue(uint64_t key, std::string value) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound();
  }
  const size_t new_slots = SlotsFor(value.size());
  if (new_slots > it->second.slots &&
      slots_used_ + (new_slots - it->second.slots) > slots_total()) {
    return Status::ResourceExhausted("switch value slots exhausted");
  }
  slots_used_ += new_slots;
  slots_used_ -= it->second.slots;
  it->second.slots = new_slots;
  it->second.value = std::move(value);
  it->second.valid = true;
  return Status::Ok();
}

Status CacheSwitch::Evict(uint64_t key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound();
  }
  slots_used_ -= it->second.slots;
  entries_.erase(it);
  return Status::Ok();
}

bool CacheSwitch::IsValid(uint64_t key) const {
  auto it = entries_.find(key);
  return it != entries_.end() && it->second.valid;
}

uint64_t CacheSwitch::HitCount(uint64_t key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? 0 : it->second.hits;
}

std::optional<uint64_t> CacheSwitch::ColdestKey() const {
  std::optional<uint64_t> coldest;
  uint64_t min_hits = std::numeric_limits<uint64_t>::max();
  for (const auto& [key, entry] : entries_) {
    if (entry.hits < min_hits || (entry.hits == min_hits && (!coldest || key < *coldest))) {
      min_hits = entry.hits;
      coldest = key;
    }
  }
  return coldest;
}

std::vector<uint64_t> CacheSwitch::CachedKeys() const {
  std::vector<uint64_t> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    keys.push_back(key);
  }
  return keys;
}

void CacheSwitch::NewEpoch() {
  telemetry_load_ = 0;
  for (auto& [key, entry] : entries_) {
    entry.hits = 0;
  }
  hh_.NewEpoch();
}

}  // namespace distcache
