// Switch hardware-resource model (Table 1 substitution).
//
// The paper reports per-role resource usage of the P4 programs on Tofino: match
// entries, hash bits, SRAM blocks and action slots for a spine cache switch, a client
// ToR and a storage-rack ToR, compared against the baseline switch.p4. Without Tofino
// tooling we account the same quantities from first principles for the P4 design
// described in §5: key-value cache (8 stages × 64K 16-byte slots), Count-Min sketch
// (4 arrays × 64K 16-bit), Bloom filter (3 arrays × 256K 1-bit), one 32-bit telemetry
// register, and (client ToR only) a 256 × 32-bit cache-load register array plus the
// power-of-two comparison tables.
#ifndef DISTCACHE_CACHE_RESOURCE_MODEL_H_
#define DISTCACHE_CACHE_RESOURCE_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace distcache {

enum class SwitchRole {
  kSpineCache,    // caches objects; no query routing
  kLeafClient,    // client-rack ToR: PoT query routing, no cache
  kLeafStorage,   // storage-rack ToR: caches objects + miss forwarding to servers
};

struct SwitchResources {
  std::string role;
  uint32_t match_entries = 0;
  uint32_t hash_bits = 0;
  uint32_t sram_blocks = 0;   // 16 KB SRAM blocks
  uint32_t action_slots = 0;
};

class SwitchResourceModel {
 public:
  struct Config {
    size_t cache_stages = 8;
    size_t cache_slots_per_stage = 65536;
    size_t cache_slot_bytes = 16;
    size_t key_bytes = 16;
    size_t cm_rows = 4;
    size_t cm_width = 65536;
    size_t cm_counter_bits = 16;
    size_t bloom_rows = 3;
    size_t bloom_bits = 262144;
    size_t telemetry_registers = 1;
    size_t load_table_entries = 256;  // client ToR: per-cache-switch load registers
    size_t sram_block_bytes = 16 * 1024;
  };

  explicit SwitchResourceModel(const Config& config) : config_(config) {}

  SwitchResources Estimate(SwitchRole role) const;

  // All three DistCache roles, for the Table 1 printout.
  std::vector<SwitchResources> EstimateAll() const;

 private:
  Config config_;
};

}  // namespace distcache

#endif  // DISTCACHE_CACHE_RESOURCE_MODEL_H_
