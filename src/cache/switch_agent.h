// Switch local agent (§4.1, §4.3): receives its cache partition from the controller
// and manages the hot objects of that partition in the switch data plane.
//
// Cache update runs decentralized, without the controller: the agent reads the
// heavy-hitter reports, compares against the coldest cached object's hit count, evicts
// directly and inserts via the unified insert-invalid + coherence-phase-2 path (the
// server populates the value through the data plane and serializes it with writes).
#ifndef DISTCACHE_CACHE_SWITCH_AGENT_H_
#define DISTCACHE_CACHE_SWITCH_AGENT_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "cache/cache_switch.h"

namespace distcache {

class SwitchAgent {
 public:
  struct Config {
    size_t max_cached_objects = 100;  // paper §6.1: 100 hot objects per switch
    // An HH report must beat the coldest cached object by this factor to trigger a
    // replacement (hysteresis against thrashing).
    double replace_margin = 1.5;
  };

  // `populate` is invoked for every inserted key; it models the agent notifying the
  // storage server, which then pushes the value through coherence phase 2 (§4.3).
  using PopulateFn = std::function<void(uint64_t key)>;

  SwitchAgent(CacheSwitch* data_plane, const Config& config, PopulateFn populate);

  // Installs the partition computed by the controller. Keys outside the partition are
  // evicted immediately.
  void SetPartition(std::unordered_set<uint64_t> partition);
  bool InPartition(uint64_t key) const { return partition_.contains(key); }

  // One agent epoch: consume HH reports, perform evictions/insertions, then reset the
  // data-plane epoch state. Returns the number of cache insertions performed.
  size_t RunEpoch();

  const std::unordered_set<uint64_t>& partition() const { return partition_; }

 private:
  CacheSwitch* data_plane_;
  Config config_;
  PopulateFn populate_;
  std::unordered_set<uint64_t> partition_;
};

}  // namespace distcache

#endif  // DISTCACHE_CACHE_SWITCH_AGENT_H_
