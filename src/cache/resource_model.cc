#include "cache/resource_model.h"

namespace distcache {
namespace {

uint32_t CeilDiv(size_t a, size_t b) { return static_cast<uint32_t>((a + b - 1) / b); }

}  // namespace

SwitchResources SwitchResourceModel::Estimate(SwitchRole role) const {
  SwitchResources r;

  // --- caching modules (spine and storage-rack leaf switches) ----------------------
  const bool caches = role != SwitchRole::kLeafClient;
  if (caches) {
    // Key-value cache: one exact-match table on the 16-byte key steering to per-stage
    // register arrays, one match entry per pipeline stage plus hit/miss actions.
    r.match_entries += static_cast<uint32_t>(2 * config_.cache_stages);
    // Cache index hash over the key: log2(slots) bits per stage lookup.
    r.hash_bits += static_cast<uint32_t>(config_.cache_stages * 16);
    r.sram_blocks += CeilDiv(
        config_.cache_stages * config_.cache_slots_per_stage * config_.cache_slot_bytes,
        config_.sram_block_bytes) / 8;  // value slots are spread across 8 pipelines
    r.action_slots += static_cast<uint32_t>(3 * config_.cache_stages);  // read/write/skip

    // Heavy-hitter detector: CM sketch + Bloom filter.
    r.match_entries += static_cast<uint32_t>(config_.cm_rows + config_.bloom_rows);
    r.hash_bits += static_cast<uint32_t>(config_.cm_rows * 16 + config_.bloom_rows * 18);
    r.sram_blocks += CeilDiv(config_.cm_rows * config_.cm_width * config_.cm_counter_bits / 8,
                             config_.sram_block_bytes);
    r.sram_blocks += CeilDiv(config_.bloom_rows * config_.bloom_bits / 8,
                             config_.sram_block_bytes);
    r.action_slots += static_cast<uint32_t>(config_.cm_rows + config_.bloom_rows);

    // Telemetry register + piggyback header rewrite.
    r.match_entries += static_cast<uint32_t>(config_.telemetry_registers + 2);
    r.hash_bits += 0;
    r.sram_blocks += 1;
    r.action_slots += 4;
  }

  // --- query routing (client-rack ToR) ----------------------------------------------
  if (role == SwitchRole::kLeafClient) {
    // Cache-load register array (256 × 32-bit), the two-choice compare, the reply-path
    // telemetry extraction, and the reserved-L4-port classifier.
    r.match_entries += static_cast<uint32_t>(config_.load_table_entries / 8 + 8);
    r.hash_bits += 2 * 16;  // h0/h1 bucket hashes to locate the two candidate switches
    r.sram_blocks += CeilDiv(config_.load_table_entries * 4, config_.sram_block_bytes) + 1;
    r.action_slots += 12;
  }

  // --- miss forwarding to servers (storage-rack leaf only) --------------------------
  if (role == SwitchRole::kLeafStorage) {
    r.match_entries += 32;  // per-server forwarding entries for one rack
    r.hash_bits += 16;
    r.sram_blocks += 1;
    r.action_slots += 8;
  }

  switch (role) {
    case SwitchRole::kSpineCache:
      r.role = "Spine";
      break;
    case SwitchRole::kLeafClient:
      r.role = "Leaf (Client)";
      break;
    case SwitchRole::kLeafStorage:
      r.role = "Leaf (Server)";
      break;
  }
  return r;
}

std::vector<SwitchResources> SwitchResourceModel::EstimateAll() const {
  return {Estimate(SwitchRole::kSpineCache), Estimate(SwitchRole::kLeafClient),
          Estimate(SwitchRole::kLeafStorage)};
}

}  // namespace distcache
