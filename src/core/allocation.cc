#include "core/allocation.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <numeric>

namespace distcache {

CacheAllocation::CacheAllocation(const AllocationConfig& config, const Placement& placement)
    : config_(config) {
  // Hard checks in every build mode: a malformed hierarchy would index the
  // per-rack and per-partition arrays out of bounds below.
  if (config_.layers.size() < 2 || config_.layers.size() > kMaxCacheLayers ||
      placement.num_racks() != config_.layers.back().nodes) {
    std::fprintf(stderr,
                 "CacheAllocation: invalid hierarchy (%zu layers, leaf %u nodes, "
                 "%u racks)\n",
                 config_.layers.size(),
                 config_.layers.empty() ? 0 : config_.layers.back().nodes,
                 placement.num_racks());
    std::abort();
  }
  // One independent hash per upper layer. Layer 0 keeps the historical h0 seed
  // derivation exactly; deeper layers perturb the tweak so every layer's hash is
  // an independent tabulation function.
  hash_.reserve(config_.layers.size() - 1);
  for (size_t l = 0; l + 1 < config_.layers.size(); ++l) {
    hash_.emplace_back(HashCombine(config_.hash_seed, 0xa110cULL + l));
  }
  if (config_.candidate_pool != 0) {
    pool_ = config_.candidate_pool;
  } else {
    uint64_t budget = 0;
    for (const LayerSpec& layer : config_.layers) {
      budget += uint64_t{layer.nodes} * layer.cache_objects;
    }
    pool_ = 8 * budget;
  }
  Compute(placement);
}

void CacheAllocation::Compute(const Placement& placement) {
  const size_t num_layers = config_.layers.size();
  const size_t leaf = num_layers - 1;
  // How many ranks the current hot ordering covers: the whole pool under the
  // identity mapping, the list length after Refill (a short observed list leaves
  // the remaining budget demand unfilled).
  const uint64_t ranked =
      explicit_hot_list_ ? std::min<uint64_t>(key_of_rank_.size(), pool_) : pool_;
  cached_.assign(num_layers, {});
  node_of_.assign(num_layers, {});
  for (size_t l = 0; l < num_layers; ++l) {
    cached_[l].assign(pool_, 0);
    node_of_[l].assign(pool_, 0);
  }
  layer_contents_.assign(num_layers, {});
  layer_contents_[leaf].assign(config_.layers[leaf].nodes, {});
  partition_contents_.assign(leaf, {});
  node_of_partition_.assign(leaf, {});
  for (size_t l = 0; l < leaf; ++l) {
    partition_contents_[l].assign(config_.layers[l].nodes, {});
    node_of_partition_[l].resize(config_.layers[l].nodes);
    std::iota(node_of_partition_[l].begin(), node_of_partition_[l].end(), 0);
  }

  const bool leaf_caching = config_.mechanism != Mechanism::kNoCache;
  const bool upper_partitioned = config_.mechanism == Mechanism::kDistCache;
  const bool top_replicated = config_.mechanism == Mechanism::kCacheReplication;

  // Ranks are visited hottest-first, so a single ascending pass fills every
  // per-node budget with the hottest members of its partition. All hashes (h_l,
  // placement) are evaluated on the *key id* holding the rank, so an explicit hot
  // list lands each key at its true rack/partitions.
  auto& leaf_contents = layer_contents_[leaf];
  for (uint64_t rank = 0; rank < ranked; ++rank) {
    const uint64_t key = KeyOfRank(rank);
    const uint32_t rack = placement.RackOf(key);
    node_of_[leaf][rank] = rack;
    if (leaf_caching &&
        leaf_contents[rack].size() < config_.layers[leaf].cache_objects) {
      leaf_contents[rack].push_back(key);
      cached_[leaf][rank] = 1;
    }
    if (upper_partitioned) {
      for (size_t l = 0; l < leaf; ++l) {
        const uint32_t partition = PartitionOf(l, key);
        node_of_[l][rank] = partition;
        if (partition_contents_[l][partition].size() <
            config_.layers[l].cache_objects) {
          partition_contents_[l][partition].push_back(key);
          cached_[l][rank] = 1;
        }
      }
    } else if (top_replicated && rank < config_.layers[0].cache_objects) {
      // The globally hottest objects; identical content in every layer-0 node.
      partition_contents_[0][0].push_back(key);
      cached_[0][rank] = 1;
    }
  }

  for (size_t l = 0; l < leaf; ++l) {
    DeriveLayerContents(l);
  }

  num_cached_ = 0;
  for (uint64_t rank = 0; rank < ranked; ++rank) {
    bool any = false;
    for (size_t l = 0; l < num_layers; ++l) {
      any = any || cached_[l][rank] != 0;
    }
    num_cached_ += any ? 1 : 0;
  }
}

// Rebuilds one upper layer's per-node contents from its partition contents
// through the layer's partition→node map.
void CacheAllocation::DeriveLayerContents(size_t layer) {
  layer_contents_[layer].assign(config_.layers[layer].nodes, {});
  if (config_.mechanism == Mechanism::kCacheReplication) {
    if (layer == 0) {
      for (auto& contents : layer_contents_[0]) {
        contents = partition_contents_[0][0];
      }
    }
    return;
  }
  for (uint32_t p = 0; p < config_.layers[layer].nodes; ++p) {
    auto& dst = layer_contents_[layer][node_of_partition_[layer][p]];
    dst.insert(dst.end(), partition_contents_[layer][p].begin(),
               partition_contents_[layer][p].end());
  }
}

CacheCopies CacheAllocation::CopiesOf(uint64_t key) const {
  CacheCopies copies;
  const size_t num_layers = config_.layers.size();
  copies.leaf_layer = static_cast<uint8_t>(num_layers - 1);
  const uint64_t rank = RankOf(key);
  if (rank >= pool_) {
    return copies;
  }
  const bool replicated = config_.mechanism == Mechanism::kCacheReplication;
  for (size_t l = 0; l < num_layers; ++l) {
    if (!cached_[l][rank]) {
      continue;
    }
    if (l == 0 && replicated) {
      copies.replicated_all_spines = true;
      continue;
    }
    const uint32_t node = l + 1 == num_layers
                              ? node_of_[l][rank]
                              : node_of_partition_[l][node_of_[l][rank]];
    copies.nodes[copies.num++] = {static_cast<uint32_t>(l), node};
  }
  return copies;
}

uint64_t CacheAllocation::CachedRankEnd() const {
  const size_t num_layers = config_.layers.size();
  for (uint64_t rank = pool_; rank-- > 0;) {
    for (size_t l = 0; l < num_layers; ++l) {
      if (cached_[l][rank]) {
        return rank + 1;
      }
    }
  }
  return 0;
}

size_t CacheAllocation::OverflowCandidates() const {
  // Replicated entries never spill (the layer-0 replicas are implicit and the
  // optional leaf copy rides inline), so only the partitioned mechanism with
  // three or more layers can produce overflow runs.
  if (config_.mechanism != Mechanism::kDistCache || config_.layers.size() <= 2) {
    return 0;
  }
  const size_t num_layers = config_.layers.size();
  size_t total = 0;
  for (uint64_t rank = 0; rank < pool_; ++rank) {
    size_t copies = 0;
    for (size_t l = 0; l < num_layers; ++l) {
      copies += cached_[l][rank] != 0 ? 1 : 0;
    }
    total += copies > 2 ? copies : 0;
  }
  return total;
}

void CacheAllocation::Refill(const std::vector<uint64_t>& hottest_first,
                             const Placement& placement) {
  explicit_hot_list_ = true;
  key_of_rank_.assign(hottest_first.begin(),
                      hottest_first.begin() +
                          std::min<size_t>(hottest_first.size(), pool_));
  rank_of_key_.clear();
  rank_of_key_.reserve(key_of_rank_.size());
  for (uint64_t rank = 0; rank < key_of_rank_.size(); ++rank) {
    // First occurrence wins: a duplicate key keeps its hotter rank.
    rank_of_key_.emplace(key_of_rank_[rank], rank);
  }
  const std::vector<std::vector<uint32_t>> remaps = node_of_partition_;
  Compute(placement);
  // Failure remaps in effect survive the re-allocation, layer by layer.
  for (size_t l = 0; l < remaps.size(); ++l) {
    if (!remaps[l].empty()) {
      RemapLayer(l, remaps[l]);
    }
  }
}

void CacheAllocation::RemapLayer(size_t layer,
                                 const std::vector<uint32_t>& node_of_partition) {
  assert(layer + 1 < config_.layers.size());
  assert(node_of_partition.size() == config_.layers[layer].nodes);
  node_of_partition_[layer] = node_of_partition;
  DeriveLayerContents(layer);
}

}  // namespace distcache
