#include "core/allocation.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace distcache {

CacheAllocation::CacheAllocation(const AllocationConfig& config, const Placement& placement)
    : config_(config), h0_(HashCombine(config.hash_seed, 0xa110cULL)) {
  assert(placement.num_racks() == config_.num_racks);
  pool_ = config_.candidate_pool != 0
              ? config_.candidate_pool
              : uint64_t{8} * config_.per_switch_objects *
                    (config_.num_spine + config_.num_racks);
  Compute(placement);
}

void CacheAllocation::Compute(const Placement& placement) {
  // How many ranks the current hot ordering covers: the whole pool under the
  // identity mapping, the list length after Refill (a short observed list leaves
  // the remaining budget demand unfilled).
  const uint64_t ranked =
      explicit_hot_list_ ? std::min<uint64_t>(key_of_rank_.size(), pool_) : pool_;
  leaf_cached_.assign(pool_, 0);
  spine_cached_.assign(pool_, 0);
  leaf_of_.assign(pool_, 0);
  spine_of_.assign(pool_, 0);
  leaf_contents_.assign(config_.num_racks, {});
  partition_contents_.assign(config_.num_spine, {});
  spine_of_partition_.resize(config_.num_spine);
  std::iota(spine_of_partition_.begin(), spine_of_partition_.end(), 0);

  const bool leaf_caching = config_.mechanism != Mechanism::kNoCache;
  const bool spine_partitioned = config_.mechanism == Mechanism::kDistCache;
  const bool spine_replicated = config_.mechanism == Mechanism::kCacheReplication;

  // Ranks are visited hottest-first, so a single ascending pass fills every
  // per-switch budget with the hottest members of its partition. All hashes (h0,
  // placement) are evaluated on the *key id* holding the rank, so an explicit hot
  // list lands each key at its true rack/partition.
  for (uint64_t rank = 0; rank < ranked; ++rank) {
    const uint64_t key = KeyOfRank(rank);
    const uint32_t rack = placement.RackOf(key);
    leaf_of_[rank] = rack;
    const uint32_t partition = SpinePartitionOf(key);
    spine_of_[rank] = partition;

    if (leaf_caching && leaf_contents_[rack].size() < config_.per_switch_objects) {
      leaf_contents_[rack].push_back(key);
      leaf_cached_[rank] = 1;
    }
    if (spine_partitioned &&
        partition_contents_[partition].size() < config_.per_switch_objects) {
      partition_contents_[partition].push_back(key);
      spine_cached_[rank] = 1;
    }
    if (spine_replicated && rank < config_.per_switch_objects) {
      // The globally hottest objects; identical content in every spine switch.
      partition_contents_[0].push_back(key);
      spine_cached_[rank] = 1;
    }
  }

  // Derive spine switch contents from partition contents.
  spine_contents_.assign(config_.num_spine, {});
  if (spine_replicated) {
    for (uint32_t s = 0; s < config_.num_spine; ++s) {
      spine_contents_[s] = partition_contents_[0];
    }
  } else if (spine_partitioned) {
    for (uint32_t p = 0; p < config_.num_spine; ++p) {
      auto& dst = spine_contents_[spine_of_partition_[p]];
      dst.insert(dst.end(), partition_contents_[p].begin(), partition_contents_[p].end());
    }
  }

  num_cached_ = 0;
  for (uint64_t rank = 0; rank < ranked; ++rank) {
    if (leaf_cached_[rank] || spine_cached_[rank]) {
      ++num_cached_;
    }
  }
}

CacheCopies CacheAllocation::CopiesOf(uint64_t key) const {
  CacheCopies copies;
  const uint64_t rank = RankOf(key);
  if (rank >= pool_) {
    return copies;
  }
  if (leaf_cached_[rank]) {
    copies.leaf = leaf_of_[rank];
  }
  if (spine_cached_[rank]) {
    if (config_.mechanism == Mechanism::kCacheReplication) {
      copies.replicated_all_spines = true;
    } else {
      copies.spine = spine_of_partition_[spine_of_[rank]];
    }
  }
  return copies;
}

void CacheAllocation::Refill(const std::vector<uint64_t>& hottest_first,
                             const Placement& placement) {
  explicit_hot_list_ = true;
  key_of_rank_.assign(hottest_first.begin(),
                      hottest_first.begin() +
                          std::min<size_t>(hottest_first.size(), pool_));
  rank_of_key_.clear();
  rank_of_key_.reserve(key_of_rank_.size());
  for (uint64_t rank = 0; rank < key_of_rank_.size(); ++rank) {
    // First occurrence wins: a duplicate key keeps its hotter rank.
    rank_of_key_.emplace(key_of_rank_[rank], rank);
  }
  const std::vector<uint32_t> remap = spine_of_partition_;
  Compute(placement);
  if (!remap.empty()) {
    RemapSpine(remap);  // failure remaps in effect survive the re-allocation
  }
}

void CacheAllocation::RemapSpine(const std::vector<uint32_t>& spine_of_partition) {
  assert(spine_of_partition.size() == config_.num_spine);
  spine_of_partition_ = spine_of_partition;
  spine_contents_.assign(config_.num_spine, {});
  if (config_.mechanism == Mechanism::kCacheReplication) {
    for (uint32_t s = 0; s < config_.num_spine; ++s) {
      spine_contents_[s] = partition_contents_[0];
    }
    return;
  }
  for (uint32_t p = 0; p < config_.num_spine; ++p) {
    auto& dst = spine_contents_[spine_of_partition_[p]];
    dst.insert(dst.end(), partition_contents_[p].begin(), partition_contents_[p].end());
  }
}

}  // namespace distcache
