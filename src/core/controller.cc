#include "core/controller.h"

#include <numeric>

namespace distcache {

CacheController::CacheController(CacheAllocation* allocation, uint32_t num_spine)
    : allocation_(allocation),
      num_spine_(num_spine),
      num_alive_(num_spine),
      alive_(num_spine, true),
      spine_of_partition_(num_spine) {
  std::iota(spine_of_partition_.begin(), spine_of_partition_.end(), 0);
  for (uint32_t s = 0; s < num_spine_; ++s) {
    ring_.AddNode(s);
  }
}

void CacheController::OnSpineFailure(uint32_t spine) {
  if (spine >= num_spine_ || !alive_[spine] || num_alive_ <= 1) {
    return;
  }
  alive_[spine] = false;
  --num_alive_;
  ring_.RemoveNode(spine);
  Recompute();
}

void CacheController::OnSpineRecovery(uint32_t spine) {
  if (spine >= num_spine_ || alive_[spine]) {
    return;
  }
  alive_[spine] = true;
  ++num_alive_;
  ring_.AddNode(spine);
  Recompute();
}

void CacheController::ReallocateCache(const std::vector<uint64_t>& hottest_first,
                                      const Placement& placement) {
  if (allocation_ != nullptr) {
    // Refill preserves the allocation's remap internally, but re-assert the
    // controller's own view so both stay the single source of truth.
    allocation_->Refill(hottest_first, placement);
    allocation_->RemapSpine(spine_of_partition_);
  }
  if (listener_) {
    listener_(spine_of_partition_);
  }
}

void CacheController::Recompute() {
  for (uint32_t p = 0; p < num_spine_; ++p) {
    if (alive_[p]) {
      spine_of_partition_[p] = p;  // healthy partitions stay home
    } else {
      // Consistent hashing spreads failed partitions over the alive switches; the
      // virtual nodes make the spread nearly uniform even for a handful of failures.
      spine_of_partition_[p] = ring_.NodeFor(p).value_or(p);
    }
  }
  if (allocation_ != nullptr) {
    allocation_->RemapSpine(spine_of_partition_);
  }
  if (listener_) {
    listener_(spine_of_partition_);
  }
}

}  // namespace distcache
