#include "core/cache_policy.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <list>
#include <unordered_map>
#include <utility>

#include "common/hash.h"
#include "sketch/lru_map.h"

namespace distcache {

const char* CachePolicyName(CachePolicyKind kind) {
  switch (kind) {
    case CachePolicyKind::kDistCache: return "distcache";
    case CachePolicyKind::kStaticTopK: return "static-topk";
    case CachePolicyKind::kLru: return "lru";
    case CachePolicyKind::kLfu: return "lfu";
    case CachePolicyKind::kFifo: return "fifo";
    case CachePolicyKind::kSegmented: return "segmented";
  }
  return "unknown";
}

const char* HierarchyModeName(HierarchyMode mode) {
  return mode == HierarchyMode::kInclusive ? "inclusive" : "exclusive";
}

const char* WritePolicyName(WritePolicy policy) {
  return policy == WritePolicy::kWriteThrough ? "write-through" : "write-back";
}

bool ParseCachePolicy(const std::string& name, CachePolicyKind* out) {
  for (CachePolicyKind kind :
       {CachePolicyKind::kDistCache, CachePolicyKind::kStaticTopK,
        CachePolicyKind::kLru, CachePolicyKind::kLfu, CachePolicyKind::kFifo,
        CachePolicyKind::kSegmented}) {
    if (name == CachePolicyName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

bool ParseHierarchyMode(const std::string& name, HierarchyMode* out) {
  for (HierarchyMode mode : {HierarchyMode::kInclusive, HierarchyMode::kExclusive}) {
    if (name == HierarchyModeName(mode)) {
      *out = mode;
      return true;
    }
  }
  return false;
}

bool ParseWritePolicy(const std::string& name, WritePolicy* out) {
  for (WritePolicy policy : {WritePolicy::kWriteThrough, WritePolicy::kWriteBack}) {
    if (name == WritePolicyName(policy)) {
      *out = policy;
      return true;
    }
  }
  return false;
}

std::string ValidateCachePolicy(CachePolicyKind policy, HierarchyMode hierarchy,
                                WritePolicy write, Mechanism mechanism) {
  if (policy != CachePolicyKind::kDistCache && mechanism != Mechanism::kDistCache) {
    return std::string("cache policy '") + CachePolicyName(policy) +
           "' replaces the DistCache allocation; it is defined for the "
           "distcache mechanism only";
  }
  if (!PolicyIsDynamic(policy) &&
      (hierarchy != HierarchyMode::kInclusive || write != WritePolicy::kWriteThrough)) {
    return std::string("hierarchy/write policies apply to the dynamic cache "
                       "policies; the static '") +
           CachePolicyName(policy) +
           "' allocation models multi-layer copies and write-through coherence "
           "natively (use inclusive + write-through)";
  }
  return "";
}

namespace {

// ---- LRU -------------------------------------------------------------------

class LruNodeCache : public NodeCache {
 public:
  explicit LruNodeCache(size_t capacity) : NodeCache(capacity), map_(capacity) {}

  bool Lookup(uint64_t key, std::optional<EvictedLine>& evicted) override {
    (void)evicted;  // plain LRU promotion never displaces a line
    return map_.Get(key) != nullptr;
  }
  bool Contains(uint64_t key) const override { return map_.Contains(key); }

  std::optional<EvictedLine> Admit(uint64_t key, bool dirty) override {
    auto victim = map_.Put(key, dirty ? uint8_t{1} : uint8_t{0});
    if (!victim) {
      return std::nullopt;
    }
    return EvictedLine{victim->first, victim->second != 0};
  }

  MarkResult MarkDirty(uint64_t key) override {
    uint8_t* bit = map_.PeekMutable(key);
    if (bit == nullptr) {
      return MarkResult::kAbsent;
    }
    const MarkResult r = *bit != 0 ? MarkResult::kWasDirty : MarkResult::kWasClean;
    *bit = 1;
    return r;
  }

  std::optional<EvictedLine> Erase(uint64_t key) override {
    const uint8_t* bit = map_.Peek(key);
    if (bit == nullptr) {
      return std::nullopt;
    }
    const EvictedLine line{key, *bit != 0};
    map_.Erase(key);
    return line;
  }

  void ForEach(const std::function<void(uint64_t, bool)>& fn) const override {
    for (const auto& [key, dirty] : map_.entries()) {
      fn(key, dirty != 0);
    }
  }
  void Clear() override {
    while (const auto* oldest = map_.Oldest()) {
      map_.Erase(oldest->first);
    }
  }
  size_t size() const override { return map_.size(); }

 private:
  LruMap<uint64_t, uint8_t> map_;
};

// ---- FIFO ------------------------------------------------------------------

class FifoNodeCache : public NodeCache {
 public:
  explicit FifoNodeCache(size_t capacity) : NodeCache(capacity) {}

  bool Lookup(uint64_t key, std::optional<EvictedLine>& evicted) override {
    (void)evicted;
    return index_.contains(key);  // FIFO order is insertion order; no touch
  }
  bool Contains(uint64_t key) const override { return index_.contains(key); }

  std::optional<EvictedLine> Admit(uint64_t key, bool dirty) override {
    order_.push_back(key);
    index_[key] = Line{std::prev(order_.end()), dirty};
    if (index_.size() <= capacity()) {
      return std::nullopt;
    }
    const uint64_t victim_key = order_.front();
    const bool victim_dirty = index_.at(victim_key).dirty;
    order_.pop_front();
    index_.erase(victim_key);
    return EvictedLine{victim_key, victim_dirty};
  }

  MarkResult MarkDirty(uint64_t key) override {
    auto it = index_.find(key);
    if (it == index_.end()) {
      return MarkResult::kAbsent;
    }
    const MarkResult r =
        it->second.dirty ? MarkResult::kWasDirty : MarkResult::kWasClean;
    it->second.dirty = true;
    return r;
  }

  std::optional<EvictedLine> Erase(uint64_t key) override {
    auto it = index_.find(key);
    if (it == index_.end()) {
      return std::nullopt;
    }
    const EvictedLine line{key, it->second.dirty};
    order_.erase(it->second.pos);
    index_.erase(it);
    return line;
  }

  void ForEach(const std::function<void(uint64_t, bool)>& fn) const override {
    for (uint64_t key : order_) {
      fn(key, index_.at(key).dirty);
    }
  }
  void Clear() override {
    order_.clear();
    index_.clear();
  }
  size_t size() const override { return index_.size(); }

 private:
  struct Line {
    std::list<uint64_t>::iterator pos;
    bool dirty = false;
  };
  std::list<uint64_t> order_;  // front = oldest (next victim)
  std::unordered_map<uint64_t, Line> index_;
};

// ---- LFU -------------------------------------------------------------------

class LfuNodeCache : public NodeCache {
 public:
  LfuNodeCache(size_t capacity, uint64_t seed)
      : NodeCache(capacity), history_(LfuHistorySketchConfig(seed)) {}

  bool Lookup(uint64_t key, std::optional<EvictedLine>& evicted) override {
    (void)evicted;
    auto it = lines_.find(key);
    if (it == lines_.end()) {
      return false;
    }
    if (it->second.count < std::numeric_limits<uint32_t>::max()) {
      ++it->second.count;
    }
    return true;
  }
  bool Contains(uint64_t key) const override { return lines_.contains(key); }

  std::optional<EvictedLine> Admit(uint64_t key, bool dirty) override {
    // Every admission attempt records the key in the miss-history sketch; the
    // returned estimate seeds the resident counter, so a key that keeps coming
    // back competes with its accumulated frequency, not from zero. Because the
    // seeded count can still be the minimum, Admit can evict the key it just
    // inserted — that is the frequency admission filter rejecting it.
    const uint32_t estimate = history_.Update(key);
    lines_[key] = Line{std::max(estimate, 1u), dirty};
    if (lines_.size() <= capacity()) {
      return std::nullopt;
    }
    // Deterministic victim: smallest count, ties broken toward the larger key
    // (key ids are popularity ranks by default, so ties evict the colder-looking
    // id regardless of hash-map iteration order).
    uint64_t victim_key = 0;
    uint32_t victim_count = std::numeric_limits<uint32_t>::max();
    bool have = false;
    for (const auto& [k, line] : lines_) {
      if (!have || line.count < victim_count ||
          (line.count == victim_count && k > victim_key)) {
        have = true;
        victim_key = k;
        victim_count = line.count;
      }
    }
    const bool victim_dirty = lines_.at(victim_key).dirty;
    lines_.erase(victim_key);
    return EvictedLine{victim_key, victim_dirty};
  }

  MarkResult MarkDirty(uint64_t key) override {
    auto it = lines_.find(key);
    if (it == lines_.end()) {
      return MarkResult::kAbsent;
    }
    const MarkResult r =
        it->second.dirty ? MarkResult::kWasDirty : MarkResult::kWasClean;
    it->second.dirty = true;
    return r;
  }

  std::optional<EvictedLine> Erase(uint64_t key) override {
    auto it = lines_.find(key);
    if (it == lines_.end()) {
      return std::nullopt;
    }
    const EvictedLine line{key, it->second.dirty};
    lines_.erase(it);
    return line;
  }

  void ForEach(const std::function<void(uint64_t, bool)>& fn) const override {
    for (const auto& [key, line] : lines_) {
      fn(key, line.dirty);
    }
  }
  void Clear() override { lines_.clear(); }  // history survives the wipe
  size_t size() const override { return lines_.size(); }

 private:
  struct Line {
    uint32_t count = 0;
    bool dirty = false;
  };
  std::unordered_map<uint64_t, Line> lines_;
  CountMinSketch history_;
};

// ---- Segmented LRU ---------------------------------------------------------

class SegmentedNodeCache : public NodeCache {
 public:
  explicit SegmentedNodeCache(size_t capacity)
      : NodeCache(capacity),
        protected_(capacity / 2),
        probation_(capacity - capacity / 2) {}

  bool Lookup(uint64_t key, std::optional<EvictedLine>& evicted) override {
    if (protected_.Get(key) != nullptr) {
      return true;
    }
    const uint8_t* bit = probation_.Peek(key);
    if (bit == nullptr) {
      return false;
    }
    if (protected_.capacity() == 0) {
      probation_.Get(key);  // degenerate shape (capacity 1): stay, just touch
      return true;
    }
    // Second hit promotes probation → protected; the displaced protected line
    // demotes to probation MRU, which can overflow probation and push its LRU
    // line out of the node (the lookup-eviction the interface documents).
    const uint8_t dirty = *bit;
    probation_.Erase(key);
    auto demoted = protected_.Put(key, dirty);
    if (demoted) {
      auto out = probation_.Put(demoted->first, demoted->second);
      if (out) {
        evicted = EvictedLine{out->first, out->second != 0};
      }
    }
    return true;
  }
  bool Contains(uint64_t key) const override {
    return protected_.Contains(key) || probation_.Contains(key);
  }

  std::optional<EvictedLine> Admit(uint64_t key, bool dirty) override {
    // New lines start on probation (scan resistance: one-touch keys never
    // displace the protected working set).
    auto out = probation_.Put(key, dirty ? uint8_t{1} : uint8_t{0});
    if (!out) {
      return std::nullopt;
    }
    return EvictedLine{out->first, out->second != 0};
  }

  MarkResult MarkDirty(uint64_t key) override {
    uint8_t* bit = protected_.PeekMutable(key);
    if (bit == nullptr) {
      bit = probation_.PeekMutable(key);
    }
    if (bit == nullptr) {
      return MarkResult::kAbsent;
    }
    const MarkResult r = *bit != 0 ? MarkResult::kWasDirty : MarkResult::kWasClean;
    *bit = 1;
    return r;
  }

  std::optional<EvictedLine> Erase(uint64_t key) override {
    for (LruMap<uint64_t, uint8_t>* seg : {&protected_, &probation_}) {
      const uint8_t* bit = seg->Peek(key);
      if (bit != nullptr) {
        const EvictedLine line{key, *bit != 0};
        seg->Erase(key);
        return line;
      }
    }
    return std::nullopt;
  }

  void ForEach(const std::function<void(uint64_t, bool)>& fn) const override {
    for (const LruMap<uint64_t, uint8_t>* seg : {&protected_, &probation_}) {
      for (const auto& [key, dirty] : seg->entries()) {
        fn(key, dirty != 0);
      }
    }
  }
  void Clear() override {
    for (LruMap<uint64_t, uint8_t>* seg : {&protected_, &probation_}) {
      while (const auto* oldest = seg->Oldest()) {
        seg->Erase(oldest->first);
      }
    }
  }
  size_t size() const override { return protected_.size() + probation_.size(); }

 private:
  LruMap<uint64_t, uint8_t> protected_;
  LruMap<uint64_t, uint8_t> probation_;
};

}  // namespace

CountMinSketch::Config LfuHistorySketchConfig(uint64_t seed) {
  // Much smaller than the §5 data-plane sketch: one per cache node, tracking
  // only enough history to rank re-admission candidates. 8-bit saturation keeps
  // seeded counts bounded so one ancient burst cannot pin a line forever.
  CountMinSketch::Config config;
  config.rows = 2;
  config.width = 2048;
  config.counter_max = 255;
  config.seed = seed;
  return config;
}

std::unique_ptr<NodeCache> MakeNodeCache(CachePolicyKind kind, size_t capacity,
                                         uint64_t seed) {
  switch (kind) {
    case CachePolicyKind::kLru:
      return std::make_unique<LruNodeCache>(capacity);
    case CachePolicyKind::kLfu:
      return std::make_unique<LfuNodeCache>(capacity, seed);
    case CachePolicyKind::kFifo:
      return std::make_unique<FifoNodeCache>(capacity);
    case CachePolicyKind::kSegmented:
      return std::make_unique<SegmentedNodeCache>(capacity);
    case CachePolicyKind::kDistCache:
    case CachePolicyKind::kStaticTopK:
      break;
  }
  assert(false && "MakeNodeCache: static policies have no per-node cache");
  return nullptr;
}

// ---- CachePolicyRuntime ----------------------------------------------------

CachePolicyRuntime::CachePolicyRuntime(const CachePolicyConfig& config,
                                       const CacheAllocation* allocation,
                                       const Placement* placement,
                                       const std::vector<uint8_t>* spine_alive)
    : config_(config),
      allocation_(allocation),
      placement_(placement),
      spine_alive_(spine_alive),
      leaf_layer_(allocation->num_layers() - 1) {
  const std::vector<LayerSpec>& layers = allocation->config().layers;
  caches_.resize(layers.size());
  for (size_t l = 0; l < layers.size(); ++l) {
    caches_[l].reserve(layers[l].nodes);
    for (uint32_t n = 0; n < layers[l].nodes; ++n) {
      // Per-node seed: deterministic, distinct across the grid.
      const uint64_t node_seed =
          HashCombine(config.seed, (static_cast<uint64_t>(l) << 32) | n);
      caches_[l].push_back(
          MakeNodeCache(config.policy, layers[l].cache_objects, node_seed));
    }
  }
}

CachePolicyRuntime::ReadProbe CachePolicyRuntime::Probe(uint64_t key) const {
  for (size_t l = 0; l < caches_.size(); ++l) {
    const CacheNodeId node = CandidateOf(l, key);
    if (!NodeAlive(node)) {
      continue;
    }
    if (caches_[l][node.index]->Contains(key)) {
      return {true, node};
    }
  }
  return {};
}

size_t CachePolicyRuntime::TopEligibleLayer(uint64_t key) const {
  for (size_t l = 0; l < caches_.size(); ++l) {
    const CacheNodeId node = CandidateOf(l, key);
    if (NodeAlive(node) && caches_[l][node.index]->capacity() > 0) {
      return l;
    }
  }
  return caches_.size();
}

void CachePolicyRuntime::HandleInclusiveEviction(size_t layer,
                                                 const EvictedLine& victim,
                                                 std::vector<uint32_t>& wb) {
  ++counters_.evictions;
  // Collect the victim's dirty token plus those of its (now invalid) upper
  // copies — inclusive: a line evicted from layer l cannot stay above l.
  uint32_t tokens = victim.dirty ? 1 : 0;
  for (size_t j = layer; j-- > 0;) {
    const CacheNodeId upper = CandidateOf(j, victim.key);
    auto line = caches_[j][upper.index]->Erase(victim.key);
    if (line) {
      ++counters_.invalidations;
      tokens += line->dirty ? 1 : 0;
    }
  }
  if (tokens == 0) {
    return;
  }
  // The dirty token moves to the copy below (the invariant guarantees one while
  // the chain is intact); duplicates merge. Fell out of the leaf → write back.
  if (layer < leaf_layer_) {
    const CacheNodeId lower = CandidateOf(layer + 1, victim.key);
    switch (caches_[layer + 1][lower.index]->MarkDirty(victim.key)) {
      case NodeCache::MarkResult::kWasClean:
        counters_.dirty_merged += tokens - 1;
        return;
      case NodeCache::MarkResult::kWasDirty:
        counters_.dirty_merged += tokens;
        return;
      case NodeCache::MarkResult::kAbsent:
        break;  // chain broken (e.g. frequency-filtered admission): write back
    }
  }
  ++counters_.writebacks;
  counters_.dirty_merged += tokens - 1;
  wb.push_back(placement_->ServerOf(victim.key));
}

void CachePolicyRuntime::CascadeDemote(size_t layer, EvictedLine line,
                                       std::vector<uint32_t>& wb) {
  for (size_t l = layer; l <= leaf_layer_; ++l) {
    const CacheNodeId node = CandidateOf(l, line.key);
    NodeCache& cache = *caches_[l][node.index];
    if (!NodeAlive(node) || cache.capacity() == 0) {
      continue;
    }
    if (cache.Contains(line.key)) {
      // Not reachable from a pure exclusive history; merge rather than
      // double-insert if state ever degrades (e.g. after a failure wipe).
      if (line.dirty && cache.MarkDirty(line.key) == NodeCache::MarkResult::kWasDirty) {
        ++counters_.dirty_merged;
      }
      return;
    }
    auto victim = cache.Admit(line.key, line.dirty);
    ++counters_.admissions;
    ++counters_.demotions;
    if (!victim) {
      return;
    }
    ++counters_.evictions;
    line = *victim;  // keep walking down with the next victim
  }
  // Fell off the bottom of the hierarchy.
  if (line.dirty) {
    ++counters_.writebacks;
    wb.push_back(placement_->ServerOf(line.key));
  }
}

void CachePolicyRuntime::AdmitExclusiveAt(size_t layer, uint64_t key, bool dirty,
                                          std::vector<uint32_t>& wb) {
  const CacheNodeId node = CandidateOf(layer, key);
  auto victim = caches_[layer][node.index]->Admit(key, dirty);
  ++counters_.admissions;
  if (victim) {
    ++counters_.evictions;
    CascadeDemote(layer + 1, *victim, wb);
  }
}

void CachePolicyRuntime::HandleLookupEviction(size_t layer,
                                              const EvictedLine& victim,
                                              std::vector<uint32_t>& wb) {
  if (config_.hierarchy == HierarchyMode::kInclusive) {
    HandleInclusiveEviction(layer, victim, wb);
  } else {
    ++counters_.evictions;
    CascadeDemote(layer + 1, victim, wb);
  }
}

void CachePolicyRuntime::FillUpward(size_t holder, uint64_t key,
                                    std::vector<uint32_t>& wb) {
  for (size_t l = holder; l-- > 0;) {
    const CacheNodeId node = CandidateOf(l, key);
    NodeCache& cache = *caches_[l][node.index];
    if (!NodeAlive(node) || cache.capacity() == 0) {
      break;  // the chain must stay contiguous: stop filling above a gap
    }
    if (!cache.Contains(key)) {
      auto victim = cache.Admit(key, false);
      ++counters_.admissions;
      if (victim) {
        HandleInclusiveEviction(l, *victim, wb);
      }
      if (!cache.Contains(key)) {
        break;  // frequency admission filter rejected the fill: chain ends here
      }
    }
  }
}

void CachePolicyRuntime::CommitHit(uint64_t key, CacheNodeId node,
                                   std::vector<uint32_t>& wb) {
  std::optional<EvictedLine> evicted;
  CacheAt(node).Lookup(key, evicted);  // replacement-state touch
  if (evicted) {
    HandleLookupEviction(node.layer, *evicted, wb);
  }
  if (config_.hierarchy == HierarchyMode::kInclusive) {
    // The classic inclusive fill: a hit below the top installs the line in the
    // upper layers too (also how a failure-wiped spine warms back up).
    FillUpward(node.layer, key, wb);
    return;
  }
  // Exclusive: promote a below-top hit to the top, demoting the displaced line.
  const size_t top = TopEligibleLayer(key);
  if (top < node.layer) {
    auto line = CacheAt(node).Erase(key);
    AdmitExclusiveAt(top, key, line && line->dirty, wb);
  }
}

void CachePolicyRuntime::CommitMiss(uint64_t key, std::vector<uint32_t>& wb) {
  if (config_.hierarchy == HierarchyMode::kExclusive) {
    const size_t top = TopEligibleLayer(key);
    if (top < caches_.size()) {
      AdmitExclusiveAt(top, key, false, wb);
    }
    return;
  }
  // Inclusive: the leaf admits first, then the line fills upward while the
  // chain holds (upper ⊆ lower at every intermediate state).
  const CacheNodeId leaf = CandidateOf(leaf_layer_, key);
  NodeCache& cache = *caches_[leaf_layer_][leaf.index];
  if (cache.capacity() == 0) {
    return;
  }
  auto victim = cache.Admit(key, false);
  ++counters_.admissions;
  if (victim) {
    HandleInclusiveEviction(leaf_layer_, *victim, wb);
  }
  if (cache.Contains(key)) {
    FillUpward(leaf_layer_, key, wb);
  }
}

void CachePolicyRuntime::WriteThrough(uint64_t key,
                                      std::vector<CacheNodeId>& copies,
                                      std::vector<uint32_t>& wb) {
  for (size_t l = 0; l < caches_.size(); ++l) {
    const CacheNodeId node = CandidateOf(l, key);
    if (!NodeAlive(node)) {
      continue;
    }
    NodeCache& cache = *caches_[l][node.index];
    if (!cache.Contains(key)) {
      continue;
    }
    std::optional<EvictedLine> evicted;
    cache.Lookup(key, evicted);  // the in-place update counts as a use
    copies.push_back(node);
    if (evicted) {
      HandleLookupEviction(l, *evicted, wb);
    }
  }
}

std::optional<CacheNodeId> CachePolicyRuntime::WriteBack(
    uint64_t key, std::vector<uint32_t>& wb) {
  for (size_t l = 0; l < caches_.size(); ++l) {
    const CacheNodeId node = CandidateOf(l, key);
    if (!NodeAlive(node)) {
      continue;
    }
    NodeCache& cache = *caches_[l][node.index];
    if (!cache.Contains(key)) {
      continue;
    }
    std::optional<EvictedLine> evicted;
    cache.Lookup(key, evicted);
    if (cache.MarkDirty(key) == NodeCache::MarkResult::kWasClean) {
      ++counters_.dirty_created;
    }
    if (evicted) {
      HandleLookupEviction(l, *evicted, wb);
    }
    return node;
  }
  return std::nullopt;
}

void CachePolicyRuntime::InvalidateNode(CacheNodeId node) {
  NodeCache& cache = CacheAt(node);
  cache.ForEach([&](uint64_t, bool dirty) {
    if (dirty) {
      ++counters_.dirty_lost;  // the failed switch takes its dirty lines with it
    }
  });
  cache.Clear();
}

size_t CachePolicyRuntime::ResidentDirtyLines() const {
  size_t dirty = 0;
  for (const auto& layer : caches_) {
    for (const auto& cache : layer) {
      cache->ForEach([&](uint64_t, bool d) { dirty += d ? 1 : 0; });
    }
  }
  return dirty;
}

}  // namespace distcache
