#include "core/coherence.h"

#include <utility>

namespace distcache {

size_t TwoPhaseCoherence::Walk(uint64_t key, const std::vector<CacheNodeId>& copies,
                               bool phase1, const std::string& value) {
  size_t touched = 0;
  for (const CacheNodeId& node : copies) {
    CacheSwitch* sw = nullptr;
    for (size_t attempt = 0; attempt <= config_.max_retries; ++attempt) {
      sw = resolver_(node);
      if (sw != nullptr) {
        break;
      }
      ++stats_.retries;  // paper: the server resends the packet after a timeout
    }
    if (sw == nullptr) {
      ++stats_.unreachable_copies;
      continue;
    }
    if (phase1) {
      sw->Invalidate(key).ok();
      sw->AddTelemetryLoad(1);  // invalidation consumes switch capacity
      ++stats_.invalidations_sent;
    } else {
      sw->UpdateValue(key, value).ok();
      sw->AddTelemetryLoad(1);
      ++stats_.updates_sent;
    }
    ++touched;
  }
  return touched;
}

Status TwoPhaseCoherence::Write(uint64_t key, std::string value, StorageServer* server,
                                const std::vector<CacheNodeId>& copies) {
  ++stats_.writes;
  if (copies.empty()) {
    return server->Put(key, std::move(value));
  }
  ++stats_.cached_writes;

  // Phase 1: invalidate every cached copy. Readers racing with this observe either
  // the old valid value (serialized before) or an invalid entry that falls through to
  // the server — never a mix of old and new cache values.
  Walk(key, copies, /*phase1=*/true, value);

  // Primary update + client acknowledgment point. The coherence work is charged to
  // the server's capacity (one unit per copy: invalidate + update round trips).
  Status st = server->Put(key, value, copies.size());
  if (!st.ok()) {
    return st;
  }

  // Phase 2: write the new value and re-validate the copies.
  Walk(key, copies, /*phase1=*/false, value);
  return Status::Ok();
}

Status TwoPhaseCoherence::Populate(uint64_t key, StorageServer* server, CacheNodeId copy) {
  auto value = server->Get(key);
  if (!value.ok()) {
    return value.status();
  }
  CacheSwitch* sw = resolver_(copy);
  if (sw == nullptr) {
    ++stats_.unreachable_copies;
    return Status::Unavailable("cache switch unreachable");
  }
  ++stats_.updates_sent;
  sw->AddTelemetryLoad(1);
  return sw->UpdateValue(key, std::move(value).value());
}

}  // namespace distcache
