// Consistent hashing ring with virtual nodes (Karger et al. [24], Dabek et al. [25]).
// Used by the controller's failure handling (§4.4): the partitions of a failed cache
// switch are spread across the remaining switches instead of dogpiling one.
#ifndef DISTCACHE_CORE_CONSISTENT_HASH_H_
#define DISTCACHE_CORE_CONSISTENT_HASH_H_

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_set>

#include "common/hash.h"

namespace distcache {

class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(uint32_t virtual_nodes = 64, uint64_t seed = 0xc0a51f)
      : virtual_nodes_(virtual_nodes), seed_(seed) {}

  void AddNode(uint32_t node) {
    if (!members_.insert(node).second) {
      return;
    }
    for (uint32_t v = 0; v < virtual_nodes_; ++v) {
      ring_.emplace(PointFor(node, v), node);
    }
  }

  void RemoveNode(uint32_t node) {
    if (members_.erase(node) == 0) {
      return;
    }
    for (uint32_t v = 0; v < virtual_nodes_; ++v) {
      auto range = ring_.equal_range(PointFor(node, v));
      for (auto it = range.first; it != range.second;) {
        it = it->second == node ? ring_.erase(it) : std::next(it);
      }
    }
  }

  bool Contains(uint32_t node) const { return members_.contains(node); }
  size_t size() const { return members_.size(); }

  // Owner of `key`: the first ring point clockwise from hash(key).
  std::optional<uint32_t> NodeFor(uint64_t key) const {
    if (ring_.empty()) {
      return std::nullopt;
    }
    auto it = ring_.lower_bound(Mix64(key ^ seed_));
    if (it == ring_.end()) {
      it = ring_.begin();
    }
    return it->second;
  }

 private:
  uint64_t PointFor(uint32_t node, uint32_t vnode) const {
    return Mix64(HashCombine(seed_, (uint64_t{node} << 32) | vnode));
  }

  uint32_t virtual_nodes_;
  uint64_t seed_;
  std::map<uint64_t, uint32_t> ring_;
  std::unordered_set<uint32_t> members_;
};

}  // namespace distcache

#endif  // DISTCACHE_CORE_CONSISTENT_HASH_H_
