// The four mechanisms compared in the paper's evaluation (§6.1).
#ifndef DISTCACHE_CORE_MECHANISM_H_
#define DISTCACHE_CORE_MECHANISM_H_

#include <string>

namespace distcache {

enum class Mechanism {
  // No caching anywhere; every query goes to the primary storage server.
  kNoCache,
  // "Performs the same as only using NetCache for each rack (i.e., only caching in
  // the ToR switches)" (§6.1): each storage rack's leaf switch caches the hottest
  // objects of its own rack; there is no spine-layer cache.
  kCachePartition,
  // Leaf caching per rack plus the globally hottest objects replicated in *every*
  // spine switch; reads spread uniformly over the spine replicas; writes to a cached
  // object must update all replicas via the two-phase protocol (§2.2).
  kCacheReplication,
  // The paper's contribution: leaf caching per rack (hash h1 = storage placement) and
  // a spine-layer partition by the independent hash h0, with power-of-two-choices
  // query routing between the two copies (§3).
  kDistCache,
};

inline std::string MechanismName(Mechanism m) {
  switch (m) {
    case Mechanism::kNoCache:
      return "NoCache";
    case Mechanism::kCachePartition:
      return "CachePartition";
    case Mechanism::kCacheReplication:
      return "CacheReplication";
    case Mechanism::kDistCache:
      return "DistCache";
  }
  return "?";
}

}  // namespace distcache

#endif  // DISTCACHE_CORE_MECHANISM_H_
