// Cache controller (§4.1, §4.4).
//
// The controller computes cache partitions and pushes them to switch agents. It is off
// the query path entirely; it acts only on reconfiguration — adding racks/switches and
// handling failures. On a spine-switch failure it remaps the failed switch's h0
// partition onto the remaining alive switches with consistent hashing + virtual nodes
// so the displaced hot objects stay cached and the extra load spreads out.
#ifndef DISTCACHE_CORE_CONTROLLER_H_
#define DISTCACHE_CORE_CONTROLLER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/allocation.h"
#include "core/consistent_hash.h"

namespace distcache {

class CacheController {
 public:
  // Called whenever the partition→switch mapping changes; carries, for each h0
  // partition p, the alive spine switch now hosting it.
  using RemapListener = std::function<void(const std::vector<uint32_t>&)>;

  CacheController(CacheAllocation* allocation, uint32_t num_spine);

  // Marks `spine` failed and remaps its partition(s). No-op if already failed or if
  // it is the last alive spine (nothing to remap onto).
  void OnSpineFailure(uint32_t spine);

  // Brings `spine` back; its own partition returns home and it becomes eligible to
  // host other failed switches' partitions again.
  void OnSpineRecovery(uint32_t spine);

  // Online cache re-allocation (§6.4 hot-spot shift): replaces the cached set with
  // the hottest-first key list the controller observed (heavy-hitter reports
  // aggregated from the switches), then re-applies the partition→spine remap
  // currently in effect so re-allocation composes with failure handling. The new
  // allocation must be pushed to clients afterwards (route-table rebuild +
  // multicast, see sim/sharded_backend.h).
  void ReallocateCache(const std::vector<uint64_t>& hottest_first,
                       const Placement& placement);

  bool IsAlive(uint32_t spine) const { return alive_[spine]; }
  uint32_t num_alive() const { return num_alive_; }
  const std::vector<uint32_t>& spine_of_partition() const { return spine_of_partition_; }

  void set_remap_listener(RemapListener listener) { listener_ = std::move(listener); }

 private:
  void Recompute();

  CacheAllocation* allocation_;
  uint32_t num_spine_;
  uint32_t num_alive_;
  std::vector<bool> alive_;
  std::vector<uint32_t> spine_of_partition_;
  ConsistentHashRing ring_;
  RemapListener listener_;
};

}  // namespace distcache

#endif  // DISTCACHE_CORE_CONTROLLER_H_
