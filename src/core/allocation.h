// Cache allocation (§3.1): which hot objects are cached at which cache nodes.
//
// The controller computes, per mechanism:
//   * leaf layer (group B): each storage rack's ToR caches the hottest objects whose
//     primary copies live in that rack (hash h1 ≡ the storage placement hash);
//   * spine layer (group A):
//       - DistCache:        partition of the object space by the independent hash h0;
//                           spine s caches the hottest objects with h0(key) % m == s;
//       - CacheReplication: every spine caches the same globally hottest objects;
//       - CachePartition / NoCache: no spine caching.
//
// Capacities are expressed in objects per switch (the paper populates 100 per switch).
// By default keys are popularity ranks (0 = hottest), so "hottest of a partition" is
// simply the smallest-rank members of the partition within the candidate pool. When
// the workload's hot set moves (§6.4 hot-spot shift), the controller re-allocates via
// Refill() with an explicit hottest-first key list; rank order is then the list order
// and lookups go through a key→rank index.
#ifndef DISTCACHE_CORE_ALLOCATION_H_
#define DISTCACHE_CORE_ALLOCATION_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "core/mechanism.h"
#include "kv/placement.h"

namespace distcache {

struct AllocationConfig {
  Mechanism mechanism = Mechanism::kDistCache;
  uint32_t num_spine = 32;
  uint32_t num_racks = 32;
  // Objects cached per switch. Total cache size = per_switch_objects × (#spine+#leaf)
  // for DistCache (paper: 100 × 64 = 6400).
  uint32_t per_switch_objects = 100;
  // How many of the hottest keys are considered for caching. Must comfortably exceed
  // the per-partition demand; 8× the total budget is ample because partitions are
  // hash-balanced.
  uint32_t candidate_pool = 0;  // 0 = auto
  uint64_t hash_seed = 0xd15ca4e;
};

// Where one key is cached.
struct CacheCopies {
  std::optional<uint32_t> spine;    // spine switch index, if spine-cached
  std::optional<uint32_t> leaf;     // storage rack index, if leaf-cached
  bool replicated_all_spines = false;  // CacheReplication: cached in every spine

  bool cached() const { return spine.has_value() || leaf.has_value() || replicated_all_spines; }
  // Number of cached copies that the coherence protocol must update on a write.
  size_t NumCopies(uint32_t num_spine) const {
    size_t n = leaf.has_value() ? 1 : 0;
    if (replicated_all_spines) {
      n += num_spine;
    } else if (spine.has_value()) {
      n += 1;
    }
    return n;
  }
};

class CacheAllocation {
 public:
  // Computes the allocation for keys [0, candidate_pool) given the storage placement.
  // `placement` determines each key's rack (h1); h0 is drawn from `hash_seed`.
  CacheAllocation(const AllocationConfig& config, const Placement& placement);

  // Copies of `key` (empty copies if the key is not cached).
  CacheCopies CopiesOf(uint64_t key) const;

  // Spine partition of a key under h0 (defined for every key, cached or not).
  uint32_t SpinePartitionOf(uint64_t key) const {
    return static_cast<uint32_t>(h0_(key) % config_.num_spine);
  }

  // Contents per switch.
  const std::vector<std::vector<uint64_t>>& spine_contents() const { return spine_contents_; }
  const std::vector<std::vector<uint64_t>>& leaf_contents() const { return leaf_contents_; }

  // Total number of distinct cached keys.
  size_t num_cached_keys() const { return num_cached_; }
  uint64_t candidate_pool() const { return pool_; }
  const AllocationConfig& config() const { return config_; }

  // Re-runs allocation with some spine switches marked failed: their partitions are
  // remapped onto alive spines via the provided remap (switch index → alive index).
  // Used by the controller's failure handling (§4.4); see CacheController.
  void RemapSpine(const std::vector<uint32_t>& spine_of_partition);

  // Re-allocates the cache onto a new hot set: `hottest_first[i]` is the key the
  // controller now believes has popularity rank i (e.g. observed heavy-hitter
  // counts after a hot-spot shift). Budgets are refilled hottest-first exactly like
  // the constructor; the partition→spine remap in effect (spine_of_partition) is
  // preserved, so re-allocation composes with failure handling. Lists shorter than
  // the candidate pool simply leave the remaining budget demand unfilled; entries
  // beyond the pool are ignored. Afterwards CopiesOf() answers by key id through
  // the key→rank index.
  void Refill(const std::vector<uint64_t>& hottest_first, const Placement& placement);

  // The key id holding popularity rank `rank` in the current allocation
  // (identity unless Refill installed an explicit hot list; with a list, ranks
  // beyond it have no key and map back to themselves).
  uint64_t KeyOfRank(uint64_t rank) const {
    return !explicit_hot_list_ || rank >= key_of_rank_.size() ? rank
                                                              : key_of_rank_[rank];
  }

 private:
  void Compute(const Placement& placement);

  // Rank of `key` in the current hot-set ordering, or pool_ when unranked (tail).
  uint64_t RankOf(uint64_t key) const {
    if (!explicit_hot_list_) {
      return key;  // identity: ranks are key ids
    }
    const auto it = rank_of_key_.find(key);
    return it == rank_of_key_.end() ? pool_ : it->second;
  }

  AllocationConfig config_;
  TabulationHash h0_;
  uint64_t pool_ = 0;
  size_t num_cached_ = 0;
  // Current hot-set ordering: key_of_rank_[r] is the key with popularity rank r.
  // Until Refill() installs an explicit list (plus the inverse index below) the
  // mapping is the identity (keys are ranks — the construction default). The
  // flag, not emptiness, is the discriminator: an *empty observed list* is a
  // legitimate refill that caches nothing, not a revert to identity.
  bool explicit_hot_list_ = false;
  std::vector<uint64_t> key_of_rank_;
  std::unordered_map<uint64_t, uint64_t> rank_of_key_;
  // Dense per-rank copy info for ranks < pool_.
  std::vector<uint8_t> leaf_cached_;   // bool per rank
  std::vector<uint8_t> spine_cached_;  // bool per rank
  std::vector<uint32_t> leaf_of_;      // rack per rank (from placement of the key)
  std::vector<uint32_t> spine_of_;     // spine switch per rank (h0 partition, post-remap)
  // Per-h0-partition cached keys; spine_contents_ derives from these through
  // spine_of_partition_ so that failure remaps are cheap and lossless.
  std::vector<std::vector<uint64_t>> partition_contents_;
  std::vector<uint32_t> spine_of_partition_;
  std::vector<std::vector<uint64_t>> spine_contents_;
  std::vector<std::vector<uint64_t>> leaf_contents_;
};

}  // namespace distcache

#endif  // DISTCACHE_CORE_ALLOCATION_H_
