// Cache allocation (§3.1): which hot objects are cached at which cache nodes.
//
// The hierarchy is a vector of cache layers, top first:
//   * layers 0..L-2 ("upper" layers, group A): each partitions the object space by
//     its own independent hash h_l; node p of layer l caches the hottest objects
//     with h_l(key) % nodes == p. The paper's spine layer is layer 0; §3.1's
//     recursive multi-layer extension simply adds more such layers, each with an
//     independent hash.
//   * layer L-1 (the "leaf" layer, group B): bound to the storage racks — each
//     rack's ToR caches the hottest objects whose primary copies live in that rack
//     (hash h1 ≡ the storage placement hash). Its node count must equal the
//     placement's rack count.
//
// Mechanisms other than DistCache keep their two-layer semantics at any depth:
//   - CacheReplication: every layer-0 node caches the same globally hottest
//     objects (intermediate upper layers stay empty);
//   - CachePartition: leaf caching only;
//   - NoCache: nothing cached.
//
// Capacities are per-node objects per layer (the paper populates 100 per switch).
// By default keys are popularity ranks (0 = hottest), so "hottest of a partition"
// is simply the smallest-rank members of the partition within the candidate pool.
// When the workload's hot set moves (§6.4 hot-spot shift), the controller
// re-allocates via Refill() with an explicit hottest-first key list; rank order is
// then the list order and lookups go through a key→rank index.
#ifndef DISTCACHE_CORE_ALLOCATION_H_
#define DISTCACHE_CORE_ALLOCATION_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "core/mechanism.h"
#include "kv/placement.h"
#include "net/topology.h"

namespace distcache {

// One cache layer of the hierarchy (depth capped at kMaxCacheLayers, see
// net/topology.h).
struct LayerSpec {
  uint32_t nodes = 32;          // cache nodes (switches) in this layer
  uint32_t cache_objects = 100; // objects cached per node
};

struct AllocationConfig {
  Mechanism mechanism = Mechanism::kDistCache;
  // Cache layers, top first; layers.back() is the rack-bound leaf layer and must
  // have nodes == placement.num_racks(). Size in [2, kMaxCacheLayers].
  std::vector<LayerSpec> layers{{32, 100}, {32, 100}};
  // How many of the hottest keys are considered for caching. Must comfortably
  // exceed the per-partition demand; 8× the total budget is ample because
  // partitions are hash-balanced.
  uint64_t candidate_pool = 0;  // 0 = auto
  uint64_t hash_seed = 0xd15ca4e;

  // The historical two-layer shape (spine + leaf, uniform per-switch budget).
  static AllocationConfig TwoLayer(Mechanism mechanism, uint32_t num_spine,
                                   uint32_t num_racks, uint32_t per_switch_objects,
                                   uint64_t hash_seed = 0xd15ca4e) {
    AllocationConfig config;
    config.mechanism = mechanism;
    config.layers = {{num_spine, per_switch_objects}, {num_racks, per_switch_objects}};
    config.hash_seed = hash_seed;
    return config;
  }
};

// Where one key is cached: at most one node per layer, in ascending layer order.
struct CacheCopies {
  uint8_t num = 0;
  uint8_t leaf_layer = 1;              // index of the rack-bound layer
  bool replicated_all_spines = false;  // CacheReplication: cached in every layer-0 node
  std::array<CacheNodeId, kMaxCacheLayers> nodes{};

  bool cached() const { return num > 0 || replicated_all_spines; }

  // Convenience views for the two-layer call sites.
  std::optional<uint32_t> spine() const {
    return num > 0 && nodes[0].layer == 0 ? std::optional<uint32_t>(nodes[0].index)
                                          : std::nullopt;
  }
  std::optional<uint32_t> leaf() const {
    for (uint8_t i = num; i-- > 0;) {
      if (nodes[i].layer == leaf_layer) {
        return nodes[i].index;
      }
    }
    return std::nullopt;
  }

  // Number of cached copies that the coherence protocol must update on a write.
  size_t NumCopies(uint32_t num_spine) const {
    return static_cast<size_t>(num) + (replicated_all_spines ? num_spine : 0);
  }
};

class CacheAllocation {
 public:
  // Computes the allocation for keys [0, candidate_pool) given the storage
  // placement. `placement` determines each key's rack (the leaf layer); upper-layer
  // hashes h_0..h_{L-2} are drawn independently from `hash_seed`.
  CacheAllocation(const AllocationConfig& config, const Placement& placement);

  // Copies of `key` (empty copies if the key is not cached).
  CacheCopies CopiesOf(uint64_t key) const;

  // Partition of a key in upper layer `layer` under h_layer (defined for every
  // key, cached or not).
  uint32_t PartitionOf(size_t layer, uint64_t key) const {
    return static_cast<uint32_t>(hash_[layer](key) % config_.layers[layer].nodes);
  }
  // Historical name for the top layer's partition.
  uint32_t SpinePartitionOf(uint64_t key) const { return PartitionOf(0, key); }

  // Contents per node of one layer (post-remap for upper layers).
  const std::vector<std::vector<uint64_t>>& layer_contents(size_t layer) const {
    return layer_contents_[layer];
  }
  const std::vector<std::vector<uint64_t>>& spine_contents() const {
    return layer_contents_.front();
  }
  const std::vector<std::vector<uint64_t>>& leaf_contents() const {
    return layer_contents_.back();
  }

  size_t num_layers() const { return config_.layers.size(); }
  size_t leaf_layer() const { return config_.layers.size() - 1; }

  // Total number of distinct cached keys.
  size_t num_cached_keys() const { return num_cached_; }
  // One past the largest rank holding any cached copy (0 when nothing is
  // cached). Ranks at or beyond this resolve to an uncached CacheCopies, which
  // is what lets the compact route-table build (sim/route_table.h) truncate
  // its entry array here instead of materializing the full candidate pool.
  uint64_t CachedRankEnd() const;
  // Exact number of packed candidates the route-table build spills into
  // RouteTable::overflow (keys with more than two cached copies contribute all
  // their copies). Lets the build reserve exactly instead of growth-doubling.
  size_t OverflowCandidates() const;
  uint64_t candidate_pool() const { return pool_; }
  const AllocationConfig& config() const { return config_; }

  // Re-runs allocation for upper layer `layer` with some nodes marked failed:
  // their partitions are remapped onto alive nodes via the provided map
  // (partition index → alive node index). Used by the controller's failure
  // handling (§4.4); see CacheController. The leaf layer cannot be remapped (a
  // rack's cache is bound to the rack).
  void RemapLayer(size_t layer, const std::vector<uint32_t>& node_of_partition);
  // Historical name: remap of the top layer.
  void RemapSpine(const std::vector<uint32_t>& spine_of_partition) {
    RemapLayer(0, spine_of_partition);
  }

  // Re-allocates the cache onto a new hot set: `hottest_first[i]` is the key the
  // controller now believes has popularity rank i (e.g. observed heavy-hitter
  // counts after a hot-spot shift). Budgets are refilled hottest-first exactly like
  // the constructor; the partition→node remaps in effect are preserved per layer,
  // so re-allocation composes with failure handling. Lists shorter than the
  // candidate pool simply leave the remaining budget demand unfilled; entries
  // beyond the pool are ignored. Afterwards CopiesOf() answers by key id through
  // the key→rank index.
  void Refill(const std::vector<uint64_t>& hottest_first, const Placement& placement);

  // The key id holding popularity rank `rank` in the current allocation
  // (identity unless Refill installed an explicit hot list; with a list, ranks
  // beyond it have no key and map back to themselves).
  uint64_t KeyOfRank(uint64_t rank) const {
    return !explicit_hot_list_ || rank >= key_of_rank_.size() ? rank
                                                              : key_of_rank_[rank];
  }

 private:
  void Compute(const Placement& placement);
  void DeriveLayerContents(size_t layer);

  // Rank of `key` in the current hot-set ordering, or pool_ when unranked (tail).
  uint64_t RankOf(uint64_t key) const {
    if (!explicit_hot_list_) {
      return key;  // identity: ranks are key ids
    }
    const auto it = rank_of_key_.find(key);
    return it == rank_of_key_.end() ? pool_ : it->second;
  }

  AllocationConfig config_;
  // Independent per-upper-layer hashes; hash_[0] keeps the historical h0 seed
  // derivation so two-layer allocations are bit-identical to the pre-hierarchy
  // code. The leaf layer has no hash (it follows the placement).
  std::vector<TabulationHash> hash_;
  uint64_t pool_ = 0;
  size_t num_cached_ = 0;
  // Current hot-set ordering: key_of_rank_[r] is the key with popularity rank r.
  // Until Refill() installs an explicit list (plus the inverse index below) the
  // mapping is the identity (keys are ranks — the construction default). The
  // flag, not emptiness, is the discriminator: an *empty observed list* is a
  // legitimate refill that caches nothing, not a revert to identity.
  bool explicit_hot_list_ = false;
  std::vector<uint64_t> key_of_rank_;
  std::unordered_map<uint64_t, uint64_t> rank_of_key_;
  // Dense per-layer, per-rank copy info for ranks < pool_: cached_[l][rank] and
  // node_of_[l][rank] (for upper layers the *partition*, pre-remap; for the leaf
  // layer the rack from the placement of the key).
  std::vector<std::vector<uint8_t>> cached_;
  std::vector<std::vector<uint32_t>> node_of_;
  // Per-upper-layer, per-partition cached keys; layer_contents_ derives from these
  // through node_of_partition_ so that failure remaps are cheap and lossless.
  // (Under CacheReplication, partition_contents_[0][0] holds the replicated set.)
  std::vector<std::vector<std::vector<uint64_t>>> partition_contents_;
  std::vector<std::vector<uint32_t>> node_of_partition_;
  std::vector<std::vector<std::vector<uint64_t>>> layer_contents_;
};

}  // namespace distcache

#endif  // DISTCACHE_CORE_ALLOCATION_H_
