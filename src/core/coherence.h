// Two-phase cache-coherence protocol (§4.3).
//
// A write to a cached object must update the primary copy at the storage server and
// every cached copy atomically with respect to readers:
//   phase 1 — an invalidation packet walks every switch caching the object and clears
//             the validity bits; lost packets are retried after a timeout;
//   (optimization) — once all copies are invalid, the server updates its primary copy
//             and acknowledges the client immediately, without waiting for phase 2;
//   phase 2 — an update packet walks the same switches writing the new value and
//             setting the validity bits.
//
// The same phase-2 path populates newly inserted (invalid-marked) cache entries,
// unifying cache insertion with coherence (§4.3).
#ifndef DISTCACHE_CORE_COHERENCE_H_
#define DISTCACHE_CORE_COHERENCE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cache/cache_switch.h"
#include "common/status.h"
#include "kv/storage_server.h"
#include "net/topology.h"

namespace distcache {

class TwoPhaseCoherence {
 public:
  // Maps a cache node id to its switch, or nullptr if the switch is unreachable
  // (failed) — the protocol retries and then skips copies that stay unreachable,
  // matching the availability choice of §4.4.
  using SwitchResolver = std::function<CacheSwitch*(CacheNodeId)>;

  struct Config {
    size_t max_retries = 3;
  };

  struct Stats {
    uint64_t writes = 0;
    uint64_t cached_writes = 0;        // writes that ran the two-phase protocol
    uint64_t invalidations_sent = 0;   // per-switch phase-1 touches
    uint64_t updates_sent = 0;         // per-switch phase-2 touches
    uint64_t retries = 0;
    uint64_t unreachable_copies = 0;
  };

  TwoPhaseCoherence(SwitchResolver resolver, const Config& config)
      : resolver_(std::move(resolver)), config_(config) {}

  // Executes the full write path for `key` with cached copies at `copies`. The client
  // acknowledgment point is after the primary update (the §4.3 optimization); this
  // function additionally completes phase 2 before returning, which is safe because
  // all copies are invalid in between and readers fall through to the server.
  Status Write(uint64_t key, std::string value, StorageServer* server,
               const std::vector<CacheNodeId>& copies);

  // Phase 2 only: pushes the server's current value into one switch. Used by the
  // agent's insert-invalid flow; the server serializes it with concurrent writes.
  Status Populate(uint64_t key, StorageServer* server, CacheNodeId copy);

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

 private:
  // One protocol round over all copies; `phase1` selects invalidate vs update.
  // Returns the number of copies successfully touched.
  size_t Walk(uint64_t key, const std::vector<CacheNodeId>& copies, bool phase1,
              const std::string& value);

  SwitchResolver resolver_;
  Config config_;
  Stats stats_;
};

}  // namespace distcache

#endif  // DISTCACHE_CORE_COHERENCE_H_
