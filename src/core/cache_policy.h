// Pluggable per-node cache semantics (the FlexiCAS-style policy layer).
//
// The engines historically hard-coded one idealized cache model: the controller
// statically allocates the hottest objects across layers (core/allocation) and a
// request hits iff its key is in that precomputed set. That is the paper's
// DistCache mechanism — but it makes the headline claim ("balanced allocation
// beats naive per-node caching") an assertion rather than a measurement. This
// module turns the per-node cache behavior into a policy axis with three
// independent knobs:
//
//   * CachePolicyKind — admission + replacement:
//       - kDistCache   : the static top-k allocation + PoT routing (default; the
//                        engines keep their historical hot path bit-for-bit);
//       - kStaticTopK  : the same static contents, but naive serial routing
//                        (first alive candidate, no power-of-two) — isolates the
//                        balanced-*routing* contribution from the contents;
//       - kLru / kLfu / kFifo / kSegmented : dynamic per-node caches that admit
//                        on demand and evict by recency / frequency / arrival
//                        order / segmented-LRU (SLRU). LFU keeps a CountMinSketch
//                        of missed keys per node, so re-admitted keys inherit
//                        their pre-eviction frequency estimate (the TinyLFU /
//                        NHC-style admission insight: a key only displaces a
//                        resident line if its history warrants the slot — the
//                        sketch can make Admit() reject its own key).
//   * HierarchyMode — how the dynamic policies compose across LayerSpec layers:
//       - kInclusive : a hit (or miss fill) installs the line at every layer from
//                      the leaf up; evicting a line from a lower layer
//                      back-invalidates the upper copies (upper ⊆ lower — the
//                      classic inclusive invariant);
//       - kExclusive : a line lives at exactly one layer; admission happens at
//                      the top, victims demote downward, and a hit below the top
//                      promotes the line back up (at most one copy per key).
//   * WritePolicy — what a write does to cached copies:
//       - kWriteThrough : every resident copy is updated in place (the engine
//                         charges the §4.3 coherence costs per copy, exactly like
//                         the static path);
//       - kWriteBack    : the topmost resident copy absorbs the write and is
//                         marked dirty; dirty lines are written back to the
//                         key's primary server when they leave the hierarchy.
//                         Dirty bits obey a conservation law the tests pin:
//                         created = written-back + merged + lost + resident.
//
// Layer-candidate geometry is shared with the static allocation: upper layer l
// uses the independent hash partition CacheAllocation::PartitionOf(l, key), the
// leaf layer is rack-bound via Placement::RackOf(key). Crucially the dynamic
// runtime reads only these *pure functions* — never the allocation's contents or
// the controller's failure remap, both of which the timeline plan walk mutates
// at construction time (see sim/engine_core.h). A dead top-layer node is simply
// skipped (its layer contributes a miss) and its cache is wiped on failure.
#ifndef DISTCACHE_CORE_CACHE_POLICY_H_
#define DISTCACHE_CORE_CACHE_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/allocation.h"
#include "core/mechanism.h"
#include "kv/placement.h"
#include "net/topology.h"
#include "sketch/count_min.h"

namespace distcache {

enum class CachePolicyKind : uint8_t {
  kDistCache,   // static balanced allocation + PoT routing (the paper's design)
  kStaticTopK,  // static allocation, serial first-alive-candidate routing
  kLru,
  kLfu,
  kFifo,
  kSegmented,   // segmented LRU (probation + protected)
};

enum class HierarchyMode : uint8_t { kInclusive, kExclusive };
enum class WritePolicy : uint8_t { kWriteThrough, kWriteBack };

// True for the policies that maintain per-node cache state at runtime (the
// static pair routes against the precomputed allocation instead).
constexpr bool PolicyIsDynamic(CachePolicyKind kind) {
  return kind != CachePolicyKind::kDistCache &&
         kind != CachePolicyKind::kStaticTopK;
}

const char* CachePolicyName(CachePolicyKind kind);
const char* HierarchyModeName(HierarchyMode mode);
const char* WritePolicyName(WritePolicy policy);

// Parse the CLI spellings ("distcache", "static-topk", "lru", "lfu", "fifo",
// "segmented" / "inclusive", "exclusive" / "write-through", "write-back").
// Return false (output untouched) on an unknown name.
bool ParseCachePolicy(const std::string& name, CachePolicyKind* out);
bool ParseHierarchyMode(const std::string& name, HierarchyMode* out);
bool ParseWritePolicy(const std::string& name, WritePolicy* out);

// Empty string when the combination is consistent, else a human-readable error:
// non-default policies are defined for the kDistCache mechanism only (they
// replace its allocation, not the replication/partition baselines), and the
// hierarchy/write knobs apply to the dynamic policies only (the static
// allocation models multi-layer copies and write-through coherence natively).
std::string ValidateCachePolicy(CachePolicyKind policy, HierarchyMode hierarchy,
                                WritePolicy write, Mechanism mechanism);

// A line leaving a node (capacity eviction, demotion, or invalidation).
struct EvictedLine {
  uint64_t key = 0;
  bool dirty = false;
};

// One node's cache: bounded key set + per-line dirty bit, replacement order
// owned by the concrete policy. Implementations must be deterministic — the
// sequential engine's policy runs are pinned by golden tests.
class NodeCache {
 public:
  enum class MarkResult : uint8_t { kAbsent, kWasClean, kWasDirty };

  virtual ~NodeCache() = default;

  // Hit test + replacement-state touch (LRU promote, LFU count, SLRU segment
  // promotion). An SLRU promotion can overflow the protected segment and push a
  // line out of the node entirely; such a lookup-eviction is reported in
  // `evicted` exactly like an Admit() victim.
  virtual bool Lookup(uint64_t key, std::optional<EvictedLine>& evicted) = 0;
  // Hit test without touching replacement state (the probe pass uses this so
  // requests dropped by the failure blackhole never perturb the cache).
  virtual bool Contains(uint64_t key) const = 0;
  // Inserts `key` (caller guarantees !Contains(key) and capacity() > 0) and
  // returns the displaced line, if any. A frequency-filtering policy may return
  // the admitted key itself — admission rejected.
  virtual std::optional<EvictedLine> Admit(uint64_t key, bool dirty) = 0;
  // Sets the dirty bit without touching replacement state; reports the previous
  // state (kAbsent when the key is not resident).
  virtual MarkResult MarkDirty(uint64_t key) = 0;
  // Removes `key`, returning the line if it was resident.
  virtual std::optional<EvictedLine> Erase(uint64_t key) = 0;
  // Visits every resident line (order unspecified).
  virtual void ForEach(
      const std::function<void(uint64_t key, bool dirty)>& fn) const = 0;
  // Drops every line (failure wipe); dirty accounting is the caller's job.
  virtual void Clear() = 0;

  virtual size_t size() const = 0;
  size_t capacity() const { return capacity_; }

 protected:
  explicit NodeCache(size_t capacity) : capacity_(capacity) {}

 private:
  size_t capacity_;
};

// The miss-history sketch configuration of one LFU node (exposed so the
// differential tests can run a bit-identical reference sketch).
CountMinSketch::Config LfuHistorySketchConfig(uint64_t seed);

// Factory for one node's cache. `seed` feeds the LFU history sketch (ignored by
// the other policies). `kind` must be dynamic.
std::unique_ptr<NodeCache> MakeNodeCache(CachePolicyKind kind, size_t capacity,
                                         uint64_t seed);

struct CachePolicyConfig {
  CachePolicyKind policy = CachePolicyKind::kLru;
  HierarchyMode hierarchy = HierarchyMode::kInclusive;
  WritePolicy write = WritePolicy::kWriteThrough;
  // Per-node LFU history-sketch seeds derive from this.
  uint64_t seed = 0x9a11c7ULL;
};

// The dynamic-policy runtime: a [layer][node] grid of NodeCaches plus the
// hierarchy and write semantics. One instance per engine stream (the sequential
// engine owns one; each sharded worker owns a full-capacity replica — under the
// hash-partitioned candidate geometry every shard's stream thins uniformly, so
// per-shard replicas agree statistically, mirroring the telemetry-staleness
// relaxation the sharded backend already makes).
//
// Protocol (driven by EngineCore::ProcessPolicy):
//   reads:  Probe() (pure) → the engine applies drop/transit semantics →
//           CommitHit()/CommitMiss() mutate state;
//   writes: WriteThrough() / WriteBack() (the engine checks the blackhole
//           first, so only delivered writes touch state).
// Every mutating call appends the primary-server ids of any dirty lines that
// left the hierarchy to `writeback_servers`; the engine charges those as
// server writes.
class CachePolicyRuntime {
 public:
  struct Counters {
    uint64_t admissions = 0;     // lines inserted into a node
    uint64_t evictions = 0;      // lines displaced by capacity pressure
    uint64_t invalidations = 0;  // inclusive back-invalidations of upper copies
    uint64_t demotions = 0;      // exclusive victims re-admitted a layer down
    uint64_t dirty_created = 0;  // clean→dirty transitions (write-back absorbs)
    uint64_t dirty_merged = 0;   // dirty tokens folded into an already-dirty line
    uint64_t dirty_lost = 0;     // dirty lines wiped by a node failure
    uint64_t writebacks = 0;     // dirty lines written back to their server
  };

  struct ReadProbe {
    bool hit = false;
    CacheNodeId node{};
  };

  // `allocation` supplies the upper-layer partition hashes and the per-layer
  // capacities; `placement` the rack binding; `spine_alive` (may be null = all
  // alive) is the engine's live top-layer alive vector, read on every probe.
  // All three must outlive the runtime.
  CachePolicyRuntime(const CachePolicyConfig& config,
                     const CacheAllocation* allocation,
                     const Placement* placement,
                     const std::vector<uint8_t>* spine_alive);

  // The candidate node of `key` at `layer` — the pure hash/placement geometry,
  // independent of the static allocation's runtime remap state (class comment).
  CacheNodeId CandidateOf(size_t layer, uint64_t key) const {
    if (layer + 1 == num_layers()) {
      return {static_cast<uint8_t>(layer), placement_->RackOf(key)};
    }
    return {static_cast<uint8_t>(layer), allocation_->PartitionOf(layer, key)};
  }
  bool NodeAlive(CacheNodeId node) const {
    return node.layer != 0 || spine_alive_ == nullptr ||
           spine_alive_->empty() || (*spine_alive_)[node.index] != 0;
  }

  // Where would this read hit right now? (Non-mutating.)
  ReadProbe Probe(uint64_t key) const;
  // Commits a delivered read that Probe() reported as a hit at `node`.
  void CommitHit(uint64_t key, CacheNodeId node,
                 std::vector<uint32_t>& writeback_servers);
  // Commits a delivered read miss (admission per the hierarchy mode).
  void CommitMiss(uint64_t key, std::vector<uint32_t>& writeback_servers);

  // Write-through: touches every alive resident copy and appends them to
  // `copies` (the engine charges coherence per copy).
  void WriteThrough(uint64_t key, std::vector<CacheNodeId>& copies,
                    std::vector<uint32_t>& writeback_servers);
  // Write-back: absorbs the write at the topmost alive resident copy, marking
  // it dirty. Returns the absorbing node, or nullopt (the write goes to the
  // primary server).
  std::optional<CacheNodeId> WriteBack(uint64_t key,
                                       std::vector<uint32_t>& writeback_servers);

  // Failure wipe: drops every line of `node`; dirty lines count as dirty_lost.
  void InvalidateNode(CacheNodeId node);

  const Counters& counters() const { return counters_; }
  // Dirty lines currently resident anywhere (conservation-check support).
  size_t ResidentDirtyLines() const;

  const NodeCache& node_cache(size_t layer, uint32_t index) const {
    return *caches_[layer][index];
  }
  const CachePolicyConfig& config() const { return config_; }
  size_t num_layers() const { return caches_.size(); }
  uint32_t layer_nodes(size_t layer) const {
    return static_cast<uint32_t>(caches_[layer].size());
  }

 private:
  // Topmost layer that can hold `key` right now (alive candidate, capacity>0);
  // num_layers() when none.
  size_t TopEligibleLayer(uint64_t key) const;
  // Inclusive: installs `key` at every layer above `holder` (which holds it),
  // walking up while the chain stays intact — this is both the miss-fill path
  // above the leaf and the lower-hit fill path (how a wiped spine warms up).
  void FillUpward(size_t holder, uint64_t key, std::vector<uint32_t>& wb);
  // Inclusive: a line fell out of `layer` — back-invalidate the upper copies
  // and move the dirty token(s) down to the copy below, or write back.
  void HandleInclusiveEviction(size_t layer, const EvictedLine& victim,
                               std::vector<uint32_t>& wb);
  // Exclusive: find the demoted line a home at `layer` or below.
  void CascadeDemote(size_t layer, EvictedLine line, std::vector<uint32_t>& wb);
  void AdmitExclusiveAt(size_t layer, uint64_t key, bool dirty,
                        std::vector<uint32_t>& wb);
  // Routes a lookup-eviction (SLRU protected-segment overflow) per hierarchy.
  void HandleLookupEviction(size_t layer, const EvictedLine& victim,
                            std::vector<uint32_t>& wb);
  NodeCache& CacheAt(CacheNodeId node) {
    return *caches_[node.layer][node.index];
  }

  CachePolicyConfig config_;
  const CacheAllocation* allocation_;
  const Placement* placement_;
  const std::vector<uint8_t>* spine_alive_;
  size_t leaf_layer_;
  std::vector<std::vector<std::unique_ptr<NodeCache>>> caches_;
  Counters counters_;
};

}  // namespace distcache

#endif  // DISTCACHE_CORE_CACHE_POLICY_H_
