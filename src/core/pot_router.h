// Power-of-two-choices query routing (§3.1, §4.2), generalized to power-of-k for
// multi-layer hierarchies (§3.1 "Query routing uses the power-of-k-choices for k
// layers").
//
// Unlike the classic balls-and-bins process, the two candidate nodes for a key are
// *fixed* by the hash functions (every query to the same object sees the same two
// nodes); the router picks the currently-less-loaded one from the telemetry table.
// The paper shows this fixed-choices variant is a "life-or-death" improvement: with a
// single hash the system is non-stationary (Lemma 3).
#ifndef DISTCACHE_CORE_POT_ROUTER_H_
#define DISTCACHE_CORE_POT_ROUTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "core/load_tracker.h"
#include "net/topology.h"

namespace distcache {

enum class RoutingPolicy {
  kPowerOfTwo,   // least-loaded of the candidate nodes (ties broken randomly)
  kRandom,       // uniformly random candidate — ablation baseline
  kFirstChoice,  // always the first (spine) candidate — degenerate baseline
};

class PotRouter {
 public:
  PotRouter(const LoadTracker* tracker, RoutingPolicy policy, uint64_t seed)
      : tracker_(tracker), policy_(policy), rng_(seed) {}

  // Picks one of `candidates` (the cache nodes holding a copy of the queried key;
  // size 2 for the standard two-layer deployment, k for k layers, possibly 1 when a
  // copy is missing). Returns the index into `candidates`.
  size_t Choose(const std::vector<CacheNodeId>& candidates) {
    if (candidates.size() <= 1) {
      return 0;
    }
    switch (policy_) {
      case RoutingPolicy::kFirstChoice:
        return 0;
      case RoutingPolicy::kRandom:
        return static_cast<size_t>(rng_.NextBounded(candidates.size()));
      case RoutingPolicy::kPowerOfTwo:
        break;
    }
    size_t best = 0;
    double best_load = tracker_->Load(candidates[0]);
    size_t ties = 1;
    for (size_t i = 1; i < candidates.size(); ++i) {
      const double load = tracker_->Load(candidates[i]);
      if (load < best_load) {
        best = i;
        best_load = load;
        ties = 1;
      } else if (load == best_load) {
        // Reservoir-style uniform tie break among equally loaded candidates.
        ++ties;
        if (rng_.NextBounded(ties) == 0) {
          best = i;
        }
      }
    }
    return best;
  }

  RoutingPolicy policy() const { return policy_; }

 private:
  const LoadTracker* tracker_;
  RoutingPolicy policy_;
  Rng rng_;
};

}  // namespace distcache

#endif  // DISTCACHE_CORE_POT_ROUTER_H_
