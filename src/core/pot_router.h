// Power-of-two-choices query routing (§3.1, §4.2), generalized to power-of-k for
// multi-layer hierarchies (§3.1 "Query routing uses the power-of-k-choices for k
// layers").
//
// Unlike the classic balls-and-bins process, the two candidate nodes for a key are
// *fixed* by the hash functions (every query to the same object sees the same two
// nodes); the router picks the currently-less-loaded one from the telemetry table.
// The paper shows this fixed-choices variant is a "life-or-death" improvement: with a
// single hash the system is non-stationary (Lemma 3).
//
// Invariants the router maintains (and that callers must not break):
//
//  1. *Fixed candidates*: the candidate set for a key is derived from the allocation
//     hashes (h0 → spine partition, h1 ≡ storage placement → leaf), never from load.
//     Load only picks *among* the fixed candidates; choosing candidates by load would
//     void the independence assumption behind Theorem 1's stationarity proof.
//  2. *Less-loaded wins*: under kPowerOfTwo the chosen candidate has minimal load in
//     the router's current view. Combined with the LoadTracker invariants (bounded
//     staleness + local increments) this makes each key's query stream a water-filling
//     split between its two copies — the discrete analogue of ClusterSim's fluid
//     split.
//  3. *Uniform tie-breaks*: ties are broken uniformly at random (reservoir style), so
//     two equally loaded candidates share load evenly in expectation rather than
//     herding onto the lower index.
#ifndef DISTCACHE_CORE_POT_ROUTER_H_
#define DISTCACHE_CORE_POT_ROUTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "core/load_tracker.h"
#include "net/topology.h"

namespace distcache {

enum class RoutingPolicy {
  kPowerOfTwo,   // least-loaded of the candidate nodes (ties broken randomly)
  kRandom,       // uniformly random candidate — ablation baseline
  kFirstChoice,  // always the first (spine) candidate — degenerate baseline
};

class PotRouter {
 public:
  PotRouter(const LoadTracker* tracker, RoutingPolicy policy, uint64_t seed)
      : tracker_(tracker), policy_(policy), rng_(seed) {}

  // Picks one of `candidates` (the cache nodes holding a copy of the queried key;
  // size 2 for the standard two-layer deployment, k for k layers, possibly 1 when a
  // copy is missing). Returns the index into `candidates`.
  size_t Choose(const std::vector<CacheNodeId>& candidates) {
    if (candidates.size() <= 1) {
      return 0;
    }
    switch (policy_) {
      case RoutingPolicy::kFirstChoice:
        return 0;
      case RoutingPolicy::kRandom:
        return static_cast<size_t>(rng_.NextBounded(candidates.size()));
      case RoutingPolicy::kPowerOfTwo:
        break;
    }
    size_t best = 0;
    double best_load = tracker_->Load(candidates[0]);
    size_t ties = 1;
    for (size_t i = 1; i < candidates.size(); ++i) {
      const double load = tracker_->Load(candidates[i]);
      if (load < best_load) {
        best = i;
        best_load = load;
        ties = 1;
      } else if (load == best_load) {
        // Reservoir-style uniform tie break among equally loaded candidates.
        ++ties;
        if (rng_.NextBounded(ties) == 0) {
          best = i;
        }
      }
    }
    return best;
  }

  // Hot-path binary choice used by the batched simulation backends: semantically
  // identical to Choose({a, b}) — same pick from the same RNG stream, which the
  // parity test in tests/core/pot_router_test.cc enforces — but without
  // materializing a candidate vector. Returns the chosen node id directly.
  CacheNodeId ChoosePair(CacheNodeId a, CacheNodeId b) {
    switch (policy_) {
      case RoutingPolicy::kFirstChoice:
        return a;
      case RoutingPolicy::kRandom:
        return rng_.NextBounded(2) == 0 ? a : b;
      case RoutingPolicy::kPowerOfTwo:
        break;
    }
    const double load_a = tracker_->Load(a);
    const double load_b = tracker_->Load(b);
    if (load_a < load_b) {
      return a;
    }
    if (load_b < load_a) {
      return b;
    }
    // Uniform tie-break (invariant 3). Mirrors Choose()'s reservoir step, where
    // drawing 0 *replaces* the incumbent: 0 picks b, anything else keeps a.
    return rng_.NextBounded(2) == 0 ? b : a;
  }

  RoutingPolicy policy() const { return policy_; }

 private:
  const LoadTracker* tracker_;
  RoutingPolicy policy_;
  Rng rng_;
};

}  // namespace distcache

#endif  // DISTCACHE_CORE_POT_ROUTER_H_
