// Client-ToR cache-load table fed by in-network telemetry (§4.2).
//
// Cache switches piggyback their epoch load in reply headers; the client ToR stores
// the latest value per cache switch in on-chip registers (256 × 32-bit in the
// prototype). Loads can go stale when a switch stops seeing traffic; the paper
// proposes an aging mechanism that gradually decays un-refreshed loads toward zero
// (not implementable in P4 at the time — we implement it and ablate it).
#ifndef DISTCACHE_CORE_LOAD_TRACKER_H_
#define DISTCACHE_CORE_LOAD_TRACKER_H_

#include <cstdint>
#include <vector>

#include "net/topology.h"

namespace distcache {

class LoadTracker {
 public:
  struct Config {
    uint32_t num_spine = 32;
    uint32_t num_leaf = 32;
    // Multiplier applied per Age() call to entries not refreshed since the last
    // Age(); 1.0 disables aging (the prototype's behaviour).
    double aging_factor = 0.5;
  };

  explicit LoadTracker(const Config& config)
      : config_(config),
        spine_loads_(config.num_spine, 0.0),
        leaf_loads_(config.num_leaf, 0.0),
        spine_fresh_(config.num_spine, false),
        leaf_fresh_(config.num_leaf, false) {}

  // Telemetry arrival: reply traversed `node` which reported `load`.
  void Update(CacheNodeId node, uint64_t load) {
    if (node.layer == 0 && node.index < config_.num_spine) {
      spine_loads_[node.index] = static_cast<double>(load);
      spine_fresh_[node.index] = true;
    } else if (node.layer == 1 && node.index < config_.num_leaf) {
      leaf_loads_[node.index] = static_cast<double>(load);
      leaf_fresh_[node.index] = true;
    }
  }

  double Load(CacheNodeId node) const {
    return node.layer == 0 ? spine_loads_[node.index] : leaf_loads_[node.index];
  }

  // Epoch boundary: decay entries that saw no telemetry this epoch (aging, §4.2), and
  // clear freshness marks.
  void Age() {
    for (uint32_t i = 0; i < config_.num_spine; ++i) {
      if (!spine_fresh_[i]) {
        spine_loads_[i] *= config_.aging_factor;
      }
      spine_fresh_[i] = false;
    }
    for (uint32_t i = 0; i < config_.num_leaf; ++i) {
      if (!leaf_fresh_[i]) {
        leaf_loads_[i] *= config_.aging_factor;
      }
      leaf_fresh_[i] = false;
    }
  }

  // ToR switch replacement (§4.4): a new client ToR "initializes the loads of all
  // cache switches to be zero" and relearns from telemetry.
  void Reset() {
    spine_loads_.assign(config_.num_spine, 0.0);
    leaf_loads_.assign(config_.num_leaf, 0.0);
    spine_fresh_.assign(config_.num_spine, false);
    leaf_fresh_.assign(config_.num_leaf, false);
  }

  const std::vector<double>& spine_loads() const { return spine_loads_; }
  const std::vector<double>& leaf_loads() const { return leaf_loads_; }

 private:
  Config config_;
  std::vector<double> spine_loads_;
  std::vector<double> leaf_loads_;
  std::vector<bool> spine_fresh_;
  std::vector<bool> leaf_fresh_;
};

}  // namespace distcache

#endif  // DISTCACHE_CORE_LOAD_TRACKER_H_
