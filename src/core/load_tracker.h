// Client-ToR cache-load table fed by in-network telemetry (§4.2).
//
// Cache switches piggyback their epoch load in reply headers; the client ToR stores
// the latest value per cache switch in on-chip registers (256 × 32-bit in the
// prototype). Loads can go stale when a switch stops seeing traffic; the paper
// proposes an aging mechanism that gradually decays un-refreshed loads toward zero
// (not implementable in P4 at the time — we implement it and ablate it).
//
// The table covers an arbitrary cache hierarchy: one load slot per node of every
// layer (layer 0 = the top/"spine" layer, the last layer = the rack-bound leaves),
// flattened into a single dense array so the hot-path Load() is one add and one
// read regardless of depth. Power-of-k routing over L layers compares the L
// candidates through this one table.
//
// Invariants this table must maintain for the power-of-k-choices guarantee
// (Theorem 1) to apply:
//
//  1. *Per-node monotone freshness*: the stored load for a node is always some past
//     true load of that node (possibly decayed by aging) plus optimistic local
//     increments the client itself caused — never an arbitrary value. PoT tolerates
//     bounded staleness (it only compares candidates), but it does not tolerate
//     systematically inverted loads.
//  2. *Bounded staleness*: every node's entry is refreshed at least once per
//     telemetry epoch while the node serves traffic. The sharded simulation backend
//     preserves this with partial-sum gossip — each shard broadcasts its own
//     cumulative per-node contributions every epoch and receivers fold in the
//     monotone increments — while each client tracks its own contributions via
//     Add(), so the view error for any node is at most the traffic other clients
//     sent it within one epoch (see sim/sharded_backend.h for why absolute-load
//     broadcasts would violate this).
//  3. *Herding avoidance*: decisions within an epoch must not all see the identical
//     frozen snapshot (else every query chases the same "less loaded" node — the
//     stale-telemetry ablation in ClusterSim). Local Add() increments provide the
//     within-epoch feedback that keeps the fixed-candidates PoT process stationary.
//
// Failure handling (§4.4) adds a fourth rule, *dead-node aging*: a failed switch
// stops emitting telemetry, so its table entry freezes at a stale — and, because
// loads only grow, eventually the *smallest* — value. Invariant 3 then breaks in
// the worst possible way: the frozen ghost wins every PoT comparison and the whole
// query stream herds onto a blackhole, with no within-epoch feedback to push it
// away (dead switches serve nothing, so the entry never moves). MarkDead() is the
// limit case of aging such an entry out: it pins the visible load to +infinity so
// the ghost loses every comparison, while telemetry keeps accumulating into a
// shadow value that MarkAlive() restores on recovery (a dead switch's true
// cumulative load is unchanged while it is down, so the shadow — the pre-failure
// estimate plus any late-arriving telemetry — is the correct post-recovery view).
#ifndef DISTCACHE_CORE_LOAD_TRACKER_H_
#define DISTCACHE_CORE_LOAD_TRACKER_H_

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/cacheline.h"
#include "core/allocation.h"
#include "net/topology.h"

namespace distcache {

class LoadTracker {
 public:
  struct Config {
    // Nodes per cache layer, top first (the historical shape is {num_spine,
    // num_racks}).
    std::vector<uint32_t> layer_sizes{32, 32};
    // Multiplier applied per Age() call to entries not refreshed since the last
    // Age(); 1.0 disables aging (the prototype's behaviour).
    double aging_factor = 0.5;
  };

  explicit LoadTracker(const Config& config)
      : config_(config), offset_(config.layer_sizes) {
    loads_.assign(offset_.total(), 0.0);
    fresh_.assign(offset_.total(), false);
    dead_.assign(offset_.total(), false);
    shadow_.assign(offset_.total(), 0.0);
  }

  // Telemetry arrival: reply traversed `node` which reported `load`.
  void Update(CacheNodeId node, uint64_t load) { Set(node, static_cast<double>(load)); }

  double Load(CacheNodeId node) const { return loads_[offset_.Flat(node)]; }

  // Authoritative refresh (epoch telemetry broadcast in the simulation backends):
  // replaces the view with the owner's true cumulative load and marks it fresh.
  // While a node is marked dead the refresh lands on the shadow value instead, so
  // the +infinity pin survives until MarkAlive().
  void Set(CacheNodeId node, double load) {
    if (!Valid(node)) {
      return;
    }
    const size_t i = offset_.Flat(node);
    (dead_[i] ? shadow_ : loads_)[i] = load;
    fresh_[i] = true;
  }

  // Optimistic local increment: the client just routed `delta` work to `node` and
  // accounts for it immediately, without waiting for the next telemetry epoch
  // (invariant 3 above). Does not mark the entry fresh — only real telemetry does.
  void Add(CacheNodeId node, double delta) {
    if (!Valid(node)) {
      return;
    }
    const size_t i = offset_.Flat(node);
    (dead_[i] ? shadow_ : loads_)[i] += delta;
  }

  // Dead-node aging (§4.4, header comment): pin the visible load to +infinity so
  // the failed node loses every PoT comparison; the current estimate moves to a
  // shadow that continues to absorb Set()/Add() (late telemetry). Idempotent.
  void MarkDead(CacheNodeId node) {
    if (!Valid(node)) {
      return;
    }
    const size_t i = offset_.Flat(node);
    if (!dead_[i]) {
      dead_[i] = true;
      shadow_[i] = loads_[i];
      loads_[i] = std::numeric_limits<double>::infinity();
    }
  }

  // Recovery: restore the shadow estimate (the node served nothing while dead, so
  // its true cumulative load is exactly where telemetry last left it). Idempotent.
  void MarkAlive(CacheNodeId node) {
    if (!Valid(node)) {
      return;
    }
    const size_t i = offset_.Flat(node);
    if (dead_[i]) {
      dead_[i] = false;
      loads_[i] = shadow_[i];
    }
  }

  bool IsDead(CacheNodeId node) const {
    // Unknown nodes are ignored, like Set/Add/MarkDead.
    return Valid(node) && dead_[offset_.Flat(node)];
  }

  // Epoch boundary: decay entries that saw no telemetry this epoch (aging, §4.2), and
  // clear freshness marks. Dead entries stay pinned at +infinity — decaying a dead
  // node toward zero would make the ghost *attractive* (and 0 × inf is NaN).
  void Age() {
    for (size_t i = 0; i < loads_.size(); ++i) {
      if (!fresh_[i] && !dead_[i]) {
        loads_[i] *= config_.aging_factor;
      }
      fresh_[i] = false;
    }
  }

  // ToR switch replacement (§4.4): a new client ToR "initializes the loads of all
  // cache switches to be zero" and relearns from telemetry.
  void Reset() {
    loads_.assign(loads_.size(), 0.0);
    fresh_.assign(fresh_.size(), false);
    dead_.assign(dead_.size(), false);
    shadow_.assign(shadow_.size(), 0.0);
  }

  size_t num_layers() const { return config_.layer_sizes.size(); }

  // One layer's current view (a copy; test/diagnostic use).
  std::vector<double> LayerLoads(size_t layer) const {
    return {loads_.begin() + offset_.LayerBegin(layer),
            loads_.begin() + offset_.LayerEnd(layer)};
  }
  std::vector<double> spine_loads() const { return LayerLoads(0); }
  std::vector<double> leaf_loads() const { return LayerLoads(num_layers() - 1); }

 private:
  bool Valid(CacheNodeId node) const {
    return node.layer < config_.layer_sizes.size() &&
           node.index < config_.layer_sizes[node.layer];
  }

  Config config_;
  LayerOffsets offset_;
  // The load lanes are the hottest per-thread data in the sharded engine (one
  // tracker per worker, read+written every request); cache-line padding
  // guarantees two workers' lanes never share a line even when the allocator
  // packs the trackers' heap blocks back to back.
  CacheAlignedVector<double> loads_;
  std::vector<bool> fresh_;
  // Dead-node aging state: while dead_[i], loads_[i] holds +infinity and
  // shadow_[i] carries the live estimate (see MarkDead/MarkAlive).
  std::vector<bool> dead_;
  CacheAlignedVector<double> shadow_;
};

}  // namespace distcache

#endif  // DISTCACHE_CORE_LOAD_TRACKER_H_
