// Client-ToR cache-load table fed by in-network telemetry (§4.2).
//
// Cache switches piggyback their epoch load in reply headers; the client ToR stores
// the latest value per cache switch in on-chip registers (256 × 32-bit in the
// prototype). Loads can go stale when a switch stops seeing traffic; the paper
// proposes an aging mechanism that gradually decays un-refreshed loads toward zero
// (not implementable in P4 at the time — we implement it and ablate it).
//
// Invariants this table must maintain for the power-of-two-choices guarantee
// (Theorem 1) to apply:
//
//  1. *Per-node monotone freshness*: the stored load for a node is always some past
//     true load of that node (possibly decayed by aging) plus optimistic local
//     increments the client itself caused — never an arbitrary value. PoT tolerates
//     bounded staleness (it only compares two candidates), but it does not tolerate
//     systematically inverted loads.
//  2. *Bounded staleness*: every node's entry is refreshed at least once per
//     telemetry epoch while the node serves traffic. The sharded simulation backend
//     preserves this with partial-sum gossip — each shard broadcasts its own
//     cumulative per-node contributions every epoch and receivers fold in the
//     monotone increments — while each client tracks its own contributions via
//     Add(), so the view error for any node is at most the traffic other clients
//     sent it within one epoch (see sim/sharded_backend.h for why absolute-load
//     broadcasts would violate this).
//  3. *Herding avoidance*: decisions within an epoch must not all see the identical
//     frozen snapshot (else every query chases the same "less loaded" node — the
//     stale-telemetry ablation in ClusterSim). Local Add() increments provide the
//     within-epoch feedback that keeps the fixed-candidates PoT process stationary.
//
// Failure handling (§4.4) adds a fourth rule, *dead-node aging*: a failed switch
// stops emitting telemetry, so its table entry freezes at a stale — and, because
// loads only grow, eventually the *smallest* — value. Invariant 3 then breaks in
// the worst possible way: the frozen ghost wins every PoT comparison and the whole
// query stream herds onto a blackhole, with no within-epoch feedback to push it
// away (dead switches serve nothing, so the entry never moves). MarkDead() is the
// limit case of aging such an entry out: it pins the visible load to +infinity so
// the ghost loses every comparison, while telemetry keeps accumulating into a
// shadow value that MarkAlive() restores on recovery (a dead switch's true
// cumulative load is unchanged while it is down, so the shadow — the pre-failure
// estimate plus any late-arriving telemetry — is the correct post-recovery view).
#ifndef DISTCACHE_CORE_LOAD_TRACKER_H_
#define DISTCACHE_CORE_LOAD_TRACKER_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "net/topology.h"

namespace distcache {

class LoadTracker {
 public:
  struct Config {
    uint32_t num_spine = 32;
    uint32_t num_leaf = 32;
    // Multiplier applied per Age() call to entries not refreshed since the last
    // Age(); 1.0 disables aging (the prototype's behaviour).
    double aging_factor = 0.5;
  };

  explicit LoadTracker(const Config& config)
      : config_(config),
        spine_loads_(config.num_spine, 0.0),
        leaf_loads_(config.num_leaf, 0.0),
        spine_fresh_(config.num_spine, false),
        leaf_fresh_(config.num_leaf, false),
        spine_dead_(config.num_spine, false),
        leaf_dead_(config.num_leaf, false),
        spine_shadow_(config.num_spine, 0.0),
        leaf_shadow_(config.num_leaf, 0.0) {}

  // Telemetry arrival: reply traversed `node` which reported `load`.
  void Update(CacheNodeId node, uint64_t load) { Set(node, static_cast<double>(load)); }

  double Load(CacheNodeId node) const {
    return node.layer == 0 ? spine_loads_[node.index] : leaf_loads_[node.index];
  }

  // Authoritative refresh (epoch telemetry broadcast in the simulation backends):
  // replaces the view with the owner's true cumulative load and marks it fresh.
  // While a node is marked dead the refresh lands on the shadow value instead, so
  // the +infinity pin survives until MarkAlive().
  void Set(CacheNodeId node, double load) {
    if (node.layer == 0 && node.index < config_.num_spine) {
      (spine_dead_[node.index] ? spine_shadow_ : spine_loads_)[node.index] = load;
      spine_fresh_[node.index] = true;
    } else if (node.layer == 1 && node.index < config_.num_leaf) {
      (leaf_dead_[node.index] ? leaf_shadow_ : leaf_loads_)[node.index] = load;
      leaf_fresh_[node.index] = true;
    }
  }

  // Optimistic local increment: the client just routed `delta` work to `node` and
  // accounts for it immediately, without waiting for the next telemetry epoch
  // (invariant 3 above). Does not mark the entry fresh — only real telemetry does.
  void Add(CacheNodeId node, double delta) {
    if (node.layer == 0 && node.index < config_.num_spine) {
      (spine_dead_[node.index] ? spine_shadow_ : spine_loads_)[node.index] += delta;
    } else if (node.layer == 1 && node.index < config_.num_leaf) {
      (leaf_dead_[node.index] ? leaf_shadow_ : leaf_loads_)[node.index] += delta;
    }
  }

  // Dead-node aging (§4.4, header comment): pin the visible load to +infinity so
  // the failed node loses every PoT comparison; the current estimate moves to a
  // shadow that continues to absorb Set()/Add() (late telemetry). Idempotent.
  void MarkDead(CacheNodeId node) {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    if (node.layer == 0 && node.index < config_.num_spine) {
      if (!spine_dead_[node.index]) {
        spine_dead_[node.index] = true;
        spine_shadow_[node.index] = spine_loads_[node.index];
        spine_loads_[node.index] = kInf;
      }
    } else if (node.layer == 1 && node.index < config_.num_leaf) {
      if (!leaf_dead_[node.index]) {
        leaf_dead_[node.index] = true;
        leaf_shadow_[node.index] = leaf_loads_[node.index];
        leaf_loads_[node.index] = kInf;
      }
    }
  }

  // Recovery: restore the shadow estimate (the node served nothing while dead, so
  // its true cumulative load is exactly where telemetry last left it). Idempotent.
  void MarkAlive(CacheNodeId node) {
    if (node.layer == 0 && node.index < config_.num_spine) {
      if (spine_dead_[node.index]) {
        spine_dead_[node.index] = false;
        spine_loads_[node.index] = spine_shadow_[node.index];
      }
    } else if (node.layer == 1 && node.index < config_.num_leaf) {
      if (leaf_dead_[node.index]) {
        leaf_dead_[node.index] = false;
        leaf_loads_[node.index] = leaf_shadow_[node.index];
      }
    }
  }

  bool IsDead(CacheNodeId node) const {
    if (node.layer == 0 && node.index < config_.num_spine) {
      return spine_dead_[node.index];
    }
    if (node.layer == 1 && node.index < config_.num_leaf) {
      return leaf_dead_[node.index];
    }
    return false;  // unknown nodes are ignored, like Set/Add/MarkDead
  }

  // Epoch boundary: decay entries that saw no telemetry this epoch (aging, §4.2), and
  // clear freshness marks. Dead entries stay pinned at +infinity — decaying a dead
  // node toward zero would make the ghost *attractive* (and 0 × inf is NaN).
  void Age() {
    for (uint32_t i = 0; i < config_.num_spine; ++i) {
      if (!spine_fresh_[i] && !spine_dead_[i]) {
        spine_loads_[i] *= config_.aging_factor;
      }
      spine_fresh_[i] = false;
    }
    for (uint32_t i = 0; i < config_.num_leaf; ++i) {
      if (!leaf_fresh_[i] && !leaf_dead_[i]) {
        leaf_loads_[i] *= config_.aging_factor;
      }
      leaf_fresh_[i] = false;
    }
  }

  // ToR switch replacement (§4.4): a new client ToR "initializes the loads of all
  // cache switches to be zero" and relearns from telemetry.
  void Reset() {
    spine_loads_.assign(config_.num_spine, 0.0);
    leaf_loads_.assign(config_.num_leaf, 0.0);
    spine_fresh_.assign(config_.num_spine, false);
    leaf_fresh_.assign(config_.num_leaf, false);
    spine_dead_.assign(config_.num_spine, false);
    leaf_dead_.assign(config_.num_leaf, false);
    spine_shadow_.assign(config_.num_spine, 0.0);
    leaf_shadow_.assign(config_.num_leaf, 0.0);
  }

  const std::vector<double>& spine_loads() const { return spine_loads_; }
  const std::vector<double>& leaf_loads() const { return leaf_loads_; }

 private:
  Config config_;
  std::vector<double> spine_loads_;
  std::vector<double> leaf_loads_;
  std::vector<bool> spine_fresh_;
  std::vector<bool> leaf_fresh_;
  // Dead-node aging state: while dead_[i], loads_[i] holds +infinity and
  // shadow_[i] carries the live estimate (see MarkDead/MarkAlive).
  std::vector<bool> spine_dead_;
  std::vector<bool> leaf_dead_;
  std::vector<double> spine_shadow_;
  std::vector<double> leaf_shadow_;
};

}  // namespace distcache

#endif  // DISTCACHE_CORE_LOAD_TRACKER_H_
