// Workload generation: a stream of GET/PUT operations drawn from a key-popularity
// distribution with a configurable write ratio, mirroring the paper's client library
// (§6.1: uniform and Zipf-0.9/0.95/0.99 over 100M objects, varying write ratio).
//
// Workloads are *phased*: a WorkloadPhase list divides the request timeline into
// stretches with their own skew, write ratio, and hot-set rotation. This is how the
// paper's dynamic-workload experiments (hot-spot shift, §6.4) are expressed — a
// single-phase list reproduces the historical static i.i.d. stream bit for bit.
#ifndef DISTCACHE_COMMON_WORKLOAD_H_
#define DISTCACHE_COMMON_WORKLOAD_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/zipf.h"

namespace distcache {

enum class OpType : uint8_t {
  kGet,
  kPut,
};

struct Op {
  OpType type;
  uint64_t key;
};

// One stretch of the workload timeline, starting at `start_request` (timestamps are
// in requests, relative to a run). Popularity is always rank-ordered — rank 0 is the
// hottest — and `hot_shift` rotates the rank→key mapping: popularity rank r maps to
// key (r + hot_shift) % num_keys. A shift therefore moves the entire hot set onto
// previously-cold keys without changing the shape of the distribution, which is
// exactly the paper's hot-spot-shift experiment. Changing `zipf_theta` re-shapes the
// distribution itself (samplers must be rebuilt at the boundary).
struct WorkloadPhase {
  uint64_t start_request = 0;
  double zipf_theta = 0.99;  // 0 => uniform
  double write_ratio = 0.0;  // fraction of PUTs
  uint64_t hot_shift = 0;    // rank r → key (r + hot_shift) % num_keys
};

// Orders phases by start_request, preserving list order for ties — the later entry
// of a tie wins (a zero-length phase is applied and immediately superseded).
void SortPhasesByStart(std::vector<WorkloadPhase>& phases);

// The key id carrying popularity rank `rank` under a phase's rotation.
inline uint64_t KeyOfRank(uint64_t rank, uint64_t hot_shift, uint64_t num_keys) {
  return hot_shift == 0 ? rank : (rank + hot_shift) % num_keys;
}

// Parses a phase list from the CLI syntax
//   start:theta:write_ratio[:hot_shift][,start:theta:write_ratio[:hot_shift]]...
// e.g. "0:0.99:0.0,500000:0.99:0.0:50000000". Returns false and sets *error on
// malformed input (non-numeric fields, NaN/negative values, theta > 1, write ratio
// outside [0,1]). Phases are returned sorted by start_request.
bool ParsePhaseList(const std::string& text, std::vector<WorkloadPhase>* phases,
                    std::string* error);

// Open-loop arrival process (the virtual-time layer): requests arrive Poisson at
// `rate` per virtual-time unit, where one unit is one storage server's mean
// service time — so rate is directly comparable to ClusterSim capacities
// (rate == TotalServerCapacity() offers exactly aggregate server capacity).
// Optional periodic bursts multiply the rate by `burst_factor` for the first
// `burst_duration` units of every `burst_every`-unit window, modelling diurnal
// or flash-crowd traffic. rate == 0 disables the open-loop clock entirely: the
// engines then run closed-loop and record no latency (the historical behaviour,
// bit-identical).
struct ArrivalConfig {
  double rate = 0.0;
  double burst_factor = 1.0;
  double burst_every = 0.0;     // 0 = no bursts
  double burst_duration = 0.0;

  bool enabled() const { return rate > 0.0; }
  bool bursty() const {
    return burst_factor != 1.0 && burst_every > 0.0 && burst_duration > 0.0;
  }
  // The instantaneous arrival rate at virtual time `now` (phase within the
  // burst window decides; deterministic, consumes no RNG).
  double RateAt(double now) const {
    if (!bursty()) {
      return rate;
    }
    const double phase = now - burst_every * std::floor(now / burst_every);
    return phase < burst_duration ? rate * burst_factor : rate;
  }
  // Long-run mean rate (burst duty cycle folded in) — what the fluid engine's
  // steady-state queueing forms see.
  double MeanRate() const {
    if (!bursty()) {
      return rate;
    }
    const double duty = burst_duration >= burst_every
                            ? 1.0
                            : burst_duration / burst_every;
    return rate * (1.0 + (burst_factor - 1.0) * duty);
  }
};

// Parses the CLI burst syntax "factor:every:duration" (e.g. "4:1000:50": 4x the
// base rate for the first 50 of every 1000 virtual-time units) into an existing
// ArrivalConfig (rate is set separately). Returns false and sets *error on
// malformed input (non-numeric, factor < 1, non-positive window, duration
// outside (0, every]).
bool ParseBurstSpec(const std::string& text, ArrivalConfig* arrival,
                    std::string* error);

struct WorkloadConfig {
  uint64_t num_keys = 100'000'000;  // paper: 100 million objects
  double zipf_theta = 0.99;         // 0 => uniform; paper default zipf-0.99
  double write_ratio = 0.0;         // fraction of PUTs
  uint64_t seed = 1;
  // Optional timeline. Empty = one implicit phase from the fields above. When
  // non-empty, the first phase takes effect at its start_request; until then the
  // top-level zipf_theta/write_ratio apply.
  std::vector<WorkloadPhase> phases;
};

// Draws a stream of operations, advancing through the configured phase timeline.
// One instance per client thread. Sampler rebuilds happen lazily at phase
// boundaries and consume no RNG draws, so two generators with the same config and
// seed produce identical streams regardless of when phases fire.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(const WorkloadConfig& config);

  Op Next();

  // The distribution currently in effect (phase-dependent).
  const KeyDistribution& distribution() const { return *dist_; }
  double write_ratio() const { return write_ratio_; }
  uint64_t hot_shift() const { return hot_shift_; }
  uint64_t requests_drawn() const { return drawn_; }
  const WorkloadConfig& config() const { return config_; }

 private:
  void ApplyPhase(const WorkloadPhase& phase);

  WorkloadConfig config_;
  std::unique_ptr<KeyDistribution> dist_;
  Rng rng_;
  double write_ratio_;
  double theta_;
  uint64_t hot_shift_ = 0;
  uint64_t drawn_ = 0;
  size_t next_phase_ = 0;
};

// Exact popularity of the `top_k` hottest keys plus the aggregate tail mass, used by
// the fluid cluster simulator: hot keys are tracked individually, the tail is spread
// across storage servers by the placement hash.
struct PopularityVector {
  std::vector<double> head;  // head[i] = Pr[rank == i], i < top_k
  double tail_mass = 0.0;    // 1 - sum(head)
};

PopularityVector BuildPopularityVector(const KeyDistribution& dist, uint64_t top_k);

}  // namespace distcache

#endif  // DISTCACHE_COMMON_WORKLOAD_H_
