// Workload generation: a stream of GET/PUT operations drawn from a key-popularity
// distribution with a configurable write ratio, mirroring the paper's client library
// (§6.1: uniform and Zipf-0.9/0.95/0.99 over 100M objects, varying write ratio).
#ifndef DISTCACHE_COMMON_WORKLOAD_H_
#define DISTCACHE_COMMON_WORKLOAD_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/zipf.h"

namespace distcache {

enum class OpType : uint8_t {
  kGet,
  kPut,
};

struct Op {
  OpType type;
  uint64_t key;
};

struct WorkloadConfig {
  uint64_t num_keys = 100'000'000;  // paper: 100 million objects
  double zipf_theta = 0.99;         // 0 => uniform; paper default zipf-0.99
  double write_ratio = 0.0;         // fraction of PUTs
  uint64_t seed = 1;
};

// Draws an i.i.d. stream of operations. One instance per client thread.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(const WorkloadConfig& config);

  Op Next();

  const KeyDistribution& distribution() const { return *dist_; }
  const WorkloadConfig& config() const { return config_; }

 private:
  WorkloadConfig config_;
  std::unique_ptr<KeyDistribution> dist_;
  Rng rng_;
};

// Exact popularity of the `top_k` hottest keys plus the aggregate tail mass, used by
// the fluid cluster simulator: hot keys are tracked individually, the tail is spread
// across storage servers by the placement hash.
struct PopularityVector {
  std::vector<double> head;  // head[i] = Pr[key == i], i < top_k
  double tail_mass = 0.0;    // 1 - sum(head)
};

PopularityVector BuildPopularityVector(const KeyDistribution& dist, uint64_t top_k);

}  // namespace distcache

#endif  // DISTCACHE_COMMON_WORKLOAD_H_
