// Streaming statistics and histograms used by the simulators and benches to report
// per-node load, imbalance factors and latency percentiles.
#ifndef DISTCACHE_COMMON_STATS_H_
#define DISTCACHE_COMMON_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace distcache {

// Welford-style streaming mean/variance plus min/max.
class StreamingStats {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const { return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  // Coefficient of variation — the load-imbalance measure used in our reports.
  double cv() const { return mean() > 0.0 ? stddev() / mean() : 0.0; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-resolution histogram over [0, upper) with `buckets` equal-width bins; values
// ≥ upper land in the overflow bin. Supports percentile queries.
class Histogram {
 public:
  Histogram(double upper, size_t buckets) : upper_(upper), counts_(buckets + 1, 0) {}

  void Add(double x) {
    ++total_;
    if (x >= upper_ || x < 0.0) {
      ++counts_.back();
      return;
    }
    const auto idx = static_cast<size_t>(x / upper_ * static_cast<double>(counts_.size() - 1));
    ++counts_[idx];
  }

  // Value at percentile p in [0, 100]. Returns the lower edge of the bucket containing
  // the p-th percentile sample; the overflow bucket reports `upper`.
  double Percentile(double p) const;

  uint64_t total() const { return total_; }

 private:
  double upper_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

// Max/mean ratio of a load vector — "imbalance factor". 1.0 means perfectly balanced.
double ImbalanceFactor(const std::vector<double>& loads);

}  // namespace distcache

#endif  // DISTCACHE_COMMON_STATS_H_
