// Streaming statistics and histograms used by the simulators and benches to report
// per-node load, imbalance factors and latency percentiles.
#ifndef DISTCACHE_COMMON_STATS_H_
#define DISTCACHE_COMMON_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace distcache {

// Welford-style streaming mean/variance plus min/max.
class StreamingStats {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const { return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  // Coefficient of variation — the load-imbalance measure used in our reports.
  double cv() const { return mean() > 0.0 ? stddev() / mean() : 0.0; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-resolution histogram over [0, upper) with `buckets` equal-width bins; values
// ≥ upper land in the overflow bin. Supports percentile queries.
class Histogram {
 public:
  Histogram(double upper, size_t buckets) : upper_(upper), counts_(buckets + 1, 0) {}

  void Add(double x) {
    ++total_;
    if (x >= upper_ || x < 0.0) {
      ++counts_.back();
      return;
    }
    const auto idx = static_cast<size_t>(x / upper_ * static_cast<double>(counts_.size() - 1));
    ++counts_[idx];
  }

  // Value at percentile p in [0, 100]. Returns the lower edge of the bucket containing
  // the p-th percentile sample; the overflow bucket reports `upper`.
  double Percentile(double p) const;

  uint64_t total() const { return total_; }

 private:
  double upper_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

// Log-bucketed latency histogram: the mergeable distribution carried by
// BackendStats through every engine (the open-loop virtual-time layer).
//
// Buckets grow geometrically by 2^(1/16) (~4.4% relative resolution — below the
// statistical noise of any percentile the benches report) over [2^-10, 2^22)
// virtual-time units, 512 buckets total. Values below the range land in bucket
// 0, finite values above it in the last bucket; saturated samples (infinite
// latency — a query parked at a node that can never drain) are tracked
// separately so they surface as +inf percentiles instead of a fake large value.
//
// Merge is element-wise addition, hence associative and commutative: per-shard
// histograms merged at quota end are bucket-identical to one stream recording
// the union, in any merge order. Bucket storage is lazily allocated — a
// closed-loop run (no arrival process) never calls Add, so the histogram costs
// one empty vector and the golden pins see no allocation or time.
class LatencyHistogram {
 public:
  static constexpr int kSubBuckets = 16;       // buckets per factor-of-2
  static constexpr int kMinExponent = -10;     // lowest representable: 2^-10
  static constexpr int kNumBuckets = 32 * kSubBuckets;  // [2^-10, 2^22)

  void Add(double value, uint64_t count = 1);
  // Saturated mass: queries whose latency is unbounded (overloaded node).
  void AddInfinite(uint64_t count = 1) {
    total_ += count;
    infinite_ += count;
  }

  // Element-wise accumulate. Associative and commutative.
  void Merge(const LatencyHistogram& other);
  // The per-bucket difference `this - prev`, where `prev` is an earlier
  // snapshot of the same stream — the per-interval histogram of the series
  // bookkeeping. Two empty histograms yield an empty delta (no allocation).
  LatencyHistogram DeltaSince(const LatencyHistogram& prev) const;

  // Value at percentile p in [0, 100]: the geometric midpoint of the bucket
  // holding the p-th percentile sample. +inf when the rank lands in the
  // saturated mass; 0 when empty.
  double Percentile(double p) const;

  uint64_t total() const { return total_; }
  uint64_t infinite() const { return infinite_; }
  bool empty() const { return total_ == 0; }
  // Mean over the finite samples (saturated mass is reported separately).
  double mean() const {
    const uint64_t finite = total_ - infinite_;
    return finite == 0 ? 0.0 : sum_ / static_cast<double>(finite);
  }
  double infinite_fraction() const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(infinite_) / static_cast<double>(total_);
  }

  // Bucket geometry (static so tests and the fluid engine's analytic fill
  // evaluate the exact same edges). BucketOf clamps into [0, kNumBuckets).
  static int BucketOf(double value);
  static double BucketLowerEdge(int bucket) {
    return std::exp2(static_cast<double>(kMinExponent) +
                     static_cast<double>(bucket) / kSubBuckets);
  }
  static double BucketMidpoint(int bucket) {
    return std::exp2(static_cast<double>(kMinExponent) +
                     (static_cast<double>(bucket) + 0.5) / kSubBuckets);
  }

  const std::vector<uint64_t>& counts() const { return counts_; }

  // Raw state access for lossless serialization (sim/stats_codec.h): the
  // finite-sample sum alongside counts()/total()/infinite() reads the whole
  // state, and FromRaw rebuilds a histogram bit-identical to the serialized
  // one (the double round-trips via its bit pattern, not via re-adding
  // samples — re-adding would re-order the floating-point sum).
  double finite_sum() const { return sum_; }
  static LatencyHistogram FromRaw(std::vector<uint64_t> counts, uint64_t total,
                                  uint64_t infinite, double finite_sum) {
    LatencyHistogram h;
    h.counts_ = std::move(counts);
    h.total_ = total;
    h.infinite_ = infinite;
    h.sum_ = finite_sum;
    return h;
  }

 private:
  void EnsureBuckets() {
    if (counts_.empty()) {
      counts_.assign(kNumBuckets, 0);
    }
  }

  std::vector<uint64_t> counts_;  // empty until the first Add/Merge with data
  uint64_t total_ = 0;
  uint64_t infinite_ = 0;
  double sum_ = 0.0;  // finite samples only
};

// Max/mean ratio of a load vector — "imbalance factor". 1.0 means perfectly balanced.
double ImbalanceFactor(const std::vector<double>& loads);

}  // namespace distcache

#endif  // DISTCACHE_COMMON_STATS_H_
