#include "common/ycsb.h"

#include "common/hash.h"

namespace distcache {

const char* YcsbWorkloadName(YcsbWorkload w) {
  switch (w) {
    case YcsbWorkload::kA:
      return "YCSB-A (50r/50u)";
    case YcsbWorkload::kB:
      return "YCSB-B (95r/5u)";
    case YcsbWorkload::kC:
      return "YCSB-C (100r)";
    case YcsbWorkload::kD:
      return "YCSB-D (95r latest/5i)";
    case YcsbWorkload::kF:
      return "YCSB-F (50r/50rmw)";
  }
  return "?";
}

YcsbMix MixFor(YcsbWorkload w) {
  YcsbMix mix;
  switch (w) {
    case YcsbWorkload::kA:
      mix = {0.5, 0.5, 0.0, 0.0, false};
      break;
    case YcsbWorkload::kB:
      mix = {0.95, 0.05, 0.0, 0.0, false};
      break;
    case YcsbWorkload::kC:
      mix = {1.0, 0.0, 0.0, 0.0, false};
      break;
    case YcsbWorkload::kD:
      mix = {0.95, 0.0, 0.05, 0.0, true};
      break;
    case YcsbWorkload::kF:
      mix = {0.5, 0.0, 0.0, 0.5, false};
      break;
  }
  return mix;
}

double EffectiveWriteRatio(YcsbWorkload w) {
  const YcsbMix mix = MixFor(w);
  // An RMW issues one read and one write; as an op-stream fraction, half of each RMW
  // slot is a write.
  return mix.updates + mix.inserts + 0.5 * mix.read_modify_writes;
}

YcsbGenerator::YcsbGenerator(const Config& config)
    : config_(config),
      dist_(MakeDistribution(config.num_keys, config.zipf_theta)),
      rng_(HashCombine(config.seed, 0x5c5bULL)),
      live_keys_(config.num_keys) {}

uint64_t YcsbGenerator::SampleKey() {
  const uint64_t rank = dist_->Sample(rng_);
  if (!MixFor(config_.workload).latest) {
    return rank;
  }
  // Latest distribution: rank 0 = the most recently inserted key. Keys are dense ids
  // 0..live_keys-1 with larger ids newer.
  return live_keys_ - 1 - (rank % live_keys_);
}

Op YcsbGenerator::Next() {
  if (pending_rmw_put_) {
    pending_rmw_put_ = false;
    return Op{OpType::kPut, pending_rmw_key_};
  }
  const YcsbMix mix = MixFor(config_.workload);
  const double roll = rng_.NextDouble();
  if (roll < mix.reads) {
    return Op{OpType::kGet, SampleKey()};
  }
  if (roll < mix.reads + mix.updates) {
    return Op{OpType::kPut, SampleKey()};
  }
  if (roll < mix.reads + mix.updates + mix.inserts) {
    return Op{OpType::kPut, live_keys_++};  // insert a brand-new key
  }
  // Read-modify-write: read now, write the same key on the next call.
  pending_rmw_key_ = SampleKey();
  pending_rmw_put_ = true;
  return Op{OpType::kGet, pending_rmw_key_};
}

}  // namespace distcache
