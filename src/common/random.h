// Deterministic pseudo-random number generation.
//
// All stochastic components (workload generators, hash-table seeds, event-driven
// simulator) draw from `Rng` so that every experiment in this repository is exactly
// reproducible from a seed. xoshiro256** is used for speed and statistical quality;
// SplitMix64 seeds its state as recommended by the xoshiro authors.
#ifndef DISTCACHE_COMMON_RANDOM_H_
#define DISTCACHE_COMMON_RANDOM_H_

#include <array>
#include <cmath>
#include <cstdint>

namespace distcache {

// xoshiro256** generator. Not thread-safe; use one instance per thread.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed);

  // Next 64 random bits.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0. Uses Lemire's multiply-shift reduction.
  uint64_t NextBounded(uint64_t bound) {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * static_cast<unsigned __int128>(bound)) >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Exponentially distributed with the given rate (mean 1/rate).
  double NextExponential(double rate) {
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) {
      u = 0x1.0p-53;
    }
    return -std::log(1.0 - u) / rate;
  }

  // Bernoulli trial with probability p of returning true.
  bool NextBernoulli(double p) { return NextDouble() < p; }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::array<uint64_t, 4> state_{};
};

}  // namespace distcache

#endif  // DISTCACHE_COMMON_RANDOM_H_
