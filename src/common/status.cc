#include "common/status.h"

namespace distcache {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace distcache
