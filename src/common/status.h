// Minimal error-handling vocabulary. We avoid exceptions in the data path (os-systems
// idiom); fallible operations return Status or StatusOr<T>.
#ifndef DISTCACHE_COMMON_STATUS_H_
#define DISTCACHE_COMMON_STATUS_H_

#include <cstddef>
#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace distcache {

enum class StatusCode {
  kOk,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kResourceExhausted,
  kUnavailable,
  kFailedPrecondition,
};

const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m = "") { return {StatusCode::kNotFound, std::move(m)}; }
  static Status AlreadyExists(std::string m = "") {
    return {StatusCode::kAlreadyExists, std::move(m)};
  }
  static Status InvalidArgument(std::string m = "") {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status ResourceExhausted(std::string m = "") {
    return {StatusCode::kResourceExhausted, std::move(m)};
  }
  static Status Unavailable(std::string m = "") {
    return {StatusCode::kUnavailable, std::move(m)};
  }
  static Status FailedPrecondition(std::string m = "") {
    return {StatusCode::kFailedPrecondition, std::move(m)};
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : data_(std::move(status)) {  // NOLINT: implicit by design
    assert(!std::get<Status>(data_).ok() && "StatusOr from OK status requires a value");
  }
  StatusOr(T value) : data_(std::move(value)) {}  // NOLINT: implicit by design

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> data_;
};

}  // namespace distcache

#endif  // DISTCACHE_COMMON_STATUS_H_
