#include "common/random.h"

#include "common/hash.h"

namespace distcache {

void Rng::Seed(uint64_t seed) {
  // SplitMix64 expansion of the seed, per the xoshiro reference implementation.
  uint64_t s = seed;
  for (auto& word : state_) {
    s += 0x9e3779b97f4a7c15ULL;
    word = Mix64(s);
  }
  // All-zero state is invalid for xoshiro; Mix64 of distinct inputs cannot produce
  // four zeros, but guard anyway for defence in depth.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 1;
  }
}

}  // namespace distcache
