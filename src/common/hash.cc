#include "common/hash.h"

#include "common/random.h"

namespace distcache {

uint64_t HashBytes(const void* data, size_t len, uint64_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

uint32_t Crc32(const void* data, size_t len) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xffffffffu;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

TabulationHash::TabulationHash(uint64_t seed) : seed_(seed) {
  Rng rng(Mix64(seed ^ 0x7ab1e5eedULL));
  for (auto& row : table_) {
    for (auto& cell : row) {
      cell = rng.Next();
    }
  }
}

HashFamily::HashFamily(size_t count, uint64_t seed) {
  functions_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    functions_.emplace_back(HashCombine(seed, Mix64(i + 1)));
  }
}

}  // namespace distcache
