#include "common/hash.h"

#include "common/random.h"

namespace distcache {

uint64_t HashBytes(const void* data, size_t len, uint64_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

TabulationHash::TabulationHash(uint64_t seed) : seed_(seed) {
  Rng rng(Mix64(seed ^ 0x7ab1e5eedULL));
  for (auto& row : table_) {
    for (auto& cell : row) {
      cell = rng.Next();
    }
  }
}

HashFamily::HashFamily(size_t count, uint64_t seed) {
  functions_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    functions_.emplace_back(HashCombine(seed, Mix64(i + 1)));
  }
}

}  // namespace distcache
