// Key-popularity distributions.
//
// The paper's clients "use approximation techniques [10, 31] to quickly generate
// queries according to a Zipf distribution" over 100 million objects (§6.1). We
// implement the same approximation (Gray et al., "Quickly Generating Billion-Record
// Synthetic Databases", SIGMOD'94 — the YCSB zipfian generator), plus a uniform
// distribution, behind a common interface that also exposes the exact pmf needed by
// the fluid cluster simulator and the matching analysis.
#ifndef DISTCACHE_COMMON_ZIPF_H_
#define DISTCACHE_COMMON_ZIPF_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"

namespace distcache {

// A distribution over keys {0, 1, ..., num_keys-1}, ordered hottest-first: key 0 is the
// most popular object, key 1 the second, etc. (Hash-based placement decorrelates rank
// from location, so the rank ordering is without loss of generality.)
class KeyDistribution {
 public:
  virtual ~KeyDistribution() = default;

  // Draws one key.
  virtual uint64_t Sample(Rng& rng) const = 0;

  // Probability of drawing `key`.
  virtual double Pmf(uint64_t key) const = 0;

  // Total probability mass of the k hottest keys (keys 0..k-1).
  virtual double TopMass(uint64_t k) const = 0;

  virtual uint64_t num_keys() const = 0;
  virtual std::string name() const = 0;
};

// Zipf distribution with skew parameter theta in (0, 1]:  p_rank ∝ 1 / rank^theta.
// theta = 0.9 / 0.95 / 0.99 are the paper's workloads; theta = 1.0 (the classic
// harmonic Zipf) is handled via the logarithmic limits of the closed forms.
class ZipfDistribution : public KeyDistribution {
 public:
  ZipfDistribution(uint64_t num_keys, double theta);

  uint64_t Sample(Rng& rng) const override;
  double Pmf(uint64_t key) const override;
  double TopMass(uint64_t k) const override;
  uint64_t num_keys() const override { return num_keys_; }
  std::string name() const override;

  double theta() const { return theta_; }

  // Generalized harmonic number H(n, theta) = sum_{i=1..n} i^-theta, computed with an
  // exact prefix plus an Euler–Maclaurin integral tail (relative error < 1e-6 for the
  // sizes used here).
  static double Zeta(uint64_t n, double theta);

 private:
  uint64_t num_keys_;
  double theta_;
  double zetan_;   // H(num_keys, theta)
  double alpha_;   // 1 / (1 - theta)
  double eta_;     // Gray et al. approximation constant
  double zeta2_;   // H(2, theta)
};

// Uniform distribution over keys.
class UniformDistribution : public KeyDistribution {
 public:
  explicit UniformDistribution(uint64_t num_keys) : num_keys_(num_keys) {}

  uint64_t Sample(Rng& rng) const override { return rng.NextBounded(num_keys_); }
  double Pmf(uint64_t key) const override {
    return key < num_keys_ ? 1.0 / static_cast<double>(num_keys_) : 0.0;
  }
  double TopMass(uint64_t k) const override {
    if (k >= num_keys_) {
      return 1.0;
    }
    return static_cast<double>(k) / static_cast<double>(num_keys_);
  }
  uint64_t num_keys() const override { return num_keys_; }
  std::string name() const override { return "uniform"; }

 private:
  uint64_t num_keys_;
};

// Arbitrary finite distribution given by an explicit pmf (normalized internally).
// Sampling is inverse-CDF via binary search. Used by the theory benches to construct
// workloads that satisfy Theorem 1's precondition max_i p_i · R ≤ T̃/2.
class DiscreteDistribution : public KeyDistribution {
 public:
  explicit DiscreteDistribution(std::vector<double> pmf, std::string name = "discrete");

  uint64_t Sample(Rng& rng) const override;
  double Pmf(uint64_t key) const override {
    return key < pmf_.size() ? pmf_[key] : 0.0;
  }
  double TopMass(uint64_t k) const override;
  uint64_t num_keys() const override { return pmf_.size(); }
  std::string name() const override { return name_; }

  // Table memory (capacity-based): the O(pool) cost the two-level sampler avoids.
  size_t bytes() const {
    return (pmf_.capacity() + cdf_.capacity()) * sizeof(double);
  }

 private:
  std::vector<double> pmf_;
  std::vector<double> cdf_;
  std::string name_;
};

// Zipf(theta) over k keys with every probability clipped at `cap` and the clipped
// mass redistributed over the remaining keys (iterative clip-and-renormalize). This
// is the canonical way to construct a maximally skewed workload that still satisfies
// the theorem's per-object rate bound: cap = T̃ / (2R) gives max_i p_i · R = T̃/2.
std::vector<double> CappedZipfPmf(uint64_t num_keys, double theta, double cap);

// Factory: theta == 0 means uniform, otherwise Zipf(theta). Matches the paper's
// workload naming ("uniform", "zipf-0.9", ...).
std::unique_ptr<KeyDistribution> MakeDistribution(uint64_t num_keys, double theta);

}  // namespace distcache

#endif  // DISTCACHE_COMMON_ZIPF_H_
