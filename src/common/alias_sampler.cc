#include "common/alias_sampler.h"

#include <cmath>
#include <numeric>

#include "common/zipf.h"

namespace distcache {

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  const size_t n = weights.empty() ? 1 : weights.size();
  prob_.assign(n, 1.0);
  alias_.assign(n, 0);
  if (weights.empty()) {
    return;
  }
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) {
    return;
  }

  // Vose's stable two-worklist construction: scale weights so the mean is 1, then
  // repeatedly pair an under-full bucket with an over-full one.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Numerical leftovers are within rounding of 1.0.
  for (uint32_t i : small) {
    prob_[i] = 1.0;
  }
  for (uint32_t i : large) {
    prob_[i] = 1.0;
  }
}

namespace {
// Mirrors zipf.cc: distance from theta == 1 below which the power-law
// antiderivative x^(1-θ)/(1-θ) switches to its logarithmic limit.
constexpr double kThetaOneEps = 1e-6;
}  // namespace

TwoLevelSampler::TwoLevelSampler(uint64_t num_keys, double theta, uint64_t pool,
                                 uint64_t hot_len) {
  if (pool > num_keys) {
    pool = num_keys;
  }
  if (hot_len > pool) {
    hot_len = pool;
  }
  pool_ = static_cast<uint32_t>(pool);
  hot_len_ = static_cast<uint32_t>(hot_len);
  const double th = theta > 0.0 ? theta : 0.0;

  // Level-1 masses: exact per-rank weights for the hot head, Zeta partial-sum
  // differences for the two aggregate buckets — the same normalization
  // ZipfDistribution itself uses, so head probabilities equal the dense pmf.
  std::vector<double> weights(hot_len + 2, 0.0);
  for (uint64_t i = 0; i < hot_len; ++i) {
    weights[i] = std::pow(static_cast<double>(i + 1), -th);
  }
  const double zeta_hot = ZipfDistribution::Zeta(hot_len, th);
  const double zeta_pool =
      pool == hot_len ? zeta_hot : ZipfDistribution::Zeta(pool, th);
  const double zeta_all =
      num_keys == pool ? zeta_pool : ZipfDistribution::Zeta(num_keys, th);
  weights[hot_len] = zeta_pool - zeta_hot;          // cold head
  weights[hot_len + 1] = zeta_all - zeta_pool;      // aggregated tail
  alias_ = AliasSampler(weights);

  // Level-2 inversion constants over x ∈ [a, b) = [hot_len+0.5, pool+0.5).
  cold_a_ = static_cast<double>(hot_len) + 0.5;
  const double cold_b = static_cast<double>(pool) + 0.5;
  theta_one_ = std::abs(1.0 - th) < kThetaOneEps;
  if (theta_one_) {
    cold_log_ratio_ = std::log(cold_b / cold_a_);
  } else {
    const double one_minus = 1.0 - th;
    cold_pow_a_ = std::pow(cold_a_, one_minus);
    cold_pow_span_ = std::pow(cold_b, one_minus) - cold_pow_a_;
    inv_one_minus_theta_ = 1.0 / one_minus;
  }
}

double TwoLevelSampler::cold_pow_ratio(double u) const {
  return cold_a_ * std::exp(u * cold_log_ratio_);
}

double TwoLevelSampler::cold_inverse(double u) const {
  return std::pow(cold_pow_a_ + u * cold_pow_span_, inv_one_minus_theta_);
}

}  // namespace distcache
