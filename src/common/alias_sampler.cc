#include "common/alias_sampler.h"

#include <numeric>

namespace distcache {

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  const size_t n = weights.empty() ? 1 : weights.size();
  prob_.assign(n, 1.0);
  alias_.assign(n, 0);
  if (weights.empty()) {
    return;
  }
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) {
    return;
  }

  // Vose's stable two-worklist construction: scale weights so the mean is 1, then
  // repeatedly pair an under-full bucket with an over-full one.
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<uint32_t> small;
  std::vector<uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const uint32_t s = small.back();
    small.pop_back();
    const uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Numerical leftovers are within rounding of 1.0.
  for (uint32_t i : small) {
    prob_[i] = 1.0;
  }
  for (uint32_t i : large) {
    prob_[i] = 1.0;
  }
}

}  // namespace distcache
