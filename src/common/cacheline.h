// Cache-line layout helpers for the multi-core hot path.
//
// The sharded engine's scaling rule (docs/ARCHITECTURE.md "hot-path rules") is
// that no two worker threads may write the same cache line. Per-shard state is
// heap-allocated per shard, but the allocator is free to pack two shards'
// arrays into one line unless told otherwise — these helpers make the padding
// explicit:
//
//   * kCacheLineSize       — the alignment unit (64B on every target we build).
//   * CacheAlignedAllocator — a std::vector allocator that starts every
//     allocation on a line boundary and rounds its size up to whole lines, so a
//     hot per-thread array can never share a line with a neighbouring
//     allocation (the classic malloc false-sharing trap).
//   * CacheAlignedVector    — shorthand for the padded vector.
#ifndef DISTCACHE_COMMON_CACHELINE_H_
#define DISTCACHE_COMMON_CACHELINE_H_

#include <cstddef>
#include <new>
#include <vector>

namespace distcache {

inline constexpr std::size_t kCacheLineSize = 64;

template <typename T>
struct CacheAlignedAllocator {
  using value_type = T;

  CacheAlignedAllocator() = default;
  template <typename U>
  CacheAlignedAllocator(const CacheAlignedAllocator<U>&) {}  // NOLINT

  T* allocate(std::size_t n) {
    const std::size_t bytes =
        (n * sizeof(T) + kCacheLineSize - 1) / kCacheLineSize * kCacheLineSize;
    return static_cast<T*>(
        ::operator new(bytes, std::align_val_t(kCacheLineSize)));
  }
  void deallocate(T* p, std::size_t) {
    ::operator delete(p, std::align_val_t(kCacheLineSize));
  }

  bool operator==(const CacheAlignedAllocator&) const { return true; }
  bool operator!=(const CacheAlignedAllocator&) const { return false; }
};

template <typename T>
using CacheAlignedVector = std::vector<T, CacheAlignedAllocator<T>>;

}  // namespace distcache

#endif  // DISTCACHE_COMMON_CACHELINE_H_
