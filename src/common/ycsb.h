// YCSB core workloads (Cooper et al., SoCC'10 — the paper's benchmarking reference
// [6]). Standard mixes over a Zipf-popular keyspace:
//   A: 50% reads / 50% updates        B: 95% reads / 5% updates
//   C: 100% reads                     D: 95% reads of the *latest* keys / 5% inserts
//   F: 50% reads / 50% read-modify-write
// (E, short scans, is omitted: the switch cache serves point queries only.)
#ifndef DISTCACHE_COMMON_YCSB_H_
#define DISTCACHE_COMMON_YCSB_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/random.h"
#include "common/workload.h"
#include "common/zipf.h"

namespace distcache {

enum class YcsbWorkload : uint8_t { kA, kB, kC, kD, kF };

const char* YcsbWorkloadName(YcsbWorkload w);

// Proportions of each op class for a workload (reads + updates + inserts + rmw = 1).
struct YcsbMix {
  double reads = 1.0;
  double updates = 0.0;
  double inserts = 0.0;
  double read_modify_writes = 0.0;
  bool latest = false;  // D: popularity follows recency instead of static rank
};

YcsbMix MixFor(YcsbWorkload w);

// Effective write fraction of a workload (updates + inserts + RMW writes), which is
// what the coherence protocol sees — used to map YCSB mixes onto the cluster
// simulator's write_ratio.
double EffectiveWriteRatio(YcsbWorkload w);

class YcsbGenerator {
 public:
  struct Config {
    YcsbWorkload workload = YcsbWorkload::kC;
    uint64_t num_keys = 1'000'000;  // preloaded record count
    double zipf_theta = 0.99;
    uint64_t seed = 1;
  };

  explicit YcsbGenerator(const Config& config);

  // Next operation. Read-modify-write surfaces as a kGet followed by a kPut to the
  // same key on the subsequent call (the YCSB client does exactly that).
  Op Next();

  // D inserts grow the live keyspace; reads under `latest` target recent inserts.
  uint64_t live_keys() const { return live_keys_; }
  const Config& config() const { return config_; }

 private:
  uint64_t SampleKey();

  Config config_;
  std::unique_ptr<KeyDistribution> dist_;
  Rng rng_;
  uint64_t live_keys_;
  bool pending_rmw_put_ = false;
  uint64_t pending_rmw_key_ = 0;
};

}  // namespace distcache

#endif  // DISTCACHE_COMMON_YCSB_H_
