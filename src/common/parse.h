// Strict numeric parsing shared by the CLI flag validators (tools/flags.h) and
// the workload phase-list parser (common/workload.cc). Stricter than bare
// strtoull/strtod on purpose: the whole string must be the number — no trailing
// garbage, no leading whitespace (strtoull would skip it and silently wrap
// " -5" to a huge uint64), no NaN/inf for doubles. One implementation so the
// two validation paths cannot drift apart.
#ifndef DISTCACHE_COMMON_PARSE_H_
#define DISTCACHE_COMMON_PARSE_H_

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>

namespace distcache {

// Parses `text` as a non-negative integer. The first character must be a digit
// (rejects "-5", " -5", "+3", ""); the whole string must be consumed; values
// past uint64 range are rejected rather than saturated (strtoull would silently
// return ULLONG_MAX with errno=ERANGE).
inline bool ParseStrictUint(const std::string& text, uint64_t* out) {
  if (text.empty() || text[0] < '0' || text[0] > '9') {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  *out = std::strtoull(text.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && errno != ERANGE;
}

// Parses `text` as a finite double. Leading whitespace and trailing garbage are
// rejected; NaN and infinities are rejected (they pass strtod but poison every
// downstream comparison). Range checks are the caller's job.
inline bool ParseStrictDouble(const std::string& text, double* out) {
  if (text.empty() || text[0] == ' ' || text[0] == '\t') {
    return false;
  }
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && std::isfinite(*out);
}

}  // namespace distcache

#endif  // DISTCACHE_COMMON_PARSE_H_
