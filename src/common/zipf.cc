#include "common/zipf.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace distcache {
namespace {

// Number of leading terms summed exactly before switching to the integral tail.
constexpr uint64_t kExactPrefix = 10000;

// Distance from theta == 1 below which the closed forms switch to their
// logarithmic limits: the integral tail and the Gray et al. constant alpha both
// divide by (1 - theta), so theta = 1.0 exactly would produce inf/NaN ranks.
constexpr double kThetaOneEps = 1e-6;

}  // namespace

double ZipfDistribution::Zeta(uint64_t n, double theta) {
  const uint64_t prefix = n < kExactPrefix ? n : kExactPrefix;
  double sum = 0.0;
  for (uint64_t i = 1; i <= prefix; ++i) {
    sum += std::pow(static_cast<double>(i), -theta);
  }
  if (n > prefix) {
    // Midpoint-rule integral tail: sum_{i=prefix+1..n} i^-theta ≈
    // ∫_{prefix+0.5}^{n+0.5} x^-theta dx. The midpoint correction makes the relative
    // error negligible for theta <= 1 at these scales. At theta ≈ 1 the antiderivative
    // (x^{1-θ})/(1-θ) degenerates; its limit is ln(x).
    const double a = static_cast<double>(prefix) + 0.5;
    const double b = static_cast<double>(n) + 0.5;
    if (std::abs(1.0 - theta) < kThetaOneEps) {
      sum += std::log(b) - std::log(a);
    } else {
      sum += (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) / (1.0 - theta);
    }
  }
  return sum;
}

ZipfDistribution::ZipfDistribution(uint64_t num_keys, double theta)
    : num_keys_(num_keys), theta_(theta) {
  zetan_ = Zeta(num_keys_, theta_);
  zeta2_ = Zeta(2, theta_);
  // Gray et al.'s sampling constants divide by (1 - theta); evaluate them at a
  // guarded skew just below 1 when theta == 1. The rank formula
  // n·(1 - eta(1-u))^alpha then converges to its smooth n·exp(-c(1-u)) limit, so
  // sampled ranks stay finite and in range.
  const double guarded =
      std::abs(1.0 - theta_) < kThetaOneEps ? 1.0 - kThetaOneEps : theta_;
  alpha_ = 1.0 / (1.0 - guarded);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(num_keys_), 1.0 - guarded)) /
         (1.0 - zeta2_ / zetan_);
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  // Gray et al. / YCSB approximate inverse-CDF sampling.
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;  // rank 1
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;  // rank 2
  }
  const uint64_t rank =
      1 + static_cast<uint64_t>(static_cast<double>(num_keys_) *
                                std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return (rank >= num_keys_ ? num_keys_ - 1 : rank - 1) + 0;
}

double ZipfDistribution::Pmf(uint64_t key) const {
  if (key >= num_keys_) {
    return 0.0;
  }
  return std::pow(static_cast<double>(key + 1), -theta_) / zetan_;
}

double ZipfDistribution::TopMass(uint64_t k) const {
  if (k >= num_keys_) {
    return 1.0;
  }
  return Zeta(k, theta_) / zetan_;
}

std::string ZipfDistribution::name() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "zipf-%.2f", theta_);
  return buf;
}

DiscreteDistribution::DiscreteDistribution(std::vector<double> pmf, std::string name)
    : pmf_(std::move(pmf)), name_(std::move(name)) {
  double sum = 0.0;
  for (double p : pmf_) {
    sum += p;
  }
  if (sum > 0.0) {
    for (double& p : pmf_) {
      p /= sum;
    }
  } else if (!pmf_.empty()) {
    // Degenerate all-zero pmf: without this the rounding guard below would set
    // cdf_.back() = 1.0 and silently dump 100% of the mass on the last key. Fall
    // back to uniform, which at least keeps Sample()/Pmf()/TopMass() consistent.
    pmf_.assign(pmf_.size(), 1.0 / static_cast<double>(pmf_.size()));
  }
  cdf_.resize(pmf_.size());
  double acc = 0.0;
  for (size_t i = 0; i < pmf_.size(); ++i) {
    acc += pmf_[i];
    cdf_[i] = acc;
  }
  if (!cdf_.empty()) {
    cdf_.back() = 1.0;  // guard against rounding
  }
}

uint64_t DiscreteDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

double DiscreteDistribution::TopMass(uint64_t k) const {
  if (k == 0) {
    return 0.0;
  }
  if (k >= cdf_.size()) {
    return 1.0;
  }
  return cdf_[k - 1];
}

std::vector<double> CappedZipfPmf(uint64_t num_keys, double theta, double cap) {
  // Feasibility: a pmf over n keys cannot have every entry below 1/n, so a cap
  // under that floor is unsatisfiable — the clip-and-renormalize loop below would
  // run its 64 rounds and silently return a cap-violating pmf. The closest
  // satisfiable answer is exactly uniform; return it directly.
  const double floor_cap = 1.0 / static_cast<double>(num_keys);
  if (cap <= floor_cap * (1.0 + 1e-12)) {
    return std::vector<double>(num_keys, floor_cap);
  }
  ZipfDistribution zipf(num_keys, theta);
  std::vector<double> pmf(num_keys);
  for (uint64_t i = 0; i < num_keys; ++i) {
    pmf[i] = zipf.Pmf(i);
  }
  // Clip-and-renormalize until the cap holds; redistribution converges geometrically
  // since each round moves the clipped surplus into the (large) unclipped tail.
  for (int round = 0; round < 64; ++round) {
    double sum = 0.0;
    double max_p = 0.0;
    for (double& p : pmf) {
      p = std::min(p, cap);
      sum += p;
    }
    for (double& p : pmf) {
      p /= sum;
      max_p = std::max(max_p, p);
    }
    if (max_p <= cap * (1.0 + 1e-12)) {
      break;
    }
  }
  return pmf;
}

std::unique_ptr<KeyDistribution> MakeDistribution(uint64_t num_keys, double theta) {
  if (theta <= 0.0) {
    return std::make_unique<UniformDistribution>(num_keys);
  }
  return std::make_unique<ZipfDistribution>(num_keys, theta);
}

}  // namespace distcache
