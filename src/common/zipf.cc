#include "common/zipf.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace distcache {
namespace {

// Number of leading terms summed exactly before switching to the integral tail.
constexpr uint64_t kExactPrefix = 10000;

}  // namespace

double ZipfDistribution::Zeta(uint64_t n, double theta) {
  const uint64_t prefix = n < kExactPrefix ? n : kExactPrefix;
  double sum = 0.0;
  for (uint64_t i = 1; i <= prefix; ++i) {
    sum += std::pow(static_cast<double>(i), -theta);
  }
  if (n > prefix) {
    // Midpoint-rule integral tail: sum_{i=prefix+1..n} i^-theta ≈
    // ∫_{prefix+0.5}^{n+0.5} x^-theta dx. The midpoint correction makes the relative
    // error negligible for theta < 1 at these scales.
    const double a = static_cast<double>(prefix) + 0.5;
    const double b = static_cast<double>(n) + 0.5;
    sum += (std::pow(b, 1.0 - theta) - std::pow(a, 1.0 - theta)) / (1.0 - theta);
  }
  return sum;
}

ZipfDistribution::ZipfDistribution(uint64_t num_keys, double theta)
    : num_keys_(num_keys), theta_(theta) {
  zetan_ = Zeta(num_keys_, theta_);
  zeta2_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(num_keys_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  // Gray et al. / YCSB approximate inverse-CDF sampling.
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;  // rank 1
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;  // rank 2
  }
  const uint64_t rank =
      1 + static_cast<uint64_t>(static_cast<double>(num_keys_) *
                                std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return (rank >= num_keys_ ? num_keys_ - 1 : rank - 1) + 0;
}

double ZipfDistribution::Pmf(uint64_t key) const {
  if (key >= num_keys_) {
    return 0.0;
  }
  return std::pow(static_cast<double>(key + 1), -theta_) / zetan_;
}

double ZipfDistribution::TopMass(uint64_t k) const {
  if (k >= num_keys_) {
    return 1.0;
  }
  return Zeta(k, theta_) / zetan_;
}

std::string ZipfDistribution::name() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "zipf-%.2f", theta_);
  return buf;
}

DiscreteDistribution::DiscreteDistribution(std::vector<double> pmf, std::string name)
    : pmf_(std::move(pmf)), name_(std::move(name)) {
  double sum = 0.0;
  for (double p : pmf_) {
    sum += p;
  }
  if (sum > 0.0) {
    for (double& p : pmf_) {
      p /= sum;
    }
  }
  cdf_.resize(pmf_.size());
  double acc = 0.0;
  for (size_t i = 0; i < pmf_.size(); ++i) {
    acc += pmf_[i];
    cdf_[i] = acc;
  }
  if (!cdf_.empty()) {
    cdf_.back() = 1.0;  // guard against rounding
  }
}

uint64_t DiscreteDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

double DiscreteDistribution::TopMass(uint64_t k) const {
  if (k == 0) {
    return 0.0;
  }
  if (k >= cdf_.size()) {
    return 1.0;
  }
  return cdf_[k - 1];
}

std::vector<double> CappedZipfPmf(uint64_t num_keys, double theta, double cap) {
  ZipfDistribution zipf(num_keys, theta);
  std::vector<double> pmf(num_keys);
  for (uint64_t i = 0; i < num_keys; ++i) {
    pmf[i] = zipf.Pmf(i);
  }
  // Clip-and-renormalize until the cap holds; redistribution converges geometrically
  // since each round moves the clipped surplus into the (large) unclipped tail.
  for (int round = 0; round < 64; ++round) {
    double sum = 0.0;
    double max_p = 0.0;
    for (double& p : pmf) {
      p = std::min(p, cap);
      sum += p;
    }
    for (double& p : pmf) {
      p /= sum;
      max_p = std::max(max_p, p);
    }
    if (max_p <= cap * (1.0 + 1e-12)) {
      break;
    }
  }
  return pmf;
}

std::unique_ptr<KeyDistribution> MakeDistribution(uint64_t num_keys, double theta) {
  if (theta <= 0.0) {
    return std::make_unique<UniformDistribution>(num_keys);
  }
  return std::make_unique<ZipfDistribution>(num_keys, theta);
}

}  // namespace distcache
