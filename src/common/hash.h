// Hashing primitives for DistCache.
//
// DistCache's core idea (paper §3.1) is to partition the hot objects between cache
// layers with *independent* hash functions h0(x), h1(x). The analysis (appendix A.2)
// requires the two functions to behave like independent random functions so that the
// object→cache-node bipartite graph has the expansion property. We provide:
//
//  * Mix64           — a strong 64-bit finalizer (SplitMix64 / Murmur3-style avalanche),
//                      used for key placement and generic hashing.
//  * TabulationHash  — Zobrist/tabulation hashing: 3-independent and, per Pătraşcu &
//                      Thorup, behaves like a fully random function for load-balancing
//                      style applications. Different seeds yield independent functions.
//  * HashFamily      — a named family {h_0, h_1, ..., h_{L-1}} of independent
//                      TabulationHash instances, one per cache layer.
#ifndef DISTCACHE_COMMON_HASH_H_
#define DISTCACHE_COMMON_HASH_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace distcache {

// SplitMix64 finalizer. Bijective on 64-bit integers; excellent avalanche behaviour.
constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Combines two 64-bit hashes (boost::hash_combine style, 64-bit constants).
constexpr uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

// Hashes an arbitrary byte string (FNV-1a core + Mix64 finalizer).
uint64_t HashBytes(const void* data, size_t len, uint64_t seed = 0);

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte range.
// Used as the integrity check on multiproc stats blobs: unlike the avalanche
// hashes above it is the standard wire checksum, so a corrupted shared-memory
// region is detected with well-understood error characteristics.
uint32_t Crc32(const void* data, size_t len);

// Simple tabulation hashing over the 8 bytes of a 64-bit key.
//
// Each of the 8 key bytes indexes a 256-entry table of random 64-bit words; the hash is
// the XOR of the selected words. Tabulation hashing is 3-independent and is known to
// give full-randomness-like guarantees for cuckoo hashing, linear probing and chaining
// (Pătraşcu–Thorup, "The Power of Simple Tabulation Hashing"). Two instances seeded
// differently are independent functions — exactly what DistCache's h0/h1 need.
class TabulationHash {
 public:
  explicit TabulationHash(uint64_t seed);

  uint64_t operator()(uint64_t key) const {
    uint64_t h = 0;
    for (int i = 0; i < 8; ++i) {
      h ^= table_[i][static_cast<uint8_t>(key >> (8 * i))];
    }
    return h;
  }

  uint64_t seed() const { return seed_; }

 private:
  uint64_t seed_;
  std::array<std::array<uint64_t, 256>, 8> table_;
};

// A family of independent hash functions {h_0 .. h_{layers-1}}, one per cache layer.
// h_i(key) % buckets gives the cache node index of `key` within layer i.
class HashFamily {
 public:
  // Creates `count` independent functions derived from `seed`.
  HashFamily(size_t count, uint64_t seed);

  // Value of h_i(key).
  uint64_t Hash(size_t i, uint64_t key) const { return functions_[i](key); }

  // Bucket (cache-node index) of `key` in layer i with `buckets` nodes.
  size_t Bucket(size_t i, uint64_t key, size_t buckets) const {
    return static_cast<size_t>(functions_[i](key) % buckets);
  }

  size_t size() const { return functions_.size(); }

 private:
  std::vector<TabulationHash> functions_;
};

}  // namespace distcache

#endif  // DISTCACHE_COMMON_HASH_H_
