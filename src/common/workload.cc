#include "common/workload.h"

#include "common/hash.h"

namespace distcache {

WorkloadGenerator::WorkloadGenerator(const WorkloadConfig& config)
    : config_(config),
      dist_(MakeDistribution(config.num_keys, config.zipf_theta)),
      rng_(Mix64(config.seed ^ 0x3081c10adULL)) {}

Op WorkloadGenerator::Next() {
  Op op;
  op.type = rng_.NextBernoulli(config_.write_ratio) ? OpType::kPut : OpType::kGet;
  op.key = dist_->Sample(rng_);
  return op;
}

PopularityVector BuildPopularityVector(const KeyDistribution& dist, uint64_t top_k) {
  PopularityVector pv;
  const uint64_t k = top_k < dist.num_keys() ? top_k : dist.num_keys();
  pv.head.resize(k);
  double sum = 0.0;
  for (uint64_t i = 0; i < k; ++i) {
    pv.head[i] = dist.Pmf(i);
    sum += pv.head[i];
  }
  pv.tail_mass = sum >= 1.0 ? 0.0 : 1.0 - sum;
  return pv;
}

}  // namespace distcache
