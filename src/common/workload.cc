#include "common/workload.h"

#include <algorithm>

#include "common/hash.h"
#include "common/parse.h"

namespace distcache {

void SortPhasesByStart(std::vector<WorkloadPhase>& phases) {
  std::stable_sort(phases.begin(), phases.end(),
                   [](const WorkloadPhase& a, const WorkloadPhase& b) {
                     return a.start_request < b.start_request;
                   });
}

namespace {

// Splits on `sep`, keeping empty fields (so "0::0.1" is detectably malformed).
std::vector<std::string> Split(const std::string& text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

bool ParsePhaseList(const std::string& text, std::vector<WorkloadPhase>* phases,
                    std::string* error) {
  phases->clear();
  for (const std::string& entry : Split(text, ',')) {
    const std::vector<std::string> fields = Split(entry, ':');
    if (fields.size() < 3 || fields.size() > 4) {
      *error = "phase '" + entry + "': want start:theta:write_ratio[:hot_shift]";
      return false;
    }
    WorkloadPhase phase;
    if (!ParseStrictUint(fields[0], &phase.start_request)) {
      *error = "phase '" + entry + "': bad start_request '" + fields[0] + "'";
      return false;
    }
    if (!ParseStrictDouble(fields[1], &phase.zipf_theta) || phase.zipf_theta < 0.0 ||
        phase.zipf_theta > 1.0) {
      *error = "phase '" + entry + "': theta '" + fields[1] +
               "' must be a finite value in [0, 1]";
      return false;
    }
    if (!ParseStrictDouble(fields[2], &phase.write_ratio) ||
        phase.write_ratio < 0.0 || phase.write_ratio > 1.0) {
      *error = "phase '" + entry + "': write ratio '" + fields[2] +
               "' must be a finite value in [0, 1]";
      return false;
    }
    if (fields.size() == 4 && !ParseStrictUint(fields[3], &phase.hot_shift)) {
      *error = "phase '" + entry + "': bad hot_shift '" + fields[3] + "'";
      return false;
    }
    phases->push_back(phase);
  }
  if (phases->empty()) {
    *error = "empty phase list";
    return false;
  }
  SortPhasesByStart(*phases);
  return true;
}

bool ParseBurstSpec(const std::string& text, ArrivalConfig* arrival,
                    std::string* error) {
  const std::vector<std::string> fields = Split(text, ':');
  if (fields.size() != 3) {
    *error = "burst '" + text + "': want factor:every:duration";
    return false;
  }
  double factor = 0.0;
  double every = 0.0;
  double duration = 0.0;
  if (!ParseStrictDouble(fields[0], &factor) || factor < 1.0) {
    *error = "burst '" + text + "': factor '" + fields[0] +
             "' must be a finite value >= 1";
    return false;
  }
  if (!ParseStrictDouble(fields[1], &every) || every <= 0.0) {
    *error = "burst '" + text + "': period '" + fields[1] +
             "' must be a positive finite value";
    return false;
  }
  if (!ParseStrictDouble(fields[2], &duration) || duration <= 0.0 ||
      duration > every) {
    *error = "burst '" + text + "': duration '" + fields[2] +
             "' must be a positive finite value <= the period";
    return false;
  }
  arrival->burst_factor = factor;
  arrival->burst_every = every;
  arrival->burst_duration = duration;
  return true;
}

WorkloadGenerator::WorkloadGenerator(const WorkloadConfig& config)
    : config_(config),
      dist_(MakeDistribution(config.num_keys, config.zipf_theta)),
      rng_(Mix64(config.seed ^ 0x3081c10adULL)),
      write_ratio_(config.write_ratio),
      theta_(config.zipf_theta) {
  SortPhasesByStart(config_.phases);
}

void WorkloadGenerator::ApplyPhase(const WorkloadPhase& phase) {
  if (phase.zipf_theta != theta_) {
    theta_ = phase.zipf_theta;
    dist_ = MakeDistribution(config_.num_keys, theta_);
  }
  write_ratio_ = phase.write_ratio;
  hot_shift_ = phase.hot_shift;
}

Op WorkloadGenerator::Next() {
  while (next_phase_ < config_.phases.size() &&
         config_.phases[next_phase_].start_request <= drawn_) {
    ApplyPhase(config_.phases[next_phase_++]);
  }
  ++drawn_;
  Op op;
  op.type = rng_.NextBernoulli(write_ratio_) ? OpType::kPut : OpType::kGet;
  op.key = KeyOfRank(dist_->Sample(rng_), hot_shift_, config_.num_keys);
  return op;
}

PopularityVector BuildPopularityVector(const KeyDistribution& dist, uint64_t top_k) {
  PopularityVector pv;
  const uint64_t k = top_k < dist.num_keys() ? top_k : dist.num_keys();
  pv.head.resize(k);
  double sum = 0.0;
  for (uint64_t i = 0; i < k; ++i) {
    pv.head[i] = dist.Pmf(i);
    sum += pv.head[i];
  }
  pv.tail_mass = sum >= 1.0 ? 0.0 : 1.0 - sum;
  return pv;
}

}  // namespace distcache
