#include "common/stats.h"

namespace distcache {

double Histogram::Percentile(double p) const {
  if (total_ == 0) {
    return 0.0;
  }
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto target =
      static_cast<uint64_t>(clamped / 100.0 * static_cast<double>(total_ - 1));
  uint64_t seen = 0;
  const size_t bins = counts_.size() - 1;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen > target) {
      if (i == bins) {
        return upper_;
      }
      return static_cast<double>(i) * upper_ / static_cast<double>(bins);
    }
  }
  return upper_;
}

double ImbalanceFactor(const std::vector<double>& loads) {
  if (loads.empty()) {
    return 1.0;
  }
  double sum = 0.0;
  double max = 0.0;
  for (double x : loads) {
    sum += x;
    max = std::max(max, x);
  }
  const double mean = sum / static_cast<double>(loads.size());
  return mean > 0.0 ? max / mean : 1.0;
}

}  // namespace distcache
