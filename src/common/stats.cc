#include "common/stats.h"

namespace distcache {

double Histogram::Percentile(double p) const {
  if (total_ == 0) {
    return 0.0;
  }
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto target =
      static_cast<uint64_t>(clamped / 100.0 * static_cast<double>(total_ - 1));
  uint64_t seen = 0;
  const size_t bins = counts_.size() - 1;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen > target) {
      if (i == bins) {
        return upper_;
      }
      return static_cast<double>(i) * upper_ / static_cast<double>(bins);
    }
  }
  return upper_;
}

int LatencyHistogram::BucketOf(double value) {
  if (!(value > 0.0)) {
    return 0;  // non-positive (or NaN): the smallest representable bucket
  }
  const double pos = (std::log2(value) - static_cast<double>(kMinExponent)) *
                     static_cast<double>(kSubBuckets);
  if (pos < 0.0) {
    return 0;
  }
  const int bucket = static_cast<int>(pos);
  return bucket >= kNumBuckets ? kNumBuckets - 1 : bucket;
}

void LatencyHistogram::Add(double value, uint64_t count) {
  if (count == 0) {
    return;
  }
  if (std::isinf(value)) {
    AddInfinite(count);
    return;
  }
  EnsureBuckets();
  counts_[static_cast<size_t>(BucketOf(value))] += count;
  total_ += count;
  sum_ += value * static_cast<double>(count);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  total_ += other.total_;
  infinite_ += other.infinite_;
  sum_ += other.sum_;
  if (other.counts_.empty()) {
    return;
  }
  EnsureBuckets();
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
}

LatencyHistogram LatencyHistogram::DeltaSince(const LatencyHistogram& prev) const {
  LatencyHistogram delta;
  delta.total_ = total_ - prev.total_;
  delta.infinite_ = infinite_ - prev.infinite_;
  delta.sum_ = sum_ - prev.sum_;
  if (!counts_.empty()) {
    delta.EnsureBuckets();
    for (size_t i = 0; i < counts_.size(); ++i) {
      delta.counts_[i] =
          counts_[i] - (prev.counts_.empty() ? 0 : prev.counts_[i]);
    }
  }
  return delta;
}

double LatencyHistogram::Percentile(double p) const {
  if (total_ == 0) {
    return 0.0;
  }
  const double clamped = std::clamp(p, 0.0, 100.0);
  const auto target =
      static_cast<uint64_t>(clamped / 100.0 * static_cast<double>(total_ - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen > target) {
      return BucketMidpoint(static_cast<int>(i));
    }
  }
  // The rank lands past every finite bucket: saturated mass.
  return std::numeric_limits<double>::infinity();
}

double ImbalanceFactor(const std::vector<double>& loads) {
  if (loads.empty()) {
    return 1.0;
  }
  double sum = 0.0;
  double max = 0.0;
  for (double x : loads) {
    sum += x;
    max = std::max(max, x);
  }
  const double mean = sum / static_cast<double>(loads.size());
  return mean > 0.0 ? max / mean : 1.0;
}

}  // namespace distcache
