// Walker/Vose alias-method sampler over a finite pmf: O(n) build, O(1) per draw.
//
// This is the "amortized Zipf sampling" half of the batched request hot path: the
// sequential reference backend draws keys by inverse-CDF binary search (O(log n) with
// a data-dependent branch per probe), while the sharded backend builds one alias
// table over the head-key pmf (plus an aggregated tail bucket) and then samples each
// request with two table reads — the build cost is amortized over millions of draws.
#ifndef DISTCACHE_COMMON_ALIAS_SAMPLER_H_
#define DISTCACHE_COMMON_ALIAS_SAMPLER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"

namespace distcache {

class AliasSampler {
 public:
  // Builds the table from (unnormalized, non-negative) weights. Empty or all-zero
  // weight vectors yield a sampler that always returns 0.
  explicit AliasSampler(const std::vector<double>& weights);
  AliasSampler() : AliasSampler(std::vector<double>{}) {}

  // Draws one bucket index, distributed proportionally to the build weights.
  uint32_t Sample(Rng& rng) const {
    const uint32_t i = static_cast<uint32_t>(rng.NextBounded(prob_.size()));
    return rng.NextDouble() < prob_[i] ? i : alias_[i];
  }

  // Amortized batch draw: fills out[0..n) with i.i.d. samples.
  void SampleBatch(Rng& rng, uint32_t* out, size_t n) const {
    for (size_t i = 0; i < n; ++i) {
      out[i] = Sample(rng);
    }
  }

  size_t num_buckets() const { return prob_.size(); }

  // Table memory (capacity-based: what the process actually holds).
  size_t bytes() const {
    return prob_.capacity() * sizeof(double) +
           alias_.capacity() * sizeof(uint32_t);
  }

 private:
  std::vector<double> prob_;    // acceptance threshold per bucket
  std::vector<uint32_t> alias_; // fallback bucket
};

// Two-level capped-Zipf sampler: O(hot_len) memory instead of O(pool).
//
// The dense samplers above materialize one bucket per candidate rank (the
// pool), which at 100M-key scale costs ~100 MB per process. This sampler keeps
// the exact alias treatment only for the hot head — the ranks that actually
// carry routing state — and collapses the rest into two aggregate buckets
// resolved in closed form:
//
//   level 1: alias table over [0, hot_len) individual ranks, plus one
//            "cold head" bucket ([hot_len, pool)) and one tail bucket
//            ([pool, num_keys), reported as the aggregated bucket id `pool`).
//   level 2: a cold-head hit picks its rank by continuous power-law
//            inverse-CDF: x = ((1-u)·a^(1-θ) + u·b^(1-θ))^(1/(1-θ)) over
//            x ∈ [hot_len+1, pool+1), rank = ⌊x⌋-1 (θ→1 limit: a·(b/a)^u).
//
// Bucket masses come from the same Zeta partial sums ZipfDistribution uses for
// its normalization, so head probabilities match the dense pmf exactly; the
// cold-head *conditional* distribution is the continuous approximation of the
// discrete power law (relative error ~θ/2r at rank r, negligible beyond the
// default 64K head). θ = 0 degenerates to exact uniform in both levels.
//
// The draw order differs from the dense samplers (two draws, plus one more on
// a cold-head hit), so this is an opt-in RNG stream: engines only use it under
// SimBackendConfig::two_level_sampling, and it is validated differentially,
// not against the closed-loop goldens.
class TwoLevelSampler {
 public:
  // Default hot-head width: wide enough that the continuous cold-head
  // approximation is far below any measurable tolerance, small enough that a
  // per-process rebuild is microseconds and kilobytes.
  static constexpr uint64_t kDefaultHotRanks = 1u << 16;

  // Samples bucket ids in [0, pool]: rank i < pool individually, `pool` as the
  // aggregated uncached-tail bucket — the same id space as the dense
  // head+tail samplers. `theta` <= 0 means uniform.
  TwoLevelSampler(uint64_t num_keys, double theta, uint64_t pool,
                  uint64_t hot_len = kDefaultHotRanks);

  uint32_t Sample(Rng& rng) const {
    const uint32_t i = alias_.Sample(rng);
    if (__builtin_expect(i < hot_len_, 1)) {
      return i;
    }
    if (i == hot_len_) {  // cold head: closed-form level 2
      if (__builtin_expect(pool_ == hot_len_, 0)) {
        return pool_;  // degenerate: zero-weight cold bucket surfaced by rounding
      }
      const double u = rng.NextDouble();
      const double x = theta_one_ ? cold_pow_ratio(u) : cold_inverse(u);
      // x lands in [r + 0.5, r + 1.5) for rank r (midpoint-centered windows,
      // matching Zeta's midpoint integral); round-half-up, then clamp the
      // floating-point edges back into the cold range.
      uint32_t rank = static_cast<uint32_t>(x + 0.5) - 1;
      if (rank < hot_len_) {
        rank = hot_len_;
      } else if (rank >= pool_) {
        rank = pool_ - 1;
      }
      return rank;
    }
    return pool_;  // aggregated tail bucket
  }

  void SampleBatch(Rng& rng, uint32_t* out, size_t n) const {
    for (size_t i = 0; i < n; ++i) {
      out[i] = Sample(rng);
    }
  }

  uint64_t hot_len() const { return hot_len_; }
  size_t bytes() const { return alias_.bytes(); }

 private:
  double cold_pow_ratio(double u) const;  // a·(b/a)^u path, θ ≈ 1
  double cold_inverse(double u) const;    // general power-law inversion

  AliasSampler alias_;
  uint32_t hot_len_ = 0;
  uint32_t pool_ = 0;
  bool theta_one_ = false;
  // Precomputed inversion constants over x ∈ [a, b) = [hot_len+0.5, pool+0.5).
  double cold_a_ = 1.0;
  double cold_log_ratio_ = 0.0;      // ln(b/a), θ ≈ 1 path
  double cold_pow_a_ = 0.0;          // a^(1-θ)
  double cold_pow_span_ = 0.0;       // b^(1-θ) - a^(1-θ)
  double inv_one_minus_theta_ = 1.0;
};

}  // namespace distcache

#endif  // DISTCACHE_COMMON_ALIAS_SAMPLER_H_
