// Walker/Vose alias-method sampler over a finite pmf: O(n) build, O(1) per draw.
//
// This is the "amortized Zipf sampling" half of the batched request hot path: the
// sequential reference backend draws keys by inverse-CDF binary search (O(log n) with
// a data-dependent branch per probe), while the sharded backend builds one alias
// table over the head-key pmf (plus an aggregated tail bucket) and then samples each
// request with two table reads — the build cost is amortized over millions of draws.
#ifndef DISTCACHE_COMMON_ALIAS_SAMPLER_H_
#define DISTCACHE_COMMON_ALIAS_SAMPLER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/random.h"

namespace distcache {

class AliasSampler {
 public:
  // Builds the table from (unnormalized, non-negative) weights. Empty or all-zero
  // weight vectors yield a sampler that always returns 0.
  explicit AliasSampler(const std::vector<double>& weights);

  // Draws one bucket index, distributed proportionally to the build weights.
  uint32_t Sample(Rng& rng) const {
    const uint32_t i = static_cast<uint32_t>(rng.NextBounded(prob_.size()));
    return rng.NextDouble() < prob_[i] ? i : alias_[i];
  }

  // Amortized batch draw: fills out[0..n) with i.i.d. samples.
  void SampleBatch(Rng& rng, uint32_t* out, size_t n) const {
    for (size_t i = 0; i < n; ++i) {
      out[i] = Sample(rng);
    }
  }

  size_t num_buckets() const { return prob_.size(); }

 private:
  std::vector<double> prob_;    // acceptance threshold per bucket
  std::vector<uint32_t> alias_; // fallback bucket
};

}  // namespace distcache

#endif  // DISTCACHE_COMMON_ALIAS_SAMPLER_H_
