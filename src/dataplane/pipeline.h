// A PISA-style (Protocol Independent Switch Architecture) match-action pipeline model
// — the substrate the paper's P4 programs run on (§5: "we can define the packet
// formats and packet processing behaviors by a series of match-action tables. These
// tables are allocated to different processing stages in a forwarding pipeline").
//
// The model captures what matters for DistCache:
//   * a fixed sequence of stages; a packet traverses them in order, once (no loops);
//   * per-stage match-action tables (exact match on a packet field, bounded entries);
//   * per-stage register arrays (bounded width and count) readable/writable by at
//     most one indexed access per stage — the constraint that forces NetCache-style
//     value stores to spread a 128-byte value across 8 stages;
//   * actions as small functions over a packet context (header fields + metadata).
//
// The pipeline also *accounts* for the resources every table/register consumes, so a
// program's footprint (Table 1) is derived from the program itself rather than
// asserted; see PipelineResources.
#ifndef DISTCACHE_DATAPLANE_PIPELINE_H_
#define DISTCACHE_DATAPLANE_PIPELINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace distcache {

// The packet as the pipeline sees it: parsed header fields plus per-packet metadata
// carried between stages.
struct PacketContext {
  std::unordered_map<std::string, uint64_t> fields;
  bool dropped = false;

  uint64_t Get(const std::string& name) const {
    const auto it = fields.find(name);
    return it == fields.end() ? 0 : it->second;
  }
  void Set(const std::string& name, uint64_t value) { fields[name] = value; }
  bool Has(const std::string& name) const { return fields.contains(name); }
};

// A register array: stateful per-stage memory (the P4 `register` extern).
class RegisterArray {
 public:
  RegisterArray(std::string name, size_t size, size_t bit_width)
      : name_(std::move(name)), bits_(bit_width), cells_(size, 0) {}

  uint64_t Read(size_t index) const { return index < cells_.size() ? cells_[index] : 0; }

  void Write(size_t index, uint64_t value) {
    if (index < cells_.size()) {
      cells_[index] = value & Mask();
    }
  }

  // Read-modify-write, the canonical data-plane register op (saturating add).
  uint64_t AddSaturating(size_t index, uint64_t delta) {
    if (index >= cells_.size()) {
      return 0;
    }
    const uint64_t max = Mask();
    cells_[index] = cells_[index] + delta >= max ? max : cells_[index] + delta;
    return cells_[index];
  }

  void Reset() { cells_.assign(cells_.size(), 0); }

  const std::string& name() const { return name_; }
  size_t size() const { return cells_.size(); }
  size_t bit_width() const { return bits_; }
  size_t memory_bits() const { return cells_.size() * bits_; }

 private:
  uint64_t Mask() const {
    return bits_ >= 64 ? ~uint64_t{0} : (uint64_t{1} << bits_) - 1;
  }

  std::string name_;
  size_t bits_;
  std::vector<uint64_t> cells_;
};

// An exact-match match-action table over one packet field.
class MatchActionTable {
 public:
  using Action = std::function<void(PacketContext&)>;

  MatchActionTable(std::string name, std::string match_field, size_t max_entries)
      : name_(std::move(name)), match_field_(std::move(match_field)),
        max_entries_(max_entries) {}

  Status AddEntry(uint64_t match_value, Action action) {
    if (entries_.size() >= max_entries_ && !entries_.contains(match_value)) {
      return Status::ResourceExhausted("table " + name_ + " full");
    }
    entries_[match_value] = std::move(action);
    return Status::Ok();
  }

  Status RemoveEntry(uint64_t match_value) {
    return entries_.erase(match_value) > 0 ? Status::Ok() : Status::NotFound();
  }

  void SetDefaultAction(Action action) { default_action_ = std::move(action); }

  // Applies the table to the packet: the matching entry's action, else the default.
  void Apply(PacketContext& packet) const {
    const auto it = entries_.find(packet.Get(match_field_));
    if (it != entries_.end()) {
      it->second(packet);
    } else if (default_action_) {
      default_action_(packet);
    }
  }

  const std::string& name() const { return name_; }
  size_t num_entries() const { return entries_.size(); }
  size_t max_entries() const { return max_entries_; }

 private:
  std::string name_;
  std::string match_field_;
  size_t max_entries_;
  std::unordered_map<uint64_t, Action> entries_;
  Action default_action_;
};

// Aggregate resource footprint of a pipeline program (Table 1 quantities).
struct PipelineResources {
  uint32_t stages_used = 0;
  uint32_t match_entries = 0;   // max entries provisioned across tables
  uint32_t hash_bits = 0;       // declared via Stage::DeclareHashBits
  uint32_t sram_blocks = 0;     // register memory in 16 KB blocks
  uint32_t action_slots = 0;    // registered actions
};

// One pipeline stage: tables applied in order, then stage hooks; owns its registers.
class Stage {
 public:
  explicit Stage(std::string name) : name_(std::move(name)) {}

  MatchActionTable* AddTable(std::string table_name, std::string match_field,
                             size_t max_entries) {
    tables_.push_back(std::make_unique<MatchActionTable>(
        std::move(table_name), std::move(match_field), max_entries));
    return tables_.back().get();
  }

  RegisterArray* AddRegisterArray(std::string reg_name, size_t size, size_t bit_width) {
    registers_.push_back(
        std::make_unique<RegisterArray>(std::move(reg_name), size, bit_width));
    return registers_.back().get();
  }

  // A fixed-function hook run after the tables (models ALU/hash units configured by
  // the program; counted as action slots).
  void AddHook(std::function<void(PacketContext&)> hook) {
    hooks_.push_back(std::move(hook));
  }

  // Hash units consumed by this stage's lookups (for resource accounting).
  void DeclareHashBits(uint32_t bits) { hash_bits_ += bits; }

  void Apply(PacketContext& packet) const {
    for (const auto& table : tables_) {
      table->Apply(packet);
      if (packet.dropped) {
        return;
      }
    }
    for (const auto& hook : hooks_) {
      hook(packet);
      if (packet.dropped) {
        return;
      }
    }
  }

  const std::string& name() const { return name_; }
  const std::vector<std::unique_ptr<MatchActionTable>>& tables() const { return tables_; }
  const std::vector<std::unique_ptr<RegisterArray>>& registers() const {
    return registers_;
  }
  size_t num_hooks() const { return hooks_.size(); }
  uint32_t hash_bits() const { return hash_bits_; }

 private:
  std::string name_;
  std::vector<std::unique_ptr<MatchActionTable>> tables_;
  std::vector<std::unique_ptr<RegisterArray>> registers_;
  std::vector<std::function<void(PacketContext&)>> hooks_;
  uint32_t hash_bits_ = 0;
};

// The pipeline: an ordered list of stages with single-pass execution.
class Pipeline {
 public:
  explicit Pipeline(size_t num_stages) {
    stages_.reserve(num_stages);
    for (size_t i = 0; i < num_stages; ++i) {
      stages_.push_back(std::make_unique<Stage>("stage" + std::to_string(i)));
    }
  }

  Stage& stage(size_t index) { return *stages_[index]; }
  const Stage& stage(size_t index) const { return *stages_[index]; }
  size_t num_stages() const { return stages_.size(); }

  // Processes one packet through all stages (or until dropped).
  void Process(PacketContext& packet) const {
    for (const auto& stage : stages_) {
      stage->Apply(packet);
      if (packet.dropped) {
        return;
      }
    }
  }

  // Resource accounting derived from the program itself.
  PipelineResources Resources() const;

 private:
  std::vector<std::unique_ptr<Stage>> stages_;
};

}  // namespace distcache

#endif  // DISTCACHE_DATAPLANE_PIPELINE_H_
