#include "dataplane/cache_program.h"

#include <algorithm>
#include <cstring>

namespace distcache {
namespace {

constexpr size_t kSlotBytes = 16;
constexpr uint32_t kBloomRows = 3;
constexpr uint32_t kCmRows = 4;

size_t StagesFor(size_t value_size) {
  return value_size == 0 ? 1 : (value_size + kSlotBytes - 1) / kSlotBytes;
}

}  // namespace

PipelineCacheSwitch::PipelineCacheSwitch(const Config& config)
    : config_(config),
      pipeline_(config.num_stages),
      cm_hashes_(kCmRows, HashCombine(config.seed, 0xc3ULL)),
      bloom_hashes_(kBloomRows, HashCombine(config.seed, 0xb1ULL)),
      slot_free_(config.slots_per_stage, true) {
  // --- stage 0: lookup, validity, hit counters, value length -----------------------
  Stage& s0 = pipeline_.stage(0);
  lookup_table_ = s0.AddTable("cache_lookup", "key", config_.slots_per_stage);
  lookup_table_->SetDefaultAction([](PacketContext& pkt) { pkt.Set("hit", 0); });
  s0.DeclareHashBits(16);  // exact-match key hash
  valid_bits_ = s0.AddRegisterArray("valid", config_.slots_per_stage, 1);
  hit_counters_ = s0.AddRegisterArray("hits", config_.slots_per_stage, 32);
  value_size_reg_ = s0.AddRegisterArray("vsize", config_.slots_per_stage, 8);
  RegisterArray* valid_bits = valid_bits_;
  RegisterArray* hit_counters = hit_counters_;
  RegisterArray* value_size_reg = value_size_reg_;
  s0.AddHook([valid_bits, hit_counters, value_size_reg](PacketContext& pkt) {
    if (pkt.Get("hit") == 0) {
      return;
    }
    const size_t slot = pkt.Get("slot");
    pkt.Set("valid", valid_bits->Read(slot));
    pkt.Set("vsize", value_size_reg->Read(slot));
    if (pkt.Get("valid") != 0) {
      hit_counters->AddSaturating(slot, 1);
    }
  });

  // --- value store: 64K 16-byte slots per stage (two 64-bit words) -----------------
  value_lo_.resize(config_.num_stages);
  value_hi_.resize(config_.num_stages);
  for (size_t st = 0; st < config_.num_stages; ++st) {
    Stage& stage = pipeline_.stage(st);
    value_lo_[st] = stage.AddRegisterArray("value_s" + std::to_string(st) + "_lo",
                                           config_.slots_per_stage, 64);
    value_hi_[st] = stage.AddRegisterArray("value_s" + std::to_string(st) + "_hi",
                                           config_.slots_per_stage, 64);
    RegisterArray* lo = value_lo_[st];
    RegisterArray* hi = value_hi_[st];
    stage.AddHook([lo, hi, st](PacketContext& pkt) {
      if (pkt.Get("hit") == 0 || pkt.Get("valid") == 0) {
        return;
      }
      if (st * kSlotBytes >= pkt.Get("vsize")) {
        return;  // value does not extend into this stage
      }
      const size_t slot = pkt.Get("slot");
      pkt.Set("v" + std::to_string(st) + "_lo", lo->Read(slot));
      pkt.Set("v" + std::to_string(st) + "_hi", hi->Read(slot));
    });
  }

  // --- heavy-hitter detector: CM sketch rows in stages 1..4 ------------------------
  for (uint32_t row = 0; row < kCmRows; ++row) {
    const size_t st = std::min<size_t>(1 + row, config_.num_stages - 1);
    Stage& stage = pipeline_.stage(st);
    cm_rows_.push_back(stage.AddRegisterArray("cm_r" + std::to_string(row),
                                              config_.cm_width, 16));
    stage.DeclareHashBits(16);
    RegisterArray* reg = cm_rows_.back();
    const TabulationHash* hash = nullptr;  // bound below via index capture
    (void)hash;
    const uint32_t row_index = row;
    const size_t width = config_.cm_width;
    const HashFamily* family = &cm_hashes_;
    stage.AddHook([reg, family, row_index, width](PacketContext& pkt) {
      if (pkt.Get("hit") != 0) {
        return;  // only uncached keys feed the sketch
      }
      const uint64_t key = pkt.Get("key");
      const uint64_t est =
          reg->AddSaturating(static_cast<size_t>(family->Hash(row_index, key) % width), 1);
      const uint64_t current = pkt.Has("cm_min") ? pkt.Get("cm_min") : ~uint64_t{0};
      pkt.Set("cm_min", std::min(current, est));
    });
  }

  // --- Bloom filter rows in stages 5..7 ---------------------------------------------
  for (uint32_t row = 0; row < kBloomRows; ++row) {
    const size_t st = std::min<size_t>(5 + row, config_.num_stages - 1);
    Stage& stage = pipeline_.stage(st);
    bloom_rows_.push_back(stage.AddRegisterArray("bloom_r" + std::to_string(row),
                                                 config_.bloom_bits, 1));
    stage.DeclareHashBits(18);
    RegisterArray* reg = bloom_rows_.back();
    const uint32_t row_index = row;
    const size_t bits = config_.bloom_bits;
    const HashFamily* family = &bloom_hashes_;
    const uint32_t threshold = config_.hh_report_threshold;
    stage.AddHook([reg, family, row_index, bits, threshold](PacketContext& pkt) {
      if (pkt.Get("hit") != 0 || pkt.Get("cm_min") < threshold) {
        return;
      }
      const size_t idx =
          static_cast<size_t>(family->Hash(row_index, pkt.Get("key")) % bits);
      pkt.Set("bloom_seen", pkt.Get("bloom_seen") + reg->Read(idx));
      reg->Write(idx, 1);
    });
  }

  // --- telemetry register, last stage ------------------------------------------------
  Stage& last = pipeline_.stage(config_.num_stages - 1);
  telemetry_ = last.AddRegisterArray("telemetry", 1, 32);
  RegisterArray* telemetry = telemetry_;
  last.AddHook([telemetry, this](PacketContext& pkt) {
    if (pkt.Get("hit") != 0 && pkt.Get("valid") != 0) {
      telemetry->AddSaturating(0, 1);
    }
    // HH report decision: heavy this epoch and not yet seen by every bloom row.
    pkt.Set("hh_report", pkt.Get("hit") == 0 &&
                                 pkt.Get("cm_min") >= config_.hh_report_threshold &&
                                 pkt.Get("bloom_seen") < kBloomRows
                             ? 1
                             : 0);
  });
}

LookupResult PipelineCacheSwitch::Lookup(uint64_t key, std::string* value_out,
                                         bool* hh_reported) {
  PacketContext pkt;
  pkt.Set("key", key);
  pipeline_.Process(pkt);
  if (hh_reported != nullptr) {
    *hh_reported = pkt.Get("hh_report") != 0;
  }
  if (pkt.Get("hit") == 0) {
    return LookupResult::kMiss;
  }
  if (pkt.Get("valid") == 0) {
    return LookupResult::kInvalid;
  }
  if (value_out != nullptr) {
    // Reassemble the value from the per-stage word fields the pipeline read.
    const size_t size = pkt.Get("vsize");
    value_out->clear();
    value_out->reserve(size);
    for (size_t st = 0; st * kSlotBytes < size; ++st) {
      uint8_t bytes[kSlotBytes];
      const uint64_t lo = pkt.Get("v" + std::to_string(st) + "_lo");
      const uint64_t hi = pkt.Get("v" + std::to_string(st) + "_hi");
      std::memcpy(bytes, &lo, 8);
      std::memcpy(bytes + 8, &hi, 8);
      const size_t take = std::min(kSlotBytes, size - st * kSlotBytes);
      value_out->append(reinterpret_cast<char*>(bytes), take);
    }
  }
  return LookupResult::kHit;
}

std::optional<size_t> PipelineCacheSwitch::AllocateSlot() {
  for (size_t s = 0; s < slot_free_.size(); ++s) {
    if (slot_free_[s]) {
      slot_free_[s] = false;
      return s;
    }
  }
  return std::nullopt;
}

Status PipelineCacheSwitch::InsertInvalid(uint64_t key, size_t value_size) {
  if (value_size > config_.num_stages * kSlotBytes) {
    return Status::InvalidArgument("value exceeds pipeline value capacity");
  }
  if (slot_of_.contains(key)) {
    return Status::AlreadyExists();
  }
  const auto slot = AllocateSlot();
  if (!slot) {
    return Status::ResourceExhausted("no free value slots");
  }
  SlotInfo info;
  info.slot = *slot;
  info.stages = StagesFor(value_size);
  info.value_size = value_size;
  const Status st = lookup_table_->AddEntry(key, [slot = *slot](PacketContext& pkt) {
    pkt.Set("hit", 1);
    pkt.Set("slot", slot);
  });
  if (!st.ok()) {
    slot_free_[*slot] = true;
    return st;
  }
  valid_bits_->Write(*slot, 0);
  value_size_reg_->Write(*slot, value_size);
  hit_counters_->Write(*slot, 0);
  slots_used_ += info.stages;
  slot_of_.emplace(key, info);
  return Status::Ok();
}

void PipelineCacheSwitch::WriteValueWords(size_t slot, const std::string& value,
                                          size_t stages) {
  for (size_t st = 0; st < stages; ++st) {
    uint8_t bytes[kSlotBytes] = {};
    const size_t offset = st * kSlotBytes;
    const size_t take = value.size() > offset
                            ? std::min(kSlotBytes, value.size() - offset)
                            : 0;
    std::memcpy(bytes, value.data() + offset, take);
    uint64_t lo = 0;
    uint64_t hi = 0;
    std::memcpy(&lo, bytes, 8);
    std::memcpy(&hi, bytes + 8, 8);
    value_lo_[st]->Write(slot, lo);
    value_hi_[st]->Write(slot, hi);
  }
}

Status PipelineCacheSwitch::UpdateValue(uint64_t key, std::string value) {
  const auto it = slot_of_.find(key);
  if (it == slot_of_.end()) {
    return Status::NotFound();
  }
  if (value.size() > config_.num_stages * kSlotBytes) {
    return Status::InvalidArgument("value exceeds pipeline value capacity");
  }
  const size_t new_stages = StagesFor(value.size());
  slots_used_ += new_stages;
  slots_used_ -= it->second.stages;
  it->second.stages = new_stages;
  it->second.value_size = value.size();
  WriteValueWords(it->second.slot, value, new_stages);
  value_size_reg_->Write(it->second.slot, value.size());
  valid_bits_->Write(it->second.slot, 1);
  return Status::Ok();
}

Status PipelineCacheSwitch::Invalidate(uint64_t key) {
  const auto it = slot_of_.find(key);
  if (it == slot_of_.end()) {
    return Status::NotFound();
  }
  valid_bits_->Write(it->second.slot, 0);
  return Status::Ok();
}

Status PipelineCacheSwitch::Evict(uint64_t key) {
  const auto it = slot_of_.find(key);
  if (it == slot_of_.end()) {
    return Status::NotFound();
  }
  lookup_table_->RemoveEntry(key).ok();
  valid_bits_->Write(it->second.slot, 0);
  slot_free_[it->second.slot] = true;
  slots_used_ -= it->second.stages;
  slot_of_.erase(it);
  return Status::Ok();
}

bool PipelineCacheSwitch::IsValid(uint64_t key) const {
  const auto it = slot_of_.find(key);
  return it != slot_of_.end() && valid_bits_->Read(it->second.slot) != 0;
}

uint64_t PipelineCacheSwitch::HitCount(uint64_t key) const {
  const auto it = slot_of_.find(key);
  return it == slot_of_.end() ? 0 : hit_counters_->Read(it->second.slot);
}

uint64_t PipelineCacheSwitch::TelemetryLoad() const { return telemetry_->Read(0); }

void PipelineCacheSwitch::NewEpoch() {
  telemetry_->Reset();
  for (RegisterArray* row : cm_rows_) {
    row->Reset();
  }
  for (RegisterArray* row : bloom_rows_) {
    row->Reset();
  }
  hit_counters_->Reset();
}

}  // namespace distcache
