// The DistCache cache-switch P4 program, expressed on the PISA pipeline model — the
// data plane of §5 built from actual match-action tables and register arrays:
//
//   stage 0      : cache lookup table (exact match on the key) → slot index;
//                  validity-bit register; per-slot hit-counter register
//   stages 0..7  : value store — every stage holds 64K 16-byte slots (two 64-bit
//                  register arrays); a value of n bytes spans ceil(n/16) stages
//   stages 1..4  : Count-Min sketch — one 64K×16-bit register array per stage,
//                  updated on misses
//   stages 5..7  : Bloom filter — one 256K×1-bit register array per stage, dedupes
//                  heavy-hitter reports
//   stage 7      : telemetry register — total packets served this epoch, piggybacked
//                  into reply headers
//
// PipelineCacheSwitch exposes the same data-plane/control-plane interface as the
// behavioural CacheSwitch model; the two are checked against each other by a
// differential test. Resource usage (Table 1) is derived from the program itself via
// Pipeline::Resources().
#ifndef DISTCACHE_DATAPLANE_CACHE_PROGRAM_H_
#define DISTCACHE_DATAPLANE_CACHE_PROGRAM_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/cache_switch.h"  // for LookupResult
#include "common/hash.h"
#include "common/status.h"
#include "dataplane/pipeline.h"

namespace distcache {

class PipelineCacheSwitch {
 public:
  struct Config {
    size_t num_stages = 8;
    size_t slots_per_stage = 65536;
    size_t cm_width = 65536;
    size_t bloom_bits = 262144;
    uint32_t hh_report_threshold = 64;
    uint64_t seed = 0x9a4ULL;
  };

  explicit PipelineCacheSwitch(const Config& config);

  // --- data plane -------------------------------------------------------------

  // Runs a GET packet through the pipeline. On a hit, fills `value_out`, bumps the
  // hit counter and the telemetry register. On a miss, updates the heavy-hitter
  // sketch; `hh_reported` (optional) is set when the key newly crossed the report
  // threshold this epoch.
  LookupResult Lookup(uint64_t key, std::string* value_out, bool* hh_reported = nullptr);

  // --- control plane (switch local agent / coherence) --------------------------

  Status InsertInvalid(uint64_t key, size_t value_size);
  Status UpdateValue(uint64_t key, std::string value);
  Status Invalidate(uint64_t key);
  Status Evict(uint64_t key);

  bool Contains(uint64_t key) const { return slot_of_.contains(key); }
  bool IsValid(uint64_t key) const;
  uint64_t HitCount(uint64_t key) const;
  uint64_t TelemetryLoad() const;
  void NewEpoch();

  size_t num_entries() const { return slot_of_.size(); }
  size_t slots_used() const { return slots_used_; }

  // Table 1 accounting straight from the pipeline program.
  PipelineResources Resources() const { return pipeline_.Resources(); }

 private:
  struct SlotInfo {
    size_t slot = 0;
    size_t stages = 1;      // value stages occupied (ceil(size/16))
    size_t value_size = 0;
  };

  // Packs byte `i` of the value into the word registers and back.
  void WriteValueWords(size_t slot, const std::string& value, size_t stages);
  std::string ReadValueWords(size_t slot, size_t value_size) const;
  std::optional<size_t> AllocateSlot();

  Config config_;
  Pipeline pipeline_;
  HashFamily cm_hashes_;
  HashFamily bloom_hashes_;

  // Control-plane shadow state (the agent's view; the data plane itself only sees
  // tables and registers).
  std::unordered_map<uint64_t, SlotInfo> slot_of_;
  std::vector<bool> slot_free_;
  size_t slots_used_ = 0;

  // Raw pointers into pipeline-owned structures (valid for the pipeline's lifetime).
  MatchActionTable* lookup_table_ = nullptr;
  RegisterArray* valid_bits_ = nullptr;
  RegisterArray* value_size_reg_ = nullptr;
  RegisterArray* hit_counters_ = nullptr;
  std::vector<RegisterArray*> value_lo_;  // per stage, first 8 bytes of the slot
  std::vector<RegisterArray*> value_hi_;  // per stage, second 8 bytes
  std::vector<RegisterArray*> cm_rows_;
  std::vector<RegisterArray*> bloom_rows_;
  RegisterArray* telemetry_ = nullptr;
};

}  // namespace distcache

#endif  // DISTCACHE_DATAPLANE_CACHE_PROGRAM_H_
