#include "dataplane/pipeline.h"

namespace distcache {

PipelineResources Pipeline::Resources() const {
  PipelineResources res;
  for (const auto& stage : stages_) {
    bool used = false;
    size_t register_bits = 0;
    for (const auto& table : stage->tables()) {
      res.match_entries += static_cast<uint32_t>(table->max_entries());
      ++res.action_slots;  // default action slot per table
      used = true;
    }
    for (const auto& reg : stage->registers()) {
      register_bits += reg->memory_bits();
      ++res.action_slots;  // register access ALU slot
      used = true;
    }
    res.action_slots += static_cast<uint32_t>(stage->num_hooks());
    used |= stage->num_hooks() > 0;
    res.hash_bits += stage->hash_bits();
    res.sram_blocks += static_cast<uint32_t>((register_bits / 8 + 16 * 1024 - 1) /
                                             (16 * 1024));
    if (used) {
      ++res.stages_used;
    }
  }
  return res;
}

}  // namespace distcache
