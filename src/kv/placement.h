// Key placement: which rack and which server within the rack owns a key's primary
// copy. The paper's storage clusters are "randomly partitioned" (Fan et al. [9]); we
// realize that with a placement hash independent of the cache-layer hashes h0/h1.
#ifndef DISTCACHE_KV_PLACEMENT_H_
#define DISTCACHE_KV_PLACEMENT_H_

#include <cstdint>

#include "common/hash.h"

namespace distcache {

class Placement {
 public:
  Placement(uint32_t num_racks, uint32_t servers_per_rack, uint64_t seed = 0x91aceULL)
      : num_racks_(num_racks), servers_per_rack_(servers_per_rack), seed_(seed) {}

  uint32_t RackOf(uint64_t key) const {
    return static_cast<uint32_t>(Mix64(key ^ seed_) % num_racks_);
  }

  uint32_t ServerInRack(uint64_t key) const {
    return static_cast<uint32_t>(Mix64(Mix64(key ^ seed_) + 1) % servers_per_rack_);
  }

  // Global server id in [0, num_racks * servers_per_rack).
  uint32_t ServerOf(uint64_t key) const {
    return RackOf(key) * servers_per_rack_ + ServerInRack(key);
  }

  uint32_t num_racks() const { return num_racks_; }
  uint32_t servers_per_rack() const { return servers_per_rack_; }
  uint32_t num_servers() const { return num_racks_ * servers_per_rack_; }

 private:
  uint32_t num_racks_;
  uint32_t servers_per_rack_;
  uint64_t seed_;
};

}  // namespace distcache

#endif  // DISTCACHE_KV_PLACEMENT_H_
