// In-memory key-value store — the storage-engine substrate (the paper integrates with
// Redis through a shim; this robin-hood open-addressing table is our Redis stand-in,
// exercised through the same Get/Put/Delete paths).
//
// Keys are 64-bit (the paper's 16-byte keys hash to fixed-width lookups in the switch
// anyway); values are variable-length byte strings up to kMaxValueSize, matching the
// prototype's 128-byte cap (§5).
#ifndef DISTCACHE_KV_KV_STORE_H_
#define DISTCACHE_KV_KV_STORE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace distcache {

class KvStore {
 public:
  static constexpr size_t kMaxValueSize = 128;  // paper §5: values up to 128 bytes

  explicit KvStore(size_t initial_capacity = 64);

  // Inserts or overwrites. Fails with kInvalidArgument if the value exceeds
  // kMaxValueSize.
  Status Put(uint64_t key, std::string value);

  // Returns the value or kNotFound.
  StatusOr<std::string> Get(uint64_t key) const;

  // Removes the key; kNotFound if absent.
  Status Delete(uint64_t key);

  bool Contains(uint64_t key) const;
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // All live keys (test/inspection helper; O(capacity)).
  std::vector<uint64_t> Keys() const;

 private:
  struct Slot {
    uint64_t key = 0;
    std::string value;
    uint8_t distance = kEmpty;  // robin-hood probe distance; kEmpty marks a free slot

    static constexpr uint8_t kEmpty = 0xff;
    bool occupied() const { return distance != kEmpty; }
  };

  size_t Mask() const { return slots_.size() - 1; }
  size_t IndexFor(uint64_t key) const;
  void Grow();
  const Slot* FindSlot(uint64_t key) const;

  std::vector<Slot> slots_;
  size_t size_ = 0;
};

}  // namespace distcache

#endif  // DISTCACHE_KV_KV_STORE_H_
