#include "kv/kv_store.h"

#include <bit>
#include <utility>

#include "common/hash.h"

namespace distcache {
namespace {

constexpr double kMaxLoadFactor = 0.7;

size_t RoundUpPow2(size_t n) { return std::bit_ceil(n < 8 ? size_t{8} : n); }

}  // namespace

KvStore::KvStore(size_t initial_capacity) : slots_(RoundUpPow2(initial_capacity)) {}

size_t KvStore::IndexFor(uint64_t key) const { return Mix64(key) & Mask(); }

Status KvStore::Put(uint64_t key, std::string value) {
  if (value.size() > kMaxValueSize) {
    return Status::InvalidArgument("value exceeds 128-byte limit");
  }
  if (static_cast<double>(size_ + 1) >
      kMaxLoadFactor * static_cast<double>(slots_.size())) {
    Grow();
  }
  uint64_t k = key;
  std::string v = std::move(value);
  uint8_t distance = 0;
  size_t idx = IndexFor(k);
  while (true) {
    Slot& slot = slots_[idx];
    if (!slot.occupied()) {
      slot.key = k;
      slot.value = std::move(v);
      slot.distance = distance;
      ++size_;
      return Status::Ok();
    }
    if (slot.key == k && slot.distance != Slot::kEmpty) {
      // Only a true match at an equal-or-less probe chain is a real hit; with robin
      // hood ordering a match can be identified directly by key comparison.
      slot.value = std::move(v);
      return Status::Ok();
    }
    if (slot.distance < distance) {
      // Robin hood: steal from the rich (shorter-probed) resident.
      std::swap(slot.key, k);
      std::swap(slot.value, v);
      std::swap(slot.distance, distance);
    }
    idx = (idx + 1) & Mask();
    ++distance;
    if (distance >= Slot::kEmpty) {
      // Pathological chain; force growth and retry.
      Grow();
      return Put(k, std::move(v));
    }
  }
}

const KvStore::Slot* KvStore::FindSlot(uint64_t key) const {
  size_t idx = IndexFor(key);
  uint8_t distance = 0;
  while (true) {
    const Slot& slot = slots_[idx];
    if (!slot.occupied() || slot.distance < distance) {
      return nullptr;  // robin-hood early termination
    }
    if (slot.key == key) {
      return &slot;
    }
    idx = (idx + 1) & Mask();
    ++distance;
  }
}

StatusOr<std::string> KvStore::Get(uint64_t key) const {
  const Slot* slot = FindSlot(key);
  if (slot == nullptr) {
    return Status::NotFound();
  }
  return slot->value;
}

bool KvStore::Contains(uint64_t key) const { return FindSlot(key) != nullptr; }

Status KvStore::Delete(uint64_t key) {
  const Slot* found = FindSlot(key);
  if (found == nullptr) {
    return Status::NotFound();
  }
  size_t idx = static_cast<size_t>(found - slots_.data());
  // Backward-shift deletion keeps probe distances tight without tombstones.
  while (true) {
    size_t next = (idx + 1) & Mask();
    Slot& cur = slots_[idx];
    Slot& nxt = slots_[next];
    if (!nxt.occupied() || nxt.distance == 0) {
      cur = Slot{};
      break;
    }
    cur.key = nxt.key;
    cur.value = std::move(nxt.value);
    cur.distance = static_cast<uint8_t>(nxt.distance - 1);
    idx = next;
  }
  --size_;
  return Status::Ok();
}

std::vector<uint64_t> KvStore::Keys() const {
  std::vector<uint64_t> keys;
  keys.reserve(size_);
  for (const Slot& slot : slots_) {
    if (slot.occupied()) {
      keys.push_back(slot.key);
    }
  }
  return keys;
}

void KvStore::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  size_ = 0;
  for (Slot& slot : old) {
    if (slot.occupied()) {
      Put(slot.key, std::move(slot.value)).ok();
    }
  }
}

}  // namespace distcache
