// Storage-server model: one KV engine plus the accounting the evaluation needs
// (service capacity, per-epoch load counters, write-path cost for cache coherence).
//
// §6.1: every storage server is rate-limited to the same capacity ("we allocate the
// 1 MQPS throughput to the emulated storage servers equally") and throughput is
// normalized to one server; we adopt capacity 1.0 units/s per server.
#ifndef DISTCACHE_KV_STORAGE_SERVER_H_
#define DISTCACHE_KV_STORAGE_SERVER_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "kv/kv_store.h"

namespace distcache {

class StorageServer {
 public:
  struct Config {
    uint32_t server_id = 0;
    double capacity = 1.0;  // service units per second (normalized)
  };

  explicit StorageServer(const Config& config) : config_(config) {}

  // Read path (cache miss): serves the primary copy.
  StatusOr<std::string> Get(uint64_t key) {
    load_ += 1.0;
    return store_.Get(key);
  }

  // Write path. `coherence_copies` is the number of cached copies that must run the
  // two-phase update protocol; each costs `coherence_unit_cost` extra service units at
  // this server (invalidation round + update round are server work, §4.3/§6.3).
  Status Put(uint64_t key, std::string value, size_t coherence_copies = 0,
             double coherence_unit_cost = 1.0) {
    load_ += 1.0 + coherence_unit_cost * static_cast<double>(coherence_copies);
    return store_.Put(key, std::move(value));
  }

  Status Delete(uint64_t key) {
    load_ += 1.0;
    return store_.Delete(key);
  }

  // Loads a value without charging service capacity (bulk population / recovery).
  Status Seed(uint64_t key, std::string value) { return store_.Put(key, std::move(value)); }

  bool Contains(uint64_t key) const { return store_.Contains(key); }

  uint32_t id() const { return config_.server_id; }
  double capacity() const { return config_.capacity; }
  size_t num_objects() const { return store_.size(); }

  // Epoch load accounting (reset each measurement window).
  double load() const { return load_; }
  void ResetLoad() { load_ = 0.0; }
  double utilization() const { return config_.capacity > 0 ? load_ / config_.capacity : 0.0; }

  const KvStore& store() const { return store_; }

 private:
  Config config_;
  KvStore store_;
  double load_ = 0.0;
};

}  // namespace distcache

#endif  // DISTCACHE_KV_STORAGE_SERVER_H_
