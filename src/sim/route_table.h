// Precomputed per-head-key routing decisions ("amortized hash routing") for the
// sharded backend: the allocation and placement hashes are evaluated once per
// table build, not once per request. Tables are immutable snapshots — failure
// recovery builds a fresh table from the remapped allocation and multicasts it to
// every shard (see sharded_backend.h), so the hot path never sees a table mutate.
#ifndef DISTCACHE_SIM_ROUTE_TABLE_H_
#define DISTCACHE_SIM_ROUTE_TABLE_H_

#include <cstdint>
#include <vector>

#include "sim/cluster_model.h"

namespace distcache {

struct RouteEntry {
  enum Kind : uint8_t {
    kUncached = 0,   // read goes to the primary server
    kPair = 1,       // PoT between the spine copy and the leaf copy
    kSpineOnly = 2,
    kLeafOnly = 3,
    kReplicated = 4, // CacheReplication: all spines + leaf (slow path)
  };
  uint8_t kind = kUncached;
  uint32_t spine = 0;
  uint32_t leaf = 0;
  uint32_t server = 0;
};

using RouteTable = std::vector<RouteEntry>;

// One entry per head key rank [0, model.pool), reflecting the allocation's
// current partition→spine mapping (i.e. post-remap if the controller ran).
RouteTable BuildRouteTable(const ClusterModel& model);

}  // namespace distcache

#endif  // DISTCACHE_SIM_ROUTE_TABLE_H_
