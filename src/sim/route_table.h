// Precomputed per-head-rank routing decisions ("amortized hash routing") for the
// request-level engines: the allocation and placement hashes are evaluated once per
// table build, not once per request. Tables are immutable snapshots — failure
// recovery and cache re-allocation build a fresh table from the mutated allocation
// and swap/multicast it (see engine_core.h, sharded_backend.h), so the hot path
// never sees a table mutate. Tables are indexed by *popularity rank*; the
// `hot_shift` build parameter is the rank→key rotation of the workload phase the
// table serves (see common/workload.h), so entry r always routes the key the
// clients actually query at rank r.
//
// An entry carries the key's full candidate list — one cached copy per layer of
// the hierarchy, packed (layer, index) in ascending layer order — so the engines
// run the power-of-k choice over however many layers the cluster has. The entry
// stays 16 bytes (the two-layer hot path is cache-footprint-critical): the first
// two candidates are inline, and entries with more than two candidates spill the
// whole list into the table's shared overflow array.
#ifndef DISTCACHE_SIM_ROUTE_TABLE_H_
#define DISTCACHE_SIM_ROUTE_TABLE_H_

#include <cstdint>
#include <vector>

#include "net/topology.h"
#include "sim/cluster_model.h"

namespace distcache {

// Candidates pack the layer into the top 3 bits (kMaxCacheLayers = 6 < 8, see
// kCandLayerShift in net/topology.h) so a candidate is one 32-bit word at any
// supported depth.
inline uint32_t PackCandidate(CacheNodeId node) {
  return (node.layer << kCandLayerShift) | node.index;
}
inline CacheNodeId UnpackCandidate(uint32_t packed) {
  return {packed >> kCandLayerShift, packed & kCandIndexMask};
}

struct RouteEntry {
  enum Kind : uint8_t {
    kUncached = 0,   // read goes to the primary server
    kCached = 1,     // power-of-k among the cached copies (one per layer, ≤ num)
    kReplicated = 2, // CacheReplication: all layer-0 nodes + leaf (slow path)
  };
  uint8_t kind = kUncached;
  // Cached-copy count. For kReplicated: 1 when the key also has a leaf copy
  // (in c0), 0 otherwise — the layer-0 replicas are implicit.
  uint8_t num = 0;
  uint32_t server = 0;
  // num <= 2: the packed candidates, ascending layer. num > 2: c0 is the first
  // candidate and c1 the offset of the full num-candidate run in
  // RouteTable::overflow.
  uint32_t c0 = 0;
  uint32_t c1 = 0;
};
static_assert(sizeof(RouteEntry) == 16, "RouteEntry must stay 16 bytes");

struct RouteTable {
  // The hot prefix: one entry per rank [0, entries.size()). A *compact* table
  // truncates at the allocation's CachedRankEnd() — every rank at or beyond
  // entries.size() is uncached by construction, and the engines recompute its
  // server inline from the placement hash (the branch-free fallback in
  // EngineCore::Process), which is bit-identical to reading a dense kUncached
  // entry. A dense table (BuildDenseRouteTable) spans the full candidate pool,
  // so the fallback branch is never taken and behavior is unchanged.
  std::vector<RouteEntry> entries;
  // Packed candidate runs of entries with num > 2 (see RouteEntry::c1).
  std::vector<uint32_t> overflow;

  size_t size() const { return entries.size(); }
  // Length of the stored hot prefix — the engines' fallback threshold.
  size_t hot_len() const { return entries.size(); }
  // Heap bytes this snapshot actually holds (capacity, not size — the exact
  // reserve in the builders makes the two equal; a divergence is a regression).
  size_t bytes() const {
    return entries.capacity() * sizeof(RouteEntry) +
           overflow.capacity() * sizeof(uint32_t);
  }
};

// Builds the table for the allocation's current partition→node mappings (i.e.
// post-remap if the controller ran) and cached set (post-refill if it
// re-allocated). `hot_shift` is the workload's current rank→key rotation:
// entry r describes key (r + hot_shift) % num_keys. Compact by default (one
// entry per rank in [0, allocation->CachedRankEnd()), exact-reserved); builds
// the full-pool dense layout instead when model.dense_routes is set (the
// differential-test / memory-baseline mode).
RouteTable BuildRouteTable(const ClusterModel& model, uint64_t hot_shift = 0);

// The pre-compaction layout: one entry per rank [0, model.pool), uncached tail
// materialized. Kept for the compact-vs-dense equivalence tests and as the
// memory baseline bench_memwall gates against.
RouteTable BuildDenseRouteTable(const ClusterModel& model, uint64_t hot_shift = 0);

}  // namespace distcache

#endif  // DISTCACHE_SIM_ROUTE_TABLE_H_
