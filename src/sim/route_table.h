// Precomputed per-head-rank routing decisions ("amortized hash routing") for the
// request-level engines: the allocation and placement hashes are evaluated once per
// table build, not once per request. Tables are immutable snapshots — failure
// recovery and cache re-allocation build a fresh table from the mutated allocation
// and swap/multicast it (see engine_core.h, sharded_backend.h), so the hot path
// never sees a table mutate. Tables are indexed by *popularity rank*; the
// `hot_shift` build parameter is the rank→key rotation of the workload phase the
// table serves (see common/workload.h), so entry r always routes the key the
// clients actually query at rank r.
#ifndef DISTCACHE_SIM_ROUTE_TABLE_H_
#define DISTCACHE_SIM_ROUTE_TABLE_H_

#include <cstdint>
#include <vector>

#include "sim/cluster_model.h"

namespace distcache {

struct RouteEntry {
  enum Kind : uint8_t {
    kUncached = 0,   // read goes to the primary server
    kPair = 1,       // PoT between the spine copy and the leaf copy
    kSpineOnly = 2,
    kLeafOnly = 3,
    kReplicated = 4, // CacheReplication: all spines + leaf (slow path)
  };
  uint8_t kind = kUncached;
  uint32_t spine = 0;
  uint32_t leaf = 0;
  uint32_t server = 0;
};

using RouteTable = std::vector<RouteEntry>;

// One entry per head rank [0, model.pool), reflecting the allocation's current
// partition→spine mapping (i.e. post-remap if the controller ran) and cached set
// (post-refill if it re-allocated). `hot_shift` is the workload's current rank→key
// rotation: entry r describes key (r + hot_shift) % num_keys.
RouteTable BuildRouteTable(const ClusterModel& model, uint64_t hot_shift = 0);

}  // namespace distcache

#endif  // DISTCACHE_SIM_ROUTE_TABLE_H_
