// The sharded, event-driven cluster runtime.
//
// Topology nodes (cache switches + storage servers) are partitioned across N worker
// shards by net/shard_map.h; each shard owns the authoritative cumulative load
// counters of its nodes. Every shard runs its own discrete-event loop (one
// sim/event_queue.h EventQueue) with two event types:
//
//   * batch events   — process `batch_size` (256 by default) requests through the amortized hot
//                      path: alias-table key sampling (common/alias_sampler.h) and
//                      the shared request core's staged batch loop
//                      (sim/engine_core.h ProcessBatch) over precomputed per-rank
//                      route entries (sim/route_table.h) and the shard's local
//                      LoadTracker view;
//   * telemetry events — every `epoch_requests` simulated requests the shard
//                      broadcasts a dense snapshot of its *own cumulative per-node
//                      contributions* to all peers (the §4.2 telemetry epoch).
//
// Two transports (the multi-core scaling substrate — see ARCHITECTURE "hot-path
// rules"):
//
//   * data plane — one lock-free SPSC ring (runtime/spsc_ring.h) per directed
//     shard pair carries everything rate-proportional to requests: telemetry
//     partials and end-of-run load deltas. The batch-boundary poll of an idle
//     ring is one acquire load; a send never takes a lock or wakes a futex. A
//     full ring rejects the push and the sender drains its own rings before
//     retrying, which cannot deadlock (every shard's send loop also consumes).
//   * control plane — the mutex Channel (runtime/channel.h) carries the
//     O(reconfigurations) traffic: the timeline multicast, the re-allocation
//     rendezvous (kHotReport/kRouteUpdate) and the kDone end-of-stream markers.
//     Its batch-boundary poll is resolved by the channel's lock-free emptiness
//     fast path; the uncontended/contended split is reported in BackendStats.
//
// Load views are *partial-sum gossip*: a shard's LoadTracker view of a switch is
// its own exact contribution (updated per request via LoadTracker::Add) plus the
// latest monotone partial received from every peer. Receivers fold broadcasts in as
// `new_partial - last_seen_partial`, so views stay consistent sums regardless of
// how the OS schedules the worker threads — broadcasting absolute owner loads
// instead would mix snapshots of different ages and systematically misroute. The
// view error for any switch is bounded by what peers routed to it within one epoch:
// the bounded-staleness invariant that keeps the PoT process stationary (see
// core/load_tracker.h).
//
// Owner-authoritative statistics (per-node cumulative loads for the final report)
// are partitioned by net/shard_map.h — but the split happens *off* the hot path:
// every charge lands branch-free in the shard's dense own-contribution arrays
// (which double as the telemetry payload), and only the end-of-run flush divides
// them into owner-local counters vs one delta message per destination shard. The
// request loop therefore contains no owner test, no lock, and no write to any
// line another thread reads.
//
// Timeline (failures §4.4, workload phases / hot-spot shift / re-allocation §6.4):
// the controller shard (net/shard_map.h controller_shard()) multicasts the merged
// TimelineStep plan (sim/engine_core.h BuildTimelinePlan) once before request
// processing, each step carrying its immutable precomputed snapshot — a route
// table, and for phase switches the pmf each shard rebuilds its alias sampler
// from. Each shard applies a step when its *local* request clock reaches the
// step's timestamp scaled to its quota (checked at batch boundaries, so
// application is accurate to within one batch and immune to OS scheduling skew;
// a final catch-up at the quota applies steps landing inside the last batch).
//
// kReallocateCache is the one step whose effect cannot be precomputed: the new
// allocation depends on runtime-observed popularity. It runs as a rendezvous —
// every shard, on reaching the step, sends its heavy-hitter counts (kHotReport)
// to the controller shard and waits; the controller merges the reports
// (sketch/heavy_hitter.h), refills the allocation hottest-first
// (core/allocation.h), builds the new route table and multicasts it
// (kRouteUpdate) — the same push-new-routes plumbing failure recovery uses. The
// merged counts are sums of deterministic per-shard streams, so the rebuilt
// allocation is deterministic despite the runtime rendezvous. Every wait in the
// rendezvous (and the final drain below) keeps consuming the waiter's data
// rings, so a blocked peer can never wedge a producer on a full ring.
//
// Termination: a shard that finishes its quota flushes its deltas over the data
// rings, sends kDone to every peer over the control channel, and waits until it
// has seen kDone from all peers; ring pushes happen-before the corresponding
// kDone (release on the ring tail, then the channel mutex), so one final ring
// drain after the last kDone observes every in-flight delta before stats merge.
#ifndef DISTCACHE_SIM_SHARDED_BACKEND_H_
#define DISTCACHE_SIM_SHARDED_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/alias_sampler.h"
#include "net/shard_map.h"
#include "runtime/channel.h"
#include "runtime/spsc_ring.h"
#include "sim/cluster_model.h"
#include "sim/engine_core.h"
#include "sim/event_queue.h"
#include "sim/route_table.h"
#include "sim/shard_message.h"
#include "sim/sim_backend.h"

namespace distcache {

class ShardedBackend : public SimBackend {
 public:
  explicit ShardedBackend(const SimBackendConfig& config);
  ~ShardedBackend() override;  // out-of-line: Shard is incomplete here

  std::string name() const override { return "sharded"; }
  BackendStats Run(uint64_t num_requests) override;

 private:
  struct Shard;
  struct ShardSink;

  void ShardMain(Shard& shard, uint64_t quota, uint64_t num_requests);
  // Controller role: multicast the precomputed timeline plan over the control
  // channels before processing starts (steps at/after num_requests never fire
  // and are not sent).
  void BroadcastTimeline(Shard& shard, uint64_t num_requests);
  void QueueTimelineMsg(Shard& shard, const ShardMsg& msg);
  void ProcessBatch(Shard& shard, uint32_t count);
  // kReallocateCache rendezvous (header comment): returns the post-reallocation
  // route table, or null if the control channels were shut down mid-rendezvous.
  std::shared_ptr<const RouteTable> Reallocate(Shard& shard);
  // Controller side of the rendezvous: merged refill + current table, plus
  // rebuilt snapshots for the remaining timeline steps in *suffix_routes.
  std::shared_ptr<const RouteTable> ReallocateFromReports(
      Shard& shard,
      const std::vector<std::vector<std::pair<uint64_t, uint32_t>>>& reports,
      std::vector<std::shared_ptr<const RouteTable>>* suffix_routes);
  // Installs rebuilt suffix snapshots over the shard's pending actions.
  void ApplySuffixRoutes(
      Shard& shard, const std::vector<std::shared_ptr<const RouteTable>>& suffix);
  // Data plane: lock-free push into the receiver's per-sender ring; on a full
  // ring, drains this shard's own rings and retries (deadlock-free, see above).
  void SendData(Shard& shard, uint32_t peer, ShardMsg msg);
  // Control plane: mutex-channel send (timeline, rendezvous, done markers).
  void SendControl(Shard& shard, uint32_t peer, ShardMsg msg);
  void BroadcastTelemetry(Shard& shard);
  void FlushLoads(Shard& shard);
  // Non-blocking absorb of everything pending: data rings, then the control
  // channel (lock-free fast path when empty).
  void PollInbox(Shard& shard);
  void DrainDataRings(Shard& shard);
  // Control-plane wait: polls the control channel, keeps draining data rings,
  // and backs off (yield, then micro-sleep) between rounds. Returns nullopt
  // only if the channel was closed under the waiter (shutdown).
  std::optional<ShardMsg> WaitControl(Shard& shard);
  void Apply(Shard& shard, ShardMsg& msg);

  SimBackendConfig config_;
  ClusterModel model_;
  ShardMap shard_map_;
  AliasSampler sampler_;            // head ranks + one tail bucket (phase 0)
  // Opt-in O(hot) sampler (config.two_level_sampling): when set, shards draw
  // from it (or their per-phase rebuild) instead of sampler_ — a different RNG
  // stream, differentially validated, never golden-pinned.
  std::unique_ptr<TwoLevelSampler> two_level_;
  std::shared_ptr<const RouteTable> base_routes_;  // pre-timeline snapshot
  std::vector<TimelineStep> plan_;  // merged events+phases, with snapshots
  // plan_ restricted to steps that fire within the current Run (at_request <
  // num_requests) — exactly what every shard queues, so action indices align
  // across shards and with the controller's suffix rebuilds.
  std::vector<TimelineStep> fired_plan_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace distcache

#endif  // DISTCACHE_SIM_SHARDED_BACKEND_H_
