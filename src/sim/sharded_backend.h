// The sharded, event-driven cluster runtime.
//
// Topology nodes (cache switches + storage servers) are partitioned across N worker
// shards by net/shard_map.h; each shard owns the authoritative cumulative load
// counters of its nodes. Every shard runs its own discrete-event loop (one
// sim/event_queue.h EventQueue) with two event types:
//
//   * batch events   — process `batch_size` (~64) requests through the amortized hot
//                      path: alias-table key sampling (common/alias_sampler.h),
//                      precomputed per-key route entries (sim/route_table.h) instead
//                      of per-request CopiesOf, and PotRouter::ChoosePair on the
//                      shard's local LoadTracker view;
//   * telemetry events — every `epoch_requests` simulated requests the shard
//                      broadcasts a dense snapshot of its *own cumulative per-node
//                      contributions* to all peers (the §4.2 telemetry epoch).
//
// Load views are *partial-sum gossip*: a shard's LoadTracker view of a switch is
// its own exact contribution (updated per request via LoadTracker::Add) plus the
// latest monotone partial received from every peer. Receivers fold broadcasts in as
// `new_partial - last_seen_partial`, so views stay consistent sums regardless of
// how the OS schedules the worker threads — broadcasting absolute owner loads
// instead would mix snapshots of different ages and systematically misroute. The
// view error for any switch is bounded by what peers routed to it within one epoch:
// the bounded-staleness invariant that keeps the PoT process stationary (see
// core/load_tracker.h).
//
// Owner-authoritative statistics (per-node cumulative loads for the final report)
// are partitioned by net/shard_map.h. Remote contributions accumulate in a dense
// unsent-delta scratch and are flushed to owners as one runtime/channel.h message
// per destination when the shard finishes its quota — routing never reads them, so
// channel traffic stays O(epochs), not O(requests).
//
// Failure timeline (§4.4 / Fig. 11): shard 0 doubles as the cluster controller. It
// walks the ClusterEvent timeline once before request processing, precomputing the
// post-remap route table for each remap-triggering event (the remap is a pure
// function of the timeline prefix), and multicasts each event — with its immutable
// route-table snapshot attached — to every peer as a kClusterEvent ShardMsg. Each
// shard applies an event when its *local* request clock reaches the event's
// timestamp scaled to its quota (checked at batch boundaries, so application is
// accurate to within one batch and immune to OS scheduling skew). Applying a
// failure marks the dead switch in the shard's alive set and pins its LoadTracker
// entry (MarkDead); applying a remap swaps the shard's route-table pointer — the
// "invalidate cached routes" step. Between a spine's failure and the recovery
// remap, requests that would transit the dead switch are blackholed and counted in
// BackendStats::dropped, exactly like the sequential reference.
//
// Termination: a shard that finishes its quota sends kDone to every peer and then
// blocks on its inbox until it has seen kDone from all peers, guaranteeing every
// in-flight delta is applied before stats are merged.
#ifndef DISTCACHE_SIM_SHARDED_BACKEND_H_
#define DISTCACHE_SIM_SHARDED_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/alias_sampler.h"
#include "common/random.h"
#include "core/load_tracker.h"
#include "core/pot_router.h"
#include "net/shard_map.h"
#include "runtime/channel.h"
#include "sim/cluster_model.h"
#include "sim/event_queue.h"
#include "sim/route_table.h"
#include "sim/shard_message.h"
#include "sim/sim_backend.h"

namespace distcache {

class ShardedBackend : public SimBackend {
 public:
  explicit ShardedBackend(const SimBackendConfig& config);
  ~ShardedBackend() override;  // out-of-line: Shard is incomplete here

  std::string name() const override { return "sharded"; }
  BackendStats Run(uint64_t num_requests) override;

 private:
  struct Shard;

  void ShardMain(Shard& shard, uint64_t quota, uint64_t num_requests);
  // Controller role (shard 0): precompute per-event route tables and multicast
  // the timeline over the shard channels before processing starts.
  void BroadcastTimeline(Shard& shard);
  void ApplyClusterEvent(Shard& shard, const ShardMsg& msg);
  void ProcessBatch(Shard& shard, uint32_t count);
  void ProcessRequest(Shard& shard, uint32_t bucket);
  bool TransitBlackholed(Shard& shard);
  void CloseInterval(Shard& shard);
  void BroadcastTelemetry(Shard& shard);
  void FlushCacheDeltas(Shard& shard);
  void FlushServerDeltas(Shard& shard);
  void DrainInbox(Shard& shard, bool blocking);
  void Apply(Shard& shard, ShardMsg& msg);
  void AddCacheLoad(Shard& shard, CacheNodeId node, double delta);
  void AddServerLoad(Shard& shard, uint32_t server, double delta);

  SimBackendConfig config_;
  ClusterModel model_;
  ShardMap shard_map_;
  AliasSampler sampler_;            // head keys + one tail bucket
  std::shared_ptr<const RouteTable> base_routes_;  // pre-failure snapshot
  std::vector<ClusterEvent> events_;               // sorted by at_request
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace distcache

#endif  // DISTCACHE_SIM_SHARDED_BACKEND_H_
