// The sharded, event-driven cluster runtime.
//
// Topology nodes (cache switches + storage servers) are partitioned across N worker
// shards by net/shard_map.h; each shard owns the authoritative cumulative load
// counters of its nodes. Every shard runs its own discrete-event loop (one
// sim/event_queue.h EventQueue) with two event types:
//
//   * batch events   — process `batch_size` (~64) requests through the amortized hot
//                      path: alias-table key sampling (common/alias_sampler.h),
//                      precomputed per-key route entries instead of per-request
//                      CopiesOf, and PotRouter::ChoosePair on the shard's local
//                      LoadTracker view;
//   * telemetry events — every `epoch_requests` simulated requests the shard
//                      broadcasts a dense snapshot of its *own cumulative per-node
//                      contributions* to all peers (the §4.2 telemetry epoch).
//
// Load views are *partial-sum gossip*: a shard's LoadTracker view of a switch is
// its own exact contribution (updated per request via LoadTracker::Add) plus the
// latest monotone partial received from every peer. Receivers fold broadcasts in as
// `new_partial - last_seen_partial`, so views stay consistent sums regardless of
// how the OS schedules the worker threads — broadcasting absolute owner loads
// instead would mix snapshots of different ages and systematically misroute. The
// view error for any switch is bounded by what peers routed to it within one epoch:
// the bounded-staleness invariant that keeps the PoT process stationary (see
// core/load_tracker.h).
//
// Owner-authoritative statistics (per-node cumulative loads for the final report)
// are partitioned by net/shard_map.h. Remote contributions accumulate in a dense
// unsent-delta scratch and are flushed to owners as one runtime/channel.h message
// per destination when the shard finishes its quota — routing never reads them, so
// channel traffic stays O(epochs), not O(requests).
//
// Termination: a shard that finishes its quota sends kDone to every peer and then
// blocks on its inbox until it has seen kDone from all peers, guaranteeing every
// in-flight delta is applied before stats are merged.
#ifndef DISTCACHE_SIM_SHARDED_BACKEND_H_
#define DISTCACHE_SIM_SHARDED_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/alias_sampler.h"
#include "common/random.h"
#include "core/load_tracker.h"
#include "core/pot_router.h"
#include "net/shard_map.h"
#include "runtime/channel.h"
#include "sim/cluster_model.h"
#include "sim/event_queue.h"
#include "sim/shard_message.h"
#include "sim/sim_backend.h"

namespace distcache {

class ShardedBackend : public SimBackend {
 public:
  explicit ShardedBackend(const SimBackendConfig& config);
  ~ShardedBackend() override;  // out-of-line: Shard is incomplete here

  std::string name() const override { return "sharded"; }
  BackendStats Run(uint64_t num_requests) override;

 private:
  // Precomputed routing decision per head key ("amortized hash routing"): the
  // allocation and placement hashes are evaluated once at construction, not once
  // per request.
  struct RouteEntry {
    enum Kind : uint8_t {
      kUncached = 0,   // read goes to the primary server
      kPair = 1,       // PoT between the spine copy and the leaf copy
      kSpineOnly = 2,
      kLeafOnly = 3,
      kReplicated = 4, // CacheReplication: all spines + leaf (slow path)
    };
    uint8_t kind = kUncached;
    uint32_t spine = 0;
    uint32_t leaf = 0;
    uint32_t server = 0;
  };

  struct Shard;

  void ShardMain(Shard& shard, uint64_t quota);
  void ProcessBatch(Shard& shard, uint32_t count);
  void ProcessRequest(Shard& shard, uint32_t bucket);
  void BroadcastTelemetry(Shard& shard);
  void FlushCacheDeltas(Shard& shard);
  void FlushServerDeltas(Shard& shard);
  void DrainInbox(Shard& shard, bool blocking);
  void Apply(Shard& shard, ShardMsg& msg);
  void AddCacheLoad(Shard& shard, CacheNodeId node, double delta);
  void AddServerLoad(Shard& shard, uint32_t server, double delta);

  SimBackendConfig config_;
  ClusterModel model_;
  ShardMap shard_map_;
  AliasSampler sampler_;            // head keys + one tail bucket
  std::vector<RouteEntry> routes_;  // index = head key rank
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace distcache

#endif  // DISTCACHE_SIM_SHARDED_BACKEND_H_
