// EngineCore — the engine-agnostic request core shared by the request-level
// simulation backends.
//
// The sequential reference engine and every sharded worker execute the same
// per-request semantics: route-table key resolution, PoT candidate choice with
// dead-node degradation, write/coherence accounting, timeline-event application
// (failures, hot-spot shifts, online cache re-allocation, workload phases) and
// per-interval series bookkeeping. This class owns that path once; the engines
// differ only in how they drive it:
//
//   * the sequential backend runs one EngineCore, advancing it per request and
//     applying timeline actions at exact request timestamps;
//   * each sharded worker runs its own EngineCore, advancing it at batch
//     boundaries with timeline timestamps scaled to the shard's quota, and with
//     load charging / telemetry routed through the owner-partitioned gossip
//     machinery (see sharded_backend.h);
//   * the fluid backend keeps its analytic path but consumes the same timeline
//     (see cluster/fluid_backend.h).
//
// Load charging is abstracted behind a Sink (AddCacheLoad/AddServerLoad): the
// sequential sink writes the global cumulative counters and refreshes the
// telemetry view in place, the sharded sink splits charges into owner-local
// counters, unsent deltas and gossip partials. Everything else — who is a
// candidate, who wins, what a write costs, what gets dropped — is shared code, so
// a new scenario lands in one place instead of three.
//
// Timeline model: a run's reconfigurations (SimBackendConfig::events) and workload
// phases (SimBackendConfig::phases) are merged into an ordered plan by
// BuildTimelinePlan(). Steps whose effect is a pure function of the timeline
// prefix (phase switches, hot-spot shifts, failure remaps) carry precomputed
// immutable snapshots — a route table and, for phases, the head+tail pmf the
// engine rebuilds its sampler from. kReallocateCache steps carry no snapshot: the
// controller recomputes the allocation at runtime from *observed* per-key counts
// (the core's heavy-hitter observer), which is the paper's §6.4 cache-update
// loop. Re-allocation composes with failure events in both directions: the
// realloc hooks re-sync the controller remap to the alive set at that timestamp
// (failures before), and rebuild the remaining steps' snapshots against the
// refilled allocation via RebuildPlanSuffixRoutes (failures/shifts after) — so a
// post-reallocation switch restoration keeps the refilled cached set instead of
// resurrecting the construction-time one.
#ifndef DISTCACHE_SIM_ENGINE_CORE_H_
#define DISTCACHE_SIM_ENGINE_CORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/cacheline.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/workload.h"
#include "core/cache_policy.h"
#include "core/load_tracker.h"
#include "core/pot_router.h"
#include "sim/cluster_model.h"
#include "sim/route_table.h"
#include "sim/sim_backend.h"
#include "sketch/heavy_hitter.h"

namespace distcache {

// One entry of the merged (events + phases) timeline, in config request units.
struct TimelineStep {
  uint64_t at_request = 0;
  bool is_phase = false;
  WorkloadPhase phase;  // valid when is_phase
  ClusterEvent event;   // valid when !is_phase
  // Phase payload: the head+tail pmf under phase.zipf_theta (layout of
  // ClusterModel::head_with_tail) the engines rebuild their samplers from.
  std::shared_ptr<const std::vector<double>> pmf;
  // Immutable post-step route table, when precomputable (null for kFailSpine,
  // which changes no routes, and for kReallocateCache, which is runtime-computed).
  std::shared_ptr<const RouteTable> routes;
};

// Merges config.events and config.phases into one plan ordered by at_request
// (phases before events on timestamp ties; list order otherwise preserved),
// precomputing each step's snapshot. Mutates `model`'s controller/allocation state
// while walking the failure remaps — the same end state the runtime reads back.
std::vector<TimelineStep> BuildTimelinePlan(const SimBackendConfig& config,
                                            ClusterModel& model);

// Recomputes the route-table snapshots of plan[from..] against the model's
// *current* allocation (the re-allocation hooks call this right after a runtime
// Refill, so failure/shift steps after a kReallocateCache route the refilled
// cached set instead of the construction-time one). `alive_now`/`shift_now` seed
// the replayed alive-set and rotation transitions. Returns one (possibly null)
// table per suffix step, aligned with plan[from..]; mutates the model's
// controller state to the end-of-suffix remap, exactly like BuildTimelinePlan.
std::vector<std::shared_ptr<const RouteTable>> RebuildPlanSuffixRoutes(
    const std::vector<TimelineStep>& plan, size_t from, ClusterModel& model,
    std::vector<uint8_t> alive_now, uint64_t shift_now);

// True when the timeline contains a kReallocateCache step — the engines then run
// the core's heavy-hitter observer from the start of the run.
bool TimelineNeedsObserver(const std::vector<ClusterEvent>& events);

// Total bytes of the base route table plus every precomputed plan snapshot —
// the figure the engines stamp into BackendStats::route_table_bytes. Tables a
// runtime re-allocation builds later are not included (realloc timelines are
// small-config test territory; the plan covers the steady-state footprint).
uint64_t PlanRouteTableBytes(const RouteTable* base,
                             const std::vector<TimelineStep>& plan);

class EngineCore {
 public:
  // A TimelineStep localized to one engine stream's clock. `at_local` is the
  // step's at_request scaled to the stream's share of the run (identity for the
  // sequential engine, quota/num_requests for a shard).
  struct Action {
    double at_local = 0.0;
    bool is_phase = false;
    WorkloadPhase phase;
    ClusterEvent event;
    std::shared_ptr<const std::vector<double>> pmf;
    std::shared_ptr<const RouteTable> routes;
    // Non-owning alternative to `routes`: a route snapshot resident in memory
    // that outlives the run (the multiproc engine's arena-resident plan). When
    // `has_route_view` is set the view wins and `routes` is ignored.
    bool has_route_view = false;
    const RouteEntry* route_view = nullptr;
    size_t route_view_len = 0;
    const uint32_t* overflow_view = nullptr;
  };

  // Rebuild-the-sampler callback, invoked after the core switched phase state.
  // Must not consume engine RNG (streams stay deterministic across phase counts).
  using PhaseHook =
      std::function<void(const WorkloadPhase&,
                         const std::shared_ptr<const std::vector<double>>& pmf)>;
  // kReallocateCache callback: returns the post-reallocation route table (null
  // keeps the current one). The sequential engine recomputes locally from
  // ObservedCounts(); the sharded engine runs the controller rendezvous.
  using ReallocateHook = std::function<std::shared_ptr<const RouteTable>()>;

  // `model` outlives the core and is read-only on the hot path. `rng_seed` /
  // `router_seed` preserve each engine's historical stream derivation.
  EngineCore(const ClusterModel* model, uint64_t rng_seed, uint64_t router_seed,
             bool enable_observer);

  // ---- run wiring ----------------------------------------------------------
  void BindStats(BackendStats* stats) { stats_ = stats; }
  void SetPhaseHook(PhaseHook hook) { phase_hook_ = std::move(hook); }
  void SetReallocateHook(ReallocateHook hook) { realloc_hook_ = std::move(hook); }
  void SetRoutes(std::shared_ptr<const RouteTable> routes) {
    routes_ = std::move(routes);
    route_data_ = routes_ ? routes_->entries.data() : nullptr;
    route_overflow_ = routes_ ? routes_->overflow.data() : nullptr;
    route_hot_len_ = routes_ ? static_cast<uint32_t>(routes_->entries.size()) : 0;
  }
  // Non-owning route snapshot (the arena-resident plan): the caller guarantees
  // the arrays outlive every request routed through them. Compact semantics are
  // identical to SetRoutes — ranks at or beyond `hot_len` take the computed
  // uncached fallback.
  void SetRouteView(const RouteEntry* entries, size_t hot_len,
                    const uint32_t* overflow) {
    routes_.reset();
    route_data_ = entries;
    route_overflow_ = overflow;
    route_hot_len_ = static_cast<uint32_t>(hot_len);
  }
  // Interval-series step in local request units (0 disables series bookkeeping).
  // Resets the interval mark, so call once per Run before processing.
  void SetSampleStep(double step) {
    sample_step_ = step > 0.0 ? step : 0.0;
    next_sample_at_ = sample_step_;
    interval_mark_ = BackendStats::IntervalPoint{};
  }
  // Enables the open-loop virtual-time layer (sim_backend.h QueueModelConfig
  // comment: Poisson arrivals, per-node FIFO queues, per-layer service rates,
  // hop costs). `time_seed` derives the dedicated time RNG — a separate stream
  // from the request RNG, so the key/write draws of an open-loop run are
  // bit-identical to the closed-loop run of the same config (tested). No-op
  // when the arrival process is disabled; must be called before processing.
  void ConfigureOpenLoop(const QueueModelConfig& queue, uint64_t time_seed);
  // Actions must be queued in at_local order (the plan/multicast order).
  void QueueAction(Action action) { actions_.push_back(std::move(action)); }
  // Drops queued/applied actions so a Run can re-queue its plan. Note this does
  // NOT rewind routing/phase/failure state to the pre-timeline snapshot — a
  // backend that already replayed a timeline is not a fresh backend. Every
  // driver in this repo constructs a new backend per Run; do the same rather
  // than re-Running one whose timeline mutated state.
  void ClearActions() {
    actions_.clear();
    next_action_ = 0;
  }
  // Index of the next unapplied action — inside the reallocate hook this is the
  // first post-reallocation step, the start of the suffix whose snapshots the
  // hook replaces.
  size_t next_action_index() const { return next_action_; }
  // Swaps the route snapshot of the pending action at `index` (used by the
  // reallocate hooks to install suffix tables rebuilt against the refilled
  // allocation). Applied actions are never patched.
  void SetActionRoutes(size_t index, std::shared_ptr<const RouteTable> routes) {
    if (index >= next_action_ && index < actions_.size()) {
      actions_[index].routes = std::move(routes);
      actions_[index].has_route_view = false;
    }
  }
  // View flavor of SetActionRoutes (arena-published suffix tables).
  void SetActionRouteView(size_t index, const RouteEntry* entries,
                          size_t hot_len, const uint32_t* overflow) {
    if (index >= next_action_ && index < actions_.size()) {
      actions_[index].routes.reset();
      actions_[index].has_route_view = true;
      actions_[index].route_view = entries;
      actions_[index].route_view_len = hot_len;
      actions_[index].overflow_view = overflow;
    }
  }

  // Applies every queued action with at_local <= processed (events fire just
  // before the request that reaches their timestamp), then closes any due sample
  // intervals. Engines call this per request (sequential) or per batch (sharded).
  void AdvanceTo(uint64_t processed) {
    const double now = static_cast<double>(processed);
    while (next_action_ < actions_.size() &&
           actions_[next_action_].at_local <= now) {
      ApplyAction(actions_[next_action_++]);
    }
    if (sample_step_ > 0.0) {
      while (now >= next_sample_at_) {
        stats_->CloseIntervalAt(processed, interval_mark_);
        next_sample_at_ += sample_step_;
      }
    }
  }

  // Closes the trailing partial interval at end of run.
  void FinishSeries(uint64_t processed) {
    if (sample_step_ > 0.0 && processed > interval_mark_.requests) {
      stats_->CloseIntervalAt(processed, interval_mark_);
    }
  }

  // ---- hot path ------------------------------------------------------------
  // Executes one request sampled as head rank `bucket` (== model->pool for the
  // aggregated tail bucket). Charges loads through `sink`:
  //   sink.AddCacheLoad(CacheNodeId, double)  — cache switch charge; the sink
  //       owns the telemetry-view update policy (see class comment);
  //   sink.AddServerLoad(uint32_t, double)    — storage server charge.
  template <typename Sink>
  void Process(Sink& sink, uint32_t bucket);

  // Policy variants behind the single dispatch branch in Process() (PR 5
  // hot-path rule: the default kDistCache path pays exactly one
  // perfectly-predicted compare, keeping the golden runs bit-identical and the
  // throughput within the gate). ProcessSerialStatic routes to the first alive
  // candidate instead of the PoT choice; ProcessPolicy drives the per-node
  // dynamic cache runtime (core/cache_policy.h).
  template <typename Sink>
  void ProcessSerialStatic(Sink& sink, uint32_t bucket);
  template <typename Sink>
  void ProcessPolicy(Sink& sink, uint32_t bucket);

  // Batched hot path: executes `count` requests whose sampled buckets were
  // staged into `buckets` up front (the batch's stochastic input as a flat
  // array), software-prefetching the route-table entries of upcoming requests
  // a fixed distance ahead. Requests execute through Process() in order, so
  // the batch is bit-identical to the per-request loop in every engine state
  // (pinned by the sharded golden test); the implementation comment records
  // why a deeper two-pass SoA staging measured slower and was rejected.
  template <typename Sink>
  void ProcessBatch(Sink& sink, const uint32_t* buckets, uint32_t count);

  // ---- open-loop virtual time ----------------------------------------------
  // Hot-path rule (same discipline as the policy dispatch byte): each helper
  // opens with one never-taken compare against the construction-time open_loop_
  // byte, so the closed-loop path pays a perfectly-predicted branch, consumes
  // no time RNG, and stays bit-identical to the pre-layer goldens. When the
  // layer is on, exactly one completion terminal (OpenLoopServer / OpenLoopCache)
  // runs per delivered request; drops advance the clock but record nothing.
  bool open_loop() const { return open_loop_ != 0; }
  double virtual_now() const { return vnow_; }

  // Poisson arrival: advances the virtual clock by an exponential gap at the
  // (burst-modulated) instantaneous rate. Called once per request, before any
  // routing work, so the arrival process is independent of the request mix.
  void OpenLoopArrive() {
    if (__builtin_expect(open_loop_ == 0, 1)) {
      return;
    }
    vnow_ += time_rng_.NextExponential(arrival_.RateAt(vnow_));
  }
  // Completion at the primary storage server: full-descent hop count.
  void OpenLoopServer(uint32_t server) {
    if (__builtin_expect(open_loop_ == 0, 1)) {
      return;
    }
    RecordDeparture(server_free_at_[server], server_rate_,
                    static_cast<double>(model_->num_layers()) + 1.0);
  }
  // Completion at a cache switch: a layer-l hit is l+1 hops from the client.
  void OpenLoopCache(CacheNodeId node) {
    if (__builtin_expect(open_loop_ == 0, 1)) {
      return;
    }
    RecordDeparture(cache_free_at_[node.layer][node.index],
                    layer_rate_[node.layer],
                    static_cast<double>(node.layer) + 1.0);
  }

  // True when the request must be dropped: pre-recovery ECMP transit through one
  // of the dead spine switches. Consumes RNG only while failures are active.
  bool TransitBlackholed() {
    return !recovery_ran_ && dead_spines_ > 0 &&
           rng_.NextBounded(model_->cfg.num_spine) < dead_spines_;
  }

  // ---- state shared with the engines ---------------------------------------
  Rng& rng() { return rng_; }
  LoadTracker& view() { return view_; }
  double write_ratio() const { return write_ratio_; }
  uint64_t hot_shift() const { return hot_shift_; }
  uint32_t dead_spines() const { return dead_spines_; }
  const std::vector<uint8_t>& spine_alive() const { return spine_alive_; }

  // Failure degradation targets the top ("spine") layer: a candidate is
  // blackholed iff it is a dead top-layer node. Lower layers never die (the leaf
  // layer is rack-bound; mid layers inherit the same assumption for now).
  bool NodeDead(CacheNodeId node) const {
    return node.layer == 0 && dead_spines_ > 0 && !spine_alive_[node.index];
  }

  // The observer's per-key heavy-hitter reports since the last phase boundary /
  // re-allocation, hottest-first — what the controller re-allocates from. Empty
  // when the observer is disabled.
  std::vector<std::pair<uint64_t, uint32_t>> ObservedCounts() const {
    return observer_ ? observer_->TopReports()
                     : std::vector<std::pair<uint64_t, uint32_t>>{};
  }

  // The dynamic-policy runtime (null for kDistCache/kStaticTopK) — tests read
  // its counters and node caches.
  const CachePolicyRuntime* policy_runtime() const { return policy_.get(); }

 private:
  void ApplyAction(const Action& action);
  // FIFO queue discipline at one station: the request starts service when both
  // it and the node are ready, holds the node for an exponential service time,
  // and its end-to-end latency is the network hops plus everything spent at the
  // node (wait + service).
  void RecordDeparture(double& free_at, double rate, double hops) {
    const double start = free_at > vnow_ ? free_at : vnow_;
    const double depart = start + time_rng_.NextExponential(rate);
    free_at = depart;
    stats_->latency.Add(hops * hop_cost_ + (depart - vnow_));
  }
  void ResetObserver() {
    if (observer_) {
      observer_->NewEpoch();
    }
  }

  const ClusterModel* model_;
  Rng rng_;
  LoadTracker view_;
  PotRouter router_;
  BackendStats* stats_ = nullptr;

  std::shared_ptr<const RouteTable> routes_;  // null when a view is installed
  const RouteEntry* route_data_ = nullptr;      // hot-path view of the snapshot
  const uint32_t* route_overflow_ = nullptr;    // candidate runs of k>2 entries
  // Stored hot-prefix length of the current snapshot: buckets at or beyond it
  // are uncached by construction and take the computed-server fallback in
  // Process (dense tables make this the pool, so the branch is never taken).
  uint32_t route_hot_len_ = 0;

  // Current workload-phase state.
  double write_ratio_;
  uint64_t hot_shift_ = 0;

  // Failure-degradation state (see sequential_backend.h for the semantics).
  std::vector<uint8_t> spine_alive_;
  uint32_t dead_spines_ = 0;
  bool recovery_ran_ = true;  // partitions start mapped to their home switches

  // Controller-side popularity observer driving kReallocateCache (§6.4). The
  // sketch is wider than the data-plane one (§5): the simulated controller
  // aggregates reports in software, so we trade memory for clean separation of
  // hot keys from sampled-tail noise, and let counters exceed 16 bits.
  std::unique_ptr<HeavyHitterDetector> observer_;

  std::vector<Action> actions_;
  size_t next_action_ = 0;

  double sample_step_ = 0.0;
  double next_sample_at_ = 0.0;
  BackendStats::IntervalPoint interval_mark_;

  std::vector<CacheNodeId> scratch_candidates_;  // kReplicated slow path

  // Open-loop virtual-time state (ConfigureOpenLoop). time_rng_ is a dedicated
  // stream so enabling the layer never perturbs the key/write draws; free_at
  // arrays are per-node FIFO horizons in virtual time.
  uint8_t open_loop_ = 0;
  Rng time_rng_{0};
  ArrivalConfig arrival_;
  double hop_cost_ = 0.2;
  double vnow_ = 0.0;
  double server_rate_ = 1.0;
  std::vector<double> layer_rate_;                   // per cache layer, top first
  std::vector<std::vector<double>> cache_free_at_;   // [layer][node]
  std::vector<double> server_free_at_;

  // Cache-policy dispatch (set once at construction from cfg.cache_policy; the
  // default path tests one always-equal byte and falls through).
  enum PolicyMode : uint8_t { kStaticPot = 0, kSerialStatic = 1, kDynamicPolicy = 2 };
  uint8_t policy_mode_ = kStaticPot;
  std::unique_ptr<CachePolicyRuntime> policy_;  // kDynamicPolicy only
  std::vector<CacheNodeId> scratch_copies_;     // write-through copy list
  std::vector<uint32_t> scratch_servers_;       // dirty write-back targets

  PhaseHook phase_hook_;
  ReallocateHook realloc_hook_;
};

template <typename Sink>
void EngineCore::Process(Sink& sink, uint32_t bucket) {
  // Open-loop arrival first (a no-op compare when the layer is off): every
  // request's arrival timestamp exists before any routing decision, in all
  // three policy variants, so the arrival process is policy-independent.
  OpenLoopArrive();
  // Policy dispatch: one compare against a construction-time constant — under
  // the default policy it is never taken and costs a perfectly-predicted
  // not-taken branch, preserving the pre-policy goldens bit-for-bit.
  if (__builtin_expect(policy_mode_ != kStaticPot, 0)) {
    if (policy_mode_ == kDynamicPolicy) {
      ProcessPolicy(sink, bucket);
    } else {
      ProcessSerialStatic(sink, bucket);
    }
    return;
  }
  const ClusterConfig& cc = model_->cfg;
  BackendStats& st = *stats_;
  const bool is_tail = bucket == model_->pool;
  const bool is_write = write_ratio_ > 0.0 && rng_.NextBernoulli(write_ratio_);

  uint32_t server;
  uint64_t key;
  const RouteEntry* entry = nullptr;
  if (is_tail) {
    const uint64_t rank =
        model_->pool + rng_.NextBounded(cc.num_keys - model_->pool);
    key = KeyOfRank(rank, hot_shift_, cc.num_keys);
    server = model_->placement.ServerOf(key);
    // Tail keys are treated as uncached even right after a hot-spot shift, when
    // the formerly-hot (still cached, now tail) keys would briefly hit: their
    // per-key mass is ~1/num_keys, a vanishing correction the fluid model ignores
    // for the same reason.
  } else if (__builtin_expect(bucket < route_hot_len_, 1)) {
    key = KeyOfRank(bucket, hot_shift_, cc.num_keys);
    entry = &route_data_[bucket];
    server = entry->server;
  } else {
    // Compact-table fallback: ranks past the stored hot prefix are uncached by
    // construction, so recompute the primary server from the same placement
    // hash the dense build evaluated and leave `entry` null — the request then
    // flows down the existing uncached path, bit-identical to reading a dense
    // kUncached entry (no RNG is consumed either way).
    key = KeyOfRank(bucket, hot_shift_, cc.num_keys);
    server = model_->placement.ServerOf(key);
  }

  if (is_write) {
    // Writes reach the primary through an ECMP-chosen spine; a pre-recovery dead
    // spine blackholes its share (§4.4). Coherence touches only alive copies.
    ++st.writes;
    if (TransitBlackholed()) {
      ++st.dropped;
      return;
    }
    size_t num_copies = 0;
    if (entry != nullptr) {
      if (entry->kind == RouteEntry::kCached) {
        // One cached copy per layer, ascending; coherence touches the alive ones.
        const uint32_t inline_cands[2] = {entry->c0, entry->c1};
        const uint32_t* cands =
            entry->num <= 2 ? inline_cands : route_overflow_ + entry->c1;
        for (uint8_t i = 0; i < entry->num; ++i) {
          const CacheNodeId node = UnpackCandidate(cands[i]);
          if (!NodeDead(node)) {
            ++num_copies;
            sink.AddCacheLoad(node, cc.coherence_switch_cost);
          }
        }
      } else if (entry->kind == RouteEntry::kReplicated) {
        num_copies = static_cast<size_t>(cc.num_spine - dead_spines_) +
                     static_cast<size_t>(entry->num);
        for (uint32_t s = 0; s < cc.num_spine; ++s) {
          if (spine_alive_[s]) {
            sink.AddCacheLoad({0, s}, cc.coherence_switch_cost);
          }
        }
        if (entry->num > 0) {
          sink.AddCacheLoad(UnpackCandidate(entry->c0), cc.coherence_switch_cost);
        }
      }
    }
    OpenLoopServer(server);
    sink.AddServerLoad(server,
                       1.0 + cc.coherence_server_cost * static_cast<double>(num_copies));
    return;
  }

  ++st.reads;
  if (observer_) {
    // Controller-side popularity observation (per-object hit counters for cached
    // keys, the heavy-hitter sketch for the rest — folded into one detector).
    observer_->Record(key);
  }
  // Blackholed candidates degrade the power-of-k choice set: a dead top-layer
  // copy is skipped (k shrinks by one), and a key whose every copy is dead falls
  // back to the primary server like an uncached key.
  CacheNodeId node;
  if (entry == nullptr || entry->kind == RouteEntry::kUncached) {
    if (TransitBlackholed()) {
      ++st.dropped;
      return;
    }
    OpenLoopServer(server);
    sink.AddServerLoad(server, 1.0);
    ++st.server_reads;
    return;
  }
  if (entry->kind == RouteEntry::kCached) {
    if (entry->num == 1) {
      node = UnpackCandidate(entry->c0);
      if (NodeDead(node)) {
        if (TransitBlackholed()) {
          ++st.dropped;
          return;
        }
        OpenLoopServer(server);
        sink.AddServerLoad(server, 1.0);
        ++st.server_reads;
        return;
      }
    } else if (entry->num == 2) {
      // The two-layer fast path: PoT between the (at most one dead) candidates.
      const CacheNodeId c0 = UnpackCandidate(entry->c0);
      const CacheNodeId c1 = UnpackCandidate(entry->c1);
      const bool dead0 = NodeDead(c0);
      node = dead0 ? c1 : NodeDead(c1) ? c0 : router_.ChoosePair(c0, c1);
    } else {
      // Power-of-k (k > 2): the alive candidate subset, least-loaded wins.
      const uint32_t* run = route_overflow_ + entry->c1;
      auto& cands = scratch_candidates_;
      cands.clear();
      for (uint8_t i = 0; i < entry->num; ++i) {
        const CacheNodeId c = UnpackCandidate(run[i]);
        if (!NodeDead(c)) {
          cands.push_back(c);
        }
      }
      if (cands.empty()) {
        if (TransitBlackholed()) {
          ++st.dropped;
          return;
        }
        OpenLoopServer(server);
        sink.AddServerLoad(server, 1.0);
        ++st.server_reads;
        return;
      }
      node = cands.size() == 1 ? cands[0] : cands[router_.Choose(cands)];
    }
  } else {  // kReplicated
    auto& cands = scratch_candidates_;
    cands.clear();
    for (uint32_t s = 0; s < cc.num_spine; ++s) {
      if (spine_alive_[s]) {
        cands.push_back({0, s});
      }
    }
    if (entry->num > 0) {
      cands.push_back(UnpackCandidate(entry->c0));
    }
    if (cands.empty()) {
      // Every replica dead (all spines down, no leaf copy): fall back to the
      // primary server like an uncached key, same as the kCached degradation.
      if (TransitBlackholed()) {
        ++st.dropped;
        return;
      }
      OpenLoopServer(server);
      sink.AddServerLoad(server, 1.0);
      ++st.server_reads;
      return;
    }
    node = cands[router_.Choose(cands)];
  }
  // Hits below the top layer transit an ECMP-chosen spine on the way down (§3.4);
  // top-layer hits are absorbed by their (alive) serving switch and cannot be
  // blackholed.
  if (node.layer != 0 && TransitBlackholed()) {
    ++st.dropped;
    return;
  }
  OpenLoopCache(node);
  sink.AddCacheLoad(node, 1.0);
  ++st.cache_hits;
  ++(node.layer == 0 ? st.spine_hits : st.leaf_hits);
}

template <typename Sink>
void EngineCore::ProcessSerialStatic(Sink& sink, uint32_t bucket) {
  // kStaticTopK: identical contents, coherence and failure semantics to the
  // static path above, but reads go to the *first alive candidate* (top layer
  // first) instead of the balanced power-of-k choice. The PotRouter is never
  // consulted (it draws from its own RNG, so the main request stream is
  // unaffected either way). The hit/miss counters therefore match kDistCache
  // exactly for the same stream; only the load distribution differs — which is
  // precisely the paper's claim this policy isolates.
  const ClusterConfig& cc = model_->cfg;
  BackendStats& st = *stats_;
  const bool is_tail = bucket == model_->pool;
  const bool is_write = write_ratio_ > 0.0 && rng_.NextBernoulli(write_ratio_);

  uint32_t server;
  uint64_t key;
  const RouteEntry* entry = nullptr;
  if (is_tail) {
    const uint64_t rank =
        model_->pool + rng_.NextBounded(cc.num_keys - model_->pool);
    key = KeyOfRank(rank, hot_shift_, cc.num_keys);
    server = model_->placement.ServerOf(key);
  } else if (__builtin_expect(bucket < route_hot_len_, 1)) {
    key = KeyOfRank(bucket, hot_shift_, cc.num_keys);
    entry = &route_data_[bucket];
    server = entry->server;
  } else {
    // Same compact-table fallback as the static path.
    key = KeyOfRank(bucket, hot_shift_, cc.num_keys);
    server = model_->placement.ServerOf(key);
  }

  if (is_write) {
    // Writes are routing-independent: same coherence accounting as the static
    // path (every alive copy is touched regardless of how reads are routed).
    ++st.writes;
    if (TransitBlackholed()) {
      ++st.dropped;
      return;
    }
    size_t num_copies = 0;
    if (entry != nullptr) {
      if (entry->kind == RouteEntry::kCached) {
        const uint32_t inline_cands[2] = {entry->c0, entry->c1};
        const uint32_t* cands =
            entry->num <= 2 ? inline_cands : route_overflow_ + entry->c1;
        for (uint8_t i = 0; i < entry->num; ++i) {
          const CacheNodeId node = UnpackCandidate(cands[i]);
          if (!NodeDead(node)) {
            ++num_copies;
            sink.AddCacheLoad(node, cc.coherence_switch_cost);
          }
        }
      } else if (entry->kind == RouteEntry::kReplicated) {
        num_copies = static_cast<size_t>(cc.num_spine - dead_spines_) +
                     static_cast<size_t>(entry->num);
        for (uint32_t s = 0; s < cc.num_spine; ++s) {
          if (spine_alive_[s]) {
            sink.AddCacheLoad({0, s}, cc.coherence_switch_cost);
          }
        }
        if (entry->num > 0) {
          sink.AddCacheLoad(UnpackCandidate(entry->c0), cc.coherence_switch_cost);
        }
      }
    }
    OpenLoopServer(server);
    sink.AddServerLoad(server,
                       1.0 + cc.coherence_server_cost * static_cast<double>(num_copies));
    return;
  }

  ++st.reads;
  if (observer_) {
    observer_->Record(key);
  }
  CacheNodeId node;
  bool have_node = false;
  if (entry != nullptr && entry->kind == RouteEntry::kCached) {
    // Candidates are stored in ascending layer order: the first alive one is
    // the topmost copy — the naive "always hit the spine copy" route.
    const uint32_t inline_cands[2] = {entry->c0, entry->c1};
    const uint32_t* cands =
        entry->num <= 2 ? inline_cands : route_overflow_ + entry->c1;
    for (uint8_t i = 0; i < entry->num; ++i) {
      const CacheNodeId c = UnpackCandidate(cands[i]);
      if (!NodeDead(c)) {
        node = c;
        have_node = true;
        break;
      }
    }
  } else if (entry != nullptr && entry->kind == RouteEntry::kReplicated) {
    for (uint32_t s = 0; s < cc.num_spine; ++s) {
      if (spine_alive_[s]) {
        node = {0, s};
        have_node = true;
        break;
      }
    }
    if (!have_node && entry->num > 0) {
      node = UnpackCandidate(entry->c0);
      have_node = true;
    }
  }
  if (!have_node) {
    if (TransitBlackholed()) {
      ++st.dropped;
      return;
    }
    OpenLoopServer(server);
    sink.AddServerLoad(server, 1.0);
    ++st.server_reads;
    return;
  }
  if (node.layer != 0 && TransitBlackholed()) {
    ++st.dropped;
    return;
  }
  OpenLoopCache(node);
  sink.AddCacheLoad(node, 1.0);
  ++st.cache_hits;
  ++(node.layer == 0 ? st.spine_hits : st.leaf_hits);
}

template <typename Sink>
void EngineCore::ProcessPolicy(Sink& sink, uint32_t bucket) {
  // The dynamic-policy request path. Same stream derivation, coherence costs,
  // transit-blackhole and counter semantics as the static path; hits and
  // admissions come from the per-node policy runtime instead of the
  // precomputed route table. The probe → drop-check → commit split keeps
  // blackholed requests from perturbing replacement state (they never arrive).
  const ClusterConfig& cc = model_->cfg;
  BackendStats& st = *stats_;
  const bool is_tail = bucket == model_->pool;
  const bool is_write = write_ratio_ > 0.0 && rng_.NextBernoulli(write_ratio_);

  uint64_t key;
  if (is_tail) {
    const uint64_t rank =
        model_->pool + rng_.NextBounded(cc.num_keys - model_->pool);
    key = KeyOfRank(rank, hot_shift_, cc.num_keys);
  } else {
    key = KeyOfRank(bucket, hot_shift_, cc.num_keys);
  }
  const uint32_t server = model_->placement.ServerOf(key);

  if (is_write) {
    ++st.writes;
    if (TransitBlackholed()) {
      ++st.dropped;
      return;
    }
    scratch_servers_.clear();
    if (policy_->config().write == WritePolicy::kWriteBack) {
      const std::optional<CacheNodeId> absorbed =
          policy_->WriteBack(key, scratch_servers_);
      if (absorbed) {
        OpenLoopCache(*absorbed);
        sink.AddCacheLoad(*absorbed, 1.0);
        ++st.cache_write_hits;
      } else {
        OpenLoopServer(server);
        sink.AddServerLoad(server, 1.0);
      }
    } else {
      scratch_copies_.clear();
      policy_->WriteThrough(key, scratch_copies_, scratch_servers_);
      for (const CacheNodeId copy : scratch_copies_) {
        sink.AddCacheLoad(copy, cc.coherence_switch_cost);
      }
      OpenLoopServer(server);
      sink.AddServerLoad(
          server, 1.0 + cc.coherence_server_cost *
                            static_cast<double>(scratch_copies_.size()));
    }
    for (const uint32_t wb_server : scratch_servers_) {
      sink.AddServerLoad(wb_server, 1.0);
      ++st.writebacks;
    }
    return;
  }

  ++st.reads;
  if (observer_) {
    observer_->Record(key);
  }
  const CachePolicyRuntime::ReadProbe probe = policy_->Probe(key);
  if (!probe.hit) {
    if (TransitBlackholed()) {
      ++st.dropped;
      return;
    }
    scratch_servers_.clear();
    policy_->CommitMiss(key, scratch_servers_);
    for (const uint32_t wb_server : scratch_servers_) {
      sink.AddServerLoad(wb_server, 1.0);
      ++st.writebacks;
    }
    OpenLoopServer(server);
    sink.AddServerLoad(server, 1.0);
    ++st.server_reads;
    return;
  }
  if (probe.node.layer != 0 && TransitBlackholed()) {
    ++st.dropped;
    return;
  }
  scratch_servers_.clear();
  policy_->CommitHit(key, probe.node, scratch_servers_);
  for (const uint32_t wb_server : scratch_servers_) {
    sink.AddServerLoad(wb_server, 1.0);
    ++st.writebacks;
  }
  OpenLoopCache(probe.node);
  sink.AddCacheLoad(probe.node, 1.0);
  ++st.cache_hits;
  ++(probe.node.layer == 0 ? st.spine_hits : st.leaf_hits);
}

template <typename Sink>
void EngineCore::ProcessBatch(Sink& sink, const uint32_t* buckets, uint32_t count) {
  // One fused pass over the sampled bucket stream (the SoA staging of the
  // batch: all stochastic inputs are materialized in `buckets` before any
  // request executes), with route-table entries software-prefetched a fixed
  // distance ahead — the bucket stream is the only input to the entry address,
  // so the line is warm by the time the branch tree needs it. Requests run
  // through Process() in order, so this is bit-identical to the per-request
  // loop in every engine state, including active failure windows.
  //
  // A fully staged two-pass variant (resolve key/server/entry into SoA arrays,
  // then route) was measured at ~10-15% *slower* than this fused loop on the
  // reference hardware: the split serializes the RNG and routing dependency
  // chains the out-of-order core otherwise overlaps across iterations, and the
  // staging stores add traffic without removing any misses the prefetch does
  // not already hide. Re-measure with bench_scaling before re-staging.
  const RouteEntry* const route_data = route_data_;
  const uint32_t hot_len = route_hot_len_;
  constexpr uint32_t kPrefetchDistance = 16;
  // Compact tables leave buckets past the hot prefix (and the tail bucket)
  // with no entry to fetch; clamp those to entry 0 — one cmov, and the
  // formed address stays inside the allocation.
  const auto prefetch_entry = [route_data, hot_len](uint32_t bucket) {
    __builtin_prefetch(&route_data[bucket < hot_len ? bucket : 0], 0, 1);
  };
  const uint32_t lead = count < kPrefetchDistance ? count : kPrefetchDistance;
  for (uint32_t i = 0; i < lead; ++i) {
    prefetch_entry(buckets[i]);
  }
  for (uint32_t i = 0; i < count; ++i) {
    if (i + kPrefetchDistance < count) {
      prefetch_entry(buckets[i + kPrefetchDistance]);
    }
    Process(sink, buckets[i]);
  }
}

}  // namespace distcache

#endif  // DISTCACHE_SIM_ENGINE_CORE_H_
