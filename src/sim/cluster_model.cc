#include "sim/cluster_model.h"

#include <algorithm>
#include <cassert>

#include "common/hash.h"

namespace distcache {

ClusterModel::ClusterModel(const ClusterConfig& config, bool build_popularity)
    : cfg(config),
      layers(ResolvedCacheLayers(config)),
      placement(config.num_racks, config.servers_per_rack,
                HashCombine(config.seed, 0x91ace3e22ULL)),
      dist(MakeDistribution(config.num_keys, config.zipf_theta)) {
  CheckCacheLayersOrDie(cfg);
  CheckCachePolicyOrDie(cfg);
  AllocationConfig alloc;
  alloc.mechanism = cfg.mechanism;
  alloc.layers = layers;
  alloc.candidate_pool = std::min(cfg.candidate_pool, cfg.num_keys);
  alloc.hash_seed = HashCombine(cfg.seed, 0xd15ca4eULL);
  allocation = std::make_unique<CacheAllocation>(alloc, placement);
  controller = std::make_unique<CacheController>(allocation.get(), cfg.num_spine);
  pool = allocation->candidate_pool();
  if (build_popularity) {
    popularity = BuildPopularityVector(*dist, pool);
    head_with_tail = popularity.head;
    head_with_tail.push_back(popularity.tail_mass);
  }
}

void ClusterModel::ReallocateCache(const std::vector<uint64_t>& hottest_first) {
  controller->ReallocateCache(hottest_first, placement);
}

std::vector<double> ClusterModel::HeadWithTailFor(double theta) const {
  if (theta == cfg.zipf_theta) {
    return head_with_tail;
  }
  const auto phase_dist = MakeDistribution(cfg.num_keys, theta);
  PopularityVector pv = BuildPopularityVector(*phase_dist, pool);
  std::vector<double> pmf = std::move(pv.head);
  pmf.push_back(pv.tail_mass);
  return pmf;
}

void ClusterModel::SyncControllerRemap(const std::vector<uint8_t>& spine_alive) {
  for (uint32_t s = 0; s < cfg.num_spine; ++s) {
    if (!spine_alive[s] && controller->IsAlive(s)) {
      controller->OnSpineFailure(s);
    } else if (spine_alive[s] && !controller->IsAlive(s)) {
      controller->OnSpineRecovery(s);
    }
  }
}

}  // namespace distcache
