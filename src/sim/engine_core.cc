#include "sim/engine_core.h"

#include <algorithm>
#include <limits>

namespace distcache {

namespace {

// Observer sizing: the simulated controller aggregates switch reports in
// software, so the sketch is deliberately wider than the data-plane defaults
// (§5: 4×64K×16bit). Width 2^18 keeps per-cell collision mass ≪ 1 for the
// request windows the benches run, and threshold 2 admits every key seen twice
// within an observation window — sampled-tail keys essentially never are, head
// keys almost always are.
HeavyHitterDetector::Config ObserverConfig(uint64_t pool) {
  HeavyHitterDetector::Config cfg;
  cfg.sketch.width = 1 << 18;
  cfg.sketch.counter_max = std::numeric_limits<uint32_t>::max();
  cfg.report_threshold = 2;
  cfg.max_reports_per_epoch = static_cast<size_t>(2 * pool);
  return cfg;
}

// Applies one plan step's routing-relevant transition to (alive, shift, model) —
// the single source of truth for how a step changes the controller state — and
// returns the post-step route snapshot (null for steps that change no routes:
// kFailSpine keeps clients on their stale routes, kReallocateCache is computed
// at runtime). Shared by the construction-time plan walk and the
// post-reallocation suffix rebuild so the two can never diverge.
std::shared_ptr<const RouteTable> AdvancePlanState(const TimelineStep& step,
                                                   ClusterModel& model,
                                                   std::vector<uint8_t>& alive,
                                                   uint64_t& shift) {
  const auto snapshot = [&] {
    return std::make_shared<const RouteTable>(BuildRouteTable(model, shift));
  };
  if (step.is_phase) {
    shift = step.phase.hot_shift;
    return snapshot();
  }
  switch (step.event.kind) {
    case ClusterEvent::Kind::kFailSpine:
      if (step.event.spine < alive.size()) {
        alive[step.event.spine] = 0;
      }
      return nullptr;  // no remap: stale routes until recovery
    case ClusterEvent::Kind::kRecoverSpine:
      if (step.event.spine < alive.size()) {
        alive[step.event.spine] = 1;
      }
      model.SyncControllerRemap(alive);
      return snapshot();
    case ClusterEvent::Kind::kRunRecovery:
      model.SyncControllerRemap(alive);
      return snapshot();
    case ClusterEvent::Kind::kShiftHotspot:
      shift = step.event.value;
      return snapshot();
    case ClusterEvent::Kind::kReallocateCache:
      break;
  }
  return nullptr;
}

}  // namespace

uint64_t PlanRouteTableBytes(const RouteTable* base,
                             const std::vector<TimelineStep>& plan) {
  uint64_t total = base != nullptr ? base->bytes() : 0;
  for (const TimelineStep& step : plan) {
    if (step.routes != nullptr) {
      total += step.routes->bytes();
    }
  }
  return total;
}

bool TimelineNeedsObserver(const std::vector<ClusterEvent>& events) {
  return std::any_of(events.begin(), events.end(), [](const ClusterEvent& e) {
    return e.kind == ClusterEvent::Kind::kReallocateCache;
  });
}

std::vector<TimelineStep> BuildTimelinePlan(const SimBackendConfig& config,
                                            ClusterModel& model) {
  std::vector<TimelineStep> plan;
  plan.reserve(config.events.size() + config.phases.size());
  for (const WorkloadPhase& phase : config.phases) {
    TimelineStep step;
    step.at_request = phase.start_request;
    step.is_phase = true;
    step.phase = phase;
    plan.push_back(std::move(step));
  }
  for (const ClusterEvent& event : config.events) {
    TimelineStep step;
    step.at_request = event.at_request;
    step.event = event;
    plan.push_back(std::move(step));
  }
  // Phases before events on ties; otherwise list order (stable).
  std::stable_sort(plan.begin(), plan.end(),
                   [](const TimelineStep& a, const TimelineStep& b) {
                     if (a.at_request != b.at_request) {
                       return a.at_request < b.at_request;
                     }
                     return a.is_phase && !b.is_phase;
                   });

  // Walk the timeline once, tracking the alive set the way the controller would
  // observe it, and snapshot the route table after every routing-relevant step
  // (each snapshot is a pure function of the timeline prefix, so precomputing it
  // off the hot path is exact). kReallocateCache snapshots cannot be precomputed:
  // they depend on runtime-observed counts.
  std::vector<uint8_t> alive(model.cfg.num_spine, 1);
  uint64_t shift = 0;
  for (TimelineStep& step : plan) {
    if (step.is_phase && !config.two_level_sampling) {
      // O(pool) dense pmf for the phase's sampler rebuild. Two-level mode
      // skips it: the engines rebuild their O(hot) samplers from the phase's
      // zipf_theta in closed form instead (the hook receives a null pmf).
      step.pmf = std::make_shared<const std::vector<double>>(
          model.HeadWithTailFor(step.phase.zipf_theta));
    }
    step.routes = AdvancePlanState(step, model, alive, shift);
  }
  return plan;
}

std::vector<std::shared_ptr<const RouteTable>> RebuildPlanSuffixRoutes(
    const std::vector<TimelineStep>& plan, size_t from, ClusterModel& model,
    std::vector<uint8_t> alive_now, uint64_t shift_now) {
  std::vector<std::shared_ptr<const RouteTable>> routes;
  if (from >= plan.size()) {
    return routes;
  }
  routes.reserve(plan.size() - from);
  std::vector<uint8_t> alive = std::move(alive_now);
  uint64_t shift = shift_now;
  for (size_t i = from; i < plan.size(); ++i) {
    routes.push_back(AdvancePlanState(plan[i], model, alive, shift));
  }
  return routes;
}

EngineCore::EngineCore(const ClusterModel* model, uint64_t rng_seed,
                       uint64_t router_seed, bool enable_observer)
    : model_(model),
      rng_(rng_seed),
      view_(MakeTrackerConfig(model->cfg)),
      router_(&view_, model->cfg.routing, router_seed),
      write_ratio_(model->cfg.write_ratio),
      spine_alive_(model->cfg.num_spine, 1) {
  if (enable_observer) {
    observer_ = std::make_unique<HeavyHitterDetector>(ObserverConfig(model->pool));
  }
  const CachePolicyKind kind = model->cfg.cache_policy;
  if (kind == CachePolicyKind::kStaticTopK) {
    policy_mode_ = kSerialStatic;
  } else if (PolicyIsDynamic(kind)) {
    policy_mode_ = kDynamicPolicy;
    CachePolicyConfig pc;
    pc.policy = kind;
    pc.hierarchy = model->cfg.cache_hierarchy;
    pc.write = model->cfg.write_policy;
    // One replica per engine stream; the seed is stream-independent so every
    // shard's replica filters identically (per-shard divergence comes from the
    // request streams, like the telemetry-staleness relaxation).
    pc.seed = HashCombine(model->cfg.seed, 0xca9e9071c7ULL);
    policy_ = std::make_unique<CachePolicyRuntime>(
        pc, model->allocation.get(), &model->placement, &spine_alive_);
  }
}

void EngineCore::ConfigureOpenLoop(const QueueModelConfig& queue,
                                   uint64_t time_seed) {
  if (!queue.enabled()) {
    return;  // closed loop: the byte stays 0 and no state is allocated
  }
  open_loop_ = 1;
  time_rng_.Seed(time_seed);
  arrival_ = queue.arrival;
  hop_cost_ = queue.hop_cost;
  server_rate_ = queue.server_service_rate > 0.0 ? queue.server_service_rate : 1.0;
  layer_rate_ = ResolveServiceRates(queue, model_->cfg);
  vnow_ = 0.0;
  cache_free_at_ = model_->ZeroCacheLoads();
  server_free_at_.assign(model_->num_servers(), 0.0);
}

void EngineCore::ApplyAction(const Action& action) {
  // Route installation honoring both snapshot flavors: the owning shared_ptr
  // (in-process plans) and the non-owning arena view (multiproc plans).
  const auto install_routes = [this, &action] {
    if (action.has_route_view) {
      SetRouteView(action.route_view, action.route_view_len,
                   action.overflow_view);
    } else if (action.routes != nullptr) {
      SetRoutes(action.routes);
    }
  };
  if (action.is_phase) {
    write_ratio_ = action.phase.write_ratio;
    hot_shift_ = action.phase.hot_shift;
    install_routes();
    // Phase boundaries reset the observation window: the controller must rank
    // keys by their popularity under the *new* regime, not the accumulated past.
    ResetObserver();
    if (phase_hook_) {
      phase_hook_(action.phase, action.pmf);
    }
    return;
  }
  const ClusterEvent& event = action.event;
  const uint32_t num_spine = model_->cfg.num_spine;
  switch (event.kind) {
    case ClusterEvent::Kind::kFailSpine:
      if (event.spine < num_spine && spine_alive_[event.spine]) {
        spine_alive_[event.spine] = 0;
        ++dead_spines_;
        recovery_ran_ = false;  // hot objects of the dead switch lose their copy
        view_.MarkDead({0, event.spine});
        if (policy_) {
          // The failed switch loses its cache (dirty lines and all); it comes
          // back cold on recovery and rewarms through the policy's fill path.
          policy_->InvalidateNode({0, event.spine});
        }
      }
      break;
    case ClusterEvent::Kind::kRecoverSpine:
      if (event.spine < num_spine && !spine_alive_[event.spine]) {
        spine_alive_[event.spine] = 1;
        --dead_spines_;
        view_.MarkAlive({0, event.spine});
      }
      install_routes();  // partitions return to their home switch
      break;
    case ClusterEvent::Kind::kRunRecovery:
      recovery_ran_ = true;
      install_routes();  // invalidate cached routes
      break;
    case ClusterEvent::Kind::kShiftHotspot:
      hot_shift_ = event.value;
      install_routes();
      ResetObserver();
      break;
    case ClusterEvent::Kind::kReallocateCache:
      if (realloc_hook_) {
        if (std::shared_ptr<const RouteTable> routes = realloc_hook_()) {
          SetRoutes(std::move(routes));
        }
      }
      // A fresh window: subsequent re-allocations rank by post-reallocation
      // popularity only.
      ResetObserver();
      break;
  }
}

}  // namespace distcache
