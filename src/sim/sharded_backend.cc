#include "sim/sharded_backend.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <functional>
#include <thread>
#include <utility>

#include "common/cacheline.h"
#include "common/hash.h"
#include "runtime/affinity.h"
#include "runtime/backoff.h"
#include "sketch/heavy_hitter.h"

namespace distcache {

namespace {

// Data-plane ring depth per directed shard pair. Traffic is O(epochs + 1) per
// pair (telemetry broadcasts plus one end-of-run delta flush), so 256 slots is
// deep backpressure headroom, not a tuning knob.
constexpr size_t kRingCapacity = 256;

}  // namespace

struct alignas(kCacheLineSize) ShardedBackend::Shard {
  Shard(uint32_t id, const ClusterModel* model, uint64_t seed, bool observer)
      : id(id),
        core(model, HashCombine(HashCombine(seed, 0x5aa4dedULL), id),
             HashCombine(HashCombine(seed, 0x90076eULL), id), observer) {}

  uint32_t id;
  EngineCore core;  // routing/degradation/timeline/stats core for this stream
  EventQueue queue;
  // Control plane (timeline, rendezvous, done). Data plane: data_in[p] is the
  // SPSC ring carrying peer p's telemetry/deltas to this shard (consumer side
  // lives with the receiver; slot [id] is unused).
  Channel<ShardMsg> inbox;
  std::vector<std::unique_ptr<SpscRing<ShardMsg>>> data_in;

  // Authoritative cumulative loads for *owned* nodes live in local.{cache,
  // server}_load; counters are shard-local partials. Merging all shards' stats
  // yields the global picture. Owned-node loads are materialized by the
  // end-of-run flush (FlushLoads), never written on the hot path.
  BackendStats local;

  // Dense per-node accumulation of this shard's own contributions — the only
  // hot-path load stores. own_cache doubles as the telemetry payload (cumulative
  // partials) and as the end-of-run delta source; own_server is flushed once at
  // quota end. Cache nodes are flat-indexed top-layer-first (LayerOffsets).
  // Cache-line-padded so no two shards' accumulators can share a line.
  CacheAlignedVector<double> own_cache;
  CacheAlignedVector<double> own_server;
  // last_partial[peer][flat]: the most recent partial received from `peer`, so
  // telemetry application can fold in only the monotone increment.
  std::vector<std::vector<double>> last_partial;
  std::vector<ShardMsg> out;        // flush assembly, one slot per destination shard
  CacheAlignedVector<uint32_t> batch_keys;  // sampled buckets for the current batch
  uint64_t processed = 0;
  uint32_t done_seen = 0;

  // Current phase's sampler: the backend-shared phase-0 table, or this shard's
  // rebuilt one after a phase boundary. Exactly one of sampler / two_level is
  // active (two-level mode swaps the dense alias table for the O(hot) one).
  const AliasSampler* sampler = nullptr;
  std::unique_ptr<AliasSampler> phase_sampler;
  const TwoLevelSampler* two_level = nullptr;
  std::unique_ptr<TwoLevelSampler> phase_two_level;

  // Timeline bookkeeping: steps queued from the controller multicast (the core
  // applies them at this shard's scaled local clock), plus re-allocation
  // rendezvous state for out-of-order arrivals.
  size_t timeline_received = 0;
  std::vector<std::vector<std::pair<uint64_t, uint32_t>>> pending_reports;
  std::unique_ptr<ShardMsg> pending_route_update;
  double quota_scale = 1.0;  // quota / num_requests

  std::thread thread;
};

// The branch-free hot-path sink: every charge is two dense array adds (own
// contribution + optimistic local view). No owner test, no shared write — the
// owner split is deferred to FlushLoads at quota end.
struct ShardedBackend::ShardSink {
  ShardedBackend* backend;
  Shard* shard;

  void AddCacheLoad(CacheNodeId node, double delta) {
    shard->own_cache[backend->shard_map_.FlatIndex(node)] += delta;
    shard->core.view().Add(node, delta);  // optimistic local view
  }
  void AddServerLoad(uint32_t server, double delta) {
    shard->own_server[server] += delta;
  }
};

ShardedBackend::ShardedBackend(const SimBackendConfig& config)
    : config_(config),
      model_(config.cluster, /*build_popularity=*/!config.two_level_sampling),
      shard_map_(
          [this] {
            std::vector<uint32_t> sizes;
            for (const LayerSpec& layer : model_.layers) {
              sizes.push_back(layer.nodes);
            }
            return sizes;
          }(),
          model_.num_servers(), config.shards),
      sampler_(model_.head_with_tail) {
  model_.dense_routes = config_.dense_routes;
  base_routes_ = std::make_shared<const RouteTable>(BuildRouteTable(model_));
  if (config_.batch_size == 0) {
    config_.batch_size = 1;  // a 0-request batch would respawn itself forever
  }
  if (config_.two_level_sampling) {
    two_level_ = std::make_unique<TwoLevelSampler>(
        model_.cfg.num_keys, model_.cfg.zipf_theta, model_.pool);
  }
  // Snapshot walk: every step's post-step route table / pmf is a pure function
  // of the timeline prefix, precomputed here off the hot path (base_routes_
  // first — the walk mutates the controller state).
  plan_ = BuildTimelinePlan(config_, model_);
}

ShardedBackend::~ShardedBackend() = default;

void ShardedBackend::SendData(Shard& shard, uint32_t peer, ShardMsg msg) {
  SpscRing<ShardMsg>& ring = *shards_[peer]->data_in[shard.id];
  Backoff backoff;
  while (!ring.TryPush(std::move(msg))) {
    // Full ring: the receiver is behind on its drains. Consuming our own rings
    // while retrying guarantees global progress (no send cycle can wedge: some
    // shard in it always empties a ring).
    DrainDataRings(shard);
    backoff.Pause();
  }
  ++shard.local.cross_shard_messages;
  ++shard.local.ring_messages;
}

void ShardedBackend::SendControl(Shard& shard, uint32_t peer, ShardMsg msg) {
  const bool sent = shards_[peer]->inbox.Send(std::move(msg));
  assert(sent);  // shard control channels are never closed while workers run
  (void)sent;
  ++shard.local.cross_shard_messages;
}

void ShardedBackend::QueueTimelineMsg(Shard& shard, const ShardMsg& msg) {
  shard.core.QueueAction({static_cast<double>(msg.event.at_request) *
                              shard.quota_scale,
                          msg.is_phase, msg.phase, msg.event, msg.pmf,
                          msg.route_table});
  ++shard.timeline_received;
}

void ShardedBackend::BroadcastTimeline(Shard& shard, uint64_t num_requests) {
  (void)num_requests;  // the filter already happened when fired_plan_ was built
  for (const TimelineStep& step : fired_plan_) {
    ShardMsg msg;
    msg.kind = ShardMsg::Kind::kClusterEvent;
    msg.from = shard.id;
    msg.is_phase = step.is_phase;
    msg.phase = step.phase;
    msg.event = step.event;
    msg.event.at_request = step.at_request;  // phase steps carry it here too
    msg.pmf = step.pmf;
    msg.route_table = step.routes;
    for (uint32_t peer = 0; peer < shard_map_.shards(); ++peer) {
      if (peer != shard.id) {
        SendControl(shard, peer, msg);  // copy: same snapshot to every peer
      }
    }
    QueueTimelineMsg(shard, msg);
  }
}

std::shared_ptr<const RouteTable> ShardedBackend::ReallocateFromReports(
    Shard& shard,
    const std::vector<std::vector<std::pair<uint64_t, uint32_t>>>& reports,
    std::vector<std::shared_ptr<const RouteTable>>* suffix_routes) {
  // Controller re-allocation (§6.4): merged observed counts → hottest-first
  // refill → fresh routes. The controller acts on its *current* failure
  // knowledge: re-sync its remap to the alive set as of this step (every shard
  // has applied the same event prefix when it reaches the rendezvous, so the
  // controller shard's view is the cluster's) — the construction-time plan walk
  // left the model at the end-of-timeline state.
  model_.SyncControllerRemap(shard.core.spine_alive());
  std::vector<uint64_t> hottest;
  for (const auto& [key, count] : MergeHeavyHitterReports(reports)) {
    hottest.push_back(key);
  }
  model_.ReallocateCache(hottest);
  auto routes = std::make_shared<const RouteTable>(
      BuildRouteTable(model_, shard.core.hot_shift()));
  // The remaining timeline's precomputed snapshots describe the pre-refill
  // cached set; rebuild them against the refilled allocation so later
  // failure/shift steps do not resurrect it. Every shard's pending actions are
  // the same fired_plan_ suffix, so one rebuild serves the whole cluster.
  *suffix_routes = RebuildPlanSuffixRoutes(
      fired_plan_, shard.core.next_action_index(), model_,
      shard.core.spine_alive(), shard.core.hot_shift());
  return routes;
}

void ShardedBackend::ApplySuffixRoutes(
    Shard& shard, const std::vector<std::shared_ptr<const RouteTable>>& suffix) {
  const size_t from = shard.core.next_action_index();
  for (size_t i = 0; i < suffix.size(); ++i) {
    if (suffix[i] != nullptr) {
      shard.core.SetActionRoutes(from + i, suffix[i]);
    }
  }
}

std::optional<ShardMsg> ShardedBackend::WaitControl(Shard& shard) {
  Backoff backoff;
  while (true) {
    if (auto msg = shard.inbox.TryReceive()) {
      return msg;
    }
    if (shard.inbox.closed()) {
      return std::nullopt;  // shutdown under the waiter
    }
    // Keep the data plane moving while parked: a waiting shard must never
    // wedge a producer on a full ring.
    DrainDataRings(shard);
    backoff.Pause();
  }
}

std::shared_ptr<const RouteTable> ShardedBackend::Reallocate(Shard& shard) {
  const uint32_t controller = shard_map_.controller_shard();
  const uint32_t peers = shard_map_.shards() - 1;
  if (shard.id == controller) {
    // Collect every shard's observed counts. Peers are guaranteed to reach the
    // same step (it precedes their quota), so this barrier cannot deadlock;
    // unrelated traffic keeps being applied while we wait.
    std::vector<std::vector<std::pair<uint64_t, uint32_t>>> reports;
    reports.push_back(shard.core.ObservedCounts());
    uint32_t received = 0;
    while (!shard.pending_reports.empty() && received < peers) {
      reports.push_back(std::move(shard.pending_reports.back()));
      shard.pending_reports.pop_back();
      ++received;
    }
    while (received < peers) {
      auto msg = WaitControl(shard);
      if (!msg) {
        return nullptr;  // channel closed
      }
      if (msg->kind == ShardMsg::Kind::kHotReport) {
        reports.push_back(std::move(msg->hot_counts));
        ++received;
      } else {
        Apply(shard, *msg);
      }
    }
    std::vector<std::shared_ptr<const RouteTable>> suffix;
    std::shared_ptr<const RouteTable> routes =
        ReallocateFromReports(shard, reports, &suffix);
    ApplySuffixRoutes(shard, suffix);
    for (uint32_t peer = 0; peer < shard_map_.shards(); ++peer) {
      if (peer == shard.id) {
        continue;
      }
      ShardMsg update;
      update.kind = ShardMsg::Kind::kRouteUpdate;
      update.from = shard.id;
      update.route_table = routes;
      update.suffix_routes = suffix;
      SendControl(shard, peer, std::move(update));
    }
    return routes;
  }
  // Non-controller: report local observations, then wait for the new table.
  ShardMsg report;
  report.kind = ShardMsg::Kind::kHotReport;
  report.from = shard.id;
  report.hot_counts = shard.core.ObservedCounts();
  SendControl(shard, controller, std::move(report));
  if (shard.pending_route_update != nullptr) {
    const auto update = std::exchange(shard.pending_route_update, nullptr);
    ApplySuffixRoutes(shard, update->suffix_routes);
    return update->route_table;
  }
  while (true) {
    auto msg = WaitControl(shard);
    if (!msg) {
      return nullptr;  // channel closed
    }
    if (msg->kind == ShardMsg::Kind::kRouteUpdate) {
      ApplySuffixRoutes(shard, msg->suffix_routes);
      return msg->route_table;
    }
    Apply(shard, *msg);
  }
}

void ShardedBackend::Apply(Shard& shard, ShardMsg& msg) {
  switch (msg.kind) {
    case ShardMsg::Kind::kLoadDeltas:
      for (const auto& [node, delta] : msg.cache_entries) {
        shard.local.cache_load[node.layer][node.index] += delta;
      }
      for (const auto& [server, delta] : msg.server_entries) {
        shard.local.server_load[server] += delta;
      }
      break;
    case ShardMsg::Kind::kTelemetry: {
      // Fold in the sender's monotone increment since its previous broadcast; the
      // view stays the sum of per-shard partials plus our exact own counts.
      std::vector<double>& last = shard.last_partial[msg.from];
      for (uint32_t flat = 0; flat < msg.cache_partials.size(); ++flat) {
        const double delta = msg.cache_partials[flat] - last[flat];
        if (delta != 0.0) {
          shard.core.view().Add(shard_map_.NodeOfFlat(flat), delta);
          last[flat] = msg.cache_partials[flat];
        }
      }
      break;
    }
    case ShardMsg::Kind::kClusterEvent:
      // FIFO per sender: steps arrive in timeline order. Queue for application
      // at this shard's local scaled timestamp (batch-boundary check).
      QueueTimelineMsg(shard, msg);
      break;
    case ShardMsg::Kind::kHotReport:
      // A peer is already at its next kReallocateCache step; stash until this
      // shard's rendezvous consumes it.
      shard.pending_reports.push_back(std::move(msg.hot_counts));
      break;
    case ShardMsg::Kind::kRouteUpdate:
      shard.pending_route_update = std::make_unique<ShardMsg>(std::move(msg));
      break;
    case ShardMsg::Kind::kDone:
      ++shard.done_seen;
      break;
  }
}

void ShardedBackend::DrainDataRings(Shard& shard) {
  for (uint32_t peer = 0; peer < shard_map_.shards(); ++peer) {
    SpscRing<ShardMsg>& ring = *shard.data_in[peer];
    // EmptyApprox first: the idle-peer case (the common one at batch
    // boundaries) is a single acquire load, no slot traffic.
    if (ring.EmptyApprox()) {
      continue;
    }
    while (auto msg = ring.TryPop()) {
      Apply(shard, *msg);
    }
  }
}

void ShardedBackend::PollInbox(Shard& shard) {
  DrainDataRings(shard);
  // Control channel: the lock-free emptiness probe makes the (overwhelmingly
  // common) no-control-traffic poll mutex-free. The uncontended/contended
  // split is counted here — at the batch boundary only — so wait-loop spins
  // (WaitControl) cannot inflate the hot-path poll statistics.
  if (shard.inbox.empty_approx()) {
    ++shard.local.uncontended_receives;
    return;
  }
  ++shard.local.contended_receives;
  while (auto msg = shard.inbox.TryReceive()) {
    Apply(shard, *msg);
  }
}

void ShardedBackend::FlushLoads(Shard& shard) {
  // End-of-run owner split (the hot path never tests ownership): own cumulative
  // contributions land either in this shard's authoritative counters or in one
  // delta message per owning shard. Loads are sums of exactly-representable
  // costs, so materializing the total here instead of accumulating per request
  // is bit-identical.
  for (uint32_t flat = 0; flat < shard.own_cache.size(); ++flat) {
    const double delta = shard.own_cache[flat];
    if (delta == 0.0) {
      continue;
    }
    const CacheNodeId node = shard_map_.NodeOfFlat(flat);
    if (shard_map_.OwnerOfFlat(flat) == shard.id) {
      shard.local.cache_load[node.layer][node.index] += delta;
    } else {
      shard.out[shard_map_.OwnerOfFlat(flat)].cache_entries.emplace_back(node,
                                                                         delta);
    }
  }
  for (uint32_t server = 0; server < shard.own_server.size(); ++server) {
    const double delta = shard.own_server[server];
    if (delta == 0.0) {
      continue;
    }
    if (shard_map_.OwnerOfServer(server) == shard.id) {
      shard.local.server_load[server] += delta;
    } else {
      shard.out[shard_map_.OwnerOfServer(server)].server_entries.emplace_back(
          server, delta);
    }
  }
  for (uint32_t peer = 0; peer < shard_map_.shards(); ++peer) {
    ShardMsg& pending = shard.out[peer];
    if (pending.cache_entries.empty() && pending.server_entries.empty()) {
      continue;
    }
    ShardMsg msg;
    msg.kind = ShardMsg::Kind::kLoadDeltas;
    msg.from = shard.id;
    msg.cache_entries = std::move(pending.cache_entries);
    msg.server_entries = std::move(pending.server_entries);
    pending.cache_entries.clear();
    pending.server_entries.clear();
    SendData(shard, peer, std::move(msg));
  }
}

void ShardedBackend::BroadcastTelemetry(Shard& shard) {
  ShardMsg msg;
  msg.kind = ShardMsg::Kind::kTelemetry;
  msg.from = shard.id;
  msg.cache_partials.assign(shard.own_cache.begin(), shard.own_cache.end());
  for (uint32_t peer = 0; peer < shard_map_.shards(); ++peer) {
    if (peer != shard.id) {
      SendData(shard, peer, msg);  // copy: same snapshot to every peer
    }
  }
}

void ShardedBackend::ProcessBatch(Shard& shard, uint32_t count) {
  PollInbox(shard);
  // Apply timeline steps whose scaled timestamp the local request clock has
  // reached (accurate to one batch; deterministic under OS scheduling skew),
  // then close any due sample intervals.
  shard.core.AdvanceTo(shard.processed);
  shard.batch_keys.resize(count);
  if (shard.two_level != nullptr) {
    shard.two_level->SampleBatch(shard.core.rng(), shard.batch_keys.data(), count);
  } else {
    shard.sampler->SampleBatch(shard.core.rng(), shard.batch_keys.data(), count);
  }
  ShardSink sink{this, &shard};
  shard.core.ProcessBatch(sink, shard.batch_keys.data(), count);
  shard.processed += count;
}

void ShardedBackend::ShardMain(Shard& shard, uint64_t quota, uint64_t num_requests) {
  if (config_.pin_cores) {
    // One shard per core: stops the scheduler migrating shards mid-run, which
    // both steadies bench numbers and keeps each shard's working set on the
    // core (and NUMA node) that first touched it.
    PinToCore(shard.id);
  }
  const uint32_t num_cache_nodes = shard_map_.num_cache_nodes();
  shard.local.cache_load = model_.ZeroCacheLoads();
  shard.local.server_load.assign(model_.num_servers(), 0.0);
  shard.own_cache.assign(num_cache_nodes, 0.0);
  shard.own_server.assign(model_.num_servers(), 0.0);
  shard.last_partial.assign(shard_map_.shards(),
                            std::vector<double>(num_cache_nodes, 0.0));
  shard.out.resize(shard_map_.shards());
  shard.sampler = &sampler_;
  shard.two_level = two_level_.get();
  shard.quota_scale = num_requests == 0
                          ? 0.0
                          : static_cast<double>(quota) / static_cast<double>(num_requests);
  shard.core.BindStats(&shard.local);
  shard.core.SetRoutes(base_routes_);
  // Open-loop: each shard simulates an independent full-rate time slice of the
  // cluster (full arrival rate, full service rates, its own queue horizons), so
  // the quota-end Merge of per-shard histograms is a union of slices rather
  // than a re-timed interleaving. The time stream mixes in the shard id — the
  // key/write streams already diverge per shard the same way.
  shard.core.ConfigureOpenLoop(
      config_.queue,
      HashCombine(HashCombine(config_.cluster.seed, 0x0be71457ULL), shard.id));
  shard.core.SetSampleStep(static_cast<double>(config_.sample_interval) *
                           shard.quota_scale);
  shard.core.SetPhaseHook(
      [this, &shard](const WorkloadPhase& phase,
                     const std::shared_ptr<const std::vector<double>>& pmf) {
        if (shard.two_level != nullptr) {
          // Closed-form O(hot) rebuild from the phase's skew — no pmf exists
          // in two-level mode. Consumes no RNG, like the dense rebuild.
          shard.phase_two_level = std::make_unique<TwoLevelSampler>(
              model_.cfg.num_keys, phase.zipf_theta, model_.pool);
          shard.two_level = shard.phase_two_level.get();
        } else if (pmf != nullptr) {
          // O(pool) rebuild, amortized over the phase; consumes no RNG, so the
          // shard's key stream stays deterministic.
          shard.phase_sampler = std::make_unique<AliasSampler>(*pmf);
          shard.sampler = shard.phase_sampler.get();
        }
      });
  shard.core.SetReallocateHook([this, &shard] { return Reallocate(shard); });

  const size_t expected_steps = fired_plan_.size();
  if (expected_steps > 0) {
    if (shard.id == shard_map_.controller_shard()) {
      BroadcastTimeline(shard, num_requests);
    } else {
      // Deterministic rendezvous: the plan length is config-known, so wait
      // until the controller's multicast has fully arrived before processing any
      // request — otherwise a step timestamped near 0 could race the first
      // batches. Only kClusterEvent control traffic can be in flight at this
      // point (every non-controller shard is parked here), but Apply() handles
      // any kind.
      while (shard.timeline_received < expected_steps) {
        auto msg = WaitControl(shard);
        if (!msg) {
          break;  // channel closed
        }
        Apply(shard, *msg);
      }
    }
  }

  // Event-driven shard loop: one simulated time unit per request. Batch events
  // self-reschedule until the quota is met; telemetry events fire every epoch.
  std::function<void()> batch_event = [&] {
    if (shard.processed >= quota) {
      return;
    }
    const uint32_t count = static_cast<uint32_t>(
        std::min<uint64_t>(config_.batch_size, quota - shard.processed));
    ProcessBatch(shard, count);
    if (shard.processed < quota) {
      shard.queue.Schedule(static_cast<double>(count), batch_event);
    }
  };
  std::function<void()> telemetry_event = [&] {
    if (shard.processed >= quota) {
      return;
    }
    BroadcastTelemetry(shard);
    shard.queue.Schedule(static_cast<double>(config_.epoch_requests),
                         telemetry_event);
  };
  shard.queue.Schedule(0.0, batch_event);
  if (config_.epoch_requests > 0 && shard_map_.shards() > 1) {
    shard.queue.Schedule(static_cast<double>(config_.epoch_requests),
                         telemetry_event);
  }
  shard.queue.RunUntil(static_cast<double>(quota) + 1.0);

  // Catch-up: steps whose scaled timestamp landed inside the final batch (or a
  // zero quota) were not seen by a batch boundary; apply them now so every shard
  // participates in every rendezvous and series indices stay aligned.
  shard.core.AdvanceTo(quota);

  // Quota done: split the accumulated own contributions into owner-local
  // counters and one delta message per destination (the deferred owner split),
  // tell every peer over the control channel, then absorb in-flight traffic
  // until all peers are done too. Ring pushes happen-before the sender's kDone,
  // so the final drain below cannot miss a delta.
  FlushLoads(shard);
  for (uint32_t peer = 0; peer < shard_map_.shards(); ++peer) {
    if (peer == shard.id) {
      continue;
    }
    ShardMsg done;
    done.kind = ShardMsg::Kind::kDone;
    done.from = shard.id;
    SendControl(shard, peer, std::move(done));
  }
  {
    const uint32_t peers = shard_map_.shards() - 1;
    while (shard.done_seen < peers) {
      auto msg = WaitControl(shard);
      if (!msg) {
        break;  // channel closed
      }
      Apply(shard, *msg);
    }
    DrainDataRings(shard);  // every peer's final deltas are visible now
  }
  shard.core.FinishSeries(shard.processed);
  shard.local.requests = shard.processed;
  // Memory accounting (max-merged across shards, sim_backend.h): the shared
  // plan figure is identical per shard; the sampler figure is this shard's
  // currently active table (base or per-phase rebuild — same size either way).
  shard.local.peak_rss_bytes = CurrentPeakRssBytes();
  shard.local.route_table_bytes = PlanRouteTableBytes(base_routes_.get(), plan_);
  shard.local.sampler_bytes = shard.two_level != nullptr
                                  ? shard.two_level->bytes()
                                  : shard.sampler->bytes();
}

BackendStats ShardedBackend::Run(uint64_t num_requests) {
  const uint32_t n = shard_map_.shards();
  const bool observer = TimelineNeedsObserver(config_.events);
  fired_plan_.clear();
  for (const TimelineStep& step : plan_) {
    if (step.at_request < num_requests) {
      fired_plan_.push_back(step);  // at/beyond the Run's count: never fires
    }
  }
  shards_.clear();
  shards_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    shards_.push_back(
        std::make_unique<Shard>(i, &model_, config_.cluster.seed, observer));
  }
  for (uint32_t i = 0; i < n; ++i) {
    shards_[i]->data_in.reserve(n);
    for (uint32_t from = 0; from < n; ++from) {
      shards_[i]->data_in.push_back(
          std::make_unique<SpscRing<ShardMsg>>(kRingCapacity));
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  for (uint32_t i = 0; i < n; ++i) {
    const uint64_t quota = num_requests / n + (i < num_requests % n ? 1 : 0);
    Shard* shard = shards_[i].get();
    shard->thread = std::thread(
        [this, shard, quota, num_requests] { ShardMain(*shard, quota, num_requests); });
  }
  for (auto& shard : shards_) {
    shard->thread.join();
  }
  const auto t1 = std::chrono::steady_clock::now();

  BackendStats total;
  for (auto& shard : shards_) {
    total.Merge(shard->local);
  }
  total.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  shards_.clear();
  return total;
}

}  // namespace distcache
