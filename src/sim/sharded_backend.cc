#include "sim/sharded_backend.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <thread>
#include <utility>

#include "common/hash.h"

namespace distcache {

struct ShardedBackend::Shard {
  Shard(uint32_t id, const SimBackendConfig& cfg, uint64_t seed)
      : id(id),
        rng(HashCombine(HashCombine(seed, 0x5aa4dedULL), id)),
        view(MakeTrackerConfig(cfg.cluster)),
        router(&view, cfg.cluster.routing,
               HashCombine(HashCombine(seed, 0x90076eULL), id)) {}

  uint32_t id;
  Rng rng;
  EventQueue queue;
  LoadTracker view;
  PotRouter router;
  Channel<ShardMsg> inbox;

  // Authoritative cumulative loads for *owned* nodes live in local.{spine,leaf,
  // server}_load (non-owned entries stay zero); counters are shard-local partials.
  // Merging all shards' stats yields the global picture.
  BackendStats local;

  // Dense unsent-delta scratch for non-owned nodes, drained by the end-of-run
  // flush. Cache nodes are flat-indexed spine-first (spine i → i, leaf l →
  // num_spine + l).
  std::vector<double> cache_unsent;
  std::vector<double> server_unsent;
  // This shard's own cumulative contribution per cache node (reads routed there
  // plus write coherence touches) — the payload of telemetry broadcasts.
  std::vector<double> own_cache;
  // last_partial[peer][flat]: the most recent partial received from `peer`, so
  // telemetry application can fold in only the monotone increment.
  std::vector<std::vector<double>> last_partial;
  std::vector<ShardMsg> out;        // flush assembly, one slot per destination shard
  std::vector<uint32_t> batch_keys; // sampled buckets for the current batch
  uint64_t processed = 0;
  uint32_t done_seen = 0;
  std::vector<CacheNodeId> scratch_candidates;  // kReplicated / failure slow path

  // Failure-timeline state (see header). `pending_events` accumulates the
  // kClusterEvent stream (FIFO per sender, so it arrives sorted); `at_local[i]`
  // is pending_events[i].event.at_request scaled to this shard's quota.
  const RouteEntry* route_data = nullptr;  // hot-path view of `routes`
  std::shared_ptr<const RouteTable> routes;
  std::vector<ShardMsg> pending_events;
  std::vector<double> at_local;
  size_t next_event = 0;
  std::vector<uint8_t> spine_alive;
  uint32_t dead_spines = 0;
  bool recovery_ran = true;  // partitions start mapped to their home switches
  double quota_scale = 1.0;  // quota / num_requests

  // Interval-series bookkeeping (sample_interval scaled to the shard's quota).
  double sample_step = 0.0;
  double next_sample_at = 0.0;
  BackendStats::IntervalPoint mark;  // counters at the last closed boundary

  std::thread thread;
};

ShardedBackend::ShardedBackend(const SimBackendConfig& config)
    : config_(config),
      model_(config.cluster),
      shard_map_(config.cluster.num_spine, config.cluster.num_racks,
                 model_.num_servers(), config.shards),
      sampler_(model_.head_with_tail),
      base_routes_(std::make_shared<const RouteTable>(BuildRouteTable(model_))),
      events_(config.events) {
  if (config_.batch_size == 0) {
    config_.batch_size = 1;  // a 0-request batch would respawn itself forever
  }
  SortEventsByRequest(events_);
}

ShardedBackend::~ShardedBackend() = default;

void ShardedBackend::BroadcastTimeline(Shard& shard) {
  // Walk the timeline once, tracking the alive set the way the controller would
  // observe it, and snapshot the route table after every remap-triggering event
  // (the remap is a pure function of the timeline prefix, so precomputing it off
  // the hot path is exact). Each event is multicast with its snapshot attached;
  // shards — including this one — apply it at their local scaled timestamp.
  std::vector<uint8_t> alive(config_.cluster.num_spine, 1);
  for (const ClusterEvent& event : events_) {
    ShardMsg msg;
    msg.kind = ShardMsg::Kind::kClusterEvent;
    msg.from = shard.id;
    msg.event = event;
    switch (event.kind) {
      case ClusterEvent::Kind::kFailSpine:
        if (event.spine < alive.size()) {
          alive[event.spine] = 0;
        }
        break;  // no remap: clients keep their stale routes until recovery
      case ClusterEvent::Kind::kRecoverSpine:
        if (event.spine < alive.size()) {
          alive[event.spine] = 1;
        }
        model_.SyncControllerRemap(alive);
        msg.route_table = std::make_shared<const RouteTable>(BuildRouteTable(model_));
        break;
      case ClusterEvent::Kind::kRunRecovery:
        model_.SyncControllerRemap(alive);
        msg.route_table = std::make_shared<const RouteTable>(BuildRouteTable(model_));
        break;
    }
    for (uint32_t peer = 0; peer < shard_map_.shards(); ++peer) {
      if (peer == shard.id) {
        continue;
      }
      shards_[peer]->inbox.Send(msg);  // copy: same snapshot to every peer
      ++shard.local.cross_shard_messages;
    }
    shard.at_local.push_back(static_cast<double>(msg.event.at_request) *
                             shard.quota_scale);
    shard.pending_events.push_back(std::move(msg));
  }
}

void ShardedBackend::ApplyClusterEvent(Shard& shard, const ShardMsg& msg) {
  const ClusterEvent& event = msg.event;
  switch (event.kind) {
    case ClusterEvent::Kind::kFailSpine:
      if (event.spine < shard.spine_alive.size() && shard.spine_alive[event.spine]) {
        shard.spine_alive[event.spine] = 0;
        ++shard.dead_spines;
        shard.recovery_ran = false;
        shard.view.MarkDead({0, event.spine});
      }
      break;
    case ClusterEvent::Kind::kRecoverSpine:
      if (event.spine < shard.spine_alive.size() && !shard.spine_alive[event.spine]) {
        shard.spine_alive[event.spine] = 1;
        --shard.dead_spines;
        shard.view.MarkAlive({0, event.spine});
      }
      if (msg.route_table != nullptr) {
        shard.routes = msg.route_table;
        shard.route_data = shard.routes->data();
      }
      break;
    case ClusterEvent::Kind::kRunRecovery:
      shard.recovery_ran = true;
      if (msg.route_table != nullptr) {
        shard.routes = msg.route_table;  // invalidate cached routes
        shard.route_data = shard.routes->data();
      }
      break;
  }
}

bool ShardedBackend::TransitBlackholed(Shard& shard) {
  return !shard.recovery_ran && shard.dead_spines > 0 &&
         shard.rng.NextBounded(config_.cluster.num_spine) < shard.dead_spines;
}

void ShardedBackend::CloseInterval(Shard& shard) {
  shard.local.CloseIntervalAt(shard.processed, shard.mark);
}

void ShardedBackend::AddCacheLoad(Shard& shard, CacheNodeId node, double delta) {
  const uint32_t flat = shard_map_.FlatIndex(node);
  shard.own_cache[flat] += delta;     // telemetry partial
  shard.view.Add(node, delta);        // optimistic local view (invariant 3)
  if (shard_map_.OwnerOfCache(node) == shard.id) {
    (node.layer == 0 ? shard.local.spine_load[node.index]
                     : shard.local.leaf_load[node.index]) += delta;
  } else {
    shard.cache_unsent[flat] += delta;
  }
}

void ShardedBackend::AddServerLoad(Shard& shard, uint32_t server, double delta) {
  if (shard_map_.OwnerOfServer(server) == shard.id) {
    shard.local.server_load[server] += delta;
  } else {
    shard.server_unsent[server] += delta;
  }
}

void ShardedBackend::Apply(Shard& shard, ShardMsg& msg) {
  switch (msg.kind) {
    case ShardMsg::Kind::kLoadDeltas:
      for (const auto& [node, delta] : msg.cache_entries) {
        (node.layer == 0 ? shard.local.spine_load[node.index]
                         : shard.local.leaf_load[node.index]) += delta;
      }
      for (const auto& [server, delta] : msg.server_entries) {
        shard.local.server_load[server] += delta;
      }
      break;
    case ShardMsg::Kind::kTelemetry: {
      // Fold in the sender's monotone increment since its previous broadcast; the
      // view stays the sum of per-shard partials plus our exact own counts.
      std::vector<double>& last = shard.last_partial[msg.from];
      for (uint32_t flat = 0; flat < msg.cache_partials.size(); ++flat) {
        const double delta = msg.cache_partials[flat] - last[flat];
        if (delta != 0.0) {
          shard.view.Add(shard_map_.NodeOfFlat(flat), delta);
          last[flat] = msg.cache_partials[flat];
        }
      }
      break;
    }
    case ShardMsg::Kind::kClusterEvent:
      // FIFO per sender: events arrive in timeline order. Queue for application
      // at this shard's local scaled timestamp (batch-boundary check).
      shard.at_local.push_back(static_cast<double>(msg.event.at_request) *
                               shard.quota_scale);
      shard.pending_events.push_back(std::move(msg));
      break;
    case ShardMsg::Kind::kDone:
      ++shard.done_seen;
      break;
  }
}

void ShardedBackend::DrainInbox(Shard& shard, bool blocking) {
  if (blocking) {
    const uint32_t peers = shard_map_.shards() - 1;
    while (shard.done_seen < peers) {
      auto msg = shard.inbox.Receive();
      if (!msg) {
        return;  // channel closed
      }
      Apply(shard, *msg);
    }
    return;
  }
  while (auto msg = shard.inbox.TryReceive()) {
    Apply(shard, *msg);
  }
}

void ShardedBackend::FlushCacheDeltas(Shard& shard) {
  for (uint32_t flat = 0; flat < shard.cache_unsent.size(); ++flat) {
    const double delta = shard.cache_unsent[flat];
    if (delta == 0.0) {
      continue;
    }
    const CacheNodeId node = shard_map_.NodeOfFlat(flat);
    shard.out[shard_map_.OwnerOfCache(node)].cache_entries.emplace_back(node, delta);
    shard.cache_unsent[flat] = 0.0;
  }
  for (uint32_t peer = 0; peer < shard_map_.shards(); ++peer) {
    ShardMsg& pending = shard.out[peer];
    if (pending.cache_entries.empty() && pending.server_entries.empty()) {
      continue;
    }
    ShardMsg msg;
    msg.kind = ShardMsg::Kind::kLoadDeltas;
    msg.from = shard.id;
    msg.cache_entries = std::move(pending.cache_entries);
    msg.server_entries = std::move(pending.server_entries);
    pending.cache_entries.clear();
    pending.server_entries.clear();
    shards_[peer]->inbox.Send(std::move(msg));
    ++shard.local.cross_shard_messages;
  }
}

void ShardedBackend::FlushServerDeltas(Shard& shard) {
  for (uint32_t server = 0; server < shard.server_unsent.size(); ++server) {
    const double delta = shard.server_unsent[server];
    if (delta == 0.0) {
      continue;
    }
    shard.out[shard_map_.OwnerOfServer(server)].server_entries.emplace_back(server,
                                                                            delta);
    shard.server_unsent[server] = 0.0;
  }
}

void ShardedBackend::BroadcastTelemetry(Shard& shard) {
  ShardMsg msg;
  msg.kind = ShardMsg::Kind::kTelemetry;
  msg.from = shard.id;
  msg.cache_partials = shard.own_cache;  // dense snapshot of own contributions
  for (uint32_t peer = 0; peer < shard_map_.shards(); ++peer) {
    if (peer == shard.id) {
      continue;
    }
    shards_[peer]->inbox.Send(msg);  // copy: same snapshot to every peer
    ++shard.local.cross_shard_messages;
  }
}

void ShardedBackend::ProcessRequest(Shard& shard, uint32_t bucket) {
  const ClusterConfig& cc = config_.cluster;
  BackendStats& st = shard.local;
  const bool is_tail = bucket == model_.pool;
  const bool is_write =
      cc.write_ratio > 0.0 && shard.rng.NextBernoulli(cc.write_ratio);

  uint32_t server;
  const RouteEntry* entry = nullptr;
  if (is_tail) {
    const uint64_t key =
        model_.pool + shard.rng.NextBounded(cc.num_keys - model_.pool);
    server = model_.placement.ServerOf(key);
  } else {
    entry = &shard.route_data[bucket];
    server = entry->server;
  }

  if (is_write) {
    // Writes reach the primary through an ECMP-chosen spine; a pre-recovery dead
    // spine blackholes its share (§4.4). Coherence touches only alive copies.
    ++st.writes;
    if (TransitBlackholed(shard)) {
      ++st.dropped;
      return;
    }
    size_t num_copies = 0;
    if (entry != nullptr) {
      switch (entry->kind) {
        case RouteEntry::kPair:
          if (shard.spine_alive[entry->spine]) {
            ++num_copies;
            AddCacheLoad(shard, {0, entry->spine}, cc.coherence_switch_cost);
          }
          ++num_copies;
          AddCacheLoad(shard, {1, entry->leaf}, cc.coherence_switch_cost);
          break;
        case RouteEntry::kSpineOnly:
          if (shard.spine_alive[entry->spine]) {
            ++num_copies;
            AddCacheLoad(shard, {0, entry->spine}, cc.coherence_switch_cost);
          }
          break;
        case RouteEntry::kLeafOnly:
          ++num_copies;
          AddCacheLoad(shard, {1, entry->leaf}, cc.coherence_switch_cost);
          break;
        case RouteEntry::kReplicated:
          num_copies = static_cast<size_t>(cc.num_spine - shard.dead_spines) + 1;
          for (uint32_t s = 0; s < cc.num_spine; ++s) {
            if (shard.spine_alive[s]) {
              AddCacheLoad(shard, {0, s}, cc.coherence_switch_cost);
            }
          }
          AddCacheLoad(shard, {1, entry->leaf}, cc.coherence_switch_cost);
          break;
        default:
          break;
      }
    }
    AddServerLoad(shard, server,
                  1.0 + cc.coherence_server_cost * static_cast<double>(num_copies));
    return;
  }

  ++st.reads;
  // Blackholed candidates degrade the choice set exactly like the sequential
  // reference: a dead spine copy is skipped (the pair becomes a single leaf
  // choice), a spine-only key falls back to the primary server.
  const bool spine_dead =
      entry != nullptr && shard.dead_spines > 0 &&
      (entry->kind == RouteEntry::kPair || entry->kind == RouteEntry::kSpineOnly) &&
      !shard.spine_alive[entry->spine];
  if (entry == nullptr || entry->kind == RouteEntry::kUncached ||
      (spine_dead && entry->kind == RouteEntry::kSpineOnly)) {
    if (TransitBlackholed(shard)) {
      ++st.dropped;
      return;
    }
    AddServerLoad(shard, server, 1.0);
    ++st.server_reads;
    return;
  }

  CacheNodeId node;
  switch (entry->kind) {
    case RouteEntry::kPair:
      node = spine_dead ? CacheNodeId{1, entry->leaf}
                        : shard.router.ChoosePair({0, entry->spine}, {1, entry->leaf});
      break;
    case RouteEntry::kSpineOnly:
      node = {0, entry->spine};
      break;
    case RouteEntry::kLeafOnly:
      node = {1, entry->leaf};
      break;
    default: {  // kReplicated
      auto& cands = shard.scratch_candidates;
      cands.clear();
      for (uint32_t s = 0; s < cc.num_spine; ++s) {
        if (shard.spine_alive[s]) {
          cands.push_back({0, s});
        }
      }
      cands.push_back({1, entry->leaf});
      node = cands[shard.router.Choose(cands)];
      break;
    }
  }
  // Leaf hits transit an ECMP-chosen spine on the way down (§3.4); spine hits are
  // absorbed by their (alive) serving switch and cannot be blackholed.
  if (node.layer != 0 && TransitBlackholed(shard)) {
    ++st.dropped;
    return;
  }
  AddCacheLoad(shard, node, 1.0);
  ++st.cache_hits;
  ++(node.layer == 0 ? st.spine_hits : st.leaf_hits);
}

void ShardedBackend::ProcessBatch(Shard& shard, uint32_t count) {
  DrainInbox(shard, /*blocking=*/false);
  // Apply timeline events whose scaled timestamp the local request clock has
  // reached (accurate to one batch; deterministic under OS scheduling skew).
  while (shard.next_event < shard.pending_events.size() &&
         shard.at_local[shard.next_event] <=
             static_cast<double>(shard.processed)) {
    ApplyClusterEvent(shard, shard.pending_events[shard.next_event++]);
  }
  if (shard.sample_step > 0.0) {
    while (static_cast<double>(shard.processed) >= shard.next_sample_at) {
      CloseInterval(shard);
      shard.next_sample_at += shard.sample_step;
    }
  }
  shard.batch_keys.resize(count);
  sampler_.SampleBatch(shard.rng, shard.batch_keys.data(), count);
  for (uint32_t i = 0; i < count; ++i) {
    ProcessRequest(shard, shard.batch_keys[i]);
  }
  shard.processed += count;
}

void ShardedBackend::ShardMain(Shard& shard, uint64_t quota, uint64_t num_requests) {
  const ClusterConfig& cc = config_.cluster;
  shard.local.spine_load.assign(cc.num_spine, 0.0);
  shard.local.leaf_load.assign(cc.num_racks, 0.0);
  shard.local.server_load.assign(model_.num_servers(), 0.0);
  shard.cache_unsent.assign(cc.num_spine + cc.num_racks, 0.0);
  shard.server_unsent.assign(model_.num_servers(), 0.0);
  shard.own_cache.assign(cc.num_spine + cc.num_racks, 0.0);
  shard.last_partial.assign(shard_map_.shards(),
                            std::vector<double>(cc.num_spine + cc.num_racks, 0.0));
  shard.out.resize(shard_map_.shards());
  shard.spine_alive.assign(cc.num_spine, 1);
  shard.routes = base_routes_;
  shard.route_data = shard.routes->data();
  shard.quota_scale = num_requests == 0
                          ? 0.0
                          : static_cast<double>(quota) / static_cast<double>(num_requests);
  if (config_.sample_interval > 0) {
    shard.sample_step =
        static_cast<double>(config_.sample_interval) * shard.quota_scale;
    shard.next_sample_at = shard.sample_step;
    if (shard.sample_step <= 0.0) {
      shard.sample_step = 0.0;  // degenerate quota: no series from this shard
    }
  }
  if (!events_.empty()) {
    if (shard.id == 0) {
      BroadcastTimeline(shard);
    } else {
      // Deterministic rendezvous: the timeline length is config-known, so block
      // until the controller's multicast has fully arrived before processing any
      // request — otherwise an event timestamped near 0 could race the first
      // batches. Only kClusterEvent traffic can be in flight at this point (every
      // non-controller shard is parked here), but Apply() handles any kind.
      while (shard.pending_events.size() < events_.size()) {
        auto msg = shard.inbox.Receive();
        if (!msg) {
          break;  // channel closed
        }
        Apply(shard, *msg);
      }
    }
  }

  // Event-driven shard loop: one simulated time unit per request. Batch events
  // self-reschedule until the quota is met; telemetry events fire every epoch.
  std::function<void()> batch_event = [&] {
    if (shard.processed >= quota) {
      return;
    }
    const uint32_t count = static_cast<uint32_t>(
        std::min<uint64_t>(config_.batch_size, quota - shard.processed));
    ProcessBatch(shard, count);
    if (shard.processed < quota) {
      shard.queue.Schedule(static_cast<double>(count), batch_event);
    }
  };
  std::function<void()> telemetry_event = [&] {
    if (shard.processed >= quota) {
      return;
    }
    BroadcastTelemetry(shard);
    shard.queue.Schedule(static_cast<double>(config_.epoch_requests),
                         telemetry_event);
  };
  shard.queue.Schedule(0.0, batch_event);
  if (config_.epoch_requests > 0 && shard_map_.shards() > 1) {
    shard.queue.Schedule(static_cast<double>(config_.epoch_requests),
                         telemetry_event);
  }
  shard.queue.RunUntil(static_cast<double>(quota) + 1.0);

  // Quota done: flush every remaining delta (server deltas are end-of-run only),
  // tell every peer, then absorb in-flight deltas until all peers are done too
  // (per-sender FIFO makes Done a reliable end-of-stream marker).
  FlushServerDeltas(shard);
  FlushCacheDeltas(shard);
  for (uint32_t peer = 0; peer < shard_map_.shards(); ++peer) {
    if (peer == shard.id) {
      continue;
    }
    ShardMsg done;
    done.kind = ShardMsg::Kind::kDone;
    done.from = shard.id;
    shards_[peer]->inbox.Send(std::move(done));
  }
  DrainInbox(shard, /*blocking=*/true);
  if (shard.sample_step > 0.0 && shard.processed > shard.mark.requests) {
    CloseInterval(shard);
  }
  shard.local.requests = shard.processed;
}

BackendStats ShardedBackend::Run(uint64_t num_requests) {
  const uint32_t n = shard_map_.shards();
  shards_.clear();
  shards_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, config_, config_.cluster.seed));
  }

  const auto t0 = std::chrono::steady_clock::now();
  for (uint32_t i = 0; i < n; ++i) {
    const uint64_t quota = num_requests / n + (i < num_requests % n ? 1 : 0);
    Shard* shard = shards_[i].get();
    shard->thread = std::thread(
        [this, shard, quota, num_requests] { ShardMain(*shard, quota, num_requests); });
  }
  for (auto& shard : shards_) {
    shard->thread.join();
  }
  const auto t1 = std::chrono::steady_clock::now();

  BackendStats total;
  for (auto& shard : shards_) {
    total.Merge(shard->local);
  }
  total.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  shards_.clear();
  return total;
}

}  // namespace distcache
