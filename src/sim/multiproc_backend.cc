#include "sim/multiproc_backend.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <functional>
#include <utility>

#include <ctime>

#include <sys/resource.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/cacheline.h"
#include "common/hash.h"
#include "runtime/affinity.h"
#include "runtime/backoff.h"
#include "sim/stats_codec.h"
#include "sketch/heavy_hitter.h"

namespace distcache {

namespace {

// Ring depths per directed shard pair. Data traffic is O(epochs + 1) messages
// (telemetry broadcasts plus the end-of-run delta flush, chunked), same as the
// in-process engine's 256-deep rings; control traffic is chunked heavy-hitter
// reports plus one kDone, and its consumers drain while waiting, so a shallow
// ring only adds retry rounds, never deadlock.
constexpr size_t kDataRingCapacity = 256;
constexpr size_t kCtrlRingCapacity = 64;

// Control-plane slot payload: 256 report entries per chunk.
constexpr size_t kCtrlPayloadBytes = 4096;
// Floor for the data-plane payload when the topology is tiny.
constexpr size_t kMinDataPayloadBytes = 1024;

// The cross-process message set. Everything that crosses an address space is
// one of these four POD-serialized kinds — the in-process engine's other kinds
// do not exist here: kClusterEvent because every child queues the fired plan
// locally, kRouteUpdate because every child runs the controller computation
// itself (see multiproc_backend.h).
enum WireKind : uint8_t {
  kWireTelemetry = 0,  // dense own-contribution partials, one slot
  kWireDeltas = 1,     // end-of-run load deltas, chunked
  kWireReport = 2,     // heavy-hitter report, chunked, `last` terminates
  kWireDone = 3,       // end-of-stream marker
};

struct WireHeader {
  uint8_t kind;
  uint8_t last;      // kWireReport: final chunk of this report
  uint16_t pad16;
  uint32_t from;     // sender shard
  uint32_t count_a;  // telemetry: #partials; deltas: #cache; report: #pairs
  uint32_t count_b;  // deltas: #server entries
};
static_assert(sizeof(WireHeader) == 16, "wire header layout");

// Fixed 16-byte entry for both delta kinds ({flat-or-server index, delta}) and
// report pairs ({key, count}); everything moves through memcpy, so slot
// alignment is a non-issue and no object is ever aliased across the arena.
struct DeltaEntry {
  uint64_t index;
  double delta;
};
struct ReportEntry {
  uint64_t key;
  uint64_t count;
};
static_assert(sizeof(DeltaEntry) == 16 && sizeof(ReportEntry) == 16,
              "wire entry layout");

// Supervisor/child handshake block at the head of the arena.
enum ShardState : uint32_t {
  kShardRunning = 0,
  kShardDone = 1,     // full quota, stats published
  kShardAborted = 2,  // wound down after the abort flag, partial stats published
  // Supervisor-set after reaping a shard it will not respawn: the shard is
  // permanently gone. Peers skip it in every send, rendezvous gather and the
  // done protocol, and the run completes degraded instead of aborting.
  kShardDead = 3,
};

struct alignas(kCacheLineSize) ShmControlBlock {
  // Set by the supervisor when any child dies abnormally; checked by every
  // child wait loop, full-ring retry and backoff — the no-hang guarantee.
  std::atomic<uint32_t> abort{0};
  // Start barrier: children prefault their inbound rings (first-touch NUMA
  // placement under pinning), then rendezvous here before any ring traffic,
  // so the prefault writes can never race a producer.
  std::atomic<uint32_t> ready{0};
  // TestCrashShardAt one-shot latch: the crash fires on the incarnation that
  // wins the exchange, so a respawned shard re-running the same request range
  // does not kill itself again.
  std::atomic<uint32_t> crash_consumed{0};
};

struct alignas(kCacheLineSize) ShardSlot {
  std::atomic<uint32_t> state{kShardRunning};
  // CRC-32 (common/hash.h) of the serialized stats blob, stored before the
  // len/state releases: the supervisor recomputes it over the region and a
  // mismatch marks the shard failed instead of deserializing a corrupted
  // blob.
  std::atomic<uint32_t> stats_crc{0};
  std::atomic<uint64_t> stats_len{0};
  // Liveness word: bumped (relaxed) once per processed batch and on every
  // wait-loop backoff pause. The supervisor's wall-clock escalation ladder
  // (wait → warn → declare-dead) only ever watches it advance, so legitimate
  // rendezvous waits never trip a deadline but a genuinely stalled or wedged
  // shard does.
  std::atomic<uint64_t> heartbeat{0};
};
static_assert(sizeof(ShmControlBlock) == kCacheLineSize &&
                  sizeof(ShardSlot) == kCacheLineSize,
              "one line each: a child's completion store must not invalidate "
              "its neighbour's");

void WritePod(void* slot, const void* src, size_t bytes, size_t offset = 0) {
  if (bytes == 0) {
    return;  // an empty report chunk carries data() == nullptr; memcpy forbids it
  }
  std::memcpy(static_cast<uint8_t*>(slot) + offset, src, bytes);
}

// ---- arena-resident route tables -------------------------------------------
// A serialized table is a 16-byte header followed by the entry array and the
// overflow array, all raw POD. The header comes first in a cache-line-aligned
// reservation, so entries land 16-byte aligned and overflow 4-byte aligned —
// children read them in place through typed views, no deserialization copy.
struct ArenaTableHeader {
  uint64_t entries_len;
  uint64_t overflow_len;
};
// entries_len sentinel for a null snapshot (plan steps that change no routes).
constexpr uint64_t kNullTableLen = ~0ull;

size_t SerializedTableBytes(const RouteTable* table) {
  if (table == nullptr) {
    return sizeof(ArenaTableHeader);
  }
  return sizeof(ArenaTableHeader) + table->entries.size() * sizeof(RouteEntry) +
         table->overflow.size() * sizeof(uint32_t);
}

void SerializeTable(uint8_t* dst, const RouteTable* table) {
  ArenaTableHeader h;
  if (table == nullptr) {
    h.entries_len = kNullTableLen;
    h.overflow_len = 0;
    std::memcpy(dst, &h, sizeof(h));
    return;
  }
  h.entries_len = table->entries.size();
  h.overflow_len = table->overflow.size();
  std::memcpy(dst, &h, sizeof(h));
  WritePod(dst, table->entries.data(), h.entries_len * sizeof(RouteEntry),
           sizeof(h));
  WritePod(dst, table->overflow.data(), h.overflow_len * sizeof(uint32_t),
           sizeof(h) + h.entries_len * sizeof(RouteEntry));
}

struct TableView {
  bool null = false;
  const RouteEntry* entries = nullptr;
  size_t len = 0;
  const uint32_t* overflow = nullptr;
};

TableView ViewTable(const uint8_t* src) {
  ArenaTableHeader h;
  std::memcpy(&h, src, sizeof(h));
  TableView v;
  if (h.entries_len == kNullTableLen) {
    v.null = true;
    return v;
  }
  v.entries = reinterpret_cast<const RouteEntry*>(src + sizeof(h));
  v.len = static_cast<size_t>(h.entries_len);
  v.overflow = reinterpret_cast<const uint32_t*>(
      src + sizeof(h) + h.entries_len * sizeof(RouteEntry));
  return v;
}

}  // namespace

// Child-side per-shard state — the process-local mirror of ShardedBackend's
// Shard, minus the thread and the heap-payload message types. Ring *views*
// (runtime/shm_ring.h) live here (process-local index caches); ring storage
// lives in the arena.
struct alignas(kCacheLineSize) MultiprocBackend::Proc {
  Proc(uint32_t id, const ClusterModel* model, uint64_t seed, bool observer)
      : id(id),
        core(model, HashCombine(HashCombine(seed, 0x5aa4dedULL), id),
             HashCombine(HashCombine(seed, 0x90076eULL), id), observer) {}

  uint32_t id;
  EngineCore core;
  EventQueue queue;

  // Indexed by peer; the self slot is a detached default view, never touched.
  std::vector<ShmSpscRing> data_in;   // consumer views: peer -> this shard
  std::vector<ShmSpscRing> data_out;  // producer views: this shard -> peer
  std::vector<ShmSpscRing> ctrl_in;
  std::vector<ShmSpscRing> ctrl_out;

  BackendStats local;
  CacheAlignedVector<double> own_cache;
  CacheAlignedVector<double> own_server;
  std::vector<std::vector<double>> last_partial;  // [peer][flat]
  CacheAlignedVector<uint32_t> batch_keys;
  uint64_t processed = 0;
  std::vector<uint8_t> done_ring;  // [peer] kDone marker consumed from the ring
  uint32_t realloc_seq = 0;        // fired kReallocateCache steps, plan order

  // Exactly one of sampler / two_level is active (two-level mode swaps the
  // dense alias table for the O(hot) one — see alias_sampler.h).
  const AliasSampler* sampler = nullptr;
  std::unique_ptr<AliasSampler> phase_sampler;
  const TwoLevelSampler* two_level = nullptr;
  std::unique_ptr<TwoLevelSampler> phase_two_level;

  // Heavy-hitter report reassembly: chunks accumulate per sender (SPSC rings
  // are FIFO per sender, so chunks of one report are contiguous), completed
  // reports queue per sender so multiple kReallocateCache steps stay paired
  // with the right rendezvous.
  std::vector<std::vector<std::pair<uint64_t, uint32_t>>> partial_report;
  std::vector<std::deque<std::vector<std::pair<uint64_t, uint32_t>>>>
      ready_reports;

  // Flush / deserialize scratch.
  std::vector<std::vector<std::pair<uint32_t, double>>> out_cache;
  std::vector<std::vector<std::pair<uint32_t, double>>> out_server;
  std::vector<double> telemetry_scratch;
  std::vector<DeltaEntry> delta_scratch;
  std::vector<ReportEntry> report_scratch;

  double quota_scale = 1.0;
  bool abort_seen = false;

  // ---- fault injection (runtime/fault_plan.h) ------------------------------
  // This shard's planned events on its *local* request clock, sorted; fired
  // by MaybeInjectFaults behind one unlikely branch in the batch loop. Empty
  // in fault-free runs.
  struct PlannedFault {
    uint64_t at_local;     // fires when processed >= at_local
    uint32_t plan_index;   // index into config.fault_plan (the arena latch)
    FaultKind kind;
    uint64_t param;
    uint64_t at_request;   // original config-clock timestamp, for the record
  };
  std::vector<PlannedFault> faults;
  size_t next_fault = 0;
  // Armed survivable effects, consumed at their hook points.
  uint32_t drop_telemetry = 0;  // broadcasts to swallow at the ring views
  uint32_t ctrl_delay_ms = 0;   // delay armed on the next control publish
  bool corrupt_stats = false;   // flip a byte of the stats blob post-CRC

  // This shard's arena heartbeat word (ShardSlot::heartbeat).
  std::atomic<uint64_t>* heartbeat = nullptr;
};

// The branch-free hot-path sink — identical arithmetic to ShardedBackend's
// ShardSink, which is half of the x1 bit-identity claim.
struct MultiprocBackend::ProcSink {
  MultiprocBackend* backend;
  Proc* p;

  void AddCacheLoad(CacheNodeId node, double delta) {
    p->own_cache[backend->shard_map_.FlatIndex(node)] += delta;
    p->core.view().Add(node, delta);  // optimistic local view
  }
  void AddServerLoad(uint32_t server, double delta) {
    p->own_server[server] += delta;
  }
};

MultiprocBackend::MultiprocBackend(const SimBackendConfig& config)
    : config_(config),
      model_(config.cluster, /*build_popularity=*/!config.two_level_sampling),
      shard_map_(
          [this] {
            std::vector<uint32_t> sizes;
            for (const LayerSpec& layer : model_.layers) {
              sizes.push_back(layer.nodes);
            }
            return sizes;
          }(),
          model_.num_servers(), config.shards),
      sampler_(model_.head_with_tail) {
  model_.dense_routes = config_.dense_routes;
  base_routes_ = std::make_shared<const RouteTable>(BuildRouteTable(model_));
  if (config_.batch_size == 0) {
    config_.batch_size = 1;
  }
  if (config_.two_level_sampling) {
    two_level_ = std::make_unique<TwoLevelSampler>(
        model_.cfg.num_keys, model_.cfg.zipf_theta, model_.pool);
  }
  plan_ = BuildTimelinePlan(config_, model_);
}

MultiprocBackend::~MultiprocBackend() = default;

bool MultiprocBackend::Supported() {
#ifdef __linux__
  return ShmArena::Available(1u << 20);
#else
  return false;
#endif
}

// ---- arena layout ----------------------------------------------------------

bool MultiprocBackend::LayoutAndMapArena(uint64_t num_requests) {
  const uint32_t n = shard_map_.shards();
  const size_t nodes = shard_map_.num_cache_nodes();
  // A full telemetry snapshot (one double per cache node) must fit one slot.
  data_slot_bytes_ =
      sizeof(WireHeader) + std::max(nodes * sizeof(double), kMinDataPayloadBytes);
  ctrl_slot_bytes_ = sizeof(WireHeader) + kCtrlPayloadBytes;
  const uint64_t max_points =
      config_.sample_interval == 0 ? 0
                                   : num_requests / config_.sample_interval + 4;
  // Fault-record bound: a child can record at most its planned injections
  // plus one failover per realloc step (plus slack for future record kinds).
  const size_t max_fault_events =
      config_.fault_plan.events.size() + fired_plan_.size() + 8;
  stats_bound_ = StatsCodecBound(model_.layers.size(), nodes,
                                 model_.num_servers(), max_points,
                                 max_fault_events);

  ArenaLayout layout;
  control_offset_ = layout.Reserve(sizeof(ShmControlBlock) +
                                   static_cast<size_t>(n) * sizeof(ShardSlot));
  data_ring_offset_.assign(static_cast<size_t>(n) * n, 0);
  ctrl_ring_offset_.assign(static_cast<size_t>(n) * n, 0);
  for (uint32_t to = 0; to < n; ++to) {
    for (uint32_t from = 0; from < n; ++from) {
      if (to == from) {
        continue;
      }
      data_ring_offset_[static_cast<size_t>(to) * n + from] = layout.Reserve(
          ShmSpscRing::BytesFor(kDataRingCapacity, data_slot_bytes_));
      ctrl_ring_offset_[static_cast<size_t>(to) * n + from] = layout.Reserve(
          ShmSpscRing::BytesFor(kCtrlRingCapacity, ctrl_slot_bytes_));
    }
  }
  stats_offset_.assign(n, 0);
  for (uint32_t i = 0; i < n; ++i) {
    stats_offset_[i] = layout.Reserve(stats_bound_);
  }

  // Arena-resident plan: exact-size reservations — every table already exists
  // on the supervisor heap, so no capacity guesswork (SerializePlanTables
  // frees the heap copies right after writing these).
  plan_table_offset_.assign(1 + fired_plan_.size(), 0);
  plan_table_offset_[0] = layout.Reserve(SerializedTableBytes(base_routes_.get()));
  for (size_t i = 0; i < fired_plan_.size(); ++i) {
    plan_table_offset_[1 + i] =
        layout.Reserve(SerializedTableBytes(fired_plan_[i].routes.get()));
  }

  // Single-controller realloc rendezvous (static policies only; dynamic
  // policies keep the legacy all-to-all — see multiproc_backend.h). Runtime
  // tables cannot be pre-sized exactly, so the regions are worst-case: a
  // report slot holds the observer's max_reports_per_epoch (2·pool) and a
  // table slot the dense pool with every entry spilled to overflow. Realloc
  // timelines are small-config test territory, so the worst case stays small.
  arena_realloc_ = !PolicyIsDynamic(config_.cluster.cache_policy);
  realloc_step_index_.clear();
  report_offset_.clear();
  realloc_ready_offset_.clear();
  realloc_table_offset_.clear();
  for (uint32_t i = 0; i < fired_plan_.size(); ++i) {
    if (!fired_plan_[i].is_phase &&
        fired_plan_[i].event.kind == ClusterEvent::Kind::kReallocateCache) {
      realloc_step_index_.push_back(i);
    }
  }
  if (arena_realloc_ && !realloc_step_index_.empty()) {
    report_entry_cap_ = static_cast<size_t>(2 * model_.pool);
    table_cap_bytes_ =
        sizeof(ArenaTableHeader) +
        static_cast<size_t>(model_.pool) * sizeof(RouteEntry) +
        static_cast<size_t>(model_.pool) * model_.layers.size() * sizeof(uint32_t);
    const size_t report_bytes =
        kCacheLineSize + report_entry_cap_ * sizeof(ReportEntry);
    for (const uint32_t step : realloc_step_index_) {
      for (uint32_t s = 0; s < n; ++s) {
        report_offset_.push_back(layout.Reserve(report_bytes));
      }
      realloc_ready_offset_.push_back(layout.Reserve(kCacheLineSize));
      // One immediate table plus one per remaining plan step (the suffix the
      // controller rebuilds against the refilled allocation).
      std::vector<size_t> tables;
      const size_t count = 1 + (fired_plan_.size() - step - 1);
      tables.reserve(count);
      for (size_t t = 0; t < count; ++t) {
        tables.push_back(layout.Reserve(table_cap_bytes_));
      }
      realloc_table_offset_.push_back(std::move(tables));
    }
  }

  // One-shot fault latches: a u32 per planned event, zero-initialized =
  // unfired. Respawned incarnations consult them before re-firing.
  fault_latch_offset_ = 0;
  if (!config_.fault_plan.empty()) {
    fault_latch_offset_ = layout.Reserve(
        std::max<size_t>(kCacheLineSize, config_.fault_plan.events.size() *
                                             sizeof(std::atomic<uint32_t>)));
  }

  if (config_.fault_plan.arena_map_failure()) {
    // Injected allocation-failure simulation: report the mapping failed
    // before touching the pool, exercising the clean FailAll path.
    return false;
  }
  if (!arena_.Map(layout.total(), config_.huge_pages)) {
    return false;
  }
  // Pre-fork, single-threaded: construct the handshake block in place (the
  // zero-filled bytes are already the right values; this makes it formal).
  auto* ctrl = new (arena_.At(control_offset_)) ShmControlBlock();
  (void)ctrl;
  auto* slots = reinterpret_cast<ShardSlot*>(arena_.At(control_offset_) +
                                             sizeof(ShmControlBlock));
  for (uint32_t i = 0; i < n; ++i) {
    new (&slots[i]) ShardSlot();
  }
  return true;
}

void MultiprocBackend::SerializePlanTables() {
  SerializeTable(arena_.At(plan_table_offset_[0]), base_routes_.get());
  for (size_t i = 0; i < fired_plan_.size(); ++i) {
    SerializeTable(arena_.At(plan_table_offset_[1 + i]),
                   fired_plan_[i].routes.get());
  }
  // The arena is the only copy from here on: drop the heap tables before the
  // first fork, so neither the supervisor nor any child ever holds (or
  // COW-duplicates) a private one.
  base_routes_.reset();
  for (TimelineStep& step : fired_plan_) {
    step.routes.reset();
  }
  for (TimelineStep& step : plan_) {
    step.routes.reset();
  }
}

namespace {
ShmControlBlock* CtrlBlockAt(const ShmArena& arena, size_t offset) {
  return reinterpret_cast<ShmControlBlock*>(arena.At(offset));
}
ShardSlot* ShardSlotAt(const ShmArena& arena, size_t offset, uint32_t shard) {
  return reinterpret_cast<ShardSlot*>(arena.At(offset) +
                                      sizeof(ShmControlBlock)) +
         shard;
}
}  // namespace

bool MultiprocBackend::Aborted() const {
  return CtrlBlockAt(arena_, control_offset_)
             ->abort.load(std::memory_order_acquire) != 0;
}

BackendStats MultiprocBackend::FailAll(uint32_t shards) const {
  BackendStats stats;
  stats.failed_shards = shards;
  stats.degraded_fraction = 1.0;
  return stats;
}

void MultiprocBackend::PulseHeartbeat(Proc& p) {
  if (p.heartbeat != nullptr) {
    p.heartbeat->fetch_add(1, std::memory_order_relaxed);
  }
}

bool MultiprocBackend::ShardDead(uint32_t shard) const {
  return ShardSlotAt(arena_, control_offset_, shard)
             ->state.load(std::memory_order_acquire) == kShardDead;
}

uint32_t MultiprocBackend::FirstLiveShard() const {
  const uint32_t n = shard_map_.shards();
  for (uint32_t s = 0; s < n; ++s) {
    if (!ShardDead(s)) {
      return s;
    }
  }
  return 0;  // unreachable while any process runs this code
}

void MultiprocBackend::RecordFault(Proc& p, FaultKind kind,
                                   uint64_t at_request) {
  ++p.local.injected_faults;
  p.local.fault_events.push_back(
      {p.id, static_cast<uint32_t>(kind), at_request});
}

// ---- child side ------------------------------------------------------------

void MultiprocBackend::ChildMain(uint32_t id, uint64_t quota,
                                 uint64_t num_requests, bool respawned) {
  if (config_.pin_cores) {
    // Pin before the prefault below so the rings this shard consumes land on
    // the pinned core's NUMA node (first touch).
    PinToCore(id);
  }
  const uint32_t n = shard_map_.shards();
  Proc p(id, &model_, config_.cluster.seed,
         TimelineNeedsObserver(config_.events));
  p.heartbeat = &ShardSlotAt(arena_, control_offset_, id)->heartbeat;
  p.data_in.resize(n);
  p.data_out.resize(n);
  p.ctrl_in.resize(n);
  p.ctrl_out.resize(n);
  for (uint32_t peer = 0; peer < n; ++peer) {
    if (peer == id) {
      continue;
    }
    const size_t in_idx = static_cast<size_t>(id) * n + peer;
    const size_t out_idx = static_cast<size_t>(peer) * n + id;
    p.data_in[peer] = ShmSpscRing(arena_.At(data_ring_offset_[in_idx]),
                                  kDataRingCapacity, data_slot_bytes_);
    p.data_out[peer] = ShmSpscRing(arena_.At(data_ring_offset_[out_idx]),
                                   kDataRingCapacity, data_slot_bytes_);
    p.ctrl_in[peer] = ShmSpscRing(arena_.At(ctrl_ring_offset_[in_idx]),
                                  kCtrlRingCapacity, ctrl_slot_bytes_);
    p.ctrl_out[peer] = ShmSpscRing(arena_.At(ctrl_ring_offset_[out_idx]),
                                   kCtrlRingCapacity, ctrl_slot_bytes_);
    if (respawned) {
      // Live rings: adopt the shared indices (a fresh view's zeroed caches
      // are only valid for a pristine ring) and do NOT prefault — writing a
      // zero into every page of an in-use ring would clobber in-flight slots
      // and the header's published tail.
      p.data_in[peer].SyncFromShared();
      p.data_out[peer].SyncFromShared();
      p.ctrl_in[peer].SyncFromShared();
      p.ctrl_out[peer].SyncFromShared();
      continue;
    }
    // Prefault this shard's *inbound* ring pages by writing (reads would map
    // shared zero pages, placing nothing): first touch from the pinned core
    // allocates them on its node. Pre-barrier, so no producer can be writing.
    for (const size_t off : {data_ring_offset_[in_idx], ctrl_ring_offset_[in_idx]}) {
      const size_t bytes =
          off == data_ring_offset_[in_idx]
              ? ShmSpscRing::BytesFor(kDataRingCapacity, data_slot_bytes_)
              : ShmSpscRing::BytesFor(kCtrlRingCapacity, ctrl_slot_bytes_);
      volatile uint8_t* page = arena_.At(off);
      for (size_t b = 0; b < bytes; b += 4096) {
        page[b] = 0;
      }
    }
  }

  // Start barrier (ShmControlBlock comment): everyone's prefault is complete
  // before anyone's first send. Every incarnation — fresh or respawned —
  // increments, and the release condition also counts supervisor-declared-
  // dead shards, so a shard that dies before arriving can never wedge the
  // others (the respawn over-count is harmless under >=). A respawned
  // incarnation usually finds the barrier long released and falls through.
  {
    ShmControlBlock* ctrl = CtrlBlockAt(arena_, control_offset_);
    ctrl->ready.fetch_add(1, std::memory_order_acq_rel);
    Backoff barrier_backoff;
    while (true) {
      uint32_t dead = 0;
      for (uint32_t s = 0; s < n; ++s) {
        dead += ShardDead(s) ? 1 : 0;
      }
      if (ctrl->ready.load(std::memory_order_acquire) + dead >= n ||
          Aborted()) {
        break;
      }
      PulseHeartbeat(p);
      barrier_backoff.Pause();
    }
  }

  RunShard(p, quota, num_requests);

  uint8_t* region = arena_.At(stats_offset_[id]);
  const size_t len = SerializeBackendStats(p.local, region, stats_bound_);
  const uint32_t crc = Crc32(region, len);
  if (__builtin_expect(p.corrupt_stats, 0)) {
    // Injected kCorruptStats: damage the blob *after* the checksum was
    // taken, so the supervisor's integrity check is what must catch it.
    if (len != 0) {
      region[len / 2] ^= 0x5a;
    }
  }
  ShardSlot* slot = ShardSlotAt(arena_, control_offset_, id);
  slot->stats_crc.store(crc, std::memory_order_release);
  slot->stats_len.store(len, std::memory_order_release);
  slot->state.store(p.abort_seen ? kShardAborted : kShardDone,
                    std::memory_order_release);
  // _exit, never exit: no atexit handlers, no gtest/ASan teardown of inherited
  // parent state — the child owns nothing but its stats region.
  _exit(p.abort_seen ? 3 : 0);
}

void* MultiprocBackend::AcquireSlot(Proc& p, ShmSpscRing& ring, uint32_t peer) {
  Backoff backoff;
  while (true) {
    if (void* slot = ring.TryStage()) {
      return slot;
    }
    // Full ring: the receiver is behind. Draining our own rings while
    // retrying guarantees global progress (same argument as the in-process
    // engine); the abort and dead-peer checks guarantee a dead receiver
    // cannot wedge us.
    DrainDataRings(p);
    DrainControlRings(p);
    if (Aborted()) {
      p.abort_seen = true;
      return nullptr;
    }
    if (ShardDead(peer)) {
      return nullptr;  // receiver permanently gone; the message is moot
    }
    PulseHeartbeat(p);
    backoff.Pause();
  }
}

void MultiprocBackend::BroadcastTelemetry(Proc& p) {
  const uint32_t n = shard_map_.shards();
  const uint32_t count = static_cast<uint32_t>(p.own_cache.size());
  for (uint32_t peer = 0; peer < n; ++peer) {
    if (peer == p.id || ShardDead(peer)) {
      continue;
    }
    if (__builtin_expect(p.drop_telemetry != 0, 0)) {
      // Armed kDropTelemetry: the staged slot below is rewound at Publish,
      // so this broadcast is lost exactly as a dropped message would be.
      p.data_out[peer].ArmDropNext(1);
    }
    void* slot = AcquireSlot(p, p.data_out[peer], peer);
    if (slot == nullptr) {
      if (p.abort_seen) {
        return;
      }
      continue;  // peer died while we waited; skip it
    }
    const WireHeader h{kWireTelemetry, 0, 0, p.id, count, 0};
    WritePod(slot, &h, sizeof(h));
    WritePod(slot, p.own_cache.data(), count * sizeof(double), sizeof(h));
    p.data_out[peer].Publish();
    ++p.local.cross_shard_messages;
    ++p.local.ring_messages;
  }
  if (__builtin_expect(p.drop_telemetry != 0, 0)) {
    --p.drop_telemetry;
  }
}

void MultiprocBackend::SendLoadDeltas(
    Proc& p, uint32_t peer,
    const std::vector<std::pair<uint32_t, double>>& cache,
    const std::vector<std::pair<uint32_t, double>>& server) {
  const size_t max_entries =
      (data_slot_bytes_ - sizeof(WireHeader)) / sizeof(DeltaEntry);
  size_t ci = 0;
  size_t si = 0;
  // Chunked so any topology fits the fixed slot; every chunk is independently
  // applicable (pure += deltas), so no reassembly state is needed.
  while (ci < cache.size() || si < server.size()) {
    const size_t nc = std::min(cache.size() - ci, max_entries);
    const size_t ns = std::min(server.size() - si, max_entries - nc);
    void* slot = AcquireSlot(p, p.data_out[peer], peer);
    if (slot == nullptr) {
      return;  // aborted, or the peer died — its merge share is lost anyway
    }
    const WireHeader h{kWireDeltas, 0, 0, p.id, static_cast<uint32_t>(nc),
                       static_cast<uint32_t>(ns)};
    WritePod(slot, &h, sizeof(h));
    p.delta_scratch.clear();
    for (size_t i = 0; i < nc; ++i) {
      p.delta_scratch.push_back({cache[ci + i].first, cache[ci + i].second});
    }
    for (size_t i = 0; i < ns; ++i) {
      p.delta_scratch.push_back({server[si + i].first, server[si + i].second});
    }
    WritePod(slot, p.delta_scratch.data(),
             p.delta_scratch.size() * sizeof(DeltaEntry), sizeof(h));
    p.data_out[peer].Publish();
    ++p.local.cross_shard_messages;
    ++p.local.ring_messages;
    ci += nc;
    si += ns;
  }
}

void MultiprocBackend::BroadcastHotReport(
    Proc& p, const std::vector<std::pair<uint64_t, uint32_t>>& report) {
  const uint32_t n = shard_map_.shards();
  const size_t max_entries =
      (ctrl_slot_bytes_ - sizeof(WireHeader)) / sizeof(ReportEntry);
  for (uint32_t peer = 0; peer < n; ++peer) {
    if (peer == p.id || ShardDead(peer)) {
      continue;
    }
    size_t i = 0;
    do {  // at least one chunk, so an empty report still carries `last`
      const size_t k = std::min(report.size() - i, max_entries);
      void* slot = AcquireSlot(p, p.ctrl_out[peer], peer);
      if (slot == nullptr) {
        if (p.abort_seen) {
          return;
        }
        break;  // peer died while we waited; skip its remaining chunks
      }
      const uint8_t last = i + k == report.size() ? 1 : 0;
      const WireHeader h{kWireReport, last, 0, p.id,
                         static_cast<uint32_t>(k), 0};
      WritePod(slot, &h, sizeof(h));
      p.report_scratch.clear();
      for (size_t e = 0; e < k; ++e) {
        p.report_scratch.push_back(
            {report[i + e].first, report[i + e].second});
      }
      WritePod(slot, p.report_scratch.data(),
               p.report_scratch.size() * sizeof(ReportEntry), sizeof(h));
      if (__builtin_expect(p.ctrl_delay_ms != 0, 0)) {
        // Armed kDelayControl: this control publish is late by `param` ms.
        p.ctrl_out[peer].ArmDelayNext(p.ctrl_delay_ms);
        p.ctrl_delay_ms = 0;
      }
      p.ctrl_out[peer].Publish();
      ++p.local.cross_shard_messages;  // control traffic: not a ring_message
      i += k;
    } while (i < report.size());
  }
}

void MultiprocBackend::SendDone(Proc& p, uint32_t peer) {
  void* slot = AcquireSlot(p, p.ctrl_out[peer], peer);
  if (slot == nullptr) {
    return;  // aborted, or the peer is dead and will never consume it
  }
  const WireHeader h{kWireDone, 1, 0, p.id, 0, 0};
  WritePod(slot, &h, sizeof(h));
  if (__builtin_expect(p.ctrl_delay_ms != 0, 0)) {
    p.ctrl_out[peer].ArmDelayNext(p.ctrl_delay_ms);
    p.ctrl_delay_ms = 0;
  }
  // This release orders every earlier data-ring publish by this process
  // before the kDone: a peer that has acquired the kDone and then drains its
  // data rings observes all of this shard's deltas (the no-missed-delta edge).
  p.ctrl_out[peer].Publish();
  ++p.local.cross_shard_messages;
}

void MultiprocBackend::ApplyDataSlot(Proc& p, const void* slot) {
  WireHeader h;
  std::memcpy(&h, slot, sizeof(h));
  const uint8_t* payload = static_cast<const uint8_t*>(slot) + sizeof(h);
  if (h.kind == kWireTelemetry) {
    // Fold in the sender's monotone increment since its previous broadcast —
    // identical arithmetic to the in-process Apply(kTelemetry).
    p.telemetry_scratch.resize(h.count_a);
    if (h.count_a != 0) {
      std::memcpy(p.telemetry_scratch.data(), payload,
                  h.count_a * sizeof(double));
    }
    std::vector<double>& last = p.last_partial[h.from];
    for (uint32_t flat = 0; flat < h.count_a; ++flat) {
      const double delta = p.telemetry_scratch[flat] - last[flat];
      if (delta != 0.0) {
        p.core.view().Add(shard_map_.NodeOfFlat(flat), delta);
        last[flat] = p.telemetry_scratch[flat];
      }
    }
    return;
  }
  // kWireDeltas
  const size_t entries = static_cast<size_t>(h.count_a) + h.count_b;
  p.delta_scratch.resize(entries);
  if (entries != 0) {
    std::memcpy(p.delta_scratch.data(), payload, entries * sizeof(DeltaEntry));
  }
  for (uint32_t i = 0; i < h.count_a; ++i) {
    const CacheNodeId node =
        shard_map_.NodeOfFlat(static_cast<uint32_t>(p.delta_scratch[i].index));
    p.local.cache_load[node.layer][node.index] += p.delta_scratch[i].delta;
  }
  for (uint32_t i = 0; i < h.count_b; ++i) {
    const DeltaEntry& e = p.delta_scratch[h.count_a + i];
    p.local.server_load[static_cast<uint32_t>(e.index)] += e.delta;
  }
}

void MultiprocBackend::DrainDataRings(Proc& p) {
  const uint32_t n = shard_map_.shards();
  for (uint32_t peer = 0; peer < n; ++peer) {
    if (peer == p.id) {
      continue;
    }
    ShmSpscRing& ring = p.data_in[peer];
    if (ring.EmptyApprox()) {
      continue;
    }
    while (const void* slot = ring.Front()) {
      ApplyDataSlot(p, slot);
      ring.Pop();
    }
  }
}

void MultiprocBackend::DrainControlRings(Proc& p) {
  const uint32_t n = shard_map_.shards();
  for (uint32_t peer = 0; peer < n; ++peer) {
    if (peer == p.id) {
      continue;
    }
    ShmSpscRing& ring = p.ctrl_in[peer];
    while (const void* slot = ring.Front()) {
      WireHeader h;
      std::memcpy(&h, slot, sizeof(h));
      if (h.kind == kWireDone) {
        p.done_ring[h.from] = 1;
      } else {  // kWireReport chunk
        const uint8_t* payload = static_cast<const uint8_t*>(slot) + sizeof(h);
        p.report_scratch.resize(h.count_a);
        if (h.count_a != 0) {
          std::memcpy(p.report_scratch.data(), payload,
                      h.count_a * sizeof(ReportEntry));
        }
        auto& partial = p.partial_report[peer];
        for (uint32_t i = 0; i < h.count_a; ++i) {
          partial.emplace_back(p.report_scratch[i].key,
                               static_cast<uint32_t>(p.report_scratch[i].count));
        }
        if (h.last) {
          p.ready_reports[peer].push_back(std::move(partial));
          partial.clear();
        }
      }
      ring.Pop();
    }
  }
}

void MultiprocBackend::PollInbox(Proc& p) {
  DrainDataRings(p);
  // Batch-boundary control poll, same accounting as the in-process engine: an
  // all-empty probe (one acquire load per peer, vacuous at x1) counts as one
  // uncontended receive; anything pending counts as one contended receive.
  const uint32_t n = shard_map_.shards();
  bool pending = false;
  for (uint32_t peer = 0; peer < n && !pending; ++peer) {
    if (peer != p.id && !p.ctrl_in[peer].EmptyApprox()) {
      pending = true;
    }
  }
  if (!pending) {
    ++p.local.uncontended_receives;
    return;
  }
  ++p.local.contended_receives;
  DrainControlRings(p);
}

void MultiprocBackend::FlushLoads(Proc& p) {
  // End-of-run owner split — the exact double arithmetic of the in-process
  // FlushLoads (same iteration order, same += sequence), with the deltas
  // serialized into chunks instead of heap messages.
  for (uint32_t flat = 0; flat < p.own_cache.size(); ++flat) {
    const double delta = p.own_cache[flat];
    if (delta == 0.0) {
      continue;
    }
    const CacheNodeId node = shard_map_.NodeOfFlat(flat);
    if (shard_map_.OwnerOfFlat(flat) == p.id) {
      p.local.cache_load[node.layer][node.index] += delta;
    } else {
      p.out_cache[shard_map_.OwnerOfFlat(flat)].emplace_back(flat, delta);
    }
  }
  for (uint32_t server = 0; server < p.own_server.size(); ++server) {
    const double delta = p.own_server[server];
    if (delta == 0.0) {
      continue;
    }
    if (shard_map_.OwnerOfServer(server) == p.id) {
      p.local.server_load[server] += delta;
    } else {
      p.out_server[shard_map_.OwnerOfServer(server)].emplace_back(server, delta);
    }
  }
  const uint32_t n = shard_map_.shards();
  for (uint32_t peer = 0; peer < n; ++peer) {
    if (peer == p.id ||
        (p.out_cache[peer].empty() && p.out_server[peer].empty())) {
      continue;
    }
    SendLoadDeltas(p, peer, p.out_cache[peer], p.out_server[peer]);
    p.out_cache[peer].clear();
    p.out_server[peer].clear();
  }
}

std::shared_ptr<const RouteTable> MultiprocBackend::Reallocate(Proc& p) {
  const uint32_t n = shard_map_.shards();
  // All-to-all rendezvous: broadcast our observed counts, then collect one
  // report per peer (FIFO per sender pairs the k-th report with the k-th
  // rendezvous). Peers are guaranteed to reach the same step (it precedes
  // their quota), so only a dead peer can keep us waiting — and that trips
  // the abort flag.
  std::vector<std::vector<std::pair<uint64_t, uint32_t>>> reports;
  reports.push_back(p.core.ObservedCounts());
  BroadcastHotReport(p, reports.front());
  for (uint32_t peer = 0; peer < n; ++peer) {
    if (peer == p.id) {
      continue;
    }
    Backoff backoff;
    while (p.ready_reports[peer].empty()) {
      DrainDataRings(p);
      DrainControlRings(p);
      if (!p.ready_reports[peer].empty()) {
        break;
      }
      if (Aborted()) {
        p.abort_seen = true;
        return nullptr;  // keep current routes; we are winding down
      }
      if (ShardDead(peer)) {
        break;  // died before (or mid-)report; the drains above got what exists
      }
      PulseHeartbeat(p);
      backoff.Pause();
    }
    if (p.ready_reports[peer].empty()) {
      reports.push_back({});  // dead peer: its sample is simply absent
      continue;
    }
    reports.push_back(std::move(p.ready_reports[peer].front()));
    p.ready_reports[peer].pop_front();
  }
  // Every process runs the controller computation on its own model copy.
  // MergeHeavyHitterReports is order-independent and the refill/route build
  // is hash-based and RNG-free, so all processes arrive at identical routes —
  // and at x1 this is literally the in-process controller's code path.
  model_.SyncControllerRemap(p.core.spine_alive());
  std::vector<uint64_t> hottest;
  for (const auto& [key, count] : MergeHeavyHitterReports(reports)) {
    hottest.push_back(key);
  }
  model_.ReallocateCache(hottest);
  auto routes = std::make_shared<const RouteTable>(
      BuildRouteTable(model_, p.core.hot_shift()));
  const std::vector<std::shared_ptr<const RouteTable>> suffix =
      RebuildPlanSuffixRoutes(fired_plan_, p.core.next_action_index(), model_,
                              p.core.spine_alive(), p.core.hot_shift());
  const size_t from = p.core.next_action_index();
  for (size_t i = 0; i < suffix.size(); ++i) {
    if (suffix[i] != nullptr) {
      p.core.SetActionRoutes(from + i, suffix[i]);
    }
  }
  return routes;
}

std::vector<std::pair<uint64_t, uint32_t>> MultiprocBackend::ReadArenaReport(
    uint32_t step, uint32_t s) {
  const uint32_t n = shard_map_.shards();
  const uint8_t* slot =
      arena_.At(report_offset_[static_cast<size_t>(step) * n + s]);
  const auto* flag = reinterpret_cast<const std::atomic<uint64_t>*>(slot);
  const uint64_t published = flag->load(std::memory_order_acquire);
  std::vector<std::pair<uint64_t, uint32_t>> report;
  if (published == 0) {
    return report;  // never published (dead shard)
  }
  const size_t count = static_cast<size_t>(published - 1);
  const auto* entries =
      reinterpret_cast<const ReportEntry*>(slot + kCacheLineSize);
  report.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    report.emplace_back(entries[i].key, static_cast<uint32_t>(entries[i].count));
  }
  return report;
}

void MultiprocBackend::ApplyReallocModel(
    Proc& p, std::vector<std::vector<std::pair<uint64_t, uint32_t>>> reports) {
  // MergeHeavyHitterReports is order-independent and the refill is hash-based
  // and RNG-free, so every process given the same report set arrives at the
  // same model state — the property controller failover leans on.
  model_.SyncControllerRemap(p.core.spine_alive());
  std::vector<uint64_t> hottest;
  for (const auto& [key, count] : MergeHeavyHitterReports(reports)) {
    hottest.push_back(key);
  }
  model_.ReallocateCache(hottest);
}

bool MultiprocBackend::ControllerPublishRealloc(Proc& p, uint32_t step) {
  const uint32_t n = shard_map_.shards();
  auto* table_ready = reinterpret_cast<std::atomic<uint64_t>*>(
      arena_.At(realloc_ready_offset_[step]));
  const std::vector<size_t>& tables = realloc_table_offset_[step];
  uint64_t mask = 0;
  std::vector<std::vector<std::pair<uint64_t, uint32_t>>> reports;
  reports.reserve(n);
  for (uint32_t s = 0; s < n; ++s) {
    const uint8_t* slot =
        arena_.At(report_offset_[static_cast<size_t>(step) * n + s]);
    const auto* flag = reinterpret_cast<const std::atomic<uint64_t>*>(slot);
    Backoff backoff;
    while (flag->load(std::memory_order_acquire) == 0) {
      // Keep draining while waiting: a peer stuck on a full ring toward us
      // must make progress before it can reach this step (same global-
      // progress argument as AcquireSlot).
      DrainDataRings(p);
      DrainControlRings(p);
      if (flag->load(std::memory_order_acquire) != 0) {
        break;
      }
      if (Aborted()) {
        p.abort_seen = true;
        return false;
      }
      if (s != p.id && ShardDead(s)) {
        break;  // died before publishing; its sample is simply absent
      }
      PulseHeartbeat(p);
      backoff.Pause();
    }
    if (flag->load(std::memory_order_acquire) == 0) {
      continue;  // excluded from the merge — and from the published mask
    }
    if (s < 63) {
      mask |= 1ull << s;
    }
    reports.push_back(ReadArenaReport(step, s));
  }
  ApplyReallocModel(p, std::move(reports));
  const RouteTable routes = BuildRouteTable(model_, p.core.hot_shift());
  const std::vector<std::shared_ptr<const RouteTable>> suffix =
      RebuildPlanSuffixRoutes(fired_plan_, p.core.next_action_index(), model_,
                              p.core.spine_alive(), p.core.hot_shift());
  // On a controller respawn the flag may already be set; the model mutations
  // above still ran — later realloc steps need the refilled state — but the
  // identical bytes are not rewritten under concurrent readers. A failover
  // successor always finds the flag clear (kShardDead is set only after the
  // dead claimant's writes stopped), so its full rewrite wins cleanly.
  if (table_ready->load(std::memory_order_acquire) == 0) {
    SerializeTable(arena_.At(tables[0]), &routes);
    for (size_t i = 0; i < suffix.size(); ++i) {
      SerializeTable(arena_.At(tables[1 + i]), suffix[i].get());
    }
    table_ready->store(1 | (mask << 1), std::memory_order_release);
  }
  return true;
}

std::shared_ptr<const RouteTable> MultiprocBackend::ReallocateViaArena(Proc& p) {
  const uint32_t n = shard_map_.shards();
  const uint32_t step = p.realloc_seq++;
  // 1. Publish this shard's heavy-hitter report into its idempotent slot:
  //    entries first, then count+1 through the release flag. A respawned
  //    incarnation finds the flag set (reports are deterministic per shard)
  //    and skips the write, so a concurrent controller read never races.
  {
    uint8_t* slot = arena_.At(report_offset_[static_cast<size_t>(step) * n + p.id]);
    auto* flag = reinterpret_cast<std::atomic<uint64_t>*>(slot);
    if (flag->load(std::memory_order_acquire) == 0) {
      const auto report = p.core.ObservedCounts();
      const size_t count = std::min(report.size(), report_entry_cap_);
      auto* entries = reinterpret_cast<ReportEntry*>(slot + kCacheLineSize);
      for (size_t i = 0; i < count; ++i) {
        entries[i] = {report[i].first, report[i].second};
      }
      flag->store(count + 1, std::memory_order_release);
    }
  }
  uint8_t* ready_line = arena_.At(realloc_ready_offset_[step]);
  auto* table_ready = reinterpret_cast<std::atomic<uint64_t>*>(ready_line);
  // Controller claim word (claimant id + 1), sharing the reserved line with
  // the ready flag. Zero until the first live shard elects itself; re-pointed
  // at the deterministic successor when a claimant dies before publishing.
  auto* claim = reinterpret_cast<std::atomic<uint64_t>*>(ready_line + 8);
  const std::vector<size_t>& tables = realloc_table_offset_[step];
  const auto report_flag = [&](uint32_t s) {
    return reinterpret_cast<const std::atomic<uint64_t>*>(
               arena_.At(report_offset_[static_cast<size_t>(step) * n + s]))
        ->load(std::memory_order_acquire);
  };

  // 2. Controller election + publication. The first live shard claims the
  //    role and runs ControllerPublishRealloc (gather → refill → publish
  //    behind the ready flag). A waiter that observes a dead claimant with
  //    the tables still unpublished CASes the claim to the current first
  //    live shard — the paper's §4.4-style deterministic failover. In a
  //    fault-free run shard 0 wins the first CAS uncontested, so the
  //    controller call sequence is exactly the PR 9 one.
  bool is_publisher = false;
  uint64_t ready = table_ready->load(std::memory_order_acquire);
  {
    Backoff backoff;
    while (ready == 0) {
      uint64_t cur = claim->load(std::memory_order_acquire);
      if (cur == 0) {
        if (FirstLiveShard() == p.id &&
            claim->compare_exchange_strong(cur, p.id + 1,
                                           std::memory_order_acq_rel) &&
            p.id != 0) {
          // Shard 0 died before ever claiming: this election IS the failover.
          ++p.local.controller_failovers;
          p.local.fault_events.push_back(
              {p.id, BackendStats::FaultRecord::kControllerFailover, 0});
        }
      } else if (cur != p.id + 1 &&
                 ShardDead(static_cast<uint32_t>(cur - 1))) {
        const uint32_t successor = FirstLiveShard();
        if (claim->compare_exchange_strong(cur, successor + 1,
                                           std::memory_order_acq_rel)) {
          ++p.local.controller_failovers;
          p.local.fault_events.push_back(
              {successor, BackendStats::FaultRecord::kControllerFailover, 0});
        }
      }
      if (claim->load(std::memory_order_acquire) == p.id + 1) {
        if (!ControllerPublishRealloc(p, step)) {
          return nullptr;  // winding down
        }
        is_publisher = true;
        ready = table_ready->load(std::memory_order_acquire);
        continue;
      }
      DrainDataRings(p);
      DrainControlRings(p);
      if (Aborted()) {
        p.abort_seen = true;
        return nullptr;  // keep current routes; we are winding down
      }
      PulseHeartbeat(p);
      backoff.Pause();
      ready = table_ready->load(std::memory_order_acquire);
    }
  }
  // 3. Non-publishers replay the controller's model mutations from the
  //    masked report set, so any of them can take over as controller at a
  //    later step with the refilled allocation state. (The mask covers
  //    shards 0..62; beyond that the report flags stand in, which can
  //    over-include a report the publisher missed — documented limitation.)
  if (!is_publisher && n > 1) {
    const uint64_t mask = ready >> 1;
    std::vector<std::vector<std::pair<uint64_t, uint32_t>>> reports;
    for (uint32_t s = 0; s < n; ++s) {
      const bool included =
          s < 63 ? ((mask >> s) & 1) != 0 : report_flag(s) != 0;
      if (included) {
        reports.push_back(ReadArenaReport(step, s));
      }
    }
    ApplyReallocModel(p, std::move(reports));
  }
  const TableView immediate = ViewTable(arena_.At(tables[0]));
  p.core.SetRouteView(immediate.entries, immediate.len, immediate.overflow);
  const size_t from = p.core.next_action_index();
  for (size_t i = 1; i < tables.size(); ++i) {
    const TableView v = ViewTable(arena_.At(tables[i]));
    if (!v.null) {
      p.core.SetActionRouteView(from + (i - 1), v.entries, v.len, v.overflow);
    }
  }
  return nullptr;  // views installed directly; nothing for the hook to swap
}

void MultiprocBackend::MaybeInjectFaults(Proc& p) {
  while (p.next_fault < p.faults.size() &&
         p.processed >= p.faults[p.next_fault].at_local) {
    const Proc::PlannedFault f = p.faults[p.next_fault++];
    // One-shot arena latch: the event fires on the incarnation that wins the
    // exchange; a respawned shard re-running the same range skips it.
    auto* latch = reinterpret_cast<std::atomic<uint32_t>*>(
        arena_.At(fault_latch_offset_) +
        static_cast<size_t>(f.plan_index) * sizeof(std::atomic<uint32_t>));
    if (latch->exchange(1, std::memory_order_acq_rel) != 0) {
      continue;
    }
    switch (f.kind) {
      case FaultKind::kCrashClean:
        // Vanish with a clean exit code and *no* state/stats publish — the
        // reap loop must not trust the exit status alone.
        _exit(0);
      case FaultKind::kCrashKill:
        raise(SIGKILL);
        _exit(101);  // unreachable
      case FaultKind::kCrashAbort: {
        struct rlimit no_core {0, 0};
        setrlimit(RLIMIT_CORE, &no_core);  // an injected abort dumps no core
        raise(SIGABRT);
        _exit(102);  // unreachable
      }
      case FaultKind::kStall: {
        RecordFault(p, f.kind, f.at_request);
        // Straggler: wedge for `param` ms WITHOUT heartbeat pulses, so the
        // supervisor ladder sees a genuine stall; sliced sleeps keep the
        // shard abort-responsive.
        struct timespec ms {0, 1000000L};
        for (uint64_t i = 0; i < f.param && !Aborted(); ++i) {
          nanosleep(&ms, nullptr);
        }
        break;
      }
      case FaultKind::kDropTelemetry:
        RecordFault(p, f.kind, f.at_request);
        p.drop_telemetry += static_cast<uint32_t>(f.param);
        break;
      case FaultKind::kDelayControl:
        RecordFault(p, f.kind, f.at_request);
        p.ctrl_delay_ms += static_cast<uint32_t>(f.param);
        break;
      case FaultKind::kCorruptStats:
        RecordFault(p, f.kind, f.at_request);
        p.corrupt_stats = true;
        break;
      case FaultKind::kArenaMapFail:
        break;  // pre-fork only (LayoutAndMapArena); never planned per-shard
    }
  }
}

void MultiprocBackend::ProcessBatch(Proc& p, uint32_t count) {
  if (__builtin_expect(p.next_fault < p.faults.size(), 0)) {
    MaybeInjectFaults(p);
  }
  if (p.id == crash_shard_ && p.processed >= crash_after_ &&
      CtrlBlockAt(arena_, control_offset_)
              ->crash_consumed.exchange(1, std::memory_order_acq_rel) == 0) {
    // Crash-isolation test hook: die the hard way, mid-run, like a real
    // shard-process crash would. One-shot via the arena latch, so the
    // respawned incarnation survives the same request range.
    raise(SIGKILL);
  }
  PollInbox(p);
  p.core.AdvanceTo(p.processed);
  p.batch_keys.resize(count);
  if (p.two_level != nullptr) {
    p.two_level->SampleBatch(p.core.rng(), p.batch_keys.data(), count);
  } else {
    p.sampler->SampleBatch(p.core.rng(), p.batch_keys.data(), count);
  }
  ProcSink sink{this, &p};
  p.core.ProcessBatch(sink, p.batch_keys.data(), count);
  p.processed += count;
  PulseHeartbeat(p);
}

void MultiprocBackend::RunShard(Proc& p, uint64_t quota,
                                uint64_t num_requests) {
  const uint32_t n = shard_map_.shards();
  const uint32_t num_cache_nodes = shard_map_.num_cache_nodes();
  p.local.cache_load = model_.ZeroCacheLoads();
  p.local.server_load.assign(model_.num_servers(), 0.0);
  p.own_cache.assign(num_cache_nodes, 0.0);
  p.own_server.assign(model_.num_servers(), 0.0);
  p.last_partial.assign(n, std::vector<double>(num_cache_nodes, 0.0));
  p.partial_report.assign(n, {});
  p.ready_reports.assign(n, {});
  p.out_cache.assign(n, {});
  p.out_server.assign(n, {});
  p.done_ring.assign(n, 0);
  p.sampler = &sampler_;
  p.two_level = two_level_.get();
  p.quota_scale = num_requests == 0 ? 0.0
                                    : static_cast<double>(quota) /
                                          static_cast<double>(num_requests);
  // Schedule this shard's injected faults on its *local* request clock —
  // config timestamps are global-clock, scaled exactly like the timeline
  // plan below. Empty in fault-free runs: the batch-loop hook then compiles
  // to one never-taken branch.
  for (size_t i = 0; i < config_.fault_plan.events.size(); ++i) {
    const FaultEvent& ev = config_.fault_plan.events[i];
    if (ev.shard != p.id || ev.kind == FaultKind::kArenaMapFail) {
      continue;
    }
    p.faults.push_back(
        {static_cast<uint64_t>(static_cast<double>(ev.at_request) *
                               p.quota_scale),
         static_cast<uint32_t>(i), ev.kind, ev.param, ev.at_request});
  }
  std::stable_sort(p.faults.begin(), p.faults.end(),
                   [](const Proc::PlannedFault& a, const Proc::PlannedFault& b) {
                     return a.at_local < b.at_local;
                   });
  p.core.BindStats(&p.local);
  // Arena-resident plan: the base table lives in the arena; install it as a
  // non-owning view (the arena outlives the run by construction).
  const TableView base = ViewTable(arena_.At(plan_table_offset_[0]));
  p.core.SetRouteView(base.entries, base.len, base.overflow);
  // Same open-loop discipline and seed derivation as the in-process shards:
  // each shard process simulates an independent full-rate time slice.
  p.core.ConfigureOpenLoop(
      config_.queue,
      HashCombine(HashCombine(config_.cluster.seed, 0x0be71457ULL), p.id));
  p.core.SetSampleStep(static_cast<double>(config_.sample_interval) *
                       p.quota_scale);
  p.core.SetPhaseHook(
      [this, &p](const WorkloadPhase& phase,
                 const std::shared_ptr<const std::vector<double>>& pmf) {
        if (p.two_level != nullptr) {
          // Closed-form O(hot) rebuild from the phase's skew (no pmf exists in
          // two-level mode); deterministic across shard processes.
          p.phase_two_level = std::make_unique<TwoLevelSampler>(
              model_.cfg.num_keys, phase.zipf_theta, model_.pool);
          p.two_level = p.phase_two_level.get();
        } else if (pmf != nullptr) {
          p.phase_sampler = std::make_unique<AliasSampler>(*pmf);
          p.sampler = p.phase_sampler.get();
        }
      });
  p.core.SetReallocateHook([this, &p] {
    return arena_realloc_ ? ReallocateViaArena(p) : Reallocate(p);
  });

  // The timeline plan is a pure function of the config, so every child queues
  // it locally — no controller multicast to wait on. Action construction
  // matches the in-process QueueTimelineMsg field-for-field, except the route
  // snapshots: those are arena-resident (the heap copies were freed pre-fork),
  // so each step gets its serialized table installed as a view.
  for (size_t i = 0; i < fired_plan_.size(); ++i) {
    const TimelineStep& step = fired_plan_[i];
    ClusterEvent ev = step.event;
    ev.at_request = step.at_request;
    p.core.QueueAction({static_cast<double>(step.at_request) * p.quota_scale,
                        step.is_phase, step.phase, ev, step.pmf, nullptr});
    const TableView v = ViewTable(arena_.At(plan_table_offset_[1 + i]));
    if (!v.null) {
      p.core.SetActionRouteView(i, v.entries, v.len, v.overflow);
    }
  }

  std::function<void()> batch_event = [&] {
    if (p.processed >= quota) {
      return;
    }
    const uint32_t count = static_cast<uint32_t>(
        std::min<uint64_t>(config_.batch_size, quota - p.processed));
    ProcessBatch(p, count);
    if (p.processed < quota) {
      p.queue.Schedule(static_cast<double>(count), batch_event);
    }
  };
  std::function<void()> telemetry_event = [&] {
    if (p.processed >= quota) {
      return;
    }
    BroadcastTelemetry(p);
    p.queue.Schedule(static_cast<double>(config_.epoch_requests),
                     telemetry_event);
  };
  p.queue.Schedule(0.0, batch_event);
  if (config_.epoch_requests > 0 && n > 1) {
    p.queue.Schedule(static_cast<double>(config_.epoch_requests),
                     telemetry_event);
  }
  p.queue.RunUntil(static_cast<double>(quota) + 1.0);

  p.core.AdvanceTo(quota);

  FlushLoads(p);
  for (uint32_t peer = 0; peer < n; ++peer) {
    if (peer != p.id && !ShardDead(peer)) {
      SendDone(p, peer);
    }
  }
  {
    // A peer is finished when its kDone arrived on the ring — or when its
    // completion slot says it already exited (its kDone may have been
    // consumed by a since-crashed incarnation of this shard under respawn;
    // the slot store is release-ordered after the peer's last ring publish,
    // so counting it finished still guarantees its deltas are visible to the
    // drains below).
    const auto all_done = [&] {
      for (uint32_t peer = 0; peer < n; ++peer) {
        if (peer == p.id || p.done_ring[peer]) {
          continue;
        }
        if (ShardSlotAt(arena_, control_offset_, peer)
                ->state.load(std::memory_order_acquire) != kShardRunning) {
          continue;
        }
        return false;
      }
      return true;
    };
    Backoff backoff;
    while (!all_done()) {
      DrainDataRings(p);
      DrainControlRings(p);
      if (all_done()) {
        break;
      }
      if (Aborted()) {
        p.abort_seen = true;
        break;
      }
      PulseHeartbeat(p);
      backoff.Pause();
    }
    DrainDataRings(p);  // every live peer's final deltas are visible now
  }
  p.core.FinishSeries(p.processed);
  p.local.requests = p.processed;
  // Memory accounting (max-merged, sim_backend.h): the base table and every
  // plan snapshot are arena-resident (counted once, in the supervisor's
  // arena_bytes stamp), so a child's private route-table footprint is zero —
  // the figure the memwall gate banks on. Tables a runtime re-allocation
  // builds on the legacy path are small-config test territory, uncounted
  // (same rule as PlanRouteTableBytes).
  p.local.peak_rss_bytes = CurrentPeakRssBytes();
  p.local.route_table_bytes = 0;
  p.local.sampler_bytes = p.two_level != nullptr ? p.two_level->bytes()
                                                 : p.sampler->bytes();
}

// ---- supervisor ------------------------------------------------------------

BackendStats MultiprocBackend::Run(uint64_t num_requests) {
  const uint32_t n = shard_map_.shards();
  fired_plan_.clear();
  for (const TimelineStep& step : plan_) {
    if (step.at_request < num_requests) {
      fired_plan_.push_back(step);
    }
  }
  if (!LayoutAndMapArena(num_requests)) {
    BackendStats stats = FailAll(n);
    stats.fault_events.push_back(
        {0, BackendStats::FaultRecord::kArenaMapFailed, 0});
    if (config_.fault_plan.arena_map_failure()) {
      stats.injected_faults = 1;
    }
    return stats;
  }
  if (config_.numa_interleave) {
    // Before any arena page is faulted: the plan tables serialized below then
    // stripe across nodes instead of landing wholly on the supervisor's.
    arena_.InterleaveAcrossNumaNodes();
  }
  SerializePlanTables();

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<pid_t> pids(n, -1);
  const auto quota_of = [&](uint32_t i) {
    return num_requests / n + (i < num_requests % n ? 1 : 0);
  };
  for (uint32_t i = 0; i < n; ++i) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      ChildMain(i, quota_of(i), num_requests, /*respawned=*/false);  // [[noreturn]]
    }
    if (pid < 0) {
      // Partial-fork cleanup: kill and reap everything already spawned,
      // release the arena, and report total failure — never leak children
      // or a mapping on the fork-exhaustion path.
      CtrlBlockAt(arena_, control_offset_)
          ->abort.store(1, std::memory_order_release);
      for (uint32_t k = 0; k < i; ++k) {
        if (pids[k] > 0) {
          ::kill(pids[k], SIGKILL);
        }
      }
      for (uint32_t k = 0; k < i; ++k) {
        if (pids[k] > 0) {
          int status = 0;
          ::waitpid(pids[k], &status, 0);
        }
      }
      arena_.Unmap();
      return FailAll(n);
    }
    pids[i] = pid;
  }

  // Reap loop: children exit on their own (quota done, or abort-flag
  // wind-down). A child that dies abnormally is respawned while its budget
  // lasts, then marked kShardDead so the survivors complete degraded — the
  // abort flag is no longer raised for a lost shard, only for catastrophic
  // setup failures. While a child lives, its heartbeat word is watched on a
  // wall-clock ladder: warn_ms without progress records a miss, dead_ms
  // SIGKILLs the wedged process into the same respawn-or-degrade path, so no
  // fault class (including a silent stall) can hang the run.
  std::vector<uint8_t> failed(n, 0);
  std::vector<uint32_t> respawn_left(
      n, config_.respawn ? config_.respawn_limit : 0);
  uint32_t respawned = 0;
  uint32_t live = n;
  uint64_t heartbeat_misses = 0;
  std::vector<BackendStats::FaultRecord> observed;
  struct Watch {
    uint64_t hb = 0;
    std::chrono::steady_clock::time_point since;
    bool warned = false;
  };
  std::vector<Watch> watch(n);
  for (uint32_t i = 0; i < n; ++i) {
    watch[i].since = t0;
  }
  Backoff backoff;
  while (live > 0) {
    bool progress = false;
    for (uint32_t i = 0; i < n; ++i) {
      if (pids[i] < 0) {
        continue;
      }
      int status = 0;
      const pid_t r = ::waitpid(pids[i], &status, WNOHANG);
      if (r == 0) {
        // Still running: advance the liveness ladder.
        const uint64_t hb = ShardSlotAt(arena_, control_offset_, i)
                                ->heartbeat.load(std::memory_order_relaxed);
        const auto now = std::chrono::steady_clock::now();
        if (hb != watch[i].hb) {
          watch[i] = {hb, now, false};
          continue;
        }
        const uint64_t stalled_ms = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                now - watch[i].since)
                .count());
        if (!watch[i].warned && config_.heartbeat_warn_ms != 0 &&
            stalled_ms >= config_.heartbeat_warn_ms) {
          watch[i].warned = true;
          ++heartbeat_misses;
          observed.push_back(
              {i, BackendStats::FaultRecord::kHeartbeatWarn, 0});
        }
        if (config_.heartbeat_dead_ms != 0 &&
            stalled_ms >= config_.heartbeat_dead_ms) {
          // Declared dead: kill the wedged process; the next reap pass
          // routes it through the normal respawn-or-degrade path below.
          observed.push_back(
              {i, BackendStats::FaultRecord::kShardDeclaredDead, 0});
          ::kill(pids[i], SIGKILL);
          watch[i].since = now;
          watch[i].warned = false;
        }
        continue;
      }
      pids[i] = -1;
      --live;
      progress = true;
      // Orderly = a clean exit code AND a published completion state. The
      // state check is what catches an injected clean-exit crash: exit(0)
      // with the slot still kShardRunning is a vanished shard, not a done
      // one. Exit 3 is the orderly wind-down after the abort flag.
      const bool orderly =
          r > 0 && WIFEXITED(status) &&
          (WEXITSTATUS(status) == 0 || WEXITSTATUS(status) == 3) &&
          ShardSlotAt(arena_, control_offset_, i)
                  ->state.load(std::memory_order_acquire) != kShardRunning;
      if (orderly) {
        continue;
      }
      observed.push_back({i, BackendStats::FaultRecord::kShardDeath, 0});
      if (respawn_left[i] > 0) {
        --respawn_left[i];
        // Reset the completion slot: SIGKILL usually left it untouched, but a
        // death between the stats publish and _exit would otherwise let peers
        // count this shard done while the respawn is still re-running.
        ShardSlot* slot = ShardSlotAt(arena_, control_offset_, i);
        slot->stats_len.store(0, std::memory_order_release);
        slot->state.store(kShardRunning, std::memory_order_release);
        const pid_t fresh = ::fork();
        if (fresh == 0) {
          ChildMain(i, quota_of(i), num_requests, /*respawned=*/true);
        }
        if (fresh > 0) {
          pids[i] = fresh;
          ++live;
          ++respawned;
          observed.push_back(
              {i, BackendStats::FaultRecord::kShardRespawn, 0});
          watch[i].since = std::chrono::steady_clock::now();
          watch[i].warned = false;
          continue;
        }
        // fork failed: fall through to the dead-shard path
      }
      // Budget exhausted: permanently dead. Peers see kShardDead and skip
      // this shard in every send, rendezvous gather, election and the done
      // protocol; the run completes with the survivors' quota — degrade,
      // don't abort.
      failed[i] = 1;
      ShardSlotAt(arena_, control_offset_, i)
          ->state.store(kShardDead, std::memory_order_release);
      observed.push_back(
          {i, BackendStats::FaultRecord::kShardDeclaredDead, 0});
    }
    if (live > 0 && !progress) {
      backoff.Pause();
    }
  }
  const auto t1 = std::chrono::steady_clock::now();

  // Bucket-exact quota-end merge from the arena-resident per-shard stats:
  // deserialization is bit-exact and BackendStats::Merge is the same
  // element-wise accumulate the in-process engine uses across its joined
  // threads. Every blob must match its child-computed CRC-32 — a mismatch
  // (torn write, injected corruption) fails the shard instead of merging
  // garbage. Lost shards charge their quota to degraded_fraction, so the
  // caller can check hit-ratio degradation is proportional to lost quota.
  BackendStats total;
  uint64_t lost_quota = 0;
  for (uint32_t i = 0; i < n; ++i) {
    ShardSlot* slot = ShardSlotAt(arena_, control_offset_, i);
    const uint32_t state = slot->state.load(std::memory_order_acquire);
    const uint64_t len = slot->stats_len.load(std::memory_order_acquire);
    const bool crc_ok =
        len != 0 && len <= stats_bound_ &&
        slot->stats_crc.load(std::memory_order_acquire) ==
            Crc32(arena_.At(stats_offset_[i]), static_cast<size_t>(len));
    if (!failed[i] && state != kShardRunning && len != 0 &&
        len <= stats_bound_ && !crc_ok) {
      observed.push_back(
          {i, BackendStats::FaultRecord::kStatsCrcMismatch, 0});
    }
    BackendStats partial;
    if (failed[i] || state == kShardRunning || state == kShardDead || !crc_ok ||
        !DeserializeBackendStats(arena_.At(stats_offset_[i]), len, &partial)) {
      ++total.failed_shards;
      lost_quota += quota_of(i);
      continue;
    }
    total.Merge(partial);
  }
  total.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  total.respawned_shards = respawned;
  total.heartbeat_misses += heartbeat_misses;
  total.degraded_fraction =
      num_requests == 0 ? 0.0
                        : static_cast<double>(lost_quota) /
                              static_cast<double>(num_requests);
  total.fault_events.insert(total.fault_events.end(), observed.begin(),
                            observed.end());
  total.arena_bytes = arena_.size();
  total.peak_rss_bytes = std::max(total.peak_rss_bytes, CurrentPeakRssBytes());
  arena_.Unmap();
  return total;
}

}  // namespace distcache
