#include "sim/pok_process.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace distcache {

PokProcess::PokProcess(const Config& config)
    : config_(config),
      graph_(config.num_objects, config.layer_sizes, HashCombine(config.seed, 0x90cULL)),
      dist_(config.pmf_cap > 0.0
                ? std::make_unique<DiscreteDistribution>(
                      CappedZipfPmf(config.num_objects, config.zipf_theta,
                                    config.pmf_cap),
                      "capped-zipf")
                : MakeDistribution(config.num_objects, config.zipf_theta)),
      rng_(HashCombine(config.seed, 0x90c2ULL)) {
  assert(config_.total_rate > 0.0);
  assert(config_.choices >= 1 && config_.choices <= graph_.num_layers());
  queue_len_.assign(graph_.num_cache_nodes(), 0);
  busy_.assign(graph_.num_cache_nodes(), false);
}

size_t PokProcess::ChooseQueue(uint64_t object) {
  size_t best = graph_.NodeOf(object, 0);
  uint64_t best_len = queue_len_[best];
  size_t ties = 1;
  for (size_t l = 1; l < config_.choices; ++l) {
    const size_t node = graph_.NodeOf(object, l);
    const uint64_t len = queue_len_[node];
    if (len < best_len) {
      best = node;
      best_len = len;
      ties = 1;
    } else if (len == best_len) {
      ++ties;
      if (rng_.NextBounded(ties) == 0) {
        best = node;
      }
    }
  }
  return best;
}

void PokProcess::StartServiceIfIdle(size_t queue_index) {
  if (busy_[queue_index] || queue_len_[queue_index] == 0) {
    return;
  }
  busy_[queue_index] = true;
  events_.Schedule(rng_.NextExponential(config_.service_rate),
                   [this, queue_index] { Depart(queue_index); });
}

void PokProcess::Depart(size_t queue_index) {
  busy_[queue_index] = false;
  assert(queue_len_[queue_index] > 0);
  --queue_len_[queue_index];
  ++departures_;
  StartServiceIfIdle(queue_index);
}

void PokProcess::Arrive() {
  const size_t q = ChooseQueue(dist_->Sample(rng_));
  ++queue_len_[q];
  ++arrivals_;
  StartServiceIfIdle(q);
  events_.Schedule(rng_.NextExponential(config_.total_rate), [this] { Arrive(); });
}

PokProcess::Result PokProcess::Run(double duration) {
  Result result;
  events_.Schedule(rng_.NextExponential(config_.total_rate), [this] { Arrive(); });
  const int samples = std::max(4, static_cast<int>(duration));
  const double step = duration / samples;
  result.backlog_series.reserve(samples);
  for (int i = 0; i < samples; ++i) {
    events_.RunUntil(step * (i + 1));
    result.backlog_series.push_back(static_cast<double>(
        std::accumulate(queue_len_.begin(), queue_len_.end(), uint64_t{0})));
    result.max_queue = std::max(
        result.max_queue,
        static_cast<double>(*std::max_element(queue_len_.begin(), queue_len_.end())));
  }
  result.arrivals = arrivals_;
  result.departures = departures_;
  const size_t half = result.backlog_series.size() / 2;
  const size_t n = result.backlog_series.size() - half;
  if (n >= 2) {
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (size_t i = 0; i < n; ++i) {
      const double x = static_cast<double>(i) * step;
      const double y = result.backlog_series[half + i];
      sx += x;
      sy += y;
      sxx += x * x;
      sxy += x * y;
    }
    const double denom = static_cast<double>(n) * sxx - sx * sx;
    result.drift = denom != 0.0 ? (static_cast<double>(n) * sxy - sx * sy) / denom : 0.0;
  }
  result.stationary = result.drift < 0.01 * config_.total_rate;
  return result;
}

}  // namespace distcache
