#include "sim/stats_codec.h"

#include <cstring>

#include "common/hash.h"
#include "common/stats.h"

namespace distcache {
namespace {

// Bump-pointer writer/reader over the caller's buffer; every primitive moves
// through memcpy so doubles keep their exact bit pattern and alignment is a
// non-issue.
struct Writer {
  uint8_t* p;
  size_t left;
  bool ok = true;

  void Bytes(const void* src, size_t n) {
    if (!ok || n > left) {
      ok = false;
      return;
    }
    if (n == 0) {
      return;  // empty vectors hand us data() == nullptr; memcpy forbids it
    }
    std::memcpy(p, src, n);
    p += n;
    left -= n;
  }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  void F64(double v) { Bytes(&v, sizeof(v)); }
  void DoubleVec(const std::vector<double>& v) {
    U64(v.size());
    Bytes(v.data(), v.size() * sizeof(double));
  }
};

struct Reader {
  const uint8_t* p;
  size_t left;
  bool ok = true;

  void Bytes(void* dst, size_t n) {
    if (!ok || n > left) {
      ok = false;
      return;
    }
    if (n == 0) {
      return;  // a resize(0) target keeps data() == nullptr; memcpy forbids it
    }
    std::memcpy(dst, p, n);
    p += n;
    left -= n;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Bytes(&v, sizeof(v));
    return v;
  }
  double F64() {
    double v = 0.0;
    Bytes(&v, sizeof(v));
    return v;
  }
  bool DoubleVec(std::vector<double>* v) {
    const uint64_t n = U64();
    if (!ok || n > left / sizeof(double)) {
      return ok = false;
    }
    v->resize(n);
    Bytes(v->data(), n * sizeof(double));
    return ok;
  }
};

void PutHistogram(Writer& w, const LatencyHistogram& h) {
  const std::vector<uint64_t>& counts = h.counts();
  w.U64(counts.size());  // 0 (lazily unallocated) or kNumBuckets
  w.Bytes(counts.data(), counts.size() * sizeof(uint64_t));
  w.U64(h.total());
  w.U64(h.infinite());
  w.F64(h.finite_sum());
}

bool GetHistogram(Reader& r, LatencyHistogram* h) {
  const uint64_t n = r.U64();
  if (!r.ok || (n != 0 && n != LatencyHistogram::kNumBuckets) ||
      n > r.left / sizeof(uint64_t)) {
    return r.ok = false;
  }
  std::vector<uint64_t> counts(n);
  r.Bytes(counts.data(), n * sizeof(uint64_t));
  const uint64_t total = r.U64();
  const uint64_t infinite = r.U64();
  const double sum = r.F64();
  if (!r.ok) {
    return false;
  }
  *h = LatencyHistogram::FromRaw(std::move(counts), total, infinite, sum);
  return true;
}

constexpr size_t kHistogramBound =
    8 + LatencyHistogram::kNumBuckets * 8 + 8 + 8 + 8;
constexpr size_t kCounterBound = 25 * 8 + 8;  // counters + doubles + slack word
constexpr size_t kFaultRecordBound = 2 * 4 + 8;  // shard + kind + at

}  // namespace

size_t StatsCodecBound(size_t num_layers, size_t num_cache_nodes,
                       size_t num_servers, size_t max_series_points,
                       size_t max_fault_events) {
  size_t bytes = kCounterBound;
  bytes += 8 + num_layers * 8 + num_cache_nodes * 8;  // cache_load
  bytes += 8 + num_servers * 8;                       // server_load
  bytes += kHistogramBound;                           // latency
  bytes += 8 + max_series_points * (5 * 8 + kHistogramBound);  // series
  bytes += 8 + max_fault_events * kFaultRecordBound;           // fault_events
  return bytes;
}

size_t SerializeBackendStats(const BackendStats& stats, uint8_t* out,
                             size_t cap) {
  Writer w{out, cap};
  w.U64(stats.requests);
  w.U64(stats.reads);
  w.U64(stats.writes);
  w.U64(stats.cache_hits);
  w.U64(stats.spine_hits);
  w.U64(stats.leaf_hits);
  w.U64(stats.server_reads);
  w.U64(stats.cache_write_hits);
  w.U64(stats.writebacks);
  w.U64(stats.dropped);
  w.U64(stats.cross_shard_messages);
  w.U64(stats.ring_messages);
  w.U64(stats.uncontended_receives);
  w.U64(stats.contended_receives);
  w.U64(stats.failed_shards);
  w.U64(stats.respawned_shards);
  w.U64(stats.injected_faults);
  w.U64(stats.heartbeat_misses);
  w.U64(stats.controller_failovers);
  w.F64(stats.degraded_fraction);
  w.U64(stats.peak_rss_bytes);
  w.U64(stats.route_table_bytes);
  w.U64(stats.sampler_bytes);
  w.U64(stats.arena_bytes);
  w.F64(stats.wall_seconds);
  w.U64(stats.cache_load.size());
  for (const std::vector<double>& layer : stats.cache_load) {
    w.DoubleVec(layer);
  }
  w.DoubleVec(stats.server_load);
  PutHistogram(w, stats.latency);
  w.U64(stats.series.size());
  for (const BackendStats::IntervalPoint& pt : stats.series) {
    w.U64(pt.requests);
    w.U64(pt.delivered);
    w.U64(pt.dropped);
    w.U64(pt.reads);
    w.U64(pt.cache_hits);
    PutHistogram(w, pt.latency);
  }
  w.U64(stats.fault_events.size());
  for (const BackendStats::FaultRecord& rec : stats.fault_events) {
    w.Bytes(&rec.shard, sizeof(rec.shard));
    w.Bytes(&rec.kind, sizeof(rec.kind));
    w.U64(rec.at);
  }
  return w.ok ? cap - w.left : 0;
}

bool DeserializeBackendStats(const uint8_t* in, size_t len, BackendStats* out) {
  *out = BackendStats{};
  Reader r{in, len};
  out->requests = r.U64();
  out->reads = r.U64();
  out->writes = r.U64();
  out->cache_hits = r.U64();
  out->spine_hits = r.U64();
  out->leaf_hits = r.U64();
  out->server_reads = r.U64();
  out->cache_write_hits = r.U64();
  out->writebacks = r.U64();
  out->dropped = r.U64();
  out->cross_shard_messages = r.U64();
  out->ring_messages = r.U64();
  out->uncontended_receives = r.U64();
  out->contended_receives = r.U64();
  out->failed_shards = r.U64();
  out->respawned_shards = r.U64();
  out->injected_faults = r.U64();
  out->heartbeat_misses = r.U64();
  out->controller_failovers = r.U64();
  out->degraded_fraction = r.F64();
  out->peak_rss_bytes = r.U64();
  out->route_table_bytes = r.U64();
  out->sampler_bytes = r.U64();
  out->arena_bytes = r.U64();
  out->wall_seconds = r.F64();
  const uint64_t layers = r.U64();
  if (!r.ok || layers > r.left / 8) {
    *out = BackendStats{};
    return false;
  }
  out->cache_load.resize(layers);
  for (uint64_t l = 0; l < layers; ++l) {
    r.DoubleVec(&out->cache_load[l]);
  }
  r.DoubleVec(&out->server_load);
  GetHistogram(r, &out->latency);
  const uint64_t points = r.U64();
  if (!r.ok || points > r.left / (5 * 8)) {
    *out = BackendStats{};
    return false;
  }
  out->series.resize(points);
  for (uint64_t i = 0; i < points; ++i) {
    BackendStats::IntervalPoint& pt = out->series[i];
    pt.requests = r.U64();
    pt.delivered = r.U64();
    pt.dropped = r.U64();
    pt.reads = r.U64();
    pt.cache_hits = r.U64();
    GetHistogram(r, &pt.latency);
  }
  const uint64_t faults = r.U64();
  if (!r.ok || faults > r.left / kFaultRecordBound) {
    *out = BackendStats{};
    return false;
  }
  out->fault_events.resize(faults);
  for (uint64_t i = 0; i < faults; ++i) {
    BackendStats::FaultRecord& rec = out->fault_events[i];
    r.Bytes(&rec.shard, sizeof(rec.shard));
    r.Bytes(&rec.kind, sizeof(rec.kind));
    rec.at = r.U64();
  }
  if (!r.ok) {
    *out = BackendStats{};
    return false;
  }
  return true;
}

uint64_t DeterministicStatsDigest(const BackendStats& stats) {
  uint64_t h = 0x5eed0d16e57ULL;
  const auto mix = [&h](uint64_t v) { h = Mix64(HashCombine(h, v)); };
  mix(stats.requests);
  mix(stats.reads);
  mix(stats.writes);
  mix(stats.cache_hits);
  mix(stats.server_reads);
  mix(stats.cache_write_hits);
  mix(stats.writebacks);
  mix(stats.dropped);
  mix(stats.failed_shards);
  mix(stats.respawned_shards);
  mix(stats.injected_faults);
  mix(stats.controller_failovers);
  uint64_t degraded_bits = 0;
  std::memcpy(&degraded_bits, &stats.degraded_fraction, sizeof(degraded_bits));
  mix(degraded_bits);
  mix(stats.series.size());
  for (const BackendStats::IntervalPoint& pt : stats.series) {
    mix(pt.requests);
    mix(pt.reads);
    mix(pt.cache_hits);
    mix(pt.dropped);
  }
  return h;
}

}  // namespace distcache
