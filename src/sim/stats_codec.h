// Lossless BackendStats (de)serialization — how a multiproc shard process
// returns its quota-end partial stats to the supervisor.
//
// The in-process engines hand BackendStats across a join; a shard *process*
// must hand it across an address space, so each child serializes its partial
// into its arena-resident stats region and the supervisor deserializes and
// Merge()s after reaping it. Requirements that shape the format:
//
//   * bit-exact doubles — loads and latency sums round-trip via their bit
//     patterns (memcpy), never via text, so the multiproc x1 run stays
//     bit-identical to the in-process sharded x1 goldens;
//   * self-describing lengths — vector sizes are written inline, so the
//     supervisor needs no side channel beyond the byte count;
//   * bounded size — StatsCodecBound() gives a pre-run upper bound from the
//     topology and series geometry, which is what sizes the arena regions
//     before the fork (a child can never outgrow its region: the bound is a
//     function of the same config the child runs).
//
// Fields host-endian: the producer and consumer are a fork pair on one
// machine, never a network peer.
#ifndef DISTCACHE_SIM_STATS_CODEC_H_
#define DISTCACHE_SIM_STATS_CODEC_H_

#include <cstddef>
#include <cstdint>

#include "sim/sim_backend.h"

namespace distcache {

// Upper bound on SerializeBackendStats output for any BackendStats produced by
// a run over `num_layers` cache layers of `num_cache_nodes` total switches,
// `num_servers` servers, at most `max_series_points` interval points, and at
// most `max_fault_events` fault records (the size of the injected FaultPlan
// plus a handful of per-shard recovery records; 0 for fault-free engines).
size_t StatsCodecBound(size_t num_layers, size_t num_cache_nodes,
                       size_t num_servers, size_t max_series_points,
                       size_t max_fault_events = 0);

// Serializes `stats` into `out` (capacity `cap`). Returns bytes written, or 0
// when the encoding would not fit (callers size `cap` with StatsCodecBound, so
// 0 indicates a config/bound mismatch, not a runtime condition).
size_t SerializeBackendStats(const BackendStats& stats, uint8_t* out,
                             size_t cap);

// Inverse. Returns false on a truncated or malformed buffer; *out is
// value-initialized first, so a false return leaves an empty stats object.
bool DeserializeBackendStats(const uint8_t* in, size_t len, BackendStats* out);

// Order-independent digest over the *deterministic* subset of a run's stats:
// the per-shard-stream counters (requests/reads/writes/cache_hits/
// server_reads/dropped and the policy write path), failure accounting
// (failed/respawned shards, injected faults, controller failovers,
// degraded_fraction bits) and the per-interval request/read/hit series. It
// deliberately excludes everything timing-dependent — telemetry-order-
// sensitive layer splits (spine_hits/leaf_hits) and load vectors at shards>1,
// wall seconds, RSS, heartbeat misses, transport message counts, and the
// fault event series (supervisor entries fire on the wall clock). Same seed +
// same fault plan ⇒ same digest; this is the byte-identity gate bench_chaos
// and the chaos tests assert.
uint64_t DeterministicStatsDigest(const BackendStats& stats);

}  // namespace distcache

#endif  // DISTCACHE_SIM_STATS_CODEC_H_
