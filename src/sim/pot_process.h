// The power-of-two-choices queueing process of the paper's analysis (appendix A.3):
// 2m cache-node queues with exponential service times; Poisson query arrivals; a
// query for object i joins the shorter of the two queues {a_{h0(i)}, b_{h1(i)}}
// (ties broken randomly). Object choices are FIXED by the hash functions — the
// crucial difference from the classic balls-and-bins supermarket model.
//
// Lemma 2: if a fractional perfect matching exists, this Markov process is positive
// recurrent (queues stay bounded). Lemma 3: with a single hash function the process
// is non-stationary with constant probability (queues grow linearly). This simulator
// lets the benches exhibit both behaviours and cross-check against the max-flow
// feasibility certificate from src/matching.
#ifndef DISTCACHE_SIM_POT_PROCESS_H_
#define DISTCACHE_SIM_POT_PROCESS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/zipf.h"
#include "matching/cache_graph.h"
#include "sim/event_queue.h"

namespace distcache {

enum class ChoicePolicy {
  kPowerOfTwo,   // join the shorter of the two hashed queues
  kSingleHash,   // only h1 exists (Lemma 3 strawman)
  kRandomOfTwo,  // uniformly random of the two hashed queues (no load awareness)
};

class PotProcess {
 public:
  struct Config {
    size_t num_objects = 256;     // k
    size_t upper_nodes = 16;      // |A| = m
    size_t lower_nodes = 16;      // |B| = m
    double service_rate = 1.0;    // T̃ per cache node
    double total_rate = 0.0;      // R; required
    double zipf_theta = 0.0;      // object popularity (0 = uniform)
    // When > 0, clip the object pmf at this value (redistributing mass to the tail).
    // Setting pmf_cap = service_rate / (2 * total_rate) puts the workload exactly at
    // Theorem 1's precondition max_i p_i * R = T~/2.
    double pmf_cap = 0.0;
    ChoicePolicy policy = ChoicePolicy::kPowerOfTwo;
    uint64_t seed = 7;
  };

  struct Result {
    std::vector<double> backlog_series;  // total queued jobs sampled each time unit
    uint64_t arrivals = 0;
    uint64_t departures = 0;
    double max_queue = 0.0;
    // Least-squares slope of the backlog over the second half of the run, in jobs per
    // time unit. ~0 for a stationary system; ≈ (R - served rate) when unstable.
    double drift = 0.0;
    bool stationary = false;
  };

  explicit PotProcess(const Config& config);

  // Runs the process for `duration` time units, sampling the backlog each unit.
  Result Run(double duration);

  // The choice-set graph, shared with the matching analysis for cross-checks.
  const CacheGraph& graph() const { return graph_; }

 private:
  size_t ChooseQueue(uint64_t object);
  void Arrive();
  void Depart(size_t queue_index);
  void StartServiceIfIdle(size_t queue_index);

  Config config_;
  CacheGraph graph_;
  std::unique_ptr<KeyDistribution> dist_;
  EventQueue events_;
  Rng rng_;
  std::vector<uint64_t> queue_len_;
  std::vector<bool> busy_;
  uint64_t arrivals_ = 0;
  uint64_t departures_ = 0;
};

}  // namespace distcache

#endif  // DISTCACHE_SIM_POT_PROCESS_H_
