#include "sim/sequential_backend.h"

#include <chrono>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "sim/route_table.h"

namespace distcache {

namespace {

// Charges loads into the global cumulative counters and refreshes the telemetry
// view in place — the per-request piggybacked-telemetry semantics of §4.2 (every
// reply, data or coherence ack, carries the serving switch's current load).
struct SequentialSink {
  BackendStats* st;
  LoadTracker* view;

  void AddCacheLoad(CacheNodeId node, double delta) {
    double& load = st->cache_load[node.layer][node.index];
    load += delta;
    view->Set(node, load);
  }
  void AddServerLoad(uint32_t server, double delta) {
    st->server_load[server] += delta;
  }
};

}  // namespace

SequentialBackend::SequentialBackend(const SimBackendConfig& config)
    : config_(config),
      model_(config.cluster, /*build_popularity=*/!config.two_level_sampling),
      core_(&model_, HashCombine(config.cluster.seed, 0xc1057e4ULL),
            HashCombine(config.cluster.seed, 0x90076eULL),
            TimelineNeedsObserver(config.events)) {
  if (config_.two_level_sampling) {
    two_level_ = std::make_unique<TwoLevelSampler>(
        model_.cfg.num_keys, model_.cfg.zipf_theta, model_.pool);
  } else {
    head_dist_ = std::make_unique<DiscreteDistribution>(model_.head_with_tail,
                                                        "head+tail");
  }
  // The pre-event route table must snapshot the pristine allocation, so build it
  // before the plan walk below mutates the controller state.
  model_.dense_routes = config_.dense_routes;
  auto base = std::make_shared<const RouteTable>(BuildRouteTable(model_));
  base_route_bytes_ = base->bytes();
  core_.SetRoutes(std::move(base));
  // Open-loop virtual time, when configured. The time stream gets its own seed
  // derivation so the key/write streams stay bit-identical to closed-loop runs.
  core_.ConfigureOpenLoop(config_.queue,
                          HashCombine(config.cluster.seed, 0x0be71457ULL));
  plan_ = BuildTimelinePlan(config_, model_);
  core_.SetPhaseHook([this](const WorkloadPhase& phase,
                            const std::shared_ptr<const std::vector<double>>& pmf) {
    if (two_level_ != nullptr) {
      // Closed-form rebuild from the phase's skew — no pmf was materialized.
      two_level_ = std::make_unique<TwoLevelSampler>(
          model_.cfg.num_keys, phase.zipf_theta, model_.pool);
    } else if (pmf != nullptr) {
      head_dist_ = std::make_unique<DiscreteDistribution>(*pmf, "head+tail");
    }
  });
  core_.SetReallocateHook([this]() -> std::shared_ptr<const RouteTable> {
    // Controller re-allocation (§6.4): rank the observed heavy-hitter counts,
    // refill the allocation hottest-first, and swap in the rebuilt routes. The
    // controller acts on its *current* failure knowledge, so first re-sync its
    // remap to the alive set as of this timestamp (the construction-time plan
    // walk left it at the end-of-timeline state).
    model_.SyncControllerRemap(core_.spine_alive());
    std::vector<uint64_t> hottest;
    for (const auto& [key, count] : core_.ObservedCounts()) {
      hottest.push_back(key);
    }
    model_.ReallocateCache(hottest);
    auto routes = std::make_shared<const RouteTable>(
        BuildRouteTable(model_, core_.hot_shift()));
    // The remaining timeline's precomputed snapshots describe the pre-refill
    // cached set; rebuild them against the refilled allocation so later
    // failure/shift steps do not resurrect it. (Actions align with plan_ 1:1.)
    const size_t from = core_.next_action_index();
    const auto suffix = RebuildPlanSuffixRoutes(plan_, from, model_,
                                                core_.spine_alive(),
                                                core_.hot_shift());
    for (size_t i = 0; i < suffix.size(); ++i) {
      if (suffix[i] != nullptr) {
        core_.SetActionRoutes(from + i, suffix[i]);
      }
    }
    return routes;
  });
}

BackendStats SequentialBackend::Run(uint64_t num_requests) {
  BackendStats st;
  st.cache_load = model_.ZeroCacheLoads();
  st.server_load.assign(model_.num_servers(), 0.0);
  core_.BindStats(&st);
  core_.SetSampleStep(static_cast<double>(config_.sample_interval));
  core_.ClearActions();
  for (const TimelineStep& step : plan_) {
    // Timestamps at or beyond the Run never fire (AdvanceTo stops at the last
    // request index); queue everything and let the clock decide.
    core_.QueueAction({static_cast<double>(step.at_request), step.is_phase,
                       step.phase, step.event, step.pmf, step.routes});
  }
  SequentialSink sink{&st, &core_.view()};

  const auto t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < num_requests; ++i) {
    core_.AdvanceTo(i);

    // Telemetry epoch boundary: refresh the client's view from true loads.
    // Between boundaries the per-request Set() in the sink keeps the view exact
    // for routed nodes. (Dead spines emit no telemetry; the tracker routes their
    // refresh to the shadow value, keeping the +inf pin — see load_tracker.h.)
    if (config_.epoch_requests != 0 && i % config_.epoch_requests == 0) {
      for (uint32_t layer = 0; layer < st.cache_load.size(); ++layer) {
        for (uint32_t n = 0; n < st.cache_load[layer].size(); ++n) {
          core_.view().Set({layer, n}, st.cache_load[layer][n]);
        }
      }
    }

    const uint32_t bucket =
        two_level_ != nullptr
            ? two_level_->Sample(core_.rng())
            : static_cast<uint32_t>(head_dist_->Sample(core_.rng()));
    core_.Process(sink, bucket);
  }
  const auto t1 = std::chrono::steady_clock::now();
  st.requests = num_requests;
  core_.FinishSeries(num_requests);
  st.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  st.peak_rss_bytes = CurrentPeakRssBytes();
  st.route_table_bytes = base_route_bytes_ + PlanRouteTableBytes(nullptr, plan_);
  st.sampler_bytes =
      two_level_ != nullptr ? two_level_->bytes() : head_dist_->bytes();
  return st;
}

}  // namespace distcache
