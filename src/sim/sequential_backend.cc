#include "sim/sequential_backend.h"

#include <chrono>
#include <vector>

#include "common/hash.h"

namespace distcache {

SequentialBackend::SequentialBackend(const SimBackendConfig& config)
    : config_(config),
      model_(config.cluster),
      head_dist_(std::make_unique<DiscreteDistribution>(model_.head_with_tail,
                                                        "head+tail")),
      tracker_(MakeTrackerConfig(config.cluster)),
      router_(&tracker_, config.cluster.routing,
              HashCombine(config.cluster.seed, 0x90076eULL)),
      rng_(HashCombine(config.cluster.seed, 0xc1057e4ULL)) {}

BackendStats SequentialBackend::Run(uint64_t num_requests) {
  const ClusterConfig& cc = config_.cluster;
  BackendStats st;
  st.spine_load.assign(cc.num_spine, 0.0);
  st.leaf_load.assign(cc.num_racks, 0.0);
  st.server_load.assign(model_.num_servers(), 0.0);

  const double write_ratio = cc.write_ratio;
  const uint64_t tail_keys = cc.num_keys - model_.pool;
  std::vector<CacheNodeId> candidates;

  const auto t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < num_requests; ++i) {
    // Telemetry epoch boundary: refresh the client's view from true loads. Between
    // boundaries the per-request Set() below keeps the view exact for routed nodes.
    if (config_.epoch_requests != 0 && i % config_.epoch_requests == 0) {
      for (uint32_t s = 0; s < cc.num_spine; ++s) {
        tracker_.Set({0, s}, st.spine_load[s]);
      }
      for (uint32_t l = 0; l < cc.num_racks; ++l) {
        tracker_.Set({1, l}, st.leaf_load[l]);
      }
    }

    const uint64_t bucket = head_dist_->Sample(rng_);
    const bool is_tail = bucket == model_.pool;
    const uint64_t key =
        is_tail ? model_.pool + rng_.NextBounded(tail_keys) : bucket;
    const CacheCopies copies =
        is_tail ? CacheCopies{} : model_.allocation->CopiesOf(key);
    const bool is_write = write_ratio > 0.0 && rng_.NextBernoulli(write_ratio);

    if (is_write) {
      // Two-phase coherence (§4.3): each cached copy costs the switch
      // coherence_switch_cost units; the primary pays one write plus
      // coherence_server_cost per copy.
      ++st.writes;
      if (copies.leaf) {
        st.leaf_load[*copies.leaf] += cc.coherence_switch_cost;
      }
      if (copies.replicated_all_spines) {
        for (uint32_t s = 0; s < cc.num_spine; ++s) {
          st.spine_load[s] += cc.coherence_switch_cost;
        }
      } else if (copies.spine) {
        st.spine_load[*copies.spine] += cc.coherence_switch_cost;
      }
      st.server_load[model_.placement.ServerOf(key)] +=
          1.0 + cc.coherence_server_cost *
                    static_cast<double>(copies.NumCopies(cc.num_spine));
      continue;
    }

    ++st.reads;
    if (!copies.cached()) {
      st.server_load[model_.placement.ServerOf(key)] += 1.0;
      ++st.server_reads;
      continue;
    }
    candidates.clear();
    if (copies.replicated_all_spines) {
      for (uint32_t s = 0; s < cc.num_spine; ++s) {
        candidates.push_back({0, s});
      }
    } else if (copies.spine) {
      candidates.push_back({0, *copies.spine});
    }
    if (copies.leaf) {
      candidates.push_back({1, *copies.leaf});
    }
    const CacheNodeId node = candidates[router_.Choose(candidates)];
    double& load =
        node.layer == 0 ? st.spine_load[node.index] : st.leaf_load[node.index];
    load += 1.0;
    tracker_.Set(node, load);  // telemetry piggybacked on the reply
    ++st.cache_hits;
    ++(node.layer == 0 ? st.spine_hits : st.leaf_hits);
  }
  const auto t1 = std::chrono::steady_clock::now();
  st.requests = num_requests;
  st.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return st;
}

}  // namespace distcache
