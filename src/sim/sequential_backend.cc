#include "sim/sequential_backend.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "common/hash.h"

namespace distcache {

SequentialBackend::SequentialBackend(const SimBackendConfig& config)
    : config_(config),
      model_(config.cluster),
      head_dist_(std::make_unique<DiscreteDistribution>(model_.head_with_tail,
                                                        "head+tail")),
      tracker_(MakeTrackerConfig(config.cluster)),
      router_(&tracker_, config.cluster.routing,
              HashCombine(config.cluster.seed, 0x90076eULL)),
      rng_(HashCombine(config.cluster.seed, 0xc1057e4ULL)),
      events_(config.events),
      spine_alive_(config.cluster.num_spine, 1) {
  SortEventsByRequest(events_);
}

void SequentialBackend::ApplyEvent(const ClusterEvent& event) {
  const uint32_t num_spine = config_.cluster.num_spine;
  switch (event.kind) {
    case ClusterEvent::Kind::kFailSpine:
      if (event.spine < num_spine && spine_alive_[event.spine]) {
        spine_alive_[event.spine] = 0;
        ++dead_spines_;
        recovery_ran_ = false;  // hot objects of the dead switch lose their copy
        tracker_.MarkDead({0, event.spine});
      }
      break;
    case ClusterEvent::Kind::kRecoverSpine:
      if (event.spine < num_spine && !spine_alive_[event.spine]) {
        spine_alive_[event.spine] = 1;
        --dead_spines_;
        tracker_.MarkAlive({0, event.spine});
        // Restoration returns remapped partitions to their home switch (and, like
        // ClusterSim::RecoverSpine, syncs any other still-failed spines too).
        model_.SyncControllerRemap(spine_alive_);
      }
      break;
    case ClusterEvent::Kind::kRunRecovery:
      model_.SyncControllerRemap(spine_alive_);
      recovery_ran_ = true;
      break;
  }
}

bool SequentialBackend::TransitBlackholed() {
  return !recovery_ran_ && dead_spines_ > 0 &&
         rng_.NextBounded(config_.cluster.num_spine) < dead_spines_;
}

BackendStats SequentialBackend::Run(uint64_t num_requests) {
  const ClusterConfig& cc = config_.cluster;
  BackendStats st;
  st.spine_load.assign(cc.num_spine, 0.0);
  st.leaf_load.assign(cc.num_racks, 0.0);
  st.server_load.assign(model_.num_servers(), 0.0);

  const double write_ratio = cc.write_ratio;
  const uint64_t tail_keys = cc.num_keys - model_.pool;
  std::vector<CacheNodeId> candidates;

  // Event/series bookkeeping. Event timestamps are relative to this Run.
  size_t next_event = 0;
  const uint64_t sample = config_.sample_interval;
  BackendStats::IntervalPoint mark;  // running counters at the last sample boundary

  const auto t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < num_requests; ++i) {
    while (next_event < events_.size() && events_[next_event].at_request <= i) {
      ApplyEvent(events_[next_event++]);
    }
    if (sample != 0 && i != 0 && i % sample == 0) {
      st.CloseIntervalAt(i, mark);
    }

    // Telemetry epoch boundary: refresh the client's view from true loads. Between
    // boundaries the per-request Set() below keeps the view exact for routed nodes.
    // (Dead spines emit no telemetry; the tracker routes their refresh to the
    // shadow value, keeping the +inf pin — see load_tracker.h.)
    if (config_.epoch_requests != 0 && i % config_.epoch_requests == 0) {
      for (uint32_t s = 0; s < cc.num_spine; ++s) {
        tracker_.Set({0, s}, st.spine_load[s]);
      }
      for (uint32_t l = 0; l < cc.num_racks; ++l) {
        tracker_.Set({1, l}, st.leaf_load[l]);
      }
    }

    const uint64_t bucket = head_dist_->Sample(rng_);
    const bool is_tail = bucket == model_.pool;
    const uint64_t key =
        is_tail ? model_.pool + rng_.NextBounded(tail_keys) : bucket;
    const CacheCopies copies =
        is_tail ? CacheCopies{} : model_.allocation->CopiesOf(key);
    const bool is_write = write_ratio > 0.0 && rng_.NextBernoulli(write_ratio);

    if (is_write) {
      // Two-phase coherence (§4.3): each cached copy costs the switch
      // coherence_switch_cost units; the primary pays one write plus
      // coherence_server_cost per copy. Writes reach the primary through an
      // ECMP-chosen spine, so a pre-recovery dead spine blackholes its share.
      ++st.writes;
      if (TransitBlackholed()) {
        ++st.dropped;
        continue;
      }
      size_t num_copies = copies.leaf ? 1 : 0;
      if (copies.leaf) {
        st.leaf_load[*copies.leaf] += cc.coherence_switch_cost;
      }
      if (copies.replicated_all_spines) {
        num_copies += cc.num_spine - dead_spines_;
        for (uint32_t s = 0; s < cc.num_spine; ++s) {
          if (spine_alive_[s]) {
            st.spine_load[s] += cc.coherence_switch_cost;
          }
        }
      } else if (copies.spine && spine_alive_[*copies.spine]) {
        num_copies += 1;
        st.spine_load[*copies.spine] += cc.coherence_switch_cost;
      }
      st.server_load[model_.placement.ServerOf(key)] +=
          1.0 + cc.coherence_server_cost * static_cast<double>(num_copies);
      continue;
    }

    ++st.reads;
    // Blackholed candidates degrade the choice set: a dead spine copy is skipped
    // (the PoT pair becomes a single leaf choice); if no copy survives, the read
    // falls back to the primary server like an uncached key.
    candidates.clear();
    if (copies.replicated_all_spines) {
      for (uint32_t s = 0; s < cc.num_spine; ++s) {
        if (spine_alive_[s]) {
          candidates.push_back({0, s});
        }
      }
    } else if (copies.spine && spine_alive_[*copies.spine]) {
      candidates.push_back({0, *copies.spine});
    }
    if (copies.leaf) {
      candidates.push_back({1, *copies.leaf});
    }
    if (candidates.empty()) {
      if (TransitBlackholed()) {
        ++st.dropped;
        continue;
      }
      st.server_load[model_.placement.ServerOf(key)] += 1.0;
      ++st.server_reads;
      continue;
    }
    const CacheNodeId node = candidates[router_.Choose(candidates)];
    // Leaf hits transit an ECMP-chosen spine on the way down (§3.4); spine hits
    // are absorbed by their (alive) serving switch and cannot be blackholed.
    if (node.layer != 0 && TransitBlackholed()) {
      ++st.dropped;
      continue;
    }
    double& load =
        node.layer == 0 ? st.spine_load[node.index] : st.leaf_load[node.index];
    load += 1.0;
    tracker_.Set(node, load);  // telemetry piggybacked on the reply
    ++st.cache_hits;
    ++(node.layer == 0 ? st.spine_hits : st.leaf_hits);
  }
  const auto t1 = std::chrono::steady_clock::now();
  st.requests = num_requests;
  if (sample != 0 && num_requests > mark.requests) {
    st.CloseIntervalAt(num_requests, mark);
  }
  st.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return st;
}

}  // namespace distcache
