// Power-of-k-choices queueing process over an L-layer cache hierarchy (§3.1):
// each query joins the shortest of its L hashed candidate queues (one per layer).
// Generalizes PotProcess to validate the multi-layer extension: with more layers,
// stationarity holds at the same per-node load while each layer's cache can be
// smaller (more choices → better spread → cheaper per-layer provisioning).
#ifndef DISTCACHE_SIM_POK_PROCESS_H_
#define DISTCACHE_SIM_POK_PROCESS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "common/zipf.h"
#include "matching/hierarchy.h"
#include "sim/event_queue.h"

namespace distcache {

class PokProcess {
 public:
  struct Config {
    size_t num_objects = 256;
    std::vector<size_t> layer_sizes{16, 16};  // L layers of cache nodes
    double service_rate = 1.0;
    double total_rate = 0.0;  // required
    double zipf_theta = 0.99;
    double pmf_cap = 0.0;  // 0 = raw zipf; see PotProcess::Config::pmf_cap
    // How many of the L layers the router may use (1 = single choice, L = full
    // power-of-k). Candidates are taken from the first `choices` layers.
    size_t choices = 2;
    uint64_t seed = 7;
  };

  struct Result {
    std::vector<double> backlog_series;
    double max_queue = 0.0;
    double drift = 0.0;
    bool stationary = false;
    uint64_t arrivals = 0;
    uint64_t departures = 0;
  };

  explicit PokProcess(const Config& config);

  Result Run(double duration);

  const HierarchicalCacheGraph& graph() const { return graph_; }

 private:
  size_t ChooseQueue(uint64_t object);
  void Arrive();
  void Depart(size_t queue_index);
  void StartServiceIfIdle(size_t queue_index);

  Config config_;
  HierarchicalCacheGraph graph_;
  std::unique_ptr<KeyDistribution> dist_;
  EventQueue events_;
  Rng rng_;
  std::vector<uint64_t> queue_len_;
  std::vector<bool> busy_;
  uint64_t arrivals_ = 0;
  uint64_t departures_ = 0;
};

}  // namespace distcache

#endif  // DISTCACHE_SIM_POK_PROCESS_H_
