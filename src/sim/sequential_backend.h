// The single-threaded request-level reference backend.
//
// Deliberately the straightforward implementation: every request individually walks
// the faithful path — inverse-CDF key sampling (O(log pool) binary search through a
// virtual KeyDistribution), per-request CacheAllocation::CopiesOf, a materialized
// candidate vector handed to PotRouter::Choose, and a per-request LoadTracker update
// (the piggybacked-telemetry semantics of §4.2). It is the semantic baseline the
// sharded backend's batched hot path is validated against, and the denominator of
// the engine-throughput comparison in bench_fig9c_scalability.
#ifndef DISTCACHE_SIM_SEQUENTIAL_BACKEND_H_
#define DISTCACHE_SIM_SEQUENTIAL_BACKEND_H_

#include <memory>
#include <string>

#include "common/random.h"
#include "core/load_tracker.h"
#include "core/pot_router.h"
#include "sim/cluster_model.h"
#include "sim/sim_backend.h"

namespace distcache {

class SequentialBackend : public SimBackend {
 public:
  explicit SequentialBackend(const SimBackendConfig& config);

  std::string name() const override { return "sequential"; }
  BackendStats Run(uint64_t num_requests) override;

 private:
  SimBackendConfig config_;
  ClusterModel model_;
  std::unique_ptr<DiscreteDistribution> head_dist_;  // head keys + one tail bucket
  LoadTracker tracker_;
  PotRouter router_;
  Rng rng_;
};

}  // namespace distcache

#endif  // DISTCACHE_SIM_SEQUENTIAL_BACKEND_H_
