// The single-threaded request-level reference backend.
//
// Deliberately the straightforward implementation: every request individually walks
// the faithful path — inverse-CDF key sampling (O(log pool) binary search through a
// virtual KeyDistribution), per-request CacheAllocation::CopiesOf, a materialized
// candidate vector handed to PotRouter::Choose, and a per-request LoadTracker update
// (the piggybacked-telemetry semantics of §4.2). It is the semantic baseline the
// sharded backend's batched hot path is validated against, and the denominator of
// the engine-throughput comparison in bench_fig9c_scalability.
//
// Failure semantics (ClusterEvent timeline, §4.4 / Fig. 11):
//  * kFailSpine — the switch's candidates blackhole. The routing loop degrades: a
//    PoT pair whose spine copy died becomes a single (leaf) choice, a spine-only
//    key falls back to the primary server, a replicated key spreads over the alive
//    spines. The client view pins the dead node via LoadTracker::MarkDead.
//  * Until kRunRecovery, every request that is not absorbed by a spine cache
//    switch still transits the spine layer via ECMP (§3.4); a dead switch
//    blackholes its 1/num_spine share — those requests are counted in
//    BackendStats::dropped and charge no load, reproducing the Fig. 11 dip.
//  * kRunRecovery — the ClusterModel controller remaps failed partitions onto
//    alive spines (consistent hashing); CopiesOf() is re-evaluated per request, so
//    the remap takes effect immediately and the transit blackhole ends (routing
//    has reconverged around the dead switches).
//  * kRecoverSpine — the switch rejoins: partitions return home and MarkAlive
//    restores the client's load view from its shadow estimate.
#ifndef DISTCACHE_SIM_SEQUENTIAL_BACKEND_H_
#define DISTCACHE_SIM_SEQUENTIAL_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/load_tracker.h"
#include "core/pot_router.h"
#include "sim/cluster_model.h"
#include "sim/sim_backend.h"

namespace distcache {

class SequentialBackend : public SimBackend {
 public:
  explicit SequentialBackend(const SimBackendConfig& config);

  std::string name() const override { return "sequential"; }
  BackendStats Run(uint64_t num_requests) override;

 private:
  void ApplyEvent(const ClusterEvent& event);
  // True when the request must be dropped: pre-recovery ECMP transit through one
  // of the dead spine switches. Consumes RNG only while failures are active.
  bool TransitBlackholed();

  SimBackendConfig config_;
  ClusterModel model_;
  std::unique_ptr<DiscreteDistribution> head_dist_;  // head keys + one tail bucket
  LoadTracker tracker_;
  PotRouter router_;
  Rng rng_;

  std::vector<ClusterEvent> events_;  // sorted by at_request
  std::vector<uint8_t> spine_alive_;
  uint32_t dead_spines_ = 0;
  bool recovery_ran_ = true;  // partitions start mapped to their home switches
};

}  // namespace distcache

#endif  // DISTCACHE_SIM_SEQUENTIAL_BACKEND_H_
