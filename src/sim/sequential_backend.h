// The single-threaded request-level reference backend.
//
// Deliberately the straightforward driver around the shared EngineCore: one
// request at a time through the faithful path — inverse-CDF key sampling
// (O(log pool) binary search through the phase's head+tail pmf), the core's
// route-table resolution, PoT choice with dead-node degradation, and a
// per-request LoadTracker refresh (the piggybacked-telemetry semantics of §4.2).
// It is the semantic baseline the sharded backend's batched hot path is validated
// against, and the denominator of the engine-throughput comparison in
// bench_fig9c_scalability.
//
// Timeline semantics (ClusterEvent + WorkloadPhase, applied at exact request
// timestamps — see engine_core.h for the shared state machine):
//  * kFailSpine / kRunRecovery / kRecoverSpine — the §4.4 / Fig. 11 failure loop:
//    candidates blackhole, degrade, and recover via precomputed remap snapshots.
//  * WorkloadPhase boundaries and kShiftHotspot — the workload changes under the
//    cluster: the sampler is rebuilt from the phase's pmf and the route table
//    swaps to the new rank→key rotation; hit ratio collapses when the hot set
//    moves onto uncached keys (§6.4).
//  * kReallocateCache — the controller ranks the core's observed heavy-hitter
//    counts, refills the allocation hottest-first (core/allocation Refill), and
//    the backend rebuilds + swaps the route table: the cache-update reaction that
//    restores the hit ratio after a shift.
#ifndef DISTCACHE_SIM_SEQUENTIAL_BACKEND_H_
#define DISTCACHE_SIM_SEQUENTIAL_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/alias_sampler.h"
#include "sim/cluster_model.h"
#include "sim/engine_core.h"
#include "sim/sim_backend.h"

namespace distcache {

class SequentialBackend : public SimBackend {
 public:
  explicit SequentialBackend(const SimBackendConfig& config);

  std::string name() const override { return "sequential"; }
  BackendStats Run(uint64_t num_requests) override;

 private:
  SimBackendConfig config_;
  ClusterModel model_;
  std::vector<TimelineStep> plan_;
  std::unique_ptr<DiscreteDistribution> head_dist_;  // head ranks + one tail bucket
  // Opt-in O(hot) sampler (config.two_level_sampling): replaces head_dist_ and
  // the O(pool) pmf materialization entirely — different RNG stream, so it is
  // differentially validated, never golden-pinned.
  std::unique_ptr<TwoLevelSampler> two_level_;
  uint64_t base_route_bytes_ = 0;  // pre-timeline snapshot, for stats
  EngineCore core_;
};

}  // namespace distcache

#endif  // DISTCACHE_SIM_SEQUENTIAL_BACKEND_H_
