// The multi-process sharded runtime: the sharded engine's semantics with every
// shard as a separate pinned *process* over a shared-memory arena.
//
// Why processes: the in-process sharded engine (sharded_backend.h) tops out at
// one address space — one heap for every shard's route tables and samplers,
// one crash domain, one NUMA node unless the allocator cooperates. This
// backend is the production deployment shape from ROADMAP: per-shard crash
// isolation and the path past the single-process memory wall, with the same
// lock-free SPSC transport underneath (ported to the arena in
// runtime/shm_ring.h) so `bench_scaling` measures the substrate swap and
// nothing else.
//
// Process model — fork *without* exec, deliberately: the supervisor constructs
// the full immutable run state (cluster model, route tables, alias sampler,
// precomputed timeline plan) exactly like the in-process engine, maps the
// arena, and forks one child per shard. Children inherit the small read-only
// state copy-on-write and the arena by mapping inheritance — no fixed-address
// mmap negotiation, no exec'd binary to locate. (A fork+exec supervisor would
// add a full config wire format for zero isolation benefit: a corrupted shard
// process dies either way, and the supervisor detects it either way.) Each
// child pins itself to core (shard % online-cores) when pin_cores is set,
// prefaults its inbound rings (first-touch NUMA placement), runs the identical
// per-shard event loop (EngineCore + EventQueue + batched hot path), and
// _exit()s after publishing its serialized partial BackendStats into its arena
// stats region.
//
// Arena-resident plan: the big per-run state — the base route table and every
// precomputed timeline snapshot — is serialized *into the arena* pre-fork and
// freed from the supervisor heap before the first fork. Children install the
// tables as non-owning views (EngineCore::SetRouteView /
// SetActionRouteView), so exactly one physical copy exists no matter the
// shard count, it is huge-page eligible when the arena is, and no process
// ever COW-copies a table page (children only read; the supervisor's heap
// copy is gone). With --numa-interleave the arena is mbind-interleaved before
// serialization so the shared tables stripe across nodes instead of landing
// wholly on the supervisor's; the rings keep their per-shard first-touch
// placement either way (children fault them post-fork).
//
// Respawn (config.respawn): a shard that dies abnormally is re-forked — up to
// config.respawn_limit times per shard — instead of degrading the run. The
// respawned incarnation re-joins from the arena-resident plan and re-runs its
// quota from the start: it skips the ring prefault (zero-filling a live ring
// would clobber in-flight slots and the header's published tail), passes
// straight through the already-released start barrier, and re-attaches its
// ring views via ShmSpscRing::SyncFromShared. Known accepted skews, bounded
// per crash: peers that folded the dead incarnation's telemetry see negative
// deltas when the respawn's counters restart (the telemetry view is
// approximate by design), and a crash landing inside the end-of-run delta
// flush can double-count the flushed portion (the crash tests kill mid-run,
// far from the flush).
//
// Supervisor hardening (the PR 10 fault-model tentpole): each shard bumps a
// heartbeat word in its arena slot at batch granularity and on every wait-loop
// backoff pause, and the supervisor runs a wall-clock escalation ladder over
// it — wait → warn (heartbeat_warn_ms; counted in heartbeat_misses) →
// declare-dead (heartbeat_dead_ms; SIGKILL) → respawn-or-degrade. A shard
// death without (or beyond) respawn budget no longer aborts the survivors:
// the supervisor marks the slot kShardDead, every peer-facing wait (full-ring
// retries, rendezvous gathers, the done protocol) skips dead peers, and the
// run completes degraded — failed_shards + degraded_fraction (lost quota /
// total) record the loss. Stats blobs are CRC32-checked (common/hash.h)
// before deserialization, so a corrupted region marks the shard failed
// instead of merging garbage. A clean exit that never published its state
// word is treated as a death, not trusted. No fault class may hang the run.
//
// Fault injection (runtime/fault_plan.h, config.fault_plan): crash / stall /
// drop / delay / corrupt / mapfail events fire on the deterministic per-shard
// request clock from a hook in the batch loop — one unlikely branch when the
// plan is empty, so fault-free runs stay bit-identical to the goldens. Each
// event has a one-shot latch in the arena, so a respawned incarnation replays
// its request stream without re-firing faults that already fired.
//
// Transport: the same two-plane split as in-process, but both planes ride
// arena rings (there is no cross-process mutex channel worth having):
//
//   * data plane — one ShmSpscRing per directed shard pair carries telemetry
//     partials and end-of-run load deltas, serialized into fixed slots sized
//     so a full telemetry snapshot fits one slot;
//   * control plane — a second, smaller ShmSpscRing per directed pair carries
//     chunked heavy-hitter reports and kDone markers.
//
// Control-plane divergences from the in-process engine (equivalent by
// construction, pinned by the x1 bit-identity goldens):
//
//   * no timeline multicast — the fired plan is a pure function of the config,
//     so every child queues it locally instead of receiving it from the
//     controller shard;
//   * the kReallocateCache rendezvous goes through the arena, single-
//     controller with deterministic failover: every shard publishes its
//     heavy-hitter report into an idempotent per-(step, shard) arena slot,
//     then the lowest-indexed *live* shard claims a per-step controller word
//     (CAS; value = claimant + 1), merges the published reports (a shard that
//     died before publishing is excluded; the merged-shard mask rides in the
//     ready word), runs the controller computation and serializes the rebuilt
//     immediate + suffix tables into the step's arena region behind the ready
//     flag; every shard then installs them as views. If the claimant dies
//     before publishing (kShardDead is only set after the process is reaped,
//     so its writes have stopped), waiters CAS the claim over to the next
//     live shard by index, which recomputes and publishes — the
//     controller_failovers counter records it. Every process (up to 63
//     shards, the mask width) applies the same model mutations from the
//     masked reports after the publish, so any shard's model is current
//     enough to take over a *later* rendezvous too. The report slots are
//     write-once per incarnation and the computation is deterministic, so a
//     respawned shard — even a respawned controller — re-publishes identical
//     bytes and the rendezvous stays consistent.
//     Dynamic cache policies keep the legacy all-to-all broadcast where every
//     process runs the controller computation on its own model copy (their
//     policy runtimes read the local allocation, which must stay in sync);
//     MergeHeavyHitterReports is order-independent and the refill/route-build
//     is hash-based and RNG-free, so both schemes compute identical routes.
//
// Termination and crash isolation: a child that finishes its quota flushes
// deltas, publishes kDone to every peer (the ring release orders the earlier
// data publishes before it — the same happens-before edge the in-process
// engine gets from release-on-ring-tail before the channel mutex), drains
// until it has seen every peer's kDone (or the peer's slot says it exited or
// died), serializes its stats behind a CRC and exits 0. The supervisor reaps
// children as they exit; a child that dies abnormally is respawned while
// budget remains, else marked kShardDead — survivors skip it everywhere and
// complete their full quota, and the supervisor reports the loss in
// failed_shards/degraded_fraction instead of hanging on the quota-end
// rendezvous. The arena abort flag remains as the catastrophic backstop
// (supervisor-side failures before/while forking).
#ifndef DISTCACHE_SIM_MULTIPROC_BACKEND_H_
#define DISTCACHE_SIM_MULTIPROC_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/alias_sampler.h"
#include "net/shard_map.h"
#include "runtime/shm_arena.h"
#include "runtime/shm_ring.h"
#include "sim/cluster_model.h"
#include "sim/engine_core.h"
#include "sim/event_queue.h"
#include "sim/route_table.h"
#include "sim/sim_backend.h"

namespace distcache {

class MultiprocBackend : public SimBackend {
 public:
  explicit MultiprocBackend(const SimBackendConfig& config);
  ~MultiprocBackend() override;  // out-of-line: Proc is incomplete here

  std::string name() const override { return "multiproc"; }
  BackendStats Run(uint64_t num_requests) override;

  // False when the platform cannot run this backend (no fork / no shared
  // anonymous mappings — i.e. non-Linux builds). A Run() on an unsupported
  // platform returns empty stats with failed_shards == shards.
  static bool Supported();

  // Test hook (crash-isolation coverage): shard `shard` SIGKILLs itself after
  // processing `after_requests` of its quota, modelling a shard-process crash
  // mid-run. The supervisor must detect it, merge the survivors' partial
  // stats and report failed_shards — never hang.
  void TestCrashShardAt(uint32_t shard, uint64_t after_requests) {
    crash_shard_ = shard;
    crash_after_ = after_requests;
  }

 private:
  struct Proc;      // child-side per-shard state (process-local)
  struct ProcSink;  // branch-free hot-path sink (mirror of ShardSink)

  // ---- child side ----------------------------------------------------------
  // The whole shard lifecycle; never returns (ends in _exit). `respawned`
  // marks a second incarnation re-joining live rings (header comment): it
  // skips the prefault and the start barrier and syncs its ring views.
  [[noreturn]] void ChildMain(uint32_t id, uint64_t quota, uint64_t num_requests,
                              bool respawned);
  void RunShard(Proc& p, uint64_t quota, uint64_t num_requests);
  void ProcessBatch(Proc& p, uint32_t count);
  void PollInbox(Proc& p);
  void DrainDataRings(Proc& p);
  void DrainControlRings(Proc& p);
  void FlushLoads(Proc& p);
  void BroadcastTelemetry(Proc& p);
  void SendLoadDeltas(Proc& p, uint32_t peer,
                      const std::vector<std::pair<uint32_t, double>>& cache,
                      const std::vector<std::pair<uint32_t, double>>& server);
  void BroadcastHotReport(
      Proc& p, const std::vector<std::pair<uint64_t, uint32_t>>& report);
  void SendDone(Proc& p, uint32_t peer);
  // Fault-injection hook (runtime/fault_plan.h): fires every planned fault of
  // this shard whose local timestamp has been reached; one-shot per event via
  // an arena latch. Called behind an unlikely-branch guard in the batch loop.
  void MaybeInjectFaults(Proc& p);
  void RecordFault(Proc& p, FaultKind kind, uint64_t at_request);
  // Bumps this shard's arena heartbeat word (relaxed); called per batch and
  // from every wait-loop backoff so legitimate waits never look like stalls.
  void PulseHeartbeat(Proc& p);
  // True once the supervisor declared `shard` permanently dead (kShardDead is
  // only stored after the process was reaped — its writes have stopped).
  bool ShardDead(uint32_t shard) const;
  // Lowest-indexed shard not declared dead — the deterministic controller
  // (and controller-successor) choice for the realloc rendezvous.
  uint32_t FirstLiveShard() const;
  // kReallocateCache, legacy all-to-all flavor (dynamic policies only): every
  // process collects the reports and runs the controller computation. Null on
  // abort.
  std::shared_ptr<const RouteTable> Reallocate(Proc& p);
  // kReallocateCache, arena flavor (header comment): publish report → the
  // first live shard claims controllership, computes and publishes the tables
  // (failover CAS if the claimant dies) → everyone applies the masked-report
  // model mutations and installs views. Always returns null (the views are
  // installed directly on p.core).
  std::shared_ptr<const RouteTable> ReallocateViaArena(Proc& p);
  // Controller half of the arena rendezvous: gather every live shard's
  // published report, run the model mutations, build + serialize the tables
  // and release the ready word carrying the merged-shard mask. False when
  // aborted mid-gather.
  bool ControllerPublishRealloc(Proc& p, uint32_t step);
  // Reads shard `s`'s published report for `step` (its flag must be set).
  std::vector<std::pair<uint64_t, uint32_t>> ReadArenaReport(uint32_t step,
                                                             uint32_t s);
  // The deterministic controller model mutations (remap sync + heavy-hitter
  // merge + cache refill) every process applies, so later-step takeovers run
  // against a current model.
  void ApplyReallocModel(Proc& p,
                         std::vector<std::vector<std::pair<uint64_t, uint32_t>>>
                             reports);
  void ApplyDataSlot(Proc& p, const void* slot);
  // Full-ring retry with own-ring drains + backoff; null once aborted or when
  // `peer` was declared dead (callers distinguish via p.abort_seen).
  void* AcquireSlot(Proc& p, ShmSpscRing& ring, uint32_t peer);
  bool Aborted() const;

  // ---- supervisor side -----------------------------------------------------
  // Computes the arena layout for `shards` and this run's series bound —
  // rings, stats regions, the serialized plan tables and (static policies
  // with realloc steps) the realloc rendezvous slots — and maps it; false
  // when the mapping fails.
  bool LayoutAndMapArena(uint64_t num_requests);
  // Serializes the base route table and every fired-plan snapshot into the
  // arena (pre-fork, post-interleave), then frees the supervisor-heap copies —
  // from here on the arena is the only copy and Run() is single-shot (the
  // repo-wide new-backend-per-Run discipline, see EngineCore::ClearActions).
  void SerializePlanTables();
  BackendStats FailAll(uint32_t shards) const;

  SimBackendConfig config_;
  ClusterModel model_;
  ShardMap shard_map_;
  AliasSampler sampler_;            // head ranks + one tail bucket (phase 0)
  // Opt-in O(hot) sampler (config.two_level_sampling): children inherit it
  // pre-fork and draw from it instead of sampler_ — a different RNG stream,
  // differentially validated, never golden-pinned.
  std::unique_ptr<TwoLevelSampler> two_level_;
  std::shared_ptr<const RouteTable> base_routes_;
  std::vector<TimelineStep> plan_;
  std::vector<TimelineStep> fired_plan_;  // restricted to this Run, pre-fork

  // Arena geometry, computed pre-fork and inherited by the children.
  ShmArena arena_;
  size_t control_offset_ = 0;
  size_t data_slot_bytes_ = 0;
  size_t ctrl_slot_bytes_ = 0;
  std::vector<size_t> data_ring_offset_;   // [to * shards + from]
  std::vector<size_t> ctrl_ring_offset_;   // [to * shards + from]
  std::vector<size_t> stats_offset_;       // [shard]
  size_t stats_bound_ = 0;

  // Arena-resident plan: serialized-table offsets — [0] the base table,
  // [1 + i] fired_plan_[i]'s snapshot (null steps carry a sentinel header).
  std::vector<size_t> plan_table_offset_;
  // Single-controller realloc rendezvous (arena_realloc_ set for static
  // policies): per fired kReallocateCache step, one report slot per shard and
  // one ready-flag + published-tables region sized for the worst case.
  bool arena_realloc_ = false;
  size_t report_entry_cap_ = 0;        // entries per report slot
  size_t table_cap_bytes_ = 0;         // capacity of one published table
  std::vector<uint32_t> realloc_step_index_;    // fired_plan_ index per step
  std::vector<size_t> report_offset_;           // [step * shards + shard]
  std::vector<size_t> realloc_ready_offset_;    // [step]
  std::vector<std::vector<size_t>> realloc_table_offset_;  // [step][table]
  // One-shot fault latches: one u32 per fault_plan event (zero = unfired), so
  // respawned incarnations replay their streams without re-firing. 0 when the
  // plan is empty (no reservation, no hook work).
  size_t fault_latch_offset_ = 0;

  uint32_t crash_shard_ = UINT32_MAX;  // test hook; no shard by default
  uint64_t crash_after_ = 0;
};

}  // namespace distcache

#endif  // DISTCACHE_SIM_MULTIPROC_BACKEND_H_
