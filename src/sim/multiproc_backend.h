// The multi-process sharded runtime: the sharded engine's semantics with every
// shard as a separate pinned *process* over a shared-memory arena.
//
// Why processes: the in-process sharded engine (sharded_backend.h) tops out at
// one address space — one heap for every shard's route tables and samplers,
// one crash domain, one NUMA node unless the allocator cooperates. This
// backend is the production deployment shape from ROADMAP: per-shard crash
// isolation and the path past the single-process memory wall, with the same
// lock-free SPSC transport underneath (ported to the arena in
// runtime/shm_ring.h) so `bench_scaling` measures the substrate swap and
// nothing else.
//
// Process model — fork *without* exec, deliberately: the supervisor constructs
// the full immutable run state (cluster model, route tables, alias sampler,
// precomputed timeline plan) exactly like the in-process engine, maps the
// arena, and forks one child per shard. Children inherit the small read-only
// state copy-on-write and the arena by mapping inheritance — no fixed-address
// mmap negotiation, no exec'd binary to locate. (A fork+exec supervisor would
// add a full config wire format for zero isolation benefit: a corrupted shard
// process dies either way, and the supervisor detects it either way.) Each
// child pins itself to core (shard % online-cores) when pin_cores is set,
// prefaults its inbound rings (first-touch NUMA placement), runs the identical
// per-shard event loop (EngineCore + EventQueue + batched hot path), and
// _exit()s after publishing its serialized partial BackendStats into its arena
// stats region.
//
// Arena-resident plan: the big per-run state — the base route table and every
// precomputed timeline snapshot — is serialized *into the arena* pre-fork and
// freed from the supervisor heap before the first fork. Children install the
// tables as non-owning views (EngineCore::SetRouteView /
// SetActionRouteView), so exactly one physical copy exists no matter the
// shard count, it is huge-page eligible when the arena is, and no process
// ever COW-copies a table page (children only read; the supervisor's heap
// copy is gone). With --numa-interleave the arena is mbind-interleaved before
// serialization so the shared tables stripe across nodes instead of landing
// wholly on the supervisor's; the rings keep their per-shard first-touch
// placement either way (children fault them post-fork).
//
// Respawn (config.respawn): a shard that dies abnormally is re-forked once
// instead of aborting the run. The respawned incarnation re-joins from the
// arena-resident plan and re-runs its quota from the start: it skips the ring
// prefault (zero-filling a live ring would clobber in-flight slots and the
// header's published tail) and the start barrier, and re-attaches its ring
// views via ShmSpscRing::SyncFromShared. Known accepted skews, bounded by one
// crash: peers that folded the dead incarnation's telemetry see negative
// deltas when the respawn's counters restart (the telemetry view is
// approximate by design), and a crash landing inside the end-of-run delta
// flush can double-count the flushed portion (the crash test kills mid-run,
// far from the flush).
//
// Transport: the same two-plane split as in-process, but both planes ride
// arena rings (there is no cross-process mutex channel worth having):
//
//   * data plane — one ShmSpscRing per directed shard pair carries telemetry
//     partials and end-of-run load deltas, serialized into fixed slots sized
//     so a full telemetry snapshot fits one slot;
//   * control plane — a second, smaller ShmSpscRing per directed pair carries
//     chunked heavy-hitter reports and kDone markers.
//
// Control-plane divergences from the in-process engine (equivalent by
// construction, pinned by the x1 bit-identity goldens):
//
//   * no timeline multicast — the fired plan is a pure function of the config,
//     so every child queues it locally instead of receiving it from the
//     controller shard;
//   * the kReallocateCache rendezvous goes through the arena, single-
//     controller: every shard publishes its heavy-hitter report into an
//     idempotent per-(step, shard) arena slot, shard 0 alone merges the
//     reports, runs the controller computation and serializes the rebuilt
//     immediate + suffix tables into the step's arena region behind a ready
//     flag; every shard (including shard 0) then installs them as views. The
//     slots are write-once per incarnation and the computation is
//     deterministic, so a respawned shard — even a respawned controller —
//     re-publishes identical bytes and the rendezvous stays consistent.
//     Dynamic cache policies keep the legacy all-to-all broadcast where every
//     process runs the controller computation on its own model copy (their
//     policy runtimes read the local allocation, which must stay in sync);
//     MergeHeavyHitterReports is order-independent and the refill/route-build
//     is hash-based and RNG-free, so both schemes compute identical routes.
//
// Termination and crash isolation: a child that finishes its quota flushes
// deltas, publishes kDone to every peer (the ring release orders the earlier
// data publishes before it — the same happens-before edge the in-process
// engine gets from release-on-ring-tail before the channel mutex), drains
// until it has seen every peer's kDone, serializes its stats and exits 0. The
// supervisor reaps children as they exit; a child that dies abnormally (crash,
// SIGKILL) trips the arena abort flag, which every wait loop, full-ring retry
// and backoff checks — surviving children wind down, publish *partial* stats
// and exit; the supervisor merges what it can and reports the dead shards in
// BackendStats::failed_shards instead of hanging on the quota-end rendezvous.
#ifndef DISTCACHE_SIM_MULTIPROC_BACKEND_H_
#define DISTCACHE_SIM_MULTIPROC_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/alias_sampler.h"
#include "net/shard_map.h"
#include "runtime/shm_arena.h"
#include "runtime/shm_ring.h"
#include "sim/cluster_model.h"
#include "sim/engine_core.h"
#include "sim/event_queue.h"
#include "sim/route_table.h"
#include "sim/sim_backend.h"

namespace distcache {

class MultiprocBackend : public SimBackend {
 public:
  explicit MultiprocBackend(const SimBackendConfig& config);
  ~MultiprocBackend() override;  // out-of-line: Proc is incomplete here

  std::string name() const override { return "multiproc"; }
  BackendStats Run(uint64_t num_requests) override;

  // False when the platform cannot run this backend (no fork / no shared
  // anonymous mappings — i.e. non-Linux builds). A Run() on an unsupported
  // platform returns empty stats with failed_shards == shards.
  static bool Supported();

  // Test hook (crash-isolation coverage): shard `shard` SIGKILLs itself after
  // processing `after_requests` of its quota, modelling a shard-process crash
  // mid-run. The supervisor must detect it, merge the survivors' partial
  // stats and report failed_shards — never hang.
  void TestCrashShardAt(uint32_t shard, uint64_t after_requests) {
    crash_shard_ = shard;
    crash_after_ = after_requests;
  }

 private:
  struct Proc;      // child-side per-shard state (process-local)
  struct ProcSink;  // branch-free hot-path sink (mirror of ShardSink)

  // ---- child side ----------------------------------------------------------
  // The whole shard lifecycle; never returns (ends in _exit). `respawned`
  // marks a second incarnation re-joining live rings (header comment): it
  // skips the prefault and the start barrier and syncs its ring views.
  [[noreturn]] void ChildMain(uint32_t id, uint64_t quota, uint64_t num_requests,
                              bool respawned);
  void RunShard(Proc& p, uint64_t quota, uint64_t num_requests);
  void ProcessBatch(Proc& p, uint32_t count);
  void PollInbox(Proc& p);
  void DrainDataRings(Proc& p);
  void DrainControlRings(Proc& p);
  void FlushLoads(Proc& p);
  void BroadcastTelemetry(Proc& p);
  void SendLoadDeltas(Proc& p, uint32_t peer,
                      const std::vector<std::pair<uint32_t, double>>& cache,
                      const std::vector<std::pair<uint32_t, double>>& server);
  void BroadcastHotReport(
      Proc& p, const std::vector<std::pair<uint64_t, uint32_t>>& report);
  void SendDone(Proc& p, uint32_t peer);
  // kReallocateCache, legacy all-to-all flavor (dynamic policies only): every
  // process collects the reports and runs the controller computation. Null on
  // abort.
  std::shared_ptr<const RouteTable> Reallocate(Proc& p);
  // kReallocateCache, arena flavor (header comment): publish report → shard 0
  // computes and publishes the tables → install views. Always returns null
  // (the views are installed directly on p.core).
  std::shared_ptr<const RouteTable> ReallocateViaArena(Proc& p);
  void ApplyDataSlot(Proc& p, const void* slot);
  // Full-ring retry with own-ring drains + backoff; null once aborted.
  void* AcquireSlot(Proc& p, ShmSpscRing& ring);
  bool Aborted() const;

  // ---- supervisor side -----------------------------------------------------
  // Computes the arena layout for `shards` and this run's series bound —
  // rings, stats regions, the serialized plan tables and (static policies
  // with realloc steps) the realloc rendezvous slots — and maps it; false
  // when the mapping fails.
  bool LayoutAndMapArena(uint64_t num_requests);
  // Serializes the base route table and every fired-plan snapshot into the
  // arena (pre-fork, post-interleave), then frees the supervisor-heap copies —
  // from here on the arena is the only copy and Run() is single-shot (the
  // repo-wide new-backend-per-Run discipline, see EngineCore::ClearActions).
  void SerializePlanTables();
  BackendStats FailAll(uint32_t shards) const;

  SimBackendConfig config_;
  ClusterModel model_;
  ShardMap shard_map_;
  AliasSampler sampler_;            // head ranks + one tail bucket (phase 0)
  // Opt-in O(hot) sampler (config.two_level_sampling): children inherit it
  // pre-fork and draw from it instead of sampler_ — a different RNG stream,
  // differentially validated, never golden-pinned.
  std::unique_ptr<TwoLevelSampler> two_level_;
  std::shared_ptr<const RouteTable> base_routes_;
  std::vector<TimelineStep> plan_;
  std::vector<TimelineStep> fired_plan_;  // restricted to this Run, pre-fork

  // Arena geometry, computed pre-fork and inherited by the children.
  ShmArena arena_;
  size_t control_offset_ = 0;
  size_t data_slot_bytes_ = 0;
  size_t ctrl_slot_bytes_ = 0;
  std::vector<size_t> data_ring_offset_;   // [to * shards + from]
  std::vector<size_t> ctrl_ring_offset_;   // [to * shards + from]
  std::vector<size_t> stats_offset_;       // [shard]
  size_t stats_bound_ = 0;

  // Arena-resident plan: serialized-table offsets — [0] the base table,
  // [1 + i] fired_plan_[i]'s snapshot (null steps carry a sentinel header).
  std::vector<size_t> plan_table_offset_;
  // Single-controller realloc rendezvous (arena_realloc_ set for static
  // policies): per fired kReallocateCache step, one report slot per shard and
  // one ready-flag + published-tables region sized for the worst case.
  bool arena_realloc_ = false;
  size_t report_entry_cap_ = 0;        // entries per report slot
  size_t table_cap_bytes_ = 0;         // capacity of one published table
  std::vector<uint32_t> realloc_step_index_;    // fired_plan_ index per step
  std::vector<size_t> report_offset_;           // [step * shards + shard]
  std::vector<size_t> realloc_ready_offset_;    // [step]
  std::vector<std::vector<size_t>> realloc_table_offset_;  // [step][table]

  uint32_t crash_shard_ = UINT32_MAX;  // test hook; no shard by default
  uint64_t crash_after_ = 0;
};

}  // namespace distcache

#endif  // DISTCACHE_SIM_MULTIPROC_BACKEND_H_
