#include "sim/route_table.h"

namespace distcache {

namespace {

// Fills entries [0, end) — the shared body of the compact and dense builds.
// `reserve_overflow` is the exact spill count so neither build ever pays a
// doubling-growth spike during plan construction.
RouteTable BuildPrefix(const ClusterModel& model, uint64_t hot_shift,
                       uint64_t end, size_t reserve_overflow) {
  RouteTable routes;
  routes.entries.reserve(end);
  routes.entries.resize(end);
  routes.overflow.reserve(reserve_overflow);
  for (uint64_t rank = 0; rank < end; ++rank) {
    const uint64_t key = KeyOfRank(rank, hot_shift, model.cfg.num_keys);
    RouteEntry& e = routes.entries[rank];
    e.server = model.placement.ServerOf(key);
    const CacheCopies copies = model.allocation->CopiesOf(key);
    if (copies.replicated_all_spines) {
      e.kind = RouteEntry::kReplicated;
      // The leaf copy (if any) rides in c0; the layer-0 replicas are implicit.
      if (const auto leaf = copies.leaf()) {
        e.num = 1;
        e.c0 = PackCandidate({copies.leaf_layer, *leaf});
      }
    } else if (copies.num > 0) {
      e.kind = RouteEntry::kCached;
      e.num = copies.num;
      if (copies.num <= 2) {
        e.c0 = PackCandidate(copies.nodes[0]);
        if (copies.num == 2) {
          e.c1 = PackCandidate(copies.nodes[1]);
        }
      } else {
        e.c0 = PackCandidate(copies.nodes[0]);
        e.c1 = static_cast<uint32_t>(routes.overflow.size());
        for (uint8_t i = 0; i < copies.num; ++i) {
          routes.overflow.push_back(PackCandidate(copies.nodes[i]));
        }
      }
    }
  }
  return routes;
}

}  // namespace

RouteTable BuildRouteTable(const ClusterModel& model, uint64_t hot_shift) {
  if (model.dense_routes) {
    return BuildDenseRouteTable(model, hot_shift);
  }
  // The hot prefix ends one past the deepest *table* rank with a cached copy.
  // That is not the allocation's CachedRankEnd() in general: the table is
  // indexed in rotated rank space (entry r describes key (r + hot_shift) %
  // num_keys), and after a refill the allocation ranks keys through the
  // observed key→rank index — so find the boundary by probing CopiesOf in
  // table-rank order from the top. Every rank at or beyond `end` then produces
  // exactly the kUncached entry the engines' inline fallback recomputes, which
  // makes the truncated table bit-identical to the dense one at ~C entries
  // instead of the full 8×-budget candidate pool. The downward probe touches
  // only uncached ranks (array reads, or hash-index misses post-refill), so
  // the build stays O(pool) time like the dense one while dropping its memory.
  uint64_t end = model.pool;
  while (end > 0) {
    const uint64_t key = KeyOfRank(end - 1, hot_shift, model.cfg.num_keys);
    if (model.allocation->CopiesOf(key).cached()) {
      break;
    }
    --end;
  }
  return BuildPrefix(model, hot_shift, end,
                     model.allocation->OverflowCandidates());
}

RouteTable BuildDenseRouteTable(const ClusterModel& model, uint64_t hot_shift) {
  return BuildPrefix(model, hot_shift, model.pool,
                     model.allocation->OverflowCandidates());
}

}  // namespace distcache
