#include "sim/route_table.h"

namespace distcache {

RouteTable BuildRouteTable(const ClusterModel& model, uint64_t hot_shift) {
  RouteTable routes;
  routes.entries.resize(model.pool);
  for (uint64_t rank = 0; rank < model.pool; ++rank) {
    const uint64_t key = KeyOfRank(rank, hot_shift, model.cfg.num_keys);
    RouteEntry& e = routes.entries[rank];
    e.server = model.placement.ServerOf(key);
    const CacheCopies copies = model.allocation->CopiesOf(key);
    if (copies.replicated_all_spines) {
      e.kind = RouteEntry::kReplicated;
      // The leaf copy (if any) rides in c0; the layer-0 replicas are implicit.
      if (const auto leaf = copies.leaf()) {
        e.num = 1;
        e.c0 = PackCandidate({copies.leaf_layer, *leaf});
      }
    } else if (copies.num > 0) {
      e.kind = RouteEntry::kCached;
      e.num = copies.num;
      if (copies.num <= 2) {
        e.c0 = PackCandidate(copies.nodes[0]);
        if (copies.num == 2) {
          e.c1 = PackCandidate(copies.nodes[1]);
        }
      } else {
        e.c0 = PackCandidate(copies.nodes[0]);
        e.c1 = static_cast<uint32_t>(routes.overflow.size());
        for (uint8_t i = 0; i < copies.num; ++i) {
          routes.overflow.push_back(PackCandidate(copies.nodes[i]));
        }
      }
    }
  }
  return routes;
}

}  // namespace distcache
