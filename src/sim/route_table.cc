#include "sim/route_table.h"

namespace distcache {

RouteTable BuildRouteTable(const ClusterModel& model, uint64_t hot_shift) {
  RouteTable routes(model.pool);
  for (uint64_t rank = 0; rank < model.pool; ++rank) {
    const uint64_t key = KeyOfRank(rank, hot_shift, model.cfg.num_keys);
    RouteEntry& e = routes[rank];
    e.server = model.placement.ServerOf(key);
    const CacheCopies copies = model.allocation->CopiesOf(key);
    if (copies.replicated_all_spines) {
      e.kind = RouteEntry::kReplicated;
      e.leaf = copies.leaf.value_or(0);
    } else if (copies.spine && copies.leaf) {
      e.kind = RouteEntry::kPair;
      e.spine = *copies.spine;
      e.leaf = *copies.leaf;
    } else if (copies.spine) {
      e.kind = RouteEntry::kSpineOnly;
      e.spine = *copies.spine;
    } else if (copies.leaf) {
      e.kind = RouteEntry::kLeafOnly;
      e.leaf = *copies.leaf;
    }
  }
  return routes;
}

}  // namespace distcache
