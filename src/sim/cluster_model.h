// Immutable cluster state shared by the request-level simulation backends.
//
// Derived hash seeds are identical to ClusterSim's, so a given (ClusterConfig, seed)
// produces the same storage placement, cache allocation and head-key popularity in
// every backend — cross-backend stat comparisons (sequential vs sharded vs fluid)
// compare engines, never workloads.
#ifndef DISTCACHE_SIM_CLUSTER_MODEL_H_
#define DISTCACHE_SIM_CLUSTER_MODEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/cluster_sim.h"
#include "common/workload.h"
#include "common/zipf.h"
#include "core/allocation.h"
#include "core/controller.h"
#include "core/load_tracker.h"
#include "kv/placement.h"

namespace distcache {

// Client-view tracker dimensions for a cluster; both request-level backends use
// this so their telemetry policy (no aging — the prototype's behaviour) cannot
// diverge, which their parity tests assume. One slot per node of every cache
// layer, top first.
inline LoadTracker::Config MakeTrackerConfig(const ClusterConfig& cfg) {
  LoadTracker::Config tc;
  tc.layer_sizes.clear();
  for (const LayerSpec& layer : ResolvedCacheLayers(cfg)) {
    tc.layer_sizes.push_back(layer.nodes);
  }
  tc.aging_factor = 1.0;
  return tc;
}

struct ClusterModel {
  // `build_popularity` materializes the O(pool) head pmf (`popularity` /
  // `head_with_tail`) the dense samplers draw from; the two-level sampling
  // mode passes false and derives its per-bucket masses in closed form
  // instead (common/alias_sampler.h), keeping construction O(cached keys).
  explicit ClusterModel(const ClusterConfig& config, bool build_popularity = true);

  // Syncs the controller's alive set to `spine_alive` (same transition logic as
  // ClusterSim::ApplyRemap): failed spines hand their partitions to alive ones via
  // consistent hashing, recovered spines take theirs home. Mutates `allocation`,
  // so CopiesOf() reflects the remap afterwards.
  void SyncControllerRemap(const std::vector<uint8_t>& spine_alive);

  // Online cache re-allocation (§6.4): replaces the cached set with the
  // hottest-first key list the controller aggregated from observed heavy-hitter
  // counts, preserving any failure remap in effect. Mutates `allocation`; callers
  // must rebuild route tables afterwards (see sim/route_table.h).
  void ReallocateCache(const std::vector<uint64_t>& hottest_first);

  // head-with-tail pmf for an arbitrary skew — what the request-level samplers draw
  // from after a phase boundary changes theta. The bucket layout (pool head ranks +
  // one aggregated tail bucket) is identical to `head_with_tail`.
  std::vector<double> HeadWithTailFor(double theta) const;

  ClusterConfig cfg;
  std::vector<LayerSpec> layers;  // resolved cache hierarchy, top first
  Placement placement;
  std::unique_ptr<KeyDistribution> dist;
  std::unique_ptr<CacheAllocation> allocation;
  // Off-path cache controller driving failure remaps (§4.4); shares `allocation`.
  std::unique_ptr<CacheController> controller;

  // Keys [0, pool) are tracked individually ("head"); the rest is the uniform tail.
  uint64_t pool = 0;
  // Differential-test / memory-baseline mode: BuildRouteTable materializes the
  // full-pool dense layout instead of the compact hot prefix (bit-identical
  // routing either way; see sim/route_table.h). Off everywhere by default.
  bool dense_routes = false;
  PopularityVector popularity;
  // popularity.head with the aggregate tail mass appended as one extra bucket —
  // the pmf both request-level samplers draw from.
  std::vector<double> head_with_tail;

  uint32_t num_servers() const { return cfg.num_racks * cfg.servers_per_rack; }
  size_t num_layers() const { return layers.size(); }

  // Sizes a per-layer stats structure (one vector per cache layer, top first).
  std::vector<std::vector<double>> ZeroCacheLoads() const {
    std::vector<std::vector<double>> loads(layers.size());
    for (size_t l = 0; l < layers.size(); ++l) {
      loads[l].assign(layers[l].nodes, 0.0);
    }
    return loads;
  }
};

}  // namespace distcache

#endif  // DISTCACHE_SIM_CLUSTER_MODEL_H_
