#include "sim/pot_process.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace distcache {

PotProcess::PotProcess(const Config& config)
    : config_(config),
      graph_(config.num_objects, config.upper_nodes, config.lower_nodes,
             HashCombine(config.seed, 0x907a11ULL),
             config.policy == ChoicePolicy::kSingleHash),
      dist_(config.pmf_cap > 0.0
                ? std::make_unique<DiscreteDistribution>(
                      CappedZipfPmf(config.num_objects, config.zipf_theta,
                                    config.pmf_cap),
                      "capped-zipf")
                : MakeDistribution(config.num_objects, config.zipf_theta)),
      rng_(HashCombine(config.seed, 0x4ea1ULL)) {
  assert(config_.total_rate > 0.0 && "total_rate must be set");
  queue_len_.assign(graph_.num_cache_nodes(), 0);
  busy_.assign(graph_.num_cache_nodes(), false);
}

size_t PotProcess::ChooseQueue(uint64_t object) {
  if (graph_.single_hash()) {
    return graph_.LowerNodeOf(object);
  }
  const size_t a = graph_.UpperNodeOf(object);
  const size_t b = graph_.LowerNodeOf(object);
  switch (config_.policy) {
    case ChoicePolicy::kRandomOfTwo:
      return rng_.NextBounded(2) == 0 ? a : b;
    case ChoicePolicy::kSingleHash:
    case ChoicePolicy::kPowerOfTwo:
      break;
  }
  if (queue_len_[a] != queue_len_[b]) {
    return queue_len_[a] < queue_len_[b] ? a : b;
  }
  return rng_.NextBounded(2) == 0 ? a : b;  // ties broken randomly (appendix A.3)
}

void PotProcess::StartServiceIfIdle(size_t queue_index) {
  if (busy_[queue_index] || queue_len_[queue_index] == 0) {
    return;
  }
  busy_[queue_index] = true;
  events_.Schedule(rng_.NextExponential(config_.service_rate),
                   [this, queue_index] { Depart(queue_index); });
}

void PotProcess::Depart(size_t queue_index) {
  busy_[queue_index] = false;
  assert(queue_len_[queue_index] > 0);
  --queue_len_[queue_index];
  ++departures_;
  StartServiceIfIdle(queue_index);
}

void PotProcess::Arrive() {
  const uint64_t object = dist_->Sample(rng_);
  const size_t q = ChooseQueue(object);
  ++queue_len_[q];
  ++arrivals_;
  StartServiceIfIdle(q);
  events_.Schedule(rng_.NextExponential(config_.total_rate), [this] { Arrive(); });
}

PotProcess::Result PotProcess::Run(double duration) {
  Result result;
  events_.Schedule(rng_.NextExponential(config_.total_rate), [this] { Arrive(); });
  const int samples = std::max(4, static_cast<int>(duration));
  const double step = duration / samples;
  result.backlog_series.reserve(samples);
  for (int i = 0; i < samples; ++i) {
    events_.RunUntil(step * (i + 1));
    const double backlog = static_cast<double>(
        std::accumulate(queue_len_.begin(), queue_len_.end(), uint64_t{0}));
    result.backlog_series.push_back(backlog);
    result.max_queue = std::max(
        result.max_queue,
        static_cast<double>(*std::max_element(queue_len_.begin(), queue_len_.end())));
  }
  result.arrivals = arrivals_;
  result.departures = departures_;

  // Drift: least-squares slope of the backlog over the second half of the samples.
  const size_t half = result.backlog_series.size() / 2;
  const size_t n = result.backlog_series.size() - half;
  if (n >= 2) {
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    for (size_t i = 0; i < n; ++i) {
      const double x = static_cast<double>(i) * step;
      const double y = result.backlog_series[half + i];
      sx += x;
      sy += y;
      sxx += x * x;
      sxy += x * y;
    }
    const double denom = static_cast<double>(n) * sxx - sx * sx;
    result.drift = denom != 0.0 ? (static_cast<double>(n) * sxy - sx * sy) / denom : 0.0;
  }
  // Stationary when the backlog is not persistently growing: drift well below 1% of
  // the arrival rate (an unstable system drifts at Θ(R - capacity)).
  result.stationary = result.drift < 0.01 * config_.total_rate;
  return result;
}

}  // namespace distcache
