// SimBackend — the pluggable execution engine behind the cluster driver.
//
// The repo has three ways to answer "what does a DistCache cluster do under this
// workload?", and they all sit behind this one interface so the same driver
// (tools/distcache_sim.cc), benches, and tests can swap them with a flag:
//
//   * "fluid"      — ClusterSim, the analytic fluid model (rates, not requests).
//                    Exact and fast for saturation searches; no per-request effects.
//   * "sequential" — the single-threaded request-level reference: one request at a
//                    time through the faithful path (inverse-CDF key sampling, hash
//                    routing via CacheAllocation::CopiesOf, PotRouter::Choose over a
//                    materialized candidate list, per-request LoadTracker update).
//                    This is the semantic baseline every other backend must match.
//   * "sharded"    — the scalable runtime: nodes partitioned across N worker shards
//                    (net/shard_map.h), one EventQueue per shard driving batch and
//                    telemetry events, cross-shard traffic as batched load-delta
//                    messages over runtime/channel.h, and a batched hot path that
//                    amortizes Zipf sampling (alias table), hash routing (precomputed
//                    per-key route entries) and LoadTracker updates over batches of
//                    ~64 requests.
//
// Contract for implementations:
//
//  1. Run(n) executes exactly n requests (reads+writes per the configured write
//     ratio) and returns aggregate statistics. The fluid backend is the one licensed
//     exception: it simulates offered *rates* and reports analytic equivalents.
//  2. Same ClusterConfig + seed ⇒ the same workload distribution, placement, and
//     cache allocation as ClusterSim (identical derived hash seeds), so hit ratios
//     and load shapes are comparable across backends and against the fluid model.
//  3. Backends must preserve the PoT routing invariants documented in
//     core/pot_router.h and core/load_tracker.h: fixed candidate sets from the
//     allocation hashes, less-loaded-wins among candidates, bounded-staleness load
//     views. A backend may relax *telemetry freshness* (that is physical: real
//     switches gossip loads once per epoch) but never the candidate structure.
//  4. Aggregate stats (hit ratio, per-layer loads, imbalance) of any request-level
//     backend must match the sequential reference within small statistical
//     tolerance for the same config — this is what tests/sim/sim_backend_test.cc
//     enforces for 1-vs-N shards.
#ifndef DISTCACHE_SIM_SIM_BACKEND_H_
#define DISTCACHE_SIM_SIM_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_sim.h"

namespace distcache {

// Engine configuration: the simulated cluster plus execution-engine knobs.
struct SimBackendConfig {
  ClusterConfig cluster;

  // Number of worker shards (sharded backend only; others ignore it).
  uint32_t shards = 1;
  // Requests processed per batch on the amortized hot path (~64 keeps the batch in
  // L1 while still amortizing sampling, routing and channel flushes).
  uint32_t batch_size = 64;
  // Telemetry epoch length in requests per shard: how often each shard broadcasts
  // its cumulative per-node load partials and folds in its peers' — the view
  // staleness bound of the sharded backend.
  uint64_t epoch_requests = 4096;
};

// Aggregate result of a backend run. Loads are cumulative arrival units (a read = 1
// unit; writes add the coherence costs from ClusterConfig), indexed by node.
struct BackendStats {
  uint64_t requests = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t cache_hits = 0;   // reads answered by a cache switch
  uint64_t spine_hits = 0;
  uint64_t leaf_hits = 0;
  uint64_t server_reads = 0; // reads served by the primary storage server
  uint64_t cross_shard_messages = 0;  // sharded backend only

  std::vector<double> spine_load;
  std::vector<double> leaf_load;
  std::vector<double> server_load;

  double wall_seconds = 0.0;

  // Fraction of reads absorbed by the cache layers (the paper's cache hit ratio).
  double hit_ratio() const {
    return reads == 0 ? 0.0 : static_cast<double>(cache_hits) / static_cast<double>(reads);
  }
  // Engine speed in million simulated requests per wall-clock second.
  double throughput_mrps() const {
    return wall_seconds <= 0.0 ? 0.0
                               : static_cast<double>(requests) / wall_seconds / 1e6;
  }
  // Max/mean cumulative load across all cache switches (spine+leaf): 1.0 is perfect
  // balance; the PoT guarantee keeps this small even under Zipf-0.99.
  double CacheImbalance() const;
  // Max/mean cumulative load across storage servers.
  double ServerImbalance() const;

  // Element-wise accumulate (used to merge per-shard partial stats).
  void Merge(const BackendStats& other);
};

class SimBackend {
 public:
  virtual ~SimBackend() = default;

  // Human-readable engine name ("sequential", "sharded", "fluid").
  virtual std::string name() const = 0;

  // Executes `num_requests` requests and returns aggregate stats (contract above).
  virtual BackendStats Run(uint64_t num_requests) = 0;
};

enum class BackendKind {
  kSequential,
  kSharded,
  kFluid,
};

// Parses "sequential" / "sharded" / "fluid"; defaults to kSequential on anything else.
BackendKind ParseBackendKind(const std::string& name);

// Factory. The returned backend owns its cluster state; construction performs the
// full allocation (same derived seeds as ClusterSim for cross-backend parity).
std::unique_ptr<SimBackend> MakeSimBackend(BackendKind kind, const SimBackendConfig& config);

}  // namespace distcache

#endif  // DISTCACHE_SIM_SIM_BACKEND_H_
