// SimBackend — the pluggable execution engine behind the cluster driver.
//
// The repo has three ways to answer "what does a DistCache cluster do under this
// workload?", and they all sit behind this one interface so the same driver
// (tools/distcache_sim.cc), benches, and tests can swap them with a flag:
//
//   * "fluid"      — ClusterSim, the analytic fluid model (rates, not requests).
//                    Exact and fast for saturation searches; no per-request effects.
//   * "sequential" — the single-threaded request-level reference: one request at a
//                    time through the faithful path (inverse-CDF key sampling, hash
//                    routing via CacheAllocation::CopiesOf, PotRouter::Choose over a
//                    materialized candidate list, per-request LoadTracker update).
//                    This is the semantic baseline every other backend must match.
//   * "sharded"    — the scalable runtime: nodes partitioned across N worker shards
//                    (net/shard_map.h), one EventQueue per shard driving batch and
//                    telemetry events, cross-shard data traffic as batched messages
//                    over per-pair lock-free rings (runtime/spsc_ring.h; control
//                    over runtime/channel.h), and a batched hot path that amortizes
//                    Zipf sampling (alias table), hash routing (precomputed
//                    per-key route entries, prefetched ahead) and LoadTracker
//                    updates over batches of 256 requests.
//
// Contract for implementations:
//
//  1. Run(n) executes exactly n requests (reads+writes per the configured write
//     ratio) and returns aggregate statistics. The fluid backend is the one licensed
//     exception: it simulates offered *rates* and reports analytic equivalents.
//  2. Same ClusterConfig + seed ⇒ the same workload distribution, placement, and
//     cache allocation as ClusterSim (identical derived hash seeds), so hit ratios
//     and load shapes are comparable across backends and against the fluid model.
//  3. Backends must preserve the PoT routing invariants documented in
//     core/pot_router.h and core/load_tracker.h: fixed candidate sets from the
//     allocation hashes, less-loaded-wins among candidates, bounded-staleness load
//     views. A backend may relax *telemetry freshness* (that is physical: real
//     switches gossip loads once per epoch) but never the candidate structure.
//  4. Aggregate stats (hit ratio, per-layer loads, imbalance) of any request-level
//     backend must match the sequential reference within small statistical
//     tolerance for the same config — this is what tests/sim/sim_backend_test.cc
//     enforces for 1-vs-N shards.
#ifndef DISTCACHE_SIM_SIM_BACKEND_H_
#define DISTCACHE_SIM_SIM_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_sim.h"
#include "common/stats.h"
#include "common/workload.h"
#include "runtime/fault_plan.h"

namespace distcache {

// One scheduled cluster reconfiguration, timestamped in requests: the event applies
// just before the `at_request`-th request of a Run() (timestamps are relative to the
// start of each Run). Failure events (§4.4 / Fig. 11) are the engine-agnostic
// equivalent of calling ClusterSim::{FailSpine,RecoverSpine,RunFailureRecovery}
// mid-measurement; the workload events (§6.4 hot-spot shift) rotate the hot set and
// trigger online cache re-allocation from observed heavy-hitter counts.
struct ClusterEvent {
  enum class Kind : uint8_t {
    kFailSpine,        // spine switch dies: its cached partition blackholes
    kRecoverSpine,     // switch restored: partitions return to their home switch
    kRunRecovery,      // controller remaps failed partitions onto alive spines
    kShiftHotspot,     // hot set rotates: rank r now maps to key (r + value) % keys
    kReallocateCache,  // controller re-allocates the cache from observed counts and
                       // pushes the new routes (the §6.4 cache-update reaction)
  };

  Kind kind = Kind::kFailSpine;
  uint64_t at_request = 0;
  uint32_t spine = 0;   // kFailSpine / kRecoverSpine only
  uint64_t value = 0;   // kShiftHotspot: the hot-set rotation amount

  static ClusterEvent FailSpine(uint64_t at_request, uint32_t spine) {
    return {Kind::kFailSpine, at_request, spine, 0};
  }
  static ClusterEvent RecoverSpine(uint64_t at_request, uint32_t spine) {
    return {Kind::kRecoverSpine, at_request, spine, 0};
  }
  static ClusterEvent RunRecovery(uint64_t at_request) {
    return {Kind::kRunRecovery, at_request, 0, 0};
  }
  static ClusterEvent ShiftHotspot(uint64_t at_request, uint64_t shift) {
    return {Kind::kShiftHotspot, at_request, 0, shift};
  }
  static ClusterEvent ReallocateCache(uint64_t at_request) {
    return {Kind::kReallocateCache, at_request, 0, 0};
  }
};

// Orders a timeline by at_request, preserving list order for ties (the order the
// engines apply simultaneous events in).
void SortEventsByRequest(std::vector<ClusterEvent>& events);

// Open-loop virtual-time model (the tentpole of the latency layer). When the
// arrival process is enabled every request acquires an arrival timestamp from a
// Poisson clock, waits in a per-node FIFO at the node that serves it, draws an
// exponential service time at that node's rate, and records
//   latency = hops x hop_cost + (departure - arrival)
// into BackendStats::latency. Time is measured in storage-server service-time
// units (server_service_rate = 1.0 is one server), matching the fluid model's
// capacity arithmetic, so arrival.rate is an absolute offered rate directly
// comparable to ClusterSim::TotalServerCapacity(). Hop counts follow the
// closed-loop model in cluster/latency.h: a layer-l cache hit pays l+1 hops
// (spine hit = 1), a server answer pays num_layers+1 (the full descent).
//
// When disabled (the default) the engines are bit-identical to a build without
// the layer: the open-loop branch is one never-taken compare and no time RNG is
// ever consumed, so the PR 4/5/6 golden pins hold.
struct QueueModelConfig {
  ArrivalConfig arrival;
  // Per-cache-layer service rates, top first. Empty = auto, mirroring the fluid
  // model's capacity discipline: every cache node serves at servers_per_rack x
  // server_capacity (overridden by spine_capacity / leaf_capacity when set). A
  // single entry broadcasts to all layers.
  std::vector<double> service_rates;
  double server_service_rate = 1.0;
  // One-way network hop cost in virtual-time units (cluster/latency.h default).
  double hop_cost = 0.2;

  bool enabled() const { return arrival.enabled(); }
};

// The per-layer cache service rates a QueueModelConfig resolves to against a
// cluster (auto-derivation + broadcast above). Used by the request engines and
// the fluid engine's analytic forms, so their mus cannot diverge.
std::vector<double> ResolveServiceRates(const QueueModelConfig& queue,
                                        const ClusterConfig& cluster);

// Engine configuration: the simulated cluster plus execution-engine knobs.
struct SimBackendConfig {
  ClusterConfig cluster;

  // Number of worker shards (sharded backend only; others ignore it).
  uint32_t shards = 1;
  // Requests processed per batch on the amortized hot path. 256 measured best on
  // the reference hardware: the batch (1KB of sampled buckets plus the touched
  // route-entry lines) still sits in L1 while amortizing sampling, the
  // batch-boundary transport polls, and the event-queue reschedule over 4x more
  // requests than the historical 64 — and giving the route-entry prefetcher a
  // longer run. Batch size changes the RNG draw interleaving (buckets are
  // sampled batch-at-a-time), so runs are bit-reproducible per batch size, not
  // across batch sizes; the sharded golden test pins the legacy 64.
  uint32_t batch_size = 256;
  // Telemetry epoch length in requests per shard: how often each shard broadcasts
  // its cumulative per-node load partials and folds in its peers' — the view
  // staleness bound of the sharded backend.
  uint64_t epoch_requests = 4096;

  // Reconfiguration timeline applied during Run() (need not be sorted; engines
  // sort by at_request, ties applied in list order). Timestamps at or beyond the
  // Run's request count never fire. An empty timeline is bit-identical to a
  // timeline-free run of the same build: timeline machinery consumes no RNG
  // draws. (Absolute streams are stable per build, not across releases — the
  // engine-core unification fixed one per-request draw order for all engines,
  // so write-workload streams differ from pre-unification sequential runs.)
  std::vector<ClusterEvent> events;
  // Workload phase timeline (need not be sorted): each phase switches the request
  // stream's skew/write ratio/hot rotation at its start_request, alongside (and
  // independent of) the cluster events above. When phases and events share a
  // timestamp the phases apply first. Empty = one implicit phase from `cluster`
  // (zipf_theta/write_ratio, no rotation), bit-identical to a phase-free run.
  // Request-level engines rebuild their samplers and route tables at each phase
  // boundary; the fluid engine re-derives its popularity vector per segment.
  std::vector<WorkloadPhase> phases;
  // Open-loop virtual-time model (disabled by default — closed-loop runs stay
  // bit-identical to the historical engines). The sharded engine gives every
  // shard its own full-rate clock and per-node queue replicas (independent time
  // slices of the same arrival process, like the PR 6 policy replicas) and
  // merges the per-shard histograms at quota end.
  QueueModelConfig queue;
  // Pin each shard worker to a CPU core (shard i -> core i % online cores):
  // pthread affinity in the in-process sharded engine, process affinity (plus
  // first-touch NUMA placement of the arena rings) in the multiproc engine.
  // Off by default — pinning helps dedicated hosts and hurts shared ones.
  bool pin_cores = false;
  // Back the multiproc engine's shared arena with 2 MiB huge pages when the
  // reserved pool has them (runtime/shm_arena.h; silent fallback otherwise).
  bool huge_pages = false;
  // Interleave the multiproc arena's pages across NUMA nodes (mbind
  // MPOL_INTERLEAVE) instead of the default first-touch placement — the right
  // policy when many shards on different nodes read the one shared plan.
  // Silent no-op off Linux or when the mbind call is unavailable.
  bool numa_interleave = false;
  // Multiproc: re-fork a shard process that dies abnormally instead of
  // degrading the run. The respawned shard re-joins from the arena-resident
  // plan and re-runs its quota from the start of its (deterministic) stream;
  // exact counters stay exact-once (only the final incarnation serializes its
  // stats), but telemetry partials the dead incarnation broadcast are not
  // recalled, so peers' *approximate* load views may double-count them. A
  // shard that exhausts respawn_limit is declared dead and the run degrades
  // (survivors complete; failed_shards/degraded_fraction record the loss).
  bool respawn = false;
  // Respawns allowed per shard under respawn mode (total across the run).
  uint32_t respawn_limit = 3;
  // Multiproc: injected-fault schedule (runtime/fault_plan.h). Empty (the
  // default) compiles to one never-taken branch per batch — bit-identical to
  // a fault-free run. Other engines ignore it.
  FaultPlan fault_plan;
  // Multiproc supervisor heartbeat deadlines, in wall milliseconds. A shard
  // whose arena heartbeat word stops advancing for heartbeat_warn_ms is
  // counted as a heartbeat miss (warn); one silent for heartbeat_dead_ms is
  // declared dead (SIGKILL + respawn-or-degrade). 0 disables that rung of the
  // escalation. Deadlines are wall-clock and therefore never part of the
  // deterministic stats digest.
  uint64_t heartbeat_warn_ms = 2000;
  uint64_t heartbeat_dead_ms = 30000;
  // Opt-in two-level workload sampling: an alias table over the cached hot
  // prefix plus a closed-form inverse-CDF for the capped-Zipf tail
  // (common/alias_sampler.h), making sampler memory O(cached keys) instead of
  // O(candidate pool). The RNG draw sequence differs from the dense samplers,
  // so this mode is differentially validated (hit ratio / imbalance
  // tolerances) rather than golden-pinned; default off keeps every engine
  // bit-identical to the dense path.
  bool two_level_sampling = false;
  // Differential-test / memory-baseline mode: build full-pool dense route
  // tables (pre-compaction layout). Routing is bit-identical either way; this
  // exists so tests and bench_memwall can measure compact vs dense.
  bool dense_routes = false;
  // When > 0, BackendStats::series records one IntervalPoint per this many
  // requests — the Fig. 11 time-series instrumentation. The sharded backend
  // samples each shard every sample_interval/shards local requests and merges
  // per-index, so interval boundaries are accurate to within one batch; keep
  // sample_interval well above batch_size × shards — smaller intervals cannot be
  // resolved at batch granularity and are padded with zero-width points (which
  // keep the indices aligned but concentrate counts in the batch's first
  // interval).
  uint64_t sample_interval = 0;
};

// Aggregate result of a backend run. Loads are cumulative arrival units (a read = 1
// unit; writes add the coherence costs from ClusterConfig), indexed by node.
struct BackendStats {
  uint64_t requests = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t cache_hits = 0;   // reads answered by a cache switch
  uint64_t spine_hits = 0;   // hits absorbed by the top (spine) layer
  uint64_t leaf_hits = 0;    // hits absorbed by any lower layer (mid or leaf)
  uint64_t server_reads = 0; // reads served by the primary storage server
  // Dynamic-policy write path (core/cache_policy.h; zero under the default
  // static policy): writes absorbed by a cache node under write-back, and dirty
  // lines flushed to their primary server (on eviction, demotion off the bottom
  // layer, or a write falling through to the server).
  uint64_t cache_write_hits = 0;
  uint64_t writebacks = 0;
  // Requests blackholed by a dead spine switch before the controller reacted
  // (ECMP transit through a failed switch, §4.4); they charge no load anywhere.
  uint64_t dropped = 0;
  uint64_t cross_shard_messages = 0;  // sharded backend only (ring + control)
  // Sharded-transport instrumentation (zero elsewhere): messages that travelled
  // over the lock-free data-plane rings vs the mutex control channel, and the
  // batch-boundary control-channel polls split by whether the lock-free
  // emptiness fast path resolved them (uncontended) or the mutex was taken
  // (contended). The scaling bench reports these — a healthy run is ~all-ring
  // traffic and ~all-uncontended polls.
  uint64_t ring_messages = 0;
  uint64_t uncontended_receives = 0;
  uint64_t contended_receives = 0;
  // Multiproc engine only: shard processes that died (crashed / were killed)
  // before reporting their stats. Nonzero means the run's counters are a
  // partial picture and the driver should report failure — the crash-isolation
  // contract: a dead shard yields an explicit error, never a hang.
  uint64_t failed_shards = 0;
  // Multiproc engine only: re-forks performed under respawn mode (supervisor-
  // set; counts every respawn, so one shard killed twice contributes 2). A
  // shard that exhausts SimBackendConfig::respawn_limit still counts failed.
  uint64_t respawned_shards = 0;
  // Multiproc engine only: injected faults the shard processes survived and
  // recorded (stall/drop/delay/corrupt; crash-class injections kill the
  // recorder, so the supervisor's fault_events entry is their record).
  uint64_t injected_faults = 0;
  // Multiproc engine only: heartbeat warn episodes the supervisor observed
  // (a shard silent past heartbeat_warn_ms; wall-clock, not deterministic).
  uint64_t heartbeat_misses = 0;
  // Multiproc engine only: realloc-rendezvous controller takeovers (the
  // configured controller was dead, the next live shard by index published
  // the tables instead). Child-recorded, deterministic for a given plan.
  uint64_t controller_failovers = 0;
  // Multiproc engine only: fraction of the run's request quota lost to shards
  // that died without (or beyond) respawn — lost_quota / num_requests. The
  // proportional-degradation contract: losing 1 of N shards without respawn
  // costs 1/N of the quota and nothing else.
  double degraded_fraction = 0.0;

  // ---- memory accounting -----------------------------------------------------
  // Peak resident set (getrusage ru_maxrss) of the process that produced these
  // stats. Merge keeps the max: multi-process children each count their view
  // of shared pages, so a sum would overcount the arena/COW pages — the max is
  // the honest single-number summary, and bench_memwall derives totals from
  // the deterministic byte fields below instead.
  uint64_t peak_rss_bytes = 0;
  // Bytes held by this engine's route-table snapshots (base table + every
  // precomputed timeline snapshot, compact hot-prefix layout). Merge keeps the
  // max: in-process shards share one plan and multiproc children alias one
  // arena/COW copy, so per-shard partials all report the same figure.
  uint64_t route_table_bytes = 0;
  // Bytes held by this engine's per-process workload sampler(s): the dense
  // alias / inverse-CDF tables, or the O(hot) two-level sampler. Merge keeps
  // the max (shards are symmetric); bench_memwall multiplies by the shard
  // count when it wants the per-process private total.
  uint64_t sampler_bytes = 0;
  // Multiproc engine only: bytes of the shared-memory arena, mapped once and
  // shared by every shard process (supervisor-set after the merge).
  uint64_t arena_bytes = 0;

  // One entry per sample_interval requests (when SimBackendConfig::sample_interval
  // is set): the per-interval slice of the aggregate counters, for failure
  // time-series plots. delivered == requests - dropped for the interval.
  struct IntervalPoint {
    uint64_t requests = 0;
    uint64_t delivered = 0;
    uint64_t dropped = 0;
    uint64_t reads = 0;
    uint64_t cache_hits = 0;
    // This interval's latency slice (empty on closed-loop runs). Inside the
    // engines' interval mark it holds the cumulative snapshot the next delta is
    // taken against.
    LatencyHistogram latency;

    double delivered_fraction() const {
      return requests == 0
                 ? 1.0
                 : static_cast<double>(delivered) / static_cast<double>(requests);
    }
    double hit_ratio() const {
      return reads == 0 ? 0.0
                        : static_cast<double>(cache_hits) / static_cast<double>(reads);
    }
  };
  std::vector<IntervalPoint> series;

  // Closes the current interval: appends the delta between this object's counters
  // (with `processed` as the request count) and `mark`, then advances `mark`.
  // Shared by the request-level engines' series bookkeeping.
  void CloseIntervalAt(uint64_t processed, IntervalPoint& mark);

  // One fault or recovery observation (multiproc only). kind < 16 is an
  // injected FaultKind (runtime/fault_plan.h) recorded by the shard that
  // survived it, with `at` the plan timestamp; kind >= 16 is a supervisor
  // observation (death, respawn, declared-dead, heartbeat warn, CRC mismatch)
  // or a child-recorded failover, with `at` = 0 — supervisor entries carry no
  // virtual timestamp because they fire on the wall clock.
  struct FaultRecord {
    static constexpr uint32_t kShardDeath = 16;
    static constexpr uint32_t kShardRespawn = 17;
    static constexpr uint32_t kShardDeclaredDead = 18;
    static constexpr uint32_t kHeartbeatWarn = 19;
    static constexpr uint32_t kControllerFailover = 20;
    static constexpr uint32_t kStatsCrcMismatch = 21;
    static constexpr uint32_t kArenaMapFailed = 22;

    uint32_t shard = 0;
    uint32_t kind = 0;
    uint64_t at = 0;
  };
  // The run's fault/recovery event series, in merge order (per-shard records
  // first, supervisor observations appended after the merge).
  std::vector<FaultRecord> fault_events;

  // Cumulative load per cache node, one vector per layer of the hierarchy (top
  // first: cache_load.front() is the spine layer, cache_load.back() the
  // rack-bound leaves; two entries in the historical two-layer deployment).
  std::vector<std::vector<double>> cache_load;
  std::vector<double> server_load;

  const std::vector<double>& spine_load() const { return cache_load.front(); }
  const std::vector<double>& leaf_load() const { return cache_load.back(); }

  // End-to-end latency distribution of the run (empty unless the open-loop
  // arrival process was configured). Shard-merge associative: the sharded
  // engine's quota-end Merge yields the bucket-exact union of its streams.
  LatencyHistogram latency;

  double wall_seconds = 0.0;

  // Fraction of reads absorbed by the cache layers (the paper's cache hit ratio).
  double hit_ratio() const {
    return reads == 0 ? 0.0 : static_cast<double>(cache_hits) / static_cast<double>(reads);
  }
  // Engine speed in million simulated requests per wall-clock second.
  double throughput_mrps() const {
    return wall_seconds <= 0.0 ? 0.0
                               : static_cast<double>(requests) / wall_seconds / 1e6;
  }
  // Max/mean cumulative load across all cache switches (spine+leaf): 1.0 is perfect
  // balance; the PoT guarantee keeps this small even under Zipf-0.99.
  double CacheImbalance() const;
  // Max/mean cumulative load across storage servers.
  double ServerImbalance() const;

  // Element-wise accumulate (used to merge per-shard partial stats).
  void Merge(const BackendStats& other);
};

class SimBackend {
 public:
  virtual ~SimBackend() = default;

  // Human-readable engine name ("sequential", "sharded", "fluid").
  virtual std::string name() const = 0;

  // Executes `num_requests` requests and returns aggregate stats (contract above).
  virtual BackendStats Run(uint64_t num_requests) = 0;
};

enum class BackendKind {
  kSequential,
  kSharded,
  kFluid,
  // The sharded engine's semantics with shards as separate pinned *processes*
  // over a shared-memory arena (sim/multiproc_backend.h) — crash isolation per
  // shard and the path past the single-process memory wall.
  kMultiproc,
};

// Parses "sequential" / "sharded" / "fluid" / "multiproc"; defaults to
// kSequential on anything else.
BackendKind ParseBackendKind(const std::string& name);

// This process's peak resident set in bytes (getrusage ru_maxrss; 0 where the
// platform has no rusage). Engines stamp it into BackendStats::peak_rss_bytes
// at the end of a Run; note maxrss is a process-lifetime high-water mark, so
// back-to-back runs in one process report the largest of them.
uint64_t CurrentPeakRssBytes();

// Factory. The returned backend owns its cluster state; construction performs the
// full allocation (same derived seeds as ClusterSim for cross-backend parity).
std::unique_ptr<SimBackend> MakeSimBackend(BackendKind kind, const SimBackendConfig& config);

}  // namespace distcache

#endif  // DISTCACHE_SIM_SIM_BACKEND_H_
