// Cross-shard message for the sharded simulation backend.
//
// One message type, two transports (see sharded_backend.h): the data-plane
// kinds (kLoadDeltas, kTelemetry) travel over the per-pair lock-free SPSC rings
// (runtime/spsc_ring.h); the control kinds (kClusterEvent, kHotReport,
// kRouteUpdate, kDone) travel over the per-shard mutex Channel. Senders batch
// everything: a single message carries all the load deltas one source shard
// produced for one owner shard, so transport traffic is O(epochs), not
// O(requests).
#ifndef DISTCACHE_SIM_SHARD_MESSAGE_H_
#define DISTCACHE_SIM_SHARD_MESSAGE_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/workload.h"
#include "net/topology.h"
#include "sim/route_table.h"
#include "sim/sim_backend.h"

namespace distcache {

struct ShardMsg {
  enum class Kind : uint8_t {
    // cache_entries/server_entries are *deltas* to the owner's authoritative
    // cumulative load counters (flushed when a shard finishes its quota).
    kLoadDeltas,
    // cache_partials[flat_node] is the sender's *own cumulative contribution* to
    // each cache node (flat index: spine i → i, leaf l → num_spine + l). Partials
    // are monotone per sender, so receivers fold in `new - last_seen` and every
    // shard's load view stays a consistent sum of per-shard partials — immune to
    // shard scheduling skew (absolute-load broadcasts from differently-aged epochs
    // would mix inconsistently).
    kTelemetry,
    // One timeline step — a failure/recovery event (§4.4), a hot-spot shift, a
    // cache re-allocation trigger (§6.4), or a workload phase switch (`is_phase`)
    // — multicast by the controller shard before request processing starts so
    // every shard applies it at the same shard-local timestamp (event.at_request
    // scaled to the shard's quota). For steps with a precomputable routing effect
    // (kRecoverSpine/kRunRecovery/kShiftHotspot and phase switches) `route_table`
    // carries the immutable post-step routing snapshot the receiving shard swaps
    // in when the step fires — this is how "the controller invalidates cached
    // routes" reaches the shards. Phase steps additionally carry `pmf`, the
    // head+tail popularity vector each shard rebuilds its alias sampler from.
    kClusterEvent,
    // Re-allocation rendezvous (§6.4), shard → controller: the sender reached a
    // kReallocateCache step and reports its locally observed heavy-hitter counts
    // (`hot_counts`), then blocks until the controller's kRouteUpdate.
    kHotReport,
    // Re-allocation rendezvous, controller → shards: the post-reallocation route
    // table computed from the merged observed counts, plus rebuilt snapshots for
    // every not-yet-applied timeline step (`suffix_routes`, aligned with the
    // receiver's pending actions) so later failure/shift steps route the
    // refilled cached set instead of the construction-time one. Unlike
    // precomputed snapshots these are built at runtime — the whole point of the
    // rendezvous.
    kRouteUpdate,
    // Sender has processed its whole request quota and flushed all deltas. Because
    // each inbox is FIFO per sender, a Done marks the end of that sender's stream.
    kDone,
  };

  Kind kind = Kind::kLoadDeltas;
  uint32_t from = 0;
  std::vector<std::pair<CacheNodeId, double>> cache_entries;
  std::vector<std::pair<uint32_t, double>> server_entries;
  std::vector<double> cache_partials;
  // kClusterEvent payload. event.at_request is the step's timestamp for phase
  // steps too; when `is_phase` is set the receiver applies `phase` and ignores
  // the event kind.
  ClusterEvent event;
  bool is_phase = false;
  WorkloadPhase phase;
  std::shared_ptr<const std::vector<double>> pmf;
  std::shared_ptr<const RouteTable> route_table;  // also kRouteUpdate payload
  // kRouteUpdate payload: one (possibly null) rebuilt snapshot per pending
  // timeline step after the re-allocation.
  std::vector<std::shared_ptr<const RouteTable>> suffix_routes;
  // kHotReport payload: (key, observed count), hottest-first.
  std::vector<std::pair<uint64_t, uint32_t>> hot_counts;
};

}  // namespace distcache

#endif  // DISTCACHE_SIM_SHARD_MESSAGE_H_
