// Cross-shard message for the sharded simulation backend.
//
// One Channel<ShardMsg> inbox per shard. Senders batch everything: a single message
// carries all the load deltas one source-shard batch produced for one owner shard,
// so channel traffic is O(messages per batch), not O(requests).
#ifndef DISTCACHE_SIM_SHARD_MESSAGE_H_
#define DISTCACHE_SIM_SHARD_MESSAGE_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/topology.h"
#include "sim/route_table.h"
#include "sim/sim_backend.h"

namespace distcache {

struct ShardMsg {
  enum class Kind : uint8_t {
    // cache_entries/server_entries are *deltas* to the owner's authoritative
    // cumulative load counters (flushed when a shard finishes its quota).
    kLoadDeltas,
    // cache_partials[flat_node] is the sender's *own cumulative contribution* to
    // each cache node (flat index: spine i → i, leaf l → num_spine + l). Partials
    // are monotone per sender, so receivers fold in `new - last_seen` and every
    // shard's load view stays a consistent sum of per-shard partials — immune to
    // shard scheduling skew (absolute-load broadcasts from differently-aged epochs
    // would mix inconsistently).
    kTelemetry,
    // One failure/recovery timeline entry (§4.4), multicast by the controller
    // shard before request processing starts so every shard applies it at the
    // same shard-local timestamp (event.at_request scaled to the shard's quota).
    // For remap-triggering events (kRecoverSpine/kRunRecovery) `route_table`
    // carries the immutable post-remap routing snapshot the receiving shard must
    // swap in when the event fires — this is how "controller recovery invalidates
    // cached routes" reaches the shards.
    kClusterEvent,
    // Sender has processed its whole request quota and flushed all deltas. Because
    // each inbox is FIFO per sender, a Done marks the end of that sender's stream.
    kDone,
  };

  Kind kind = Kind::kLoadDeltas;
  uint32_t from = 0;
  std::vector<std::pair<CacheNodeId, double>> cache_entries;
  std::vector<std::pair<uint32_t, double>> server_entries;
  std::vector<double> cache_partials;
  // kClusterEvent payload.
  ClusterEvent event;
  std::shared_ptr<const RouteTable> route_table;
};

}  // namespace distcache

#endif  // DISTCACHE_SIM_SHARD_MESSAGE_H_
