// Cross-shard message for the sharded simulation backend.
//
// One Channel<ShardMsg> inbox per shard. Senders batch everything: a single message
// carries all the load deltas one source-shard batch produced for one owner shard,
// so channel traffic is O(messages per batch), not O(requests).
#ifndef DISTCACHE_SIM_SHARD_MESSAGE_H_
#define DISTCACHE_SIM_SHARD_MESSAGE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "net/topology.h"

namespace distcache {

struct ShardMsg {
  enum class Kind : uint8_t {
    // cache_entries/server_entries are *deltas* to the owner's authoritative
    // cumulative load counters (flushed when a shard finishes its quota).
    kLoadDeltas,
    // cache_partials[flat_node] is the sender's *own cumulative contribution* to
    // each cache node (flat index: spine i → i, leaf l → num_spine + l). Partials
    // are monotone per sender, so receivers fold in `new - last_seen` and every
    // shard's load view stays a consistent sum of per-shard partials — immune to
    // shard scheduling skew (absolute-load broadcasts from differently-aged epochs
    // would mix inconsistently).
    kTelemetry,
    // Sender has processed its whole request quota and flushed all deltas. Because
    // each inbox is FIFO per sender, a Done marks the end of that sender's stream.
    kDone,
  };

  Kind kind = Kind::kLoadDeltas;
  uint32_t from = 0;
  std::vector<std::pair<CacheNodeId, double>> cache_entries;
  std::vector<std::pair<uint32_t, double>> server_entries;
  std::vector<double> cache_partials;
};

}  // namespace distcache

#endif  // DISTCACHE_SIM_SHARD_MESSAGE_H_
