#include "sim/sim_backend.h"

#include <algorithm>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "cluster/fluid_backend.h"
#include "sim/multiproc_backend.h"
#include "sim/sequential_backend.h"
#include "sim/sharded_backend.h"

namespace distcache {
namespace {

double MaxOverMean(const std::vector<const std::vector<double>*>& vectors) {
  double max = 0.0;
  double sum = 0.0;
  size_t n = 0;
  for (const auto* v : vectors) {
    for (double x : *v) {
      max = std::max(max, x);
      sum += x;
      ++n;
    }
  }
  if (n == 0 || sum <= 0.0) {
    return 1.0;
  }
  return max / (sum / static_cast<double>(n));
}

void AccumulateLoads(std::vector<double>& into, const std::vector<double>& from) {
  if (into.size() < from.size()) {
    into.resize(from.size(), 0.0);
  }
  for (size_t i = 0; i < from.size(); ++i) {
    into[i] += from[i];
  }
}

}  // namespace

std::vector<double> ResolveServiceRates(const QueueModelConfig& queue,
                                        const ClusterConfig& cluster) {
  const std::vector<LayerSpec> layers = ResolvedCacheLayers(cluster);
  // Auto: the fluid model's rate-limit discipline (cluster_sim.cc) — every
  // cache node matches a rack's aggregate, with the explicit spine/leaf
  // capacity overrides honoured.
  const double rack_aggregate = static_cast<double>(cluster.servers_per_rack) *
                                cluster.server_capacity;
  std::vector<double> rates(layers.size(), rack_aggregate);
  if (cluster.spine_capacity > 0) {
    rates.front() = cluster.spine_capacity;
  }
  if (cluster.leaf_capacity > 0) {
    rates.back() = cluster.leaf_capacity;
  }
  if (queue.service_rates.size() == 1) {
    rates.assign(layers.size(), queue.service_rates[0]);  // broadcast
  } else if (!queue.service_rates.empty()) {
    for (size_t l = 0; l < rates.size() && l < queue.service_rates.size(); ++l) {
      rates[l] = queue.service_rates[l];
    }
  }
  return rates;
}

void SortEventsByRequest(std::vector<ClusterEvent>& events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const ClusterEvent& a, const ClusterEvent& b) {
                     return a.at_request < b.at_request;
                   });
}

void BackendStats::CloseIntervalAt(uint64_t processed, IntervalPoint& mark) {
  IntervalPoint pt;
  pt.requests = processed - mark.requests;
  pt.dropped = dropped - mark.dropped;
  pt.delivered = pt.requests - pt.dropped;
  pt.reads = reads - mark.reads;
  pt.cache_hits = cache_hits - mark.cache_hits;
  // Per-interval latency slice; a no-op pair of empty histograms on closed-loop
  // runs (no allocation, golden-neutral).
  pt.latency = latency.DeltaSince(mark.latency);
  series.push_back(std::move(pt));
  mark.requests = processed;
  mark.dropped = dropped;
  mark.reads = reads;
  mark.cache_hits = cache_hits;
  mark.latency = latency;
}

double BackendStats::CacheImbalance() const {
  std::vector<const std::vector<double>*> layers;
  layers.reserve(cache_load.size());
  for (const std::vector<double>& layer : cache_load) {
    layers.push_back(&layer);
  }
  return MaxOverMean(layers);
}

double BackendStats::ServerImbalance() const {
  return MaxOverMean({&server_load});
}

void BackendStats::Merge(const BackendStats& other) {
  requests += other.requests;
  reads += other.reads;
  writes += other.writes;
  cache_hits += other.cache_hits;
  spine_hits += other.spine_hits;
  leaf_hits += other.leaf_hits;
  server_reads += other.server_reads;
  cache_write_hits += other.cache_write_hits;
  writebacks += other.writebacks;
  dropped += other.dropped;
  cross_shard_messages += other.cross_shard_messages;
  ring_messages += other.ring_messages;
  uncontended_receives += other.uncontended_receives;
  contended_receives += other.contended_receives;
  failed_shards += other.failed_shards;
  respawned_shards += other.respawned_shards;
  injected_faults += other.injected_faults;
  heartbeat_misses += other.heartbeat_misses;
  controller_failovers += other.controller_failovers;
  degraded_fraction += other.degraded_fraction;
  fault_events.insert(fault_events.end(), other.fault_events.begin(),
                      other.fault_events.end());
  // Memory fields keep the max (shared pages / shared snapshots would be
  // overcounted by a sum — see the field comments).
  peak_rss_bytes = std::max(peak_rss_bytes, other.peak_rss_bytes);
  route_table_bytes = std::max(route_table_bytes, other.route_table_bytes);
  sampler_bytes = std::max(sampler_bytes, other.sampler_bytes);
  arena_bytes = std::max(arena_bytes, other.arena_bytes);
  if (series.size() < other.series.size()) {
    series.resize(other.series.size());
  }
  for (size_t i = 0; i < other.series.size(); ++i) {
    series[i].requests += other.series[i].requests;
    series[i].delivered += other.series[i].delivered;
    series[i].dropped += other.series[i].dropped;
    series[i].reads += other.series[i].reads;
    series[i].cache_hits += other.series[i].cache_hits;
    series[i].latency.Merge(other.series[i].latency);
  }
  latency.Merge(other.latency);
  if (cache_load.size() < other.cache_load.size()) {
    cache_load.resize(other.cache_load.size());
  }
  for (size_t l = 0; l < other.cache_load.size(); ++l) {
    AccumulateLoads(cache_load[l], other.cache_load[l]);
  }
  AccumulateLoads(server_load, other.server_load);
  wall_seconds = std::max(wall_seconds, other.wall_seconds);
}

uint64_t CurrentPeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0;
  }
#if defined(__APPLE__)
  return static_cast<uint64_t>(usage.ru_maxrss);  // bytes on Darwin
#else
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;  // kilobytes elsewhere
#endif
#else
  return 0;
#endif
}

BackendKind ParseBackendKind(const std::string& name) {
  if (name == "sharded") {
    return BackendKind::kSharded;
  }
  if (name == "fluid") {
    return BackendKind::kFluid;
  }
  if (name == "multiproc") {
    return BackendKind::kMultiproc;
  }
  return BackendKind::kSequential;
}

std::unique_ptr<SimBackend> MakeSimBackend(BackendKind kind,
                                           const SimBackendConfig& config) {
  switch (kind) {
    case BackendKind::kSharded:
      return std::make_unique<ShardedBackend>(config);
    case BackendKind::kFluid:
      return std::make_unique<FluidBackend>(config);
    case BackendKind::kMultiproc:
      return std::make_unique<MultiprocBackend>(config);
    case BackendKind::kSequential:
      break;
  }
  return std::make_unique<SequentialBackend>(config);
}

}  // namespace distcache
