// Minimal discrete-event simulation kernel: a time-ordered event queue with stable
// FIFO ordering for simultaneous events.
#ifndef DISTCACHE_SIM_EVENT_QUEUE_H_
#define DISTCACHE_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace distcache {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  double now() const { return now_; }

  // Schedules `handler` to run `delay` time units from now (delay ≥ 0).
  void Schedule(double delay, Handler handler) {
    events_.push(Event{now_ + (delay < 0 ? 0 : delay), seq_++, std::move(handler)});
  }

  // Runs events until the queue drains or simulated time reaches `until`.
  // Returns the number of events executed.
  uint64_t RunUntil(double until) {
    uint64_t executed = 0;
    while (!events_.empty() && events_.top().time <= until) {
      // The handler may schedule more events; pop first so `now_` is consistent.
      Event event = events_.top();
      events_.pop();
      now_ = event.time;
      event.handler();
      ++executed;
    }
    if (events_.empty() || now_ < until) {
      now_ = until;
    }
    return executed;
  }

  bool empty() const { return events_.empty(); }
  size_t pending() const { return events_.size(); }

 private:
  struct Event {
    double time;
    uint64_t seq;
    Handler handler;

    bool operator>(const Event& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;  // FIFO among simultaneous events
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  double now_ = 0.0;
  uint64_t seq_ = 0;
};

}  // namespace distcache

#endif  // DISTCACHE_SIM_EVENT_QUEUE_H_
