// CPU pinning for shard workers — threads and forked shard processes alike.
//
// On Linux, sched_setaffinity(0, ...) binds the *calling thread* (or a
// single-threaded child process), which covers both deployment shapes:
//
//   * the in-process sharded engine calls PinToCore from each shard thread
//     when SimBackendConfig::pin_cores is set (--pin-cores), and
//   * the multi-process engine calls it from each forked shard process right
//     after the fork, before the process touches its arena rings — so the
//     first-touch page placement of the rings it consumes lands on the pinned
//     core's NUMA node (the "NUMA-aware arena placement" discipline: no
//     mbind/libnuma dependency, just pin-then-prefault).
//
// Cores are assigned round-robin modulo the online-CPU count, so shard counts
// above the machine size degrade to oversubscription instead of failing.
// Non-Linux builds compile PinToCore to a no-op returning false.
#ifndef DISTCACHE_RUNTIME_AFFINITY_H_
#define DISTCACHE_RUNTIME_AFFINITY_H_

#include <cstdint>

#ifdef __linux__
#include <sched.h>
#include <unistd.h>
#endif

namespace distcache {

// Number of CPUs currently usable, >= 1 (1 on probe failure / non-Linux).
inline uint32_t OnlineCores() {
#ifdef __linux__
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<uint32_t>(n) : 1u;
#else
  return 1u;
#endif
}

// Pins the calling thread (thread 0 of a forked child = the whole shard
// process) to core `core % OnlineCores()`. Returns true on success; failure is
// benign (the shard just runs unpinned) so callers treat it as advisory.
inline bool PinToCore(uint32_t core) {
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core % OnlineCores(), &set);
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)core;
  return false;
#endif
}

}  // namespace distcache

#endif  // DISTCACHE_RUNTIME_AFFINITY_H_
