// Thread-per-node execution of the full DistCache architecture on one machine —
// the "software cache nodes emulate switches" deployment. Every spine switch, leaf
// switch and storage server is a thread with a message inbox; clients use a library
// that performs the client-ToR power-of-two-choices routing and learns switch loads
// from telemetry piggybacked on replies, exactly mirroring §4.2.
//
// Query handling:
//  * GET of a cached key → routed to the less-loaded of {spine h0-copy, leaf copy};
//    a hit is answered by the switch thread; an invalid/missing entry is forwarded to
//    the primary server without any routing detour.
//  * GET of an uncached key → sent to the primary server directly.
//  * PUT → sent to the primary server, which runs the two-phase coherence protocol
//    over the cached copies by messaging the switch threads (phase 1 invalidate, ack,
//    primary update, client ack, phase 2 update).
#ifndef DISTCACHE_RUNTIME_RUNTIME_H_
#define DISTCACHE_RUNTIME_RUNTIME_H_

#include <cstddef>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/cache_switch.h"
#include "common/status.h"
#include "core/allocation.h"
#include "core/load_tracker.h"
#include "core/mechanism.h"
#include "core/pot_router.h"
#include "kv/placement.h"
#include "kv/storage_server.h"
#include "net/message.h"
#include "runtime/channel.h"

namespace distcache {

struct RuntimeConfig {
  Mechanism mechanism = Mechanism::kDistCache;
  uint32_t num_spine = 4;
  uint32_t num_racks = 4;
  uint32_t servers_per_rack = 4;
  uint32_t per_switch_objects = 16;
  uint64_t num_keys = 10000;  // keys seeded into the store (dense 0..num_keys-1)
  RoutingPolicy routing = RoutingPolicy::kPowerOfTwo;
  uint64_t seed = 11;
};

class DistCacheRuntime {
 public:
  explicit DistCacheRuntime(const RuntimeConfig& config);
  ~DistCacheRuntime();

  DistCacheRuntime(const DistCacheRuntime&) = delete;
  DistCacheRuntime& operator=(const DistCacheRuntime&) = delete;

  // Starts all node threads and seeds the stores and caches.
  void Start();
  // Drains and joins all threads. Idempotent.
  void Stop();

  // Canonical value for a key (what Get must return after seeding).
  static std::string ValueFor(uint64_t key) { return "v" + std::to_string(key); }

  struct Counters {
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> cache_misses{0};
    std::atomic<uint64_t> server_gets{0};
    std::atomic<uint64_t> writes{0};
    std::atomic<uint64_t> invalidations{0};
    std::atomic<uint64_t> cache_updates{0};
  };

  // A per-thread client handle: owns its reply channel, load tracker and router.
  class Client {
   public:
    Client(DistCacheRuntime* runtime, uint64_t seed);

    StatusOr<std::string> Get(uint64_t key);
    Status Put(uint64_t key, std::string value);

    const LoadTracker& tracker() const { return tracker_; }

   private:
    void AbsorbPiggyback(const Message& reply);

    DistCacheRuntime* runtime_;
    LoadTracker tracker_;
    PotRouter router_;
    Channel<Message> replies_;
    uint64_t next_request_ = 1;
  };

  std::unique_ptr<Client> NewClient(uint64_t seed);

  const Counters& counters() const { return counters_; }
  const RuntimeConfig& config() const { return config_; }
  const CacheAllocation& allocation() const { return *allocation_; }
  // Per-switch telemetry loads since start (hits + coherence touches).
  std::vector<uint64_t> SpineLoads() const;
  std::vector<uint64_t> LeafLoads() const;

 private:
  friend class Client;

  struct Envelope {
    Message msg;
    Channel<Message>* reply_to = nullptr;
  };

  void SwitchLoop(bool spine_layer, uint32_t index);
  void ServerLoop(uint32_t server_id);
  // Cached copies of `key` as routable node ids (replication expands to all spines).
  std::vector<CacheNodeId> CopyNodes(uint64_t key) const;
  uint32_t ServerOf(uint64_t key) const { return placement_.ServerOf(key); }
  Channel<Envelope>& SwitchInbox(CacheNodeId node) {
    return node.layer == 0 ? *spine_inboxes_[node.index] : *leaf_inboxes_[node.index];
  }

  RuntimeConfig config_;
  Placement placement_;
  std::unique_ptr<CacheAllocation> allocation_;

  std::vector<std::unique_ptr<CacheSwitch>> spine_switches_;
  std::vector<std::unique_ptr<CacheSwitch>> leaf_switches_;
  std::vector<std::unique_ptr<StorageServer>> servers_;

  std::vector<std::unique_ptr<Channel<Envelope>>> spine_inboxes_;
  std::vector<std::unique_ptr<Channel<Envelope>>> leaf_inboxes_;
  std::vector<std::unique_ptr<Channel<Envelope>>> server_inboxes_;

  std::vector<std::thread> threads_;
  Counters counters_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace distcache

#endif  // DISTCACHE_RUNTIME_RUNTIME_H_
