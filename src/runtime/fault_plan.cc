#include "runtime/fault_plan.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/hash.h"
#include "common/random.h"

namespace distcache {
namespace {

struct KindName {
  FaultKind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {FaultKind::kCrashClean, "exit"},    {FaultKind::kCrashKill, "kill"},
    {FaultKind::kCrashAbort, "abort"},   {FaultKind::kStall, "stall"},
    {FaultKind::kDropTelemetry, "drop"}, {FaultKind::kDelayControl, "delay"},
    {FaultKind::kCorruptStats, "corrupt"}, {FaultKind::kArenaMapFail, "mapfail"},
};

// Default param when a spec term omits it: enough to be observable, small
// enough that smoke-sized chaos runs stay fast.
uint64_t DefaultParam(FaultKind kind) {
  switch (kind) {
    case FaultKind::kStall:
      return 20;  // ms
    case FaultKind::kDropTelemetry:
      return 2;  // broadcasts
    case FaultKind::kDelayControl:
      return 10;  // ms
    default:
      return 0;
  }
}

// The classes `random:` samples from (everything injectable mid-run; mapfail
// is a whole-run property, not a schedulable event).
constexpr FaultKind kRandomKinds[] = {
    FaultKind::kCrashClean,    FaultKind::kCrashKill, FaultKind::kCrashAbort,
    FaultKind::kStall,         FaultKind::kDropTelemetry,
    FaultKind::kDelayControl,  FaultKind::kCorruptStats,
};

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
  return false;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  for (const KindName& entry : kKindNames) {
    if (entry.kind == kind) {
      return entry.name;
    }
  }
  return "?";
}

bool ParseFaultKind(const std::string& name, FaultKind* kind) {
  for (const KindName& entry : kKindNames) {
    if (name == entry.name) {
      *kind = entry.kind;
      return true;
    }
  }
  return false;
}

bool FaultPlan::arena_map_failure() const {
  for (const FaultEvent& e : events) {
    if (e.kind == FaultKind::kArenaMapFail) {
      return true;
    }
  }
  return false;
}

uint64_t FaultPlan::max_stall_ms() const {
  uint64_t max_ms = 0;
  for (const FaultEvent& e : events) {
    if (e.kind == FaultKind::kStall) {
      max_ms = std::max(max_ms, e.param);
    }
  }
  return max_ms;
}

FaultPlan GenerateFaultPlan(uint64_t seed, int kind_or_negative, uint32_t count,
                            uint32_t shards, uint64_t num_requests) {
  FaultPlan plan;
  Rng rng(HashCombine(seed, 0xfa1707afULL));
  const uint64_t lo = num_requests / 10;
  const uint64_t span = std::max<uint64_t>(1, num_requests * 7 / 10);
  plan.events.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    FaultEvent e;
    e.kind = kind_or_negative >= 0
                 ? static_cast<FaultKind>(kind_or_negative)
                 : kRandomKinds[rng.NextBounded(
                       sizeof(kRandomKinds) / sizeof(kRandomKinds[0]))];
    e.shard = shards == 0 ? 0 : static_cast<uint32_t>(rng.NextBounded(shards));
    e.at_request = lo + rng.NextBounded(span);
    e.param = DefaultParam(e.kind);
    plan.events.push_back(e);
  }
  return plan;
}

bool ParseFaultPlan(const std::string& spec, uint32_t shards,
                    uint64_t num_requests, uint64_t seed, FaultPlan* plan,
                    std::string* error) {
  plan->events.clear();
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    const std::string term = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (term.empty()) {
      continue;
    }
    if (term == "mapfail") {
      plan->events.push_back({FaultKind::kArenaMapFail, 0, 0, 0});
      continue;
    }
    if (term.rfind("random:", 0) == 0) {
      // random:<count>[:<kind>]
      const std::string rest = term.substr(7);
      const size_t colon = rest.find(':');
      const std::string count_str = rest.substr(0, colon);
      char* end = nullptr;
      const unsigned long count = std::strtoul(count_str.c_str(), &end, 10);
      if (end == count_str.c_str() || *end != '\0') {
        return Fail(error, "fault-plan: bad count in '" + term + "'");
      }
      int kind_sel = -1;
      if (colon != std::string::npos) {
        FaultKind kind;
        if (!ParseFaultKind(rest.substr(colon + 1), &kind) ||
            kind == FaultKind::kArenaMapFail) {
          return Fail(error, "fault-plan: bad kind in '" + term + "'");
        }
        kind_sel = static_cast<int>(kind);
      }
      const FaultPlan generated = GenerateFaultPlan(
          seed, kind_sel, static_cast<uint32_t>(count), shards, num_requests);
      plan->events.insert(plan->events.end(), generated.events.begin(),
                          generated.events.end());
      continue;
    }
    // <kind>:<shard>@<at>[:<param>]
    const size_t kind_colon = term.find(':');
    if (kind_colon == std::string::npos) {
      return Fail(error, "fault-plan: expected <kind>:<shard>@<at> in '" +
                             term + "'");
    }
    FaultEvent e;
    if (!ParseFaultKind(term.substr(0, kind_colon), &e.kind) ||
        e.kind == FaultKind::kArenaMapFail) {
      return Fail(error, "fault-plan: unknown kind in '" + term + "'");
    }
    const std::string body = term.substr(kind_colon + 1);
    const size_t at_sign = body.find('@');
    if (at_sign == std::string::npos) {
      return Fail(error, "fault-plan: expected <shard>@<at> in '" + term + "'");
    }
    char* end = nullptr;
    const std::string shard_str = body.substr(0, at_sign);
    e.shard = static_cast<uint32_t>(std::strtoul(shard_str.c_str(), &end, 10));
    if (end == shard_str.c_str() || *end != '\0') {
      return Fail(error, "fault-plan: bad shard in '" + term + "'");
    }
    std::string at_str = body.substr(at_sign + 1);
    const size_t param_colon = at_str.find(':');
    e.param = DefaultParam(e.kind);
    if (param_colon != std::string::npos) {
      const std::string param_str = at_str.substr(param_colon + 1);
      e.param = std::strtoull(param_str.c_str(), &end, 10);
      if (end == param_str.c_str() || *end != '\0') {
        return Fail(error, "fault-plan: bad param in '" + term + "'");
      }
      at_str.resize(param_colon);
    }
    e.at_request = std::strtoull(at_str.c_str(), &end, 10);
    if (end == at_str.c_str() || *end != '\0') {
      return Fail(error, "fault-plan: bad timestamp in '" + term + "'");
    }
    if (shards != 0 && e.shard >= shards) {
      return Fail(error, "fault-plan: shard out of range in '" + term + "'");
    }
    plan->events.push_back(e);
  }
  return true;
}

std::string FaultPlanToString(const FaultPlan& plan) {
  std::string out;
  char buf[96];
  for (const FaultEvent& e : plan.events) {
    if (!out.empty()) {
      out += ',';
    }
    if (e.kind == FaultKind::kArenaMapFail) {
      out += "mapfail";
      continue;
    }
    std::snprintf(buf, sizeof(buf), "%s:%u@%llu", FaultKindName(e.kind),
                  e.shard, static_cast<unsigned long long>(e.at_request));
    out += buf;
    if (e.param != DefaultParam(e.kind)) {
      std::snprintf(buf, sizeof(buf), ":%llu",
                    static_cast<unsigned long long>(e.param));
      out += buf;
    }
  }
  return out;
}

}  // namespace distcache
