// Wait-loop pacing shared by every off-hot-path poll loop in the runtime: the
// in-process sharded engine's control waits (timeline rendezvous, re-allocation
// barrier, final drain) and the multi-process engine's shared-memory ring waits.
//
// Escalation schedule: yield first so a runnable peer gets the core (the
// single-core case — the peer we are waiting on may be timesliced onto *this*
// CPU), then drop to micro-sleeps so a long wait does not burn the timeslice a
// working shard (or shard process) needs. The schedule is pinned by
// tests/runtime/backoff_test.cc: spins 1..kYieldSpins-1 yield, everything after
// sleeps kSleepMicros — no exponential growth, because the waits this paces are
// rendezvous barriers whose expected duration is one peer batch (~microseconds),
// and a grown sleep would turn a one-batch wait into a stall.
#ifndef DISTCACHE_RUNTIME_BACKOFF_H_
#define DISTCACHE_RUNTIME_BACKOFF_H_

#include <chrono>
#include <thread>

namespace distcache {

class Backoff {
 public:
  // What a Pause() did — exposed so the escalation schedule is unit-testable
  // without timing the sleeps.
  enum class Kind { kYield, kSleep };

  static constexpr int kYieldSpins = 64;
  static constexpr int kSleepMicros = 50;

  Kind Pause() {
    if (++spins_ < kYieldSpins) {
      std::this_thread::yield();
      return Kind::kYield;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(kSleepMicros));
    return Kind::kSleep;
  }

  // The schedule alone (no yield/sleep side effect): what the next Pause()
  // would do. Drives the unit test and costs nothing in shipping code.
  Kind NextKind() const {
    return spins_ + 1 < kYieldSpins ? Kind::kYield : Kind::kSleep;
  }

  int spins() const { return spins_; }
  void Reset() { spins_ = 0; }

 private:
  int spins_ = 0;
};

}  // namespace distcache

#endif  // DISTCACHE_RUNTIME_BACKOFF_H_
