#include "runtime/runtime.h"

#include <algorithm>
#include <utility>

namespace distcache {

DistCacheRuntime::DistCacheRuntime(const RuntimeConfig& config)
    : config_(config),
      placement_(config.num_racks, config.servers_per_rack,
                 HashCombine(config.seed, 0x91aceULL)) {
  // The runtime deployment is the paper's two-layer prototype, expressed through
  // the layer-generic allocation API: LayerSpec{0} is the spine layer, {1} the
  // rack-bound leaves. Deeper hierarchies stay a simulation-engine feature until
  // the thread-per-node runtime grows mid-layer switch loops.
  AllocationConfig alloc = AllocationConfig::TwoLayer(
      config_.mechanism, config_.num_spine, config_.num_racks,
      config_.per_switch_objects, HashCombine(config_.seed, 0xd15ca4eULL));
  // The runtime seeds a dense keyspace; cap the candidate pool accordingly.
  alloc.candidate_pool = static_cast<uint32_t>(
      std::min<uint64_t>(config_.num_keys,
                         uint64_t{8} * config_.per_switch_objects *
                             (config_.num_spine + config_.num_racks)));
  allocation_ = std::make_unique<CacheAllocation>(alloc, placement_);

  for (uint32_t s = 0; s < config_.num_spine; ++s) {
    CacheSwitch::Config sw;
    sw.switch_id = s;
    spine_switches_.push_back(std::make_unique<CacheSwitch>(sw));
    spine_inboxes_.push_back(std::make_unique<Channel<Envelope>>());
  }
  for (uint32_t l = 0; l < config_.num_racks; ++l) {
    CacheSwitch::Config sw;
    sw.switch_id = config_.num_spine + l;
    leaf_switches_.push_back(std::make_unique<CacheSwitch>(sw));
    leaf_inboxes_.push_back(std::make_unique<Channel<Envelope>>());
  }
  const uint32_t num_servers = config_.num_racks * config_.servers_per_rack;
  for (uint32_t v = 0; v < num_servers; ++v) {
    StorageServer::Config sc;
    sc.server_id = v;
    servers_.push_back(std::make_unique<StorageServer>(sc));
    server_inboxes_.push_back(std::make_unique<Channel<Envelope>>());
  }
}

DistCacheRuntime::~DistCacheRuntime() { Stop(); }

std::vector<CacheNodeId> DistCacheRuntime::CopyNodes(uint64_t key) const {
  const CacheCopies copies = allocation_->CopiesOf(key);
  std::vector<CacheNodeId> nodes;
  if (copies.replicated_all_spines) {
    for (uint32_t s = 0; s < config_.num_spine; ++s) {
      nodes.push_back(CacheNodeId{0, s});
    }
  }
  // The per-layer copies, ascending (spine copy then leaf copy in this
  // two-layer runtime).
  for (uint8_t i = 0; i < copies.num; ++i) {
    nodes.push_back(copies.nodes[i]);
  }
  return nodes;
}

void DistCacheRuntime::Start() {
  if (started_) {
    return;
  }
  started_ = true;

  // Seed primary copies.
  for (uint64_t key = 0; key < config_.num_keys; ++key) {
    servers_[ServerOf(key)]->Seed(key, ValueFor(key)).ok();
  }
  // Seed cache contents per the controller's allocation (valid from the start; the
  // runtime exercise is query handling, not warm-up).
  const auto seed_switch = [](CacheSwitch* sw, const std::vector<uint64_t>& keys) {
    for (uint64_t key : keys) {
      sw->InsertInvalid(key, ValueFor(key).size()).ok();
      sw->UpdateValue(key, ValueFor(key)).ok();
    }
  };
  for (uint32_t s = 0; s < config_.num_spine; ++s) {
    seed_switch(spine_switches_[s].get(), allocation_->layer_contents(0)[s]);
  }
  for (uint32_t l = 0; l < config_.num_racks; ++l) {
    seed_switch(leaf_switches_[l].get(), allocation_->layer_contents(1)[l]);
  }

  for (uint32_t s = 0; s < config_.num_spine; ++s) {
    threads_.emplace_back([this, s] { SwitchLoop(/*spine_layer=*/true, s); });
  }
  for (uint32_t l = 0; l < config_.num_racks; ++l) {
    threads_.emplace_back([this, l] { SwitchLoop(/*spine_layer=*/false, l); });
  }
  for (uint32_t v = 0; v < servers_.size(); ++v) {
    threads_.emplace_back([this, v] { ServerLoop(v); });
  }
}

void DistCacheRuntime::Stop() {
  if (!started_ || stopped_) {
    return;
  }
  stopped_ = true;
  for (auto& inbox : spine_inboxes_) {
    inbox->Close();
  }
  for (auto& inbox : leaf_inboxes_) {
    inbox->Close();
  }
  for (auto& inbox : server_inboxes_) {
    inbox->Close();
  }
  for (auto& thread : threads_) {
    thread.join();
  }
  threads_.clear();
}

void DistCacheRuntime::SwitchLoop(bool spine_layer, uint32_t index) {
  CacheSwitch* sw =
      spine_layer ? spine_switches_[index].get() : leaf_switches_[index].get();
  Channel<Envelope>& inbox =
      spine_layer ? *spine_inboxes_[index] : *leaf_inboxes_[index];
  const CacheNodeId self{spine_layer ? 0u : 1u, index};

  while (auto env = inbox.Receive()) {
    Message& msg = env->msg;
    switch (msg.type) {
      case MsgType::kGetRequest: {
        std::string value;
        const LookupResult result = sw->Lookup(msg.key, &value);
        if (result == LookupResult::kHit) {
          counters_.cache_hits.fetch_add(1, std::memory_order_relaxed);
          Message reply = msg;
          reply.type = MsgType::kGetReply;
          reply.value = std::move(value);
          reply.cache_hit = true;
          reply.piggyback.push_back(LoadSample{self, sw->TelemetryLoad()});
          // Reply channels belong to the blocked requester and never close before
          // the reply lands; a rejection means the requester is gone — drop it.
          (void)env->reply_to->Send(std::move(reply));
        } else {
          // Invalid or miss: forward to the primary server, no routing detour (§4.2).
          counters_.cache_misses.fetch_add(1, std::memory_order_relaxed);
          if (sw->RecordMiss(msg.key)) {
            // A new heavy hitter was detected; the agent epoch would consider it.
          }
          // Capture the reply route before the envelope is consumed: if the server
          // inbox closed mid-flight (Stop() race), the forward is dropped and the
          // client would otherwise block in Receive() forever — its reply channel
          // is never closed. Fail loudly with an unavailable reply instead.
          Channel<Message>* reply_to = env->reply_to;
          const uint64_t key = msg.key;
          const uint64_t request_id = msg.request_id;
          const uint32_t client_id = msg.client_id;
          if (!server_inboxes_[ServerOf(key)]->Send(std::move(*env))) {
            Message failure;
            failure.type = MsgType::kGetReply;
            failure.key = key;
            failure.request_id = request_id;
            failure.client_id = client_id;
            failure.unavailable = true;
            (void)reply_to->Send(std::move(failure));
          }
        }
        break;
      }
      case MsgType::kInvalidate: {
        sw->Invalidate(msg.key).ok();
        sw->AddTelemetryLoad(1);
        counters_.invalidations.fetch_add(1, std::memory_order_relaxed);
        Message ack = msg;
        ack.type = MsgType::kInvalidateAck;
        (void)env->reply_to->Send(std::move(ack));
        break;
      }
      case MsgType::kCacheUpdate: {
        sw->UpdateValue(msg.key, msg.value).ok();
        sw->AddTelemetryLoad(1);
        counters_.cache_updates.fetch_add(1, std::memory_order_relaxed);
        Message ack = msg;
        ack.type = MsgType::kCacheUpdateAck;
        (void)env->reply_to->Send(std::move(ack));
        break;
      }
      default:
        break;  // unexpected at a switch
    }
  }
}

void DistCacheRuntime::ServerLoop(uint32_t server_id) {
  StorageServer* server = servers_[server_id].get();
  Channel<Envelope>& inbox = *server_inboxes_[server_id];
  Channel<Message> coherence_acks;  // private channel for protocol round trips

  while (auto env = inbox.Receive()) {
    Message& msg = env->msg;
    switch (msg.type) {
      case MsgType::kGetRequest: {
        counters_.server_gets.fetch_add(1, std::memory_order_relaxed);
        Message reply = msg;
        reply.type = MsgType::kGetReply;
        auto value = server->Get(msg.key);
        if (value.ok()) {
          reply.value = std::move(value).value();
        }
        // Reply channels belong to the blocked requester and never close before
        // the reply lands; a rejection means the requester is gone — drop it.
        (void)env->reply_to->Send(std::move(reply));
        break;
      }
      case MsgType::kPutRequest: {
        counters_.writes.fetch_add(1, std::memory_order_relaxed);
        const std::vector<CacheNodeId> copies = CopyNodes(msg.key);

        // Phase 1: invalidate all cached copies and wait for the acks.
        size_t pending = 0;
        for (const CacheNodeId& node : copies) {
          Message inval;
          inval.type = MsgType::kInvalidate;
          inval.key = msg.key;
          if (SwitchInbox(node).Send(Envelope{std::move(inval), &coherence_acks})) {
            ++pending;
          }
        }
        for (size_t i = 0; i < pending; ++i) {
          if (!coherence_acks.Receive()) {
            break;  // shutting down
          }
        }

        // Primary update, then the client acknowledgment — before phase 2, which is
        // safe because every copy is invalid (§4.3 optimization).
        server->Put(msg.key, msg.value, copies.size()).ok();
        Message reply = msg;
        reply.type = MsgType::kPutReply;
        (void)env->reply_to->Send(std::move(reply));

        // Phase 2: push the new value and re-validate.
        pending = 0;
        for (const CacheNodeId& node : copies) {
          Message update;
          update.type = MsgType::kCacheUpdate;
          update.key = msg.key;
          update.value = msg.value;
          if (SwitchInbox(node).Send(Envelope{std::move(update), &coherence_acks})) {
            ++pending;
          }
        }
        for (size_t i = 0; i < pending; ++i) {
          if (!coherence_acks.Receive()) {
            break;
          }
        }
        break;
      }
      default:
        break;
    }
  }
}

DistCacheRuntime::Client::Client(DistCacheRuntime* runtime, uint64_t seed)
    : runtime_(runtime),
      tracker_(LoadTracker::Config{
          {runtime->config_.num_spine, runtime->config_.num_racks},
          /*aging_factor=*/1.0}),
      router_(&tracker_, runtime->config_.routing, HashCombine(seed, 0xc11e7ULL)) {}

std::unique_ptr<DistCacheRuntime::Client> DistCacheRuntime::NewClient(uint64_t seed) {
  return std::make_unique<Client>(this, seed);
}

void DistCacheRuntime::Client::AbsorbPiggyback(const Message& reply) {
  for (const LoadSample& sample : reply.piggyback) {
    tracker_.Update(sample.node, sample.load);
  }
}

StatusOr<std::string> DistCacheRuntime::Client::Get(uint64_t key) {
  Message request;
  request.type = MsgType::kGetRequest;
  request.key = key;
  request.request_id = next_request_++;

  const std::vector<CacheNodeId> copies = runtime_->CopyNodes(key);
  bool sent = false;
  if (copies.empty()) {
    sent = runtime_->server_inboxes_[runtime_->ServerOf(key)]->Send(
        Envelope{std::move(request), &replies_});
  } else {
    const size_t choice = router_.Choose(copies);
    request.target = copies[choice];
    request.has_target = true;
    sent = runtime_->SwitchInbox(copies[choice]).Send(Envelope{std::move(request), &replies_});
  }
  if (!sent) {
    return Status::Unavailable("runtime stopped");
  }
  auto reply = replies_.Receive();
  if (!reply) {
    return Status::Unavailable("runtime stopped");
  }
  AbsorbPiggyback(*reply);
  if (reply->unavailable) {
    return Status::Unavailable("runtime stopped");
  }
  if (reply->value.empty()) {
    return Status::NotFound();
  }
  return std::move(reply->value);
}

Status DistCacheRuntime::Client::Put(uint64_t key, std::string value) {
  Message request;
  request.type = MsgType::kPutRequest;
  request.key = key;
  request.value = std::move(value);
  request.request_id = next_request_++;
  if (!runtime_->server_inboxes_[runtime_->ServerOf(key)]->Send(
          Envelope{std::move(request), &replies_})) {
    return Status::Unavailable("runtime stopped");
  }
  if (!replies_.Receive()) {
    return Status::Unavailable("runtime stopped");
  }
  return Status::Ok();
}

std::vector<uint64_t> DistCacheRuntime::SpineLoads() const {
  std::vector<uint64_t> loads;
  loads.reserve(spine_switches_.size());
  for (const auto& sw : spine_switches_) {
    loads.push_back(sw->TelemetryLoad());
  }
  return loads;
}

std::vector<uint64_t> DistCacheRuntime::LeafLoads() const {
  std::vector<uint64_t> loads;
  loads.reserve(leaf_switches_.size());
  for (const auto& sw : leaf_switches_) {
    loads.push_back(sw->TelemetryLoad());
  }
  return loads;
}

}  // namespace distcache
