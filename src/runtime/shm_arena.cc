#include "runtime/shm_arena.h"

#ifdef __linux__
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace distcache {

#ifdef __linux__

namespace {

constexpr size_t kHugePageBytes = 2u << 20;  // the common 2 MiB hugetlb size

void* TryMap(size_t bytes, int extra_flags) {
  void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_ANONYMOUS | extra_flags, -1, 0);
  return p == MAP_FAILED ? nullptr : p;
}

}  // namespace

bool ShmArena::Map(size_t bytes, bool huge_pages) {
  Unmap();
  if (bytes == 0) {
    bytes = 1;
  }
  if (huge_pages) {
    const size_t rounded = (bytes + kHugePageBytes - 1) & ~(kHugePageBytes - 1);
    if (void* p = TryMap(rounded, MAP_HUGETLB)) {
      base_ = static_cast<uint8_t*>(p);
      size_ = bytes;
      mapped_ = rounded;
      huge_ = true;
      return true;
    }
    // Pool empty or unsupported: fall through to normal pages — the engine
    // works identically, only the TLB footprint differs.
  }
  if (void* p = TryMap(bytes, 0)) {
    base_ = static_cast<uint8_t*>(p);
    size_ = bytes;
    mapped_ = bytes;
    huge_ = false;
    return true;
  }
  return false;
}

void ShmArena::Unmap() {
  if (base_ != nullptr) {
    ::munmap(base_, mapped_);
    base_ = nullptr;
    size_ = 0;
    mapped_ = 0;
    huge_ = false;
  }
}

bool ShmArena::InterleaveAcrossNumaNodes() {
#if defined(SYS_mbind) && defined(SYS_get_mempolicy)
  if (base_ == nullptr) {
    return false;
  }
  // Local copies of the <numaif.h> constants — the syscall ABI is stable and
  // the headers are libnuma's, which the image does not ship.
  constexpr int kMpolInterleave = 3;
  constexpr unsigned long kMpolFMemsAllowed = 1ul << 2;
  constexpr unsigned long kMaxNode = 1024;
  unsigned long nodemask[kMaxNode / (8 * sizeof(unsigned long))] = {0};
  int mode = 0;
  if (::syscall(SYS_get_mempolicy, &mode, nodemask, kMaxNode, nullptr,
                kMpolFMemsAllowed) != 0) {
    return false;
  }
  int nodes = 0;
  for (unsigned long word : nodemask) {
    nodes += __builtin_popcountl(word);
  }
  if (nodes <= 1) {
    return false;  // interleave is a no-op; keep the first-touch default
  }
  return ::syscall(SYS_mbind, base_, mapped_, kMpolInterleave, nodemask,
                   kMaxNode, 0ul) == 0;
#else
  return false;
#endif
}

bool ShmArena::Available(size_t bytes) {
  if (void* p = TryMap(bytes == 0 ? 1 : bytes, 0)) {
    ::munmap(p, bytes == 0 ? 1 : bytes);
    return true;
  }
  return false;
}

bool ShmArena::HugePagesAvailable() {
  if (void* p = TryMap(kHugePageBytes, MAP_HUGETLB)) {
    ::munmap(p, kHugePageBytes);
    return true;
  }
  return false;
}

#else  // !__linux__

bool ShmArena::Map(size_t, bool) { return false; }
void ShmArena::Unmap() {}
bool ShmArena::InterleaveAcrossNumaNodes() { return false; }
bool ShmArena::Available(size_t) { return false; }
bool ShmArena::HugePagesAvailable() { return false; }

#endif

}  // namespace distcache
