// ShmSpscRing — the SpscRing (runtime/spsc_ring.h) ported onto the shared
// arena for cross-process transport.
//
// Same Lamport structure and memory-ordering discipline as the in-process
// ring: producer-released tail, consumer-released head, each on its own cache
// line, with process-*local* cached copies of the opposite index so the common
// case (neither full nor empty) touches only the issuing process's own state
// and the slot bytes. The differences are exactly what crossing an address
// space forces:
//
//   * storage is raw fixed-size slots in the arena (POD bytes, no
//     constructors, no heap payloads — the multiproc wire format serializes
//     into the slot), because a std::vector or shared_ptr crossing a process
//     boundary would be a dangling pointer in the receiver;
//   * the shared state is a plain-offset header + slot array; nothing in the
//     arena is a pointer, so the mapping address does not need to agree
//     across processes (it does anyway, by fork inheritance);
//   * the object each process holds (this class) is a *view*: it lives in
//     process-local memory and carries the producer/consumer index caches, so
//     attaching is free and the caches are private by construction (in the
//     in-process ring the same fields are merely cache-line-separated).
//
// Producer API is acquire-a-slot/publish rather than push-a-T: the sender
// serializes directly into the slot (TryStage returns the slot pointer, or
// null when full), then Publish() releases every staged slot with one tail
// store — the same batched-release idiom as the in-process ring. Consumer API
// is Front()/Pop(): zero-copy deserialize in place, then release the slot.
//
// Capacity must be a power of two; both sides must be constructed with the
// same geometry (the multiproc supervisor computes one layout pre-fork, so
// they are).
#ifndef DISTCACHE_RUNTIME_SHM_RING_H_
#define DISTCACHE_RUNTIME_SHM_RING_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <ctime>

#include "common/cacheline.h"

namespace distcache {

class ShmSpscRing {
 public:
  // Shared header: the two index lines, padded so head can never invalidate
  // tail. Slots follow immediately (offset SlotsOffset()).
  struct SharedHeader {
    alignas(kCacheLineSize) std::atomic<uint64_t> tail;
    alignas(kCacheLineSize) std::atomic<uint64_t> head;
    alignas(kCacheLineSize) uint8_t end_pad[kCacheLineSize];
  };

  static size_t SlotsOffset() { return sizeof(SharedHeader); }
  // Arena bytes for a ring of `capacity` (power of two) slots of `slot_size`
  // bytes, each slot cache-line-aligned.
  static size_t BytesFor(size_t capacity, size_t slot_size) {
    return SlotsOffset() + capacity * AlignedSlotSize(slot_size);
  }
  static size_t AlignedSlotSize(size_t slot_size) {
    return (slot_size + kCacheLineSize - 1) & ~(kCacheLineSize - 1);
  }

  ShmSpscRing() = default;
  // Attaches a view to ring storage at `base` (supervisor-reserved,
  // zero-initialized arena memory — a zeroed SharedHeader is a valid empty
  // ring, so there is no separate Init step to race on).
  ShmSpscRing(void* base, size_t capacity, size_t slot_size)
      : hdr_(static_cast<SharedHeader*>(base)),
        slots_(static_cast<uint8_t*>(base) + SlotsOffset()),
        stride_(AlignedSlotSize(slot_size)),
        slot_size_(slot_size),
        mask_(capacity - 1) {
    assert(capacity != 0 && (capacity & (capacity - 1)) == 0);
  }

  size_t capacity() const { return mask_ + 1; }
  size_t slot_size() const { return slot_size_; }

  // Re-attach after a process respawn (multiproc --respawn): a fresh view's
  // local caches start at zero, which is only correct for a pristine ring.
  // Adopt the shared indices instead: staged_ jumps to the published tail
  // (slots the dead incarnation staged but never published are forgotten —
  // correct, they were never visible to the consumer), and the consumer-side
  // tail cache starts at head so the first Front() re-reads the true tail
  // with acquire semantics rather than trusting a stale bound.
  void SyncFromShared() {
    staged_ = hdr_->tail.load(std::memory_order_acquire);
    head_cache_ = hdr_->head.load(std::memory_order_acquire);
    tail_cache_ = head_cache_;
  }

  // ---- producer side -------------------------------------------------------

  // Claims the next slot for writing without publishing it; returns null when
  // the ring is full. Staged slots become visible at the next Publish().
  void* TryStage() {
    if (staged_ - head_cache_ > mask_) {
      head_cache_ = hdr_->head.load(std::memory_order_acquire);
      if (staged_ - head_cache_ > mask_) {
        return nullptr;  // full
      }
    }
    void* slot = slots_ + (staged_ & mask_) * stride_;
    ++staged_;
    return slot;
  }

  // Releases every staged slot with one tail store. No-op when nothing is
  // staged. The release also orders any *earlier* shared-memory writes of this
  // process (e.g. publishes into other rings) before the tail value — the
  // happens-before edge the multiproc done-protocol leans on.
  void Publish() {
    if (__builtin_expect(drop_next_ != 0 || delay_next_ms_ != 0, 0)) {
      FaultedPublish();
      return;
    }
    if (staged_ != hdr_->tail.load(std::memory_order_relaxed)) {
      hdr_->tail.store(staged_, std::memory_order_release);
    }
  }

  // Fault-injection arms (runtime/fault_plan.h), process-local to this view:
  // both words are zero in a fault-free run, so Publish keeps its two-
  // instruction fast path behind one unlikely branch. ArmDropNext swallows
  // the next `n` Publish batches (the staged slots are rewound to the
  // published tail and never become visible — a dropped control message);
  // ArmDelayNext sleeps the next Publish `ms` wall-milliseconds before the
  // release (a delayed one). Injected here, at the transport seam, so every
  // consumer-side staleness/fallback path is exercised exactly as a real
  // lost/late message would.
  void ArmDropNext(uint32_t n) { drop_next_ += n; }
  void ArmDelayNext(uint32_t ms) { delay_next_ms_ += ms; }

  // ---- consumer side -------------------------------------------------------

  // Oldest unconsumed slot, or null when the ring is (apparently) empty. The
  // slot stays valid until Pop().
  const void* Front() {
    const uint64_t head = hdr_->head.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = hdr_->tail.load(std::memory_order_acquire);
      if (head == tail_cache_) {
        return nullptr;  // empty
      }
    }
    return slots_ + (head & mask_) * stride_;
  }

  // Releases the slot returned by the last non-null Front().
  void Pop() {
    const uint64_t head = hdr_->head.load(std::memory_order_relaxed);
    hdr_->head.store(head + 1, std::memory_order_release);
  }

  // Consumer-side emptiness probe: one acquire load of the producer's tail
  // when the cached bound is exhausted, nothing otherwise.
  bool EmptyApprox() {
    const uint64_t head = hdr_->head.load(std::memory_order_relaxed);
    if (head != tail_cache_) {
      return false;
    }
    tail_cache_ = hdr_->tail.load(std::memory_order_acquire);
    return head == tail_cache_;
  }

 private:
  // Cold path of Publish() when a fault arm is set: consume one drop (rewind
  // the staged batch) or the pending delay (sleep, then release normally).
  void FaultedPublish() {
    if (drop_next_ != 0) {
      --drop_next_;
      staged_ = hdr_->tail.load(std::memory_order_relaxed);
      return;
    }
    const uint32_t ms = delay_next_ms_;
    delay_next_ms_ = 0;
    struct timespec ts {
      static_cast<time_t>(ms / 1000), static_cast<long>(ms % 1000) * 1000000L
    };
    nanosleep(&ts, nullptr);
    if (staged_ != hdr_->tail.load(std::memory_order_relaxed)) {
      hdr_->tail.store(staged_, std::memory_order_release);
    }
  }

  SharedHeader* hdr_ = nullptr;
  uint8_t* slots_ = nullptr;
  size_t stride_ = 0;
  size_t slot_size_ = 0;
  uint64_t mask_ = 0;

  // Process-local index caches (the view object is private to its process, so
  // no alignment gymnastics needed — producer and consumer hold separate
  // views even when they share an address space in tests).
  uint64_t staged_ = 0;      // producer: next slot to write
  uint64_t head_cache_ = 0;  // producer: cached consumer head
  uint64_t tail_cache_ = 0;  // consumer: cached producer tail

  // Producer-side fault arms (see ArmDropNext/ArmDelayNext); zero when no
  // fault plan targets this view.
  uint32_t drop_next_ = 0;
  uint32_t delay_next_ms_ = 0;
};

}  // namespace distcache

#endif  // DISTCACHE_RUNTIME_SHM_RING_H_
