// FaultPlan — a deterministic, seeded schedule of injected faults for the
// multiproc engine (the chaos layer behind --fault-plan / --fault-seed).
//
// The plan is a list of FaultEvents, each timestamped in *config requests*
// (the same clock ClusterEvent uses: an event at `at_request` fires when the
// owning shard's local request counter crosses at_request * quota_scale).
// Every fault class the multiproc substrate can suffer in production has an
// injectable equivalent:
//
//   kind       spec name  effect at the hook point
//   ---------  ---------  ------------------------------------------------
//   kCrashClean  exit     shard process _exit(0)s WITHOUT publishing its
//                         done-state — the "clean exit that wasn't": the
//                         supervisor must notice the missing state word, not
//                         trust the exit code.
//   kCrashKill   kill     raise(SIGKILL): the PR 8 crash class.
//   kCrashAbort  abort    abort() with core dumps disabled.
//   kStall       stall    the shard sleeps `param` wall-ms without bumping
//                         its heartbeat — a straggler; survivable when the
//                         supervisor's dead-deadline is larger.
//   kDropTelemetry drop   the next `param` telemetry broadcasts are armed to
//                         drop at the shm-ring view (published slots are
//                         swallowed): peers' load views go stale.
//   kDelayControl delay   the next control-plane publish is delayed `param`
//                         wall-ms at the ring view.
//   kCorruptStats corrupt the shard's quota-end stats blob is corrupted
//                         after its CRC is computed; the supervisor must
//                         detect the mismatch and count the shard failed
//                         rather than deserialize garbage.
//   kArenaMapFail mapfail LayoutAndMapArena reports failure before any fork
//                         (allocation-failure path; the run fails cleanly).
//
// Injection is branch-free when the plan is empty: the engines test one
// unlikely flag per batch (exactly the idiom of the PR 8 crash hook), so an
// empty plan stays bit-identical to the fault-free goldens.
//
// Determinism: events fire on the deterministic per-shard request clock, and
// each event has a one-shot latch in the shared arena, so a respawned shard
// incarnation replays its stream without re-firing faults that already fired.
#ifndef DISTCACHE_RUNTIME_FAULT_PLAN_H_
#define DISTCACHE_RUNTIME_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace distcache {

enum class FaultKind : uint8_t {
  kCrashClean = 0,
  kCrashKill = 1,
  kCrashAbort = 2,
  kStall = 3,
  kDropTelemetry = 4,
  kDelayControl = 5,
  kCorruptStats = 6,
  kArenaMapFail = 7,
};

// Stable spec name ("exit", "kill", ...) for messages and JSON.
const char* FaultKindName(FaultKind kind);
// Parses a spec name back to a kind; false on unknown names.
bool ParseFaultKind(const std::string& name, FaultKind* kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kCrashKill;
  uint32_t shard = 0;        // target shard index (ignored for mapfail)
  uint64_t at_request = 0;   // config-request timestamp (ClusterEvent clock)
  uint64_t param = 0;        // stall/delay: wall ms; drop: publish count
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  // True when any event asks for the arena-map-failure simulation (checked
  // before the arena is mapped, so it cannot carry a shard/time).
  bool arena_map_failure() const;
  // Largest param among stall events (the supervisor sizes nothing off this;
  // benches use it to budget wall deadlines).
  uint64_t max_stall_ms() const;
};

// Parses a --fault-plan spec: comma-separated terms, each either
//   <kind>:<shard>@<at>[:<param>]   one explicit event, or
//   mapfail                          the arena-map-failure simulation, or
//   random:<count>[:<kind>]         `count` seeded events (uniform shard,
//                                    timestamps in the middle 70% of the run,
//                                    kind fixed or sampled per event)
// `shards`/`num_requests`/`seed` feed the random generator. Returns false and
// fills *error on malformed specs; an empty spec yields an empty plan.
bool ParseFaultPlan(const std::string& spec, uint32_t shards,
                    uint64_t num_requests, uint64_t seed, FaultPlan* plan,
                    std::string* error);

// The `random:` generator, directly: `count` events for `shards` shards over a
// `num_requests` run. Same seed ⇒ same plan (xoshiro stream keyed off `seed`).
// `kind_or_negative` < 0 samples a kind per event from the non-mapfail
// classes; otherwise every event uses that FaultKind.
FaultPlan GenerateFaultPlan(uint64_t seed, int kind_or_negative, uint32_t count,
                            uint32_t shards, uint64_t num_requests);

// Human-readable one-line form of the plan (spec grammar), for logs/JSON.
std::string FaultPlanToString(const FaultPlan& plan);

}  // namespace distcache

#endif  // DISTCACHE_RUNTIME_FAULT_PLAN_H_
