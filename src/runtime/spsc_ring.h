// Bounded lock-free single-producer/single-consumer ring — the data-plane
// transport of the sharded engine.
//
// The mutex Channel (runtime/channel.h) remains the *control* transport
// (timeline multicast, re-allocation rendezvous, shutdown markers): those are
// O(reconfigurations) messages where a mutex is free and blocking semantics are
// convenient. Everything rate-proportional to request volume — telemetry
// partials and end-of-run load deltas — travels over one SpscRing per directed
// shard pair, so the request loop's batch-boundary poll is a single acquire
// load per peer and a Send never takes a lock or wakes a futex.
//
// Layout: the classic Lamport ring with head (consumer) and tail (producer)
// indices on their own cache lines, plus a producer-side cached copy of head
// and a consumer-side cached copy of tail. The caches make the common case —
// ring neither full nor empty — touch only the issuing thread's own line and
// the slot itself: the shared index line is read only when the cached bound is
// exhausted, which amortizes cross-core traffic over capacity-many operations
// (Lee et al.'s "FastForward"-style refinement; same trick as folly
// ProducerConsumerQueue).
//
// Batched publish: TryStage() writes a slot without making it visible;
// Publish() releases every staged slot with one tail store. A producer that
// emits several messages at one batch boundary (telemetry fan-out assembles
// one message per peer, but a flush can emit deltas + telemetry to the same
// peer) pays one release store instead of one per message. TryPush() is the
// stage+publish shorthand.
//
// Memory ordering: Publish() stores tail with release after the slot moves;
// TryPop() loads tail with acquire before reading the slot, and stores head
// with release after destroying it. A full ring rejects the push (returns
// false) — callers decide the backpressure policy (the sharded backend drains
// its own inboxes and retries, which cannot deadlock because every shard's
// send loop also consumes).
#ifndef DISTCACHE_RUNTIME_SPSC_RING_H_
#define DISTCACHE_RUNTIME_SPSC_RING_H_

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "common/cacheline.h"

namespace distcache {

template <typename T>
class SpscRing {
 public:
  // Capacity is rounded up to a power of two (masked index arithmetic); the
  // ring holds up to that many items.
  explicit SpscRing(size_t capacity) {
    size_t cap = 1;
    while (cap < capacity) {
      cap <<= 1;
    }
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
  }

  ~SpscRing() {
    // Drain destructively, including staged-but-unpublished slots: a ring is
    // only destroyed after its producer and consumer threads joined, so every
    // write is visible here.
    for (size_t i = head_.load(std::memory_order_relaxed); i != staged_; ++i) {
      slots_[i & mask_].Destroy();
    }
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return mask_ + 1; }

  // ---- producer side -------------------------------------------------------

  // Writes `item` into the next slot *without publishing it*. Returns false
  // (item untouched) when the ring is full. Staged items become visible to the
  // consumer only at the next Publish().
  bool TryStage(T&& item) {
    if (staged_ - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (staged_ - head_cache_ > mask_) {
        return false;  // full
      }
    }
    slots_[staged_ & mask_].Construct(std::move(item));
    ++staged_;
    return true;
  }

  // Releases every staged slot with one tail store. No-op when nothing is
  // staged.
  void Publish() {
    if (staged_ != tail_.load(std::memory_order_relaxed)) {
      tail_.store(staged_, std::memory_order_release);
    }
  }

  // Stage + publish in one call. Returns false when full.
  bool TryPush(T&& item) {
    if (!TryStage(std::move(item))) {
      return false;
    }
    Publish();
    return true;
  }

  // ---- consumer side -------------------------------------------------------

  // Pops the oldest item, or nullopt when the ring is (apparently) empty.
  std::optional<T> TryPop() {
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) {
        return std::nullopt;  // empty
      }
    }
    Slot& slot = slots_[head & mask_];
    std::optional<T> item(std::move(*slot.Get()));
    slot.Destroy();
    head_.store(head + 1, std::memory_order_release);
    return item;
  }

  // Consumer-side emptiness probe: one acquire load of the producer's tail when
  // the cached bound is exhausted, nothing otherwise. May report "empty" for a
  // push that has not yet published — exactly the staleness TryPop tolerates.
  bool EmptyApprox() {
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head != tail_cache_) {
      return false;
    }
    tail_cache_ = tail_.load(std::memory_order_acquire);
    return head == tail_cache_;
  }

 private:
  // Manually-managed storage: slots outside [head, tail) hold no live T.
  struct Slot {
    alignas(T) unsigned char storage[sizeof(T)];

    void Construct(T&& item) { ::new (storage) T(std::move(item)); }
    T* Get() { return std::launder(reinterpret_cast<T*>(storage)); }
    void Destroy() { Get()->~T(); }
  };

  std::unique_ptr<Slot[]> slots_;
  size_t mask_ = 0;

  // Producer-owned line: staged (next slot to write) + cached consumer head.
  alignas(kCacheLineSize) size_t staged_ = 0;
  size_t head_cache_ = 0;
  // Shared index lines, one each so a head update never invalidates tail.
  alignas(kCacheLineSize) std::atomic<size_t> tail_{0};
  alignas(kCacheLineSize) std::atomic<size_t> head_{0};
  // Consumer-owned line: cached producer tail.
  alignas(kCacheLineSize) size_t tail_cache_ = 0;
};

}  // namespace distcache

#endif  // DISTCACHE_RUNTIME_SPSC_RING_H_
