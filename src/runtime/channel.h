// Blocking MPMC channel — the message transport between node threads in the runtime.
//
// Shutdown discipline: a channel is closed by its consumer side (Close or
// CloseAndDrain). Send() on a closed channel is *rejected*, never silently
// enqueued — the bool return is the only delivery signal a producer gets, so it
// is [[nodiscard]]: every caller must either handle a false result (reply
// unavailable, count a drop, ...) or deliberately discard it with a cast. This is
// the compile-time regression guard for the stranded-message class of shutdown
// bug (a producer that assumes delivery while the consumer is gone). The channel
// also counts post-close sends (rejected_sends(), maintained in every build
// type) so tests and shutdown paths can assert the rejections were observed.
#ifndef DISTCACHE_RUNTIME_CHANNEL_H_
#define DISTCACHE_RUNTIME_CHANNEL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace distcache {

template <typename T>
class Channel {
 public:
  // Enqueues `item` unless the channel is closed. Returns false — and drops the
  // item — when closed; see the header comment for the caller contract.
  //
  // The notify happens *under* the mutex, deliberately: reply channels are
  // owned by short-lived consumers (a runtime Client), and a consumer that
  // wakes from Receive(), takes the item and returns may destroy the channel
  // immediately. Holding mu_ across the signal pins the waiter inside wait()
  // until the signal completes, so the condvar can never be destroyed mid-
  // notify. (Signal-after-unlock is the textbook micro-optimization and was a
  // TSan-caught use-after-free here.)
  [[nodiscard]] bool Send(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      ++rejected_sends_;
      return false;
    }
    items_.push_back(std::move(item));
    approx_size_.store(items_.size(), std::memory_order_release);
    cv_.notify_one();
    return true;
  }

  // Non-blocking receive: returns nullopt when the queue is momentarily empty, even
  // if the channel is still open. Shard workers poll their inbox with this at batch
  // boundaries, so the empty case must cost no mutex acquisition: one acquire load
  // of the size the producers maintain answers it. A Send racing the load is seen
  // one poll later — the same staleness a TryReceive that lost the lock race always
  // had.
  std::optional<T> TryReceive() {
    if (approx_size_.load(std::memory_order_acquire) == 0) {
      return std::nullopt;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    approx_size_.store(items_.size(), std::memory_order_release);
    return item;
  }

  // Blocks until an item is available or the channel is closed and drained.
  std::optional<T> Receive() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    approx_size_.store(items_.size(), std::memory_order_release);
    return item;
  }

  // Closes the channel: subsequent Sends are rejected; queued items remain
  // receivable until drained (Receive returns them, then nullopt). Notify under
  // the lock for the same lifetime reason as Send.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    cv_.notify_all();
  }

  // Closes the channel and hands back everything still undelivered, atomically:
  // no concurrent Send can interleave between the close and the drain, so after
  // this call the returned vector is exactly the set of messages no consumer will
  // ever see. Shutdown paths use it to account for in-flight work (re-reply,
  // count, or assert-empty) instead of silently stranding it — the PR-2
  // stranded-Receive() bug class. Blocked Receive() calls wake and return nullopt.
  std::vector<T> CloseAndDrain() {
    std::vector<T> undelivered;
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    undelivered.assign(std::make_move_iterator(items_.begin()),
                       std::make_move_iterator(items_.end()));
    items_.clear();
    approx_size_.store(0, std::memory_order_release);
    cv_.notify_all();
    return undelivered;
  }

  // Number of Sends rejected because the channel was already closed. Debug/test
  // instrumentation for shutdown-path assertions; always available but only
  // meaningful where the shutdown order is deterministic.
  size_t rejected_sends() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rejected_sends_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  // True once Close()/CloseAndDrain() ran. Poll-style consumers (the sharded
  // engine's control waits) use this as their shutdown signal, since TryReceive
  // cannot distinguish "empty" from "closed and drained".
  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  // Lock-free emptiness probe — the same acquire load TryReceive's fast path
  // uses, exposed so callers can classify a poll (and count it) without paying
  // for the classification inside every TryReceive (wait loops spin on
  // TryReceive and must not pollute hot-path poll statistics).
  bool empty_approx() const {
    return approx_size_.load(std::memory_order_acquire) == 0;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
  size_t rejected_sends_ = 0;
  // Queue length mirror maintained under mu_, read lock-free by the TryReceive
  // fast path (the batch-boundary poll of the sharded engine).
  std::atomic<size_t> approx_size_{0};
};

}  // namespace distcache

#endif  // DISTCACHE_RUNTIME_CHANNEL_H_
