// Blocking MPMC channel — the message transport between node threads in the runtime.
#ifndef DISTCACHE_RUNTIME_CHANNEL_H_
#define DISTCACHE_RUNTIME_CHANNEL_H_

#include <cstddef>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace distcache {

template <typename T>
class Channel {
 public:
  // Returns false if the channel is closed.
  bool Send(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        return false;
      }
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  // Non-blocking receive: returns nullopt when the queue is momentarily empty, even
  // if the channel is still open. Shard workers poll their inbox with this at batch
  // boundaries so cross-shard load deltas are absorbed without ever blocking the
  // request hot path.
  std::optional<T> TryReceive() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Blocks until an item is available or the channel is closed and drained.
  std::optional<T> Receive() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace distcache

#endif  // DISTCACHE_RUNTIME_CHANNEL_H_
