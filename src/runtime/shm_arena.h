// Fixed-layout shared-memory arena — the transport substrate of the
// multi-process sharded engine (sim/multiproc_backend.h).
//
// One anonymous MAP_SHARED region is mapped by the supervisor *before* it forks
// the shard processes; every child inherits the mapping at the same virtual
// address, so the region needs no name to unlink, no fixed-address negotiation,
// and — unlike a SysV/POSIX segment attached post-exec — plain pointers into it
// are valid in every process (the SBLLmalloc shared-heap idiom: one
// page-granular region, layout fixed up front, processes communicate through
// offsets computed against a common base). Everything cross-process lives here:
// one ShmSpscRing per directed shard pair (data + control plane), the
// supervisor's control block (abort flag, per-shard completion states) and one
// serialized-BackendStats region per shard for the quota-end merge.
//
// Huge pages: Map(bytes, /*huge_pages=*/true) first tries MAP_HUGETLB with the
// size rounded up to 2 MiB and falls back to normal pages when the pool is
// empty or the kernel lacks support — the run proceeds either way and
// ShmArena::huge() reports what actually backed the region (surfaced in the
// bench substrate column). See the CMU-CORGI LLC-port docs / SBLLmalloc notes
// referenced from ROADMAP for the hugepage pool setup itself
// (vm.nr_hugepages); nothing here requires it.
//
// Layout discipline: ArenaLayout is a bump allocator over *offsets* run twice —
// once before Map() to size the region, once after to hand out the same
// offsets as pointers. Alignment floor is the cache line, so no two
// independently-reserved blocks can share a line (the false-sharing rule the
// in-process rings already follow).
#ifndef DISTCACHE_RUNTIME_SHM_ARENA_H_
#define DISTCACHE_RUNTIME_SHM_ARENA_H_

#include <cstddef>
#include <cstdint>

#include "common/cacheline.h"

namespace distcache {

// Offset bump allocator for the arena's fixed layout.
class ArenaLayout {
 public:
  // Reserves `bytes` aligned to max(align, cache line); returns the offset.
  size_t Reserve(size_t bytes, size_t align = kCacheLineSize) {
    if (align < kCacheLineSize) {
      align = kCacheLineSize;
    }
    total_ = (total_ + align - 1) & ~(align - 1);
    const size_t offset = total_;
    total_ += bytes;
    return offset;
  }
  size_t total() const { return total_; }

 private:
  size_t total_ = 0;
};

class ShmArena {
 public:
  ShmArena() = default;
  ~ShmArena() { Unmap(); }

  ShmArena(const ShmArena&) = delete;
  ShmArena& operator=(const ShmArena&) = delete;

  // Maps `bytes` of zero-filled shared memory (anonymous, inherited across
  // fork). With `huge_pages`, tries a 2 MiB-page backing first and silently
  // falls back. Returns false only when even the normal-page mapping fails
  // (address space / memory exhaustion).
  bool Map(size_t bytes, bool huge_pages);
  // Releases the mapping (the process's view; the region itself dies with the
  // last attached process). Idempotent — the teardown the ASan test pins.
  void Unmap();

  bool mapped() const { return base_ != nullptr; }
  bool huge() const { return huge_; }
  size_t size() const { return size_; }
  uint8_t* base() const { return base_; }
  uint8_t* At(size_t offset) const { return base_ + offset; }

  // Best-effort MPOL_INTERLEAVE across every NUMA node the process is allowed
  // to allocate on (the multiproc --numa-interleave flag; raw mbind syscall, no
  // libnuma dependency). Call after Map() and before the region is faulted —
  // the policy binds pages at first touch, so already-faulted pages keep their
  // node. Returns false, leaving the first-touch default in place, on
  // single-node hosts, non-Linux builds and kernels without mbind.
  bool InterleaveAcrossNumaNodes();

  // Probe: can a region of `bytes` be mapped right now (normal pages)? Used by
  // the bench/CI detect-and-skip path — maps and immediately unmaps.
  static bool Available(size_t bytes);
  // Probe: does a MAP_HUGETLB mapping of one huge page succeed right now?
  // (Reserved pool non-empty and kernel support present.)
  static bool HugePagesAvailable();

 private:
  uint8_t* base_ = nullptr;
  size_t size_ = 0;    // bytes requested
  size_t mapped_ = 0;  // bytes actually mapped (huge rounds up)
  bool huge_ = false;
};

}  // namespace distcache

#endif  // DISTCACHE_RUNTIME_SHM_ARENA_H_
