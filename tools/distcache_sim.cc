// distcache_sim — command-line driver for the cluster simulator.
//
// Examples:
//   distcache_sim --mechanism=distcache --racks=32 --servers-per-rack=32
//                 --zipf=0.99 --cache-per-switch=100   (one command line)
//   distcache_sim --mechanism=nocache --zipf=0.9 --write-ratio=0.2
//   distcache_sim --mechanism=distcache --latency --load=0.5
//   distcache_sim --mechanism=distcache --fail-spines=4 --offered=512
//   distcache_sim --backend=sharded --shards=4 --requests=2000000
#include <cstdio>
#include <memory>
#include <string>

#include "cluster/cluster_sim.h"
#include "cluster/latency.h"
#include "sim/sim_backend.h"
#include "tools/flags.h"

namespace distcache {
namespace {

Mechanism ParseMechanism(const std::string& name) {
  if (name == "nocache") {
    return Mechanism::kNoCache;
  }
  if (name == "partition") {
    return Mechanism::kCachePartition;
  }
  if (name == "replication") {
    return Mechanism::kCacheReplication;
  }
  return Mechanism::kDistCache;
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::printf(
        "usage: distcache_sim [--mechanism=distcache|replication|partition|nocache]\n"
        "  [--spines=N] [--racks=N] [--servers-per-rack=N] [--cache-per-switch=N]\n"
        "  [--keys=N] [--zipf=T] [--write-ratio=W] [--seed=S]\n"
        "  [--routing=pot|random|first] [--stale-telemetry] [--uncapped]\n"
        "  [--latency --load=F] [--fail-spines=K --offered=R]\n"
        "  [--backend=sequential|sharded|fluid --shards=N --requests=N\n"
        "   --batch=N --epoch=N]   (request-level engine run)\n"
        "  [--backend=... --fail-spines=K [--fail-at=R] [--remap-at=R]\n"
        "   [--recover-at=R] [--sample=N]]   (failure timeline: fail spines 0..K-1\n"
        "   at request fail-at, controller recovery at remap-at, switches restored\n"
        "   at recover-at; --sample prints the per-interval time series)\n");
    return 0;
  }
  ClusterConfig cfg;
  cfg.mechanism = ParseMechanism(flags.GetString("mechanism", "distcache"));
  cfg.num_spine = static_cast<uint32_t>(flags.GetUint("spines", 32));
  cfg.num_racks = static_cast<uint32_t>(flags.GetUint("racks", 32));
  cfg.servers_per_rack = static_cast<uint32_t>(flags.GetUint("servers-per-rack", 32));
  cfg.per_switch_objects =
      static_cast<uint32_t>(flags.GetUint("cache-per-switch", 100));
  cfg.num_keys = flags.GetUint("keys", 100'000'000);
  cfg.zipf_theta = flags.GetDouble("zipf", 0.99);
  cfg.write_ratio = flags.GetDouble("write-ratio", 0.0);
  cfg.seed = flags.GetUint("seed", 42);
  cfg.stale_telemetry = flags.GetBool("stale-telemetry", false);
  cfg.cap_at_server_aggregate = !flags.GetBool("uncapped", false);
  const std::string routing = flags.GetString("routing", "pot");
  cfg.routing = routing == "random"  ? RoutingPolicy::kRandom
                : routing == "first" ? RoutingPolicy::kFirstChoice
                                     : RoutingPolicy::kPowerOfTwo;

  std::printf("mechanism=%s  %u spines, %u racks x %u servers, cache %u/switch, %s, "
              "write ratio %.2f\n",
              MechanismName(cfg.mechanism).c_str(), cfg.num_spine, cfg.num_racks,
              cfg.servers_per_rack, cfg.per_switch_objects,
              cfg.zipf_theta > 0 ? ("zipf-" + std::to_string(cfg.zipf_theta)).c_str()
                                 : "uniform",
              cfg.write_ratio);

  if (flags.Has("backend")) {
    // Request-level engine run through the pluggable SimBackend interface.
    const std::string backend_name = flags.GetString("backend", "sequential");
    if (backend_name != "sequential" && backend_name != "sharded" &&
        backend_name != "fluid") {
      std::fprintf(stderr, "unknown --backend=%s (want sequential|sharded|fluid)\n",
                   backend_name.c_str());
      return 1;
    }
    // The remaining fluid-model-only modes and ablations are not implemented by
    // the request-level engines; refuse rather than silently ignore them.
    for (const char* incompatible : {"latency", "stale-telemetry", "uncapped"}) {
      if (flags.Has(incompatible)) {
        std::fprintf(stderr, "--%s is a fluid-model mode; it cannot be combined "
                             "with --backend\n", incompatible);
        return 1;
      }
    }
    SimBackendConfig bcfg;
    bcfg.cluster = cfg;
    bcfg.shards = static_cast<uint32_t>(flags.GetUint("shards", 1));
    if (bcfg.shards == 0) {
      bcfg.shards = 1;  // ShardMap clamps too; clamp here so the report matches
    }
    bcfg.batch_size = static_cast<uint32_t>(flags.GetUint("batch", 64));
    bcfg.epoch_requests = flags.GetUint("epoch", 4096);
    const uint64_t requests = flags.GetUint("requests", 2'000'000);
    bcfg.sample_interval = flags.GetUint("sample", 0);
    if (flags.Has("fail-spines")) {
      // Failure timeline (§4.4 / Fig. 11): spines 0..K-1 fail at --fail-at, the
      // controller remaps their partitions at --remap-at, and the switches come
      // back (partitions return home) at --recover-at.
      const auto k = static_cast<uint32_t>(flags.GetUint("fail-spines", 1));
      const uint64_t fail_at = flags.GetUint("fail-at", requests / 5);
      const uint64_t remap_at = flags.GetUint("remap-at", requests / 2);
      const uint64_t recover_at = flags.GetUint("recover-at", requests * 3 / 4);
      for (uint32_t s = 0; s < k && s < cfg.num_spine; ++s) {
        bcfg.events.push_back(ClusterEvent::FailSpine(fail_at, s));
        bcfg.events.push_back(ClusterEvent::RecoverSpine(recover_at, s));
      }
      bcfg.events.push_back(ClusterEvent::RunRecovery(remap_at));
    }
    auto backend = MakeSimBackend(ParseBackendKind(backend_name), bcfg);
    const BackendStats stats = backend->Run(requests);
    std::printf(
        "backend=%s shards=%u: %llu requests in %.3fs (%.2f Mreq/s)\n"
        "  hit ratio %.4f (spine %llu, leaf %llu, server reads %llu)\n"
        "  cache imbalance (max/mean) %.3f  server imbalance %.3f\n"
        "  cross-shard messages %llu  dropped %llu\n",
        backend->name().c_str(), bcfg.shards,
        static_cast<unsigned long long>(stats.requests), stats.wall_seconds,
        stats.throughput_mrps(), stats.hit_ratio(),
        static_cast<unsigned long long>(stats.spine_hits),
        static_cast<unsigned long long>(stats.leaf_hits),
        static_cast<unsigned long long>(stats.server_reads),
        stats.CacheImbalance(), stats.ServerImbalance(),
        static_cast<unsigned long long>(stats.cross_shard_messages),
        static_cast<unsigned long long>(stats.dropped));
    if (!stats.series.empty()) {
      std::printf("  %-10s %10s %10s %10s\n", "interval", "delivered", "dropped",
                  "hit-ratio");
      for (size_t i = 0; i < stats.series.size(); ++i) {
        const auto& pt = stats.series[i];
        std::printf("  %-10zu %9.1f%% %10llu %10.4f\n", i,
                    100.0 * pt.delivered_fraction(),
                    static_cast<unsigned long long>(pt.dropped), pt.hit_ratio());
      }
    }
    return 0;
  }

  ClusterSim sim(cfg);
  if (flags.Has("fail-spines")) {
    const auto k = static_cast<uint32_t>(flags.GetUint("fail-spines", 1));
    const double offered = flags.GetDouble("offered", 0.5 * sim.TotalServerCapacity());
    std::printf("offered rate %.0f\n", offered);
    std::printf("healthy            : %8.0f\n", sim.AchievedThroughput(offered));
    for (uint32_t s = 0; s < k && s < cfg.num_spine; ++s) {
      sim.FailSpine(s);
    }
    std::printf("%u spines failed   : %8.0f\n", k, sim.AchievedThroughput(offered));
    sim.RunFailureRecovery();
    std::printf("after recovery     : %8.0f\n", sim.AchievedThroughput(offered));
    return 0;
  }

  if (flags.Has("latency")) {
    const double load = flags.GetDouble("load", 0.5);
    const LatencyReport report =
        ComputeLatencyReport(sim, load * sim.TotalServerCapacity());
    std::printf("latency @ %.0f%% load: mean=%.2f p50=%.2f p95=%.2f p99=%.2f "
                "(hit fraction %.2f)\n",
                100 * load, report.mean, report.p50, report.p95, report.p99,
                report.hit_fraction);
    return 0;
  }

  const double throughput = sim.SaturationThroughput();
  std::printf("saturation throughput: %.0f (x one storage server; aggregate %.0f)\n",
              throughput, sim.TotalServerCapacity());
  return 0;
}

}  // namespace
}  // namespace distcache

int main(int argc, char** argv) { return distcache::Run(argc, argv); }
