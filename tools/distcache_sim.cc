// distcache_sim — command-line driver for the cluster simulator.
//
// Examples:
//   distcache_sim --mechanism=distcache --racks=32 --servers-per-rack=32
//                 --zipf=0.99 --cache-per-switch=100   (one command line)
//   distcache_sim --mechanism=nocache --zipf=0.9 --write-ratio=0.2
//   distcache_sim --mechanism=distcache --latency --load=0.5
//   distcache_sim --mechanism=distcache --fail-spines=4 --offered=512
//   distcache_sim --backend=sharded --shards=4 --requests=2000000
//   distcache_sim --backend=multiproc --shards=4 --pin-cores --requests=2000000
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_sim.h"
#include "cluster/latency.h"
#include "runtime/fault_plan.h"
#include "sim/sim_backend.h"
#include "tools/flags.h"

namespace distcache {
namespace {

// Printable name for a BackendStats::FaultRecord kind: injected FaultKinds
// (< 16) keep their plan spelling; supervisor observations get their own.
const char* FaultRecordName(uint32_t kind) {
  if (kind < 16) {
    return FaultKindName(static_cast<FaultKind>(kind));
  }
  switch (kind) {
    case BackendStats::FaultRecord::kShardDeath: return "death";
    case BackendStats::FaultRecord::kShardRespawn: return "respawn";
    case BackendStats::FaultRecord::kShardDeclaredDead: return "declared-dead";
    case BackendStats::FaultRecord::kHeartbeatWarn: return "hb-warn";
    case BackendStats::FaultRecord::kControllerFailover: return "failover";
    case BackendStats::FaultRecord::kStatsCrcMismatch: return "crc-mismatch";
    case BackendStats::FaultRecord::kArenaMapFailed: return "map-fail";
    default: return "?";
  }
}

Mechanism ParseMechanism(const std::string& name) {
  if (name == "nocache") {
    return Mechanism::kNoCache;
  }
  if (name == "partition") {
    return Mechanism::kCachePartition;
  }
  if (name == "replication") {
    return Mechanism::kCacheReplication;
  }
  return Mechanism::kDistCache;
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::printf(
        "usage: distcache_sim [--mechanism=distcache|replication|partition|nocache]\n"
        "  [--spines=N] [--racks=N] [--servers-per-rack=N] [--cache-per-switch=N]\n"
        "  [--keys=N] [--zipf=T] [--write-ratio=W] [--seed=S]\n"
        "  [--routing=pot|random|first] [--stale-telemetry] [--uncapped]\n"
        "  [--latency --load=F] [--fail-spines=K --offered=R]\n"
        "  [--backend=sequential|sharded|multiproc|fluid --shards=N\n"
        "   --requests=N --batch=N --epoch=N]   (request-level engine run;\n"
        "   multiproc runs one forked, shared-memory shard process per shard)\n"
        "  [--backend=sharded|multiproc --pin-cores]   (pin each shard to a\n"
        "   core: threads in-process, whole processes for multiproc)\n"
        "  [--backend=multiproc --huge-pages]   (try 2 MiB pages for the shared\n"
        "   arena; silently falls back when the hugepage pool is empty)\n"
        "  [--backend=multiproc --numa-interleave]   (interleave the shared\n"
        "   arena's pages across NUMA nodes; no-op on single-node hosts)\n"
        "  [--backend=multiproc --respawn [--respawn-limit=N]]   (respawn a\n"
        "   shard process that dies mid-run, up to N times per shard (default 3);\n"
        "   past the budget the shard is declared dead and the survivors finish\n"
        "   degraded — the summary reports respawns and the degraded fraction)\n"
        "  [--backend=multiproc --fault-plan=SPEC [--fault-seed=S]]   (seeded\n"
        "   fault injection, runtime/fault_plan.h: SPEC is comma-separated\n"
        "   events kind:shard@request[:param] with kinds exit|kill|abort|stall|\n"
        "   drop|delay|corrupt, plus 'mapfail' and 'random:count[:kind]' drawn\n"
        "   from --fault-seed (default --seed); an empty plan is bit-identical\n"
        "   to a fault-free run)\n"
        "  [--backend=multiproc --heartbeat-warn-ms=D --heartbeat-dead-ms=D]\n"
        "   (supervisor liveness ladder: a shard silent for warn-ms counts a\n"
        "   heartbeat miss, one silent for dead-ms is killed into the\n"
        "   respawn-or-degrade path; 0 disables a rung)\n"
        "  [--deadline-sec=N]   (wall-clock watchdog: the whole invocation is\n"
        "   killed with exit code 4 after N seconds; default off, armed in CI)\n"
        "   exit codes: 0 clean run, 1 usage/config error, 2 failed shard\n"
        "   processes (stats partial), 4 deadline exceeded (3 is reserved for\n"
        "   bench gate failures, e.g. bench_chaos --gate)\n"
        "  [--backend=... --two-level]   (O(hot) two-level workload sampler —\n"
        "   alias table over the hot head + closed-form capped-Zipf tail —\n"
        "   instead of the dense O(pool) inverse-CDF; different RNG stream, so\n"
        "   aggregates match statistically, not bit for bit)\n"
        "  [--backend=... --dense-routes]   (pre-PR-9 dense O(pool) route\n"
        "   tables, for memory A/B runs; results are bit-identical either way)\n"
        "  [--backend=... --fail-spines=K [--fail-at=R] [--remap-at=R]\n"
        "   [--recover-at=R] [--sample=N]]   (failure timeline: fail spines 0..K-1\n"
        "   at request fail-at, controller recovery at remap-at, switches restored\n"
        "   at recover-at; --sample prints the per-interval time series)\n"
        "  [--backend=... --shift-at=R [--shift-by=K] [--realloc-at=R]]\n"
        "   (hot-spot shift: rotate the hot set by K keys (default keys/2) at\n"
        "   request shift-at; the controller re-allocates the cache from observed\n"
        "   heavy-hitter counts at realloc-at)\n"
        "  [--backend=... --phases=start:theta:write[:shift],...]\n"
        "   (workload phase timeline: switch skew / write ratio / hot rotation at\n"
        "   the given request timestamps)\n"
        "  [--backend=... --arrival-rate=R [--burst=factor:every:duration]\n"
        "   [--service-rates=a,b,...] [--server-rate=S] [--hop-cost=H]]\n"
        "   (open-loop virtual time: Poisson arrivals at absolute rate R, in\n"
        "   units of one storage server's service rate — compare against\n"
        "   racks*servers-per-rack; --burst multiplies the rate by `factor` for\n"
        "   `duration` time units every `every`. Each request queues FIFO at its\n"
        "   serving node — exponential service at the per-cache-layer\n"
        "   --service-rates (default: a rack's aggregate) or --server-rate\n"
        "   (default 1) — plus H per network hop, and the run summary gains the\n"
        "   measured latency distribution. Counters stay bit-identical to the\n"
        "   closed-loop run with the same seed)\n"
        "  [--cache-policy=distcache|static-topk|lru|lfu|fifo|segmented]\n"
        "  [--hierarchy=inclusive|exclusive] [--write-policy=write-through|write-back]\n"
        "   (per-node cache semantics, core/cache_policy.h: distcache is the\n"
        "   paper's static balanced allocation + PoT routing; static-topk keeps\n"
        "   the static contents but routes to the first alive candidate; the\n"
        "   dynamic policies run per-node admission/replacement in the request\n"
        "   engines and per-policy closed forms in the fluid engine. The\n"
        "   hierarchy and write knobs apply to dynamic policies only)\n"
        "  [--layers=L] [--layer-sizes=a,b,c] [--layer-cache=x,y,z]\n"
        "   (multi-layer hierarchical caching, §3.1: L cache layers, top first;\n"
        "   the last layer is the rack-bound leaf layer, so its size must equal\n"
        "   --racks (or sets it when --racks is not given). --layer-sizes\n"
        "   defaults every layer to --racks nodes; --layer-cache defaults every\n"
        "   layer to --cache-per-switch objects per node; a single value\n"
        "   broadcasts to all L layers)\n");
    return 0;
  }
  std::string error;
  // Wall-clock watchdog (--deadline-sec): a detached thread that _exits(4)
  // when the budget runs out — armed before any simulation work, so even a
  // wedged engine (the thing the fault tests exist to rule out) cannot hang
  // a CI job past its deadline.
  {
    uint64_t deadline_sec = 0;
    if (!flags.GetUintChecked("deadline-sec", 0, &deadline_sec, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    if (deadline_sec != 0) {
      std::thread([deadline_sec] {
        std::this_thread::sleep_for(std::chrono::seconds(deadline_sec));
        std::fprintf(stderr, "error: --deadline-sec=%llu exceeded\n",
                     static_cast<unsigned long long>(deadline_sec));
        _exit(4);
      }).detach();
    }
  }
  ClusterConfig cfg;
  cfg.mechanism = ParseMechanism(flags.GetString("mechanism", "distcache"));
  // Validated knobs: a NaN/negative/garbled value would silently skew every
  // derived number (or wrap through strtoull), so refuse instead.
  const auto uint32_flag = [&](const char* name, uint32_t def,
                               uint32_t* out) -> bool {
    uint64_t value = 0;
    if (!flags.GetUintChecked(name, def, &value, &error)) {
      return false;
    }
    if (value == 0 || value > 0xffffffffULL) {
      error = "--" + std::string(name) + "=" + std::to_string(value) +
              ": want an integer in [1, 2^32)";
      return false;
    }
    *out = static_cast<uint32_t>(value);
    return true;
  };
  if (!uint32_flag("spines", 32, &cfg.num_spine) ||
      !uint32_flag("racks", 32, &cfg.num_racks) ||
      !uint32_flag("servers-per-rack", 32, &cfg.servers_per_rack) ||
      !uint32_flag("cache-per-switch", 100, &cfg.per_switch_objects) ||
      !flags.GetUintChecked("keys", 100'000'000, &cfg.num_keys, &error) ||
      !flags.GetUintChecked("seed", 42, &cfg.seed, &error) ||
      !flags.GetDoubleInRange("zipf", 0.99, 0.0, 1.0, &cfg.zipf_theta, &error) ||
      !flags.GetDoubleInRange("write-ratio", 0.0, 0.0, 1.0, &cfg.write_ratio,
                              &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  // Multi-layer hierarchy (§3.1): --layers/--layer-sizes/--layer-cache build
  // cfg.cache_layers; absent, the cluster keeps the two-layer spine/leaf shape.
  if (flags.Has("layers") || flags.Has("layer-sizes") || flags.Has("layer-cache")) {
    uint64_t num_layers = 2;
    std::vector<uint64_t> sizes;
    std::vector<uint64_t> budgets;
    if (!flags.GetUintChecked("layers", 2, &num_layers, &error) ||
        !flags.GetUintList("layer-sizes", &sizes, &error) ||
        !flags.GetUintList("layer-cache", &budgets, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    if (!flags.Has("layers")) {
      num_layers = sizes.empty() ? 2 : sizes.size();
    }
    if (num_layers < 2 || num_layers > kMaxCacheLayers) {
      std::fprintf(stderr, "--layers=%llu: want between 2 and %zu cache layers\n",
                   static_cast<unsigned long long>(num_layers), kMaxCacheLayers);
      return 1;
    }
    if (sizes.empty()) {
      // Default shape: the top layer keeps --spines, everything below mirrors
      // the racks (the leaf layer is rack-bound; mid layers default to match).
      sizes.assign(num_layers, cfg.num_racks);
      sizes.front() = cfg.num_spine;
    }
    if (budgets.empty()) {
      budgets.assign(num_layers, cfg.per_switch_objects);
    } else if (budgets.size() == 1) {
      budgets.assign(num_layers, budgets[0]);  // single value broadcasts
    }
    if (sizes.size() != num_layers || budgets.size() != num_layers) {
      std::fprintf(stderr,
                   "--layer-sizes/--layer-cache must list one value per layer "
                   "(--layers=%llu, got %zu sizes, %zu budgets)\n",
                   static_cast<unsigned long long>(num_layers), sizes.size(),
                   budgets.size());
      return 1;
    }
    // The leaf layer is rack-bound: its size either matches --racks or defines
    // it; likewise the top layer vs --spines. Explicit conflicting flags are
    // rejected, never silently overridden.
    if (flags.Has("racks") && sizes.back() != cfg.num_racks) {
      std::fprintf(stderr,
                   "--layer-sizes: the last (leaf) layer has %llu nodes but "
                   "--racks=%u; the leaf layer is rack-bound\n",
                   static_cast<unsigned long long>(sizes.back()), cfg.num_racks);
      return 1;
    }
    if (flags.Has("spines") && sizes.front() != cfg.num_spine) {
      std::fprintf(stderr,
                   "--layer-sizes: the first (spine) layer has %llu nodes but "
                   "--spines=%u; drop one of the two flags\n",
                   static_cast<unsigned long long>(sizes.front()), cfg.num_spine);
      return 1;
    }
    cfg.num_racks = static_cast<uint32_t>(sizes.back());
    cfg.num_spine = static_cast<uint32_t>(sizes.front());
    for (size_t l = 0; l < num_layers; ++l) {
      if (sizes[l] > 0xffffffffULL || budgets[l] > 0xffffffffULL) {
        std::fprintf(stderr, "--layer-sizes/--layer-cache values must fit uint32\n");
        return 1;
      }
      cfg.cache_layers.push_back({static_cast<uint32_t>(sizes[l]),
                                  static_cast<uint32_t>(budgets[l])});
    }
    if (const std::string layer_error = ValidateCacheLayers(cfg); !layer_error.empty()) {
      std::fprintf(stderr, "%s\n", layer_error.c_str());
      return 1;
    }
  }
  cfg.stale_telemetry = flags.GetBool("stale-telemetry", false);
  cfg.cap_at_server_aggregate = !flags.GetBool("uncapped", false);
  const std::string routing = flags.GetString("routing", "pot");
  cfg.routing = routing == "random"  ? RoutingPolicy::kRandom
                : routing == "first" ? RoutingPolicy::kFirstChoice
                                     : RoutingPolicy::kPowerOfTwo;
  // Per-node cache semantics (core/cache_policy.h). Parse errors and invalid
  // combinations (e.g. --cache-policy=lru with --mechanism=nocache) are
  // rejected here with the same message the engine boundary would abort with.
  if (const std::string name = flags.GetString("cache-policy", "distcache");
      !ParseCachePolicy(name, &cfg.cache_policy)) {
    std::fprintf(stderr,
                 "unknown --cache-policy=%s (want distcache|static-topk|lru|"
                 "lfu|fifo|segmented)\n", name.c_str());
    return 1;
  }
  if (const std::string name = flags.GetString("hierarchy", "inclusive");
      !ParseHierarchyMode(name, &cfg.cache_hierarchy)) {
    std::fprintf(stderr, "unknown --hierarchy=%s (want inclusive|exclusive)\n",
                 name.c_str());
    return 1;
  }
  if (const std::string name = flags.GetString("write-policy", "write-through");
      !ParseWritePolicy(name, &cfg.write_policy)) {
    std::fprintf(stderr,
                 "unknown --write-policy=%s (want write-through|write-back)\n",
                 name.c_str());
    return 1;
  }
  if (const std::string policy_error =
          ValidateCachePolicy(cfg.cache_policy, cfg.cache_hierarchy,
                              cfg.write_policy, cfg.mechanism);
      !policy_error.empty()) {
    std::fprintf(stderr, "%s\n", policy_error.c_str());
    return 1;
  }

  std::printf("mechanism=%s  %u spines, %u racks x %u servers, cache %u/switch, %s, "
              "write ratio %.2f\n",
              MechanismName(cfg.mechanism).c_str(), cfg.num_spine, cfg.num_racks,
              cfg.servers_per_rack, cfg.per_switch_objects,
              cfg.zipf_theta > 0 ? ("zipf-" + std::to_string(cfg.zipf_theta)).c_str()
                                 : "uniform",
              cfg.write_ratio);
  if (cfg.cache_policy != CachePolicyKind::kDistCache) {
    std::printf("cache policy: %s", CachePolicyName(cfg.cache_policy));
    if (PolicyIsDynamic(cfg.cache_policy)) {
      std::printf("  (%s, %s)", HierarchyModeName(cfg.cache_hierarchy),
                  WritePolicyName(cfg.write_policy));
    }
    std::printf("\n");
  }
  if (!cfg.cache_layers.empty()) {
    std::printf("hierarchy:");
    for (size_t l = 0; l < cfg.cache_layers.size(); ++l) {
      std::printf(" L%zu=%ux%u", l, cfg.cache_layers[l].nodes,
                  cfg.cache_layers[l].cache_objects);
    }
    std::printf("  (nodes x objects/node, top->leaf)\n");
  }

  if (flags.Has("backend")) {
    // Request-level engine run through the pluggable SimBackend interface.
    const std::string backend_name = flags.GetString("backend", "sequential");
    if (backend_name != "sequential" && backend_name != "sharded" &&
        backend_name != "multiproc" && backend_name != "fluid") {
      std::fprintf(stderr,
                   "unknown --backend=%s (want sequential|sharded|multiproc|"
                   "fluid)\n",
                   backend_name.c_str());
      return 1;
    }
    // The remaining fluid-model-only modes and ablations are not implemented by
    // the request-level engines; refuse rather than silently ignore them.
    for (const char* incompatible : {"latency", "stale-telemetry", "uncapped"}) {
      if (flags.Has(incompatible)) {
        std::fprintf(stderr, "--%s is a fluid-model mode; it cannot be combined "
                             "with --backend\n", incompatible);
        return 1;
      }
    }
    SimBackendConfig bcfg;
    bcfg.cluster = cfg;
    uint64_t requests = 0;
    if (!uint32_flag("shards", 1, &bcfg.shards) ||
        // Flag default = the engine default, so a flag-less CLI run matches
        // library/bench runs bit for bit.
        !uint32_flag("batch", bcfg.batch_size, &bcfg.batch_size) ||
        !flags.GetUintChecked("epoch", 4096, &bcfg.epoch_requests, &error) ||
        !flags.GetUintChecked("requests", 2'000'000, &requests, &error) ||
        !flags.GetUintChecked("sample", 0, &bcfg.sample_interval, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    bcfg.pin_cores = flags.GetBool("pin-cores", false);
    bcfg.huge_pages = flags.GetBool("huge-pages", false);
    bcfg.numa_interleave = flags.GetBool("numa-interleave", false);
    bcfg.respawn = flags.GetBool("respawn", false);
    bcfg.two_level_sampling = flags.GetBool("two-level", false);
    bcfg.dense_routes = flags.GetBool("dense-routes", false);
    // Robustness knobs (multiproc only): respawn budget, heartbeat ladder,
    // injected fault plan.
    {
      uint64_t limit = bcfg.respawn_limit;
      if (!flags.GetUintChecked("respawn-limit", limit, &limit, &error) ||
          !flags.GetUintChecked("heartbeat-warn-ms", bcfg.heartbeat_warn_ms,
                                &bcfg.heartbeat_warn_ms, &error) ||
          !flags.GetUintChecked("heartbeat-dead-ms", bcfg.heartbeat_dead_ms,
                                &bcfg.heartbeat_dead_ms, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
      }
      if (limit > 0xffffffffULL) {
        std::fprintf(stderr, "--respawn-limit must fit uint32\n");
        return 1;
      }
      bcfg.respawn_limit = static_cast<uint32_t>(limit);
    }
    if (flags.Has("fault-plan")) {
      if (backend_name != "multiproc") {
        std::fprintf(stderr, "--fault-plan needs --backend=multiproc\n");
        return 1;
      }
      uint64_t fault_seed = cfg.seed;
      if (!flags.GetUintChecked("fault-seed", cfg.seed, &fault_seed, &error) ||
          !ParseFaultPlan(flags.GetString("fault-plan", ""), bcfg.shards,
                          requests, fault_seed, &bcfg.fault_plan, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
      }
      std::printf("fault plan: %s\n",
                  FaultPlanToString(bcfg.fault_plan).c_str());
    }
    if (bcfg.pin_cores && backend_name != "sharded" &&
        backend_name != "multiproc") {
      std::fprintf(stderr, "--pin-cores needs --backend=sharded|multiproc\n");
      return 1;
    }
    if (bcfg.huge_pages && backend_name != "multiproc") {
      std::fprintf(stderr, "--huge-pages needs --backend=multiproc\n");
      return 1;
    }
    if (bcfg.numa_interleave && backend_name != "multiproc") {
      std::fprintf(stderr, "--numa-interleave needs --backend=multiproc\n");
      return 1;
    }
    if (bcfg.respawn && backend_name != "multiproc") {
      std::fprintf(stderr, "--respawn needs --backend=multiproc\n");
      return 1;
    }
    // Open-loop virtual time (sim/sim_backend.h QueueModelConfig): Poisson
    // arrivals, per-node FIFO queueing, per-layer service rates, hop costs.
    if (!flags.GetDoubleInRange("arrival-rate", 0.0, 0.0, 1e15,
                                &bcfg.queue.arrival.rate, &error) ||
        !flags.GetDoubleInRange("hop-cost", bcfg.queue.hop_cost, 0.0, 1e6,
                                &bcfg.queue.hop_cost, &error) ||
        !flags.GetDoubleInRange("server-rate", bcfg.queue.server_service_rate,
                                1e-9, 1e15, &bcfg.queue.server_service_rate,
                                &error) ||
        !flags.GetDoubleList("service-rates", &bcfg.queue.service_rates,
                             &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    if (flags.Has("burst") &&
        !ParseBurstSpec(flags.GetString("burst", ""), &bcfg.queue.arrival,
                        &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    if (!bcfg.queue.enabled()) {
      // The queue knobs modulate the arrival process; without one they would
      // silently do nothing, so refuse instead.
      for (const char* needs_rate : {"burst", "service-rates", "server-rate",
                                     "hop-cost"}) {
        if (flags.Has(needs_rate)) {
          std::fprintf(stderr,
                       "--%s needs an open-loop arrival process; add "
                       "--arrival-rate=R\n", needs_rate);
          return 1;
        }
      }
    }
    // Timeline timestamps: anything at or beyond --requests would silently never
    // fire; reject it so a typo'd timeline fails loudly.
    const auto timeline_at = [&](const char* name, uint64_t def,
                                 uint64_t* out) -> bool {
      if (!flags.GetUintChecked(name, def, out, &error)) {
        return false;
      }
      if (*out >= requests) {
        error = "--" + std::string(name) + "=" + std::to_string(*out) +
                ": timeline timestamps must be below --requests (" +
                std::to_string(requests) + ")";
        return false;
      }
      return true;
    };
    if (flags.Has("fail-spines")) {
      // Failure timeline (§4.4 / Fig. 11): spines 0..K-1 fail at --fail-at, the
      // controller remaps their partitions at --remap-at, and the switches come
      // back (partitions return home) at --recover-at.
      uint64_t fail_spines = 0;
      if (!flags.GetUintChecked("fail-spines", 1, &fail_spines, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
      }
      // More than num_spine is meaningless; clamping keeps the count in uint32
      // without silently truncating huge values to small ones.
      const auto k = static_cast<uint32_t>(
          std::min<uint64_t>(fail_spines, cfg.num_spine));
      uint64_t fail_at = 0;
      uint64_t remap_at = 0;
      uint64_t recover_at = 0;
      if (!timeline_at("fail-at", requests / 5, &fail_at) ||
          !timeline_at("remap-at", requests / 2, &remap_at) ||
          !timeline_at("recover-at", requests * 3 / 4, &recover_at)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
      }
      for (uint32_t s = 0; s < k && s < cfg.num_spine; ++s) {
        bcfg.events.push_back(ClusterEvent::FailSpine(fail_at, s));
        bcfg.events.push_back(ClusterEvent::RecoverSpine(recover_at, s));
      }
      bcfg.events.push_back(ClusterEvent::RunRecovery(remap_at));
    }
    // Hot-spot shift timeline (§6.4): the hot set rotates by --shift-by keys at
    // --shift-at, and the controller re-allocates the cache from observed
    // heavy-hitter counts at --realloc-at. Each event appears only when its flag
    // does (a realloc-only run is a legitimate control experiment).
    uint64_t shift_at = 0;
    bool have_shift = false;
    if (flags.Has("shift-at") || flags.Has("shift-by")) {
      uint64_t shift_by = 0;
      if (!timeline_at("shift-at", requests / 4, &shift_at) ||
          !flags.GetUintChecked("shift-by", cfg.num_keys / 2, &shift_by, &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
      }
      bcfg.events.push_back(ClusterEvent::ShiftHotspot(shift_at, shift_by));
      have_shift = true;
    }
    if (flags.Has("realloc-at")) {
      uint64_t realloc_at = 0;
      if (!timeline_at("realloc-at", requests / 2, &realloc_at)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return 1;
      }
      if (have_shift && realloc_at <= shift_at) {
        std::fprintf(stderr, "--realloc-at=%llu must come after --shift-at=%llu\n",
                     static_cast<unsigned long long>(realloc_at),
                     static_cast<unsigned long long>(shift_at));
        return 1;
      }
      bcfg.events.push_back(ClusterEvent::ReallocateCache(realloc_at));
    }
    if (flags.Has("phases")) {
      if (!ParsePhaseList(flags.GetString("phases", ""), &bcfg.phases, &error)) {
        std::fprintf(stderr, "--phases: %s\n", error.c_str());
        return 1;
      }
      for (const WorkloadPhase& phase : bcfg.phases) {
        if (phase.start_request >= requests) {
          std::fprintf(stderr,
                       "--phases: phase start %llu must be below --requests (%llu)\n",
                       static_cast<unsigned long long>(phase.start_request),
                       static_cast<unsigned long long>(requests));
          return 1;
        }
      }
    }
    auto backend = MakeSimBackend(ParseBackendKind(backend_name), bcfg);
    const BackendStats stats = backend->Run(requests);
    std::printf(
        "backend=%s shards=%u: %llu requests in %.3fs (%.2f Mreq/s)\n"
        "  hit ratio %.4f (spine %llu, leaf %llu, server reads %llu)\n"
        "  cache imbalance (max/mean) %.3f  server imbalance %.3f\n"
        "  cross-shard messages %llu  dropped %llu\n",
        backend->name().c_str(), bcfg.shards,
        static_cast<unsigned long long>(stats.requests), stats.wall_seconds,
        stats.throughput_mrps(), stats.hit_ratio(),
        static_cast<unsigned long long>(stats.spine_hits),
        static_cast<unsigned long long>(stats.leaf_hits),
        static_cast<unsigned long long>(stats.server_reads),
        stats.CacheImbalance(), stats.ServerImbalance(),
        static_cast<unsigned long long>(stats.cross_shard_messages),
        static_cast<unsigned long long>(stats.dropped));
    // Memory footprint: peak RSS is the max across the driver and any shard
    // processes; route/sampler bytes are per-process state (multiproc keeps
    // route tables in the shared arena, counted once under `arena`).
    constexpr double kMiB = 1024.0 * 1024.0;
    std::printf("  memory: peak RSS %.1f MiB  route tables %.1f MiB  "
                "sampler %.1f MiB  arena %.1f MiB\n",
                stats.peak_rss_bytes / kMiB, stats.route_table_bytes / kMiB,
                stats.sampler_bytes / kMiB, stats.arena_bytes / kMiB);
    if (stats.respawned_shards > 0) {
      std::printf("  respawned %llu shard process(es) mid-run (--respawn)\n",
                  static_cast<unsigned long long>(stats.respawned_shards));
    }
    if (stats.injected_faults > 0 || stats.heartbeat_misses > 0 ||
        stats.controller_failovers > 0 || stats.degraded_fraction > 0.0 ||
        !stats.fault_events.empty()) {
      std::printf(
          "  faults: injected %llu  heartbeat misses %llu  controller "
          "failovers %llu  degraded fraction %.4f\n",
          static_cast<unsigned long long>(stats.injected_faults),
          static_cast<unsigned long long>(stats.heartbeat_misses),
          static_cast<unsigned long long>(stats.controller_failovers),
          stats.degraded_fraction);
      std::printf("  fault timeline:");
      for (const BackendStats::FaultRecord& rec : stats.fault_events) {
        if (rec.kind < 16) {  // injected: the plan timestamp is meaningful
          std::printf(" %s:%u@%llu", FaultRecordName(rec.kind), rec.shard,
                      static_cast<unsigned long long>(rec.at));
        } else {  // supervisor/failover observation, wall-clock ordered
          std::printf(" %s:%u", FaultRecordName(rec.kind), rec.shard);
        }
      }
      std::printf("\n");
    }
    if (!stats.latency.empty()) {
      std::printf(
          "  latency (virtual time units): mean %.3f  p50 %.3f  p95 %.3f  "
          "p99 %.3f  p99.9 %.3f  overloaded %.4f\n",
          stats.latency.mean(), stats.latency.Percentile(50.0),
          stats.latency.Percentile(95.0), stats.latency.Percentile(99.0),
          stats.latency.Percentile(99.9), stats.latency.infinite_fraction());
    }
    if (!stats.series.empty()) {
      std::printf("  %-10s %10s %10s %10s\n", "interval", "delivered", "dropped",
                  "hit-ratio");
      for (size_t i = 0; i < stats.series.size(); ++i) {
        const auto& pt = stats.series[i];
        std::printf("  %-10zu %9.1f%% %10llu %10.4f\n", i,
                    100.0 * pt.delivered_fraction(),
                    static_cast<unsigned long long>(pt.dropped), pt.hit_ratio());
      }
    }
    if (stats.failed_shards > 0) {
      // Partial picture: the summary above covers the surviving shards only.
      // Exit 2 distinguishes "shards lost, run degraded" from usage errors
      // (1), bench gate failures (3) and deadline kills (4) — see --help.
      std::fprintf(stderr,
                   "error: %llu of %u shard processes died; stats above are "
                   "partial\n",
                   static_cast<unsigned long long>(stats.failed_shards),
                   bcfg.shards);
      return 2;
    }
    return 0;
  }

  ClusterSim sim(cfg);
  if (flags.Has("fail-spines")) {
    uint64_t fail_spines = 0;
    double offered = 0.0;
    if (!flags.GetUintChecked("fail-spines", 1, &fail_spines, &error) ||
        !flags.GetDoubleInRange("offered", 0.5 * sim.TotalServerCapacity(), 0.0,
                                1e15, &offered, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    const auto k = static_cast<uint32_t>(
        std::min<uint64_t>(fail_spines, cfg.num_spine));
    std::printf("offered rate %.0f\n", offered);
    std::printf("healthy            : %8.0f\n", sim.AchievedThroughput(offered));
    for (uint32_t s = 0; s < k && s < cfg.num_spine; ++s) {
      sim.FailSpine(s);
    }
    std::printf("%u spines failed   : %8.0f\n", k, sim.AchievedThroughput(offered));
    sim.RunFailureRecovery();
    std::printf("after recovery     : %8.0f\n", sim.AchievedThroughput(offered));
    return 0;
  }

  if (flags.Has("latency")) {
    double load = 0.0;
    if (!flags.GetDoubleInRange("load", 0.5, 0.0, 1.0, &load, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    const LatencyReport report =
        ComputeLatencyReport(sim, load * sim.TotalServerCapacity());
    std::printf("latency @ %.0f%% load: mean=%.2f p50=%.2f p95=%.2f p99=%.2f "
                "(hit fraction %.2f)\n",
                100 * load, report.mean, report.p50, report.p95, report.p99,
                report.hit_fraction);
    return 0;
  }

  const double throughput = sim.SaturationThroughput();
  std::printf("saturation throughput: %.0f (x one storage server; aggregate %.0f)\n",
              throughput, sim.TotalServerCapacity());
  return 0;
}

}  // namespace
}  // namespace distcache

int main(int argc, char** argv) { return distcache::Run(argc, argv); }
