// distcache_sim — command-line driver for the cluster simulator.
//
// Examples:
//   distcache_sim --mechanism=distcache --racks=32 --servers-per-rack=32
//                 --zipf=0.99 --cache-per-switch=100   (one command line)
//   distcache_sim --mechanism=nocache --zipf=0.9 --write-ratio=0.2
//   distcache_sim --mechanism=distcache --latency --load=0.5
//   distcache_sim --mechanism=distcache --fail-spines=4 --offered=512
#include <cstdio>
#include <string>

#include "cluster/cluster_sim.h"
#include "cluster/latency.h"
#include "tools/flags.h"

namespace distcache {
namespace {

Mechanism ParseMechanism(const std::string& name) {
  if (name == "nocache") {
    return Mechanism::kNoCache;
  }
  if (name == "partition") {
    return Mechanism::kCachePartition;
  }
  if (name == "replication") {
    return Mechanism::kCacheReplication;
  }
  return Mechanism::kDistCache;
}

int Run(int argc, char** argv) {
  const Flags flags(argc, argv);
  if (flags.Has("help")) {
    std::printf(
        "usage: distcache_sim [--mechanism=distcache|replication|partition|nocache]\n"
        "  [--spines=N] [--racks=N] [--servers-per-rack=N] [--cache-per-switch=N]\n"
        "  [--keys=N] [--zipf=T] [--write-ratio=W] [--seed=S]\n"
        "  [--routing=pot|random|first] [--stale-telemetry] [--uncapped]\n"
        "  [--latency --load=F] [--fail-spines=K --offered=R]\n");
    return 0;
  }
  ClusterConfig cfg;
  cfg.mechanism = ParseMechanism(flags.GetString("mechanism", "distcache"));
  cfg.num_spine = static_cast<uint32_t>(flags.GetUint("spines", 32));
  cfg.num_racks = static_cast<uint32_t>(flags.GetUint("racks", 32));
  cfg.servers_per_rack = static_cast<uint32_t>(flags.GetUint("servers-per-rack", 32));
  cfg.per_switch_objects =
      static_cast<uint32_t>(flags.GetUint("cache-per-switch", 100));
  cfg.num_keys = flags.GetUint("keys", 100'000'000);
  cfg.zipf_theta = flags.GetDouble("zipf", 0.99);
  cfg.write_ratio = flags.GetDouble("write-ratio", 0.0);
  cfg.seed = flags.GetUint("seed", 42);
  cfg.stale_telemetry = flags.GetBool("stale-telemetry", false);
  cfg.cap_at_server_aggregate = !flags.GetBool("uncapped", false);
  const std::string routing = flags.GetString("routing", "pot");
  cfg.routing = routing == "random"  ? RoutingPolicy::kRandom
                : routing == "first" ? RoutingPolicy::kFirstChoice
                                     : RoutingPolicy::kPowerOfTwo;

  ClusterSim sim(cfg);
  std::printf("mechanism=%s  %u spines, %u racks x %u servers, cache %u/switch, %s, "
              "write ratio %.2f\n",
              MechanismName(cfg.mechanism).c_str(), cfg.num_spine, cfg.num_racks,
              cfg.servers_per_rack, cfg.per_switch_objects,
              cfg.zipf_theta > 0 ? ("zipf-" + std::to_string(cfg.zipf_theta)).c_str()
                                 : "uniform",
              cfg.write_ratio);

  if (flags.Has("fail-spines")) {
    const auto k = static_cast<uint32_t>(flags.GetUint("fail-spines", 1));
    const double offered = flags.GetDouble("offered", 0.5 * sim.TotalServerCapacity());
    std::printf("offered rate %.0f\n", offered);
    std::printf("healthy            : %8.0f\n", sim.AchievedThroughput(offered));
    for (uint32_t s = 0; s < k && s < cfg.num_spine; ++s) {
      sim.FailSpine(s);
    }
    std::printf("%u spines failed   : %8.0f\n", k, sim.AchievedThroughput(offered));
    sim.RunFailureRecovery();
    std::printf("after recovery     : %8.0f\n", sim.AchievedThroughput(offered));
    return 0;
  }

  if (flags.Has("latency")) {
    const double load = flags.GetDouble("load", 0.5);
    const LatencyReport report =
        ComputeLatencyReport(sim, load * sim.TotalServerCapacity());
    std::printf("latency @ %.0f%% load: mean=%.2f p50=%.2f p95=%.2f p99=%.2f "
                "(hit fraction %.2f)\n",
                100 * load, report.mean, report.p50, report.p95, report.p99,
                report.hit_fraction);
    return 0;
  }

  const double throughput = sim.SaturationThroughput();
  std::printf("saturation throughput: %.0f (x one storage server; aggregate %.0f)\n",
              throughput, sim.TotalServerCapacity());
  return 0;
}

}  // namespace
}  // namespace distcache

int main(int argc, char** argv) { return distcache::Run(argc, argv); }
