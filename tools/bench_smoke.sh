#!/usr/bin/env bash
# bench-smoke: run every bench binary for ~1-2s to catch bitrot (crashes, aborts,
# link/startup failures) without reproducing full figures.
#
# Each bench runs with DISTCACHE_BENCH_SMOKE=1 (benches shrink their sweeps, see
# bench/bench_common.h) under a hard timeout. A bench passes if it exits cleanly, or
# if the timeout fires while it was still producing output (long-running benches
# that don't honor smoke mode, e.g. google-benchmark ones).
#
# Usage: bench_smoke.sh <bench-binary>...
set -u

budget="${BENCH_SMOKE_BUDGET:-2}"
fail=0
for bin in "$@"; do
  name=$(basename "$bin")
  if [ ! -x "$bin" ]; then
    echo "MISSING  $name"
    fail=1
    continue
  fi
  # stdbuf: line-buffer stdout so a timed-out bench still shows partial output.
  out=$(DISTCACHE_BENCH_SMOKE=1 timeout -s KILL "$budget" stdbuf -oL "$bin" 2>&1)
  rc=$?
  if [ "$rc" -eq 0 ]; then
    echo "ok       $name"
  elif [ "$rc" -eq 124 ] || [ "$rc" -eq 137 ]; then
    if [ -n "$out" ]; then
      echo "ok (t/o) $name"
    else
      echo "HUNG     $name (no output before ${budget}s timeout)"
      fail=1
    fi
  else
    echo "FAIL     $name (exit $rc)"
    echo "$out" | tail -5 | sed 's/^/         /'
    fail=1
  fi
done
exit "$fail"
