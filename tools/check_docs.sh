#!/usr/bin/env bash
# docs-check: fail when the top-level docs drift from the tree.
#
#  1. Every backtick-quoted repo path in README.md / docs/ARCHITECTURE.md
#     (tokens starting with src/, tests/, bench/, tools/, docs/, examples/, or a
#     top-level *.md / CMakeLists.txt) must exist.
#  2. docs/ARCHITECTURE.md's paper-to-code map must mention every bench harness
#     (bench/bench_*.cc) by file name.
#
# Run from the repo root (the `docs-check` CMake target does).
set -u

fail=0
for doc in README.md docs/ARCHITECTURE.md; do
  if [ ! -f "$doc" ]; then
    echo "docs-check: missing $doc"
    fail=1
    continue
  fi
  # Backtick-quoted tokens without spaces; keep only ones that look like repo paths.
  refs=$(grep -oE '`[A-Za-z0-9_][A-Za-z0-9_./:-]*`' "$doc" | tr -d '`' |
    sed 's/:[0-9]*$//' |
    grep -E '^(src|tests|bench|tools|docs|examples)/|^(README|ROADMAP|PAPER|PAPERS|SNIPPETS|CHANGES)\.md$|^CMakeLists\.txt$' |
    sort -u)
  for ref in $refs; do
    if [ ! -e "$ref" ]; then
      echo "docs-check: $doc references missing path: $ref"
      fail=1
    fi
  done
done

if [ -f docs/ARCHITECTURE.md ]; then
  for bench in bench/bench_*.cc; do
    name=$(basename "$bench")
    if ! grep -q "$name" docs/ARCHITECTURE.md; then
      echo "docs-check: docs/ARCHITECTURE.md paper-to-code map is missing $name"
      fail=1
    fi
  done
fi

if [ "$fail" -eq 0 ]; then
  echo "docs-check: OK"
fi
exit "$fail"
