// Minimal command-line flag parsing for the CLI tools: --name=value or --name value.
#ifndef DISTCACHE_TOOLS_FLAGS_H_
#define DISTCACHE_TOOLS_FLAGS_H_

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>

namespace distcache {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        continue;
      }
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && argv[i + 1][0] != '-') {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";
      }
    }
  }

  std::string GetString(const std::string& name, const std::string& def) const {
    const auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
  }

  double GetDouble(const std::string& name, double def) const {
    const auto it = values_.find(name);
    return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
  }

  uint64_t GetUint(const std::string& name, uint64_t def) const {
    const auto it = values_.find(name);
    return it == values_.end() ? def : std::strtoull(it->second.c_str(), nullptr, 10);
  }

  bool GetBool(const std::string& name, bool def) const {
    const auto it = values_.find(name);
    if (it == values_.end()) {
      return def;
    }
    return it->second == "true" || it->second == "1";
  }

  bool Has(const std::string& name) const { return values_.contains(name); }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace distcache

#endif  // DISTCACHE_TOOLS_FLAGS_H_
