// Minimal command-line flag parsing for the CLI tools: --name=value or --name value.
//
// Two getter families:
//  * GetString/GetDouble/GetUint/GetBool — permissive, never fail (malformed
//    numbers parse as far as strtod/strtoull get). Fine for tools that validate
//    elsewhere or for free-form values.
//  * GetDoubleInRange/GetUintChecked — validating: reject text that is not
//    entirely a number, NaN/inf, negatives, and out-of-range values with a
//    human-readable error instead of silently misbehaving. CLI entry points
//    should use these for every numeric knob (see tools/distcache_sim.cc).
#ifndef DISTCACHE_TOOLS_FLAGS_H_
#define DISTCACHE_TOOLS_FLAGS_H_

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/parse.h"

namespace distcache {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        continue;
      }
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && argv[i + 1][0] != '-') {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";
      }
    }
  }

  std::string GetString(const std::string& name, const std::string& def) const {
    const auto it = values_.find(name);
    return it == values_.end() ? def : it->second;
  }

  double GetDouble(const std::string& name, double def) const {
    const auto it = values_.find(name);
    return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
  }

  uint64_t GetUint(const std::string& name, uint64_t def) const {
    const auto it = values_.find(name);
    return it == values_.end() ? def : std::strtoull(it->second.c_str(), nullptr, 10);
  }

  bool GetBool(const std::string& name, bool def) const {
    const auto it = values_.find(name);
    if (it == values_.end()) {
      return def;
    }
    return it->second == "true" || it->second == "1";
  }

  // Parses --name as a finite double in [lo, hi] (common/parse.h strictness).
  // Returns false and fills *error (mentioning the flag, the offending value and
  // the accepted range) on malformed input or a value outside the range. An
  // absent flag yields `def` (which is trusted, not range-checked).
  bool GetDoubleInRange(const std::string& name, double def, double lo, double hi,
                        double* out, std::string* error) const {
    const auto it = values_.find(name);
    if (it == values_.end()) {
      *out = def;
      return true;
    }
    double value = 0.0;
    if (!ParseStrictDouble(it->second, &value) || value < lo || value > hi) {
      *error = "--" + name + "=" + it->second + ": want a finite value in [" +
               std::to_string(lo) + ", " + std::to_string(hi) + "]";
      return false;
    }
    *out = value;
    return true;
  }

  // Parses --name as a non-negative integer (common/parse.h strictness: a
  // negative — even whitespace-prefixed — would otherwise wrap to a huge
  // uint64). Returns false and fills *error on malformed input.
  bool GetUintChecked(const std::string& name, uint64_t def, uint64_t* out,
                      std::string* error) const {
    const auto it = values_.find(name);
    if (it == values_.end()) {
      *out = def;
      return true;
    }
    if (!ParseStrictUint(it->second, out)) {
      *error = "--" + name + "=" + it->second + ": want a non-negative integer";
      return false;
    }
    return true;
  }

  // Parses --name as a comma-separated list of positive integers (strict per
  // element, e.g. "32,16,32"). An absent flag leaves *out untouched and returns
  // true; malformed input fills *error and returns false.
  bool GetUintList(const std::string& name, std::vector<uint64_t>* out,
                   std::string* error) const {
    const auto it = values_.find(name);
    if (it == values_.end()) {
      return true;
    }
    std::vector<uint64_t> parsed;
    const std::string& text = it->second;
    size_t start = 0;
    while (start <= text.size()) {
      const size_t comma = text.find(',', start);
      const std::string field =
          text.substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start);
      uint64_t value = 0;
      if (!ParseStrictUint(field, &value) || value == 0) {
        *error = "--" + name + "=" + text +
                 ": want a comma-separated list of positive integers";
        return false;
      }
      parsed.push_back(value);
      if (comma == std::string::npos) {
        break;
      }
      start = comma + 1;
    }
    *out = std::move(parsed);
    return true;
  }

  // Parses --name as a comma-separated list of positive finite doubles (strict
  // per element, e.g. "6,1.5"). An absent flag leaves *out untouched and
  // returns true; malformed input fills *error and returns false.
  bool GetDoubleList(const std::string& name, std::vector<double>* out,
                     std::string* error) const {
    const auto it = values_.find(name);
    if (it == values_.end()) {
      return true;
    }
    std::vector<double> parsed;
    const std::string& text = it->second;
    size_t start = 0;
    while (start <= text.size()) {
      const size_t comma = text.find(',', start);
      const std::string field =
          text.substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start);
      double value = 0.0;
      if (!ParseStrictDouble(field, &value) || value <= 0.0) {
        *error = "--" + name + "=" + text +
                 ": want a comma-separated list of positive finite values";
        return false;
      }
      parsed.push_back(value);
      if (comma == std::string::npos) {
        break;
      }
      start = comma + 1;
    }
    *out = std::move(parsed);
    return true;
  }

  bool Has(const std::string& name) const { return values_.contains(name); }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace distcache

#endif  // DISTCACHE_TOOLS_FLAGS_H_
