// Figure 10: cache coherence cost — throughput vs write ratio.
// (a) Zipf-0.9, cache size 640 (10 objects/switch); (b) Zipf-0.99, cache size 6400.
// Paper shape: CacheReplication collapses fastest (a write updates all 32 spine
// replicas); DistCache degrades slowly (2 copies); NoCache is flat; with enough
// writes every caching mechanism falls below NoCache — the guideline to disable
// in-network caching for write-intensive workloads.
#include <cstdio>
#include <string>

#include "bench/bench_common.h"

namespace distcache {
namespace {

void RunPanel(BenchJson& json, const char* panel, const char* title, double theta,
              uint32_t per_switch) {
  PrintHeader(title, "");
  std::printf("%-12s %14s %18s %16s %10s\n", "write ratio", "DistCache",
              "CacheReplication", "CachePartition", "NoCache");
  const std::vector<double> ratios = SmokeSweep<double>(
      {0.0, 0.2}, {0.0, 0.02, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0});
  json.Series(std::string(panel) + "_write_ratio", ratios);
  std::vector<double> distcache_series;
  for (double w : ratios) {
    std::printf("%-12.2f", w);
    for (Mechanism m : AllMechanisms()) {
      ClusterConfig cfg = PaperDefaultConfig(m);
      cfg.zipf_theta = theta;
      cfg.per_switch_objects = per_switch;
      cfg.write_ratio = w;
      ClusterSim sim(cfg);
      const int width = m == Mechanism::kDistCache          ? 14
                        : m == Mechanism::kCacheReplication ? 18
                        : m == Mechanism::kCachePartition   ? 16
                                                            : 10;
      const double saturation = sim.SaturationThroughput();
      if (m == Mechanism::kDistCache) {
        distcache_series.push_back(saturation);
      }
      std::printf(" %*.0f", width, saturation);
    }
    std::printf("\n");
  }
  json.Series(std::string(panel) + "_distcache", distcache_series);
}

}  // namespace
}  // namespace distcache

int main(int argc, char** argv) {
  distcache::BenchJson json(argc, argv, "fig10");
  distcache::RunPanel(json, "a",
                      "Figure 10(a): throughput vs write ratio (zipf-0.9, cache 640)",
                      0.9, 10);
  distcache::RunPanel(json, "b",
                      "Figure 10(b): throughput vs write ratio (zipf-0.99, cache 6400)",
                      0.99, 100);
  return 0;
}
