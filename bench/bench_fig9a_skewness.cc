// Figure 9(a): normalized system throughput vs workload skew, read-only.
// Paper shape: uniform — all four mechanisms identical (server-bound). Skewed —
// NoCache collapses, CachePartition limited by cache-switch imbalance, DistCache
// tracks CacheReplication (the read-optimal baseline) at the saturated level.
#include <cstdio>

#include "bench/bench_common.h"

namespace distcache {
namespace {

void Run(BenchJson& json) {
  PrintHeader("Figure 9(a): throughput vs. skewness (read-only)",
              "32 spine x 32 racks x 32 servers, 100 objects/switch (6400 total), "
              "throughput normalized to one storage server");
  std::printf("%-12s %14s %18s %16s %10s\n", "workload", "DistCache",
              "CacheReplication", "CachePartition", "NoCache");
  // theta = 1.0 exercises the logarithmic-limit forms in ZipfDistribution (the
  // 1/(1-theta) closed forms degenerate there); the paper sweeps up to 0.99.
  const std::vector<double> thetas =
      SmokeSweep<double>({0.99}, {0.0, 0.9, 0.95, 0.99, 1.0});
  json.Series("zipf_theta", thetas);
  std::vector<std::vector<double>> columns(AllMechanisms().size());
  for (double theta : thetas) {
    std::printf("%-12s", theta == 0.0 ? "uniform" : ("zipf-" + std::to_string(theta)).substr(0, 9).c_str());
    for (size_t mi = 0; mi < AllMechanisms().size(); ++mi) {
      const Mechanism m = AllMechanisms()[mi];
      ClusterConfig cfg = PaperDefaultConfig(m);
      cfg.zipf_theta = theta;
      ClusterSim sim(cfg);
      const double column_width = m == Mechanism::kDistCache          ? 14
                                  : m == Mechanism::kCacheReplication ? 18
                                  : m == Mechanism::kCachePartition   ? 16
                                                                      : 10;
      const double saturation = sim.SaturationThroughput();
      columns[mi].push_back(saturation);
      std::printf(" %*.0f", static_cast<int>(column_width), saturation);
    }
    std::printf("\n");
  }
  json.Series("distcache", columns[0]);
  json.Series("cache_replication", columns[1]);
  json.Series("cache_partition", columns[2]);
  json.Series("no_cache", columns[3]);
}

}  // namespace
}  // namespace distcache

int main(int argc, char** argv) {
  distcache::BenchJson json(argc, argv, "fig9a");
  distcache::Run(json);
  return 0;
}
