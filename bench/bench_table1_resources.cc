// Table 1: hardware resource usage of the DistCache switch programs.
// We cannot run the Tofino compiler, so SwitchResourceModel accounts the same
// quantities (match entries, hash bits, SRAM blocks, action slots) from first
// principles for the P4 design of §5. The paper's measured values are printed
// alongside for comparison; the structural relations to check are (i) the client ToR
// is by far the lightest role, (ii) the storage-rack leaf is the heaviest (caching +
// miss forwarding), (iii) all roles are small next to a full switch.p4.
#include <cstdio>

#include "cache/resource_model.h"
#include "dataplane/cache_program.h"

namespace distcache {
namespace {

struct PaperRow {
  const char* role;
  int match_entries;
  int hash_bits;
  int srams;
  int action_slots;
};

void Run() {
  std::printf("\n=== Table 1: switch hardware resource usage ===\n");
  std::printf("%-16s %14s %10s %8s %13s\n", "role", "match entries", "hash bits",
              "SRAMs", "action slots");
  const PaperRow paper[] = {
      {"Switch.p4", 804, 1678, 293, 503},
      {"Spine", 149, 751, 250, 98},
      {"Leaf (Client)", 76, 209, 91, 32},
      {"Leaf (Server)", 120, 721, 252, 108},
  };
  std::printf("--- paper (Tofino compiler output) ---\n");
  for (const PaperRow& row : paper) {
    std::printf("%-16s %14d %10d %8d %13d\n", row.role, row.match_entries,
                row.hash_bits, row.srams, row.action_slots);
  }
  std::printf("--- this repo (first-principles model of the same P4 design) ---\n");
  SwitchResourceModel model{SwitchResourceModel::Config{}};
  for (const SwitchResources& r : model.EstimateAll()) {
    std::printf("%-16s %14u %10u %8u %13u\n", r.role.c_str(), r.match_entries,
                r.hash_bits, r.sram_blocks, r.action_slots);
  }
  std::printf("--- this repo (derived from the executable PISA pipeline program) ---\n");
  PipelineCacheSwitch pipeline_switch{PipelineCacheSwitch::Config{}};
  const PipelineResources pres = pipeline_switch.Resources();
  std::printf("%-16s %14u %10u %8u %13u   (stages used: %u; lookup-table capacity\n",
              "Cache program", pres.match_entries, pres.hash_bits, pres.sram_blocks,
              pres.action_slots, pres.stages_used);
  std::printf("%-16s dominates match entries — the paper reports installed entries)\n",
              "");
}

}  // namespace
}  // namespace distcache

int main() {
  distcache::Run();
  return 0;
}
