// Per-node cache-policy comparison (core/cache_policy.h) — the differential
// bench behind the policy layer.
//
// DistCache's premise is that a *static* top-k allocation with balanced
// partitioning and power-of-k routing beats classical per-node dynamic caching
// in a switch hierarchy: the dynamic policies pay duplication (inclusive),
// cold-start misses, and single-candidate routing for their adaptivity. This
// bench runs that comparison end to end over the repo's policy layer, re-using
// the paper's three experiment axes as policy sweeps:
//
//   * skew sweep (Fig. 9a analog) — cache hit ratio per policy as Zipf theta
//     grows: static top-k tracks the analytic pmf mass of the cached set;
//     LRU/LFU/FIFO/SLRU pay the churn of sampling-driven admission;
//   * write-ratio sweep (Fig. 10 analog) — hit ratio and write absorption per
//     policy as the write ratio grows: write-through charges coherence on every
//     cached write, write-back absorbs write hits at the caches and pays
//     eviction-time writebacks instead (both counters reported);
//   * failure + hot-shift timeline (Fig. 11 / §6.4 analog) — delivered fraction
//     and hit ratio through spine failure, controller remap, recovery, then a
//     hot-set rotation: the static policies need the controller's re-allocation
//     to rewarm, the dynamic policies re-adapt on their own (their selling
//     point, and the bench shows what it costs at equal capacity).
//
// Every sweep runs the sequential engine (the semantic reference); the skew
// sweep adds the fluid engine's analytic hit ratio per policy (Che/FIFO/LFU
// closed forms) as a cross-check column. Acceptance: distcache must beat every
// dynamic policy on hit ratio at theta = 0.99 (the paper's premise), and the
// dynamic policies must recover within 2 intervals of a hot-set rotation
// without controller help.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/cache_policy.h"
#include "sim/sim_backend.h"

namespace distcache {
namespace {

struct PolicyUnderTest {
  CachePolicyKind kind;
  WritePolicy write;  // dynamic policies only; ignored for static kinds
};

ClusterConfig BenchConfig() {
  ClusterConfig cfg = PaperDefaultConfig(Mechanism::kDistCache);
  // Scaled-down cluster: the policy comparison needs request-level replacement
  // dynamics, not the paper's full 1024-server shape. 800 cached objects over
  // 1M keys keeps the cache:key ratio in the paper's regime.
  cfg.num_spine = 8;
  cfg.num_racks = 8;
  cfg.servers_per_rack = 8;
  cfg.per_switch_objects = 50;
  cfg.num_keys = 1'000'000;
  return cfg;
}

std::string PolicyLabel(const PolicyUnderTest& p) {
  std::string label = CachePolicyName(p.kind);
  if (PolicyIsDynamic(p.kind) && p.write == WritePolicy::kWriteBack) {
    label += "-wb";
  }
  return label;
}

SimBackendConfig MakeBackendConfig(const ClusterConfig& base,
                                   const PolicyUnderTest& p) {
  SimBackendConfig bcfg;
  bcfg.cluster = base;
  bcfg.cluster.cache_policy = p.kind;
  if (PolicyIsDynamic(p.kind)) {
    bcfg.cluster.write_policy = p.write;
  }
  return bcfg;
}

void Run(BenchJson& json) {
  const std::vector<PolicyUnderTest> policies = SmokeSweep<PolicyUnderTest>(
      {{CachePolicyKind::kDistCache, WritePolicy::kWriteThrough},
       {CachePolicyKind::kStaticTopK, WritePolicy::kWriteThrough},
       {CachePolicyKind::kLru, WritePolicy::kWriteThrough},
       {CachePolicyKind::kLfu, WritePolicy::kWriteThrough}},
      {{CachePolicyKind::kDistCache, WritePolicy::kWriteThrough},
       {CachePolicyKind::kStaticTopK, WritePolicy::kWriteThrough},
       {CachePolicyKind::kLru, WritePolicy::kWriteThrough},
       {CachePolicyKind::kLru, WritePolicy::kWriteBack},
       {CachePolicyKind::kLfu, WritePolicy::kWriteThrough},
       {CachePolicyKind::kFifo, WritePolicy::kWriteThrough},
       {CachePolicyKind::kSegmented, WritePolicy::kWriteThrough}});
  const ClusterConfig base = BenchConfig();
  const uint64_t requests = BenchSmoke() ? 200'000 : 2'000'000;
  const std::vector<double> thetas =
      SmokeSweep<double>({0.9, 0.99}, {0.5, 0.9, 0.95, 0.99});
  const std::vector<double> write_ratios =
      SmokeSweep<double>({0.0, 0.2}, {0.0, 0.1, 0.2, 0.5});

  json.Config("spines", static_cast<double>(base.num_spine));
  json.Config("racks", static_cast<double>(base.num_racks));
  json.Config("cache_per_switch", static_cast<double>(base.per_switch_objects));
  json.Config("num_keys", static_cast<double>(base.num_keys));
  json.Config("requests", static_cast<double>(requests));
  json.Config("policies", static_cast<double>(policies.size()));

  // ---- Sweep 1: skew (Fig. 9a analog) -------------------------------------
  PrintHeader("Cache-policy comparison, skew sweep (Fig. 9a analog)",
              "hit ratio per policy vs Zipf theta; fluid = per-policy analytic "
              "closed form");
  std::printf("%-14s", "policy");
  for (const double theta : thetas) {
    std::printf(" %8s%.2f %8s%.2f", "seq@", theta, "fluid@", theta);
  }
  std::printf("\n");
  double distcache_hit99 = 0.0;
  double best_dynamic_hit99 = 0.0;
  for (const PolicyUnderTest& p : policies) {
    const std::string label = PolicyLabel(p);
    std::printf("%-14s", label.c_str());
    std::vector<double> seq_hits, fluid_hits;
    for (const double theta : thetas) {
      SimBackendConfig bcfg = MakeBackendConfig(base, p);
      bcfg.cluster.zipf_theta = theta;
      const double seq_hit =
          MakeSimBackend(BackendKind::kSequential, bcfg)->Run(requests).hit_ratio();
      const double fluid_hit =
          MakeSimBackend(BackendKind::kFluid, bcfg)->Run(requests).hit_ratio();
      seq_hits.push_back(seq_hit);
      fluid_hits.push_back(fluid_hit);
      std::printf(" %12.4f %12.4f", seq_hit, fluid_hit);
      if (theta == 0.99) {
        if (p.kind == CachePolicyKind::kDistCache) {
          distcache_hit99 = seq_hit;
        } else if (PolicyIsDynamic(p.kind) && seq_hit > best_dynamic_hit99) {
          best_dynamic_hit99 = seq_hit;
        }
      }
    }
    std::printf("\n");
    json.Series("skew_hit_seq_" + label, seq_hits);
    json.Series("skew_hit_fluid_" + label, fluid_hits);
  }
  json.Series("skew_thetas", thetas);

  // ---- Sweep 2: write ratio (Fig. 10 analog) ------------------------------
  PrintHeader("Cache-policy comparison, write-ratio sweep (Fig. 10 analog)",
              "hit ratio per policy vs write ratio; wb-absorb = writes answered "
              "by a cache (write-back), writebacks = dirty flushes to servers");
  std::printf("%-14s", "policy");
  for (const double w : write_ratios) {
    std::printf(" %8s%.2f", "hit@w=", w);
  }
  std::printf(" %12s %12s\n", "wb-absorb", "writebacks");
  for (const PolicyUnderTest& p : policies) {
    const std::string label = PolicyLabel(p);
    std::printf("%-14s", label.c_str());
    std::vector<double> hits;
    double wb_absorb = 0.0;
    double writebacks = 0.0;
    for (const double w : write_ratios) {
      SimBackendConfig bcfg = MakeBackendConfig(base, p);
      bcfg.cluster.write_ratio = w;
      const BackendStats st =
          MakeSimBackend(BackendKind::kSequential, bcfg)->Run(requests);
      hits.push_back(st.hit_ratio());
      if (w == write_ratios.back()) {
        wb_absorb = st.writes == 0 ? 0.0
                                   : static_cast<double>(st.cache_write_hits) /
                                         static_cast<double>(st.writes);
        writebacks = static_cast<double>(st.writebacks);
      }
      std::printf(" %12.4f", hits.back());
    }
    std::printf(" %12.4f %12.0f\n", wb_absorb, writebacks);
    json.Series("write_hit_seq_" + label, hits);
    json.Metric("write_absorb_" + label, wb_absorb);
    json.Metric("writebacks_" + label, writebacks);
  }
  json.Series("write_ratios", write_ratios);

  // ---- Sweep 3: failure + hot-shift timeline (Fig. 11 / §6.4 analog) ------
  PrintHeader("Cache-policy comparison, failure + hot-shift timeline "
              "(Fig. 11 / §6.4 analog)",
              "per-interval hit ratio through: fail 2 spines @1/8, remap @2/8, "
              "recover @3/8, hot-set rotation @4/8, controller realloc @6/8 "
              "(static policies only; dynamic policies self-adapt)");
  const uint64_t t = requests / 8;
  std::vector<std::string> interval_names{"healthy", "failed", "remapped",
                                          "recovered", "shifted", "shifted2",
                                          "realloc", "realloc2"};
  std::printf("%-14s", "policy");
  for (const std::string& name : interval_names) {
    std::printf(" %10s", name.c_str());
  }
  std::printf("\n");
  double worst_dynamic_recovery = 1.0;
  for (const PolicyUnderTest& p : policies) {
    const std::string label = PolicyLabel(p);
    SimBackendConfig bcfg = MakeBackendConfig(base, p);
    bcfg.cluster.write_ratio = 0.1;
    bcfg.sample_interval = t;
    bcfg.events.push_back(ClusterEvent::FailSpine(1 * t, 0));
    bcfg.events.push_back(ClusterEvent::FailSpine(1 * t, 1));
    bcfg.events.push_back(ClusterEvent::RunRecovery(2 * t));
    bcfg.events.push_back(ClusterEvent::RecoverSpine(3 * t, 0));
    bcfg.events.push_back(ClusterEvent::RecoverSpine(3 * t, 1));
    bcfg.events.push_back(ClusterEvent::ShiftHotspot(4 * t, base.num_keys / 2));
    bcfg.events.push_back(ClusterEvent::ReallocateCache(6 * t));
    const BackendStats st =
        MakeSimBackend(BackendKind::kSequential, bcfg)->Run(requests);
    std::printf("%-14s", label.c_str());
    std::vector<double> series_hits, series_delivered;
    for (const auto& pt : st.series) {
      series_hits.push_back(pt.hit_ratio());
      series_delivered.push_back(pt.delivered_fraction());
      std::printf(" %10.4f", pt.hit_ratio());
    }
    std::printf("\n");
    json.Series("timeline_hit_" + label, series_hits);
    json.Series("timeline_delivered_" + label, series_delivered);
    // Dynamic-policy self-recovery: hit ratio two intervals after the rotation
    // (before the controller realloc fires) relative to the healthy interval.
    if (PolicyIsDynamic(p.kind) && st.series.size() >= 6 &&
        st.series[0].hit_ratio() > 0.0) {
      worst_dynamic_recovery =
          std::min(worst_dynamic_recovery,
                   st.series[5].hit_ratio() / st.series[0].hit_ratio());
    }
  }

  // ---- Acceptance ---------------------------------------------------------
  std::printf("\ndistcache hit ratio @theta=0.99: %.4f; best dynamic policy: %.4f "
              "(static must win: %s)\n",
              distcache_hit99, best_dynamic_hit99,
              distcache_hit99 > best_dynamic_hit99 ? "yes" : "NO");
  std::printf("worst dynamic-policy self-recovery after hot-set rotation "
              "(pre-realloc hit vs healthy): %.3f (must be > 0.60)\n",
              worst_dynamic_recovery);
  json.Metric("distcache_hit_theta99", distcache_hit99);
  json.Metric("best_dynamic_hit_theta99", best_dynamic_hit99);
  json.Metric("worst_dynamic_self_recovery", worst_dynamic_recovery);
}

}  // namespace
}  // namespace distcache

int main(int argc, char** argv) {
  distcache::BenchJson json(argc, argv, "policy");
  distcache::Run(json);
  return 0;
}
