// Cross-core engine-scaling harness: throughput of the simulator itself as
// worker shards are added, across hierarchy depths and workload shapes.
//
// This is the regression harness for the sharded engine's scaling substrate
// (lock-free SPSC transport, branch-free hot-path sink, batched request loop —
// see docs/ARCHITECTURE.md "hot-path rules"). The contract it guards:
//
//   * throughput is monotone (within measurement noise) from 1 to 4 shards —
//     the pre-substrate engine *lost* ~20% going 1 -> 4, because every added
//     shard added mutex traffic and owner-split branch mispredicts to the
//     per-request path;
//   * sharded x4 clears 2.5x the sequential reference on the L=2 Zipf-0.99
//     read-only workload (Fig. 9(c) shape).
//
// Sweep: substrate {seq, sharded threads, multiproc processes} x shards
// {1, 2, 4} x L {2, 3} x workload {uniform, zipf-0.99, phased hot-shift}. The
// sharded and multiproc rows run the *same* per-shard engine — the column
// difference is purely the transport substrate (in-process SPSC rings vs
// shared-memory arena rings plus fork/stats-codec overhead), which is exactly
// what the multiproc rows exist to measure. Every point is best-of-N wall time
// (the harness shares its host with noisy neighbours; best-of is the standard
// de-noising for throughput floors). Emits BENCH_scaling.json under --json.
//
// --pin-cores: pin each shard to a core (threads for sharded, whole processes
// for multiproc); recorded in the JSON config so pinned and unpinned artifacts
// are never compared as like-for-like.
//
// --gate: after the sweep, exit non-zero unless x4 >= 0.9 * x1 on L=2
// zipf-0.99 for *both* substrates (the exact regression this harness exists to
// catch — the 0.9 tolerance absorbs shared-host noise, while the historical
// in-process bug sat at 0.72 to 0.84). Hosts that cannot map the shared arena
// (exhausted /dev/shm, locked-down sandboxes) skip the multiproc rows and
// their gate leg with a note instead of failing — the in-process legs still
// gate. The perf-smoke CI job runs this in DISTCACHE_BENCH_SMOKE mode.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "sim/multiproc_backend.h"
#include "sim/sim_backend.h"

namespace distcache {
namespace {

struct Workload {
  const char* name;
  double zipf_theta;
  bool phased;  // mid-run hot-spot shift + re-allocation (§6.4)
};

struct Point {
  std::string key;   // e.g. "L2_zipf099_x4"
  double mrps = 0.0;
  double hit_ratio = 0.0;
  uint64_t ring_messages = 0;
  uint64_t contended = 0;
  uint64_t uncontended = 0;
};

constexpr uint32_t kNodesPerLayer = 32;

SimBackendConfig MakeConfig(size_t layers, const Workload& w, uint64_t requests) {
  SimBackendConfig bcfg;
  bcfg.cluster = PaperDefaultConfig(Mechanism::kDistCache);
  bcfg.cluster.zipf_theta = w.zipf_theta;
  if (layers != 2) {
    bcfg.cluster.cache_layers.assign(
        layers, LayerSpec{kNodesPerLayer, bcfg.cluster.per_switch_objects});
  }
  if (w.phased) {
    bcfg.events.push_back(ClusterEvent::ShiftHotspot(requests / 3, 50'000'000));
    bcfg.events.push_back(ClusterEvent::ReallocateCache(requests / 2));
  }
  return bcfg;
}

// Best-of-N throughput for one engine point; stats (hit ratio, transport
// counters) come from the last run — they are trial-invariant up to scheduling
// noise.
Point Measure(const std::string& key, BackendKind kind, uint32_t shards,
              size_t layers, const Workload& w, uint64_t requests, int trials,
              bool pin_cores) {
  Point p;
  p.key = key;
  for (int t = 0; t < trials; ++t) {
    SimBackendConfig bcfg = MakeConfig(layers, w, requests);
    bcfg.shards = shards;
    bcfg.pin_cores = pin_cores;
    const BackendStats st = MakeSimBackend(kind, bcfg)->Run(requests);
    p.mrps = std::max(p.mrps, st.throughput_mrps());
    p.hit_ratio = st.hit_ratio();
    p.ring_messages = st.ring_messages;
    p.contended = st.contended_receives;
    p.uncontended = st.uncontended_receives;
  }
  return p;
}

// One shard-count sweep on one substrate; returns {x1 mrps, x4 mrps} for the
// gate when this is the L2 zipf099 cell.
struct Substrate {
  const char* name;      // row label and JSON key infix ("" for sharded: the
  BackendKind kind;      // pre-substrate keys stay stable across artifacts)
  const char* key_infix;
};

int Run(BenchJson& json, bool gate, bool pin_cores) {
  const uint64_t requests = BenchSmoke() ? 2'000'000 : 8'000'000;
  const int trials = 3;  // best-of-3 in both modes; smoke shrinks requests only
  const std::vector<uint32_t> shard_sweep{1, 2, 4};
  const std::vector<size_t> layer_sweep{2, 3};
  const std::vector<Workload> workloads{
      {"uniform", 0.0, false},
      {"zipf099", 0.99, false},
      {"phased", 0.99, true},
  };
  // Detect-and-skip (not fail): a host that cannot map the shared arena — an
  // exhausted /dev/shm-style shm budget, a locked-down sandbox, a non-Linux
  // build — still produces the full in-process artifact.
  const bool multiproc_ok = MultiprocBackend::Supported();
  std::vector<Substrate> substrates{{"sharded", BackendKind::kSharded, ""}};
  if (multiproc_ok) {
    substrates.push_back({"multiproc", BackendKind::kMultiproc, "multiproc_"});
  }

  PrintHeader("Engine scaling: simulator throughput vs worker shards",
              "paper-default cluster (32 nodes/layer), read-only; best-of-" +
                  std::to_string(trials) + " wall time per point; 'seq' = "
                  "sequential reference engine; 'multiproc' = one forked, "
                  "shared-memory shard process per shard");
  json.Config("requests", static_cast<double>(requests));
  json.Config("trials", static_cast<double>(trials));
  json.Config("nodes_per_layer", static_cast<double>(kNodesPerLayer));
  json.Config("pin_cores", pin_cores ? 1.0 : 0.0);
  json.Config("multiproc_supported", multiproc_ok ? 1.0 : 0.0);
  if (!multiproc_ok) {
    std::printf("\nmultiproc substrate: skipped (shared-memory arena "
                "unavailable on this host)\n");
  }

  struct GateLeg {
    double x1 = 0.0;
    double x4 = 0.0;
  };
  std::vector<GateLeg> gate_legs(substrates.size());
  double gate_seq = 0.0;
  for (const size_t layers : layer_sweep) {
    for (const Workload& w : workloads) {
      const std::string prefix = "L" + std::to_string(layers) + "_" + w.name;
      std::printf("\n%-22s %10s %10s %12s %14s %12s\n", prefix.c_str(), "Mreq/s",
                  "vs seq", "hit ratio", "ring msgs", "mutex polls");
      const Point seq = Measure(prefix + "_seq", BackendKind::kSequential, 1,
                                layers, w, requests, trials, pin_cores);
      json.Metric(seq.key + "_mrps", seq.mrps);
      std::printf("%-22s %10.2f %9.2fx %12.4f %14s %12s\n", "seq", seq.mrps, 1.0,
                  seq.hit_ratio, "-", "-");
      for (size_t s = 0; s < substrates.size(); ++s) {
        const Substrate& sub = substrates[s];
        std::vector<double> shard_series;
        for (const uint32_t shards : shard_sweep) {
          const Point p = Measure(
              prefix + "_" + sub.key_infix + "x" + std::to_string(shards),
              sub.kind, shards, layers, w, requests, trials, pin_cores);
          shard_series.push_back(p.mrps);
          json.Metric(p.key + "_mrps", p.mrps);
          json.Metric(p.key + "_hit_ratio", p.hit_ratio);
          std::printf("%-22s %10.2f %9.2fx %12.4f %14llu %12llu\n",
                      (std::string(sub.name) + " x" + std::to_string(shards))
                          .c_str(),
                      p.mrps, seq.mrps > 0 ? p.mrps / seq.mrps : 0.0,
                      p.hit_ratio,
                      static_cast<unsigned long long>(p.ring_messages),
                      static_cast<unsigned long long>(p.contended));
          if (layers == 2 && std::strcmp(w.name, "zipf099") == 0) {
            gate_seq = seq.mrps;
            if (shards == 1) {
              gate_legs[s].x1 = p.mrps;
            } else if (shards == 4) {
              gate_legs[s].x4 = p.mrps;
            }
          }
        }
        // "_sharded_mrps" / "_multiproc_mrps": the legacy sharded series key
        // is load-bearing for artifact diffing across PRs.
        json.Series(prefix + "_" + sub.name + "_mrps", shard_series);
      }
    }
  }

  int failed = 0;
  for (size_t s = 0; s < substrates.size(); ++s) {
    const Substrate& sub = substrates[s];
    const GateLeg& leg = gate_legs[s];
    std::printf("\nL2 zipf-0.99 %s summary: seq %.2f, x1 %.2f, x4 %.2f  "
                "(x4/x1 %.2f, x4/seq %.2f)\n",
                sub.name, gate_seq, leg.x1, leg.x4,
                leg.x1 > 0 ? leg.x4 / leg.x1 : 0.0,
                gate_seq > 0 ? leg.x4 / gate_seq : 0.0);
    json.Metric(std::string(sub.key_infix) + "gate_x4_over_x1",
                leg.x1 > 0 ? leg.x4 / leg.x1 : 0.0);
    json.Metric(std::string(sub.key_infix) + "gate_x4_over_seq",
                gate_seq > 0 ? leg.x4 / gate_seq : 0.0);
    if (gate) {
      if (leg.x4 < 0.9 * leg.x1) {
        std::fprintf(stderr,
                     "perf gate FAILED: %s x4 (%.2f Mreq/s) < 0.9 x %s x1 "
                     "(%.2f Mreq/s) — the engine is losing throughput as "
                     "shards are added again\n",
                     sub.name, leg.x4, sub.name, leg.x1);
        failed = 1;
      } else {
        std::printf("perf gate OK (%s): x4/x1 = %.2f (threshold 0.9)\n",
                    sub.name, leg.x4 / leg.x1);
      }
    }
  }
  return failed;
}

}  // namespace
}  // namespace distcache

int main(int argc, char** argv) {
  bool gate = false;
  bool pin_cores = false;
  for (int i = 1; i < argc; ++i) {
    gate = gate || std::strcmp(argv[i], "--gate") == 0;
    pin_cores = pin_cores || std::strcmp(argv[i], "--pin-cores") == 0;
  }
  distcache::BenchJson json(argc, argv, "scaling");
  return distcache::Run(json, gate, pin_cores);
}
