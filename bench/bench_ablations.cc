// Ablations of DistCache's design choices (DESIGN.md §5):
//  1. Query routing policy: PoT vs random-of-two vs always-spine.
//  2. Telemetry freshness: continuous piggybacking vs one-epoch-stale snapshots
//     (herding), with and without aging.
//  3. Layer shape (§3.3 non-uniform remark): 32 spines at 1x rack aggregate vs
//     8 spines at 4x vs 4 spines at 8x (same aggregate spine capacity).
//  4. Coherence cost sensitivity: per-copy server cost sweep at a fixed write ratio.
#include <cstdio>

#include "bench/bench_common.h"

namespace distcache {
namespace {

double Throughput(const ClusterConfig& cfg) {
  ClusterSim sim(cfg);
  return sim.SaturationThroughput();
}

void Run() {
  PrintHeader("Ablation 1: query routing policy (zipf-0.99, paper defaults)", "");
  {
    ClusterConfig cfg = PaperDefaultConfig(Mechanism::kDistCache);
    cfg.routing = RoutingPolicy::kPowerOfTwo;
    std::printf("  power-of-two-choices : %8.0f\n", Throughput(cfg));
    cfg.routing = RoutingPolicy::kRandom;
    std::printf("  random-of-two        : %8.0f\n", Throughput(cfg));
    cfg.routing = RoutingPolicy::kFirstChoice;
    std::printf("  always-spine         : %8.0f\n", Throughput(cfg));
  }

  PrintHeader("Ablation 2: telemetry freshness", "");
  {
    ClusterConfig cfg = PaperDefaultConfig(Mechanism::kDistCache);
    std::printf("  continuous telemetry : %8.0f\n", Throughput(cfg));
    cfg.stale_telemetry = true;
    std::printf("  1-epoch-stale (herd) : %8.0f\n", Throughput(cfg));
  }

  PrintHeader("Ablation 3: non-uniform layers (same aggregate spine capacity)", "");
  {
    struct Shape {
      uint32_t spines;
      double capacity_mult;
    };
    for (const Shape shape : {Shape{32, 1.0}, Shape{8, 4.0}, Shape{4, 8.0}}) {
      ClusterConfig cfg = PaperDefaultConfig(Mechanism::kDistCache);
      cfg.num_spine = shape.spines;
      cfg.spine_capacity = shape.capacity_mult * 32.0;
      std::printf("  %2u spines @ %2.0fx rack : %8.0f\n", shape.spines,
                  shape.capacity_mult, Throughput(cfg));
    }
  }

  PrintHeader("Ablation 4: coherence cost sensitivity (write ratio 0.1, zipf-0.99)",
              "per-copy server cost kappa; paper's protocol corresponds to a small "
              "fraction of a query's work");
  const std::vector<double> kappas =
      SmokeSweep<double>({0.25}, {0.0, 0.25, 0.5, 1.0, 2.0});
  for (double kappa : kappas) {
    ClusterConfig dist_cfg = PaperDefaultConfig(Mechanism::kDistCache);
    dist_cfg.write_ratio = 0.1;
    dist_cfg.coherence_server_cost = kappa;
    ClusterConfig repl_cfg = PaperDefaultConfig(Mechanism::kCacheReplication);
    repl_cfg.write_ratio = 0.1;
    repl_cfg.coherence_server_cost = kappa;
    std::printf("  kappa=%.2f  DistCache=%8.0f  CacheReplication=%8.0f\n", kappa,
                Throughput(dist_cfg), Throughput(repl_cfg));
  }

  PrintHeader("Ablation 5: independent vs aligned layer hashes",
              "aligned = spine partition keyed by the rack placement (no independence): "
              "a rack-hot switch pair shares all its hot objects, so the two choices "
              "collapse; independence restores the spread (key idea of §3.1)");
  {
    ClusterConfig cfg = PaperDefaultConfig(Mechanism::kDistCache);
    std::printf("  independent h0 (DistCache) : %8.0f\n", Throughput(cfg));
    ClusterConfig aligned = PaperDefaultConfig(Mechanism::kCachePartition);
    std::printf("  aligned layers (~NetCache) : %8.0f\n", Throughput(aligned));
  }
}

}  // namespace
}  // namespace distcache

int main() {
  distcache::Run();
  return 0;
}
