// Microbenchmarks of the substrate operations (google-benchmark): hashing, workload
// generation, sketch updates, switch lookup path, KV store ops, PoT routing decision,
// a full fluid-simulator tick, and the sharded-engine scaling substrate — transport
// (SPSC ring vs mutex channel, empty-poll fast path) and cache-line padding
// (padded vs unpadded per-thread load lanes) — so the two scaling-PR claims are
// individually measurable.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>

#include "cache/cache_switch.h"
#include "cluster/cluster_sim.h"
#include "common/cacheline.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/zipf.h"
#include "core/pot_router.h"
#include "kv/kv_store.h"
#include "runtime/channel.h"
#include "runtime/shm_arena.h"
#include "runtime/shm_ring.h"
#include "runtime/spsc_ring.h"
#include "sketch/bloom_filter.h"
#include "sketch/count_min.h"
#include "sketch/lru_map.h"

namespace distcache {
namespace {

void BM_Mix64(benchmark::State& state) {
  uint64_t x = 1;
  for (auto _ : state) {
    x = Mix64(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Mix64);

void BM_TabulationHash(benchmark::State& state) {
  TabulationHash h(1);
  uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h(++k));
  }
}
BENCHMARK(BM_TabulationHash);

void BM_ZipfSample(benchmark::State& state) {
  ZipfDistribution dist(100'000'000, 0.99);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_CountMinUpdate(benchmark::State& state) {
  CountMinSketch cm(CountMinSketch::Config{});
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cm.Update(rng.NextBounded(1 << 20)));
  }
}
BENCHMARK(BM_CountMinUpdate);

void BM_BloomInsertAndTest(benchmark::State& state) {
  BloomFilter bf(BloomFilter::Config{});
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bf.InsertAndTest(rng.NextBounded(1 << 20)));
  }
}
BENCHMARK(BM_BloomInsertAndTest);

void BM_LruPut(benchmark::State& state) {
  LruMap<uint64_t, uint64_t> lru(1024);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lru.Put(rng.NextBounded(1 << 16), 1));
  }
}
BENCHMARK(BM_LruPut);

void BM_KvStorePut(benchmark::State& state) {
  KvStore kv(1 << 16);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kv.Put(rng.NextBounded(1 << 14), "value"));
  }
}
BENCHMARK(BM_KvStorePut);

void BM_KvStoreGet(benchmark::State& state) {
  KvStore kv(1 << 16);
  for (uint64_t k = 0; k < (1 << 14); ++k) {
    kv.Put(k, "value").ok();
  }
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kv.Get(rng.NextBounded(1 << 14)));
  }
}
BENCHMARK(BM_KvStoreGet);

void BM_CacheSwitchLookupHit(benchmark::State& state) {
  CacheSwitch::Config cfg;
  cfg.hh.sketch.width = 1024;
  cfg.hh.bloom.bits = 4096;
  CacheSwitch sw(cfg);
  for (uint64_t k = 0; k < 100; ++k) {
    sw.InsertInvalid(k, 16).ok();
    sw.UpdateValue(k, "0123456789abcdef").ok();
  }
  Rng rng(6);
  std::string value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw.Lookup(rng.NextBounded(100), &value));
  }
}
BENCHMARK(BM_CacheSwitchLookupHit);

void BM_PotRouterChoose(benchmark::State& state) {
  LoadTracker tracker({{32, 32}, 1.0});
  for (uint32_t i = 0; i < 32; ++i) {
    tracker.Update({0, i}, i * 10);
    tracker.Update({1, i}, i * 7);
  }
  PotRouter router(&tracker, RoutingPolicy::kPowerOfTwo, 9);
  const std::vector<CacheNodeId> candidates{{0, 5}, {1, 9}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.Choose(candidates));
  }
}
BENCHMARK(BM_PotRouterChoose);

// ---- sharded-engine transport: ring vs mutex channel ------------------------
// Uncontended single-thread push+pop round trip. The ring's round trip is a
// couple of plain loads/stores plus two release stores; the channel's is two
// mutex acquisitions, a deque allocation amortized, and a condvar notify.
void BM_SpscRingPushPop(benchmark::State& state) {
  SpscRing<uint64_t> ring(256);
  uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.TryPush(uint64_t{++x}));
    benchmark::DoNotOptimize(ring.TryPop());
  }
}
BENCHMARK(BM_SpscRingPushPop);

void BM_ChannelSendTryReceive(benchmark::State& state) {
  Channel<uint64_t> channel;
  uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(channel.Send(uint64_t{++x}));
    benchmark::DoNotOptimize(channel.TryReceive());
  }
}
BENCHMARK(BM_ChannelSendTryReceive);

// Cross-thread transfer throughput: producer thread 0, consumer thread 1.
// Run with --benchmark_filter=Transfer to compare the two transports under a
// real two-thread handoff (requires >= 2 online cores to be meaningful).
void BM_SpscRingTransfer(benchmark::State& state) {
  static SpscRing<uint64_t>* ring = nullptr;
  if (state.thread_index() == 0) {
    ring = new SpscRing<uint64_t>(1024);
  }
  uint64_t x = 0;
  for (auto _ : state) {
    if (state.threads() == 1) {
      // Single-thread fallback: self-transfer.
      while (!ring->TryPush(uint64_t{++x})) {
      }
      benchmark::DoNotOptimize(ring->TryPop());
    } else if (state.thread_index() == 0) {
      while (!ring->TryPush(uint64_t{++x})) {
      }
    } else {
      while (!ring->TryPop()) {
      }
    }
  }
  if (state.thread_index() == 0) {
    delete ring;
    ring = nullptr;
  }
}
BENCHMARK(BM_SpscRingTransfer)->Threads(1)->Threads(2)->UseRealTime();

// Same handoff over the multiproc substrate: a shared-memory arena ring
// (runtime/shm_ring.h) with one 64-byte slot per message. Threads stand in for
// the fork pair — each side holds its own view object over the same arena
// storage, exactly the aliasing the processes have — so the row isolates the
// ring-port cost (serialize-into-slot, offset arithmetic) without fork noise.
// Compare the three Transfer rows: shm ring vs in-process ring is the
// substrate swap; channel is the mutex baseline both rings replaced.
void BM_ShmRingTransfer(benchmark::State& state) {
  constexpr size_t kCapacity = 1024;
  constexpr size_t kSlotBytes = sizeof(uint64_t);
  static ShmArena* arena = nullptr;
  if (state.thread_index() == 0) {
    arena = new ShmArena();
    arena->Map(ShmSpscRing::BytesFor(kCapacity, kSlotBytes),
               /*huge_pages=*/false);
  }
  // Per-thread view, like per-process views over the inherited mapping.
  ShmSpscRing ring(arena->base(), kCapacity, kSlotBytes);
  uint64_t x = 0;
  for (auto _ : state) {
    if (state.threads() == 1) {
      void* slot;
      while ((slot = ring.TryStage()) == nullptr) {
      }
      ++x;
      std::memcpy(slot, &x, sizeof(x));
      ring.Publish();
      const void* front = ring.Front();
      benchmark::DoNotOptimize(front);
      ring.Pop();
    } else if (state.thread_index() == 0) {
      void* slot;
      while ((slot = ring.TryStage()) == nullptr) {
      }
      ++x;
      std::memcpy(slot, &x, sizeof(x));
      ring.Publish();
    } else {
      const void* front;
      while ((front = ring.Front()) == nullptr) {
      }
      uint64_t v;
      std::memcpy(&v, front, sizeof(v));
      benchmark::DoNotOptimize(v);
      ring.Pop();
    }
  }
  if (state.thread_index() == 0) {
    delete arena;
    arena = nullptr;
  }
}
BENCHMARK(BM_ShmRingTransfer)->Threads(1)->Threads(2)->UseRealTime();

// The mutex-channel transfer baseline for the same two-thread handoff.
void BM_ChannelTransfer(benchmark::State& state) {
  static Channel<uint64_t>* channel = nullptr;
  if (state.thread_index() == 0) {
    channel = new Channel<uint64_t>();
  }
  uint64_t x = 0;
  for (auto _ : state) {
    if (state.threads() == 1) {
      benchmark::DoNotOptimize(channel->Send(uint64_t{++x}));
      benchmark::DoNotOptimize(channel->TryReceive());
    } else if (state.thread_index() == 0) {
      benchmark::DoNotOptimize(channel->Send(uint64_t{++x}));
    } else {
      while (!channel->TryReceive()) {
      }
    }
  }
  if (state.thread_index() == 0) {
    delete channel;
    channel = nullptr;
  }
}
BENCHMARK(BM_ChannelTransfer)->Threads(1)->Threads(2)->UseRealTime();

// The batch-boundary poll of an idle inbox: the Channel's lock-free emptiness
// fast path (one acquire load) vs the cost it replaced (full mutex acquisition,
// modelled by size() which still locks).
void BM_ChannelEmptyPollFastPath(benchmark::State& state) {
  Channel<uint64_t> channel;
  for (auto _ : state) {
    benchmark::DoNotOptimize(channel.TryReceive());  // empty: no mutex
  }
}
BENCHMARK(BM_ChannelEmptyPollFastPath);

void BM_ChannelEmptyPollMutex(benchmark::State& state) {
  Channel<uint64_t> channel;
  for (auto _ : state) {
    benchmark::DoNotOptimize(channel.size());  // the pre-PR cost: lock, look
  }
}
BENCHMARK(BM_ChannelEmptyPollMutex);

// ---- cache-line padding: per-thread load lanes ------------------------------
// Each thread hammers its own accumulator, either packed adjacently in one
// cache line (the pre-PR layout trap for per-shard LoadTracker lanes and stats
// accumulators) or padded to a line each (the scaling-substrate layout). On a
// multi-core host the unpadded variant collapses under coherence traffic;
// the padded one scales linearly. (On a single online core the two converge —
// false sharing is a cross-core cost.)
constexpr int kMaxLanes = 8;

void BM_LoadLanesUnpadded(benchmark::State& state) {
  alignas(kCacheLineSize) static double lanes[kMaxLanes];  // one shared line
  double* lane = &lanes[state.thread_index() % kMaxLanes];
  for (auto _ : state) {
    benchmark::DoNotOptimize(*lane += 1.0);
  }
}
BENCHMARK(BM_LoadLanesUnpadded)->Threads(1)->Threads(4)->UseRealTime();

void BM_LoadLanesPadded(benchmark::State& state) {
  struct alignas(kCacheLineSize) PaddedLane {
    double value;
  };
  static PaddedLane lanes[kMaxLanes];  // one line per lane
  double* lane = &lanes[state.thread_index() % kMaxLanes].value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(*lane += 1.0);
  }
}
BENCHMARK(BM_LoadLanesPadded)->Threads(1)->Threads(4)->UseRealTime();

void BM_ClusterSimTick(benchmark::State& state) {
  ClusterConfig cfg;
  cfg.num_spine = 32;
  cfg.num_racks = 32;
  cfg.servers_per_rack = 32;
  cfg.per_switch_objects = 100;
  ClusterSim sim(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.RunTicks(512.0, 1));
  }
}
BENCHMARK(BM_ClusterSimTick)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace distcache

BENCHMARK_MAIN();
