// Microbenchmarks of the substrate operations (google-benchmark): hashing, workload
// generation, sketch updates, switch lookup path, KV store ops, PoT routing decision
// and a full fluid-simulator tick.
#include <benchmark/benchmark.h>

#include "cache/cache_switch.h"
#include "cluster/cluster_sim.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/zipf.h"
#include "core/pot_router.h"
#include "kv/kv_store.h"
#include "sketch/bloom_filter.h"
#include "sketch/count_min.h"
#include "sketch/lru_map.h"

namespace distcache {
namespace {

void BM_Mix64(benchmark::State& state) {
  uint64_t x = 1;
  for (auto _ : state) {
    x = Mix64(x);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Mix64);

void BM_TabulationHash(benchmark::State& state) {
  TabulationHash h(1);
  uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h(++k));
  }
}
BENCHMARK(BM_TabulationHash);

void BM_ZipfSample(benchmark::State& state) {
  ZipfDistribution dist(100'000'000, 0.99);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.Sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_CountMinUpdate(benchmark::State& state) {
  CountMinSketch cm(CountMinSketch::Config{});
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cm.Update(rng.NextBounded(1 << 20)));
  }
}
BENCHMARK(BM_CountMinUpdate);

void BM_BloomInsertAndTest(benchmark::State& state) {
  BloomFilter bf(BloomFilter::Config{});
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bf.InsertAndTest(rng.NextBounded(1 << 20)));
  }
}
BENCHMARK(BM_BloomInsertAndTest);

void BM_LruPut(benchmark::State& state) {
  LruMap<uint64_t, uint64_t> lru(1024);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lru.Put(rng.NextBounded(1 << 16), 1));
  }
}
BENCHMARK(BM_LruPut);

void BM_KvStorePut(benchmark::State& state) {
  KvStore kv(1 << 16);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kv.Put(rng.NextBounded(1 << 14), "value"));
  }
}
BENCHMARK(BM_KvStorePut);

void BM_KvStoreGet(benchmark::State& state) {
  KvStore kv(1 << 16);
  for (uint64_t k = 0; k < (1 << 14); ++k) {
    kv.Put(k, "value").ok();
  }
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kv.Get(rng.NextBounded(1 << 14)));
  }
}
BENCHMARK(BM_KvStoreGet);

void BM_CacheSwitchLookupHit(benchmark::State& state) {
  CacheSwitch::Config cfg;
  cfg.hh.sketch.width = 1024;
  cfg.hh.bloom.bits = 4096;
  CacheSwitch sw(cfg);
  for (uint64_t k = 0; k < 100; ++k) {
    sw.InsertInvalid(k, 16).ok();
    sw.UpdateValue(k, "0123456789abcdef").ok();
  }
  Rng rng(6);
  std::string value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sw.Lookup(rng.NextBounded(100), &value));
  }
}
BENCHMARK(BM_CacheSwitchLookupHit);

void BM_PotRouterChoose(benchmark::State& state) {
  LoadTracker tracker({{32, 32}, 1.0});
  for (uint32_t i = 0; i < 32; ++i) {
    tracker.Update({0, i}, i * 10);
    tracker.Update({1, i}, i * 7);
  }
  PotRouter router(&tracker, RoutingPolicy::kPowerOfTwo, 9);
  const std::vector<CacheNodeId> candidates{{0, 5}, {1, 9}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.Choose(candidates));
  }
}
BENCHMARK(BM_PotRouterChoose);

void BM_ClusterSimTick(benchmark::State& state) {
  ClusterConfig cfg;
  cfg.num_spine = 32;
  cfg.num_racks = 32;
  cfg.servers_per_rack = 32;
  cfg.per_switch_objects = 100;
  ClusterSim sim(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.RunTicks(512.0, 1));
  }
}
BENCHMARK(BM_ClusterSimTick)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace distcache

BENCHMARK_MAIN();
