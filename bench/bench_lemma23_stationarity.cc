// Lemmas 2 & 3: the power-of-two-choices process is stationary whenever a perfect
// matching exists (Lemma 2); with a single hash function the process is unstable
// with constant probability (Lemma 3) — a "life-or-death" difference, not a
// "shave off log n" one.
//
// Workload: zipf-0.99 over k = 8m objects, clipped at the theorem's per-object bound
// max_i p_i * R = T~/2 (computed at the highest load point so every row satisfies
// the precondition). The single-hash strawman gets the same 2m unit-rate nodes in a
// single layer, so its aggregate capacity is identical. We also cross-check the
// Foss–Chernova traffic intensity rho_max (Theorem 3's condition) computed exactly.
#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "common/zipf.h"
#include "sim/pot_process.h"

namespace distcache {
namespace {

struct PolicyResult {
  int stationary = 0;
  double mean_backlog = 0.0;
};

PolicyResult RunPolicy(ChoicePolicy policy, double load_fraction, size_t m, int seeds) {
  PolicyResult out;
  StreamingStats backlog;
  for (uint64_t seed = 0; seed < static_cast<uint64_t>(seeds); ++seed) {
    PotProcess::Config cfg;
    cfg.num_objects = 8 * m;
    cfg.upper_nodes = policy == ChoicePolicy::kSingleHash ? 0 : m;
    cfg.lower_nodes = policy == ChoicePolicy::kSingleHash ? 2 * m : m;
    cfg.service_rate = 1.0;
    cfg.total_rate = load_fraction * 2.0 * static_cast<double>(m);
    cfg.zipf_theta = 0.99;
    // Precondition at the most loaded row (load 0.85): p_max * R <= T~/2.
    cfg.pmf_cap = 1.0 / (2.0 * 0.85 * 2.0 * static_cast<double>(m));
    cfg.policy = policy;
    cfg.seed = seed;
    PotProcess process(cfg);
    const auto result = process.Run(500.0);
    out.stationary += result.stationary ? 1 : 0;
    backlog.Add(result.backlog_series.back());
  }
  out.mean_backlog = backlog.mean();
  return out;
}

void Run() {
  std::printf("\n=== Lemmas 2 & 3: PoT stationarity vs single hash ===\n");
  std::printf("2m queues, k=8m capped-zipf-0.99 objects, exponential service, 10\n");
  std::printf("seeds; single-hash gets the same 2m nodes in one layer for fairness\n");
  std::printf("%-6s %-8s | %-22s | %-22s | %-22s\n", "m", "load", "PoT (stat, backlog)",
              "single (stat, backlog)", "rand-2 (stat, backlog)");
  for (size_t m : {8, 16, 32}) {
    for (double load : {0.5, 0.7, 0.85}) {
      const PolicyResult pot = RunPolicy(ChoicePolicy::kPowerOfTwo, load, m, 10);
      const PolicyResult single = RunPolicy(ChoicePolicy::kSingleHash, load, m, 10);
      const PolicyResult rnd = RunPolicy(ChoicePolicy::kRandomOfTwo, load, m, 10);
      std::printf("%-6zu %-8.2f | %6d/10 %12.0f | %6d/10 %12.0f | %6d/10 %12.0f\n", m,
                  load, pot.stationary, pot.mean_backlog, single.stationary,
                  single.mean_backlog, rnd.stationary, rnd.mean_backlog);
    }
  }

  std::printf("\nrho_max certificate (exact, Theorem 3 condition), m=8, capped zipf:\n");
  std::printf("rho_max < 1 must predict the simulated stationarity (Lemma 2)\n");
  for (double load : {0.6, 0.9, 1.05}) {
    for (uint64_t seed = 0; seed < 3; ++seed) {
      PotProcess::Config cfg;
      cfg.num_objects = 64;
      cfg.upper_nodes = 8;
      cfg.lower_nodes = 8;
      cfg.total_rate = load * 16.0;
      cfg.zipf_theta = 0.99;
      cfg.pmf_cap = 1.0 / (2.0 * 16.0);  // p_max * R <= T~/2 even at overload
      cfg.seed = seed;
      PotProcess process(cfg);
      DiscreteDistribution dist(CappedZipfPmf(64, 0.99, cfg.pmf_cap));
      std::vector<double> rates(64);
      for (size_t i = 0; i < 64; ++i) {
        rates[i] = cfg.total_rate * dist.Pmf(i);
      }
      const double rho = process.graph().RhoMax(rates, 1.0);
      const bool stationary = process.Run(800.0).stationary;
      std::printf("  load=%.2f seed=%llu  rho_max=%.3f  simulated %-10s (predicted %s)\n",
                  load, static_cast<unsigned long long>(seed), rho,
                  stationary ? "stationary" : "UNSTABLE",
                  rho < 1.0 ? "stationary" : "unstable");
    }
  }
}

}  // namespace
}  // namespace distcache

int main() {
  distcache::Run();
  return 0;
}
