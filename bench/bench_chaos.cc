// Chaos sweep over the multiproc engine's fault classes (PR 10 tentpole
// proof): seeded fault plans (runtime/fault_plan.h) injected into real shard
// processes, swept over fault class x rate x seed, with three gates:
//
//   gate 1 (termination):  every run returns within a wall-clock deadline —
//                          no fault class may hang the supervisor or a
//                          survivor (the ISSUE's "no fault class may hang the
//                          run" criterion, measured, not assumed);
//   gate 2 (determinism):  every (seed, plan) run twice produces the same
//                          DeterministicStatsDigest — fault injection is
//                          keyed to request counts, not wall clock, so chaos
//                          runs are byte-reproducible;
//   gate 3 (degradation):  killing one of two shards without respawn loses
//                          exactly that shard's half of the quota
//                          (degraded_fraction == 0.5) and the survivors' hit
//                          ratio stays near the no-fault run — losses are
//                          proportional to lost quota, not amplified.
//
// Crash classes run under --respawn (the run must still complete its full
// quota); the degradation leg runs without it (the run must degrade, not
// abort). Hosts that cannot map the shm arena skip the sweep with a note —
// there is nothing to chaos-test without fork + arena. DISTCACHE_BENCH_SMOKE
// shrinks seeds and request counts for CI; emits BENCH_chaos.json under
// --json; --gate arms the three gates (exit 3 on failure, the repo's unified
// bench-gate exit code).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "runtime/fault_plan.h"
#include "sim/multiproc_backend.h"
#include "sim/sim_backend.h"
#include "sim/stats_codec.h"

namespace distcache {
namespace {

constexpr uint32_t kShards = 2;

struct ChaosResult {
  bool ok = true;          // ran, both runs returned
  bool deterministic = true;
  double wall_ms = 0.0;    // slower of the two runs
  BackendStats stats;
};

SimBackendConfig ChaosConfig(uint64_t requests, uint64_t seed) {
  SimBackendConfig bcfg;
  bcfg.cluster.num_spine = 8;
  bcfg.cluster.num_racks = 8;
  bcfg.cluster.servers_per_rack = 4;
  bcfg.cluster.per_switch_objects = 50;
  bcfg.cluster.num_keys = 1'000'000;
  bcfg.cluster.zipf_theta = 0.99;
  bcfg.cluster.write_ratio = 0.2;
  bcfg.cluster.seed = seed;
  bcfg.shards = kShards;
  bcfg.batch_size = 64;
  // A hotspot shift plus realloc rendezvous in every run, so control-plane
  // faults (delay, controller death) have a control plane to hit.
  bcfg.events = {ClusterEvent::ShiftHotspot(requests * 9 / 20, 12'345),
                 ClusterEvent::ReallocateCache(requests * 3 / 5)};
  return bcfg;
}

double RunOnce(const SimBackendConfig& bcfg, uint64_t requests,
               BackendStats* out) {
  const auto t0 = std::chrono::steady_clock::now();
  *out = MakeSimBackend(BackendKind::kMultiproc, bcfg)->Run(requests);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

// One chaos cell: a seeded random plan of `rate` events of one class,
// executed twice for the determinism gate.
ChaosResult RunCell(uint64_t requests, uint64_t seed, const std::string& spec,
                    bool respawn) {
  ChaosResult r;
  SimBackendConfig bcfg = ChaosConfig(requests, seed);
  bcfg.respawn = respawn;
  std::string error;
  if (!ParseFaultPlan(spec, kShards, requests, seed, &bcfg.fault_plan,
                      &error)) {
    std::fprintf(stderr, "bad fault spec %s: %s\n", spec.c_str(),
                 error.c_str());
    r.ok = false;
    return r;
  }
  BackendStats again;
  const double w1 = RunOnce(bcfg, requests, &r.stats);
  const double w2 = RunOnce(bcfg, requests, &again);
  r.wall_ms = w1 > w2 ? w1 : w2;
  r.deterministic =
      DeterministicStatsDigest(r.stats) == DeterministicStatsDigest(again);
  return r;
}

int Run(BenchJson& json, bool gate, uint64_t seed_base) {
  if (!MultiprocBackend::Supported()) {
    std::printf("bench_chaos: multiproc backend unavailable on this host "
                "(no fork/shm arena) — nothing to chaos-test, skipping\n");
    return 0;
  }

  const bool smoke = BenchSmoke();
  const uint64_t requests = smoke ? 100'000 : 400'000;
  // --seed-base shifts the whole seed set: the CI chaos-soak matrix fans a
  // smoke-sized run out over 10 bases, covering the full 10-seed sweep
  // without any single job paying for it.
  std::vector<uint64_t> seeds =
      SmokeSweep<uint64_t>({42, 43}, {42, 43, 44, 45, 46, 47, 48, 49, 50, 51});
  for (uint64_t& s : seeds) {
    s += seed_base;
  }
  const std::vector<uint32_t> rates = SmokeSweep<uint32_t>({1}, {1, 3});
  const double deadline_ms = smoke ? 30'000.0 : 120'000.0;

  // Crash classes need respawn to complete the quota; the rest run degraded
  // or unharmed without it.
  struct ClassSpec {
    const char* name;
    bool respawn;
  };
  const ClassSpec classes[] = {
      {"exit", true},  {"kill", true},  {"abort", true},  {"stall", false},
      {"drop", false}, {"delay", false}, {"corrupt", false},
  };

  PrintHeader("chaos sweep: fault classes x rates x seeds",
              "multiproc x" + std::to_string(kShards) + ", " +
                  std::to_string(requests) + " requests, " +
                  std::to_string(seeds.size()) + " seeds, every cell run "
                  "twice for the determinism gate");
  json.Config("shards", static_cast<double>(kShards));
  json.Config("requests", static_cast<double>(requests));
  json.Config("seeds", static_cast<double>(seeds.size()));
  json.Config("seed_base", static_cast<double>(seed_base));
  json.Config("smoke", smoke ? "yes" : "no");

  bool all_terminated = true;
  bool all_deterministic = true;
  double slowest_ms = 0.0;
  std::printf("%-8s %-5s %10s %8s %9s %9s %9s %6s\n", "class", "rate",
              "hit-ratio", "failed", "respawned", "degraded", "wall-ms",
              "det");
  for (const ClassSpec& cls : classes) {
    for (const uint32_t rate : rates) {
      double hit_sum = 0.0, degraded_sum = 0.0, wall_max = 0.0;
      uint64_t failed = 0, respawned = 0;
      bool det = true;
      for (const uint64_t seed : seeds) {
        const std::string spec =
            "random:" + std::to_string(rate) + ":" + cls.name;
        const ChaosResult r = RunCell(requests, seed, spec, cls.respawn);
        all_terminated = all_terminated && r.ok && r.wall_ms < deadline_ms;
        det = det && r.deterministic;
        hit_sum += r.stats.hit_ratio();
        degraded_sum += r.stats.degraded_fraction;
        failed += r.stats.failed_shards;
        respawned += r.stats.respawned_shards;
        wall_max = wall_max > r.wall_ms ? wall_max : r.wall_ms;
      }
      all_deterministic = all_deterministic && det;
      slowest_ms = slowest_ms > wall_max ? slowest_ms : wall_max;
      const double n = static_cast<double>(seeds.size());
      std::printf("%-8s %-5u %10.4f %8.1f %9.1f %9.4f %9.0f %6s\n", cls.name,
                  rate, hit_sum / n, static_cast<double>(failed) / n,
                  static_cast<double>(respawned) / n, degraded_sum / n,
                  wall_max, det ? "yes" : "NO");
      const std::string key = std::string(cls.name) + "_x" +
                              std::to_string(rate);
      json.Metric(key + "_hit_ratio", hit_sum / n);
      json.Metric(key + "_degraded", degraded_sum / n);
      json.Metric(key + "_wall_ms_max", wall_max);
      json.Metric(key + "_deterministic", det ? 1.0 : 0.0);
    }
  }

  // Arena-map failure: not part of the per-seed sweep (it fails before any
  // shard forks) but it must still fail *fast* and account for everything.
  BackendStats mapfail;
  {
    SimBackendConfig bcfg = ChaosConfig(requests, seeds[0]);
    std::string error;
    ParseFaultPlan("mapfail", kShards, requests, seeds[0], &bcfg.fault_plan,
                   &error);
    const double w = RunOnce(bcfg, requests, &mapfail);
    all_terminated = all_terminated && w < deadline_ms;
    std::printf("%-8s %-5s %10s %8u %9s %9.4f %9.0f %6s\n", "mapfail", "-",
                "-", static_cast<unsigned>(mapfail.failed_shards), "-",
                mapfail.degraded_fraction, w, "-");
  }
  const bool mapfail_ok =
      mapfail.failed_shards == kShards && mapfail.degraded_fraction == 1.0;

  // ---- degradation-proportionality leg ------------------------------------
  // Lose one of two shards (no respawn): exactly half the quota should be
  // charged to degraded_fraction and the survivors' hit ratio should track
  // the no-fault run — the loss is proportional, not amplified.
  double worst_hit_gap = 0.0;
  bool degrade_exact = true;
  for (const uint64_t seed : seeds) {
    SimBackendConfig clean_cfg = ChaosConfig(requests, seed);
    BackendStats clean;
    RunOnce(clean_cfg, requests, &clean);

    SimBackendConfig loss_cfg = ChaosConfig(requests, seed);
    std::string error;
    ParseFaultPlan("kill:1@" + std::to_string(requests / 8), kShards, requests,
                   seed, &loss_cfg.fault_plan, &error);
    BackendStats lost;
    const double w = RunOnce(loss_cfg, requests, &lost);
    all_terminated = all_terminated && w < deadline_ms;

    degrade_exact = degrade_exact && lost.failed_shards == 1 &&
                    lost.degraded_fraction == 0.5 &&
                    lost.requests == requests / 2;
    const double gap = std::fabs(lost.hit_ratio() - clean.hit_ratio());
    worst_hit_gap = worst_hit_gap > gap ? worst_hit_gap : gap;
  }
  std::printf("\nsingle-shard loss: degraded_fraction exact %s, worst "
              "survivor hit-ratio gap vs clean %.4f\n",
              degrade_exact ? "yes" : "NO", worst_hit_gap);
  json.Metric("loss_degraded_exact", degrade_exact ? 1.0 : 0.0);
  json.Metric("loss_worst_hit_gap", worst_hit_gap);
  json.Metric("slowest_wall_ms", slowest_ms);

  // ---- gates ---------------------------------------------------------------
  if (gate) {
    bool ok = true;
    if (!all_terminated) {
      std::fprintf(stderr, "chaos gate FAILED: a run exceeded the %.0fs "
                           "wall deadline (or failed to parse its plan)\n",
                   deadline_ms / 1000.0);
      ok = false;
    }
    if (!all_deterministic) {
      std::fprintf(stderr, "chaos gate FAILED: same-seed runs were not "
                           "byte-identical on the deterministic subset\n");
      ok = false;
    }
    if (!mapfail_ok) {
      std::fprintf(stderr, "chaos gate FAILED: mapfail did not fail all "
                           "shards with degraded_fraction 1.0\n");
      ok = false;
    }
    if (!degrade_exact || worst_hit_gap > 0.05) {
      std::fprintf(stderr, "chaos gate FAILED: single-shard loss not "
                           "proportional (exact=%d, hit gap %.4f > 0.05)\n",
                   degrade_exact ? 1 : 0, worst_hit_gap);
      ok = false;
    }
    if (!ok) {
      return 3;  // unified bench-gate exit code
    }
    std::printf("chaos gate OK: %zu classes terminated, deterministic, "
                "degradation proportional\n",
                sizeof(classes) / sizeof(classes[0]));
  }
  return 0;
}

}  // namespace
}  // namespace distcache

int main(int argc, char** argv) {
  bool gate = false;
  uint64_t seed_base = 0;
  for (int i = 1; i < argc; ++i) {
    gate = gate || std::strcmp(argv[i], "--gate") == 0;
    if (std::strncmp(argv[i], "--seed-base=", 12) == 0) {
      seed_base = std::strtoull(argv[i] + 12, nullptr, 10);
    }
  }
  distcache::BenchJson json(argc, argv, "chaos");
  return distcache::Run(json, gate, seed_base);
}
