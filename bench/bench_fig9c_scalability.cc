// Figure 9(c): normalized throughput vs number of storage servers (read-only).
// Racks (and spine switches) scale together, 32 servers per rack, per the paper's
// testbed discipline of rate-limiting every switch to one rack's aggregate.
//
// Paper shape: NoCache and CachePartition plateau; DistCache tracks CacheReplication
// and scales linearly. Our stability-based measurement exposes one honest deviation:
// Theorem 1 requires max_i p_i * R <= T~/2, and with Zipf-0.99 over 100M keys the
// hottest object alone (p0 ~ 4.95%) exceeds what its two copies can absorb once the
// system passes ~2000 servers, so strict DistCache saturates there. The paper's
// remark on non-uniform cache nodes (§3.3) addresses exactly this: with realistically
// faster spine switches (here 8x a rack's aggregate, which is still far below an
// actual Tofino:server ratio), linear scaling holds through 4096 servers. We print
// both, plus Zipf-0.9 where the precondition binds later.
#include <cstdio>

#include "bench/bench_common.h"

namespace distcache {
namespace {

double Measure(Mechanism m, uint32_t racks, double theta, double spine_capacity) {
  ClusterConfig cfg = PaperDefaultConfig(m);
  cfg.num_spine = racks;
  cfg.num_racks = racks;
  cfg.zipf_theta = theta;
  cfg.spine_capacity = spine_capacity;
  ClusterSim sim(cfg);
  return sim.SaturationThroughput(/*tolerance=*/0.01);
}

void Run() {
  PrintHeader("Figure 9(c): scalability (read-only, zipf-0.99)",
              "racks = spines, 32 servers/rack; 'DistCache*' = fast-spine variant "
              "(spine capacity 8x rack aggregate, §3.3 non-uniform remark)");
  std::printf("%-8s %12s %12s %18s %16s %10s\n", "servers", "DistCache", "DistCache*",
              "CacheReplication", "CachePartition", "NoCache");
  for (uint32_t racks : {4u, 8u, 16u, 32u, 64u, 128u}) {
    std::printf("%-8u", racks * 32);
    std::printf(" %12.0f", Measure(Mechanism::kDistCache, racks, 0.99, 0.0));
    std::printf(" %12.0f", Measure(Mechanism::kDistCache, racks, 0.99, 8.0 * 32.0));
    std::printf(" %18.0f", Measure(Mechanism::kCacheReplication, racks, 0.99, 0.0));
    std::printf(" %16.0f", Measure(Mechanism::kCachePartition, racks, 0.99, 0.0));
    std::printf(" %10.0f\n", Measure(Mechanism::kNoCache, racks, 0.99, 0.0));
  }
  PrintHeader("Figure 9(c) auxiliary: zipf-0.9 (theorem precondition binds later)", "");
  std::printf("%-8s %12s %18s\n", "servers", "DistCache", "CacheReplication");
  for (uint32_t racks : {4u, 8u, 16u, 32u, 64u}) {
    std::printf("%-8u %12.0f %18.0f\n", racks * 32,
                Measure(Mechanism::kDistCache, racks, 0.9, 0.0),
                Measure(Mechanism::kCacheReplication, racks, 0.9, 0.0));
  }
}

}  // namespace
}  // namespace distcache

int main() {
  distcache::Run();
  return 0;
}
