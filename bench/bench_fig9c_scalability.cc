// Figure 9(c): normalized throughput vs number of storage servers (read-only).
// Racks (and spine switches) scale together, 32 servers per rack, per the paper's
// testbed discipline of rate-limiting every switch to one rack's aggregate.
//
// Paper shape: NoCache and CachePartition plateau; DistCache tracks CacheReplication
// and scales linearly. Our stability-based measurement exposes one honest deviation:
// Theorem 1 requires max_i p_i * R <= T~/2, and with Zipf-0.99 over 100M keys the
// hottest object alone (p0 ~ 4.95%) exceeds what its two copies can absorb once the
// system passes ~2000 servers, so strict DistCache saturates there. The paper's
// remark on non-uniform cache nodes (§3.3) addresses exactly this: with realistically
// faster spine switches (here 8x a rack's aggregate, which is still far below an
// actual Tofino:server ratio), linear scaling holds through 4096 servers. We print
// both, plus Zipf-0.9 where the precondition binds later.
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "sim/sim_backend.h"

namespace distcache {
namespace {

double Measure(Mechanism m, uint32_t racks, double theta, double spine_capacity) {
  ClusterConfig cfg = PaperDefaultConfig(m);
  cfg.num_spine = racks;
  cfg.num_racks = racks;
  cfg.zipf_theta = theta;
  cfg.spine_capacity = spine_capacity;
  ClusterSim sim(cfg);
  return sim.SaturationThroughput(/*tolerance=*/0.01);
}

void Run(BenchJson& json) {
  PrintHeader("Figure 9(c): scalability (read-only, zipf-0.99)",
              "racks = spines, 32 servers/rack; 'DistCache*' = fast-spine variant "
              "(spine capacity 8x rack aggregate, §3.3 non-uniform remark)");
  std::printf("%-8s %12s %12s %18s %16s %10s\n", "servers", "DistCache", "DistCache*",
              "CacheReplication", "CachePartition", "NoCache");
  const std::vector<uint32_t> rack_sweep =
      SmokeSweep<uint32_t>({4u, 8u}, {4u, 8u, 16u, 32u, 64u, 128u});
  std::vector<double> servers_series, distcache_series;
  for (uint32_t racks : rack_sweep) {
    const double distcache = Measure(Mechanism::kDistCache, racks, 0.99, 0.0);
    servers_series.push_back(racks * 32.0);
    distcache_series.push_back(distcache);
    std::printf("%-8u", racks * 32);
    std::printf(" %12.0f", distcache);
    std::printf(" %12.0f", Measure(Mechanism::kDistCache, racks, 0.99, 8.0 * 32.0));
    std::printf(" %18.0f", Measure(Mechanism::kCacheReplication, racks, 0.99, 0.0));
    std::printf(" %16.0f", Measure(Mechanism::kCachePartition, racks, 0.99, 0.0));
    std::printf(" %10.0f\n", Measure(Mechanism::kNoCache, racks, 0.99, 0.0));
  }
  json.Series("servers", servers_series);
  json.Series("distcache_saturation", distcache_series);
  PrintHeader("Figure 9(c) auxiliary: zipf-0.9 (theorem precondition binds later)", "");
  std::printf("%-8s %12s %18s\n", "servers", "DistCache", "CacheReplication");
  const std::vector<uint32_t> aux_sweep =
      SmokeSweep<uint32_t>({4u}, {4u, 8u, 16u, 32u, 64u});
  for (uint32_t racks : aux_sweep) {
    std::printf("%-8u %12.0f %18.0f\n", racks * 32,
                Measure(Mechanism::kDistCache, racks, 0.9, 0.0),
                Measure(Mechanism::kCacheReplication, racks, 0.9, 0.0));
  }

  // Engine scaling: the same fig-9(c) workload executed request-by-request through
  // the pluggable SimBackend engines (see sim/sim_backend.h). The sharded runtime's
  // batched hot path must beat the sequential reference by >=2x while reproducing
  // its cache hit ratio and load-imbalance stats within 5%.
  PrintHeader("Engine throughput on the fig-9(c) workload (requests/s of the simulator itself)",
              "paper-default cluster, zipf-0.99, read-only; 8M requests per engine");
  const uint64_t kRequests = BenchSmoke() ? 200'000 : 8'000'000;
  json.Config("engine_requests", static_cast<double>(kRequests));
  SimBackendConfig bcfg;
  bcfg.cluster = PaperDefaultConfig(Mechanism::kDistCache);
  double sequential_mrps = 0.0;
  std::printf("%-16s %10s %10s %12s %12s %12s\n", "engine", "Mreq/s", "speedup",
              "hit ratio", "cache imb", "server imb");
  for (uint32_t shards : {0u, 1u, 2u, 4u}) {
    bcfg.shards = shards == 0 ? 1 : shards;
    auto backend = MakeSimBackend(
        shards == 0 ? BackendKind::kSequential : BackendKind::kSharded, bcfg);
    const BackendStats stats = backend->Run(kRequests);
    if (shards == 0) {
      sequential_mrps = stats.throughput_mrps();
    }
    char label[32];
    char key[32];
    if (shards == 0) {
      std::snprintf(label, sizeof(label), "%s", backend->name().c_str());
      std::snprintf(key, sizeof(key), "%s", backend->name().c_str());
    } else {
      std::snprintf(label, sizeof(label), "%s x%u", backend->name().c_str(), shards);
      std::snprintf(key, sizeof(key), "%s_x%u", backend->name().c_str(), shards);
    }
    std::printf("%-16s %10.2f %9.2fx %12.4f %12.3f %12.3f\n", label,
                stats.throughput_mrps(),
                sequential_mrps > 0 ? stats.throughput_mrps() / sequential_mrps : 0.0,
                stats.hit_ratio(), stats.CacheImbalance(), stats.ServerImbalance());
    json.Metric(std::string(key) + "_mrps", stats.throughput_mrps());
    json.Metric(std::string(key) + "_hit_ratio", stats.hit_ratio());
    json.Metric(std::string(key) + "_cache_imbalance", stats.CacheImbalance());
  }
}

}  // namespace
}  // namespace distcache

int main(int argc, char** argv) {
  distcache::BenchJson json(argc, argv, "fig9c");
  distcache::Run(json);
  return 0;
}
