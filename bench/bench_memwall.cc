// The 100M-key memory-wall bench (PR 9 tentpole proof): per-key memory must be
// proportional to the *cached* set, not the key space, and the big read-only
// state must be physically shared across shard processes.
//
// Geometry: the paper's 100M-object workload with a candidate pool raised
// toward the key space (candidate_pool, the individually-tracked head that
// dense structures materialize per rank) and ~1M cache slots — the scale the
// ROADMAP names as the multiproc payoff, where the pre-PR-9 dense layout costs
// gigabytes per process:
//
//   * dense route table:   16 B x pool per snapshot;
//   * dense sampler:       ~32 B x pool (pmf + inverse-CDF, plus the model's
//                          popularity vectors);
//   * N processes:         N copies of all of it.
//
// Four measured rows, each run in a *forked child* so getrusage(ru_maxrss) is a
// clean per-run high-water mark (maxrss is a process-lifetime figure; rows
// sharing a process would smear into each other):
//
//   seq-dense      sequential, dense tables + dense sampler — the
//                  copy-heavy single-process baseline the gate compares against
//   seq            sequential, compact tables + two-level sampler
//   sharded xN     in-process shards, compact + two-level
//   multiproc xN   shard processes, compact + two-level, arena-resident plan
//
// Columns report peak RSS (context: includes allocator slack and the
// placement/allocation model) and the engines' deterministic byte accounting
// (route tables, samplers, arena). The --gate legs use the deterministic
// bytes, so they are exact at any scale, smoke included:
//
//   gate 1 (compaction): dense route-table bytes >= 50x compact bytes
//                        (the ISSUE acceptance ratio at 100M keys / ~1M cached);
//   gate 2 (sharing):    multiproc xN total footprint — arena + N x per-process
//                        private bytes — < 2x the seq-dense single-process
//                        bytes (the "beats N x copy-heavy baseline" criterion:
//                        without the arena-resident plan and compaction this
//                        figure is ~N x the baseline, not a fraction of one).
//
// Detect-and-skip: hosts that cannot map the arena skip the multiproc row and
// gate 2 (like bench_scaling); hosts without the memory for the full dense
// baseline drop to the smoke geometry with a note (the gates are
// scale-invariant ratios, so they stay armed). DISTCACHE_BENCH_SMOKE shrinks
// everything for CI; emits BENCH_memwall.json under --json.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#define DISTCACHE_MEMWALL_FORK 1
#endif

#include "bench/bench_common.h"
#include "runtime/shm_arena.h"
#include "sim/multiproc_backend.h"
#include "sim/sim_backend.h"

namespace distcache {
namespace {

constexpr uint32_t kShards = 4;
constexpr double kMiB = 1024.0 * 1024.0;

struct Geometry {
  uint64_t num_keys;
  uint64_t candidate_pool;
  uint32_t per_switch_objects;  // 64 nodes across 2 layers
  uint64_t requests;
};

// Full scale: 100M keys, 32M-rank head, 64 x 16384 = ~1M cache slots (~500k
// distinct cached keys, one copy per layer) — dense/compact ratio ~60x.
constexpr Geometry kFull{100'000'000, 32'000'000, 16'384, 4'000'000};
// Smoke/reduced scale: same shape three orders of magnitude down (ratio ~120x).
constexpr Geometry kSmoke{4'000'000, 2'000'000, 512, 400'000};

// Rough peak bytes of the dense single-process baseline: route table (16 B) +
// sampler pmf/cdf (16 B) + the model's popularity + head_with_tail vectors
// (16 B) per pool rank, plus slack for placement/allocation state.
uint64_t DenseBaselineEstimate(const Geometry& g) {
  return g.candidate_pool * 48 + (uint64_t{512} << 20);
}

uint64_t MemAvailableBytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/meminfo", "r");
  if (f == nullptr) {
    return 0;
  }
  char line[256];
  uint64_t kib = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "MemAvailable: %llu kB",
                    reinterpret_cast<unsigned long long*>(&kib)) == 1) {
      break;
    }
  }
  std::fclose(f);
  return kib * 1024;
#else
  return 0;
#endif
}

SimBackendConfig MakeConfig(const Geometry& g) {
  SimBackendConfig bcfg;
  bcfg.cluster = PaperDefaultConfig(Mechanism::kDistCache);
  bcfg.cluster.num_keys = g.num_keys;
  bcfg.cluster.candidate_pool = g.candidate_pool;
  bcfg.cluster.per_switch_objects = g.per_switch_objects;
  return bcfg;
}

// One measured row, POD so it survives the child->parent pipe.
struct Row {
  char name[24] = {0};
  bool ran = false;  // false: skipped (substrate unavailable)
  bool ok = false;
  uint32_t shards = 1;
  uint64_t requests = 0;
  double mrps = 0.0;
  double hit_ratio = 0.0;
  uint64_t peak_rss = 0;
  uint64_t route_bytes = 0;
  uint64_t sampler_bytes = 0;
  uint64_t arena_bytes = 0;

  // The deterministic total-footprint figure the gate uses: what this
  // substrate's processes privately hold plus what they share. In-process rows
  // share the route tables and sampler across shards (one address space);
  // multiproc children report route bytes as 0 (the plan lives in the arena,
  // counted once) and are charged their sampler per process — an upper bound,
  // since the pre-fork sampler pages are COW-shared until written (never).
  uint64_t total_bytes() const {
    if (std::strncmp(name, "multiproc", 9) == 0) {
      return arena_bytes + uint64_t{shards} * (route_bytes + sampler_bytes);
    }
    return route_bytes + sampler_bytes;
  }
};

Row MeasureRow(const char* name, BackendKind kind, const SimBackendConfig& cfg,
               uint64_t requests) {
  Row row;
  std::snprintf(row.name, sizeof(row.name), "%s", name);
  row.shards = cfg.shards;
  auto fill = [&](Row* r) {
    const BackendStats st = MakeSimBackend(kind, cfg)->Run(requests);
    r->ran = true;
    r->ok = st.failed_shards == 0 && st.requests == requests;
    r->requests = st.requests;
    r->mrps = st.throughput_mrps();
    r->hit_ratio = st.hit_ratio();
    r->peak_rss = st.peak_rss_bytes;
    r->route_bytes = st.route_table_bytes;
    r->sampler_bytes = st.sampler_bytes;
    r->arena_bytes = st.arena_bytes;
  };
#if defined(DISTCACHE_MEMWALL_FORK)
  int fds[2];
  if (::pipe(fds) != 0) {
    fill(&row);  // no pipe: measure in-process (RSS smears across rows)
    return row;
  }
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::close(fds[0]);
    Row child = row;
    fill(&child);
    // Best-effort single write; the row is far below PIPE_BUF so it is atomic.
    const ssize_t n = ::write(fds[1], &child, sizeof(child));
    ::_exit(n == static_cast<ssize_t>(sizeof(child)) ? 0 : 1);
  }
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    fill(&row);
    return row;
  }
  ::close(fds[1]);
  size_t got = 0;
  while (got < sizeof(row)) {
    const ssize_t n =
        ::read(fds[0], reinterpret_cast<char*>(&row) + got, sizeof(row) - got);
    if (n <= 0) {
      break;
    }
    got += static_cast<size_t>(n);
  }
  ::close(fds[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (got != sizeof(row) || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    row.ran = true;
    row.ok = false;
  }
#else
  fill(&row);
#endif
  return row;
}

void PrintRow(const Row& r) {
  if (!r.ran) {
    std::printf("%-14s %10s  (skipped: substrate unavailable)\n", r.name, "-");
    return;
  }
  std::printf("%-14s %10.2f %8.2f %10.4f %12.1f %10.1f %12.1f %10.1f %12.1f%s\n",
              r.name, static_cast<double>(r.requests) / 1e6, r.mrps, r.hit_ratio,
              r.peak_rss / kMiB, r.route_bytes / kMiB, r.sampler_bytes / kMiB,
              r.arena_bytes / kMiB, r.total_bytes() / kMiB,
              r.ok ? "" : "  [FAILED]");
}

void RecordRow(BenchJson& json, const Row& r) {
  if (!r.ran) {
    return;
  }
  const std::string p = r.name;
  json.Metric(p + "_mrps", r.mrps);
  json.Metric(p + "_peak_rss_mb", r.peak_rss / kMiB);
  json.Metric(p + "_route_mb", r.route_bytes / kMiB);
  json.Metric(p + "_sampler_mb", r.sampler_bytes / kMiB);
  json.Metric(p + "_arena_mb", r.arena_bytes / kMiB);
  json.Metric(p + "_total_mb", r.total_bytes() / kMiB);
}

int Run(BenchJson& json, bool gate) {
  Geometry g = BenchSmoke() ? kSmoke : kFull;
  bool reduced = false;
  if (!BenchSmoke()) {
    const uint64_t avail = MemAvailableBytes();
    const uint64_t need = 3 * DenseBaselineEstimate(kFull) / 2;
    if (avail != 0 && avail < need) {
      std::printf("host has %.1f GiB available, full geometry needs ~%.1f GiB "
                  "— dropping to the reduced geometry (gates stay armed: they "
                  "are scale-invariant ratios)\n",
                  avail / kMiB / 1024.0, need / kMiB / 1024.0);
      g = kSmoke;
      reduced = true;
    }
  }
  const bool multiproc_ok =
      MultiprocBackend::Supported() && ShmArena::Available(64u << 20);

  PrintHeader(
      "Memory wall: footprint at " + std::to_string(g.num_keys / 1'000'000) +
          "M keys, " + std::to_string(g.candidate_pool / 1'000'000) +
          "M-rank head",
      "per-run forked measurement; 'seq-dense' = pre-PR-9 dense tables + dense "
      "sampler (the copy-heavy baseline); all other rows compact tables + "
      "two-level sampler; total = deterministic per-substrate footprint "
      "(arena counted once, per-process state x" +
          std::to_string(kShards) + ")");
  json.Config("num_keys", static_cast<double>(g.num_keys));
  json.Config("candidate_pool", static_cast<double>(g.candidate_pool));
  json.Config("per_switch_objects", static_cast<double>(g.per_switch_objects));
  json.Config("requests", static_cast<double>(g.requests));
  json.Config("shards", static_cast<double>(kShards));
  json.Config("reduced", reduced ? 1.0 : 0.0);
  json.Config("multiproc_supported", multiproc_ok ? 1.0 : 0.0);

  std::printf("\n%-14s %10s %8s %10s %12s %10s %12s %10s %12s\n", "substrate",
              "req (M)", "Mreq/s", "hit ratio", "peakRSS(MB)", "route(MB)",
              "sampler(MB)", "arena(MB)", "total(MB)");

  SimBackendConfig dense_cfg = MakeConfig(g);
  dense_cfg.dense_routes = true;
  const Row dense =
      MeasureRow("seq-dense", BackendKind::kSequential, dense_cfg, g.requests);
  PrintRow(dense);
  RecordRow(json, dense);

  SimBackendConfig lean = MakeConfig(g);
  lean.two_level_sampling = true;
  const Row seq = MeasureRow("seq", BackendKind::kSequential, lean, g.requests);
  PrintRow(seq);
  RecordRow(json, seq);

  SimBackendConfig sharded_cfg = lean;
  sharded_cfg.shards = kShards;
  const Row sharded =
      MeasureRow("sharded", BackendKind::kSharded, sharded_cfg, g.requests);
  PrintRow(sharded);
  RecordRow(json, sharded);

  Row multi;
  std::snprintf(multi.name, sizeof(multi.name), "multiproc");
  if (multiproc_ok) {
    SimBackendConfig multi_cfg = lean;
    multi_cfg.shards = kShards;
    multi = MeasureRow("multiproc", BackendKind::kMultiproc, multi_cfg, g.requests);
  } else {
    std::printf("multiproc: skipped (shared-memory arena unavailable)\n");
  }
  PrintRow(multi);
  RecordRow(json, multi);

  // ---- gates ---------------------------------------------------------------
  int failed = 0;
  const bool base_ok = dense.ran && dense.ok && seq.ran && seq.ok;
  const double ratio =
      seq.route_bytes > 0
          ? static_cast<double>(dense.route_bytes) / seq.route_bytes
          : 0.0;
  json.Metric("route_bytes_ratio", ratio);
  std::printf("\nroute-table snapshot bytes: dense %.1f MB vs compact %.1f MB "
              "(%.0fx)\n",
              dense.route_bytes / kMiB, seq.route_bytes / kMiB, ratio);
  const double share = dense.total_bytes() > 0 && multi.ran
                           ? static_cast<double>(multi.total_bytes()) /
                                 dense.total_bytes()
                           : 0.0;
  if (multi.ran) {
    json.Metric("multiproc_total_over_dense", share);
    std::printf("multiproc x%u total footprint: %.1f MB = %.2fx one dense "
                "single-process run (naive x%u dense would be %.1f MB)\n",
                kShards, multi.total_bytes() / kMiB, share, kShards,
                kShards * dense.total_bytes() / kMiB);
  }
  if (gate) {
    if (!base_ok) {
      std::fprintf(stderr, "memwall gate FAILED: baseline rows did not run\n");
      failed = 1;
    } else if (ratio < 50.0) {
      std::fprintf(stderr,
                   "memwall gate FAILED: dense/compact route bytes %.1fx < "
                   "50x — compaction regressed\n",
                   ratio);
      failed = 1;
    } else {
      std::printf("memwall gate OK: compaction %.0fx (threshold 50x)\n", ratio);
    }
    if (multi.ran) {
      if (!multi.ok || multi.total_bytes() >= 2 * dense.total_bytes()) {
        std::fprintf(stderr,
                     "memwall gate FAILED: multiproc x%u total %.1f MB not "
                     "under 2x dense single-process %.1f MB\n",
                     kShards, multi.total_bytes() / kMiB,
                     dense.total_bytes() / kMiB);
        failed = 1;
      } else {
        std::printf("memwall gate OK: multiproc x%u total = %.2fx one dense "
                    "process (threshold 2x)\n",
                    kShards, share);
      }
    } else {
      std::printf("memwall gate: multiproc leg skipped (arena unavailable); "
                  "compaction leg still gates\n");
    }
  }
  return failed;
}

}  // namespace
}  // namespace distcache

int main(int argc, char** argv) {
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    gate = gate || std::strcmp(argv[i], "--gate") == 0;
  }
  distcache::BenchJson json(argc, argv, "memwall");
  return distcache::Run(json, gate);
}
