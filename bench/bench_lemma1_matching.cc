// Lemma 1 / Theorem 1 empirical check: with k hot objects hashed into two layers of
// m unit-capacity cache nodes by independent hash functions, a fractional perfect
// matching (Definition 1) supporting R = (1-eps)*alpha*m*T~ exists with high
// probability, provided max_i p_i * R <= T~/2 (the theorem's precondition).
//
// We report the empirically supportable rate R* (max-flow binary search) as a
// multiple of m*T~ for three workloads over k = m*log2(m) objects:
//   * capped zipf-0.99 — zipf clipped at the theorem's per-object bound. This is the
//     theorem's regime; R*/mT~ stays ~constant (alpha close to 1, §3.3).
//   * raw zipf-0.99    — the precondition is violated (p0 ~ 1/H(k)); R* is pinned at
//     ~2T~/p0 by the single hottest object, so R*/mT~ decays as 1/m. Shown to make
//     the role of the precondition visible, mirroring the Fig. 9(c) discussion.
//   * uniform          — easy case, near the 2m aggregate.
// Plus the expansion property (Definition 3) verified exhaustively, two-hash vs the
// single-hash strawman of Lemma 3.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "common/zipf.h"
#include "matching/cache_graph.h"

namespace distcache {
namespace {

void Run() {
  std::printf("\n=== Lemma 1: perfect matching exists at R ~= alpha*m*T~ ===\n");
  std::printf("k = m*log2(m) objects, unit-capacity nodes, 20 seeds per row; capped\n");
  std::printf("zipf satisfies max p_i * (m*T~) = T~/2 exactly\n");
  std::printf("%-6s %-6s %-16s %-16s %-14s %-16s\n", "m", "k", "capped zipf R*/m",
              "raw zipf R*/m", "uniform R*/m", "feasible@0.9m");
  for (size_t m : {8, 16, 32, 64, 128}) {
    const size_t k =
        static_cast<size_t>(static_cast<double>(m) * std::log2(static_cast<double>(m)));
    const double cap = 1.0 / (2.0 * static_cast<double>(m));  // T~/(2*m*T~)
    const std::vector<double> capped = CappedZipfPmf(k, 0.99, cap);
    ZipfDistribution zipf(k, 0.99);
    std::vector<double> raw(k);
    for (size_t i = 0; i < k; ++i) {
      raw[i] = zipf.Pmf(i);
    }
    const std::vector<double> uniform(k, 1.0 / static_cast<double>(k));

    StreamingStats capped_rate;
    StreamingStats raw_rate;
    StreamingStats unif_rate;
    int feasible = 0;
    constexpr int kSeeds = 20;
    for (uint64_t seed = 0; seed < kSeeds; ++seed) {
      CacheGraph g(k, m, m, seed);
      capped_rate.Add(g.MaxSupportedRate(capped, 1.0, 0.01) / static_cast<double>(m));
      raw_rate.Add(g.MaxSupportedRate(raw, 1.0, 0.01) / static_cast<double>(m));
      unif_rate.Add(g.MaxSupportedRate(uniform, 1.0, 0.01) / static_cast<double>(m));
      // Feasibility at R = 0.9*m*T~ for the capped-zipf load (the theorem's claim).
      std::vector<double> rates(k);
      for (size_t i = 0; i < k; ++i) {
        rates[i] = 0.9 * static_cast<double>(m) * capped[i];
      }
      feasible += g.FeasibleMatching(rates, 1.0) ? 1 : 0;
    }
    std::printf("%-6zu %-6zu %-16.2f %-16.2f %-14.2f %10d/%-3d\n", m, k,
                capped_rate.mean(), raw_rate.mean(), unif_rate.mean(), feasible,
                kSeeds);
  }

  std::printf("\nExpansion property (Definition 3), exhaustive over all 2^k subsets\n");
  std::printf("(k = m/2 objects: the sparse regime where Hall's condition is the\n");
  std::printf("bottleneck); single-hash fails by birthday collisions:\n");
  std::printf("%-6s %-6s %-22s %-22s\n", "m", "k", "two-hash holds", "single-hash holds");
  for (size_t m : {16, 24, 32}) {
    const size_t k = m / 2;
    int two = 0;
    int one = 0;
    constexpr int kSeeds = 20;
    for (uint64_t seed = 0; seed < kSeeds; ++seed) {
      two += CacheGraph(k, m, m, seed).HasExpansionProperty() ? 1 : 0;
      one += CacheGraph(k, m, m, seed, /*single_hash=*/true).HasExpansionProperty() ? 1 : 0;
    }
    std::printf("%-6zu %-6zu %16d/%-3d %16d/%-3d\n", m, k, two, kSeeds, one, kSeeds);
  }
}

}  // namespace
}  // namespace distcache

int main() {
  distcache::Run();
  return 0;
}
