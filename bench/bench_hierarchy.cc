// §3.1 multi-layer hierarchical caching — the depth trade-off, end to end.
//
// The paper's remark: the mechanism "can be applied recursively for multi-layer
// hierarchical caching", with query routing by power-of-k-choices over the k
// layers; more layers cost more total cache nodes but each node needs a smaller
// cache. PR 4 made the request-level engines layer-count-generic, so this bench
// runs the trade-off *end to end* and cross-checks it against the analytic
// predictions that previously existed only as theory benches:
//
//   * engines — sequential and sharded runs at L = 2..4 layers with the total
//     cache budget held constant (per-node budget shrinks as 1/L): the cache hit
//     ratio must hold (the budget is what it is) and the load imbalance must stay
//     flat — deeper hierarchies spread the same hot mass over more, smaller
//     caches without losing balance;
//   * fluid — the analytic hit ratio (pmf mass of the cached set) each engine
//     must match within small tolerance;
//   * HierarchicalCacheGraph (matching/hierarchy.h) — max-flow feasibility: the
//     supportable fraction of the L*m*T~ aggregate under capped-Zipf demand;
//   * PokProcess (sim/pok_process.h) — queueing stationarity of the
//     power-of-k process at 85% per-node load with k = L choices.
//
// Acceptance (printed at the end): every engine hit ratio within 2% of the fluid
// analytic value, sharded-vs-sequential imbalance within 2%, and L=3/L=4
// imbalance within 15% of the two-layer baseline at one third/half the per-node
// cache.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/stats.h"
#include "common/zipf.h"
#include "matching/hierarchy.h"
#include "sim/pok_process.h"
#include "sim/sim_backend.h"

namespace distcache {
namespace {

struct DepthResult {
  size_t layers = 0;
  uint32_t per_node = 0;
  double seq_hit = 0.0;
  double seq_imb = 0.0;
  double shd_hit = 0.0;
  double shd_imb = 0.0;
  double fluid_hit = 0.0;
  double flow_fraction = 0.0;  // HierarchicalCacheGraph R*/(L*m*T~)
  int stationary = 0;          // PokProcess stationary seeds out of kSeeds
};

constexpr uint32_t kNodesPerLayer = 16;
constexpr int kSeeds = 10;

void Run(BenchJson& json) {
  PrintHeader("Multi-layer hierarchical caching (§3.1): engine vs analytic depth trade-off",
              "total cache budget fixed; per-node budget shrinks as 1/L; engines "
              "route with power-of-k over the L layers");

  ClusterConfig base = PaperDefaultConfig(Mechanism::kDistCache);
  base.num_spine = kNodesPerLayer;
  base.num_racks = kNodesPerLayer;
  base.servers_per_rack = 8;
  base.num_keys = 2'000'000;
  uint64_t requests = 2'000'000;
  uint32_t shards = 4;
  // Two-layer baseline budget: 2 x 16 x 100 = 3200 objects in total.
  const uint32_t total_budget = 2 * kNodesPerLayer * 100;
  std::vector<size_t> depth_sweep = SmokeSweep<size_t>({2, 3}, {2, 3, 4});
  if (BenchSmoke()) {
    requests = 200'000;
    shards = 2;
  }

  json.Config("nodes_per_layer", static_cast<double>(kNodesPerLayer));
  json.Config("total_budget_objects", static_cast<double>(total_budget));
  json.Config("requests", static_cast<double>(requests));
  json.Config("num_keys", static_cast<double>(base.num_keys));
  json.Config("zipf_theta", base.zipf_theta);

  std::vector<DepthResult> results;
  for (const size_t layers : depth_sweep) {
    DepthResult r;
    r.layers = layers;
    r.per_node = total_budget / (static_cast<uint32_t>(layers) * kNodesPerLayer);

    ClusterConfig cfg = base;
    cfg.cache_layers.assign(layers, LayerSpec{kNodesPerLayer, r.per_node});
    SimBackendConfig bcfg;
    bcfg.cluster = cfg;
    r.fluid_hit = MakeSimBackend(BackendKind::kFluid, bcfg)->Run(requests).hit_ratio();
    const BackendStats seq =
        MakeSimBackend(BackendKind::kSequential, bcfg)->Run(requests);
    r.seq_hit = seq.hit_ratio();
    r.seq_imb = seq.CacheImbalance();
    bcfg.shards = shards;
    const BackendStats shd = MakeSimBackend(BackendKind::kSharded, bcfg)->Run(requests);
    r.shd_hit = shd.hit_ratio();
    r.shd_imb = shd.CacheImbalance();

    // Analytic side 1: max-flow feasibility of the hashed candidate graph at this
    // depth (same regime as bench_power_of_k: m nodes/layer, 8m objects, demand
    // capped at what two copies can absorb).
    {
      const size_t objects = 8 * kNodesPerLayer;
      const std::vector<double> pmf = CappedZipfPmf(
          objects, base.zipf_theta, 1.0 / (2.0 * static_cast<double>(kNodesPerLayer)));
      StreamingStats frac;
      for (uint64_t seed = 0; seed < kSeeds; ++seed) {
        HierarchicalCacheGraph graph(
            objects, std::vector<size_t>(layers, kNodesPerLayer), seed);
        frac.Add(graph.MaxSupportedRate(pmf, 1.0, 0.01) /
                 (static_cast<double>(layers) * kNodesPerLayer));
      }
      r.flow_fraction = frac.mean();
    }
    // Analytic side 2: power-of-k queueing stationarity at 85% per-node load.
    for (uint64_t seed = 0; seed < kSeeds; ++seed) {
      PokProcess::Config pk;
      pk.num_objects = 8 * kNodesPerLayer;
      pk.layer_sizes = std::vector<size_t>(layers, kNodesPerLayer);
      pk.total_rate = 0.85 * static_cast<double>(layers * kNodesPerLayer);
      pk.zipf_theta = base.zipf_theta;
      pk.pmf_cap = 1.0 / (2.0 * 0.85 * static_cast<double>(kNodesPerLayer));
      pk.choices = layers;
      pk.seed = seed;
      r.stationary += PokProcess(pk).Run(400.0).stationary ? 1 : 0;
    }
    results.push_back(r);
  }

  std::printf("%-7s %-9s %10s %10s %10s %10s %10s %12s %11s\n", "layers",
              "objs/node", "seq hit", "shd hit", "fluid hit", "seq imb", "shd imb",
              "flow R*/agg", "stationary");
  for (const DepthResult& r : results) {
    std::printf("%-7zu %-9u %10.4f %10.4f %10.4f %10.3f %10.3f %12.2f %8d/%d\n",
                r.layers, r.per_node, r.seq_hit, r.shd_hit, r.fluid_hit, r.seq_imb,
                r.shd_imb, r.flow_fraction, r.stationary, kSeeds);
  }

  // Acceptance lines (consumed by eyeballs and CI greps alike).
  double worst_vs_fluid = 0.0;
  double worst_engine_ratio = 0.0;
  for (const DepthResult& r : results) {
    worst_vs_fluid = std::max(
        {worst_vs_fluid, std::fabs(r.seq_hit / r.fluid_hit - 1.0),
         std::fabs(r.shd_hit / r.fluid_hit - 1.0)});
    worst_engine_ratio =
        std::max(worst_engine_ratio, std::fabs(r.shd_imb / r.seq_imb - 1.0));
  }
  const double balance_drift =
      results.back().seq_imb / results.front().seq_imb;
  std::printf("\nengine-vs-fluid hit ratio deviation: %.4f (must be < 0.02)\n",
              worst_vs_fluid);
  std::printf("sharded/sequential imbalance deviation: %.4f (must be < 0.02)\n",
              worst_engine_ratio);
  std::printf("deepest/two-layer imbalance ratio (per-node cache %u -> %u objects): "
              "%.3f (must be < 1.15)\n",
              results.front().per_node, results.back().per_node, balance_drift);

  std::vector<double> ls, hit_seq, hit_shd, hit_fluid, imb_seq, imb_shd, flow, stat;
  for (const DepthResult& r : results) {
    ls.push_back(static_cast<double>(r.layers));
    hit_seq.push_back(r.seq_hit);
    hit_shd.push_back(r.shd_hit);
    hit_fluid.push_back(r.fluid_hit);
    imb_seq.push_back(r.seq_imb);
    imb_shd.push_back(r.shd_imb);
    flow.push_back(r.flow_fraction);
    stat.push_back(static_cast<double>(r.stationary));
  }
  json.Series("layers", ls);
  json.Series("hit_ratio_sequential", hit_seq);
  json.Series("hit_ratio_sharded", hit_shd);
  json.Series("hit_ratio_fluid", hit_fluid);
  json.Series("cache_imbalance_sequential", imb_seq);
  json.Series("cache_imbalance_sharded", imb_shd);
  json.Series("maxflow_rate_fraction", flow);
  json.Series("pok_stationary_seeds", stat);
  json.Metric("engine_vs_fluid_hit_deviation", worst_vs_fluid);
  json.Metric("sharded_vs_sequential_imbalance_deviation", worst_engine_ratio);
  json.Metric("deepest_vs_two_layer_imbalance", balance_drift);
}

}  // namespace
}  // namespace distcache

int main(int argc, char** argv) {
  distcache::BenchJson json(argc, argv, "hierarchy");
  distcache::Run(json);
  return 0;
}
