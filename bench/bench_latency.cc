// Extension bench: tail latency vs offered load (the paper's intro motivation —
// "overloaded nodes result in low throughput and long tail latencies" — quantified
// with an M/M/1 sojourn model per node on top of the fluid simulator).
// Shape to expect: NoCache's p99 explodes at a few percent of system capacity (the
// hot server saturates); CachePartition pushes the explosion to its hot switch;
// DistCache keeps p99 flat essentially until the servers themselves saturate.
#include <cstdio>

#include "bench/bench_common.h"
#include "cluster/latency.h"

namespace distcache {
namespace {

void Run(BenchJson& json, const BenchPolicyFlag& policy) {
  PrintHeader("Latency vs offered load (zipf-0.99, paper defaults)",
              "latency in storage-server service-time units; inf = saturated node");
  if (!policy.is_default()) {
    std::printf("DistCache column runs cache policy: %s\n", policy.name());
  }
  json.Config("cache_policy", policy.name());
  std::printf("%-10s", "load");
  for (Mechanism m : AllMechanisms()) {
    std::printf("  %-16s p50/p99", MechanismName(m).c_str());
  }
  std::printf("\n");
  const std::vector<double> load_sweep{0.05, 0.1, 0.25, 0.5, 0.75, 0.9};
  json.Series("load_fraction", load_sweep);
  std::vector<double> distcache_p99, nocache_p99;
  for (double fraction : load_sweep) {
    std::printf("%-10.2f", fraction);
    for (Mechanism m : AllMechanisms()) {
      ClusterConfig cfg = PaperDefaultConfig(m);
      policy.Apply(&cfg);
      ClusterSim sim(cfg);
      const double rate = fraction * sim.TotalServerCapacity();
      const LatencyReport report = ComputeLatencyReport(sim, rate);
      if (m == Mechanism::kDistCache) {
        distcache_p99.push_back(report.p99);
      } else if (m == Mechanism::kNoCache) {
        nocache_p99.push_back(report.p99);
      }
      std::printf("  %10.2f /%8.2f", report.p50, report.p99);
    }
    std::printf("\n");
  }
  json.Series("distcache_p99", distcache_p99);
  json.Series("no_cache_p99", nocache_p99);
  std::printf("\nhit fractions at 50%% load:\n");
  for (Mechanism m : AllMechanisms()) {
    ClusterConfig cfg = PaperDefaultConfig(m);
    policy.Apply(&cfg);
    ClusterSim sim(cfg);
    const LatencyReport report =
        ComputeLatencyReport(sim, 0.5 * sim.TotalServerCapacity());
    std::printf("  %-18s hit=%.2f overloaded=%.3f\n", MechanismName(m).c_str(),
                report.hit_fraction, report.overloaded_fraction);
  }
}

}  // namespace
}  // namespace distcache

int main(int argc, char** argv) {
  distcache::BenchJson json(argc, argv, "latency");
  const distcache::BenchPolicyFlag policy(argc, argv);
  distcache::Run(json, policy);
  return 0;
}
