// Extension bench: tail latency vs offered load (the paper's intro motivation —
// "overloaded nodes result in low throughput and long tail latencies" — quantified
// with an M/M/1 sojourn model per node on top of the fluid simulator).
// Shape to expect: NoCache's p99 explodes at a few percent of system capacity (the
// hot server saturates); CachePartition pushes the explosion to its hot switch;
// DistCache keeps p99 flat essentially until the servers themselves saturate.
#include <cstdio>

#include "bench/bench_common.h"
#include "cluster/latency.h"

namespace distcache {
namespace {

void Run() {
  PrintHeader("Latency vs offered load (zipf-0.99, paper defaults)",
              "latency in storage-server service-time units; 100 = saturated node");
  std::printf("%-10s", "load");
  for (Mechanism m : AllMechanisms()) {
    std::printf("  %-16s p50/p99", MechanismName(m).c_str());
  }
  std::printf("\n");
  for (double fraction : {0.05, 0.1, 0.25, 0.5, 0.75, 0.9}) {
    std::printf("%-10.2f", fraction);
    for (Mechanism m : AllMechanisms()) {
      ClusterConfig cfg = PaperDefaultConfig(m);
      ClusterSim sim(cfg);
      const double rate = fraction * sim.TotalServerCapacity();
      const LatencyReport report = ComputeLatencyReport(sim, rate);
      std::printf("  %10.2f /%8.2f", report.p50, report.p99);
    }
    std::printf("\n");
  }
  std::printf("\nhit fractions at 50%% load:\n");
  for (Mechanism m : AllMechanisms()) {
    ClusterConfig cfg = PaperDefaultConfig(m);
    ClusterSim sim(cfg);
    const LatencyReport report =
        ComputeLatencyReport(sim, 0.5 * sim.TotalServerCapacity());
    std::printf("  %-18s hit=%.2f overloaded=%.3f\n", MechanismName(m).c_str(),
                report.hit_fraction, report.overloaded_fraction);
  }
}

}  // namespace
}  // namespace distcache

int main() {
  distcache::Run();
  return 0;
}
