// Figure 9(b): normalized throughput vs cache size (read-only, Zipf-0.99).
// Paper shape: CachePartition stays flat/low (hot-switch imbalance); DistCache and
// CacheReplication climb with cache size and then saturate. Cache size counts objects
// across all 64 cache switches (64 => 1 object per switch, 6400 => 100).
#include <cstdio>

#include "bench/bench_common.h"

namespace distcache {
namespace {

void Run(BenchJson& json, const BenchPolicyFlag& policy) {
  PrintHeader("Figure 9(b): impact of cache size (read-only, zipf-0.99)",
              "cache size = objects across all 64 switches; log-scale x in the paper");
  if (!policy.is_default()) {
    std::printf("DistCache column runs cache policy: %s\n", policy.name());
  }
  json.Config("cache_policy", policy.name());
  std::printf("%-12s %14s %18s %16s\n", "cache size", "DistCache", "CacheReplication",
              "CachePartition");
  const std::vector<uint32_t> sizes =
      SmokeSweep<uint32_t>({64u, 6400u}, {64u, 96u, 160u, 320u, 640u, 6400u});
  std::vector<double> size_series, distcache_series, replication_series,
      partition_series;
  for (uint32_t total : sizes) {
    size_series.push_back(total);
    // 64 cache switches; 96 total => alternate 1/2 per switch, approximated by the
    // ceiling (the paper's own 96/64 is fractional too).
    const uint32_t per_switch = (total + 63) / 64;
    std::printf("%-12u", total);
    for (Mechanism m :
         {Mechanism::kDistCache, Mechanism::kCacheReplication, Mechanism::kCachePartition}) {
      ClusterConfig cfg = PaperDefaultConfig(m);
      cfg.per_switch_objects = per_switch;
      policy.Apply(&cfg);
      ClusterSim sim(cfg);
      const int width = m == Mechanism::kDistCache          ? 14
                        : m == Mechanism::kCacheReplication ? 18
                                                            : 16;
      const double saturation = sim.SaturationThroughput();
      (m == Mechanism::kDistCache          ? distcache_series
       : m == Mechanism::kCacheReplication ? replication_series
                                           : partition_series)
          .push_back(saturation);
      std::printf(" %*.0f", width, saturation);
    }
    std::printf("\n");
  }
  json.Series("cache_size", size_series);
  json.Series("distcache", distcache_series);
  json.Series("cache_replication", replication_series);
  json.Series("cache_partition", partition_series);
}

}  // namespace
}  // namespace distcache

int main(int argc, char** argv) {
  distcache::BenchJson json(argc, argv, "fig9b");
  const distcache::BenchPolicyFlag policy(argc, argv);
  distcache::Run(json, policy);
  return 0;
}
