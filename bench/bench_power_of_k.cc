// Extension bench (§3.1 multi-layer hierarchical caching): power-of-k-choices over
// L cache layers. The paper's remark: more layers cost more total cache nodes (every
// layer must match the storage aggregate) but reduce the cache size each node needs.
// Here we show the routing side of that trade-off: with k hashed choices instead of
// 2, the same per-node load is sustained with a *more* skewed per-object cap
// (p_max * R up to k*T~/2-ish instead of T~/2), and the supportable rate per node
// rises toward the full aggregate.
#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "common/zipf.h"
#include "matching/hierarchy.h"
#include "sim/pok_process.h"

namespace distcache {
namespace {

void Run() {
  std::printf("\n=== Power-of-k-choices over L cache layers (§3.1 extension) ===\n");
  std::printf("m=16 nodes per layer, k=L choices, capped-zipf-0.99 objects\n\n");

  // Part 1: supportable rate per layer-node (max-flow) as layers are added.
  std::printf("Supportable rate, as a fraction of the L*m*T~ aggregate (10 seeds):\n");
  std::printf("%-8s %-10s %-22s\n", "layers", "objects", "R*/(L*m*T~)");
  for (size_t layers : {1, 2, 3, 4}) {
    constexpr size_t kM = 16;
    const size_t k = 8 * kM;
    StreamingStats frac;
    for (uint64_t seed = 0; seed < 10; ++seed) {
      HierarchicalCacheGraph g(k, std::vector<size_t>(layers, kM), seed);
      const std::vector<double> pmf =
          CappedZipfPmf(k, 0.99, 1.0 / (2.0 * static_cast<double>(kM)));
      frac.Add(g.MaxSupportedRate(pmf, 1.0, 0.01) /
               (static_cast<double>(layers) * static_cast<double>(kM)));
    }
    std::printf("%-8zu %-10zu %-22.2f\n", layers, k, frac.mean());
  }

  // Part 2: stationarity of the power-of-k process at fixed high per-node load.
  std::printf("\nQueueing stationarity at 85%% per-node load, 10 seeds, 400 time units\n");
  std::printf("(choices=1 is the single-hash strawman; more choices = more stable):\n");
  std::printf("%-10s %-14s %-14s\n", "choices", "stationary", "final backlog");
  for (size_t choices : {1, 2, 3, 4}) {
    constexpr size_t kLayers = 4;  // fixed node count; vary how many layers we USE
    constexpr size_t kM = 16;
    int stationary = 0;
    StreamingStats backlog;
    for (uint64_t seed = 0; seed < 10; ++seed) {
      PokProcess::Config cfg;
      cfg.num_objects = 8 * kM;
      cfg.layer_sizes = std::vector<size_t>(kLayers, kM);
      cfg.total_rate = 0.85 * static_cast<double>(kLayers * kM);
      cfg.zipf_theta = 0.99;
      cfg.pmf_cap = 1.0 / (2.0 * 0.85 * static_cast<double>(kLayers * kM) /
                           static_cast<double>(kLayers));
      cfg.choices = choices;
      cfg.seed = seed;
      PokProcess process(cfg);
      const auto result = process.Run(400.0);
      stationary += result.stationary ? 1 : 0;
      backlog.Add(result.backlog_series.back());
    }
    std::printf("%-10zu %8d/10 %16.0f\n", choices, stationary, backlog.mean());
  }
}

}  // namespace
}  // namespace distcache

int main() {
  distcache::Run();
  return 0;
}
