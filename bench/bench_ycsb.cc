// YCSB core-workload suite over the four mechanisms (extension bench; the paper uses
// plain zipf/write-ratio sweeps, but cites YCSB [6] as the canonical benchmark).
// Each mix maps onto the cluster simulator as its effective write fraction over the
// same zipf-0.99 popularity; YCSB-D's "latest" popularity is rank-equivalent because
// hash placement decorrelates rank from location. Also drives the threaded runtime
// for a sanity row of real executed operations.
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "common/ycsb.h"
#include "runtime/runtime.h"

namespace distcache {
namespace {

void Run(BenchJson& json, const BenchPolicyFlag& policy) {
  PrintHeader("YCSB core workloads (zipf-0.99, paper-default cluster)",
              "normalized saturation throughput per mechanism");
  if (!policy.is_default()) {
    std::printf("DistCache column runs cache policy: %s\n", policy.name());
  }
  json.Config("cache_policy", policy.name());
  std::printf("%-24s %12s %18s %16s %10s\n", "workload", "DistCache",
              "CacheReplication", "CachePartition", "NoCache");
  const std::vector<YcsbWorkload> mixes = SmokeSweep<YcsbWorkload>(
      {YcsbWorkload::kB}, {YcsbWorkload::kA, YcsbWorkload::kB, YcsbWorkload::kC,
                           YcsbWorkload::kD, YcsbWorkload::kF});
  for (YcsbWorkload w : mixes) {
    std::printf("%-24s", YcsbWorkloadName(w));
    for (Mechanism m : AllMechanisms()) {
      ClusterConfig cfg = PaperDefaultConfig(m);
      cfg.write_ratio = EffectiveWriteRatio(w);
      policy.Apply(&cfg);
      ClusterSim sim(cfg);
      const int width = m == Mechanism::kDistCache          ? 12
                        : m == Mechanism::kCacheReplication ? 18
                        : m == Mechanism::kCachePartition   ? 16
                                                            : 10;
      const double saturation = sim.SaturationThroughput();
      if (m == Mechanism::kDistCache) {
        json.Metric(std::string(YcsbWorkloadName(w)) + "_distcache", saturation);
      }
      std::printf(" %*.0f", width, saturation);
    }
    std::printf("\n");
  }

  PrintHeader("YCSB on the threaded runtime (2 spines, 2 racks x 2 servers)",
              "real executed operations; hit ratio of the cache layers");
  const std::vector<YcsbWorkload> rt_mixes = SmokeSweep<YcsbWorkload>(
      {YcsbWorkload::kB}, {YcsbWorkload::kA, YcsbWorkload::kB, YcsbWorkload::kC});
  for (YcsbWorkload w : rt_mixes) {
    RuntimeConfig rt_cfg;
    rt_cfg.num_spine = 2;
    rt_cfg.num_racks = 2;
    rt_cfg.servers_per_rack = 2;
    rt_cfg.per_switch_objects = 32;
    rt_cfg.num_keys = 8192;
    DistCacheRuntime runtime(rt_cfg);
    runtime.Start();
    auto client = runtime.NewClient(1);
    YcsbGenerator::Config gen_cfg;
    gen_cfg.workload = w;
    gen_cfg.num_keys = 8192;
    YcsbGenerator gen(gen_cfg);
    constexpr int kOps = 20000;
    for (int i = 0; i < kOps; ++i) {
      const Op op = gen.Next();
      const uint64_t key = op.key % rt_cfg.num_keys;  // runtime preload is fixed
      if (op.type == OpType::kGet) {
        client->Get(key).ok();
      } else {
        client->Put(key, "ycsb-value").ok();
      }
    }
    runtime.Stop();
    const auto& counters = runtime.counters();
    const double hits = static_cast<double>(counters.cache_hits.load());
    const double gets =
        hits + static_cast<double>(counters.server_gets.load());
    const double hit_ratio = gets > 0 ? hits / gets : 0.0;
    json.Metric(std::string(YcsbWorkloadName(w)) + "_runtime_hit_ratio", hit_ratio);
    std::printf("  %-24s ops=%d  hit ratio=%.2f  coherence invalidations=%llu\n",
                YcsbWorkloadName(w), kOps, hit_ratio,
                static_cast<unsigned long long>(counters.invalidations.load()));
  }
}

}  // namespace
}  // namespace distcache

int main(int argc, char** argv) {
  distcache::BenchJson json(argc, argv, "ycsb");
  const distcache::BenchPolicyFlag policy(argc, argv);
  distcache::Run(json, policy);
  return 0;
}
