// Figure 11: failure handling time series — engine parity edition.
//
// The system runs at half its saturation throughput (so recovery benefits are
// visible). Four spine switches fail one by one; achieved throughput drops as
// their cached objects and ECMP transit share blackhole; the controller then
// remaps the failed partitions onto alive switches via consistent hashing
// (throughput recovers); finally the switches come back online.
//
// All three SimBackend engines replay the same ClusterEvent timeline: the fluid
// model applies it at tick granularity, while the request-level engines map the
// paper's 0..200 s wall clock onto request counts (1 s ≙ requests/200). The
// printed columns must agree — in particular the sharded engine's post-recovery
// throughput must land within 5% of the fluid model's.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "sim/sim_backend.h"

namespace distcache {
namespace {

constexpr int kEndTime = 200;   // paper x-axis, seconds
constexpr int kStep = 10;       // one sample interval per 10 s

std::vector<ClusterEvent> PaperTimeline(uint64_t requests) {
  const auto at = [&](int t) {
    return static_cast<uint64_t>(t) * requests / kEndTime;
  };
  std::vector<ClusterEvent> events;
  for (uint32_t s = 0; s < 4; ++s) {
    events.push_back(ClusterEvent::FailSpine(at(40 + 10 * static_cast<int>(s)), s));
    events.push_back(ClusterEvent::RecoverSpine(at(160), s));
  }
  events.push_back(ClusterEvent::RunRecovery(at(110)));
  return events;
}

const char* EventAt(int t) {
  if (t == 40 || t == 50 || t == 60 || t == 70) {
    return "switch failure";
  }
  if (t == 110) {
    return "failure recovery";
  }
  if (t == 160) {
    return "switch restoration";
  }
  return "";
}

void Run(BenchJson& json) {
  PrintHeader("Figure 11: failure handling time series (engine parity)",
              "32 spines; fail 4 one-by-one at t=40,50,60,70; controller recovery at "
              "t=110; switches restored at t=160; sending rate = half of max; "
              "columns: achieved throughput per engine");
  ClusterConfig cfg = PaperDefaultConfig(Mechanism::kDistCache);
  uint64_t requests = 2'000'000;
  uint32_t shards = 4;
  if (BenchSmoke()) {
    cfg.num_spine = cfg.num_racks = 8;  // smaller cluster, identical event series
    requests = 200'000;
    shards = 2;
  }

  // The offered rate every engine's throughput is normalized against.
  ClusterSim saturation_probe(cfg);
  const double max_rate = saturation_probe.SaturationThroughput();
  const double offered = 0.5 * max_rate;
  std::printf("max=%.0f, offered=%.0f, %llu requests/engine (%d s wall clock)\n",
              max_rate, offered, static_cast<unsigned long long>(requests),
              kEndTime);

  SimBackendConfig bcfg;
  bcfg.cluster = cfg;
  bcfg.events = PaperTimeline(requests);
  bcfg.sample_interval = requests / (kEndTime / kStep);

  BackendStats per_engine[3];
  const BackendKind kinds[3] = {BackendKind::kFluid, BackendKind::kSequential,
                                BackendKind::kSharded};
  for (int e = 0; e < 3; ++e) {
    bcfg.shards = kinds[e] == BackendKind::kSharded ? shards : 1;
    per_engine[e] = MakeSimBackend(kinds[e], bcfg)->Run(requests);
  }

  json.Config("offered_rate", offered);
  json.Config("requests", static_cast<double>(requests));
  std::printf("%-8s %12s %12s %12s   %s\n", "time(s)", "fluid", "sequential",
              "sharded", "event");
  std::vector<double> time_series;
  std::vector<double> engine_series[3];
  // Row t covers the interval [t, t+kStep): an event timestamped t lands at the
  // start of its row, like the annotations in the paper's figure.
  const size_t intervals = per_engine[0].series.size();
  for (size_t i = 0; i < intervals; ++i) {
    const int t = static_cast<int>(i * kStep);
    time_series.push_back(t);
    std::printf("%-8d", t);
    for (int e = 0; e < 3; ++e) {
      const auto& series = per_engine[e].series;
      const double fraction =
          i < series.size() ? series[i].delivered_fraction() : 1.0;
      engine_series[e].push_back(fraction * offered);
      std::printf(" %12.0f", fraction * offered);
    }
    std::printf("   %s\n", EventAt(t));
  }
  json.Series("time_s", time_series);
  json.Series("fluid_throughput", engine_series[0]);
  json.Series("sequential_throughput", engine_series[1]);
  json.Series("sharded_throughput", engine_series[2]);

  // Engine-parity acceptance: post-recovery (last interval) throughput of the
  // sharded runtime within 5% of the fluid model.
  const double fluid_final = per_engine[0].series.back().delivered_fraction();
  const double sharded_final = per_engine[2].series.back().delivered_fraction();
  const double parity = fluid_final > 0.0 ? sharded_final / fluid_final : 0.0;
  json.Metric("post_recovery_sharded_over_fluid", parity);
  std::printf("post-recovery sharded/fluid = %.4f (|1-x| must be < 0.05)\n", parity);
}

}  // namespace
}  // namespace distcache

int main(int argc, char** argv) {
  distcache::BenchJson json(argc, argv, "fig11");
  distcache::Run(json);
  return 0;
}
