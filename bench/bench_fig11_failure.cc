// Figure 11: failure handling time series.
// The system runs at half its maximum throughput (so recovery benefits are visible).
// Four spine switches fail one by one; the achieved throughput drops toward ~87.5%
// of the sending rate as their cached objects and transit share blackhole; the
// controller then remaps the failed partitions onto alive switches via consistent
// hashing (throughput recovers); finally the switches come back online.
#include <cstdio>

#include "bench/bench_common.h"

namespace distcache {
namespace {

void Run() {
  PrintHeader("Figure 11: failure handling time series",
              "32 spines; fail 4 one-by-one at t=40,50,60,70; controller recovery at "
              "t=110; switches restored at t=160; sending rate = half of max");
  ClusterConfig cfg = PaperDefaultConfig(Mechanism::kDistCache);
  if (BenchSmoke()) {
    cfg.num_spine = cfg.num_racks = 8;  // smaller cluster, identical event series
  }
  ClusterSim sim(cfg);
  const double max_rate = sim.SaturationThroughput();
  const double offered = 0.5 * max_rate;
  std::printf("max=%.0f, offered=%.0f\n", max_rate, offered);
  std::printf("%-8s %12s %10s\n", "time(s)", "throughput", "event");
  for (int t = 0; t <= 200; t += 10) {
    const char* event = "";
    if (t == 40 || t == 50 || t == 60 || t == 70) {
      sim.FailSpine(static_cast<uint32_t>((t - 40) / 10));
      event = "switch failure";
    } else if (t == 110) {
      sim.RunFailureRecovery();
      event = "failure recovery";
    } else if (t == 160) {
      for (uint32_t s = 0; s < 4; ++s) {
        sim.RecoverSpine(s);
      }
      event = "switch restoration";
    }
    std::printf("%-8d %12.0f %s\n", t, sim.AchievedThroughput(offered, 2), event);
  }
}

}  // namespace
}  // namespace distcache

int main() {
  distcache::Run();
  return 0;
}
