// Shared helpers for the figure/table reproduction benches.
#ifndef DISTCACHE_BENCH_BENCH_COMMON_H_
#define DISTCACHE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "cluster/cluster_sim.h"
#include "core/mechanism.h"

namespace distcache {

inline const std::vector<Mechanism>& AllMechanisms() {
  static const std::vector<Mechanism> kAll{
      Mechanism::kDistCache, Mechanism::kCacheReplication, Mechanism::kCachePartition,
      Mechanism::kNoCache};
  return kAll;
}

// The paper's default testbed shape (§6.2): 32 spine switches, 32 storage racks,
// 32 servers per rack, 100 objects per cache switch, 100M keys, Zipf-0.99.
inline ClusterConfig PaperDefaultConfig(Mechanism m) {
  ClusterConfig cfg;
  cfg.mechanism = m;
  cfg.num_spine = 32;
  cfg.num_racks = 32;
  cfg.servers_per_rack = 32;
  cfg.per_switch_objects = 100;
  cfg.num_keys = 100'000'000;
  cfg.zipf_theta = 0.99;
  return cfg;
}

inline void PrintHeader(const std::string& title, const std::string& note) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!note.empty()) {
    std::printf("%s\n", note.c_str());
  }
}

inline void PrintRow(const std::string& label, const std::vector<double>& values,
                     const std::vector<std::string>& names) {
  std::printf("%-14s", label.c_str());
  for (size_t i = 0; i < values.size(); ++i) {
    std::printf("  %-16s %8.0f", names[i].c_str(), values[i]);
  }
  std::printf("\n");
}

}  // namespace distcache

#endif  // DISTCACHE_BENCH_BENCH_COMMON_H_
