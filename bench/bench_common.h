// Shared helpers for the figure/table reproduction benches.
#ifndef DISTCACHE_BENCH_BENCH_COMMON_H_
#define DISTCACHE_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster_sim.h"
#include "core/cache_policy.h"
#include "core/mechanism.h"

namespace distcache {

// True when DISTCACHE_BENCH_SMOKE is set: benches shrink their sweeps to finish in
// about a second so `make bench-smoke` can catch bitrot without reproducing full
// figures. Numbers printed under smoke mode are NOT meaningful.
inline bool BenchSmoke() {
  const char* env = std::getenv("DISTCACHE_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

// Sweep selector: the reduced list under smoke mode, the full list otherwise.
template <typename T>
std::vector<T> SmokeSweep(std::vector<T> smoke, std::vector<T> full) {
  return BenchSmoke() ? std::move(smoke) : std::move(full);
}

inline const std::vector<Mechanism>& AllMechanisms() {
  static const std::vector<Mechanism> kAll{
      Mechanism::kDistCache, Mechanism::kCacheReplication, Mechanism::kCachePartition,
      Mechanism::kNoCache};
  return kAll;
}

// The paper's default testbed shape (§6.2): 32 spine switches, 32 storage racks,
// 32 servers per rack, 100 objects per cache switch, 100M keys, Zipf-0.99.
inline ClusterConfig PaperDefaultConfig(Mechanism m) {
  ClusterConfig cfg;
  cfg.mechanism = m;
  cfg.num_spine = 32;
  cfg.num_racks = 32;
  cfg.servers_per_rack = 32;
  cfg.per_switch_objects = 100;
  cfg.num_keys = 100'000'000;
  cfg.zipf_theta = 0.99;
  return cfg;
}

// `--cache-policy=<name>` plumbing for benches: overrides the per-node cache
// policy (core/cache_policy.h) on every DistCache-mechanism config the bench
// builds — the comparison mechanisms keep their fixed semantics, so the flag
// ablates DistCache's policy without touching the baselines. Unknown names and
// invalid combinations fail fast instead of silently benchmarking the default.
class BenchPolicyFlag {
 public:
  BenchPolicyFlag(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--cache-policy=", 15) == 0) {
        const char* name = argv[i] + 15;
        if (!ParseCachePolicy(name, &kind_)) {
          std::fprintf(stderr,
                       "unknown --cache-policy=%s (want distcache|static-topk|"
                       "lru|lfu|fifo|segmented)\n", name);
          std::exit(1);
        }
      }
    }
  }

  void Apply(ClusterConfig* cfg) const {
    if (cfg->mechanism != Mechanism::kDistCache) {
      return;
    }
    cfg->cache_policy = kind_;
    if (const std::string err =
            ValidateCachePolicy(cfg->cache_policy, cfg->cache_hierarchy,
                                cfg->write_policy, cfg->mechanism);
        !err.empty()) {
      std::fprintf(stderr, "--cache-policy: %s\n", err.c_str());
      std::exit(1);
    }
  }

  const char* name() const { return CachePolicyName(kind_); }
  bool is_default() const { return kind_ == CachePolicyKind::kDistCache; }

 private:
  CachePolicyKind kind_ = CachePolicyKind::kDistCache;
};

inline void PrintHeader(const std::string& title, const std::string& note) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!note.empty()) {
    std::printf("%s\n", note.c_str());
  }
}

inline void PrintRow(const std::string& label, const std::vector<double>& values,
                     const std::vector<std::string>& names) {
  std::printf("%-14s", label.c_str());
  for (size_t i = 0; i < values.size(); ++i) {
    std::printf("  %-16s %8.0f", names[i].c_str(), values[i]);
  }
  std::printf("\n");
}

// Machine-readable bench output: pass --json (or set DISTCACHE_BENCH_JSON=1) and
// the bench writes BENCH_<name>.json next to the binary, carrying its config,
// scalar metrics and metric series — the artifact the perf-trajectory tooling
// ingests. With the flag absent every recording call is a no-op, so benches can
// record unconditionally.
class BenchJson {
 public:
  BenchJson(int argc, char** argv, std::string bench_name)
      : name_(std::move(bench_name)) {
    for (int i = 1; i < argc; ++i) {
      enabled_ = enabled_ || std::strcmp(argv[i], "--json") == 0;
    }
    const char* env = std::getenv("DISTCACHE_BENCH_JSON");
    enabled_ = enabled_ || (env != nullptr && env[0] != '\0' && env[0] != '0');
  }
  ~BenchJson() { Write(); }

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  bool enabled() const { return enabled_; }

  void Config(const std::string& key, const std::string& value) {
    config_.emplace_back(key, Quote(value));
  }
  void Config(const std::string& key, double value) {
    config_.emplace_back(key, Number(value));
  }
  void Metric(const std::string& key, double value) {
    metrics_.emplace_back(key, Number(value));
  }
  void Series(const std::string& key, const std::vector<double>& values) {
    std::string json = "[";
    for (size_t i = 0; i < values.size(); ++i) {
      json += (i == 0 ? "" : ", ") + Number(values[i]);
    }
    json += "]";
    series_.emplace_back(key, std::move(json));
  }

 private:
  using Entries = std::vector<std::pair<std::string, std::string>>;

  static std::string Quote(const std::string& text) {
    std::string out = "\"";
    for (char c : text) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
    return out + "\"";
  }

  static std::string Number(double value) {
    if (!std::isfinite(value)) {
      return "null";  // JSON has no NaN/inf
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
  }

  static void WriteSection(std::FILE* f, const char* name, const Entries& entries,
                           bool trailing_comma) {
    std::fprintf(f, "  \"%s\": {", name);
    for (size_t i = 0; i < entries.size(); ++i) {
      std::fprintf(f, "%s\n    %s: %s", i == 0 ? "" : ",",
                   Quote(entries[i].first).c_str(), entries[i].second.c_str());
    }
    std::fprintf(f, "%s}%s\n", entries.empty() ? "" : "\n  ",
                 trailing_comma ? "," : "");
  }

  void Write() {
    if (!enabled_) {
      return;
    }
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": %s,\n  \"smoke\": %s,\n", Quote(name_).c_str(),
                 BenchSmoke() ? "true" : "false");
    WriteSection(f, "config", config_, /*trailing_comma=*/true);
    WriteSection(f, "metrics", metrics_, /*trailing_comma=*/true);
    WriteSection(f, "series", series_, /*trailing_comma=*/false);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }

  bool enabled_ = false;
  std::string name_;
  Entries config_;
  Entries metrics_;
  Entries series_;
};

}  // namespace distcache

#endif  // DISTCACHE_BENCH_BENCH_COMMON_H_
