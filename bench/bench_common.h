// Shared helpers for the figure/table reproduction benches.
#ifndef DISTCACHE_BENCH_BENCH_COMMON_H_
#define DISTCACHE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/cluster_sim.h"
#include "core/mechanism.h"

namespace distcache {

// True when DISTCACHE_BENCH_SMOKE is set: benches shrink their sweeps to finish in
// about a second so `make bench-smoke` can catch bitrot without reproducing full
// figures. Numbers printed under smoke mode are NOT meaningful.
inline bool BenchSmoke() {
  const char* env = std::getenv("DISTCACHE_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

// Sweep selector: the reduced list under smoke mode, the full list otherwise.
template <typename T>
std::vector<T> SmokeSweep(std::vector<T> smoke, std::vector<T> full) {
  return BenchSmoke() ? std::move(smoke) : std::move(full);
}

inline const std::vector<Mechanism>& AllMechanisms() {
  static const std::vector<Mechanism> kAll{
      Mechanism::kDistCache, Mechanism::kCacheReplication, Mechanism::kCachePartition,
      Mechanism::kNoCache};
  return kAll;
}

// The paper's default testbed shape (§6.2): 32 spine switches, 32 storage racks,
// 32 servers per rack, 100 objects per cache switch, 100M keys, Zipf-0.99.
inline ClusterConfig PaperDefaultConfig(Mechanism m) {
  ClusterConfig cfg;
  cfg.mechanism = m;
  cfg.num_spine = 32;
  cfg.num_racks = 32;
  cfg.servers_per_rack = 32;
  cfg.per_switch_objects = 100;
  cfg.num_keys = 100'000'000;
  cfg.zipf_theta = 0.99;
  return cfg;
}

inline void PrintHeader(const std::string& title, const std::string& note) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!note.empty()) {
    std::printf("%s\n", note.c_str());
  }
}

inline void PrintRow(const std::string& label, const std::vector<double>& values,
                     const std::vector<std::string>& names) {
  std::printf("%-14s", label.c_str());
  for (size_t i = 0; i < values.size(); ++i) {
    std::printf("  %-16s %8.0f", names[i].c_str(), values[i]);
  }
  std::printf("\n");
}

}  // namespace distcache

#endif  // DISTCACHE_BENCH_BENCH_COMMON_H_
