// SLO saturation bench (extension): offered-load sweep through the open-loop
// virtual-time engine. Every request is timestamped by a Poisson arrival
// process and queues FIFO at its serving node, so each load point yields a
// *measured* latency distribution (hops + queueing + service) rather than an
// analytic sojourn — the request-level counterpart of bench_latency.
//
// Shape to expect: with balanced caching (the paper's power-of-two routing over
// the replicated hot set) the p99 stays essentially flat until the offered load
// approaches the aggregate service capacity; with consistent-hash-style fixed
// routing (static-topk: same cached contents, first-alive candidate) the one
// switch holding the hottest keys saturates far earlier and the tail blows up —
// the paper's intro claim ("the system is bottlenecked by the overloaded nodes,
// resulting in ... long tail latencies") made quantitative.
//
// The lightest load point is cross-checked against the fluid engine's M/M/1
// closed form (FillAnalyticLatency): at low utilization the measured p50 must
// track the analytic one within the histogram's bucket resolution.
//
// --gate: exit nonzero unless balanced caching beats fixed routing on p99 at
// the highest load point (the CI regression gate for the queueing layer).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "sim/sim_backend.h"

namespace distcache {
namespace {

// Small enough to sweep in seconds, hot enough to saturate: 8x8 switches with
// 50 objects each cache ~44% of the zipf-0.99 read mass; cache nodes serve at
// 6x a storage server, so the fixed-routing hot spine (~7.5% of the offered
// load) saturates near lambda = 80 while the 128 servers' aggregate is 128.
ClusterConfig SloConfig(CachePolicyKind policy) {
  ClusterConfig cfg;
  cfg.mechanism = Mechanism::kDistCache;
  cfg.num_spine = 8;
  cfg.num_racks = 8;
  cfg.servers_per_rack = 16;
  cfg.per_switch_objects = 50;
  cfg.num_keys = 1'000'000;
  cfg.zipf_theta = 0.99;
  cfg.write_ratio = 0.0;
  cfg.seed = 42;
  cfg.cache_policy = policy;
  return cfg;
}

SimBackendConfig SloBackendConfig(CachePolicyKind policy, double lambda) {
  SimBackendConfig bcfg;
  bcfg.cluster = SloConfig(policy);
  bcfg.queue.arrival.rate = lambda;
  bcfg.queue.service_rates = {6.0};  // broadcast to every cache layer
  bcfg.queue.server_service_rate = 1.0;
  bcfg.queue.hop_cost = 0.2;
  return bcfg;
}

BackendStats RunPoint(BackendKind kind, CachePolicyKind policy, double lambda,
                      uint64_t requests) {
  return MakeSimBackend(kind, SloBackendConfig(policy, lambda))->Run(requests);
}

int Run(BenchJson& json, bool gate) {
  PrintHeader(
      "SLO saturation: measured latency vs offered load (open-loop, zipf-0.99)",
      "lambda in storage-server service rates (aggregate 128); balanced = "
      "distcache PoT, fixed = static-topk first-alive routing");
  const uint64_t requests = BenchSmoke() ? 100'000 : 400'000;
  const std::vector<double> sweep = SmokeSweep<double>(
      {8.0, 78.0}, {8.0, 24.0, 48.0, 64.0, 72.0, 78.0});
  json.Config("requests", static_cast<double>(requests));
  json.Series("offered_load", sweep);

  std::printf("%-8s | %28s | %28s\n", "", "balanced (distcache)",
              "fixed routing (static-topk)");
  std::printf("%-8s | %8s %9s %9s | %8s %9s %9s\n", "lambda", "p50", "p99",
              "p99.9", "p50", "p99", "p99.9");

  struct Tail {
    std::vector<double> p50, p99, p999, overloaded;
  };
  Tail balanced, fixed;
  const auto record = [](Tail& t, const LatencyHistogram& h) {
    t.p50.push_back(h.Percentile(50.0));
    t.p99.push_back(h.Percentile(99.0));
    t.p999.push_back(h.Percentile(99.9));
    t.overloaded.push_back(h.infinite_fraction());
  };
  for (double lambda : sweep) {
    const BackendStats bal = RunPoint(BackendKind::kSequential,
                                      CachePolicyKind::kDistCache, lambda,
                                      requests);
    const BackendStats fix = RunPoint(BackendKind::kSequential,
                                      CachePolicyKind::kStaticTopK, lambda,
                                      requests);
    record(balanced, bal.latency);
    record(fixed, fix.latency);
    std::printf("%-8.0f | %8.2f %9.2f %9.2f | %8.2f %9.2f %9.2f\n", lambda,
                balanced.p50.back(), balanced.p99.back(), balanced.p999.back(),
                fixed.p50.back(), fixed.p99.back(), fixed.p999.back());
  }
  json.Series("balanced_p50", balanced.p50);
  json.Series("balanced_p99", balanced.p99);
  json.Series("balanced_p999", balanced.p999);
  json.Series("fixed_p50", fixed.p50);
  json.Series("fixed_p99", fixed.p99);
  json.Series("fixed_p999", fixed.p999);

  // Fluid cross-check at the lightest load: the analytic M/M/1 mixture and the
  // measured distribution must agree on the median at low utilization (the
  // histogram resolves ~4.4% per bucket; 15% covers the model error of
  // fluid-vs-sampled load splits).
  const double light = sweep.front();
  const BackendStats fluid = RunPoint(BackendKind::kFluid,
                                      CachePolicyKind::kDistCache, light,
                                      requests);
  const double fluid_p50 = fluid.latency.Percentile(50.0);
  const double measured_p50 = balanced.p50.front();
  const double rel_err =
      fluid_p50 > 0.0 ? measured_p50 / fluid_p50 - 1.0 : 0.0;
  json.Metric("fluid_p50_light", fluid_p50);
  json.Metric("measured_p50_light", measured_p50);
  std::printf("\nfluid cross-check @ lambda=%.0f: analytic p50=%.3f  "
              "measured p50=%.3f  (%.1f%%)\n",
              light, fluid_p50, measured_p50, 100.0 * rel_err);

  // Gate: at the highest load, balanced caching must keep the tail below the
  // fixed-routing blow-up.
  const double bal_p99 = balanced.p99.back();
  const double fix_p99 = fixed.p99.back();
  json.Metric("gate_balanced_p99", bal_p99);
  json.Metric("gate_fixed_p99", fix_p99);
  const bool tail_flat = bal_p99 < fix_p99;
  std::printf("gate @ lambda=%.0f: balanced p99=%.2f %s fixed p99=%.2f%s\n",
              sweep.back(), bal_p99, tail_flat ? "<" : ">=", fix_p99,
              gate ? (tail_flat ? "  [gate PASS]" : "  [gate FAIL]") : "");
  if (gate && !tail_flat) {
    std::fprintf(stderr,
                 "bench_latency_slo: gate failed: balanced p99 (%.2f) must be "
                 "below fixed-routing p99 (%.2f) at lambda=%.0f\n",
                 bal_p99, fix_p99, sweep.back());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace distcache

int main(int argc, char** argv) {
  bool gate = false;
  for (int i = 1; i < argc; ++i) {
    gate = gate || std::strcmp(argv[i], "--gate") == 0;
  }
  distcache::BenchJson json(argc, argv, "latency_slo");
  return distcache::Run(json, gate);
}
