// Hot-spot shift & online cache re-allocation — engine parity edition (§6.4).
//
// The paper's dynamic-workload experiment: the workload's entire hot set moves to
// previously-cold keys mid-run. The cache hit ratio collapses (the cached set is
// suddenly cold), and recovers once the controller re-allocates the cache from
// observed per-key popularity and pushes the new routes.
//
// All three SimBackend engines replay the same timeline: a kShiftHotspot event
// rotating the rank→key mapping by half the keyspace at t=40%, and a
// kReallocateCache event at t=60%. The request-level engines re-allocate from
// *sketch-observed* heavy-hitter counts (the faithful §4.1/§6.4 loop: switches
// report, the controller merges and refills); the fluid engine re-allocates from
// the exact hot set — the analytic ceiling the observed re-allocation approaches.
//
// Columns: per-interval cache hit ratio per engine. The fluid column also shows a
// delivered-fraction dip during the outage window: the fluid model is
// capacity-aware, and with the cache useless the hottest keys over-saturate their
// primary servers at the offered rate; the request-level engines count loads
// without a capacity model, so their dip shows in the hit ratio only.
//
// Acceptance (printed at the end): post-re-allocation hit ratio of every
// request-level engine within 2% of its pre-shift value, and sharded-vs-sequential
// parity within 1% on whole-run hit ratio and cache imbalance.
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "sim/sim_backend.h"

namespace distcache {
namespace {

void Run(BenchJson& json) {
  PrintHeader("Hot-spot shift & online cache re-allocation (engine parity)",
              "hot set rotates by keys/2 at t=40%, controller re-allocates from "
              "observed counts at t=60%; columns: hit ratio per engine");
  ClusterConfig cfg = PaperDefaultConfig(Mechanism::kDistCache);
  uint64_t requests = 4'000'000;
  uint32_t shards = 4;
  if (BenchSmoke()) {
    cfg.num_spine = cfg.num_racks = 8;  // smaller cluster, identical timeline shape
    cfg.servers_per_rack = 4;
    cfg.per_switch_objects = 50;
    cfg.num_keys = 1'000'000;
    requests = 400'000;
    shards = 2;
  }
  constexpr int kIntervals = 10;

  SimBackendConfig bcfg;
  bcfg.cluster = cfg;
  bcfg.sample_interval = requests / kIntervals;
  const uint64_t shift_at = requests * 4 / 10;   // interval 4
  const uint64_t realloc_at = requests * 6 / 10; // interval 6
  bcfg.events = {ClusterEvent::ShiftHotspot(shift_at, cfg.num_keys / 2),
                 ClusterEvent::ReallocateCache(realloc_at)};

  BackendStats per_engine[3];
  const BackendKind kinds[3] = {BackendKind::kFluid, BackendKind::kSequential,
                                BackendKind::kSharded};
  const char* names[3] = {"fluid", "sequential", "sharded"};
  for (int e = 0; e < 3; ++e) {
    bcfg.shards = kinds[e] == BackendKind::kSharded ? shards : 1;
    per_engine[e] = MakeSimBackend(kinds[e], bcfg)->Run(requests);
  }

  std::printf("%llu requests/engine; shift at %llu, re-allocation at %llu\n",
              static_cast<unsigned long long>(requests),
              static_cast<unsigned long long>(shift_at),
              static_cast<unsigned long long>(realloc_at));
  std::printf("%-10s %12s %12s %12s   %s\n", "interval", "fluid", "sequential",
              "sharded", "event");
  // The timeline is on the sampling grid, so all engines report kIntervals points.
  for (int i = 0; i < kIntervals; ++i) {
    std::printf("%-10d", i);
    for (int e = 0; e < 3; ++e) {
      const auto& series = per_engine[e].series;
      std::printf(" %12.4f", i < static_cast<int>(series.size())
                                 ? series[i].hit_ratio()
                                 : 0.0);
    }
    const char* event = i == 4 ? "hot set shifted"
                       : i == 6 ? "cache re-allocated"
                                : "";
    std::printf("   %s\n", event);
  }

  // Trajectory summary: dip → re-allocation → recovery, plus whole-run imbalance.
  std::printf("\n%-12s %12s %12s %12s %12s %12s\n", "engine", "pre-shift",
              "during-dip", "recovered", "rec/pre", "imbalance");
  double recovery[3] = {0.0, 0.0, 0.0};
  for (int e = 0; e < 3; ++e) {
    const auto& series = per_engine[e].series;
    const double pre = series[3].hit_ratio();       // last pre-shift interval
    const double dip = series[5].hit_ratio();       // shifted, not yet re-allocated
    const double rec = series.back().hit_ratio();   // post-re-allocation
    recovery[e] = pre > 0.0 ? rec / pre : 0.0;
    std::printf("%-12s %12.4f %12.4f %12.4f %12.4f %12.3f\n", names[e], pre, dip,
                rec, recovery[e], per_engine[e].CacheImbalance());
  }

  // Acceptance lines (consumed by eyeballs and CI greps alike).
  const double seq_hit = per_engine[1].hit_ratio();
  const double shd_hit = per_engine[2].hit_ratio();
  const double seq_imb = per_engine[1].CacheImbalance();
  const double shd_imb = per_engine[2].CacheImbalance();
  std::printf("\nsharded/sequential hit ratio = %.4f, imbalance ratio = %.4f "
              "(|1-x| must be < 0.01)\n",
              seq_hit > 0.0 ? shd_hit / seq_hit : 0.0,
              seq_imb > 0.0 ? shd_imb / seq_imb : 0.0);
  std::printf("post-reallocation recovery: sequential %.4f, sharded %.4f "
              "(must be > 0.98)\n",
              recovery[1], recovery[2]);

  json.Config("requests", static_cast<double>(requests));
  json.Config("shift_at", static_cast<double>(shift_at));
  json.Config("realloc_at", static_cast<double>(realloc_at));
  for (int e = 0; e < 3; ++e) {
    std::vector<double> hits;
    for (const auto& pt : per_engine[e].series) {
      hits.push_back(pt.hit_ratio());
    }
    json.Series(std::string("hit_ratio_") + names[e], hits);
    json.Metric(std::string(names[e]) + "_recovery", recovery[e]);
    json.Metric(std::string(names[e]) + "_mrps", per_engine[e].throughput_mrps());
  }
  json.Metric("sharded_vs_sequential_hit",
              seq_hit > 0.0 ? shd_hit / seq_hit : 0.0);
}

}  // namespace
}  // namespace distcache

int main(int argc, char** argv) {
  distcache::BenchJson json(argc, argv, "hotspot_shift");
  distcache::Run(json);
  return 0;
}
