#include "cluster/cluster_sim.h"

#include <gtest/gtest.h>

namespace distcache {
namespace {

// Load imbalance between cache nodes only bites at scale (§3.3: "the load imbalance
// issue is only significant when m is large"), so the mechanism-separation tests run
// a 32-rack cluster; 8 servers per rack keeps them fast.
ClusterConfig SmallCluster(Mechanism m, double theta = 0.99) {
  ClusterConfig cfg;
  cfg.mechanism = m;
  cfg.num_spine = 32;
  cfg.num_racks = 32;
  cfg.servers_per_rack = 8;
  cfg.per_switch_objects = 20;
  cfg.num_keys = 1'000'000;
  cfg.zipf_theta = theta;
  return cfg;
}

TEST(ClusterSim, UniformWorkloadEqualizesMechanisms) {
  // Fig. 9(a) leftmost group: under uniform load all four mechanisms saturate the
  // servers and perform identically.
  double results[4];
  int i = 0;
  for (Mechanism m : {Mechanism::kNoCache, Mechanism::kCachePartition,
                      Mechanism::kCacheReplication, Mechanism::kDistCache}) {
    ClusterSim sim(SmallCluster(m, /*theta=*/0.0));
    results[i++] = sim.SaturationThroughput();
  }
  for (int j = 1; j < 4; ++j) {
    EXPECT_NEAR(results[j], results[0], 0.05 * results[0]);
  }
  EXPECT_GT(results[0], 0.9 * 256.0);  // ~aggregate server capacity
}

TEST(ClusterSim, SkewCollapsesNoCache) {
  ClusterSim uniform(SmallCluster(Mechanism::kNoCache, 0.0));
  ClusterSim skewed(SmallCluster(Mechanism::kNoCache, 0.99));
  EXPECT_LT(skewed.SaturationThroughput(), 0.3 * uniform.SaturationThroughput());
}

TEST(ClusterSim, MechanismOrderingUnderSkew) {
  // Fig. 9(a): DistCache ≈ CacheReplication > CachePartition > NoCache.
  ClusterSim dist(SmallCluster(Mechanism::kDistCache));
  ClusterSim repl(SmallCluster(Mechanism::kCacheReplication));
  ClusterSim part(SmallCluster(Mechanism::kCachePartition));
  ClusterSim none(SmallCluster(Mechanism::kNoCache));
  const double d = dist.SaturationThroughput();
  const double r = repl.SaturationThroughput();
  const double p = part.SaturationThroughput();
  const double n = none.SaturationThroughput();
  EXPECT_NEAR(d, r, 0.15 * r);  // comparable to the read-optimal mechanism
  EXPECT_GT(d, 1.3 * p);
  EXPECT_GT(p, n);
}

TEST(ClusterSim, BiggerCacheHelpsDistCache) {
  // Fig. 9(b): throughput grows with cache size until saturation.
  ClusterConfig small = SmallCluster(Mechanism::kDistCache);
  small.per_switch_objects = 1;
  ClusterConfig big = SmallCluster(Mechanism::kDistCache);
  big.per_switch_objects = 50;
  ClusterSim s(small);
  ClusterSim b(big);
  EXPECT_GT(b.SaturationThroughput(), 1.5 * s.SaturationThroughput());
}

TEST(ClusterSim, CachePartitionGainsLittleFromCacheSize) {
  // Fig. 9(b): CachePartition stays bottlenecked by its hottest switch.
  ClusterConfig small = SmallCluster(Mechanism::kCachePartition);
  small.per_switch_objects = 20;
  ClusterConfig big = SmallCluster(Mechanism::kCachePartition);
  big.per_switch_objects = 200;
  ClusterSim s(small);
  ClusterSim b(big);
  EXPECT_LT(b.SaturationThroughput(), 1.5 * s.SaturationThroughput());
}

TEST(ClusterSim, DistCacheScalesWithClusterCount) {
  // Fig. 9(c) regime (within the theorem's max-object-rate precondition).
  ClusterConfig half = SmallCluster(Mechanism::kDistCache, 0.8);
  ClusterConfig full = SmallCluster(Mechanism::kDistCache, 0.8);
  full.num_spine = 64;
  full.num_racks = 64;
  ClusterSim h(half);
  ClusterSim f(full);
  EXPECT_GT(f.SaturationThroughput(), 1.8 * h.SaturationThroughput());
}

TEST(ClusterSim, WritesHurtReplicationMost) {
  // Fig. 10: CacheReplication pays m-copy coherence; DistCache pays 2.
  ClusterConfig dist_cfg = SmallCluster(Mechanism::kDistCache);
  dist_cfg.write_ratio = 0.1;
  ClusterConfig repl_cfg = SmallCluster(Mechanism::kCacheReplication);
  repl_cfg.write_ratio = 0.1;
  ClusterSim dist(dist_cfg);
  ClusterSim repl(repl_cfg);
  EXPECT_GT(dist.SaturationThroughput(), 2.0 * repl.SaturationThroughput());
}

TEST(ClusterSim, NoCacheUnaffectedByWriteRatio) {
  ClusterConfig a = SmallCluster(Mechanism::kNoCache);
  ClusterConfig b = SmallCluster(Mechanism::kNoCache);
  b.write_ratio = 0.8;
  ClusterSim sa(a);
  ClusterSim sb(b);
  EXPECT_NEAR(sa.SaturationThroughput(), sb.SaturationThroughput(),
              0.05 * sa.SaturationThroughput());
}

TEST(ClusterSim, HighWriteRatioMakesCachingWorseThanNoCache) {
  // Fig. 10 endgame: "in-network caching should be disabled for write-intensive
  // workloads".
  ClusterConfig cached = SmallCluster(Mechanism::kDistCache);
  cached.write_ratio = 1.0;
  ClusterConfig none = SmallCluster(Mechanism::kNoCache);
  none.write_ratio = 1.0;
  ClusterSim c(cached);
  ClusterSim n(none);
  EXPECT_LT(c.SaturationThroughput(), n.SaturationThroughput());
}

TEST(ClusterSim, AchievedBoundedByOffered) {
  ClusterSim sim(SmallCluster(Mechanism::kDistCache));
  EXPECT_LE(sim.AchievedThroughput(100.0), 100.0 + 1e-9);
  EXPECT_NEAR(sim.AchievedThroughput(10.0), 10.0, 1e-6);  // far below saturation
}

TEST(ClusterSim, FailureDropsThroughputUntilRecovery) {
  // Fig. 11 storyline at reduced scale.
  ClusterSim sim(SmallCluster(Mechanism::kDistCache));
  const double offered = 0.5 * sim.SaturationThroughput();
  const double healthy = sim.AchievedThroughput(offered);
  EXPECT_NEAR(healthy, offered, 0.02 * offered);
  sim.FailSpine(0);
  const double degraded = sim.AchievedThroughput(offered);
  EXPECT_LT(degraded, 0.99 * healthy);
  sim.RunFailureRecovery();
  const double recovered = sim.AchievedThroughput(offered);
  EXPECT_NEAR(recovered, healthy, 0.03 * healthy);
  sim.RecoverSpine(0);
  EXPECT_NEAR(sim.AchievedThroughput(offered), healthy, 0.03 * healthy);
}

TEST(ClusterSim, RecoveryKeepsHotObjectsCached) {
  ClusterConfig cfg = SmallCluster(Mechanism::kDistCache);
  ClusterSim sim(cfg);
  const double before = sim.SaturationThroughput();
  sim.FailSpine(0);
  sim.RunFailureRecovery();
  const double after = sim.SaturationThroughput();
  // One of 8 spines lost: capacity dips, but caching still works (≫ leaf-only).
  EXPECT_GT(after, 0.5 * before);
}

TEST(ClusterSim, StaleTelemetryHerdingHurts) {
  ClusterConfig fresh = SmallCluster(Mechanism::kDistCache);
  ClusterConfig stale = SmallCluster(Mechanism::kDistCache);
  stale.stale_telemetry = true;
  ClusterSim f(fresh);
  ClusterSim s(stale);
  EXPECT_GE(f.SaturationThroughput(), s.SaturationThroughput() - 1e-9);
}

TEST(ClusterSim, RandomRoutingWorseThanPoT) {
  ClusterConfig pot = SmallCluster(Mechanism::kDistCache);
  ClusterConfig rnd = SmallCluster(Mechanism::kDistCache);
  rnd.routing = RoutingPolicy::kRandom;
  ClusterSim p(pot);
  ClusterSim r(rnd);
  EXPECT_GE(p.SaturationThroughput(), r.SaturationThroughput() - 1e-9);
}

TEST(ClusterSim, FastSpineVariantSupportsHotterObjects) {
  // §3.3 non-uniform throughput remark: fewer-but-faster spines raise the
  // per-object ceiling.
  ClusterConfig slow = SmallCluster(Mechanism::kDistCache);
  ClusterConfig fast = SmallCluster(Mechanism::kDistCache);
  fast.spine_capacity = 4.0 * 8.0;  // 4x the 8-server rack aggregate
  ClusterSim s(slow);
  ClusterSim f(fast);
  EXPECT_GE(f.SaturationThroughput(), s.SaturationThroughput());
}

TEST(ClusterSim, UncappedModeExceedsServerAggregate) {
  ClusterConfig cfg = SmallCluster(Mechanism::kDistCache);
  cfg.cap_at_server_aggregate = false;
  cfg.zipf_theta = 0.9;
  ClusterSim sim(cfg);
  // With caches absorbing the head, stable rate can exceed what servers alone could
  // serve — the cap exists only to mirror the paper's testbed normalization.
  EXPECT_GT(sim.SaturationThroughput(), sim.TotalServerCapacity());
}

TEST(ClusterSim, SnapshotShapesMatchTopology) {
  ClusterSim sim(SmallCluster(Mechanism::kDistCache));
  const LoadSnapshot snap = sim.RunTicks(10.0, 2);
  EXPECT_EQ(snap.spine().size(), 32u);
  EXPECT_EQ(snap.leaf().size(), 32u);
  EXPECT_EQ(snap.server.size(), 256u);
  EXPECT_GT(snap.max_utilization, 0.0);
}

}  // namespace
}  // namespace distcache
