#include "cluster/latency.h"

#include <gtest/gtest.h>

#include <cmath>

namespace distcache {
namespace {

ClusterConfig Cfg(Mechanism m) {
  ClusterConfig cfg;
  cfg.mechanism = m;
  cfg.num_spine = 16;
  cfg.num_racks = 16;
  cfg.servers_per_rack = 8;
  cfg.per_switch_objects = 20;
  cfg.num_keys = 1'000'000;
  cfg.zipf_theta = 0.99;
  return cfg;
}

TEST(Latency, PercentilesAreOrdered) {
  ClusterSim sim(Cfg(Mechanism::kDistCache));
  const LatencyReport r = ComputeLatencyReport(sim, 0.3 * sim.TotalServerCapacity());
  EXPECT_GT(r.p50, 0.0);
  EXPECT_LE(r.p50, r.p95);
  EXPECT_LE(r.p95, r.p99);
  EXPECT_GT(r.mean, 0.0);
}

TEST(Latency, LatencyGrowsWithLoad) {
  ClusterSim sim(Cfg(Mechanism::kDistCache));
  const double cap = sim.TotalServerCapacity();
  const LatencyReport light = ComputeLatencyReport(sim, 0.1 * cap);
  const LatencyReport heavy = ComputeLatencyReport(sim, 0.8 * cap);
  EXPECT_GE(heavy.mean, light.mean);
  EXPECT_GE(heavy.p99, light.p99);
}

TEST(Latency, NoCacheTailExplodesEarly) {
  ClusterSim none(Cfg(Mechanism::kNoCache));
  ClusterSim dist(Cfg(Mechanism::kDistCache));
  const double rate = 0.3 * none.TotalServerCapacity();
  const LatencyReport rn = ComputeLatencyReport(none, rate);
  const LatencyReport rd = ComputeLatencyReport(dist, rate);
  EXPECT_GT(rn.p99, 10.0 * rd.p99);  // the hot server is saturated without caching
  EXPECT_GT(rn.overloaded_fraction, 0.0);
  EXPECT_EQ(rd.overloaded_fraction, 0.0);
}

TEST(Latency, CacheHitsReduceMedian) {
  ClusterSim none(Cfg(Mechanism::kNoCache));
  ClusterSim dist(Cfg(Mechanism::kDistCache));
  const double rate = 0.2 * none.TotalServerCapacity();
  // Cache hits skip the server sojourn; with ~half the mass cached the median
  // must not be worse.
  EXPECT_LE(ComputeLatencyReport(dist, rate).p50,
            ComputeLatencyReport(none, rate).p50 + 1e-9);
}

TEST(Latency, HitFractionMatchesCacheSize) {
  ClusterSim sim(Cfg(Mechanism::kDistCache));
  const LatencyReport r = ComputeLatencyReport(sim, 0.3 * sim.TotalServerCapacity());
  EXPECT_GT(r.hit_fraction, 0.3);
  EXPECT_LT(r.hit_fraction, 0.9);
  ClusterSim none(Cfg(Mechanism::kNoCache));
  EXPECT_EQ(ComputeLatencyReport(none, 1.0).hit_fraction, 0.0);
}

// Saturated mass is explicit overload accounting, not a finite pseudo-latency:
// a percentile rank inside it reads +infinity, the fraction carries the mass,
// and the mean covers the finite queries only.
TEST(Latency, SaturatedMassReportsInfinity) {
  ClusterSim none(Cfg(Mechanism::kNoCache));
  const LatencyReport r =
      ComputeLatencyReport(none, 0.3 * none.TotalServerCapacity());
  EXPECT_GT(r.overloaded_fraction, 0.01);
  EXPECT_TRUE(std::isinf(r.p99));
  EXPECT_TRUE(std::isfinite(r.p50));
  EXPECT_TRUE(std::isfinite(r.mean));
  EXPECT_GT(r.mean, 0.0);
}

// The open-loop analytic fill integrates the same mixture the report
// summarizes: totals land on the requested sample count (up to per-bucket
// rounding) and the distribution's mean matches the report's finite-mass mean.
TEST(Latency, AnalyticFillMatchesReportMean) {
  ClusterSim sim(Cfg(Mechanism::kDistCache));
  const double rate = 0.3 * sim.TotalServerCapacity();
  const LatencyReport report = ComputeLatencyReport(sim, rate);
  LatencyHistogram hist;
  constexpr uint64_t kSamples = 1'000'000;
  FillAnalyticLatency(sim, rate, {sim.layer_capacity(0), sim.layer_capacity(1)},
                      sim.config().server_capacity, /*hop_cost=*/0.2, kSamples,
                      &hist);
  EXPECT_NEAR(static_cast<double>(hist.total()), static_cast<double>(kSamples),
              1000.0);
  EXPECT_NEAR(hist.mean(), report.mean, 0.05 * report.mean);
  EXPECT_DOUBLE_EQ(hist.infinite_fraction(), 0.0);
}

TEST(Latency, NetworkRttIsFloor) {
  ClusterSim sim(Cfg(Mechanism::kDistCache));
  LatencyModelOptions options;
  options.network_rtt = 5.0;
  const LatencyReport r =
      ComputeLatencyReport(sim, 0.05 * sim.TotalServerCapacity(), options);
  EXPECT_GE(r.p50, 5.0);
}

}  // namespace
}  // namespace distcache
