// Conservation and monotonicity properties of the fluid cluster simulator that must
// hold for every mechanism and workload shape.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "cluster/cluster_sim.h"

namespace distcache {
namespace {

using Param = std::tuple<Mechanism, double /*theta*/, double /*write_ratio*/>;

class ConservationTest : public ::testing::TestWithParam<Param> {
 protected:
  ClusterConfig Config() const {
    const auto [mechanism, theta, write_ratio] = GetParam();
    ClusterConfig cfg;
    cfg.mechanism = mechanism;
    cfg.num_spine = 8;
    cfg.num_racks = 8;
    cfg.servers_per_rack = 8;
    cfg.per_switch_objects = 10;
    cfg.num_keys = 100000;
    cfg.zipf_theta = theta;
    cfg.write_ratio = write_ratio;
    return cfg;
  }
};

TEST_P(ConservationTest, ReadLoadIsConserved) {
  ClusterSim sim(Config());
  const double rate = 10.0;
  const LoadSnapshot snap = sim.RunTicks(rate, 2);
  const double spine = std::accumulate(snap.spine().begin(), snap.spine().end(), 0.0);
  const double leaf = std::accumulate(snap.leaf().begin(), snap.leaf().end(), 0.0);
  const double server = std::accumulate(snap.server.begin(), snap.server.end(), 0.0);
  const auto [mechanism, theta, write_ratio] = GetParam();
  // Reads are conserved exactly; writes add coherence work, so total load is at
  // least the offered rate and bounded by the max possible amplification.
  const double total = spine + leaf + server;
  EXPECT_GE(total, rate * (1.0 - 1e-9));
  const double max_copies = mechanism == Mechanism::kCacheReplication ? 9.0 : 2.0;
  const double max_amplification =
      1.0 + write_ratio * (sim.config().coherence_server_cost +
                           sim.config().coherence_switch_cost) * max_copies;
  EXPECT_LE(total, rate * max_amplification + 1e-6);
}

TEST_P(ConservationTest, ReadOnlyLoadExactlyOffered) {
  ClusterConfig cfg = Config();
  cfg.write_ratio = 0.0;
  ClusterSim sim(cfg);
  const double rate = 25.0;
  const LoadSnapshot snap = sim.RunTicks(rate, 1);
  const double total = std::accumulate(snap.spine().begin(), snap.spine().end(), 0.0) +
                       std::accumulate(snap.leaf().begin(), snap.leaf().end(), 0.0) +
                       std::accumulate(snap.server.begin(), snap.server.end(), 0.0);
  EXPECT_NEAR(total, rate, 1e-6 * rate);
}

TEST_P(ConservationTest, UtilizationScalesLinearly) {
  ClusterSim sim(Config());
  const double low = sim.RunTicks(5.0, 1).max_utilization;
  const double high = sim.RunTicks(10.0, 1).max_utilization;
  EXPECT_NEAR(high, 2.0 * low, 0.15 * high);  // fluid routing is near-homogeneous
}

TEST_P(ConservationTest, SaturationIsStableAndBeyondIsNot) {
  ClusterSim sim(Config());
  const double r_star = sim.SaturationThroughput();
  if (r_star < 1.0) {
    return;  // degenerate configs
  }
  EXPECT_LE(sim.RunTicks(0.95 * r_star, 4).max_utilization, 1.0 + 1e-6);
  if (r_star < sim.TotalServerCapacity() * 0.99) {  // not clipped by the cap
    EXPECT_GT(sim.RunTicks(1.1 * r_star, 4).max_utilization, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConservationTest,
    ::testing::Combine(::testing::Values(Mechanism::kNoCache, Mechanism::kCachePartition,
                                         Mechanism::kCacheReplication,
                                         Mechanism::kDistCache),
                       ::testing::Values(0.0, 0.9, 0.99),   // skew
                       ::testing::Values(0.0, 0.2)));       // write ratio

}  // namespace
}  // namespace distcache
