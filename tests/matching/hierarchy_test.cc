#include "matching/hierarchy.h"

#include <gtest/gtest.h>

#include "common/zipf.h"

namespace distcache {
namespace {

TEST(HierarchicalCacheGraph, LayerLayoutIsConsecutive) {
  HierarchicalCacheGraph g(50, {4, 8, 2}, 1);
  EXPECT_EQ(g.num_layers(), 3u);
  EXPECT_EQ(g.num_cache_nodes(), 14u);
  for (uint64_t i = 0; i < 50; ++i) {
    EXPECT_LT(g.NodeOf(i, 0), 4u);
    EXPECT_GE(g.NodeOf(i, 1), 4u);
    EXPECT_LT(g.NodeOf(i, 1), 12u);
    EXPECT_GE(g.NodeOf(i, 2), 12u);
    EXPECT_LT(g.NodeOf(i, 2), 14u);
  }
}

TEST(HierarchicalCacheGraph, ChoicesOfReturnsOnePerLayer) {
  HierarchicalCacheGraph g(10, {4, 4}, 2);
  const auto choices = g.ChoicesOf(3);
  ASSERT_EQ(choices.size(), 2u);
  EXPECT_EQ(choices[0], g.NodeOf(3, 0));
  EXPECT_EQ(choices[1], g.NodeOf(3, 1));
}

TEST(HierarchicalCacheGraph, TwoLayerMatchesCacheGraphSemantics) {
  // Same object, different layers must be able to split a rate up to 2 units.
  HierarchicalCacheGraph g(1, {4, 4}, 3);
  EXPECT_TRUE(g.FeasibleMatching({1.9}, {1.0, 1.0}));
  EXPECT_FALSE(g.FeasibleMatching({2.1}, {1.0, 1.0}));
}

TEST(HierarchicalCacheGraph, ThreeLayersAbsorbHotterObjects) {
  HierarchicalCacheGraph g(1, {4, 4, 4}, 4);
  EXPECT_TRUE(g.FeasibleMatching({2.9}, {1.0, 1.0, 1.0}));
  EXPECT_FALSE(g.FeasibleMatching({3.1}, {1.0, 1.0, 1.0}));
}

TEST(HierarchicalCacheGraph, HeterogeneousLayerCapacities) {
  HierarchicalCacheGraph g(1, {2, 2}, 5);
  // Layer 0 nodes have capacity 3, layer 1 capacity 1: combined 4 for one object.
  EXPECT_TRUE(g.FeasibleMatching({3.9}, {3.0, 1.0}));
  EXPECT_FALSE(g.FeasibleMatching({4.1}, {3.0, 1.0}));
}

TEST(HierarchicalCacheGraph, MoreLayersRaiseSupportedRate) {
  constexpr size_t kObjects = 64;
  const std::vector<double> pmf = CappedZipfPmf(kObjects, 0.99, 1.0 / 16.0);
  double prev = 0.0;
  for (size_t layers : {1, 2, 3}) {
    double sum = 0.0;
    for (uint64_t seed = 0; seed < 5; ++seed) {
      HierarchicalCacheGraph g(kObjects, std::vector<size_t>(layers, 8), seed);
      sum += g.MaxSupportedRate(pmf, 1.0, 0.01);
    }
    const double avg = sum / 5.0;
    EXPECT_GT(avg, prev);
    prev = avg;
  }
}

TEST(HierarchicalCacheGraph, SingleLayerIsSingleChoice) {
  // One layer = single hash: two objects colliding on a node share its capacity.
  HierarchicalCacheGraph g(64, {8}, 7);
  const std::vector<double> uniform(64, 1.0 / 64.0);
  const double r = g.MaxSupportedRate(uniform, 1.0, 0.01);
  // Max-loaded node has ≥ 8 objects hashed in expectation + imbalance, so the
  // supportable rate is well below the 8-node aggregate.
  EXPECT_LT(r, 7.0);
}

TEST(HierarchicalCacheGraph, OverTotalCapacityInfeasible) {
  HierarchicalCacheGraph g(32, {4, 4}, 8);
  const std::vector<double> rates(32, 0.3);  // 9.6 > 8 aggregate
  EXPECT_FALSE(g.FeasibleMatching(rates, {1.0, 1.0}));
}

}  // namespace
}  // namespace distcache
