#include "matching/cache_graph.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/zipf.h"

namespace distcache {
namespace {

TEST(CacheGraph, NodeIndicesPartitionLayers) {
  CacheGraph g(100, 8, 8, /*seed=*/1);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_LT(g.UpperNodeOf(i), 8u);
    EXPECT_GE(g.LowerNodeOf(i), 8u);
    EXPECT_LT(g.LowerNodeOf(i), 16u);
  }
  EXPECT_EQ(g.num_cache_nodes(), 16u);
}

TEST(CacheGraph, SingleHashHasNoUpperLayer) {
  CacheGraph g(50, 8, 8, 1, /*single_hash=*/true);
  EXPECT_TRUE(g.single_hash());
  EXPECT_EQ(g.num_cache_nodes(), 8u);
}

TEST(CacheGraph, UnderloadedAlwaysFeasible) {
  CacheGraph g(64, 8, 8, 2);
  const std::vector<double> rates(64, 0.1);  // total 6.4 vs capacity 16
  EXPECT_TRUE(g.FeasibleMatching(rates, 1.0));
}

TEST(CacheGraph, SingleObjectOverCombinedCapacityInfeasible) {
  CacheGraph g(1, 4, 4, 3);
  // The object has exactly two candidate nodes of capacity 1 each: rate > 2 must fail.
  EXPECT_TRUE(g.FeasibleMatching({1.9}, 1.0));
  EXPECT_FALSE(g.FeasibleMatching({2.1}, 1.0));
}

TEST(CacheGraph, TotalOverCapacityInfeasible) {
  CacheGraph g(32, 4, 4, 4);
  const std::vector<double> rates(32, 0.3);  // total 9.6 > capacity 8
  EXPECT_FALSE(g.FeasibleMatching(rates, 1.0));
}

TEST(CacheGraph, MaxSupportedRateBracketsFeasibility) {
  CacheGraph g(64, 8, 8, 5);
  ZipfDistribution dist(64, 0.9);
  std::vector<double> pmf(64);
  for (uint64_t i = 0; i < 64; ++i) {
    pmf[i] = dist.Pmf(i);
  }
  const double r_star = g.MaxSupportedRate(pmf, 1.0);
  EXPECT_GT(r_star, 0.0);
  EXPECT_LE(r_star, 16.0);
  // Just below R* must be feasible; 10% above must not.
  std::vector<double> rates(64);
  double mass = 0.0;
  for (double p : pmf) {
    mass += p;
  }
  for (size_t i = 0; i < 64; ++i) {
    rates[i] = 0.98 * r_star * pmf[i] / mass;
  }
  EXPECT_TRUE(g.FeasibleMatching(rates, 1.0));
  for (size_t i = 0; i < 64; ++i) {
    rates[i] = 1.1 * r_star * pmf[i] / mass;
  }
  EXPECT_FALSE(g.FeasibleMatching(rates, 1.0));
}

TEST(CacheGraph, TwoHashesBeatOneHash) {
  // Lemma 3's point, as supportable rate: the PoT graph supports far more than the
  // single-hash graph under the same per-node capacity.
  ZipfDistribution dist(64, 0.99);
  std::vector<double> pmf(64);
  for (uint64_t i = 0; i < 64; ++i) {
    pmf[i] = dist.Pmf(i);
  }
  double two = 0.0;
  double one = 0.0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    two += CacheGraph(64, 8, 8, seed).MaxSupportedRate(pmf, 1.0);
    one += CacheGraph(64, 8, 8, seed, true).MaxSupportedRate(pmf, 1.0);
  }
  EXPECT_GT(two, 1.5 * one);
}

TEST(CacheGraph, ExpansionHoldsForSmallLoad) {
  // k = m/2 objects on 2m nodes: expansion holds w.h.p.
  int holds = 0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    holds += CacheGraph(8, 8, 8, seed).HasExpansionProperty() ? 1 : 0;
  }
  EXPECT_GE(holds, 9);
}

TEST(CacheGraph, SingleHashExpansionOftenFails) {
  // With one hash and k = m objects, some node gets ≥ 2 objects w.h.p. (birthday),
  // and any 2 objects on one node violate |Γ(S)| ≥ |S|.
  int fails = 0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    fails += CacheGraph(8, 8, 8, seed, true).HasExpansionProperty() ? 0 : 1;
  }
  EXPECT_GE(fails, 8);
}

TEST(CacheGraph, RhoMaxBelowOneWhenFeasible) {
  CacheGraph g(16, 4, 4, 6);
  const std::vector<double> rates(16, 0.2);  // total 3.2 vs 8 capacity
  ASSERT_TRUE(g.FeasibleMatching(rates, 1.0));
  EXPECT_LT(g.RhoMax(rates, 1.0), 1.0);
}

TEST(CacheGraph, RhoMaxAboveOneWhenInfeasible) {
  CacheGraph g(16, 4, 4, 7);
  const std::vector<double> rates(16, 0.8);  // total 12.8 > 8 capacity
  ASSERT_FALSE(g.FeasibleMatching(rates, 1.0));
  EXPECT_GT(g.RhoMax(rates, 1.0), 1.0);
}

// Property cross-check of the appendix's equivalence: feasible matching ⟺ ρ_max < 1
// (Lemma 2 uses feasibility ⇒ ρ_max < 1; the converse holds by max-flow/min-cut).
class RhoFeasibilityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RhoFeasibilityTest, FlowFeasibilityMatchesRho) {
  const uint64_t seed = GetParam();
  CacheGraph g(24, 6, 6, seed);
  ZipfDistribution dist(24, 0.95);
  for (double scale : {2.0, 5.0, 8.0, 11.0, 14.0}) {
    std::vector<double> rates(24);
    for (uint64_t i = 0; i < 24; ++i) {
      rates[i] = scale * dist.Pmf(i);
    }
    const bool feasible = g.FeasibleMatching(rates, 1.0);
    const double rho = g.RhoMax(rates, 1.0);
    if (feasible) {
      EXPECT_LE(rho, 1.0 + 1e-6) << "scale=" << scale;
    } else {
      EXPECT_GT(rho, 1.0 - 1e-6) << "scale=" << scale;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RhoFeasibilityTest, ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace distcache
